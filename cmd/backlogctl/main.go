// Command backlogctl inspects and maintains a Backlog database directory.
//
// Usage:
//
//	backlogctl stats       -dir /path/to/db [-json]
//	backlogctl lines       -dir /path/to/db
//	backlogctl query       -dir /path/to/db -block 12345 [-n 16]
//	backlogctl compact     -dir /path/to/db
//	backlogctl compression -dir /path/to/db [-json]
//	backlogctl expire      -dir /path/to/db -retention live
//	backlogctl metrics     -dir /path/to/db [-watch [-interval 2s]]
//	backlogctl metrics     -addr localhost:6060 [-watch]
//	backlogctl iostat      -dir /path/to/db [-json]
//	backlogctl iostat      -addr localhost:6060 [-watch [-interval 2s]] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/backlogfs/backlog"
	"github.com/backlogfs/backlog/internal/btree"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: backlogctl <command> [flags]

commands:
  stats        print database size, counters, and per-partition run CP windows
  lines        print snapshot lines and retained versions
  query        print the owners of a block (or a run of blocks with -n)
  compact      run database maintenance
  compression  print per-table logical vs physical run bytes and compression
               ratios (actual for v2 runs, projected for v1 runs)
  expire       drop runs below the reclaim horizon (use -retention live)
  metrics      print metrics in Prometheus text format; -watch refreshes
               continuously; -addr scrapes a running process's debug listener
               instead of opening -dir
  iostat       print purpose-tagged I/O accounting: per-source device bytes
               and ops plus the write-amplification monitor; -addr scrapes a
               running process's /debug/io (with -watch to refresh), -dir
               opens the directory and reports the open's own recovery I/O
`)
	os.Exit(2)
}

// clearScreen is the ANSI home+clear sequence -watch uses between frames.
const clearScreen = "\033[H\033[2J"

// scrapeMetrics fetches /metrics from a running process's debug listener
// (Config.DebugAddr) — the counters there are the live process's, which a
// fresh open of the same directory cannot see.
func scrapeMetrics(addr string, watch bool, interval time.Duration) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + addr
	}
	url = strings.TrimSuffix(url, "/") + "/metrics"
	for {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", url, resp.Status)
		}
		if watch {
			fmt.Printf("%s# %s @ %s\n", clearScreen, url, time.Now().Format(time.RFC3339))
		}
		os.Stdout.Write(body)
		if !watch {
			return nil
		}
		time.Sleep(interval)
	}
}

// scrapeIostat fetches /debug/io from a running process's debug listener
// and renders the live process's I/O attribution report.
func scrapeIostat(addr string, watch, jsonOut bool, interval time.Duration) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + addr
	}
	url = strings.TrimSuffix(url, "/") + "/debug/io"
	for {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", url, resp.Status)
		}
		if watch {
			fmt.Printf("%s# %s @ %s\n", clearScreen, url, time.Now().Format(time.RFC3339))
		}
		if jsonOut {
			os.Stdout.Write(body)
		} else {
			var rep backlog.IOReport
			if err := json.Unmarshal(body, &rep); err != nil {
				return fmt.Errorf("%s: %w", url, err)
			}
			printIOReport(rep)
		}
		if !watch {
			return nil
		}
		time.Sleep(interval)
	}
}

// printIOReport renders an attribution report as the iostat table:
// per-source device traffic, totals, and the write-amplification monitor.
func printIOReport(rep backlog.IOReport) {
	if !rep.Attribution {
		fmt.Println("i/o attribution disabled (Config.DisableIOAttribution)")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "source\tread bytes\tread ops\twrite bytes\twrite ops\tsyncs\tcreates\tremoves")
	for _, s := range rep.Sources {
		if s.ReadBytes == 0 && s.ReadOps == 0 && s.WriteBytes == 0 && s.WriteOps == 0 &&
			s.Syncs == 0 && s.Creates == 0 && s.Removes == 0 {
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Source, s.ReadBytes, s.ReadOps, s.WriteBytes, s.WriteOps,
			s.Syncs, s.Creates, s.Removes)
	}
	fmt.Fprintf(w, "total\t%d\t\t%d\t\t\t\t\n", rep.TotalReadBytes, rep.TotalWriteBytes)
	w.Flush()
	fmt.Printf("user bytes in:     %d\n", rep.UserBytes)
	fmt.Printf("write amp:         %.2f cumulative", rep.WriteAmp)
	if rep.WindowSeconds > 0 {
		fmt.Printf(", %.2f over last %.0fs (%d user / %d device bytes)",
			rep.WindowWriteAmp, rep.WindowSeconds, rep.WindowUserBytes, rep.WindowWriteBytes)
	}
	fmt.Println()
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "database directory (required)")
	block := fs.Uint64("block", 0, "block number (query)")
	n := fs.Int("n", 1, "number of consecutive blocks to query")
	shards := fs.Int("shards", 0, "write-store shards (0 = GOMAXPROCS)")
	partitions := fs.Int("partitions", 1, "read-store partitions (must match the database on disk)")
	span := fs.Uint64("span", 0, "blocks per partition (required when -partitions > 1)")
	durability := fs.String("durability", "checkpoint-only", "durability mode: checkpoint-only|buffered|sync")
	autoCompact := fs.Bool("autocompact", false, "run background maintenance while the database is open")
	compactThreshold := fs.Int("compact-threshold", 0, "per-partition run count that triggers background compaction (0 = default)")
	policy := fs.String("policy", "full", "compaction policy for background maintenance: full|leveled")
	fanout := fs.Int("fanout", 0, "stepped-merge fanout for -policy leveled (0 = default)")
	retention := fs.String("retention", "all", "retention policy: all|live (live enables drop-based expiry)")
	comp := fs.String("compression", "delta", "run format for newly written runs: delta|none (existing runs always readable)")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output (stats)")
	addr := fs.String("addr", "", "scrape a running process's debug listener instead of opening -dir (metrics)")
	watch := fs.Bool("watch", false, "refresh continuously (metrics)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval with -watch (metrics)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, and pprof on this address while the command runs")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if cmd == "metrics" && *addr != "" {
		if err := scrapeMetrics(*addr, *watch, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "backlogctl:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "iostat" && *addr != "" {
		if err := scrapeIostat(*addr, *watch, *jsonOut, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "backlogctl:", err)
			os.Exit(1)
		}
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "backlogctl: -dir is required")
		os.Exit(2)
	}
	dmode, err := backlog.ParseDurability(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, "backlogctl:", err)
		os.Exit(2)
	}
	var rmode backlog.RetentionPolicy
	switch *retention {
	case "all":
		rmode = backlog.RetainAll
	case "live":
		rmode = backlog.RetainLive
	default:
		fmt.Fprintf(os.Stderr, "backlogctl: unknown -retention %q (want all or live)\n", *retention)
		os.Exit(2)
	}
	pmode, err := backlog.ParseCompactionPolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "backlogctl:", err)
		os.Exit(2)
	}
	var cmode backlog.Compression
	switch *comp {
	case "delta":
		cmode = backlog.CompressionDelta
	case "none":
		cmode = backlog.CompressionNone
	default:
		fmt.Fprintf(os.Stderr, "backlogctl: unknown -compression %q (want delta or none)\n", *comp)
		os.Exit(2)
	}

	db, err := backlog.Open(backlog.Config{
		Dir: *dir, WriteShards: *shards, Durability: dmode,
		Partitions: *partitions, PartitionSpan: *span,
		AutoCompact: *autoCompact, CompactThreshold: *compactThreshold,
		CompactionPolicy: pmode, Fanout: *fanout,
		Retention: rmode, Compression: cmode,
		Metrics: cmd == "metrics" || cmd == "stats", DebugAddr: *debugAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "backlogctl:", err)
		os.Exit(1)
	}
	defer db.Close()

	switch cmd {
	case "metrics":
		for {
			if *watch {
				fmt.Printf("%s# %s @ %s\n", clearScreen, *dir, time.Now().Format(time.RFC3339))
			}
			if err := db.WriteMetrics(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "backlogctl:", err)
				os.Exit(1)
			}
			if slow := db.SlowOps(); len(slow) > 0 {
				// Appended as exposition-format comments so the output stays a
				// valid Prometheus scrape.
				fmt.Println("# slow ops (oldest first): kind dur read-bytes write-bytes")
				for _, ev := range slow {
					fmt.Printf("# slowop: %s %s read=%d written=%d\n",
						ev.Kind, ev.Dur, ev.ReadBytes, ev.WriteBytes)
				}
			}
			if !*watch {
				break
			}
			time.Sleep(*interval)
		}
	case "iostat":
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(db.IOReport()); err != nil {
				fmt.Fprintln(os.Stderr, "backlogctl:", err)
				os.Exit(1)
			}
			break
		}
		// A fresh open sees only its own I/O, i.e. the cost of recovering
		// this directory (manifest + catalog reads, WAL replay); use -addr
		// to observe a live process's steady-state traffic.
		printIOReport(db.IOReport())
	case "stats":
		// Per-level shape of the run set — the signal for choosing a
		// maintenance policy and reading write amplification — shared by the
		// JSON and text renderings.
		type levelAgg struct {
			Level   int
			Runs    int
			Records uint64
			Bytes   int64
		}
		aggregate := func(runs []backlog.RunInfo) []levelAgg {
			byLevel := map[int]*levelAgg{}
			maxLevel := 0
			for _, r := range runs {
				la := byLevel[r.Level]
				if la == nil {
					la = &levelAgg{Level: r.Level}
					byLevel[r.Level] = la
				}
				la.Runs++
				la.Records += r.Records
				la.Bytes += r.SizeBytes
				if r.Level > maxLevel {
					maxLevel = r.Level
				}
			}
			var out []levelAgg
			for l := 0; l <= maxLevel; l++ {
				if la := byLevel[l]; la != nil {
					out = append(out, *la)
				}
			}
			return out
		}
		if *jsonOut {
			st := db.Stats()
			out := struct {
				CP                   uint64
				SizeBytes            int64
				WriteShards          int
				Durability           string
				CompactionWriteBytes uint64
				Stats                backlog.Stats
				Maintenance          backlog.MaintenanceStats
				Levels               []levelAgg
				Runs                 []backlog.RunInfo
			}{db.CP(), db.SizeBytes(), db.WriteShards(), db.Durability().String(),
				st.CompactWriteBytes, st, db.MaintenanceStats(),
				aggregate(db.Runs()), db.Runs()}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, "backlogctl:", err)
				os.Exit(1)
			}
			break
		}
		st := db.Stats()
		fmt.Printf("consistency point: %d\n", db.CP())
		fmt.Printf("database size:     %d bytes\n", db.SizeBytes())
		fmt.Printf("write shards:      %d\n", db.WriteShards())
		fmt.Printf("durability:        %s\n", db.Durability())
		if st.WALReplayed > 0 {
			fmt.Printf("wal replayed:      %d\n", st.WALReplayed)
		}
		fmt.Printf("refs added:        %d\n", st.RefsAdded)
		fmt.Printf("refs removed:      %d\n", st.RefsRemoved)
		fmt.Printf("checkpoints:       %d\n", st.Checkpoints)
		if st.Checkpoints > 0 {
			// The stall a checkpoint imposes on updates/queries is only its
			// two exclusive-lock critical sections; the flush between them
			// holds no structural lock. Read from the per-phase latency
			// histograms — the successors of the deprecated
			// Stats.Checkpoint*Nanos sums.
			ms := db.Metrics()
			freeze, _ := ms.Histogram("backlog_checkpoint_freeze_ns")
			install, _ := ms.Histogram("backlog_checkpoint_install_ns")
			flush, _ := ms.Histogram("backlog_checkpoint_flush_ns")
			fmt.Printf("checkpoint stall:  %.0f µs exclusive-lock total (%.1f µs/cp: swap %.1f + install %.1f), %.1f ms flush lock-free\n",
				float64(freeze.Sum+install.Sum)/1e3,
				float64(freeze.Sum+install.Sum)/1e3/float64(st.Checkpoints),
				float64(freeze.Sum)/1e3/float64(st.Checkpoints),
				float64(install.Sum)/1e3/float64(st.Checkpoints),
				float64(flush.Sum)/1e6)
		}
		fmt.Printf("compactions:       %d\n", st.Compactions)
		fmt.Printf("compaction bytes:  %d written\n", st.CompactWriteBytes)
		fmt.Printf("records flushed:   %d\n", st.RecordsFlushed)
		fmt.Printf("records purged:    %d\n", st.RecordsPurged)
		if st.Expiries > 0 {
			fmt.Printf("expiries:          %d (%d runs, %d records dropped unread)\n",
				st.Expiries, st.RunsExpired, st.RecordsExpired)
		}
		ms := db.MaintenanceStats()
		fmt.Printf("policy:            %s (threshold %d, fanout %d)\n", ms.Policy, ms.CompactThreshold, ms.Fanout)
		fmt.Printf("worst partition:   %d runs, %d jobs pending\n", ms.MaxRuns, ms.PendingJobs)
		if ms.Enabled {
			fmt.Printf("auto-compactions:  %d (%d conflicts, %d errors)\n",
				ms.AutoCompactions, ms.Conflicts, ms.Errors)
		}
		if runs := db.Runs(); len(runs) > 0 {
			fmt.Printf("levels:\n")
			w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(w, "  level\truns\trecords\tphysical")
			for _, la := range aggregate(runs) {
				fmt.Fprintf(w, "  %d\t%d\t%d\t%d\n", la.Level, la.Runs, la.Records, la.Bytes)
			}
			w.Flush()
			fmt.Printf("runs:\n")
			w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(w, "  table\tpart\tlevel\tformat\trecords\tlogical\tphysical\theat\tlast cp\tcp window\toverrides")
			for _, r := range runs {
				window := "unknown"
				if r.CPWindowKnown {
					window = fmt.Sprintf("[%d, %d]", r.MinCP, r.MaxCP)
				}
				fmt.Fprintf(w, "  %s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\n",
					r.Table, r.Partition, r.Level, r.Format, r.Records,
					r.LogicalBytes, r.SizeBytes, r.HeatBytes, r.LastAccessCP, window, r.Overrides)
			}
			w.Flush()
		}
	case "lines":
		cat := db.Catalog()
		for _, line := range cat.Lines() {
			fmt.Printf("line %d: snapshots %v\n", line, cat.Snapshots(line))
		}
	case "query":
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "block\tinode\toffset\tline\tlength\tfrom\tto\tversions\tlive")
		err := db.QueryRange(*block, *n, func(b uint64, owners []backlog.Owner) bool {
			for _, o := range owners {
				to := fmt.Sprintf("%d", o.To)
				if o.To == backlog.Infinity {
					to = "inf"
				}
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%s\t%v\t%v\n",
					b, o.Inode, o.Offset, o.Line, o.Length, o.From, to, o.Versions, o.Live)
			}
			return true
		})
		w.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "backlogctl:", err)
			os.Exit(1)
		}
	case "compression":
		type tableReport struct {
			Table         string
			Runs          int
			V1Runs        int
			Records       uint64
			LogicalBytes  int64
			PhysicalBytes int64
			// Ratio is logical/physical over the live runs (actual, run
			// framing included); ProjectedRatio is the pure-payload v2
			// estimate, filled when v1 runs remain.
			Ratio          float64
			ProjectedRatio float64 `json:",omitempty"`
			ProjectedBytes int64   `json:",omitempty"`
		}
		runs := db.Runs()
		var reports []tableReport
		for _, table := range []string{backlog.TableFrom, backlog.TableTo, backlog.TableCombined} {
			rep := tableReport{Table: table}
			for _, r := range runs {
				if r.Table != table {
					continue
				}
				rep.Runs++
				if r.Format == btree.FormatRaw {
					rep.V1Runs++
				}
				rep.Records += r.Records
				rep.LogicalBytes += r.LogicalBytes
				rep.PhysicalBytes += r.SizeBytes
			}
			if rep.PhysicalBytes > 0 {
				rep.Ratio = float64(rep.LogicalBytes) / float64(rep.PhysicalBytes)
			}
			if rep.V1Runs > 0 {
				est, err := db.EstimateCompression(table)
				if err != nil {
					fmt.Fprintln(os.Stderr, "backlogctl:", err)
					os.Exit(1)
				}
				rep.ProjectedRatio = est.Ratio
				rep.ProjectedBytes = est.CompressedBytes
			}
			reports = append(reports, rep)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reports); err != nil {
				fmt.Fprintln(os.Stderr, "backlogctl:", err)
				os.Exit(1)
			}
			break
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "table\truns\trecords\tlogical\tphysical\tratio\tnote")
		for _, rep := range reports {
			note := ""
			if rep.V1Runs > 0 {
				note = fmt.Sprintf("%d v1 run(s); projected v2: %.2fx (%d payload bytes) — compact to apply",
					rep.V1Runs, rep.ProjectedRatio, rep.ProjectedBytes)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2fx\t%s\n",
				rep.Table, rep.Runs, rep.Records, rep.LogicalBytes, rep.PhysicalBytes, rep.Ratio, note)
		}
		w.Flush()
	case "compact":
		before := db.SizeBytes()
		// -policy leveled runs a policy-planned maintenance pass (only the
		// stepped merges that are due); the default remains the classic
		// merge-each-partition-to-one compaction.
		if pmode == backlog.PolicyLeveled {
			if err := db.Maintain(); err != nil {
				fmt.Fprintln(os.Stderr, "backlogctl:", err)
				os.Exit(1)
			}
		} else if err := db.Compact(); err != nil {
			fmt.Fprintln(os.Stderr, "backlogctl:", err)
			os.Exit(1)
		}
		fmt.Printf("compacted (%s): %d -> %d bytes\n", pmode, before, db.SizeBytes())
	case "expire":
		before := db.SizeBytes()
		est, err := db.Expire()
		if err != nil {
			fmt.Fprintln(os.Stderr, "backlogctl:", err)
			os.Exit(1)
		}
		if est.Deferred {
			fmt.Println("expire deferred (checkpoint in flight or unpersisted relocations); retry after a checkpoint")
			break
		}
		horizon := fmt.Sprintf("%d", est.Horizon)
		if est.Horizon == backlog.Infinity {
			horizon = "inf"
		}
		fmt.Printf("expired: %d runs (%d records, %d deletion-vector entries) below horizon %s, %d -> %d bytes\n",
			est.RunsDropped, est.RecordsDropped, est.DVEntriesDropped, horizon, before, db.SizeBytes())
	default:
		usage()
	}
}
