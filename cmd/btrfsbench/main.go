// Command btrfsbench regenerates Table 1 of the paper: the btrfs
// micro-benchmarks (file create/delete at two CP cadences) and the three
// application workloads (dbench CIFS, FileBench /var/mail, PostMark),
// each in three configurations — Base (no back references), Original
// (btrfs-style inline back references), and Backlog.
//
// Usage:
//
//	btrfsbench [-files 8192] [-scale full] [-shards 8] [-durability sync] [-autocompact]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/backlogfs/backlog/internal/experiments"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/wal"
)

func main() {
	files := flag.Int("files", 0, "file count for microbenchmarks (0 = scale default)")
	scale := flag.String("scale", "small", "small|full")
	shards := flag.Int("shards", 1, "Backlog write-store shards (1 = paper-faithful single write store, 0 = GOMAXPROCS)")
	durability := flag.String("durability", "checkpoint-only",
		"Backlog durability mode: checkpoint-only (paper-faithful)|buffered|sync")
	autoCompact := flag.Bool("autocompact", false,
		"run Backlog's background maintenance during the benchmarks (off = paper-faithful unmaintained runs)")
	debugAddr := flag.String("debug-addr", "",
		"serve live Backlog metrics (/metrics, /debug/vars, pprof) on this address while the benchmarks run")
	flag.Parse()
	dmode, err := wal.ParseDurability(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.DefaultTable1Config()
	if *scale == "small" {
		cfg.MicroFiles = 2048
		cfg.DbenchOps = 6000
		cfg.VarmailIters = 1000
		cfg.PostmarkTx = 6000
	}
	if *files > 0 {
		cfg.MicroFiles = *files
	}
	cfg.WriteShards = *shards
	cfg.Durability = dmode
	cfg.AutoCompact = *autoCompact
	if *debugAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		srv, err := obs.Serve(*debugAddr, cfg.Metrics, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/metrics\n", srv.Addr())
	}

	rows, err := experiments.RunTable1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Table 1: btrfs benchmarks (Base = no backrefs, Original = btrfs-native, Backlog = this library)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tBase\tOriginal\tBacklog\tOverhead")
	for _, r := range rows {
		switch r.Unit {
		case "ms/op":
			fmt.Fprintf(w, "%s\t%.3f ms\t%.3f ms\t%.3f ms\t%.1f%%\n",
				r.Name, r.Base, r.Original, r.Backlog, r.OverheadPct)
		case "MB/s":
			fmt.Fprintf(w, "%s\t%.2f MB/s\t%.2f MB/s\t%.2f MB/s\t%.1f%%\n",
				r.Name, r.Base, r.Original, r.Backlog, r.OverheadPct)
		default:
			fmt.Fprintf(w, "%s\t%.0f ops/s\t%.0f ops/s\t%.0f ops/s\t%.1f%%\n",
				r.Name, r.Base, r.Original, r.Backlog, r.OverheadPct)
		}
	}
	w.Flush()
}
