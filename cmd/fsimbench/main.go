// Command fsimbench regenerates the fsim figures of the paper's evaluation
// (Figures 5–10) plus the Section 4.1 naive-baseline ablation, printing
// each figure's data series as an aligned table.
//
// Usage:
//
//	fsimbench -experiment fig5 [-scale full]
//	fsimbench -experiment all
//
// The default "small" scale finishes in seconds; "full" approaches the
// paper's configuration (hundreds of CPs of tens of thousands of ops) and
// takes minutes. Absolute values differ from the paper's hardware; the
// shapes are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"github.com/backlogfs/backlog/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "fig5|fig6|fig7|fig8|fig9|fig10|naive|ingest|wal|interference|cpstall|expire|compress|obs|iostat|levels|all")
	scale := flag.String("scale", "small", "small|full")
	flag.Parse()

	full := *scale == "full"
	run := func(name string, fn func(bool) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(full); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig5", runFig5)
	run("fig6", runFig6)
	run("fig7", runFig7)
	run("fig8", runFig8)
	run("fig9", runFig9)
	run("fig10", runFig10)
	run("naive", runNaive)
	run("ingest", runIngest)
	run("wal", runWALSweep)
	run("interference", runInterference)
	run("cpstall", runCPStall)
	run("expire", runExpire)
	run("compress", runCompress)
	run("obs", runObs)
	run("iostat", runIostat)
	run("levels", runLevels)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func fig5Config(full bool) experiments.Fig5Config {
	cfg := experiments.DefaultFig5Config()
	if full {
		cfg.CPs, cfg.OpsPerCP, cfg.SampleEvery = 1000, 8000, 20
	}
	return cfg
}

func runFig5(full bool) error {
	fmt.Println("Fig 5: synthetic workload maintenance overhead per block op (flat over time)")
	res, err := experiments.RunFig5(fig5Config(full))
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "CP\tops\tI/O writes per op\ttotal µs per op\tCPU µs per op")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "%d\t%d\t%.4f\t%.2f\t%.2f\n", s.CP, s.Ops, s.WritesPerOp, s.TimePerOpUS, s.CPUPerOpUS)
	}
	return w.Flush()
}

func runFig6(full bool) error {
	fmt.Println("Fig 6: back-reference DB size as % of physical data, by maintenance cadence")
	cfg := fig5Config(full)
	intervals := []int{0, cfg.CPs / 5, cfg.CPs / 10}
	res, err := experiments.RunFig6(cfg, intervals)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintf(w, "CP\tnone\tevery %d\tevery %d\n", intervals[1], intervals[2])
	n := len(res.Series[0])
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d\t%.2f%%\t%.2f%%\t%.2f%%\n",
			res.Series[0][i].CP,
			res.Series[0][i].SpacePct,
			res.Series[intervals[1]][i].SpacePct,
			res.Series[intervals[2]][i].SpacePct)
	}
	return w.Flush()
}

func fig7Config(full bool) experiments.Fig7Config {
	cfg := experiments.DefaultFig7Config()
	if full {
		cfg.Hours, cfg.OpsPerHour, cfg.CPsPerHour = 384, 4000, 12
	}
	return cfg
}

func runFig7(full bool) error {
	fmt.Println("Fig 7: NFS-trace maintenance overhead per block op, by hour")
	res, err := experiments.RunFig7(fig7Config(full))
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "hour\tblock ops\tI/O writes per op\ttotal µs per op\tCPU µs per op")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "%d\t%d\t%.4f\t%.2f\t%.2f\n", s.Hour, s.BlockOps, s.WritesPerOp, s.TimePerOpUS, s.CPUPerOpUS)
	}
	return w.Flush()
}

func runFig8(full bool) error {
	fmt.Println("Fig 8: NFS-trace DB size as % of physical data, by maintenance cadence (hours)")
	cfg := fig7Config(full)
	intervals := []int{0, 48, 8}
	if !full {
		intervals = []int{0, cfg.Hours / 2, cfg.Hours / 12}
	}
	res, err := experiments.RunFig8(cfg, intervals)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintf(w, "hour\tnone\tevery %dh\tevery %dh\n", intervals[1], intervals[2])
	for i := range res.Series[0] {
		fmt.Fprintf(w, "%d\t%.2f%%\t%.2f%%\t%.2f%%\n",
			res.Series[0][i].Hour,
			res.Series[0][i].SpacePct,
			res.Series[intervals[1]][i].SpacePct,
			res.Series[intervals[2]][i].SpacePct)
	}
	return w.Flush()
}

func runFig9(full bool) error {
	fmt.Println("Fig 9: query throughput and reads/query vs run length and maintenance staleness")
	cfg := experiments.DefaultFig9Config()
	if full {
		cfg.CPs, cfg.OpsPerCP, cfg.Queries = 1000, 8000, 8192
		cfg.RunLengths = []int{1, 10, 100, 1000}
		cfg.StalenessCPs = []int{0, 200, 400, 600, 800, -1}
	}
	res, err := experiments.RunFig9(cfg)
	if err != nil {
		return err
	}
	sort.Slice(res.Points, func(i, j int) bool {
		if res.Points[i].StalenessCPs != res.Points[j].StalenessCPs {
			return res.Points[i].StalenessCPs < res.Points[j].StalenessCPs
		}
		return res.Points[i].RunLength < res.Points[j].RunLength
	})
	w := tw()
	fmt.Fprintln(w, "CPs since maintenance\trun length\tqueries/s\tI/O reads per query\towners per query")
	for _, p := range res.Points {
		stale := fmt.Sprintf("%d", p.StalenessCPs)
		if p.StalenessCPs < 0 {
			stale = "never maintained"
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.2f\t%.2f\n", stale, p.RunLength, p.QueriesPerSec, p.ReadsPerQuery, p.OwnersPerQry)
	}
	return w.Flush()
}

func runFig10(full bool) error {
	fmt.Println("Fig 10: query performance over time, before vs after maintenance")
	cfg := experiments.DefaultFig10Config()
	if full {
		cfg.CPs, cfg.MeasureEvery, cfg.OpsPerCP, cfg.Queries = 1000, 100, 8000, 8192
		cfg.RunLengths = []int{1024, 2048, 4096, 8192}
	}
	res, err := experiments.RunFig10(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "CP\trun length\tbefore q/s\tafter q/s\tbefore reads/q\tafter reads/q")
	for i := range res.Before {
		b, a := res.Before[i], res.After[i]
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.2f\t%.2f\n",
			b.CP, b.RunLength, b.QueriesPerSec, a.QueriesPerSec, b.ReadsPerQuery, a.ReadsPerQuery)
	}
	return w.Flush()
}

func runNaive(full bool) error {
	fmt.Println("Naive ablation (Section 4.1): read-modify-write table vs Backlog, I/O per op over time")
	cfg := experiments.DefaultNaiveConfig()
	if full {
		cfg.CPs, cfg.OpsPerCP, cfg.SampleEvery = 600, 8000, 20
		cfg.CacheBytes = 4 << 20
	}
	res, err := experiments.RunNaiveAblation(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "CP\tnaive I/O per op\tnaive µs per op\tbacklog I/O per op\tbacklog µs per op")
	for i := range res.Naive {
		n := res.Naive[i]
		var b experiments.NaiveSample
		if i < len(res.Backlog) {
			b = res.Backlog[i]
		}
		fmt.Fprintf(w, "%d\t%.3f\t%.2f\t%.3f\t%.2f\n", n.CP, n.IOPerOp, n.TimePerOpUS, b.IOPerOp, b.TimePerOpUS)
	}
	return w.Flush()
}

func runWALSweep(full bool) error {
	fmt.Println("WAL group commit: append throughput and batch size by durability mode and writer count")
	fmt.Println("(not a paper figure; the figure experiments pin checkpoint-only durability for fidelity)")
	cfg := experiments.DefaultWALSweepConfig()
	if full {
		cfg.Ops = 1_000_000
	}
	pts, err := experiments.RunWALSweep(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "durability\twriters\tops\tops/sec\tflush batches\tappends/batch\tfsyncs")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\t%.2f\t%d\n",
			p.Mode, p.Writers, p.Ops, p.OpsPerSec, p.Batches, p.AvgBatch, p.Syncs)
	}
	return w.Flush()
}

func runInterference(full bool) error {
	fmt.Println("Compaction interference: query latency while a full compaction runs in the background")
	fmt.Println("(not a paper figure; queries read through pinned run-set views and never block on the merge)")
	cfg := experiments.DefaultInterferenceConfig()
	if full {
		cfg.CPs, cfg.OpsPerCP, cfg.Queries = 200, 8000, 16384
	}
	res, err := experiments.RunInterference(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "phase\tqueries\tqueries/s\tmean µs\tp99 µs\tmax µs")
	for _, p := range res.Phases {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%.1f\t%.1f\n",
			p.Phase, p.Queries, p.QueriesPerSec, p.MeanUS, p.P99US, p.MaxUS)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("compaction: %.1f ms, %d -> %d runs\n", res.CompactionMS, res.RunsBefore, res.RunsAfter)
	return nil
}

func runCPStall(full bool) error {
	fmt.Println("Checkpoint stall: update/query latency while a checkpoint flush runs in the background")
	fmt.Println("(not a paper figure; the frozen-write-store checkpoint holds the structural lock only")
	fmt.Println(" for its freeze and install critical sections — run-building I/O is lock-free)")
	cfg := experiments.DefaultCPStallConfig()
	if full {
		cfg.PrefillOps, cfg.MeasureOps = 500_000, 100_000
	}
	res, err := experiments.RunCPStall(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "phase\tupdates\tupdates/s\tmean µs\tp99 µs\tmax µs\tquery mean µs")
	for _, p := range res.Phases {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.2f\t%.1f\t%.1f\t%.1f\n",
			p.Phase, p.Ops, p.OpsPerSec, p.MeanUS, p.P99US, p.MaxUS, p.QueryMeanUS)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("checkpoint: %.1f ms wall (%d records); exclusive lock held %.0f µs (swap) + %.0f µs (install); flush %.1f ms lock-free\n",
		res.CheckpointMS, res.RecordsFlushed, res.SwapUS, res.InstallUS, res.FlushMS)
	return nil
}

func runExpire(full bool) error {
	fmt.Println("Drop-based expiry vs compaction: I/O to reclaim the same deleted snapshots")
	fmt.Println("(not a paper figure; expiry drops whole CP-windowed runs by manifest edit,")
	fmt.Println(" where the paper's maintenance reads and rewrites every surviving record)")
	cfg := experiments.DefaultExpireConfig()
	if full {
		cfg.Epochs, cfg.OpsPerEpoch = 32, 8000
	}
	res, err := experiments.RunExpire(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "path\truns reclaimed\trecords reclaimed\tbytes read\tbytes written\tms")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\n",
			p.Path, p.RunsReclaimed, p.RecordsReclaimed, p.BytesRead, p.BytesWritten, p.Millis)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("compaction-to-expiry I/O ratio: %.0fx\n", res.IORatio)
	return nil
}

func runCompress(full bool) error {
	fmt.Println("Run-format comparison: raw v1 vs column-delta v2 on identical workloads")
	fmt.Println("(not a paper figure; Section 8 predicts the tables are \"highly compressible,")
	fmt.Println(" especially if we compress them by columns\" — the figure experiments pin the")
	fmt.Println(" raw format for byte-identical series)")
	cfg := experiments.DefaultCompressConfig()
	if full {
		cfg.CPs, cfg.OpsPerCP, cfg.Queries = 50, 20000, 8192
	}
	res, err := experiments.RunCompress(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "format\tfrom bytes\tto bytes\tcombined bytes\ttotal bytes\tcheckpoint write bytes\tcold query µs\twarm query µs")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\n",
			p.Format, p.TableBytes["from"], p.TableBytes["to"], p.TableBytes["combined"],
			p.RunBytes, p.CheckpointWriteBytes, p.ColdQueryUS, p.WarmQueryUS)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("combined-table compression: %.2fx; all tables: %.2fx; checkpoint write bytes: %.2fx fewer; warm query slowdown: %.2fx\n",
		res.CombinedRatio, res.TotalRatio, res.WriteRatio, res.WarmSlowdown)
	return nil
}

func runObs(full bool) error {
	fmt.Println("Observability overhead: mixed update/query throughput with instrumentation off and on")
	fmt.Println("(not a paper figure; the budget is <=2% enabled overhead, and the figure experiments")
	fmt.Println(" run with observability disabled, where the instrumented paths take no timestamps)")
	cfg := experiments.DefaultObsConfig()
	if full {
		cfg.Ops = 4_000_000
		cfg.Rounds = 11
	}
	pts, err := experiments.RunObs(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "configuration\tops\tops/sec\toverhead\ttrace events")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f%%\t%d\n", p.Name, p.Ops, p.OpsPerSec, p.OverheadPct, p.TraceEvents)
	}
	return w.Flush()
}

func runIostat(full bool) error {
	fmt.Println("I/O attribution overhead: mixed update/query throughput with attribution off and on")
	fmt.Println("(not a paper figure; attribution is ON by default, so its budget is <=2% — a few")
	fmt.Println(" atomic adds per I/O, clock reads only once a metrics registry is attached. The")
	fmt.Println(" run also audits the accounting: per-source bytes must sum to the totals and the")
	fmt.Println(" hot paths must leak no unattributed i/o)")
	cfg := experiments.DefaultIostatConfig()
	if full {
		cfg.Ops = 4_000_000
		cfg.Rounds = 11
	}
	pts, err := experiments.RunIostat(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "configuration\tops\tops/sec\toverhead\tdevice write bytes\twrite amp")
	for _, p := range pts {
		wb, wa := "-", "-"
		if p.Report.Attribution {
			wb = fmt.Sprintf("%d", p.Report.TotalWriteBytes)
			wa = fmt.Sprintf("%.2f", p.Report.WriteAmp)
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f%%\t%s\t%s\n", p.Name, p.Ops, p.OpsPerSec, p.OverheadPct, wb, wa)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for _, p := range pts {
		if p.Name != "attributed" {
			continue
		}
		fmt.Println("attributed device traffic by purpose (final round):")
		for _, s := range p.Report.Sources {
			if s.ReadBytes == 0 && s.WriteBytes == 0 && s.Syncs == 0 && s.Creates == 0 {
				continue
			}
			fmt.Printf("  %-10s %12d read  %12d written  (%d syncs, %d creates)\n",
				s.Source, s.ReadBytes, s.WriteBytes, s.Syncs, s.Creates)
		}
	}
	return nil
}

func runLevels(full bool) error {
	fmt.Println("Maintenance policies: compaction write bytes and query latency, full vs stepped-merge")
	fmt.Println("(not a paper figure; PolicyFull is the paper's merge-to-one maintenance, PolicyLeveled")
	fmt.Println(" merges Fanout runs of a level into one run of the next — strictly less merge I/O")
	fmt.Println(" under sustained ingest, at the price of a deeper run set for queries to visit)")
	cfg := experiments.DefaultLevelsConfig()
	if full {
		cfg.CPs, cfg.OpsPerCP, cfg.Queries = 256, 8000, 8192
	}
	res, err := experiments.RunLevels(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "policy\tfanout\tcompact MB\twrite amp\tbytes vs full\truns\tmax level\tmaintain ms\tquery mean µs\tp99 µs\tp99 vs full")
	for _, p := range res.Points {
		fan := "-"
		if p.Fanout > 0 {
			fan = fmt.Sprintf("%d", p.Fanout)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.2f\t%.2fx fewer\t%d\t%d\t%.0f\t%.1f\t%.1f\t%.2fx\n",
			p.Policy, fan, float64(p.CompactWriteBytes)/1e6, p.WriteAmp, p.BytesVsFull,
			p.Runs, p.MaxLevel, p.MaintainMS, p.QueryMeanUS, p.QueryP99US, p.P99VsFull)
	}
	return w.Flush()
}

func runIngest(full bool) error {
	fmt.Println("Ingest scaling: parallel AddRef throughput by write-shard count (not a paper figure)")
	cfg := experiments.DefaultIngestConfig()
	if full {
		cfg.Ops = 4_000_000
	}
	pts, err := experiments.RunIngest(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "shards\tops\tops/sec\tspeedup vs 1 shard")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.2fx\n", p.Shards, p.Ops, p.OpsPerSec, p.Speedup)
	}
	return w.Flush()
}
