// Volume shrinking — the paper's bulk-migration use case (Section 3).
//
// To shrink a volume, every allocated block above the new size boundary
// must move below it, and *all* pointers to each moved block — live files,
// snapshots, clones — must be updated. Ext3 can only do this by walking
// the entire file system tree looking for pointers into the target range;
// with back references it is a range query.
//
// The example fills a simulated volume (with snapshots and a clone so
// blocks have multiple owners), then evacuates the upper half: for each
// allocated block above the boundary it queries the owners, rewrites their
// pointers, relocates the back references, and finally verifies the whole
// database against a tree walk.
//
// Run with:
//
//	go run ./examples/volumeshrink
package main

import (
	"fmt"
	"log"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/storage"
)

func main() {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		log.Fatal(err)
	}
	fs := fsim.New(fsim.Config{Tracker: eng, Catalog: cat, DedupRate: 0.10, Seed: 3})

	// Populate: a few files, a snapshot (so some blocks are pinned by
	// history), and a writable clone (so some blocks have owners on two
	// lines).
	var inos []uint64
	for i := 0; i < 6; i++ {
		ino, err := fs.CreateFile(0)
		if err != nil {
			log.Fatal(err)
		}
		if err := fs.WriteFile(0, ino, 0, 20); err != nil {
			log.Fatal(err)
		}
		inos = append(inos, ino)
	}
	snap, err := fs.TakeSnapshot(0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	clone, err := fs.Clone(0, snap)
	if err != nil {
		log.Fatal(err)
	}
	// Dirty some files on both lines so the upper range fills up.
	for _, ino := range inos[:3] {
		if err := fs.WriteFile(0, ino, 5, 10); err != nil {
			log.Fatal(err)
		}
		if err := fs.WriteFile(clone, ino, 0, 5); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Free some space first (a shrink is only possible when the volume has
	// slack): drop two files and reclaim their blocks.
	for _, ino := range inos[4:] {
		if err := fs.DeleteFile(0, ino); err != nil {
			log.Fatal(err)
		}
		if err := fs.DeleteFile(clone, ino); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.DeleteSnapshot(0, snap); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fs.Reclaim()

	// Shrink: everything at or above the boundary must move. Choose the
	// smallest feasible boundary: the free slots below it must hold every
	// allocated block at or above it.
	allocated := fs.AllocatedBlocks()
	var boundary uint64
	for idx, b := range allocated {
		above := len(allocated) - idx
		freeBelow := int(b) - 1 - idx
		if freeBelow >= above {
			boundary = b
			break
		}
	}
	if boundary == 0 {
		log.Fatal("no feasible shrink boundary")
	}
	fmt.Printf("volume has %d allocated blocks; shrinking to blocks < %d\n", len(allocated), boundary)

	// Run maintenance first — the paper recommends compacting before
	// query-intensive tasks (Section 6.4).
	if err := eng.Compact(); err != nil {
		log.Fatal(err)
	}

	// A simple low-water allocator for the evacuation targets.
	inUse := map[uint64]bool{}
	for _, b := range allocated {
		inUse[b] = true
	}
	nextFree := uint64(1)
	alloc := func() uint64 {
		for inUse[nextFree] {
			nextFree++
		}
		if nextFree >= boundary {
			log.Fatal("volume too full to shrink to this boundary")
		}
		inUse[nextFree] = true
		return nextFree
	}

	moved, pointerUpdates := 0, 0
	for _, b := range allocated {
		if b < boundary {
			continue
		}
		owners, err := eng.Query(b)
		if err != nil {
			log.Fatal(err)
		}
		if len(owners) == 0 {
			continue // stale allocation; nothing references it
		}
		target := alloc()
		// Update every owner's pointers (live images and snapshots), then
		// transplant the back references.
		pointerUpdates += fs.RelocateBlock(b, target)
		if err := eng.RelocateBlock(b, target); err != nil {
			log.Fatal(err)
		}
		delete(inUse, b)
		moved++
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("moved %d blocks below the boundary, rewriting %d file objects\n", moved, pointerUpdates)
	for _, b := range fs.AllocatedBlocks() {
		if b >= boundary {
			log.Fatalf("block %d still allocated above the boundary", b)
		}
	}
	if err := fs.VerifyBackrefs(eng); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("upper range fully evacuated; back references verified against tree walk ✓")
}
