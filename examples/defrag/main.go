// Share-aware defragmentation — the paper's motivating use case
// (Section 3).
//
// Two virtual-machine images are cloned from a master snapshot, so they
// share most blocks. Defragmenting one image without knowing about the
// sharing would "ping-pong" the shared blocks between the two files. With
// back references, the defragmenter can see every owner of each block and
// decide: relocate blocks owned only by the target file, and leave (or
// deliberately duplicate) the shared ones.
//
// The example builds the scenario on the fsim write-anywhere simulator
// wired to a real Backlog engine, then walks the fragmented file,
// queries each block's owners, and relocates the exclusively-owned blocks
// into a contiguous region, updating the back-reference database with
// RelocateBlock. It finishes by re-verifying the whole database against a
// file system tree walk.
//
// Run with:
//
//	go run ./examples/defrag
package main

import (
	"fmt"
	"log"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/storage"
)

func main() {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		log.Fatal(err)
	}
	fs := fsim.New(fsim.Config{Tracker: eng, Catalog: cat, Seed: 7})

	// Build the master VM image: one file of 64 blocks on line 0.
	master, err := fs.CreateFile(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile(0, master, 0, 64); err != nil {
		log.Fatal(err)
	}
	snapVer, err := fs.TakeSnapshot(0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Clone the golden snapshot twice: two tenant VMs sharing all blocks.
	vmA, err := fs.Clone(0, snapVer)
	if err != nil {
		log.Fatal(err)
	}
	vmB, err := fs.Clone(0, snapVer)
	if err != nil {
		log.Fatal(err)
	}
	// Each VM dirties a different part of its image (COW), fragmenting
	// vmA's on-disk layout: its file is now a mix of old shared blocks and
	// scattered new ones.
	for off := uint64(0); off < 64; off += 4 {
		if err := fs.WriteFile(vmA, master, off, 1); err != nil {
			log.Fatal(err)
		}
	}
	for off := uint64(2); off < 64; off += 8 {
		if err := fs.WriteFile(vmB, master, off, 1); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// --- Defragment vmA's file, share-aware. ---
	line, _ := fs.Line(vmA)
	blocks := line.Live.BlocksOf(master)
	fmt.Printf("vmA file spans blocks %d..%d before defrag\n", minOf(blocks), maxOf(blocks))

	// The new contiguous region starts past every allocated block.
	target := fs.MaxBlock()
	moved, shared := 0, 0
	for off, b := range blocks {
		owners, err := eng.Query(b)
		if err != nil {
			log.Fatal(err)
		}
		exclusive := true
		for _, o := range owners {
			if o.Line != vmA {
				exclusive = false
				break
			}
		}
		if !exclusive {
			// Shared with the master snapshot or vmB: moving it would
			// require updating their trees too; this defragmenter leaves
			// shared blocks in place (the paper's "prioritize" policy).
			shared++
			continue
		}
		// Physically move the block: rewrite the file-system pointers,
		// then transplant the back references.
		newBlock := target
		target++
		fs.RelocateBlock(b, newBlock)
		if err := eng.RelocateBlock(b, newBlock); err != nil {
			log.Fatal(err)
		}
		moved++
		_ = off
	}
	if _, err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defrag: moved %d exclusively-owned blocks into a contiguous region, left %d shared blocks\n",
		moved, shared)

	// The database still matches a full tree walk.
	if err := fs.VerifyBackrefs(eng); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("back-reference database verified against full tree walk ✓")
}

func minOf(s []uint64) uint64 {
	m := s[0]
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(s []uint64) uint64 {
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}
