// Deduplication analytics — the paper's "block of zeros" scenario
// (Section 4.1).
//
// After deduplication, a single physical block can be referenced by many
// files. Before moving such a block (e.g., to shrink a volume), the
// maintenance tool must enumerate every owner so it can update all of
// their pointers. This example runs a dedup-heavy workload on the
// simulator, then uses back-reference queries to build an ownership
// histogram and show the owners of the most-shared block.
//
// Run with:
//
//	go run ./examples/dedupstats
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/workload"
)

func main() {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		log.Fatal(err)
	}
	// 25% dedup rate to make sharing pronounced (the paper's measured
	// NetApp file servers run around 10%).
	fs := fsim.New(fsim.Config{Tracker: eng, Catalog: cat, DedupRate: 0.25, Seed: 11})

	gen := workload.NewSynthetic(fs, workload.DefaultSyntheticConfig(1500))
	for i := 0; i < 20; i++ {
		if _, _, err := gen.RunCP(); err != nil {
			log.Fatal(err)
		}
	}
	st := fs.Stats()
	fmt.Printf("workload: %d block ops, %d dedup hits (%.1f%% of writes)\n",
		st.BlockOps, st.DedupHits, 100*float64(st.DedupHits)/float64(st.BlockOpsAdd))

	// Ownership histogram over all allocated blocks.
	hist := map[int]int{}
	type sharedBlock struct {
		block  uint64
		owners int
	}
	var top sharedBlock
	for _, b := range fs.AllocatedBlocks() {
		owners, err := eng.Query(b)
		if err != nil {
			log.Fatal(err)
		}
		// Count distinct (inode, offset, line) owners with any validity.
		hist[len(owners)]++
		if len(owners) > top.owners {
			top = sharedBlock{block: b, owners: len(owners)}
		}
	}

	var counts []int
	for c := range hist {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	fmt.Println("\nowners-per-block histogram:")
	total := 0
	for _, c := range counts {
		total += hist[c]
	}
	for _, c := range counts {
		if c == 0 {
			continue
		}
		fmt.Printf("  %2d owner(s): %6d blocks (%.1f%%)\n", c, hist[c], 100*float64(hist[c])/float64(total))
	}

	fmt.Printf("\nmost-shared block %d has %d owners:\n", top.block, top.owners)
	owners, err := eng.Query(top.block)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range owners {
		fmt.Printf("  inode %d offset %d line %d live=%v versions=%v\n",
			o.Inode, o.Offset, o.Line, o.Live, o.Versions)
	}

	// Consistency check: the histogram was built from the same database a
	// full tree walk would produce.
	if err := fs.VerifyBackrefs(eng); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nback-reference database verified against tree walk ✓")
}
