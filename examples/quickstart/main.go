// Quickstart: the smallest end-to-end use of the backlog public API.
//
// It mirrors the running example of the paper (Section 4.1): inode 2 gets
// two blocks at CP 4, a snapshot is taken, and the file is truncated to
// one block at CP 7. We then ask the database who owns each block.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/backlogfs/backlog"
)

func main() {
	db, err := backlog.Open(backlog.Config{InMemory: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// CP 4: inode 2 is created with two blocks (100 and 101).
	db.AddRef(backlog.Ref{Block: 100, Inode: 2, Offset: 0, Line: 0}, 4)
	db.AddRef(backlog.Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, 4)
	if err := db.Checkpoint(4); err != nil {
		log.Fatal(err)
	}
	// Retain CP 4 as a snapshot of line 0. Snapshot lifecycle operations
	// live on the catalog.
	if err := db.Catalog().CreateSnapshot(0, 4); err != nil {
		log.Fatal(err)
	}

	// CP 7: the file is truncated to one block; block 101 is released.
	db.RemoveRef(backlog.Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, 7)
	if err := db.Checkpoint(7); err != nil {
		log.Fatal(err)
	}

	// Who references each block?
	for _, block := range []uint64{100, 101} {
		owners, err := db.Query(block)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block %d:\n", block)
		for _, o := range owners {
			to := fmt.Sprintf("%d", o.To)
			if o.To == backlog.Infinity {
				to = "∞"
			}
			fmt.Printf("  inode %d offset %d line %d: valid [%d, %s)  snapshots %v  live=%v\n",
				o.Inode, o.Offset, o.Line, o.From, to, o.Versions, o.Live)
		}
	}

	// Database maintenance: merge runs, precompute the Combined table,
	// purge anything referencing deleted snapshots.
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter compaction: %d bytes on disk, stats %+v\n", db.SizeBytes(), db.Stats())
}
