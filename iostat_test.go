package backlog

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestIOReportPublicSurface checks the attribution surface end to end at
// the public API: DB.IOReport carries attributed per-source traffic (on
// by default), the labeled backlog_io_* families and write-amplification
// gauges render in /metrics, and /debug/io serves the same report as
// JSON.
func TestIOReportPublicSurface(t *testing.T) {
	db, err := Open(Config{InMemory: true, Metrics: true, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)

	rep := db.IOReport()
	if !rep.Attribution {
		t.Fatal("attribution disabled by default")
	}
	if rep.TotalWriteBytes == 0 || rep.UserBytes == 0 || rep.WriteAmp == 0 {
		t.Errorf("empty report after ingest: %+v", rep)
	}
	var checkpointWrites uint64
	for _, s := range rep.Sources {
		if s.Source == "checkpoint" {
			checkpointWrites = s.WriteBytes
		}
		if s.Source == "unknown" && (s.ReadBytes > 0 || s.WriteBytes > 0) {
			t.Errorf("unattributed i/o at the public surface: %+v", s)
		}
	}
	if checkpointWrites == 0 {
		t.Error("no checkpoint writes attributed after Checkpoint")
	}

	var b strings.Builder
	if err := db.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf(`backlog_io_write_bytes_total{src="checkpoint"} %d`, checkpointWrites),
		"# TYPE backlog_io_read_ns histogram",
		"backlog_write_amp ",
		"backlog_write_amp_cumulative ",
		"backlog_run_heat_bytes",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/io", db.DebugAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/io status %d", resp.StatusCode)
	}
	var served IOReport
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if !served.Attribution || served.TotalWriteBytes < rep.TotalWriteBytes {
		t.Errorf("/debug/io report regressed the in-process one: %+v vs %+v", served, rep)
	}
}

// TestDisableIOAttribution checks the escape hatch: no accounting, a zero
// report, and a DB that otherwise works.
func TestDisableIOAttribution(t *testing.T) {
	db, err := Open(Config{InMemory: true, DisableIOAttribution: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)
	rep := db.IOReport()
	if rep.Attribution || rep.TotalWriteBytes != 0 || len(rep.Sources) != 0 {
		t.Errorf("disabled attribution still reported: %+v", rep)
	}
}
