package backlog

import (
	"errors"
	"sync"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// TestCatalogCrashWindowAtCheckpoint is the kill-point regression for the
// DB.Checkpoint commit order: the snapshot catalog must be persisted
// BEFORE the engine commit, so a crash between the two can never leave
// reference data claiming the new consistency point while the catalog
// still shows a deleted snapshot (which would resurrect it in query
// masking, unrepairably — WAL replay skips records the manifest CP
// covers).
func TestCatalogCrashWindowAtCheckpoint(t *testing.T) {
	vfs := storage.NewMemFS()
	db, err := openVFS(vfs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	db.AddRef(Ref{Block: 10, Inode: 2, Offset: 0, Line: 0}, 1)
	db.AddRef(Ref{Block: 10, Inode: 2, Offset: 1, Line: 0}, 1)
	if err := db.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	db.RemoveRef(Ref{Block: 10, Inode: 2, Offset: 1, Line: 0}, 2)

	// Mutate the catalog, then kill the checkpoint between its two
	// commits: the catalog save (about one page) succeeds, the engine
	// flush behind it fails.
	if err := db.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	vfs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: vfs.Stats().PageWrites + 1})
	if err := db.Checkpoint(2); err == nil {
		t.Fatal("checkpoint survived the injected kill point")
	}
	vfs.SetFailurePlan(storage.FailurePlan{})
	vfs.Crash()

	db2, err := openVFS(vfs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// The interrupted checkpoint must not have advanced the engine while
	// losing the catalog: with the catalog-first order, the deletion is
	// durable and the reference data is at the old consistency point.
	if got := db2.CP(); got != 1 {
		t.Fatalf("CP = %d after crash, want 1 (engine commit never happened)", got)
	}
	if snaps := db2.Snapshots(0); len(snaps) != 0 {
		t.Fatalf("deleted snapshot resurrected after crash: %v", snaps)
	}
	owners, err := db2.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range owners {
		if len(o.Versions) != 0 {
			t.Fatalf("query masks against the deleted snapshot: %+v", o)
		}
		if !o.Live {
			t.Fatalf("non-live owner with no versions survived masking: %+v", o)
		}
	}
	// And the database keeps working: the retried checkpoint commits both.
	db2.AddRef(Ref{Block: 11, Inode: 3, Offset: 0, Line: 0}, 2)
	if err := db2.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if got := db2.CP(); got != 2 {
		t.Fatalf("CP = %d after retry", got)
	}
	// A stale cp is rejected up front, before even the catalog is
	// written.
	before := vfs.Stats()
	if err := db2.Checkpoint(2); !errors.Is(err, ErrStaleCP) {
		t.Fatalf("stale DB.Checkpoint: %v, want ErrStaleCP", err)
	}
	if d := vfs.Stats().Sub(before); d.PageWrites != 0 {
		t.Fatalf("stale DB.Checkpoint wrote %d pages before failing", d.PageWrites)
	}
}

// TestCloseConcurrent is the regression for the unsynchronized closed
// flag: concurrent Close calls (and Close racing DurabilityErr pollers)
// must be race-free, with every call returning cleanly. Run under -race.
func TestCloseConcurrent(t *testing.T) {
	db, err := Open(Config{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	db.AddRef(Ref{Block: 1, Inode: 2, Offset: 0, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = db.DurabilityErr()
			if err := db.Close(); err != nil {
				t.Error(err)
			}
			_ = db.DurabilityErr()
		}()
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
