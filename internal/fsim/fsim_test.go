package fsim

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// newTracked builds an fsim wired to a real Backlog engine over a MemFS.
func newTracked(t *testing.T) (*FS, *core.Engine) {
	t.Helper()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: storage.NewMemFS(), Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(Config{Tracker: eng, Catalog: cat, Seed: 1})
	return fs, eng
}

func mustCP(t *testing.T, fs *FS) uint64 {
	t.Helper()
	cp, err := fs.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func mustVerify(t *testing.T, fs *FS, eng *core.Engine) {
	t.Helper()
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteDelete(t *testing.T) {
	fs, eng := newTracked(t)
	ino, err := fs.CreateFile(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(0, ino, 0, 4); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)

	if n, _ := fs.FileLen(0, ino); n != 4 {
		t.Fatalf("FileLen = %d", n)
	}
	if err := fs.DeleteFile(0, ino); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)
	if fs.PhysicalBlocks() != 0 {
		t.Fatalf("PhysicalBlocks = %d after delete", fs.PhysicalBlocks())
	}
}

func TestWriteAnywhereOverwrite(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 2); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	l, _ := fs.Line(0)
	before := append([]uint64(nil), l.Live.BlocksOf(ino)...)

	// Overwrite block 0: write-anywhere must allocate a new block.
	if err := fs.WriteFile(0, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	after := l.Live.BlocksOf(ino)
	if after[0] == before[0] {
		t.Fatal("overwrite reused the same physical block in place")
	}
	if after[1] != before[1] {
		t.Fatal("untouched block changed")
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)
}

func TestSnapshotPreservesOldBlocks(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 3); err != nil {
		t.Fatal(err)
	}
	v, err := fs.TakeSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)

	l, _ := fs.Line(0)
	oldBlocks := append([]uint64(nil), l.Snapshots[v].BlocksOf(ino)...)

	// Overwrite everything post-snapshot.
	if err := fs.WriteFile(0, ino, 0, 3); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)

	// The old blocks are owned by the snapshot only.
	for _, b := range oldBlocks {
		owners, err := eng.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) != 1 || owners[0].Live || len(owners[0].Versions) != 1 || owners[0].Versions[0] != v {
			t.Fatalf("old block %d owners = %+v", b, owners)
		}
	}

	// Deleting the snapshot frees them (after reclaim).
	if err := fs.DeleteSnapshot(0, v); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, fs, eng)
	if freed := fs.Reclaim(); freed != 3 {
		t.Fatalf("Reclaim freed %d, want 3", freed)
	}
}

func TestSnapshotMutationOrderingEnforced(t *testing.T) {
	fs, _ := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.TakeSnapshot(0); err != nil {
		t.Fatal(err)
	}
	// Mutating the same line in the same CP after a snapshot must fail.
	if err := fs.WriteFile(0, ino, 0, 1); err == nil {
		t.Fatal("mutation after same-CP snapshot allowed")
	}
	if _, err := fs.CreateFile(0); err == nil {
		t.Fatal("create after same-CP snapshot allowed")
	}
	mustCP(t, fs)
	if err := fs.WriteFile(0, ino, 0, 1); err != nil {
		t.Fatalf("mutation after checkpoint failed: %v", err)
	}
}

func TestCloneCOWGeneratesOverrides(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 2); err != nil {
		t.Fatal(err)
	}
	v, err := fs.TakeSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)

	cl, err := fs.Clone(0, v)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, fs, eng) // inherited refs visible without any new records

	// The clone COWs block 0 of the shared file.
	st0 := fs.Stats()
	if err := fs.WriteFile(cl, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	if ops := fs.Stats().BlockOps - st0.BlockOps; ops != 2 {
		t.Fatalf("COW generated %d block ops, want 2 (remove+add)", ops)
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)

	// Snapshot and the parent's live image still own the old block; the
	// clone owns its new copy.
	l, _ := fs.Line(0)
	oldBlock := l.Live.BlocksOf(ino)[0]
	clLine, _ := fs.Line(cl)
	newBlock := clLine.Live.BlocksOf(ino)[0]
	if oldBlock == newBlock {
		t.Fatal("clone COW did not allocate a new block")
	}
	owners, err := eng.Query(oldBlock)
	if err != nil {
		t.Fatal(err)
	}
	linesSeen := map[uint64]bool{}
	for _, o := range owners {
		linesSeen[o.Line] = true
	}
	if !linesSeen[0] || linesSeen[cl] {
		t.Fatalf("old block owners after COW = %+v", owners)
	}
}

func TestCloneOfClone(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 2); err != nil {
		t.Fatal(err)
	}
	v0, _ := fs.TakeSnapshot(0)
	mustCP(t, fs)
	cl1, err := fs.Clone(0, v0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(cl1, ino, 1, 1); err != nil {
		t.Fatal(err)
	}
	v1, err := fs.TakeSnapshot(cl1)
	if err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	cl2, err := fs.Clone(cl1, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(cl2, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)
}

func TestZombieSnapshotLifecycle(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 2); err != nil {
		t.Fatal(err)
	}
	v, _ := fs.TakeSnapshot(0)
	mustCP(t, fs)
	cl, err := fs.Clone(0, v)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the cloned snapshot: it becomes a zombie; the clone still
	// inherits through it.
	if err := fs.DeleteSnapshot(0, v); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, fs, eng)

	// Compaction must not purge the records the clone needs.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, fs, eng)

	// Destroy the clone; reap; compact: records go away for good.
	if err := fs.DeleteLine(cl); err != nil {
		t.Fatal(err)
	}
	fs.Catalog().ReapZombies()
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, fs, eng)
}

func TestDedupSharing(t *testing.T) {
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: storage.NewMemFS(), Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(Config{Tracker: eng, Catalog: cat, DedupRate: 0.10, Seed: 7})
	for i := 0; i < 50; i++ {
		ino, _ := fs.CreateFile(0)
		if err := fs.WriteFile(0, ino, 0, 20); err != nil {
			t.Fatal(err)
		}
	}
	mustCP(t, fs)
	st := fs.Stats()
	if st.DedupHits == 0 {
		t.Fatal("no dedup hits at 10% rate")
	}
	rate := float64(st.DedupHits) / float64(st.BlockOpsAdd)
	if rate < 0.05 || rate > 0.15 {
		t.Fatalf("dedup rate = %.3f, want ≈0.10", rate)
	}
	mustVerify(t, fs, eng)

	// Reference-count distribution: most blocks single-referenced, a
	// meaningful fraction shared (the paper reports ~75-78% at refcount 1).
	counts := map[int]int{}
	for _, n := range fs.liveRefs {
		if n > 0 {
			counts[n]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 || float64(counts[1])/float64(total) < 0.5 {
		t.Fatalf("refcount distribution suspicious: %v", counts)
	}
	if counts[2] == 0 {
		t.Fatal("no blocks with refcount 2 despite dedup")
	}
}

func TestTruncate(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 8); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	if err := fs.TruncateFile(0, ino, 3); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.FileLen(0, ino); n != 3 {
		t.Fatalf("FileLen = %d", n)
	}
	// Truncate beyond length is a no-op.
	if err := fs.TruncateFile(0, ino, 10); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)
}

func TestDeleteLineMasksRecords(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 2); err != nil {
		t.Fatal(err)
	}
	v, _ := fs.TakeSnapshot(0)
	mustCP(t, fs)
	cl, _ := fs.Clone(0, v)
	if err := fs.WriteFile(cl, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	// Destroying the clone requires no per-block work; masking hides it.
	st0 := fs.Stats().BlockOps
	if err := fs.DeleteLine(cl); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().BlockOps != st0 {
		t.Fatal("DeleteLine generated block ops")
	}
	mustVerify(t, fs, eng)
	if lines := fs.Lines(); len(lines) != 1 || lines[0] != 0 {
		t.Fatalf("Lines = %v", lines)
	}
}

func TestReclaimAndReuse(t *testing.T) {
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 10); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	if err := fs.DeleteFile(0, ino); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	freed := fs.Reclaim()
	if freed != 10 {
		t.Fatalf("Reclaim freed %d, want 10", freed)
	}
	// New writes reuse the freed blocks; back references must reflect the
	// reallocation to a new inode.
	ino2, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino2, 0, 5); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().BlocksReused == 0 {
		t.Fatal("no blocks reused after reclaim")
	}
	mustCP(t, fs)
	mustVerify(t, fs, eng)
}

func TestCheckpointAdvancesCP(t *testing.T) {
	fs, _ := newTracked(t)
	if fs.CP() != 1 {
		t.Fatalf("initial CP = %d", fs.CP())
	}
	cp := mustCP(t, fs)
	if cp != 1 || fs.CP() != 2 {
		t.Fatalf("after checkpoint: committed %d, current %d", cp, fs.CP())
	}
}

func TestErrorsOnBadArguments(t *testing.T) {
	fs, _ := newTracked(t)
	if _, err := fs.CreateFile(99); err == nil {
		t.Fatal("CreateFile on unknown line")
	}
	if err := fs.WriteFile(0, 12345, 0, 1); err == nil {
		t.Fatal("WriteFile on unknown inode")
	}
	if err := fs.DeleteFile(0, 12345); err == nil {
		t.Fatal("DeleteFile on unknown inode")
	}
	if _, err := fs.Clone(0, 77); err == nil {
		t.Fatal("Clone of missing snapshot")
	}
	if err := fs.DeleteSnapshot(0, 77); err == nil {
		t.Fatal("DeleteSnapshot of missing snapshot")
	}
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.TakeSnapshot(0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.TakeSnapshot(0); err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("duplicate snapshot: %v", err)
	}
}

// TestRandomWorkloadGroundTruth is the package's heavyweight integration
// test: a random multi-line workload with snapshots, clones, deletions,
// dedup, compactions, and reclaim, verified against the tree walk at
// multiple points.
func TestRandomWorkloadGroundTruth(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		cat := core.NewMemCatalog()
		eng, err := core.Open(core.Options{VFS: storage.NewMemFS(), Catalog: cat,
			Partitions: 2, PartitionSpan: 500})
		if err != nil {
			t.Fatal(err)
		}
		fs := New(Config{Tracker: eng, Catalog: cat, DedupRate: 0.10, Seed: seed})
		rng := rand.New(rand.NewSource(seed * 1000))

		type snap struct{ line, v uint64 }
		var snaps []snap
		var inos []struct{ line, ino uint64 }

		for cp := 0; cp < 25; cp++ {
			nops := 3 + rng.Intn(10)
			for i := 0; i < nops; i++ {
				lines := fs.Lines()
				line := lines[rng.Intn(len(lines))]
				switch rng.Intn(10) {
				case 0, 1, 2: // create + write
					ino, err := fs.CreateFile(line)
					if err != nil {
						continue
					}
					if err := fs.WriteFile(line, ino, 0, 1+rng.Intn(6)); err != nil {
						t.Fatal(err)
					}
					inos = append(inos, struct{ line, ino uint64 }{line, ino})
				case 3, 4, 5, 6: // overwrite
					if len(inos) == 0 {
						continue
					}
					f := inos[rng.Intn(len(inos))]
					n, err := fs.FileLen(f.line, f.ino)
					if err != nil || n == 0 {
						continue
					}
					off := uint64(rng.Intn(int(n)))
					if err := fs.WriteFile(f.line, f.ino, off, 1+rng.Intn(3)); err != nil {
						continue
					}
				case 7: // truncate
					if len(inos) == 0 {
						continue
					}
					f := inos[rng.Intn(len(inos))]
					n, err := fs.FileLen(f.line, f.ino)
					if err != nil || n == 0 {
						continue
					}
					_ = fs.TruncateFile(f.line, f.ino, uint64(rng.Intn(int(n))))
				case 8: // delete
					if len(inos) == 0 {
						continue
					}
					i := rng.Intn(len(inos))
					f := inos[i]
					if err := fs.DeleteFile(f.line, f.ino); err == nil {
						inos = append(inos[:i], inos[i+1:]...)
					}
				case 9: // snapshot
					if _, ok := fs.Line(line); ok {
						if v, err := fs.TakeSnapshot(line); err == nil {
							snaps = append(snaps, snap{line, v})
						}
					}
				}
			}
			// Occasionally clone or delete a snapshot.
			if len(snaps) > 0 && rng.Intn(4) == 0 {
				s := snaps[rng.Intn(len(snaps))]
				if _, err := fs.Clone(s.line, s.v); err != nil {
					t.Fatal(err)
				}
			}
			if len(snaps) > 2 && rng.Intn(3) == 0 {
				i := rng.Intn(len(snaps))
				s := snaps[i]
				if err := fs.DeleteSnapshot(s.line, s.v); err == nil {
					snaps = append(snaps[:i], snaps[i+1:]...)
				}
			}
			if _, err := fs.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if cp == 10 {
				mustVerify(t, fs, eng)
			}
			if cp == 15 {
				fs.Catalog().ReapZombies()
				if err := eng.Compact(); err != nil {
					t.Fatal(err)
				}
				mustVerify(t, fs, eng)
				fs.Reclaim()
			}
		}
		mustVerify(t, fs, eng)
		if err := eng.Compact(); err != nil {
			t.Fatal(err)
		}
		mustVerify(t, fs, eng)
	}
}

func TestVerifierDetectsCorruption(t *testing.T) {
	// The verifier itself must be able to fail: remove a reference behind
	// the file system's back and check that verification reports it.
	fs, eng := newTracked(t)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 2); err != nil {
		t.Fatal(err)
	}
	mustCP(t, fs)
	l, _ := fs.Line(0)
	b := l.Live.BlocksOf(ino)[0]
	eng.RemoveRef(core.Ref{Block: b, Inode: ino, Offset: 0, Line: 0, Length: 1}, fs.CP())
	if err := fs.VerifyBackrefs(eng); err == nil {
		t.Fatal("verifier missed an induced inconsistency")
	}
}
