package fsim

import (
	"fmt"
	"sort"
	"strings"

	"github.com/backlogfs/backlog/internal/core"
)

// LiveVersion is the sentinel "version" representing a live-image
// reference in verifier keys.
const LiveVersion = ^uint64(0)

// ownerKey is one (inode, offset, line, version) ground-truth reference.
// Version is a retained snapshot version or LiveVersion.
type ownerKey struct {
	Ino, Off, Line, Version uint64
}

func (k ownerKey) String() string {
	v := fmt.Sprintf("%d", k.Version)
	if k.Version == LiveVersion {
		v = "live"
	}
	return fmt.Sprintf("(ino=%d off=%d line=%d v=%s)", k.Ino, k.Off, k.Line, v)
}

// ExpectedBackrefs walks the entire file system tree — every retained
// snapshot image and every live image — and reconstructs the ground-truth
// back references, exactly like the paper's verification utility
// (Section 5: "a utility program that walks the entire file system tree,
// reconstructs the back references, and then compares them with the
// database produced by our algorithm").
func (fs *FS) ExpectedBackrefs() map[uint64]map[ownerKey]bool {
	out := map[uint64]map[ownerKey]bool{}
	add := func(block uint64, k ownerKey) {
		m, ok := out[block]
		if !ok {
			m = map[ownerKey]bool{}
			out[block] = m
		}
		m[k] = true
	}
	for lineID, l := range fs.lines {
		for v, img := range l.Snapshots {
			for ino, f := range img.files {
				for off, b := range f.Blocks {
					if b != NoBlock {
						add(b, ownerKey{Ino: ino, Off: uint64(off), Line: lineID, Version: v})
					}
				}
			}
		}
		if l.deleted {
			continue
		}
		for ino, f := range l.Live.files {
			for off, b := range f.Blocks {
				if b != NoBlock {
					add(b, ownerKey{Ino: ino, Off: uint64(off), Line: lineID, Version: LiveVersion})
				}
			}
		}
	}
	return out
}

// engineBackrefs flattens an engine query result into verifier keys.
func engineBackrefs(block uint64, owners []core.Owner) map[ownerKey]bool {
	out := map[ownerKey]bool{}
	for _, o := range owners {
		for _, v := range o.Versions {
			out[ownerKey{Ino: o.Inode, Off: o.Offset, Line: o.Line, Version: v}] = true
		}
		if o.Live {
			out[ownerKey{Ino: o.Inode, Off: o.Offset, Line: o.Line, Version: LiveVersion}] = true
		}
	}
	return out
}

// VerifyBackrefs compares the engine's query results against the
// tree-walk ground truth for every block ever allocated. It returns an
// error describing the first few mismatches, or nil if the database is
// exact. Note: ops buffered in the engine's write store are visible to
// queries, so verification may run at any point, not only at CP
// boundaries.
func (fs *FS) VerifyBackrefs(eng *core.Engine) error {
	expected := fs.ExpectedBackrefs()
	var problems []string
	report := func(format string, args ...interface{}) bool {
		problems = append(problems, fmt.Sprintf(format, args...))
		return len(problems) >= 10
	}
	for b := uint64(1); b < fs.MaxBlock(); b++ {
		owners, err := eng.Query(b)
		if err != nil {
			return fmt.Errorf("fsim: verify query block %d: %w", b, err)
		}
		got := engineBackrefs(b, owners)
		want := expected[b]
		for k := range want {
			if !got[k] {
				if report("block %d: missing %v", b, k) {
					goto done
				}
			}
		}
		for k := range got {
			if !want[k] {
				if report("block %d: spurious %v", b, k) {
					goto done
				}
			}
		}
	}
done:
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("fsim: back-reference verification failed:\n%s", strings.Join(problems, "\n"))
	}
	return nil
}
