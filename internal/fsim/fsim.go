// Package fsim is a write-anywhere file system simulator, the evaluation
// substrate the paper builds and measures Backlog inside (Section 5).
//
// Like the paper's fsim, it simulates a WAFL-style no-overwrite file system
// with writable snapshots and deduplication: it keeps all file system
// metadata in main memory, stores no data blocks, and exports interfaces
// for creating, deleting, and writing files plus snapshot/clone management.
// Only the back-reference metadata produced by the attached RefTracker
// touches (simulated) disk, so storage-level I/O statistics measure exactly
// the back-reference maintenance overhead — the quantity plotted in
// Figures 5 and 7.
//
// The file system is modeled as a forest of snapshot lines. Each line has a
// live image (inode -> block map) and a set of frozen snapshot images.
// Overwrites follow write-anywhere semantics: data lands in newly allocated
// blocks and the old blocks are released from the live image (snapshots
// keep referencing them). Every reference add/remove is reported to the
// RefTracker tagged with the current global CP number; Checkpoint advances
// the CP and flushes the tracker.
package fsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/backlogfs/backlog/internal/core"
)

// NoBlock marks a hole in a file's block map.
const NoBlock = ^uint64(0)

// RefTracker receives the three callbacks the paper wires Backlog into
// (Section 5): reference added, reference removed, consistency point.
// *core.Engine satisfies RefTracker directly.
type RefTracker interface {
	AddRef(ref core.Ref, cp uint64)
	RemoveRef(ref core.Ref, cp uint64)
	Checkpoint(cp uint64) error
}

// NullTracker ignores all events; it is the "Base" configuration with no
// back-reference maintenance at all.
type NullTracker struct{}

// AddRef implements RefTracker.
func (NullTracker) AddRef(core.Ref, uint64) {}

// RemoveRef implements RefTracker.
func (NullTracker) RemoveRef(core.Ref, uint64) {}

// Checkpoint implements RefTracker.
func (NullTracker) Checkpoint(uint64) error { return nil }

// Config configures a simulated file system.
type Config struct {
	// Tracker receives back-reference events. Nil means NullTracker.
	Tracker RefTracker
	// Catalog is the shared snapshot catalog; the same instance must be
	// given to the core engine so masking agrees with the simulator.
	// Nil creates a private catalog (fine for Base/Null configurations).
	Catalog *core.MemCatalog
	// DedupRate is the fraction of newly written blocks that become
	// references to existing blocks instead of fresh allocations
	// (the paper uses 0.10, calibrated on NetApp file servers).
	DedupRate float64
	// DedupWindow bounds the pool of recently written blocks that dedup
	// draws from (default 4096).
	DedupWindow int
	// Seed makes the simulator deterministic.
	Seed int64
}

// Stats counts simulator activity.
type Stats struct {
	BlockOps      uint64 // reference adds + removes reported to the tracker
	BlockOpsAdd   uint64
	BlockOpsRem   uint64
	DedupHits     uint64 // writes satisfied by referencing an existing block
	FilesCreated  uint64
	FilesDeleted  uint64
	Checkpoints   uint64
	Snapshots     uint64
	Clones        uint64
	BlocksAlloced uint64
	BlocksReused  uint64
}

// File is one file's block map. Files are copy-on-write: once frozen by a
// snapshot they are cloned before modification.
type File struct {
	Ino    uint64
	Blocks []uint64
	frozen bool
}

func (f *File) clone() *File {
	return &File{Ino: f.Ino, Blocks: append([]uint64(nil), f.Blocks...)}
}

// Image is a point-in-time file system tree: inode -> file.
type Image struct {
	files map[uint64]*File
}

func newImage() *Image { return &Image{files: make(map[uint64]*File)} }

func (im *Image) freeze() {
	for _, f := range im.files {
		f.frozen = true
	}
}

// shallowCopy shares all file objects (which must be frozen).
func (im *Image) shallowCopy() *Image {
	cp := &Image{files: make(map[uint64]*File, len(im.files))}
	for ino, f := range im.files {
		cp.files[ino] = f
	}
	return cp
}

// mutable returns a writable *File for ino, copying it if frozen.
func (im *Image) mutable(ino uint64) (*File, bool) {
	f, ok := im.files[ino]
	if !ok {
		return nil, false
	}
	if f.frozen {
		f = f.clone()
		im.files[ino] = f
	}
	return f, true
}

// Inodes returns the image's inode numbers, ascending.
func (im *Image) Inodes() []uint64 {
	out := make([]uint64, 0, len(im.files))
	for ino := range im.files {
		out = append(out, ino)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlocksOf returns the block map of an inode (nil if absent). The returned
// slice must not be modified.
func (im *Image) BlocksOf(ino uint64) []uint64 {
	f, ok := im.files[ino]
	if !ok {
		return nil
	}
	return f.Blocks
}

// Line is one snapshot line: a live image plus retained snapshots.
type Line struct {
	ID        uint64
	Live      *Image
	Snapshots map[uint64]*Image // version -> frozen image
	deleted   bool
}

// FS is the simulated file system.
type FS struct {
	cfg     Config
	tracker RefTracker
	catalog *core.MemCatalog
	rng     *rand.Rand

	cp        uint64 // current (uncommitted) global CP number
	nextInode uint64
	nextLine  uint64
	nextBlock uint64
	freeList  []uint64

	lines map[uint64]*Line

	// liveRefs counts references to each block from live images only;
	// dedupPool is the window of recently written blocks.
	liveRefs  map[uint64]int
	dedupPool []uint64

	stats Stats
}

// New creates a file system with one live line (line 0) at CP 1.
func New(cfg Config) *FS {
	if cfg.Tracker == nil {
		cfg.Tracker = NullTracker{}
	}
	if cfg.Catalog == nil {
		cfg.Catalog = core.NewMemCatalog()
	}
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = 4096
	}
	fs := &FS{
		cfg:       cfg,
		tracker:   cfg.Tracker,
		catalog:   cfg.Catalog,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		cp:        1,
		nextInode: 2, // inode 1 reserved for the (unmodeled) root directory
		nextLine:  1,
		nextBlock: 1,
		lines:     map[uint64]*Line{0: {ID: 0, Live: newImage(), Snapshots: map[uint64]*Image{}}},
		liveRefs:  map[uint64]int{},
	}
	return fs
}

// Catalog returns the shared snapshot catalog.
func (fs *FS) Catalog() *core.MemCatalog { return fs.catalog }

// CP returns the current (in-progress) global CP number.
func (fs *FS) CP() uint64 { return fs.cp }

// Stats returns a snapshot of simulator counters.
func (fs *FS) Stats() Stats { return fs.stats }

// Lines returns the IDs of lines that still have a live image, ascending.
func (fs *FS) Lines() []uint64 {
	var out []uint64
	for id, l := range fs.lines {
		if !l.deleted {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Line returns a line by ID (including lines whose live image was deleted
// but which still hold snapshots).
func (fs *FS) Line(id uint64) (*Line, bool) {
	l, ok := fs.lines[id]
	return l, ok
}

var (
	errNoLine = errors.New("fsim: no such live line")
	errNoFile = errors.New("fsim: no such file")
)

func (fs *FS) liveLine(line uint64) (*Line, error) {
	l, ok := fs.lines[line]
	if !ok || l.deleted {
		return nil, fmt.Errorf("%w: %d", errNoLine, line)
	}
	return l, nil
}

// mutableLine is liveLine plus the snapshot-ordering rule: once a line has
// been snapshotted at the current CP, further mutations must wait for the
// next CP — operations are tagged with the current CP number, and a
// mutation tagged v would contradict the frozen image of version v.
func (fs *FS) mutableLine(line uint64) (*Line, error) {
	l, err := fs.liveLine(line)
	if err != nil {
		return nil, err
	}
	if _, snapped := l.Snapshots[fs.cp]; snapped {
		return nil, fmt.Errorf("fsim: line %d already snapshotted at CP %d; checkpoint before mutating", line, fs.cp)
	}
	return l, nil
}

// allocBlock returns a fresh (or recycled) physical block number.
func (fs *FS) allocBlock() uint64 {
	if n := len(fs.freeList); n > 0 {
		b := fs.freeList[n-1]
		fs.freeList = fs.freeList[:n-1]
		fs.stats.BlocksReused++
		return b
	}
	b := fs.nextBlock
	fs.nextBlock++
	fs.stats.BlocksAlloced++
	return b
}

// writeTarget picks the physical block for a newly written logical block:
// either a duplicate of an existing block (dedup) or a fresh allocation.
func (fs *FS) writeTarget() uint64 {
	if fs.cfg.DedupRate > 0 && len(fs.dedupPool) > 0 && fs.rng.Float64() < fs.cfg.DedupRate {
		// Try a few pool slots for a block that is still referenced.
		for attempt := 0; attempt < 4; attempt++ {
			b := fs.dedupPool[fs.rng.Intn(len(fs.dedupPool))]
			if fs.liveRefs[b] > 0 {
				fs.stats.DedupHits++
				return b
			}
		}
	}
	return fs.allocBlock()
}

func (fs *FS) notePoolWrite(block uint64) {
	if len(fs.dedupPool) < fs.cfg.DedupWindow {
		fs.dedupPool = append(fs.dedupPool, block)
		return
	}
	fs.dedupPool[fs.rng.Intn(len(fs.dedupPool))] = block
}

// addRef wires one reference add through to the tracker and refcounts.
func (fs *FS) addRef(block, ino, off, line uint64) {
	fs.liveRefs[block]++
	fs.stats.BlockOps++
	fs.stats.BlockOpsAdd++
	fs.tracker.AddRef(core.Ref{Block: block, Inode: ino, Offset: off, Line: line, Length: 1}, fs.cp)
}

// removeRef wires one reference removal through to the tracker.
func (fs *FS) removeRef(block, ino, off, line uint64) {
	if fs.liveRefs[block] > 0 {
		fs.liveRefs[block]--
	}
	fs.stats.BlockOps++
	fs.stats.BlockOpsRem++
	fs.tracker.RemoveRef(core.Ref{Block: block, Inode: ino, Offset: off, Line: line, Length: 1}, fs.cp)
}

// CreateFile creates an empty file in a line's live image and returns its
// inode number.
func (fs *FS) CreateFile(line uint64) (uint64, error) {
	l, err := fs.mutableLine(line)
	if err != nil {
		return 0, err
	}
	ino := fs.nextInode
	fs.nextInode++
	l.Live.files[ino] = &File{Ino: ino}
	fs.stats.FilesCreated++
	return ino, nil
}

// WriteFile writes nblocks logical blocks at block offset off. Overwritten
// blocks are released (write-anywhere: data goes to new physical blocks).
func (fs *FS) WriteFile(line, ino, off uint64, nblocks int) error {
	l, err := fs.mutableLine(line)
	if err != nil {
		return err
	}
	f, ok := l.Live.mutable(ino)
	if !ok {
		return fmt.Errorf("%w: inode %d in line %d", errNoFile, ino, line)
	}
	end := off + uint64(nblocks)
	for uint64(len(f.Blocks)) < end {
		f.Blocks = append(f.Blocks, NoBlock)
	}
	for i := off; i < end; i++ {
		if old := f.Blocks[i]; old != NoBlock {
			fs.removeRef(old, ino, i, line)
		}
		b := fs.writeTarget()
		f.Blocks[i] = b
		fs.addRef(b, ino, i, line)
		fs.notePoolWrite(b)
	}
	return nil
}

// TruncateFile shrinks a file to newLen blocks, releasing the tail.
func (fs *FS) TruncateFile(line, ino, newLen uint64) error {
	l, err := fs.mutableLine(line)
	if err != nil {
		return err
	}
	f, ok := l.Live.mutable(ino)
	if !ok {
		return fmt.Errorf("%w: inode %d in line %d", errNoFile, ino, line)
	}
	if newLen >= uint64(len(f.Blocks)) {
		return nil
	}
	for i := newLen; i < uint64(len(f.Blocks)); i++ {
		if b := f.Blocks[i]; b != NoBlock {
			fs.removeRef(b, ino, i, line)
		}
	}
	f.Blocks = f.Blocks[:newLen]
	return nil
}

// DeleteFile removes a file from a line's live image, releasing its blocks.
func (fs *FS) DeleteFile(line, ino uint64) error {
	l, err := fs.mutableLine(line)
	if err != nil {
		return err
	}
	f, ok := l.Live.files[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d in line %d", errNoFile, ino, line)
	}
	for i, b := range f.Blocks {
		if b != NoBlock {
			fs.removeRef(b, ino, uint64(i), line)
		}
	}
	delete(l.Live.files, ino)
	fs.stats.FilesDeleted++
	return nil
}

// FileLen returns a file's length in blocks.
func (fs *FS) FileLen(line, ino uint64) (uint64, error) {
	l, err := fs.liveLine(line)
	if err != nil {
		return 0, err
	}
	f, ok := l.Live.files[ino]
	if !ok {
		return 0, fmt.Errorf("%w: inode %d", errNoFile, ino)
	}
	return uint64(len(f.Blocks)), nil
}

// LiveFiles returns the inode numbers of a line's live image.
func (fs *FS) LiveFiles(line uint64) ([]uint64, error) {
	l, err := fs.liveLine(line)
	if err != nil {
		return nil, err
	}
	return l.Live.Inodes(), nil
}

// Checkpoint completes the current consistency point: the tracker flushes
// its write stores, and the global CP number advances. Returns the CP that
// was committed.
func (fs *FS) Checkpoint() (uint64, error) {
	cp := fs.cp
	if err := fs.tracker.Checkpoint(cp); err != nil {
		return 0, err
	}
	fs.cp++
	fs.stats.Checkpoints++
	return cp, nil
}

// TakeSnapshot freezes the current live image of a line as version
// fs.CP(). Creating a snapshot generates no back-reference traffic
// (Section 4: intervals already cover the snapshot's version).
func (fs *FS) TakeSnapshot(line uint64) (uint64, error) {
	l, err := fs.liveLine(line)
	if err != nil {
		return 0, err
	}
	v := fs.cp
	if _, dup := l.Snapshots[v]; dup {
		return 0, fmt.Errorf("fsim: snapshot (%d,%d) already exists", line, v)
	}
	l.Live.freeze()
	l.Snapshots[v] = l.Live.shallowCopy()
	if err := fs.catalog.CreateSnapshot(line, v); err != nil {
		return 0, err
	}
	fs.stats.Snapshots++
	return v, nil
}

// DeleteSnapshot drops a retained snapshot. The catalog handles zombie
// bookkeeping if the snapshot has clones.
func (fs *FS) DeleteSnapshot(line, version uint64) error {
	l, ok := fs.lines[line]
	if !ok {
		return fmt.Errorf("%w: %d", errNoLine, line)
	}
	if _, ok := l.Snapshots[version]; !ok {
		return fmt.Errorf("fsim: no snapshot (%d,%d)", line, version)
	}
	if err := fs.catalog.DeleteSnapshot(line, version); err != nil {
		return err
	}
	delete(l.Snapshots, version)
	return nil
}

// Clone creates a writable clone of snapshot (line, version) and returns
// the new line's ID. Cloning generates no back-reference traffic —
// structural inheritance represents the clone's references implicitly
// (Section 4.2.2).
func (fs *FS) Clone(line, version uint64) (uint64, error) {
	l, ok := fs.lines[line]
	if !ok {
		return 0, fmt.Errorf("%w: %d", errNoLine, line)
	}
	img, ok := l.Snapshots[version]
	if !ok {
		return 0, fmt.Errorf("fsim: cloning non-snapshot (%d,%d)", line, version)
	}
	id := fs.nextLine
	fs.nextLine++
	if err := fs.catalog.CreateClone(id, line, version); err != nil {
		return 0, err
	}
	live := img.shallowCopy()
	fs.lines[id] = &Line{ID: id, Live: live, Snapshots: map[uint64]*Image{}}
	// The clone's live image references its blocks; account for them in
	// liveRefs (allocator safety) without emitting tracker events.
	for _, f := range live.files {
		for _, b := range f.Blocks {
			if b != NoBlock {
				fs.liveRefs[b]++
			}
		}
	}
	fs.stats.Clones++
	return id, nil
}

// DeleteLine destroys a line's live image. Retained snapshots survive
// until deleted individually. Like snapshot deletion, this produces no
// back-reference traffic: version masking hides the line's live records,
// and compaction purges them.
func (fs *FS) DeleteLine(line uint64) error {
	l, err := fs.mutableLine(line)
	if err != nil {
		return err
	}
	for _, f := range l.Live.files {
		for _, b := range f.Blocks {
			if b != NoBlock && fs.liveRefs[b] > 0 {
				fs.liveRefs[b]--
			}
		}
	}
	l.Live = newImage()
	l.deleted = true
	if err := fs.catalog.DeleteLine(line); err != nil {
		return err
	}
	return nil
}

// RelocateBlock rewrites every pointer to oldBlock — in live images and in
// retained snapshot images — to newBlock. This is the file-system side of
// physically moving a block during defragmentation or volume shrinking:
// the maintenance utility updates the metadata of every owner the
// back-reference query reported. It emits no tracker events; pair it with
// core.Engine.RelocateBlock, which transplants the back-reference records.
// It returns the number of distinct file objects updated.
func (fs *FS) RelocateBlock(oldBlock, newBlock uint64) int {
	rewritten := map[*File]bool{}
	rewrite := func(im *Image) {
		for _, f := range im.files {
			if rewritten[f] {
				continue // file object shared with another image
			}
			for i, b := range f.Blocks {
				if b == oldBlock {
					f.Blocks[i] = newBlock
					rewritten[f] = true
				}
			}
		}
	}
	for _, l := range fs.lines {
		if !l.deleted {
			rewrite(l.Live)
		}
		for _, img := range l.Snapshots {
			rewrite(img)
		}
	}
	if n := fs.liveRefs[oldBlock]; n > 0 {
		fs.liveRefs[newBlock] += n
		delete(fs.liveRefs, oldBlock)
	}
	return len(rewritten)
}

// Reclaim sweeps for physical blocks referenced by no image (live or
// snapshot) and returns them to the free list — the paper's asynchronous
// space reclamation. It returns the number of blocks freed.
func (fs *FS) Reclaim() int {
	reachable := fs.reachableBlocks()
	freed := 0
	inFree := make(map[uint64]bool, len(fs.freeList))
	for _, b := range fs.freeList {
		inFree[b] = true
	}
	for b := uint64(1); b < fs.nextBlock; b++ {
		if !reachable[b] && !inFree[b] {
			fs.freeList = append(fs.freeList, b)
			freed++
		}
	}
	return freed
}

// reachableBlocks returns the set of blocks referenced by any image.
func (fs *FS) reachableBlocks() map[uint64]bool {
	out := map[uint64]bool{}
	addImage := func(im *Image) {
		for _, f := range im.files {
			for _, b := range f.Blocks {
				if b != NoBlock {
					out[b] = true
				}
			}
		}
	}
	for _, l := range fs.lines {
		if !l.deleted {
			addImage(l.Live)
		}
		for _, img := range l.Snapshots {
			addImage(img)
		}
	}
	return out
}

// PhysicalBlocks returns the number of unique blocks referenced by any
// image — the "total physical data size" denominator of the space-overhead
// figures (Figures 6 and 8).
func (fs *FS) PhysicalBlocks() int {
	return len(fs.reachableBlocks())
}

// AllocatedBlocks returns the sorted list of blocks referenced by any
// image. The query experiments (Section 6.4) issue runs over consecutive
// allocated blocks; this is their input.
func (fs *FS) AllocatedBlocks() []uint64 {
	set := fs.reachableBlocks()
	out := make([]uint64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxBlock returns the highest block number ever allocated plus one.
func (fs *FS) MaxBlock() uint64 { return fs.nextBlock }
