package fsim

import (
	"math/rand"
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// journalingTracker wraps the engine with an operation journal, playing
// the role of the file system's NVRAM/journal from Section 5.4: after a
// crash, ops since the last consistency point are replayed to rebuild the
// write stores.
type journalingTracker struct {
	eng     *core.Engine
	pending []journalEntry
}

type journalEntry struct {
	ref core.Ref
	cp  uint64
	add bool
}

func (j *journalingTracker) AddRef(r core.Ref, cp uint64) {
	j.pending = append(j.pending, journalEntry{ref: r, cp: cp, add: true})
	j.eng.AddRef(r, cp)
}

func (j *journalingTracker) RemoveRef(r core.Ref, cp uint64) {
	j.pending = append(j.pending, journalEntry{ref: r, cp: cp, add: false})
	j.eng.RemoveRef(r, cp)
}

func (j *journalingTracker) Checkpoint(cp uint64) error {
	if err := j.eng.Checkpoint(cp); err != nil {
		return err
	}
	j.pending = j.pending[:0] // journal truncation at CP
	return nil
}

// replay re-drives the journaled ops into a freshly recovered engine.
func (j *journalingTracker) replay(eng *core.Engine) {
	for _, e := range j.pending {
		if e.add {
			eng.AddRef(e.ref, e.cp)
		} else {
			eng.RemoveRef(e.ref, e.cp)
		}
	}
	j.eng = eng
}

// TestJournalReplayEndToEnd runs a random fsim workload, crashes the
// storage mid-CP, recovers the engine, replays the journal, and verifies
// the database against a full tree walk — the complete Section 5.4
// recovery story.
func TestJournalReplayEndToEnd(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	jt := &journalingTracker{eng: eng}
	fs := New(Config{Tracker: jt, Catalog: cat, DedupRate: 0.10, Seed: 21})
	rng := rand.New(rand.NewSource(55))

	var inos []uint64
	churn := func(n int) {
		for i := 0; i < n; i++ {
			switch {
			case rng.Intn(3) == 0 || len(inos) == 0:
				ino, err := fs.CreateFile(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.WriteFile(0, ino, 0, 1+rng.Intn(5)); err != nil {
					t.Fatal(err)
				}
				inos = append(inos, ino)
			case rng.Intn(2) == 0:
				ino := inos[rng.Intn(len(inos))]
				ln, err := fs.FileLen(0, ino)
				if err != nil || ln == 0 {
					continue
				}
				if err := fs.WriteFile(0, ino, uint64(rng.Intn(int(ln))), 1); err != nil {
					t.Fatal(err)
				}
			default:
				i := rng.Intn(len(inos))
				if err := fs.DeleteFile(0, inos[i]); err != nil {
					t.Fatal(err)
				}
				inos = append(inos[:i], inos[i+1:]...)
			}
		}
	}

	// A few committed CPs with a snapshot in the middle.
	for cp := 0; cp < 5; cp++ {
		churn(20)
		if cp == 2 {
			if _, err := fs.TakeSnapshot(0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := fs.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	// Mid-CP ops that will be lost by the crash but survive in the
	// journal.
	churn(15)

	// Crash: engine state on disk reverts to the last durable CP.
	vfs.Crash()
	eng2, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the journal into the recovered engine; fsim's in-memory tree
	// plays the role of the journaled file system state.
	jt.replay(eng2)

	// The recovered + replayed database matches the full tree walk.
	if err := fs.VerifyBackrefs(eng2); err != nil {
		t.Fatal(err)
	}

	// And the system keeps working: another CP, compaction, verify again.
	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyBackrefs(eng2); err != nil {
		t.Fatal(err)
	}
}

// TestRelocateBlockFsim exercises fsim's pointer-rewriting side of block
// relocation against the engine's record transplantation, including a
// block shared by a snapshot and a clone.
func TestRelocateBlockFsim(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(Config{Tracker: eng, Catalog: cat, Seed: 9})
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 4); err != nil {
		t.Fatal(err)
	}
	v, err := fs.TakeSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Clone(0, v); err != nil {
		t.Fatal(err)
	}

	l, _ := fs.Line(0)
	old := l.Live.BlocksOf(ino)[1]
	target := fs.MaxBlock() + 100
	if n := fs.RelocateBlock(old, target); n == 0 {
		t.Fatal("no pointers rewritten")
	}
	if err := eng.RelocateBlock(old, target); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatal(err)
	}
	// The snapshot image sees the new location too (relocation rewrites
	// all owners' pointers, which is the whole point of back references).
	if got := l.Snapshots[v].BlocksOf(ino)[1]; got != target {
		t.Fatalf("snapshot pointer = %d, want %d", got, target)
	}
}
