package fsim

import (
	"math/rand"
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/naive"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// journalingTracker wraps the engine with an operation journal, playing
// the role of the file system's NVRAM/journal from Section 5.4: after a
// crash, ops since the last consistency point are replayed to rebuild the
// write stores.
type journalingTracker struct {
	eng     *core.Engine
	pending []journalEntry
}

type journalEntry struct {
	ref core.Ref
	cp  uint64
	add bool
}

func (j *journalingTracker) AddRef(r core.Ref, cp uint64) {
	j.pending = append(j.pending, journalEntry{ref: r, cp: cp, add: true})
	j.eng.AddRef(r, cp)
}

func (j *journalingTracker) RemoveRef(r core.Ref, cp uint64) {
	j.pending = append(j.pending, journalEntry{ref: r, cp: cp, add: false})
	j.eng.RemoveRef(r, cp)
}

func (j *journalingTracker) Checkpoint(cp uint64) error {
	if err := j.eng.Checkpoint(cp); err != nil {
		return err
	}
	j.pending = j.pending[:0] // journal truncation at CP
	return nil
}

// replay re-drives the journaled ops into a freshly recovered engine.
func (j *journalingTracker) replay(eng *core.Engine) {
	for _, e := range j.pending {
		if e.add {
			eng.AddRef(e.ref, e.cp)
		} else {
			eng.RemoveRef(e.ref, e.cp)
		}
	}
	j.eng = eng
}

// TestJournalReplayEndToEnd runs a random fsim workload, crashes the
// storage mid-CP, recovers the engine, replays the journal, and verifies
// the database against a full tree walk — the complete Section 5.4
// recovery story.
func TestJournalReplayEndToEnd(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	jt := &journalingTracker{eng: eng}
	fs := New(Config{Tracker: jt, Catalog: cat, DedupRate: 0.10, Seed: 21})
	rng := rand.New(rand.NewSource(55))

	var inos []uint64
	churn := func(n int) {
		for i := 0; i < n; i++ {
			switch {
			case rng.Intn(3) == 0 || len(inos) == 0:
				ino, err := fs.CreateFile(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.WriteFile(0, ino, 0, 1+rng.Intn(5)); err != nil {
					t.Fatal(err)
				}
				inos = append(inos, ino)
			case rng.Intn(2) == 0:
				ino := inos[rng.Intn(len(inos))]
				ln, err := fs.FileLen(0, ino)
				if err != nil || ln == 0 {
					continue
				}
				if err := fs.WriteFile(0, ino, uint64(rng.Intn(int(ln))), 1); err != nil {
					t.Fatal(err)
				}
			default:
				i := rng.Intn(len(inos))
				if err := fs.DeleteFile(0, inos[i]); err != nil {
					t.Fatal(err)
				}
				inos = append(inos[:i], inos[i+1:]...)
			}
		}
	}

	// A few committed CPs with a snapshot in the middle.
	for cp := 0; cp < 5; cp++ {
		churn(20)
		if cp == 2 {
			if _, err := fs.TakeSnapshot(0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := fs.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	// Mid-CP ops that will be lost by the crash but survive in the
	// journal.
	churn(15)

	// Crash: engine state on disk reverts to the last durable CP.
	vfs.Crash()
	eng2, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the journal into the recovered engine; fsim's in-memory tree
	// plays the role of the journaled file system state.
	jt.replay(eng2)

	// The recovered + replayed database matches the full tree walk.
	if err := fs.VerifyBackrefs(eng2); err != nil {
		t.Fatal(err)
	}

	// And the system keeps working: another CP, compaction, verify again.
	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyBackrefs(eng2); err != nil {
		t.Fatal(err)
	}
}

// killPointTracker journals every op like journalingTracker and also
// remembers how many ops the last committed checkpoint covered, so a test
// can compute exactly which ops each durability mode must preserve across
// a crash.
type killPointTracker struct {
	eng   *core.Engine
	ops   []journalEntry
	acked int // ops covered by the last committed checkpoint
}

func normRef(r core.Ref) core.Ref {
	if r.Length == 0 {
		r.Length = 1 // match the engine's normalization
	}
	return r
}

func (k *killPointTracker) AddRef(r core.Ref, cp uint64) {
	k.ops = append(k.ops, journalEntry{ref: normRef(r), cp: cp, add: true})
	k.eng.AddRef(r, cp)
}

func (k *killPointTracker) RemoveRef(r core.Ref, cp uint64) {
	k.ops = append(k.ops, journalEntry{ref: normRef(r), cp: cp, add: false})
	k.eng.RemoveRef(r, cp)
}

func (k *killPointTracker) Checkpoint(cp uint64) error {
	if err := k.eng.Checkpoint(cp); err != nil {
		return err
	}
	k.acked = len(k.ops)
	return nil
}

// verifyAgainstNaive drives ops into a fresh Section 4.1 naive tracker —
// the simplest possible correct implementation — and compares the set of
// live references per block against the recovered engine.
func verifyAgainstNaive(t *testing.T, eng *core.Engine, ops []journalEntry) {
	t.Helper()
	oracle, err := naive.New(storage.NewMemFS(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[uint64]bool{}
	for _, op := range ops {
		blocks[op.ref.Block] = true
		if op.add {
			oracle.AddRef(op.ref, op.cp)
		} else {
			oracle.RemoveRef(op.ref, op.cp)
		}
	}
	for b := range blocks {
		recs, err := oracle.QueryBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		want := map[core.Ref]bool{}
		for _, r := range recs {
			if r.To == core.Infinity {
				want[r.Ref] = true
			}
		}
		owners, err := eng.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		got := map[core.Ref]bool{}
		for _, o := range owners {
			if o.Live {
				got[core.Ref{Block: b, Inode: o.Inode, Offset: o.Offset, Line: o.Line, Length: o.Length}] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d live owners, oracle says %d\n got: %v\nwant: %v", b, len(got), len(want), got, want)
		}
		for r := range want {
			if !got[r] {
				t.Fatalf("block %d: oracle reference %+v missing after recovery", b, r)
			}
		}
	}
}

// TestKillPointRecoveryAgainstNaiveOracle crashes a random fsim workload
// between AddRef and Checkpoint under every durability mode and checks the
// replayed state against the naive oracle. With Durability: Sync, no
// acknowledged reference may be lost even though no checkpoint covered it
// — the acceptance criterion for the write-ahead log. With Buffered and
// CheckpointOnly the recovered state must be exactly the last committed
// checkpoint (the log segments were never synced, so MemFS.Crash discards
// them; the default 4 MB segment size guarantees no mid-test rotation
// syncs a prefix).
func TestKillPointRecoveryAgainstNaiveOracle(t *testing.T) {
	for _, mode := range []wal.Durability{wal.CheckpointOnly, wal.Buffered, wal.Sync} {
		t.Run(mode.String(), func(t *testing.T) {
			vfs := storage.NewMemFS()
			cat := core.NewMemCatalog()
			open := func() *core.Engine {
				eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat, Durability: mode})
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			kt := &killPointTracker{eng: open()}
			fs := New(Config{Tracker: kt, Catalog: cat, DedupRate: 0.15, Seed: 7})
			rng := rand.New(rand.NewSource(101))

			var inos []uint64
			churn := func(n int) {
				for i := 0; i < n; i++ {
					switch {
					case rng.Intn(3) == 0 || len(inos) == 0:
						ino, err := fs.CreateFile(0)
						if err != nil {
							t.Fatal(err)
						}
						if err := fs.WriteFile(0, ino, 0, 1+rng.Intn(5)); err != nil {
							t.Fatal(err)
						}
						inos = append(inos, ino)
					case rng.Intn(2) == 0:
						ino := inos[rng.Intn(len(inos))]
						ln, err := fs.FileLen(0, ino)
						if err != nil || ln == 0 {
							continue
						}
						if err := fs.WriteFile(0, ino, uint64(rng.Intn(int(ln))), 1); err != nil {
							t.Fatal(err)
						}
					default:
						i := rng.Intn(len(inos))
						if err := fs.DeleteFile(0, inos[i]); err != nil {
							t.Fatal(err)
						}
						inos = append(inos[:i], inos[i+1:]...)
					}
				}
			}

			for round := 0; round < 5; round++ {
				churn(10 + rng.Intn(20))
				if _, err := fs.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// The kill point: acknowledged updates, no checkpoint.
				churn(5 + rng.Intn(25))
				vfs.Crash()
				eng2 := open()

				acked := kt.ops
				if mode != wal.Sync {
					acked = kt.ops[:kt.acked]
				}
				verifyAgainstNaive(t, eng2, acked)
				if mode == wal.Sync && round == 0 && eng2.Stats().WALReplayed == 0 {
					t.Fatal("sync-mode recovery replayed nothing")
				}

				// Re-drive the legitimately lost tail (the file system's
				// journal would do this, Section 5.4) so the engine
				// matches fsim's in-memory tree again, then prove the
				// recovered system keeps working end to end.
				if mode != wal.Sync {
					for _, op := range kt.ops[kt.acked:] {
						if op.add {
							eng2.AddRef(op.ref, op.cp)
						} else {
							eng2.RemoveRef(op.ref, op.cp)
						}
					}
				}
				kt.eng = eng2
				if _, err := fs.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if err := fs.VerifyBackrefs(kt.eng); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		})
	}
}

// TestCheckpointFlushCrashKillPoint crashes INSIDE a checkpoint's
// lock-free flush — after the write stores froze, before the manifest
// commit — under every durability mode. The frozen-store checkpoint must
// make this window indistinguishable from crashing before the checkpoint:
// in Sync mode every acknowledged record replays from the log (the cut
// taken at the freeze retires nothing until the commit), and in
// Buffered/CheckpointOnly modes the recovered state is exactly the last
// committed consistency point.
func TestCheckpointFlushCrashKillPoint(t *testing.T) {
	for _, mode := range []wal.Durability{wal.CheckpointOnly, wal.Buffered, wal.Sync} {
		t.Run(mode.String(), func(t *testing.T) {
			vfs := storage.NewMemFS()
			cat := core.NewMemCatalog()
			open := func() *core.Engine {
				eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat, Durability: mode})
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			kt := &killPointTracker{eng: open()}
			fs := New(Config{Tracker: kt, Catalog: cat, DedupRate: 0.15, Seed: 31})
			rng := rand.New(rand.NewSource(77))

			var inos []uint64
			churn := func(n int) {
				for i := 0; i < n; i++ {
					if rng.Intn(3) == 0 || len(inos) == 0 {
						ino, err := fs.CreateFile(0)
						if err != nil {
							t.Fatal(err)
						}
						if err := fs.WriteFile(0, ino, 0, 1+rng.Intn(5)); err != nil {
							t.Fatal(err)
						}
						inos = append(inos, ino)
					} else {
						ino := inos[rng.Intn(len(inos))]
						ln, err := fs.FileLen(0, ino)
						if err != nil || ln == 0 {
							continue
						}
						if err := fs.WriteFile(0, ino, uint64(rng.Intn(int(ln))), 1); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			churn(30)
			if _, err := fs.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			churn(25)

			// The kill point: let the next checkpoint freeze and start
			// flushing, then fail its writes and pull the plug.
			vfs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: vfs.Stats().PageWrites + 1})
			if _, err := fs.Checkpoint(); err == nil {
				t.Fatal("checkpoint survived the injected mid-flush failure")
			}
			vfs.SetFailurePlan(storage.FailurePlan{})
			vfs.Crash()
			eng2 := open()

			acked := kt.ops
			if mode != wal.Sync {
				acked = kt.ops[:kt.acked]
			}
			verifyAgainstNaive(t, eng2, acked)

			// Re-drive the legitimately lost tail, then prove the
			// recovered system checkpoints and verifies end to end.
			if mode != wal.Sync {
				for _, op := range kt.ops[kt.acked:] {
					if op.add {
						eng2.AddRef(op.ref, op.cp)
					} else {
						eng2.RemoveRef(op.ref, op.cp)
					}
				}
			}
			kt.eng = eng2
			if _, err := fs.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := fs.VerifyBackrefs(kt.eng); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornTailRecoveryViaFailurePlan cuts the final WAL record mid-page
// with MemFS failure injection — a torn sector write whose prefix reached
// the platter — and verifies that recovery keeps every record before the
// tear and drops the unacknowledged one.
func TestTornTailRecoveryViaFailurePlan(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	open := func() *core.Engine {
		eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat, Durability: wal.Sync})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := open()
	eng.AddRef(core.Ref{Block: 1, Inode: 1, Length: 1}, 1)
	if err := eng.Checkpoint(1); err != nil {
		t.Fatal(err)
	}

	// After the checkpoint truncation the active segment holds its 16-byte
	// header plus a 17-byte checkpoint mark; every AddRef record is a
	// 57-byte frame. Frame number 71 starts at byte 4080 and straddles the
	// first page boundary — arm the torn write exactly there, with a
	// one-page budget, so its first 16 bytes land durably and the rest is
	// lost.
	const survivors = 71
	for i := 0; i < survivors; i++ {
		eng.AddRef(core.Ref{Block: uint64(100 + i), Inode: 7, Offset: uint64(i), Length: 1}, 2)
	}
	if err := eng.WALErr(); err != nil {
		t.Fatalf("premature WAL error: %v", err)
	}
	vfs.SetFailurePlan(storage.FailurePlan{
		FailAfterPageWrites: vfs.Stats().PageWrites + 1,
		TornWrite:           true,
		TornWriteDurable:    true,
	})
	eng.AddRef(core.Ref{Block: 999, Inode: 9, Length: 1}, 2)
	if err := eng.WALErr(); err == nil {
		t.Fatal("torn append did not surface a durability error; frame-size drift? adjust the survivors constant")
	}
	vfs.SetFailurePlan(storage.FailurePlan{})
	vfs.Crash()

	eng2 := open()
	if got := eng2.Stats().WALReplayed; got != survivors {
		t.Fatalf("replayed %d records, want %d", got, survivors)
	}
	for i := 0; i < survivors; i++ {
		owners := mustQueryFsim(t, eng2, uint64(100+i))
		if len(owners) != 1 || !owners[0].Live {
			t.Fatalf("block %d lost: %+v", 100+i, owners)
		}
	}
	if owners := mustQueryFsim(t, eng2, 999); len(owners) != 0 {
		t.Fatalf("torn record resurrected: %+v", owners)
	}
	// The recovered engine keeps working: checkpoint the replayed tail and
	// query through the read store.
	if err := eng2.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if owners := mustQueryFsim(t, eng2, 100); len(owners) != 1 {
		t.Fatalf("post-recovery checkpoint lost block 100: %+v", owners)
	}
}

func mustQueryFsim(t *testing.T, eng *core.Engine, block uint64) []core.Owner {
	t.Helper()
	owners, err := eng.Query(block)
	if err != nil {
		t.Fatal(err)
	}
	return owners
}

// TestRelocateBlockFsim exercises fsim's pointer-rewriting side of block
// relocation against the engine's record transplantation, including a
// block shared by a snapshot and a clone.
func TestRelocateBlockFsim(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(Config{Tracker: eng, Catalog: cat, Seed: 9})
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 4); err != nil {
		t.Fatal(err)
	}
	v, err := fs.TakeSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Clone(0, v); err != nil {
		t.Fatal(err)
	}

	l, _ := fs.Line(0)
	old := l.Live.BlocksOf(ino)[1]
	target := fs.MaxBlock() + 100
	if n := fs.RelocateBlock(old, target); n == 0 {
		t.Fatal("no pointers rewritten")
	}
	if err := eng.RelocateBlock(old, target); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatal(err)
	}
	// The snapshot image sees the new location too (relocation rewrites
	// all owners' pointers, which is the whole point of back references).
	if got := l.Snapshots[v].BlocksOf(ino)[1]; got != target {
		t.Fatalf("snapshot pointer = %d, want %d", got, target)
	}
}
