package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// DebugServer is the live debug endpoint started by Serve: an HTTP
// listener exposing the metrics registry and the Go runtime's profiling
// surfaces on a database that is up and serving traffic.
//
//	/metrics        Prometheus text format (scrape target)
//	/debug/vars     the same snapshot as JSON, expvar-style, plus
//	                cmdline and abridged runtime.MemStats
//	/debug/slowops  the slow-op ring buffer as JSON (if a SlowLog is wired)
//	/debug/pprof/   net/http/pprof (profile, heap, trace, ...)
//
// Callers may mount additional pages (the engine adds /debug/io) via the
// variadic Page arguments to Serve.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Page is an extra handler mounted on the debug server at Path.
type Page struct {
	Path    string
	Handler http.HandlerFunc
}

// Serve starts a debug server on addr (host:port; an empty port picks a
// free one — see Addr). reg supplies /metrics and /debug/vars; slow (may
// be nil) supplies /debug/slowops; pages are mounted verbatim. The server
// runs until Close.
func Serve(addr string, reg *Registry, slow *SlowLog, pages ...Page) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"cmdline": os.Args,
			"metrics": reg.Snapshot(),
			"memstats": map[string]any{
				"Alloc":      ms.Alloc,
				"TotalAlloc": ms.TotalAlloc,
				"Sys":        ms.Sys,
				"HeapAlloc":  ms.HeapAlloc,
				"HeapInuse":  ms.HeapInuse,
				"NumGC":      ms.NumGC,
				"PauseNs":    ms.PauseTotalNs,
			},
			"goroutines": runtime.NumGoroutine(),
		})
	})
	if slow != nil {
		mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			events := slow.Snapshot()
			type slowOp struct {
				Kind       string    `json:"kind"`
				Shard      int       `json:"shard"`
				CP         uint64    `json:"cp"`
				Block      uint64    `json:"block"`
				Start      time.Time `json:"start"`
				DurNS      int64     `json:"dur_ns"`
				ReadBytes  uint64    `json:"read_bytes,omitempty"`
				WriteBytes uint64    `json:"write_bytes,omitempty"`
				Err        string    `json:"err,omitempty"`
			}
			out := struct {
				ThresholdNS int64    `json:"threshold_ns"`
				Total       uint64   `json:"total"`
				Ops         []slowOp `json:"ops"`
			}{ThresholdNS: int64(slow.Threshold()), Total: slow.Total()}
			for _, ev := range events {
				op := slowOp{Kind: ev.Kind.String(), Shard: ev.Shard, CP: ev.CP,
					Block: ev.Block, Start: ev.Start, DurNS: int64(ev.Dur),
					ReadBytes: ev.ReadBytes, WriteBytes: ev.WriteBytes}
				if ev.Err != nil {
					op.Err = ev.Err.Error()
				}
				out.Ops = append(out.Ops, op)
			}
			_ = json.NewEncoder(w).Encode(out)
		})
	}
	// net/http/pprof registers on http.DefaultServeMux at import; this
	// server uses its own mux, so the handlers are mounted explicitly.
	for _, p := range pages {
		if p.Path != "" && p.Handler != nil {
			mux.HandleFunc(p.Path, p.Handler)
		}
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		_ = ds.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return ds, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (ds *DebugServer) Addr() string { return ds.ln.Addr().String() }

// Close stops the listener and waits for the serve loop to exit. In-flight
// requests are dropped; this is a debug surface, not a production API.
func (ds *DebugServer) Close() error {
	err := ds.srv.Close()
	<-ds.done
	return err
}
