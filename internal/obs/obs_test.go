package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram("h", "", "ns", []uint64{10, 100, 1000})
	// A value equal to an upper bound belongs to that bucket (le
	// semantics); one past it belongs to the next.
	h.Observe(0)
	h.Observe(10)   // bucket 0 (le=10)
	h.Observe(11)   // bucket 1 (le=100)
	h.Observe(100)  // bucket 1
	h.Observe(1000) // bucket 2
	h.Observe(1001) // +Inf bucket
	s := h.Snapshot()
	wantCounts := []uint64{2, 2, 1, 1}
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Buckets[3].UpperBound != math.MaxUint64 {
		t.Errorf("last bucket bound = %d, want MaxUint64", s.Buckets[3].UpperBound)
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if want := uint64(0 + 10 + 11 + 100 + 1000 + 1001); s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
	if s.Max != 1001 {
		t.Errorf("max = %d, want 1001", s.Max)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram("h", "", "ns", []uint64{1000, 10, 100})
	h.Observe(50)
	s := h.Snapshot()
	if s.Buckets[0].UpperBound != 10 || s.Buckets[1].UpperBound != 100 {
		t.Fatalf("bounds not sorted: %+v", s.Buckets)
	}
	if s.Buckets[1].Count != 1 {
		t.Fatalf("value 50 in wrong bucket: %+v", s.Buckets)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram("h", "", "ns", []uint64{100, 200, 300, 400})
	// 100 values uniform in (0,100]: p50 ≈ 50, p99 ≈ 99 by interpolation.
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i + 1))
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got < 40 || got > 60 {
		t.Errorf("p50 = %g, want ≈50", got)
	}
	if got := s.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
	// Values past the last bound: quantile in the +Inf bucket reports Max.
	h2 := newHistogram("h2", "", "ns", []uint64{10})
	h2.Observe(500)
	h2.Observe(700)
	if got := h2.Snapshot().Quantile(0.99); got != 700 {
		t.Errorf("+Inf quantile = %g, want max 700", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramSnapshotIsolation(t *testing.T) {
	h := newHistogram("h", "", "ns", LatencyBuckets())
	h.Observe(100)
	s1 := h.Snapshot()
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	if s1.Count != 1 {
		t.Fatalf("snapshot mutated by later observes: count = %d", s1.Count)
	}
	var total uint64
	for _, b := range s1.Buckets {
		total += b.Count
	}
	if total != 1 {
		t.Fatalf("snapshot buckets mutated: total = %d", total)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("h", "", "ns", LatencyBuckets())
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed*1000 + uint64(i))
			}
		}(uint64(w))
	}
	// Concurrent snapshot readers must see internally consistent copies.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if want := uint64(workers * perWorker); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d after quiescence", total, s.Count)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Since(time.Now())
	if h.Count() != 0 {
		t.Error("nil histogram count != 0")
	}
	if hh := r.Histogram("x", "", "ns", nil); hh != nil {
		t.Error("nil registry returned non-nil histogram")
	}
	if cc := r.Counter("x", ""); cc != nil {
		t.Error("nil registry returned non-nil counter")
	}
	if gg := r.Gauge("x", ""); gg != nil {
		t.Error("nil registry returned non-nil gauge")
	}
	r.CounterFunc("x", "", func() uint64 { return 0 })
	r.GaugeFunc("x", "", func() float64 { return 0 })
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestRegistryDuplicateSemantics(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c", "help")
	c2 := r.Counter("c", "other help")
	if c1 != c2 {
		t.Error("duplicate Counter registration did not return existing handle")
	}
	c1.Add(3)
	if c2.Value() != 3 {
		t.Error("handles not shared")
	}
	// Func metrics: re-registration replaces the callback (latest engine
	// wins when several engines share one registry).
	r.CounterFunc("f", "", func() uint64 { return 1 })
	r.CounterFunc("f", "", func() uint64 { return 2 })
	s := r.Snapshot()
	if v, ok := s.Counter("f"); !ok || v != 2 {
		t.Fatalf("func re-registration did not replace callback: %d %v", v, ok)
	}
	// Kind mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("c", "")
	}()
}

func TestRegistrySnapshotLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Gauge("b", "").Set(2)
	r.GaugeFunc("bf", "", func() float64 { return 2.5 })
	r.Histogram("h", "", "ns", []uint64{10}).Observe(3)
	s := r.Snapshot()
	if v, ok := s.Counter("a_total"); !ok || v != 7 {
		t.Errorf("counter lookup: %d %v", v, ok)
	}
	if v, ok := s.Gauge("b"); !ok || v != 2 {
		t.Errorf("gauge lookup: %g %v", v, ok)
	}
	if v, ok := s.Gauge("bf"); !ok || v != 2.5 {
		t.Errorf("gauge-func lookup: %g %v", v, ok)
	}
	if h, ok := s.Histogram("h"); !ok || h.Count != 1 {
		t.Errorf("histogram lookup: %+v %v", h, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Error("missing counter lookup should report !ok")
	}
	if _, ok := s.Gauge("missing"); ok {
		t.Error("missing gauge lookup should report !ok")
	}
	if _, ok := s.Histogram("missing"); ok {
		t.Error("missing histogram lookup should report !ok")
	}
}

func TestSlowLogThresholdGating(t *testing.T) {
	s := NewSlowLog(time.Millisecond, 4)
	s.OpEnd(OpEvent{Kind: OpQuery, Dur: 500 * time.Microsecond})
	if s.Total() != 0 || len(s.Snapshot()) != 0 {
		t.Fatal("sub-threshold op retained")
	}
	s.OpEnd(OpEvent{Kind: OpQuery, Dur: time.Millisecond}) // boundary: retained
	s.OpEnd(OpEvent{Kind: OpAddRef, Dur: 2 * time.Millisecond})
	if s.Total() != 2 {
		t.Fatalf("total = %d, want 2", s.Total())
	}
	got := s.Snapshot()
	if len(got) != 2 || got[0].Kind != OpQuery || got[1].Kind != OpAddRef {
		t.Fatalf("snapshot = %+v", got)
	}
	// Threshold is adjustable at runtime.
	s.SetThreshold(10 * time.Millisecond)
	s.OpEnd(OpEvent{Kind: OpCompact, Dur: 5 * time.Millisecond})
	if s.Total() != 2 {
		t.Fatal("op below raised threshold retained")
	}
}

func TestSlowLogBoundedMemory(t *testing.T) {
	const capacity = 8
	s := NewSlowLog(0, capacity)
	for i := 0; i < 100; i++ {
		s.OpEnd(OpEvent{Block: uint64(i), Dur: time.Duration(i)})
	}
	got := s.Snapshot()
	if len(got) != capacity {
		t.Fatalf("ring grew past capacity: %d", len(got))
	}
	// Oldest first, newest events retained.
	for i, ev := range got {
		if want := uint64(100 - capacity + i); ev.Block != want {
			t.Fatalf("ring[%d].Block = %d, want %d", i, ev.Block, want)
		}
	}
	if s.Total() != 100 {
		t.Fatalf("total = %d, want 100", s.Total())
	}
}

func TestSlowLogConcurrentReaders(t *testing.T) {
	s := NewSlowLog(0, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s.OpEnd(OpEvent{Dur: time.Duration(i)})
			}
		}()
	}
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if got := s.Snapshot(); len(got) > 16 {
					panic(fmt.Sprintf("snapshot longer than ring: %d", len(got)))
				}
			}
		}()
	}
	wg.Wait()
	if s.Total() != 20000 {
		t.Fatalf("total = %d, want 20000", s.Total())
	}
}

func TestMultiTracer(t *testing.T) {
	if MultiTracer() != nil || MultiTracer(nil, nil) != nil {
		t.Error("empty MultiTracer should be nil")
	}
	a := NewSlowLog(0, 4)
	if MultiTracer(nil, a) != Tracer(a) {
		t.Error("single tracer should be returned directly")
	}
	b := NewSlowLog(0, 4)
	m := MultiTracer(a, b)
	m.OpEnd(OpEvent{Dur: time.Second})
	if a.Total() != 1 || b.Total() != 1 {
		t.Error("fan-out missed a tracer")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("backlog_ops_total", "Total ops").Add(5)
	r.Gauge("backlog_ws_records{shard=\"0\"}", "WS records").Set(10)
	r.Gauge("backlog_ws_records{shard=\"1\"}", "WS records").Set(20)
	h := r.Histogram("backlog_lat_ns", "Latency", "ns", []uint64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP backlog_ops_total Total ops\n",
		"# TYPE backlog_ops_total counter\n",
		"backlog_ops_total 5\n",
		"# TYPE backlog_ws_records gauge\n",
		"backlog_ws_records{shard=\"0\"} 10\n",
		"backlog_ws_records{shard=\"1\"} 20\n",
		"# TYPE backlog_lat_ns histogram\n",
		"backlog_lat_ns_bucket{le=\"100\"} 1\n",
		"backlog_lat_ns_bucket{le=\"1000\"} 2\n",
		"backlog_lat_ns_bucket{le=\"+Inf\"} 3\n",
		"backlog_lat_ns_sum 5550\n",
		"backlog_lat_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// HELP/TYPE for the labeled gauge family appears exactly once.
	if n := strings.Count(out, "# TYPE backlog_ws_records gauge"); n != 1 {
		t.Errorf("TYPE header for labeled family appears %d times", n)
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("backlog_test_total", "a counter").Add(9)
	slow := NewSlowLog(0, 4)
	slow.OpEnd(OpEvent{Kind: OpQuery, Dur: time.Second, Err: errors.New("boom")})
	ds, err := Serve("127.0.0.1:0", r, slow)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "backlog_test_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var vars struct {
		Goroutines int             `json:"goroutines"`
		Metrics    json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Goroutines <= 0 || len(vars.Metrics) == 0 {
		t.Errorf("/debug/vars incomplete: %+v", vars)
	}
	var slowOut struct {
		Total uint64 `json:"total"`
		Ops   []struct {
			Kind string `json:"kind"`
			Err  string `json:"err"`
		} `json:"ops"`
	}
	if err := json.Unmarshal([]byte(get("/debug/slowops")), &slowOut); err != nil {
		t.Fatalf("/debug/slowops not JSON: %v", err)
	}
	if slowOut.Total != 1 || len(slowOut.Ops) != 1 ||
		slowOut.Ops[0].Kind != "query" || slowOut.Ops[0].Err != "boom" {
		t.Errorf("/debug/slowops = %+v", slowOut)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpAddRef, OpRemoveRef, OpQuery, OpQueryRange,
		OpRelocate, OpCheckpoint, OpCompact, OpExpire}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("OpKind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if OpKind(99).String() != "unknown" {
		t.Error("out-of-range OpKind should stringify as unknown")
	}
}
