package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. Metric names may carry a label set in braces
// (`backlog_ws_records{shard="3"}`); the braces are stripped for the
// HELP/TYPE header, which is emitted once per base name.
func WritePrometheus(w io.Writer, s Snapshot) error {
	seen := map[string]bool{}
	header := func(name, help, typ string) (string, string, error) {
		base, labels := splitLabels(name)
		if !seen[base] {
			seen[base] = true
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(help)); err != nil {
					return "", "", err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
				return "", "", err
			}
		}
		return base, labels, nil
	}
	for _, c := range s.Counters {
		base, labels, err := header(c.Name, c.Help, "counter")
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base, labels, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		base, labels, err := header(g.Name, g.Help, "gauge")
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		base, labels, err := header(h.Name, h.Help, "histogram")
		if err != nil {
			return err
		}
		// A labeled histogram ("{src=\"wal\"}") merges its label set with
		// the per-bucket le label: base_bucket{src="wal",le="..."}.
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		if inner != "" {
			inner += ","
		}
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.UpperBound != math.MaxUint64 {
				le = fmt.Sprintf("%d", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", base, inner, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the registry's current state; see the
// package-level WritePrometheus. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return WritePrometheus(w, r.Snapshot())
}

// MetricName builds a labeled metric name ("base{k1=\"v1\",k2=\"v2\"}")
// from alternating key/value pairs, escaping label values per the
// Prometheus exposition format. Metrics with the same base but distinct
// label sets form one family sharing a HELP/TYPE header.
func MetricName(base string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labelPairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// splitLabels splits "name{labels}" into "name" and "{labels}"; a plain
// name returns an empty label part.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a gauge value: integers without a decimal point,
// everything else in compact scientific-free form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
