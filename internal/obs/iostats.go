package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/storage"
)

// IOStats is the purpose-tagged I/O accountant: one cache-line-padded
// block of atomic counters per storage.Source, fed by the storage
// attribution wrapper (storage.Attributed). The record path is a handful
// of uncontended atomic adds; latency histograms are recorded only after
// Register attaches a registry, so experiments without metrics pay no
// clock reads.
//
// IOStats implements storage.IORecorder.
type IOStats struct {
	srcs [storage.NumSources]ioSrcCounters

	// Per-source I/O latency histograms; nil until Register. The lat flag
	// is read by the wrapper once at wrap time via WantsLatency, so it
	// must be set (by Register) before the VFS is wrapped.
	readHist  [storage.NumSources]*Histogram
	writeHist [storage.NumSources]*Histogram
	lat       bool
}

// ioSrcCounters is one source's counter block, padded to a whole cache
// line (7 x 8 bytes + 8 pad) so concurrent subsystems (WAL appends vs.
// query reads) never false-share across sources.
type ioSrcCounters struct {
	readBytes  atomic.Uint64
	readOps    atomic.Uint64
	writeBytes atomic.Uint64
	writeOps   atomic.Uint64
	syncs      atomic.Uint64
	creates    atomic.Uint64
	removes    atomic.Uint64
	_          [8]byte
}

// NewIOStats returns a zeroed accountant.
func NewIOStats() *IOStats { return &IOStats{} }

// RecordRead implements storage.IORecorder.
func (s *IOStats) RecordRead(src storage.Source, bytes int, dur time.Duration) {
	c := &s.srcs[src]
	c.readOps.Add(1)
	c.readBytes.Add(uint64(bytes))
	if s.lat {
		s.readHist[src].ObserveDuration(dur)
	}
}

// RecordWrite implements storage.IORecorder.
func (s *IOStats) RecordWrite(src storage.Source, bytes int, dur time.Duration) {
	c := &s.srcs[src]
	c.writeOps.Add(1)
	c.writeBytes.Add(uint64(bytes))
	if s.lat {
		s.writeHist[src].ObserveDuration(dur)
	}
}

// RecordSync implements storage.IORecorder.
func (s *IOStats) RecordSync(src storage.Source, dur time.Duration) {
	s.srcs[src].syncs.Add(1)
}

// RecordCreate implements storage.IORecorder.
func (s *IOStats) RecordCreate(src storage.Source) { s.srcs[src].creates.Add(1) }

// RecordRemove implements storage.IORecorder.
func (s *IOStats) RecordRemove(src storage.Source) { s.srcs[src].removes.Add(1) }

// WantsLatency implements storage.IORecorder; true once a registry is
// attached.
func (s *IOStats) WantsLatency() bool { return s.lat }

// SourceBytes returns the cumulative read and write bytes of one source
// (the per-op slow-log deltas subtract two calls).
func (s *IOStats) SourceBytes(src storage.Source) (readBytes, writeBytes uint64) {
	c := &s.srcs[src]
	return c.readBytes.Load(), c.writeBytes.Load()
}

// Totals returns cumulative read and write bytes summed over all sources.
func (s *IOStats) Totals() (readBytes, writeBytes uint64) {
	for i := range s.srcs {
		c := &s.srcs[i]
		readBytes += c.readBytes.Load()
		writeBytes += c.writeBytes.Load()
	}
	return readBytes, writeBytes
}

// SourceIO is one source's counters in an IOStats snapshot.
type SourceIO struct {
	Source     string `json:"source"`
	ReadBytes  uint64 `json:"read_bytes"`
	ReadOps    uint64 `json:"read_ops"`
	WriteBytes uint64 `json:"write_bytes"`
	WriteOps   uint64 `json:"write_ops"`
	Syncs      uint64 `json:"syncs"`
	Creates    uint64 `json:"creates"`
	Removes    uint64 `json:"removes"`
}

// Snapshot returns every source's counters in storage.Source order
// (index i is storage.Source(i)).
func (s *IOStats) Snapshot() []SourceIO {
	out := make([]SourceIO, storage.NumSources)
	for i := range s.srcs {
		c := &s.srcs[i]
		out[i] = SourceIO{
			Source:     storage.Source(i).String(),
			ReadBytes:  c.readBytes.Load(),
			ReadOps:    c.readOps.Load(),
			WriteBytes: c.writeBytes.Load(),
			WriteOps:   c.writeOps.Load(),
			Syncs:      c.syncs.Load(),
			Creates:    c.creates.Load(),
			Removes:    c.removes.Load(),
		}
	}
	return out
}

// Register exports the accountant as labeled metric families
// (backlog_io_read_bytes_total{src="wal"} and friends) and enables the
// per-source I/O latency histograms. Must be called before the VFS is
// wrapped: the attribution wrapper snapshots WantsLatency at wrap time.
func (s *IOStats) Register(r *Registry) {
	if r == nil {
		return
	}
	lat := LatencyBuckets()
	for i := 0; i < storage.NumSources; i++ {
		src := storage.Source(i)
		c := &s.srcs[i]
		name := func(base string) string { return MetricName(base, "src", src.String()) }
		r.CounterFunc(name("backlog_io_read_bytes_total"), "Bytes read, by purpose", c.readBytes.Load)
		r.CounterFunc(name("backlog_io_read_ops_total"), "ReadAt calls, by purpose", c.readOps.Load)
		r.CounterFunc(name("backlog_io_write_bytes_total"), "Bytes written, by purpose", c.writeBytes.Load)
		r.CounterFunc(name("backlog_io_write_ops_total"), "WriteAt calls, by purpose", c.writeOps.Load)
		r.CounterFunc(name("backlog_io_syncs_total"), "File syncs, by purpose", c.syncs.Load)
		r.CounterFunc(name("backlog_io_files_created_total"), "Files created, by purpose", c.creates.Load)
		r.CounterFunc(name("backlog_io_files_removed_total"), "Files removed, by purpose", c.removes.Load)
		s.readHist[i] = r.Histogram(name("backlog_io_read_ns"), "ReadAt latency, by purpose", "ns", lat)
		s.writeHist[i] = r.Histogram(name("backlog_io_write_ns"), "WriteAt latency, by purpose", "ns", lat)
	}
	s.lat = true
}

// WriteAmp is the rolling write-amplification monitor: a bounded ring of
// (time, user-bytes-in, device-bytes-out) samples appended lazily on every
// Observe call (IOReport, metric scrape — there is no background
// goroutine), from which it derives the windowed amplification. Window
// resolution is therefore bounded by the observation cadence: with one
// scrape per window the "window" degrades to the inter-scrape interval,
// which is the usual pull-model contract.
type WriteAmp struct {
	mu      sync.Mutex
	window  time.Duration
	samples []waSample
}

type waSample struct {
	t         time.Time
	user, dev uint64
}

// DefaultWriteAmpWindow is the rolling window when none is configured.
const DefaultWriteAmpWindow = 60 * time.Second

// NewWriteAmp returns a monitor with the given rolling window
// (DefaultWriteAmpWindow if w <= 0).
func NewWriteAmp(w time.Duration) *WriteAmp {
	if w <= 0 {
		w = DefaultWriteAmpWindow
	}
	return &WriteAmp{window: w}
}

// Window returns the configured rolling window.
func (w *WriteAmp) Window() time.Duration { return w.window }

// Observe appends a cumulative sample and returns the windowed deltas:
// user and device bytes accumulated since the oldest retained sample and
// the span that covers. The first observation returns zero deltas.
func (w *WriteAmp) Observe(now time.Time, user, dev uint64) (winUser, winDev uint64, span time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Evict samples older than the window, always keeping one at-or-beyond
	// the boundary as the baseline so the reported span covers the window
	// rather than trailing just inside it.
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.samples)-1 && w.samples[i+1].t.Before(cut) {
		i++
	}
	w.samples = append(w.samples[i:], waSample{t: now, user: user, dev: dev})
	base := w.samples[0]
	if len(w.samples) == 1 || !now.After(base.t) {
		return 0, 0, 0
	}
	return user - base.user, dev - base.dev, now.Sub(base.t)
}
