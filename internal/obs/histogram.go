package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with a lock-free record path:
// Observe is three atomic adds plus a CAS loop for the max, with no
// allocation and no lock. Bucket bounds are fixed at registration, so
// concurrent Observe and Snapshot never coordinate.
//
// Values are unsigned integers in the histogram's unit — nanoseconds for
// latency histograms (LatencyBuckets), plain counts for size distributions
// (CountBuckets). Quantiles are estimated from the bucket counts by linear
// interpolation within the containing bucket, the standard
// Prometheus-style estimate.
type Histogram struct {
	name, help string
	unit       string   // "ns", "ops", ... — documentation only
	bounds     []uint64 // ascending upper bounds; +Inf implicit after last
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sum        atomic.Uint64
	max        atomic.Uint64
}

func newHistogram(name, help, unit string, bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		name: name, help: help, unit: unit,
		bounds:  b,
		buckets: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value. Nil-safe no-op.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search over the immutable bounds: the first bucket whose
	// upper bound is >= v; past the last bound lands in the +Inf bucket.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a latency in nanoseconds. Negative durations
// (clock steps) record as zero. Nil-safe no-op.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// Since records the latency from start to now. Nil-safe no-op — but note
// the caller has already paid for time.Now(); call sites that must be free
// when disabled should gate the timing itself (see the engine's obsOn
// pattern).
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.ObserveDuration(time.Since(start))
}

// Count returns the number of recorded values (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one histogram bucket in a snapshot: the number of observations
// (non-cumulative) with value <= UpperBound and greater than the previous
// bucket's bound. The last bucket's UpperBound is math.MaxUint64 (+Inf).
type Bucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a stable copy of a histogram's state plus derived
// quantiles. P50/P90/P99 and Max are in the histogram's unit.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Unit    string   `json:"unit,omitempty"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot copies the histogram's counters and derives quantiles. The
// copy is stable: recording after Snapshot returns never changes it.
// Buckets with zero counts are included, so bucket layouts of snapshots
// from one histogram always align.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Name: h.name, Help: h.help, Unit: h.unit,
		Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load(),
		Buckets: make([]Bucket, len(h.buckets)),
	}
	for i := range h.buckets {
		ub := uint64(math.MaxUint64)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.buckets[i].Load()}
	}
	// The per-bucket loads race concurrent Observes, so the bucket total
	// may not equal the count loaded above; quantiles are computed against
	// the bucket total for internal consistency.
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly within the containing bucket. The +Inf bucket
// reports the recorded max. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen uint64
	for i, b := range s.Buckets {
		if b.Count == 0 {
			continue
		}
		if float64(seen+b.Count) < rank {
			seen += b.Count
			continue
		}
		if b.UpperBound == math.MaxUint64 {
			return float64(s.Max)
		}
		var lo float64
		if i > 0 {
			lo = float64(s.Buckets[i-1].UpperBound)
		}
		frac := (rank - float64(seen)) / float64(b.Count)
		return lo + (float64(b.UpperBound)-lo)*frac
	}
	return float64(s.Max)
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// LatencyBuckets returns the standard latency bounds in nanoseconds: a
// 1–2.5–5 ladder from 250 ns to 10 s. It covers both the ~µs hot paths
// (AddRef into a memtree) and multi-second background maintenance.
func LatencyBuckets() []uint64 {
	var b []uint64
	for _, base := range []uint64{250, 2_500, 25_000, 250_000, 2_500_000, 25_000_000, 250_000_000, 2_500_000_000} {
		b = append(b, base, base*2, base*4)
	}
	return append(b, 10_000_000_000)
}

// CountBuckets returns power-of-two bounds 1, 2, 4, ..., 2^log2Max — the
// standard size-distribution layout (WAL group-commit batch sizes,
// record counts).
func CountBuckets(log2Max int) []uint64 {
	b := make([]uint64, 0, log2Max+1)
	for i := 0; i <= log2Max; i++ {
		b = append(b, uint64(1)<<uint(i))
	}
	return b
}
