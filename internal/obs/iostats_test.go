package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/storage"
)

func TestMetricNameEscaping(t *testing.T) {
	cases := []struct {
		base  string
		pairs []string
		want  string
	}{
		{"m", nil, "m"},
		{"m", []string{"src", "wal"}, `m{src="wal"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		{"m", []string{"src", `sl\ash`}, `m{src="sl\\ash"}`},
		{"m", []string{"src", `qu"ote`}, `m{src="qu\"ote"}`},
		{"m", []string{"src", "new\nline"}, `m{src="new\nline"}`},
	}
	for _, c := range cases {
		if got := MetricName(c.base, c.pairs...); got != c.want {
			t.Errorf("MetricName(%q, %q) = %q, want %q", c.base, c.pairs, got, c.want)
		}
	}
}

// TestPrometheusMultiLabelFamilies renders a registry holding several
// series of one family plus a labeled histogram and checks the exposition
// rules: one HELP/TYPE header per base name, per-series label sets
// preserved in registration order, and histogram label sets merged with
// the le label on every bucket line.
func TestPrometheusMultiLabelFamilies(t *testing.T) {
	r := NewRegistry()
	for _, src := range []string{"wal", "checkpoint", "query"} {
		src := src
		r.CounterFunc(MetricName("backlog_io_read_bytes_total", "src", src),
			"Bytes read, by purpose", func() uint64 { return 7 })
	}
	h := r.Histogram(MetricName("backlog_io_read_ns", "src", "wal"),
		"ReadAt latency", "ns", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if n := strings.Count(out, "# TYPE backlog_io_read_bytes_total counter"); n != 1 {
		t.Errorf("family header emitted %d times, want 1\n%s", n, out)
	}
	// Snapshot ordering is sorted by full name (base + label set), so the
	// family's series render contiguously in a stable order regardless of
	// registration order: checkpoint, query, wal.
	ic := strings.Index(out, `backlog_io_read_bytes_total{src="checkpoint"} 7`)
	iq := strings.Index(out, `backlog_io_read_bytes_total{src="query"} 7`)
	iw := strings.Index(out, `backlog_io_read_bytes_total{src="wal"} 7`)
	if ic < 0 || iq < 0 || iw < 0 || !(ic < iq && iq < iw) {
		t.Errorf("per-source series missing or out of order (checkpoint@%d query@%d wal@%d)\n%s",
			ic, iq, iw, out)
	}
	for _, line := range []string{
		`backlog_io_read_ns_bucket{src="wal",le="10"} 1`,
		`backlog_io_read_ns_bucket{src="wal",le="100"} 2`,
		`backlog_io_read_ns_bucket{src="wal",le="+Inf"} 2`,
		`backlog_io_read_ns_sum{src="wal"} 55`,
		`backlog_io_read_ns_count{src="wal"} 2`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in\n%s", line, out)
		}
	}
}

// TestPrometheusRenderingDeterministic renders the same registry twice and
// expects byte-identical output — scrape diffing and the exposition tests
// above both rely on stable ordering.
func TestPrometheusRenderingDeterministic(t *testing.T) {
	r := NewRegistry()
	s := NewIOStats()
	s.Register(r)
	s.RecordWrite(storage.SrcWAL, 100, 0)
	s.RecordRead(storage.SrcQuery, 25, 0)
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same registry differ")
	}
	if !strings.Contains(a.String(), `backlog_io_write_bytes_total{src="wal"} 100`) {
		t.Errorf("missing wal write series in\n%s", a.String())
	}
}

func TestIOStatsAccounting(t *testing.T) {
	s := NewIOStats()
	s.RecordWrite(storage.SrcWAL, 64, 0)
	s.RecordWrite(storage.SrcWAL, 36, 0)
	s.RecordRead(storage.SrcQuery, 50, 0)
	s.RecordSync(storage.SrcWAL, 0)
	s.RecordCreate(storage.SrcCheckpoint)
	s.RecordRemove(storage.SrcExpiry)

	if r, w := s.SourceBytes(storage.SrcWAL); r != 0 || w != 100 {
		t.Errorf("wal bytes = %d/%d, want 0/100", r, w)
	}
	tr, tw := s.Totals()
	if tr != 50 || tw != 100 {
		t.Errorf("totals = %d/%d, want 50/100", tr, tw)
	}
	snap := s.Snapshot()
	if len(snap) != storage.NumSources {
		t.Fatalf("snapshot has %d sources, want %d", len(snap), storage.NumSources)
	}
	var sumR, sumW uint64
	for i, io := range snap {
		if io.Source != storage.Source(i).String() {
			t.Errorf("snapshot[%d].Source = %q, want %q", i, io.Source, storage.Source(i))
		}
		sumR += io.ReadBytes
		sumW += io.WriteBytes
	}
	if sumR != tr || sumW != tw {
		t.Errorf("snapshot sums %d/%d != totals %d/%d", sumR, sumW, tr, tw)
	}
	if snap[storage.SrcWAL].WriteOps != 2 || snap[storage.SrcWAL].Syncs != 1 {
		t.Errorf("wal ops/syncs = %d/%d, want 2/1",
			snap[storage.SrcWAL].WriteOps, snap[storage.SrcWAL].Syncs)
	}
	if snap[storage.SrcCheckpoint].Creates != 1 || snap[storage.SrcExpiry].Removes != 1 {
		t.Error("creates/removes not attributed to their sources")
	}
	if s.WantsLatency() {
		t.Error("WantsLatency true before Register")
	}
	s.Register(NewRegistry())
	if !s.WantsLatency() {
		t.Error("WantsLatency false after Register")
	}
}

func TestWriteAmpWindow(t *testing.T) {
	w := NewWriteAmp(10 * time.Second)
	if w.Window() != 10*time.Second {
		t.Fatalf("window = %v", w.Window())
	}
	if NewWriteAmp(0).Window() != DefaultWriteAmpWindow {
		t.Error("zero window did not default")
	}

	t0 := time.Unix(1000, 0)
	u, d, span := w.Observe(t0, 100, 200)
	if u != 0 || d != 0 || span != 0 {
		t.Errorf("first observation = %d/%d/%v, want zeros", u, d, span)
	}
	u, d, span = w.Observe(t0.Add(4*time.Second), 300, 700)
	if u != 200 || d != 500 || span != 4*time.Second {
		t.Errorf("second observation = %d/%d/%v, want 200/500/4s", u, d, span)
	}
	// The t0 sample is older than the 10s window, but it is kept as the
	// baseline because the next sample (t0+4s) has not yet crossed the
	// boundary — the reported span covers the window rather than trailing
	// inside it.
	u, d, span = w.Observe(t0.Add(13*time.Second), 1000, 2000)
	if u != 900 || d != 1800 || span != 13*time.Second {
		t.Errorf("third observation = %d/%d/%v, want 900/1800/13s", u, d, span)
	}
	// A long stall: everything but the latest sample ages out.
	u, d, span = w.Observe(t0.Add(60*time.Second), 1500, 3000)
	if u != 500 || d != 1000 || span != 47*time.Second {
		t.Errorf("post-stall observation = %d/%d/%v, want 500/1000/47s", u, d, span)
	}
}
