// Package obs is Backlog's zero-dependency observability layer: a metrics
// registry of atomic counters, gauges, and fixed-bucket latency histograms,
// an op-tracing hook with a built-in bounded slow-op log, Prometheus
// text-format rendering, and an optional HTTP debug endpoint.
//
// The package is built around two rules:
//
//   - The record path is lock-free: counters and histogram observations are
//     single atomic adds, so instrumented hot paths (AddRef, Query, WAL
//     appends) never serialize behind the metrics layer.
//   - Disabled observability is free: every handle type (*Counter, *Gauge,
//     *Histogram) is nil-safe, and a nil *Registry returns nil handles, so
//     code instruments unconditionally — `h.Observe(d)` on a nil histogram
//     is a single branch, a few nanoseconds at most. Paper-figure
//     experiments run with observability off and stay byte-identical.
//
// Snapshots (Registry.Snapshot) are deep copies: the returned structure
// never aliases live registry state, so a snapshot taken mid-load is stable
// no matter how much recording follows. Counters and histogram fields are
// read individually without a global lock, so a snapshot is not a perfect
// point-in-time cut across metrics — each individual value is, which is the
// usual Prometheus contract.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops, so a disabled registry costs one branch per call site.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// funcMetric is a counter or gauge whose value is computed at snapshot
// time — the bridge for values that already live elsewhere (the engine's
// legacy Stats atomics, write-store tree sizes, view pin counts) so the hot
// path is not charged twice for the same event.
type funcMetric struct {
	name, help string
	counter    bool
	fn         func() float64
}

// Registry holds a named set of metrics. The zero value is not usable; use
// NewRegistry. A nil *Registry is the disabled registry: every
// registration method returns nil (a no-op handle) and Snapshot returns an
// empty snapshot.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]any{}}
}

// register installs m under name. Registering the same name again returns
// the existing handle when the kinds match (so independent subsystems can
// share a metric), replaces the callback for func-backed metrics (the
// newest registrant — e.g. the currently open engine — wins), and panics on
// a kind mismatch, which is always a programming error.
func (r *Registry) register(name string, m any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok {
		switch prev := old.(type) {
		case *funcMetric:
			next, ok := m.(*funcMetric)
			if !ok || prev.counter != next.counter {
				panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
			}
			prev.fn = next.fn
			prev.help = next.help
			return prev
		case *Counter:
			if _, ok := m.(*Counter); !ok {
				panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
			}
			return prev
		case *Gauge:
			if _, ok := m.(*Gauge); !ok {
				panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
			}
			return prev
		case *Histogram:
			if _, ok := m.(*Histogram); !ok {
				panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
			}
			return prev
		}
	}
	r.byName[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter registers (or returns the existing) counter. Nil-safe: a nil
// registry returns a nil handle, whose methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// CounterFunc registers a counter whose value fn computes at snapshot
// time. fn must be safe for concurrent use and monotonic. Re-registering
// the name replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, counter: true,
		fn: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers a gauge whose value fn computes at snapshot time.
// fn must be safe for concurrent use. Re-registering the name replaces the
// callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, fn: fn})
}

// Histogram registers (or returns the existing) histogram with the given
// ascending bucket upper bounds (an implicit +Inf bucket is added). See
// LatencyBuckets and CountBuckets for the standard bounds.
func (r *Registry) Histogram(name, help, unit string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, newHistogram(name, help, unit, bounds)).(*Histogram)
}

// CounterSnapshot is one counter's state in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's state in a Snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time copy of every registered metric, in
// registration order within each kind. It aliases no registry state.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Counter returns the named counter's value and whether it exists.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's value and whether it exists.
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram's snapshot and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Snapshot captures every metric. Safe for concurrent use with recording;
// the result is a deep copy. A nil registry returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	metrics := make([]any, len(order))
	for i, name := range order {
		metrics[i] = r.byName[name]
	}
	r.mu.Unlock()

	var s Snapshot
	for _, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterSnapshot{Name: m.name, Help: m.help, Value: m.v.Load()})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: m.name, Help: m.help, Value: float64(m.v.Load())})
		case *funcMetric:
			if m.counter {
				s.Counters = append(s.Counters, CounterSnapshot{Name: m.name, Help: m.help, Value: uint64(m.fn())})
			} else {
				s.Gauges = append(s.Gauges, GaugeSnapshot{Name: m.name, Help: m.help, Value: m.fn()})
			}
		case *Histogram:
			s.Histograms = append(s.Histograms, m.Snapshot())
		}
	}
	sort.SliceStable(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.SliceStable(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.SliceStable(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
