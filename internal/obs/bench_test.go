package obs

import (
	"testing"
	"time"
)

// BenchmarkMetricsOverhead measures the per-operation cost of the record
// path in both states the engine can be in: disabled (nil handles — the
// cost every un-instrumented run pays) and enabled (a live histogram).
// The disabled case must stay in the low single-digit nanoseconds; CI runs
// this as a bench-smoke.
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("disabled-nil-histogram", func(b *testing.B) {
		var h *Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i))
		}
	})
	b.Run("enabled-observe", func(b *testing.B) {
		h := newHistogram("h", "", "ns", LatencyBuckets())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i))
		}
	})
	b.Run("enabled-observe-parallel", func(b *testing.B) {
		h := newHistogram("h", "", "ns", LatencyBuckets())
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var i uint64
			for pb.Next() {
				i++
				h.Observe(i)
			}
		})
	})
	b.Run("enabled-counter", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("c", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("enabled-timed-observe", func(b *testing.B) {
		// The full cost an instrumented hot path pays when enabled: two
		// clock reads plus the observe.
		h := newHistogram("h", "", "ns", LatencyBuckets())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			h.ObserveDuration(time.Since(start))
		}
	})
}

func BenchmarkSlowLogOpEnd(b *testing.B) {
	b.Run("below-threshold", func(b *testing.B) {
		s := NewSlowLog(time.Hour, 128)
		ev := OpEvent{Kind: OpAddRef, Dur: time.Microsecond}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.OpEnd(ev)
		}
	})
	b.Run("retained", func(b *testing.B) {
		s := NewSlowLog(0, 128)
		ev := OpEvent{Kind: OpAddRef, Dur: time.Microsecond}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.OpEnd(ev)
		}
	})
}
