package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// OpKind identifies an instrumented engine operation in trace events.
type OpKind int

const (
	OpAddRef OpKind = iota
	OpRemoveRef
	OpQuery
	OpQueryRange
	OpRelocate
	OpCheckpoint
	OpCompact
	OpExpire
)

func (k OpKind) String() string {
	switch k {
	case OpAddRef:
		return "addref"
	case OpRemoveRef:
		return "removeref"
	case OpQuery:
		return "query"
	case OpQueryRange:
		return "queryrange"
	case OpRelocate:
		return "relocate"
	case OpCheckpoint:
		return "checkpoint"
	case OpCompact:
		return "compact"
	case OpExpire:
		return "expire"
	default:
		return "unknown"
	}
}

// OpEvent describes one instrumented operation. Start events carry a zero
// Dur and nil Err; end events carry the measured duration and the
// operation's error, if any. Block is the physical block an op addressed
// (0 for whole-database ops), Shard the write-store shard it routed to
// (-1 when not applicable), and CP the consistency-point tag.
type OpEvent struct {
	Kind  OpKind
	Shard int
	CP    uint64
	Block uint64
	Start time.Time
	Dur   time.Duration
	Err   error

	// ReadBytes and WriteBytes are the device bytes the op's subsystem
	// moved while the op ran (end events only; zero without I/O
	// attribution). They are per-source global deltas, not per-goroutine
	// ones: concurrent ops of the same source each see the sum of what ran
	// during their window, which is still enough to tell an I/O-bound slow
	// op from a compute-bound one.
	ReadBytes  uint64
	WriteBytes uint64
}

// Tracer receives operation start/end events from an instrumented engine.
// Implementations must be safe for concurrent use and should return
// quickly: both hooks run inline on the operation's goroutine (a slow
// tracer slows the database, by design — it is a debugging surface, not a
// sampling profiler). Register one via backlog.Config.Tracer.
type Tracer interface {
	// OpStart is invoked when an operation begins. ev.Dur is zero and
	// ev.Err nil.
	OpStart(ev OpEvent)
	// OpEnd is invoked when the operation completes.
	OpEnd(ev OpEvent)
}

// MultiTracer fans events out to every non-nil tracer, in order. A nil or
// empty input returns nil (no tracing).
func MultiTracer(tracers ...Tracer) Tracer {
	var ts []Tracer
	for _, t := range tracers {
		if t != nil {
			ts = append(ts, t)
		}
	}
	switch len(ts) {
	case 0:
		return nil
	case 1:
		return ts[0]
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

func (m multiTracer) OpStart(ev OpEvent) {
	for _, t := range m {
		t.OpStart(ev)
	}
}

func (m multiTracer) OpEnd(ev OpEvent) {
	for _, t := range m {
		t.OpEnd(ev)
	}
}

// SlowLog is the built-in slow-op tracer: end events whose duration meets
// the threshold are retained in a bounded ring buffer, newest overwriting
// oldest, so memory stays fixed no matter how many ops exceed the
// threshold. Start events are ignored. Safe for concurrent recording and
// concurrent Snapshot readers.
type SlowLog struct {
	threshold atomic.Int64 // ns; ops at or above are retained
	total     atomic.Uint64

	mu   sync.Mutex
	ring []OpEvent
	next int
	full bool
}

// DefaultSlowLogSize is the ring capacity when none is given.
const DefaultSlowLogSize = 128

// NewSlowLog returns a slow-op log retaining ops with Dur >= threshold in
// a ring of the given capacity (DefaultSlowLogSize if <= 0). A zero
// threshold retains every traced op — useful in tests; production callers
// set a threshold well above their p99.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	s := &SlowLog{ring: make([]OpEvent, capacity)}
	s.threshold.Store(int64(threshold))
	return s
}

// OpStart implements Tracer; start events are not retained.
func (s *SlowLog) OpStart(OpEvent) {}

// OpEnd retains the event if it meets the threshold.
func (s *SlowLog) OpEnd(ev OpEvent) {
	if int64(ev.Dur) < s.threshold.Load() {
		return
	}
	s.total.Add(1)
	s.mu.Lock()
	s.ring[s.next] = ev
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// SetThreshold changes the retention threshold for subsequent events.
func (s *SlowLog) SetThreshold(d time.Duration) { s.threshold.Store(int64(d)) }

// Threshold returns the current retention threshold.
func (s *SlowLog) Threshold() time.Duration { return time.Duration(s.threshold.Load()) }

// Total returns how many ops ever met the threshold (including ones the
// ring has since overwritten).
func (s *SlowLog) Total() uint64 { return s.total.Load() }

// Snapshot returns the retained events, oldest first. The slice is a
// copy; concurrent recording never mutates it.
func (s *SlowLog) Snapshot() []OpEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []OpEvent
	if s.full {
		out = make([]OpEvent, 0, len(s.ring))
		out = append(out, s.ring[s.next:]...)
		out = append(out, s.ring[:s.next]...)
	} else {
		out = append(out, s.ring[:s.next]...)
	}
	return out
}
