package btrfssim

import (
	"math/rand"

	"github.com/backlogfs/backlog/internal/storage"
)

// This file implements the workload kernels of Table 1: the create/delete
// microbenchmarks and faithful op-mix reductions of the three application
// benchmarks (dbench's CIFS file-server profile, FileBench /var/mail, and
// PostMark). Timing is the caller's job; kernels only drive the FS.

// RunCreateFiles creates n files of sizeBlocks blocks each, then syncs —
// the create microbenchmark. It returns the created inode numbers.
func RunCreateFiles(fs *FS, n, sizeBlocks int) ([]uint64, error) {
	inos := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		ino, err := fs.CreateFile(sizeBlocks)
		if err != nil {
			return nil, err
		}
		inos = append(inos, ino)
	}
	return inos, fs.Sync()
}

// RunDeleteFiles deletes the given files, then syncs — the delete
// microbenchmark.
func RunDeleteFiles(fs *FS, inos []uint64) error {
	for _, ino := range inos {
		if err := fs.DeleteFile(ino); err != nil {
			return err
		}
	}
	return fs.Sync()
}

// RunDbench approximates dbench's CIFS file-server personality: a stream
// of creates, appends, and deletes dominated by data writes of mixed
// sizes, with periodic flushes. It returns the number of bytes written,
// from which the benchmark's MB/s figure derives.
func RunDbench(fs *FS, ops int, seed int64) (bytesWritten int64, err error) {
	rng := rand.New(rand.NewSource(seed))
	var pool []uint64
	for i := 0; i < ops; i++ {
		x := rng.Float64()
		switch {
		case x < 0.45 || len(pool) == 0: // create with data
			size := 1 + rng.Intn(16) // up to 64 KB
			ino, err := fs.CreateFile(size)
			if err != nil {
				return bytesWritten, err
			}
			bytesWritten += int64(size) * storage.PageSize
			pool = append(pool, ino)
		case x < 0.75: // append (write to existing file)
			ino := pool[rng.Intn(len(pool))]
			size := 1 + rng.Intn(8)
			if err := fs.AppendFile(ino, size); err != nil {
				return bytesWritten, err
			}
			bytesWritten += int64(size) * storage.PageSize
		case x < 0.90: // delete
			j := rng.Intn(len(pool))
			if err := fs.DeleteFile(pool[j]); err != nil {
				return bytesWritten, err
			}
			pool = append(pool[:j], pool[j+1:]...)
		default: // "read"/stat traffic: no metadata mutation
		}
		if i%500 == 499 {
			if err := fs.Fsync(); err != nil {
				return bytesWritten, err
			}
		}
	}
	return bytesWritten, fs.Sync()
}

// RunVarmail approximates FileBench's /var/mail personality with the given
// number of mailbox "threads": each iteration creates a mail file and
// fsyncs, appends to an existing mailbox and fsyncs, reads, and deletes an
// old mail. Returns the number of file operations performed.
func RunVarmail(fs *FS, threads, iters int, seed int64) (ops int, err error) {
	rng := rand.New(rand.NewSource(seed))
	boxes := make([][]uint64, threads)
	for i := 0; i < iters; i++ {
		th := i % threads
		// create + fsync
		ino, err := fs.CreateFile(1 + rng.Intn(4))
		if err != nil {
			return ops, err
		}
		boxes[th] = append(boxes[th], ino)
		ops++
		if err := fs.Fsync(); err != nil {
			return ops, err
		}
		// append to a random mailbox + fsync
		if n := len(boxes[th]); n > 0 {
			if err := fs.AppendFile(boxes[th][rng.Intn(n)], 1); err != nil {
				return ops, err
			}
			ops++
			if err := fs.Fsync(); err != nil {
				return ops, err
			}
		}
		// read (no mutation)
		ops++
		// delete the oldest mail once the box is big
		if len(boxes[th]) > 16 {
			if err := fs.DeleteFile(boxes[th][0]); err != nil {
				return ops, err
			}
			boxes[th] = boxes[th][1:]
			ops++
		}
	}
	return ops, fs.Sync()
}

// RunPostmark approximates PostMark: build an initial pool of small files,
// then run transactions that are a coin flip between create/delete and
// read/append. Returns the number of transactions executed.
func RunPostmark(fs *FS, initialFiles, transactions int, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	var pool []uint64
	for i := 0; i < initialFiles; i++ {
		ino, err := fs.CreateFile(1 + rng.Intn(4))
		if err != nil {
			return 0, err
		}
		pool = append(pool, ino)
	}
	if err := fs.Sync(); err != nil {
		return 0, err
	}
	done := 0
	for i := 0; i < transactions; i++ {
		if rng.Intn(2) == 0 {
			// create or delete
			if rng.Intn(2) == 0 || len(pool) == 0 {
				ino, err := fs.CreateFile(1 + rng.Intn(4))
				if err != nil {
					return done, err
				}
				pool = append(pool, ino)
			} else {
				j := rng.Intn(len(pool))
				if err := fs.DeleteFile(pool[j]); err != nil {
					return done, err
				}
				pool = append(pool[:j], pool[j+1:]...)
			}
		} else {
			// read or append
			if rng.Intn(2) == 0 && len(pool) > 0 {
				if err := fs.AppendFile(pool[rng.Intn(len(pool))], 1); err != nil {
					return done, err
				}
			}
			// reads mutate nothing
		}
		done++
	}
	return done, fs.Sync()
}
