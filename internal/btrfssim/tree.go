// Package btrfssim is an extent-based, copy-on-write metadata substrate
// modeled on btrfs, used to reproduce Table 1 of the paper.
//
// The paper ports Backlog into btrfs by removing btrfs's native back
// references and comparing three configurations: Base (no back references
// at all), Original (btrfs's native inline back references, stored next to
// the extent allocation items in the metadata B-tree), and Backlog. This
// package provides the same three modes over a simulated btrfs-like extent
// tree:
//
//   - A global metadata tree holds one extent item per allocated extent,
//     keyed by the extent's start block.
//   - In Original mode, back-reference items (root/line, inode, offset)
//     live inline, adjacent to their extent item, exactly like btrfs's
//     EXTENT_DATA_REF items; maintaining them dirties the same leaf pages
//     the allocator already touches, which is why the native scheme is
//     cheap — and why it is inseparable from the filesystem's metadata
//     layout (Section 7).
//   - Transactions commit like btrfs: dirty leaves are written
//     copy-on-write to fresh locations, ancestor nodes and then the
//     superblock follow, and everything is synced.
//
// The authoritative tree content is kept in memory (as btrfs's page cache
// would); the on-disk writes exist to account I/O and bytes faithfully.
package btrfssim

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/backlogfs/backlog/internal/storage"
)

// itemSize is the fixed on-disk size of a tree item (both extent items and
// inline back-reference items), matching the paper's 40-byte tuples.
const itemSize = 40

// leafCapacity is how many items fit in one 4 KB leaf page.
const leafCapacity = storage.PageSize / itemSize // 102

// treeFanout approximates the internal-node fanout of the metadata tree.
const treeFanout = 120

// BackrefItem is one inline back reference: which (line, inode, offset)
// references the extent.
type BackrefItem struct {
	Line uint64
	Ino  uint64
	Off  uint64
}

// ExtentItem describes one allocated extent and (in Original mode) its
// inline back references.
type ExtentItem struct {
	Start    uint64
	Len      uint64
	Refs     uint64
	Backrefs []BackrefItem
}

// itemCount returns how many fixed-size tree items this extent occupies.
func (e *ExtentItem) itemCount(inlineBackrefs bool) int {
	if inlineBackrefs {
		return 1 + len(e.Backrefs)
	}
	return 1
}

// leaf is one B-tree leaf: a key-ordered run of extent items.
type leaf struct {
	extents []*ExtentItem // sorted by Start
	dirty   bool
}

func (l *leaf) items(inline bool) int {
	n := 0
	for _, e := range l.extents {
		n += e.itemCount(inline)
	}
	return n
}

// Tree is the simulated btrfs metadata tree.
type Tree struct {
	vfs    storage.VFS
	file   storage.File
	inline bool // maintain inline back references (Original mode)

	leaves   []*leaf // sorted by first key
	nextPage int64

	stats TreeStats
}

// TreeStats counts tree activity.
type TreeStats struct {
	Commits       uint64
	LeavesWritten uint64
	NodesWritten  uint64
	LeafSplits    uint64
	Extents       uint64
}

// NewTree creates an empty extent tree persisting into vfs.
func NewTree(vfs storage.VFS, inlineBackrefs bool) (*Tree, error) {
	return NewTree2(vfs, "extent-tree", inlineBackrefs)
}

// NewTree2 creates a metadata tree persisting under the given file name;
// the fs tree (inode items) uses the same structure as the extent tree.
// The authoritative tree lives in memory (as in btrfs's page cache), so on
// a MemFS the backing file is a metering-only sink: commits are charged
// full page-write costs without retaining bytes.
func NewTree2(vfs storage.VFS, name string, inlineBackrefs bool) (*Tree, error) {
	var f storage.File
	if m, ok := vfs.(*storage.MemFS); ok {
		f = m.CreateSink(name)
	} else {
		var err error
		f, err = vfs.Create(name)
		if err != nil {
			return nil, err
		}
	}
	return &Tree{
		vfs:    vfs,
		file:   f,
		inline: inlineBackrefs,
		leaves: []*leaf{{}},
	}, nil
}

// Stats returns tree counters.
func (t *Tree) Stats() TreeStats { return t.stats }

// leafFor returns the index of the leaf owning key start.
func (t *Tree) leafFor(start uint64) int {
	lo, hi := 0, len(t.leaves)
	for lo < hi {
		mid := (lo + hi) / 2
		l := t.leaves[mid]
		if len(l.extents) == 0 || l.extents[0].Start <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Lookup returns the extent item starting at start, if present.
func (t *Tree) Lookup(start uint64) (*ExtentItem, bool) {
	l := t.leaves[t.leafFor(start)]
	i := sort.Search(len(l.extents), func(i int) bool { return l.extents[i].Start >= start })
	if i < len(l.extents) && l.extents[i].Start == start {
		return l.extents[i], true
	}
	return nil, false
}

// AddRef registers a reference to the extent [start, start+length),
// inserting the extent item if new. In inline mode the back-reference item
// is stored alongside.
func (t *Tree) AddRef(start, length uint64, ref BackrefItem) {
	li := t.leafFor(start)
	l := t.leaves[li]
	i := sort.Search(len(l.extents), func(i int) bool { return l.extents[i].Start >= start })
	if i < len(l.extents) && l.extents[i].Start == start {
		e := l.extents[i]
		e.Refs++
		if t.inline {
			e.Backrefs = append(e.Backrefs, ref)
		}
		l.dirty = true
		t.maybeSplit(li)
		return
	}
	e := &ExtentItem{Start: start, Len: length, Refs: 1}
	if t.inline {
		e.Backrefs = []BackrefItem{ref}
	}
	l.extents = append(l.extents, nil)
	copy(l.extents[i+1:], l.extents[i:])
	l.extents[i] = e
	l.dirty = true
	t.stats.Extents++
	t.maybeSplit(li)
}

// RemoveRef drops one reference; when the last reference goes, the extent
// item is removed. It reports whether the extent became free.
func (t *Tree) RemoveRef(start uint64, ref BackrefItem) (freed bool, err error) {
	li := t.leafFor(start)
	l := t.leaves[li]
	i := sort.Search(len(l.extents), func(i int) bool { return l.extents[i].Start >= start })
	if i >= len(l.extents) || l.extents[i].Start != start {
		return false, fmt.Errorf("btrfssim: extent %d not found", start)
	}
	e := l.extents[i]
	if t.inline {
		found := false
		for j, br := range e.Backrefs {
			if br == ref {
				e.Backrefs = append(e.Backrefs[:j], e.Backrefs[j+1:]...)
				found = true
				break
			}
		}
		if !found {
			return false, fmt.Errorf("btrfssim: backref %+v of extent %d not found", ref, start)
		}
	}
	e.Refs--
	l.dirty = true
	if e.Refs == 0 {
		l.extents = append(l.extents[:i], l.extents[i+1:]...)
		t.stats.Extents--
		// Drop emptied leaves (keeping at least one): an empty leaf in the
		// middle of the directory would break the key-ordered search.
		if len(l.extents) == 0 && len(t.leaves) > 1 {
			t.leaves = append(t.leaves[:li], t.leaves[li+1:]...)
		}
		return true, nil
	}
	return false, nil
}

// maybeSplit splits a leaf that exceeds capacity.
func (t *Tree) maybeSplit(li int) {
	l := t.leaves[li]
	if l.items(t.inline) <= leafCapacity || len(l.extents) < 2 {
		return
	}
	half := len(l.extents) / 2
	right := &leaf{extents: append([]*ExtentItem(nil), l.extents[half:]...), dirty: true}
	l.extents = l.extents[:half]
	l.dirty = true
	t.leaves = append(t.leaves, nil)
	copy(t.leaves[li+2:], t.leaves[li+1:])
	t.leaves[li+1] = right
	t.stats.LeafSplits++
}

// Commit writes all dirty leaves copy-on-write (to fresh page locations),
// then the dirtied internal-node paths and the superblock, then syncs —
// a btrfs transaction commit.
func (t *Tree) Commit() error {
	var dirty int
	buf := make([]byte, storage.PageSize)
	for _, l := range t.leaves {
		if !l.dirty {
			continue
		}
		dirty++
		t.serializeLeaf(l, buf)
		if _, err := t.file.WriteAt(buf, t.nextPage*storage.PageSize); err != nil {
			return err
		}
		t.nextPage++
		t.stats.LeavesWritten++
		l.dirty = false
	}
	if dirty == 0 {
		return nil
	}
	// Ancestor COW: every dirty leaf's path to the root is rewritten; at
	// fanout f, d dirty leaves share ceil(d/f) level-1 nodes, etc.
	nodes := 0
	for level := dirty; level > 1; {
		level = (level + treeFanout - 1) / treeFanout
		nodes += level
	}
	nodes++ // superblock
	for i := 0; i < nodes; i++ {
		if _, err := t.file.WriteAt(buf[:storage.PageSize], t.nextPage*storage.PageSize); err != nil {
			return err
		}
		t.nextPage++
		t.stats.NodesWritten++
	}
	t.stats.Commits++
	return t.file.Sync()
}

// serializeLeaf encodes a leaf's items into a page buffer.
func (t *Tree) serializeLeaf(l *leaf, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	off := 0
	put := func(kind, a, b, c, d uint64) {
		if off+itemSize > len(buf) {
			return // capacity guard; splits keep us under in practice
		}
		le := binary.LittleEndian
		le.PutUint64(buf[off:], kind)
		le.PutUint64(buf[off+8:], a)
		le.PutUint64(buf[off+16:], b)
		le.PutUint64(buf[off+24:], c)
		le.PutUint64(buf[off+32:], d)
		off += itemSize
	}
	for _, e := range l.extents {
		put(1, e.Start, e.Len, e.Refs, 0)
		if t.inline {
			for _, br := range e.Backrefs {
				put(2, br.Line, br.Ino, br.Off, 0)
			}
		}
	}
}

// Leaves returns the current leaf count (test helper).
func (t *Tree) Leaves() int { return len(t.leaves) }
