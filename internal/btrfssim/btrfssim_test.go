package btrfssim

import (
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

func newFS(t *testing.T, mode Mode, opsPerTx int) *FS {
	t.Helper()
	fs, err := New(Config{Mode: mode, OpsPerTransaction: opsPerTx})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestTreeAddRemove(t *testing.T) {
	vfs := storage.NewMemFS()
	tree, err := NewTree(vfs, true)
	if err != nil {
		t.Fatal(err)
	}
	tree.AddRef(100, 4, BackrefItem{Line: 0, Ino: 2, Off: 0})
	tree.AddRef(100, 4, BackrefItem{Line: 0, Ino: 3, Off: 8})
	e, ok := tree.Lookup(100)
	if !ok || e.Refs != 2 || len(e.Backrefs) != 2 {
		t.Fatalf("extent = %+v", e)
	}
	freed, err := tree.RemoveRef(100, BackrefItem{Line: 0, Ino: 2, Off: 0})
	if err != nil || freed {
		t.Fatalf("first remove: freed=%v err=%v", freed, err)
	}
	freed, err = tree.RemoveRef(100, BackrefItem{Line: 0, Ino: 3, Off: 8})
	if err != nil || !freed {
		t.Fatalf("second remove: freed=%v err=%v", freed, err)
	}
	if _, ok := tree.Lookup(100); ok {
		t.Fatal("extent survived last deref")
	}
	if _, err := tree.RemoveRef(100, BackrefItem{}); err == nil {
		t.Fatal("remove of missing extent succeeded")
	}
}

func TestTreeSplitsUnderLoad(t *testing.T) {
	vfs := storage.NewMemFS()
	tree, err := NewTree(vfs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		tree.AddRef(i*10, 4, BackrefItem{Ino: i, Off: 0})
	}
	if tree.Leaves() < 2 {
		t.Fatal("no leaf splits after 5000 extents")
	}
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.LeavesWritten == 0 || st.NodesWritten == 0 {
		t.Fatalf("commit stats = %+v", st)
	}
	// Every extent is still findable.
	for i := uint64(0); i < 5000; i += 37 {
		if _, ok := tree.Lookup(i * 10); !ok {
			t.Fatalf("extent %d lost after splits", i*10)
		}
	}
}

func TestCommitIsIncremental(t *testing.T) {
	vfs := storage.NewMemFS()
	tree, err := NewTree(vfs, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		tree.AddRef(i*10, 1, BackrefItem{Ino: i})
	}
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}
	full := tree.Stats().LeavesWritten
	// One more touch dirties exactly one leaf.
	tree.AddRef(25, 1, BackrefItem{Ino: 9999})
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}
	if delta := tree.Stats().LeavesWritten - full; delta != 1 {
		t.Fatalf("incremental commit wrote %d leaves, want 1", delta)
	}
	// Committing with nothing dirty writes nothing.
	before := tree.Stats()
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}
	if tree.Stats().Commits != before.Commits {
		t.Fatal("empty commit counted")
	}
}

func TestInlineModeUsesMoreLeaves(t *testing.T) {
	build := func(inline bool) int {
		vfs := storage.NewMemFS()
		tree, err := NewTree(vfs, inline)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 3000; i++ {
			tree.AddRef(i*10, 1, BackrefItem{Ino: i})
			tree.AddRef(i*10, 1, BackrefItem{Ino: i + 100000}) // shared extent
		}
		return tree.Leaves()
	}
	withBR, withoutBR := build(true), build(false)
	if withBR <= withoutBR {
		t.Fatalf("inline backrefs use %d leaves vs %d without — expected more", withBR, withoutBR)
	}
}

func TestFSLifecycleAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeOriginal, ModeBacklog} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := newFS(t, mode, 64)
			inos, err := RunCreateFiles(fs, 200, 1)
			if err != nil {
				t.Fatal(err)
			}
			if fs.FileCount() != 200 {
				t.Fatalf("FileCount = %d", fs.FileCount())
			}
			if err := RunDeleteFiles(fs, inos); err != nil {
				t.Fatal(err)
			}
			if fs.FileCount() != 0 {
				t.Fatalf("FileCount after delete = %d", fs.FileCount())
			}
			st := fs.Stats()
			if st.ExtentOps != 400 {
				t.Fatalf("ExtentOps = %d, want 400", st.ExtentOps)
			}
			if st.Transactions == 0 {
				t.Fatal("no transactions committed")
			}
		})
	}
}

func TestBacklogModeTracksExtents(t *testing.T) {
	fs := newFS(t, ModeBacklog, 16)
	ino, err := fs.CreateFile(16) // one 64 KB extent
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	f := fs.files[ino]
	owners, err := fs.Engine().Query(f.extents[0].start)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || owners[0].Inode != ino || owners[0].Length != 16 || !owners[0].Live {
		t.Fatalf("owners = %+v", owners)
	}
	if err := fs.DeleteFile(ino); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	owners, err = fs.Engine().Query(f.extents[0].start)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 0 {
		t.Fatalf("owners after delete = %+v", owners)
	}
}

func TestCloneSharesExtents(t *testing.T) {
	fs := newFS(t, ModeOriginal, 16)
	src, err := fs.CreateFile(4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fs.CloneFile(src)
	if err != nil {
		t.Fatal(err)
	}
	start := fs.files[src].extents[0].start
	e, ok := fs.Tree().Lookup(start)
	if !ok || e.Refs != 2 || len(e.Backrefs) != 2 {
		t.Fatalf("shared extent = %+v", e)
	}
	if err := fs.DeleteFile(src); err != nil {
		t.Fatal(err)
	}
	e, ok = fs.Tree().Lookup(start)
	if !ok || e.Refs != 1 {
		t.Fatalf("after one owner deleted: %+v", e)
	}
	if err := fs.DeleteFile(dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Tree().Lookup(start); ok {
		t.Fatal("extent survived both owners")
	}
}

func TestWorkloadKernels(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeOriginal, ModeBacklog} {
		fs := newFS(t, mode, 512)
		bytes, err := RunDbench(fs, 2000, 1)
		if err != nil {
			t.Fatalf("%v dbench: %v", mode, err)
		}
		if bytes == 0 {
			t.Fatalf("%v dbench wrote nothing", mode)
		}

		fs2 := newFS(t, mode, 512)
		ops, err := RunVarmail(fs2, 16, 300, 2)
		if err != nil {
			t.Fatalf("%v varmail: %v", mode, err)
		}
		if ops == 0 {
			t.Fatalf("%v varmail did nothing", mode)
		}
		if fs2.Stats().Fsyncs < 500 {
			t.Fatalf("%v varmail issued only %d fsyncs", mode, fs2.Stats().Fsyncs)
		}
		if fs2.Stats().Transactions == 0 {
			t.Fatalf("%v varmail committed no transactions", mode)
		}

		fs3 := newFS(t, mode, 512)
		tx, err := RunPostmark(fs3, 100, 1000, 3)
		if err != nil {
			t.Fatalf("%v postmark: %v", mode, err)
		}
		if tx != 1000 {
			t.Fatalf("%v postmark ran %d transactions", mode, tx)
		}
	}
}

func TestBacklogOverheadIsModest(t *testing.T) {
	// Sanity-check the Table 1 relationship: Backlog adds I/O over Base,
	// but within a small multiple for the create benchmark.
	measure := func(mode Mode) int64 {
		fs := newFS(t, mode, 2048)
		if _, err := RunCreateFiles(fs, 4096, 1); err != nil {
			t.Fatal(err)
		}
		return fs.VFS().Stats().PageWrites
	}
	base := measure(ModeBase)
	orig := measure(ModeOriginal)
	backlog := measure(ModeBacklog)
	if base == 0 {
		t.Fatal("base wrote nothing")
	}
	if backlog <= base {
		t.Fatalf("backlog (%d pages) not above base (%d)", backlog, base)
	}
	if float64(backlog) > 2.0*float64(base) {
		t.Fatalf("backlog I/O overhead too large: base=%d orig=%d backlog=%d", base, orig, backlog)
	}
}

var _ uint64 = core.Infinity
