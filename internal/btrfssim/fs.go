package btrfssim

import (
	"errors"
	"fmt"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// Mode selects the back-reference configuration of Table 1.
type Mode int

// The three configurations compared in Table 1.
const (
	// ModeBase is btrfs with its back-reference support removed.
	ModeBase Mode = iota
	// ModeOriginal is btrfs's native design: inline back references in
	// the extent tree.
	ModeOriginal
	// ModeBacklog replaces the native back references with the Backlog
	// engine.
	ModeBacklog
)

func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "Base"
	case ModeOriginal:
		return "Original"
	case ModeBacklog:
		return "Backlog"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// BlocksPerExtent is the maximum extent length; btrfs writes a small file
// in a single extent, so a 64 KB file is one 16-block extent.
const BlocksPerExtent = 1 << 20

// Config configures a simulated btrfs volume.
type Config struct {
	Mode Mode
	// OpsPerTransaction batches file operations per transaction commit
	// (the paper tests 2048 and 8192).
	OpsPerTransaction int
	// VFS to store everything in; nil creates a fresh MemFS.
	VFS *storage.MemFS
	// WriteShards is passed through to the Backlog engine in ModeBacklog
	// (0 = engine default of GOMAXPROCS).
	WriteShards int
	// Durability is passed through to the Backlog engine in ModeBacklog
	// (default wal.CheckpointOnly, the paper's configuration).
	Durability wal.Durability
	// AutoCompact enables the Backlog engine's background maintenance
	// scheduler in ModeBacklog (the paper's runs accumulate unmaintained
	// across a benchmark, so this is off by default).
	AutoCompact bool
	// Metrics, if non-nil, registers the Backlog engine's metrics in
	// ModeBacklog — btrfsbench's -debug-addr serves them live while a
	// benchmark runs. Successive FS instances re-register against the
	// same registry; the latest engine's gauges win.
	Metrics *obs.Registry
}

// FS is the simulated btrfs file layer.
type FS struct {
	cfg      Config
	vfs      *storage.MemFS
	tree     *Tree // extent tree (allocation records + native backrefs)
	fsTree   *Tree // fs tree (inode items); dirtied by create/delete
	data     storage.File
	fsyncLog storage.File
	logHead  int64

	eng *core.Engine // Backlog mode only
	cat *core.MemCatalog

	files     map[uint64]*file
	nextIno   uint64
	nextBlock uint64

	cp      uint64
	opCount int

	stats FSStats
}

type file struct {
	ino     uint64
	extents []extent
}

type extent struct {
	start  uint64 // physical start block
	length uint64 // blocks
	off    uint64 // logical block offset within the file
}

// FSStats counts file-layer activity.
type FSStats struct {
	FilesCreated uint64
	FilesDeleted uint64
	ExtentOps    uint64 // extent references added + removed
	Transactions uint64
	Fsyncs       uint64
}

// New creates a btrfs-like volume in the given mode.
func New(cfg Config) (*FS, error) {
	if cfg.OpsPerTransaction <= 0 {
		cfg.OpsPerTransaction = 2048
	}
	if cfg.VFS == nil {
		cfg.VFS = storage.NewMemFS()
	}
	tree, err := NewTree(cfg.VFS, cfg.Mode == ModeOriginal)
	if err != nil {
		return nil, err
	}
	fsTree, err := NewTree2(cfg.VFS, "fs-tree", false)
	if err != nil {
		return nil, err
	}
	// File data is written through the disk model but never read back:
	// a metering sink avoids holding gigabytes of zeros in memory.
	data := cfg.VFS.CreateSink("data-area")
	fsyncLog := cfg.VFS.CreateSink("fsync-log")
	fs := &FS{
		cfg:       cfg,
		vfs:       cfg.VFS,
		tree:      tree,
		fsTree:    fsTree,
		data:      data,
		fsyncLog:  fsyncLog,
		files:     map[uint64]*file{},
		nextIno:   2,
		nextBlock: 1,
		cp:        1,
	}
	if cfg.Mode == ModeBacklog {
		fs.cat = core.NewMemCatalog()
		eng, err := core.Open(core.Options{VFS: cfg.VFS, Catalog: fs.cat, WriteShards: cfg.WriteShards, Durability: cfg.Durability, AutoCompact: cfg.AutoCompact, Metrics: cfg.Metrics})
		if err != nil {
			return nil, err
		}
		fs.eng = eng
	}
	return fs, nil
}

// Close releases the Backlog engine, stopping its background maintainer
// if AutoCompact is enabled. Benchmarks that create many FS instances
// must call it to avoid leaking maintenance goroutines.
func (fs *FS) Close() error {
	if fs.eng == nil {
		return nil
	}
	return fs.eng.Close()
}

// Engine returns the Backlog engine (nil unless ModeBacklog).
func (fs *FS) Engine() *core.Engine { return fs.eng }

// Tree returns the metadata tree.
func (fs *FS) Tree() *Tree { return fs.tree }

// VFS returns the underlying storage (for I/O accounting).
func (fs *FS) VFS() *storage.MemFS { return fs.vfs }

// Stats returns file-layer counters.
func (fs *FS) Stats() FSStats { return fs.stats }

// allocExtent reserves a contiguous run of blocks. Allocation is a simple
// cursor (btrfs's allocator is far more clever, but allocation policy is
// orthogonal to back-reference cost).
func (fs *FS) allocExtent(blocks uint64) uint64 {
	start := fs.nextBlock
	fs.nextBlock += blocks
	return start
}

// writeData writes the extent's file data through the disk model; data
// transfer dominates the create benchmarks, exactly as on real hardware
// (a 64 KB file is 16 pages of data but only one back reference, which is
// why its Backlog overhead is tiny).
func (fs *FS) writeData(e extent) error {
	buf := make([]byte, e.length*storage.PageSize)
	_, err := fs.data.WriteAt(buf, int64(e.start)*storage.PageSize)
	return err
}

// addExtentRef registers one reference through whichever back-reference
// machinery the mode prescribes.
func (fs *FS) addExtentRef(e extent, ino uint64) {
	fs.stats.ExtentOps++
	fs.tree.AddRef(e.start, e.length, BackrefItem{Line: 0, Ino: ino, Off: e.off})
	if fs.eng != nil {
		fs.eng.AddRef(core.Ref{Block: e.start, Inode: ino, Offset: e.off, Line: 0, Length: e.length}, fs.cp)
	}
}

func (fs *FS) removeExtentRef(e extent, ino uint64) error {
	fs.stats.ExtentOps++
	if _, err := fs.tree.RemoveRef(e.start, BackrefItem{Line: 0, Ino: ino, Off: e.off}); err != nil {
		return err
	}
	if fs.eng != nil {
		fs.eng.RemoveRef(core.Ref{Block: e.start, Inode: ino, Offset: e.off, Line: 0, Length: e.length}, fs.cp)
	}
	return nil
}

// CreateFile creates a file of the given size in blocks, written as a
// single extent (btrfs writes small files in one extent, which is why the
// 64 KB create benchmark shows almost no Backlog overhead: one back
// reference amortizes over 16 blocks of data).
func (fs *FS) CreateFile(sizeBlocks int) (uint64, error) {
	if sizeBlocks <= 0 {
		return 0, errors.New("btrfssim: file size must be positive")
	}
	ino := fs.nextIno
	fs.nextIno++
	f := &file{ino: ino}
	e := extent{start: fs.allocExtent(uint64(sizeBlocks)), length: uint64(sizeBlocks), off: 0}
	f.extents = append(f.extents, e)
	fs.files[ino] = f
	if err := fs.writeData(e); err != nil {
		return 0, err
	}
	fs.fsTree.AddRef(inodeKey(ino), 1, BackrefItem{}) // inode item
	fs.addExtentRef(e, ino)
	fs.stats.FilesCreated++
	return ino, fs.opDone()
}

// AppendFile appends one extent of the given size.
func (fs *FS) AppendFile(ino uint64, sizeBlocks int) error {
	f, ok := fs.files[ino]
	if !ok {
		return fmt.Errorf("btrfssim: no inode %d", ino)
	}
	var off uint64
	if n := len(f.extents); n > 0 {
		off = f.extents[n-1].off + f.extents[n-1].length
	}
	e := extent{start: fs.allocExtent(uint64(sizeBlocks)), length: uint64(sizeBlocks), off: off}
	f.extents = append(f.extents, e)
	if err := fs.writeData(e); err != nil {
		return err
	}
	fs.fsTree.AddRef(dataItemKey(ino, e.off), 1, BackrefItem{}) // extent-data item
	fs.addExtentRef(e, ino)
	return fs.opDone()
}

// inodeKey and dataItemKey place a file's fs-tree items (inode item plus
// one extent-data item per appended extent) adjacently, as btrfs does.
func inodeKey(ino uint64) uint64 { return ino << 24 }

func dataItemKey(ino, off uint64) uint64 { return ino<<24 + off + 1 }

// DeleteFile removes a file, releasing all its extents and fs-tree items.
func (fs *FS) DeleteFile(ino uint64) error {
	f, ok := fs.files[ino]
	if !ok {
		return fmt.Errorf("btrfssim: no inode %d", ino)
	}
	for _, e := range f.extents {
		if err := fs.removeExtentRef(e, ino); err != nil {
			return err
		}
		if e.off > 0 {
			if _, err := fs.fsTree.RemoveRef(dataItemKey(ino, e.off), BackrefItem{}); err != nil {
				return err
			}
		}
	}
	if _, err := fs.fsTree.RemoveRef(inodeKey(ino), BackrefItem{}); err != nil {
		return err
	}
	delete(fs.files, ino)
	fs.stats.FilesDeleted++
	return fs.opDone()
}

// CloneFile adds references from a new inode to an existing file's extents
// (a reflink-style clone; exercises shared extents).
func (fs *FS) CloneFile(srcIno uint64) (uint64, error) {
	src, ok := fs.files[srcIno]
	if !ok {
		return 0, fmt.Errorf("btrfssim: no inode %d", srcIno)
	}
	ino := fs.nextIno
	fs.nextIno++
	f := &file{ino: ino, extents: append([]extent(nil), src.extents...)}
	fs.files[ino] = f
	fs.fsTree.AddRef(inodeKey(ino), 1, BackrefItem{})
	for _, e := range f.extents {
		fs.addExtentRef(e, ino)
		if e.off > 0 {
			fs.fsTree.AddRef(dataItemKey(ino, e.off), 1, BackrefItem{})
		}
	}
	fs.stats.FilesCreated++
	return ino, fs.opDone()
}

// opDone counts a file operation and commits a transaction when the batch
// is full.
func (fs *FS) opDone() error {
	fs.opCount++
	if fs.opCount >= fs.cfg.OpsPerTransaction {
		return fs.Sync()
	}
	return nil
}

// Fsync provides fsync durability the way btrfs does: the file's data is
// flushed and the pending metadata operations are appended to the fsync
// log tree, WITHOUT forcing a full transaction commit. Back-reference
// maintenance (native or Backlog) therefore rides the periodic transaction
// commits regardless of fsync frequency — which is why the paper's
// fsync-heavy /var/mail workload shows only ~1.8% Backlog overhead.
func (fs *FS) Fsync() error {
	if err := fs.data.Sync(); err != nil {
		return err
	}
	// One log page records the batched metadata of this fsync.
	var page [storage.PageSize]byte
	if _, err := fs.fsyncLog.WriteAt(page[:], fs.logHead); err != nil {
		return err
	}
	fs.logHead += storage.PageSize
	if err := fs.fsyncLog.Sync(); err != nil {
		return err
	}
	fs.stats.Fsyncs++
	return nil
}

// Sync forces a transaction commit: data first, then both metadata trees
// copy-on-write, then Backlog's checkpoint if configured.
func (fs *FS) Sync() error {
	if fs.opCount == 0 {
		return nil
	}
	fs.opCount = 0
	if err := fs.data.Sync(); err != nil {
		return err
	}
	if err := fs.tree.Commit(); err != nil {
		return err
	}
	if err := fs.fsTree.Commit(); err != nil {
		return err
	}
	if fs.eng != nil {
		if err := fs.eng.Checkpoint(fs.cp); err != nil {
			return err
		}
	}
	fs.cp++
	fs.stats.Transactions++
	return nil
}

// FileCount returns the number of live files.
func (fs *FS) FileCount() int { return len(fs.files) }

// Files returns all live inode numbers (unsorted).
func (fs *FS) Files() []uint64 {
	out := make([]uint64, 0, len(fs.files))
	for ino := range fs.files {
		out = append(out, ino)
	}
	return out
}
