// Package memtree provides the in-memory ordered tree used as the write
// store (WS) of each Backlog table.
//
// The paper's fsim prototype used a Berkeley DB in-memory B-tree and the
// btrfs port used Linux red/black trees; "any efficient indexing structure
// would work" (Section 5.1). This package implements a left-leaning
// red-black tree (Sedgewick's 2-3 variant) generic over the item type, with
// ordered iteration and lower-bound seeks — the two operations the write
// store needs for proactive pruning and consistency-point flushes.
package memtree

// Tree is an ordered set of items of type T. Two items a, b are considered
// equal when neither less(a,b) nor less(b,a); Insert replaces equal items.
// The zero value is not usable; construct with New.
type Tree[T any] struct {
	less func(a, b T) bool
	root *node[T]
	size int
}

type node[T any] struct {
	item        T
	left, right *node[T]
	red         bool
}

// New returns an empty tree ordered by less.
func New[T any](less func(a, b T) bool) *Tree[T] {
	return &Tree[T]{less: less}
}

// Len returns the number of items in the tree.
func (t *Tree[T]) Len() int { return t.size }

// Clear removes all items.
func (t *Tree[T]) Clear() {
	t.root = nil
	t.size = 0
}

func isRed[T any](n *node[T]) bool { return n != nil && n.red }

func rotateLeft[T any](h *node[T]) *node[T] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[T any](h *node[T]) *node[T] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[T any](h *node[T]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[T any](h *node[T]) *node[T] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Insert adds item to the tree, replacing any equal item. It reports
// whether the item was newly inserted (false means replaced).
func (t *Tree[T]) Insert(item T) bool {
	var inserted bool
	t.root, inserted = t.insert(t.root, item)
	t.root.red = false
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree[T]) insert(h *node[T], item T) (*node[T], bool) {
	if h == nil {
		return &node[T]{item: item, red: true}, true
	}
	var inserted bool
	switch {
	case t.less(item, h.item):
		h.left, inserted = t.insert(h.left, item)
	case t.less(h.item, item):
		h.right, inserted = t.insert(h.right, item)
	default:
		h.item = item
	}
	return fixUp(h), inserted
}

// Get returns the item equal to key, if present.
func (t *Tree[T]) Get(key T) (T, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.item):
			n = n.left
		case t.less(n.item, key):
			n = n.right
		default:
			return n.item, true
		}
	}
	var zero T
	return zero, false
}

// Min returns the smallest item.
func (t *Tree[T]) Min() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.item, true
}

// Max returns the largest item.
func (t *Tree[T]) Max() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.item, true
}

func moveRedLeft[T any](h *node[T]) *node[T] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[T any](h *node[T]) *node[T] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func deleteMin[T any](h *node[T]) *node[T] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func minNode[T any](h *node[T]) *node[T] {
	for h.left != nil {
		h = h.left
	}
	return h
}

// Delete removes the item equal to key and reports whether it was present.
func (t *Tree[T]) Delete(key T) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *Tree[T]) delete(h *node[T], key T) *node[T] {
	if t.less(key, h.item) {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if !t.less(h.item, key) && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if !t.less(h.item, key) && !t.less(key, h.item) {
			m := minNode(h.right)
			h.item = m.item
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// Scan calls fn for each item >= from, in ascending order, until fn returns
// false or the items are exhausted.
func (t *Tree[T]) Scan(from T, fn func(item T) bool) {
	t.scan(t.root, from, fn)
}

func (t *Tree[T]) scan(n *node[T], from T, fn func(item T) bool) bool {
	if n == nil {
		return true
	}
	if t.less(n.item, from) {
		return t.scan(n.right, from, fn)
	}
	if !t.scan(n.left, from, fn) {
		return false
	}
	if !fn(n.item) {
		return false
	}
	return t.scan(n.right, from, fn)
}

// Ascend calls fn for every item in ascending order until fn returns false.
func (t *Tree[T]) Ascend(fn func(item T) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[T]) ascend(n *node[T], fn func(item T) bool) bool {
	if n == nil {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.item) {
		return false
	}
	return t.ascend(n.right, fn)
}

// Items returns all items in ascending order.
func (t *Tree[T]) Items() []T {
	out := make([]T, 0, t.size)
	t.Ascend(func(item T) bool {
		out = append(out, item)
		return true
	})
	return out
}

// Iter is a resumable ascending iterator. It is invalidated by tree
// mutation.
type Iter[T any] struct {
	stack []*node[T]
}

// IterGE returns an iterator positioned at the first item >= from.
func (t *Tree[T]) IterGE(from T) *Iter[T] {
	it := &Iter[T]{}
	n := t.root
	for n != nil {
		if t.less(n.item, from) {
			n = n.right
		} else {
			it.stack = append(it.stack, n)
			n = n.left
		}
	}
	return it
}

// IterAll returns an iterator over the whole tree.
func (t *Tree[T]) IterAll() *Iter[T] {
	it := &Iter[T]{}
	n := t.root
	for n != nil {
		it.stack = append(it.stack, n)
		n = n.left
	}
	return it
}

// Next returns the next item, if any.
func (it *Iter[T]) Next() (T, bool) {
	if len(it.stack) == 0 {
		var zero T
		return zero, false
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	item := n.item
	child := n.right
	for child != nil {
		it.stack = append(it.stack, child)
		child = child.left
	}
	return item, true
}

// checkInvariants verifies red-black invariants; used by tests.
func (t *Tree[T]) checkInvariants() error {
	if isRed(t.root) {
		return errRedRoot
	}
	_, err := check(t.root)
	return err
}

var (
	errRedRoot   = treeError("red root")
	errRedRight  = treeError("right-leaning red link")
	errDoubleRed = treeError("two consecutive red links")
	errBlackPath = treeError("unequal black height")
)

type treeError string

func (e treeError) Error() string { return "memtree: " + string(e) }

func check[T any](n *node[T]) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if isRed(n.right) {
		return 0, errRedRight
	}
	if isRed(n) && (isRed(n.left) || isRed(n.right)) {
		return 0, errDoubleRed
	}
	lh, err := check(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackPath
	}
	if !isRed(n) {
		lh++
	}
	return lh, nil
}
