package memtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] {
	return New[int](func(a, b int) bool { return a < b })
}

func TestInsertGetDelete(t *testing.T) {
	tr := intTree()
	if _, ok := tr.Get(1); ok {
		t.Fatal("empty tree contains 1")
	}
	for i := 0; i < 100; i++ {
		if !tr.Insert(i) {
			t.Fatalf("Insert(%d) reported replace on fresh key", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if tr.Insert(50) {
		t.Fatal("Insert(50) reported fresh on existing key")
	}
	if tr.Len() != 100 {
		t.Fatalf("replace changed Len to %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		if v, ok := tr.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Delete(2) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 50 {
		t.Fatalf("Len after deletes = %d, want 50", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for _, v := range []int{5, 3, 9, 1, 7} {
		tr.Insert(v)
	}
	if v, _ := tr.Min(); v != 1 {
		t.Fatalf("Min = %d", v)
	}
	if v, _ := tr.Max(); v != 9 {
		t.Fatalf("Max = %d", v)
	}
}

func TestScanFrom(t *testing.T) {
	tr := intTree()
	for i := 0; i < 20; i += 2 {
		tr.Insert(i)
	}
	var got []int
	tr.Scan(7, func(v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{8, 10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("Scan(7) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan(7) = %v, want %v", got, want)
		}
	}
	// Early termination.
	got = got[:0]
	tr.Scan(0, func(v int) bool {
		got = append(got, v)
		return len(got) < 3
	})
	if len(got) != 3 || got[2] != 4 {
		t.Fatalf("early-stop Scan = %v", got)
	}
}

func TestIterGE(t *testing.T) {
	tr := intTree()
	for i := 0; i < 50; i += 5 {
		tr.Insert(i)
	}
	it := tr.IterGE(12)
	var got []int
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int{15, 20, 25, 30, 35, 40, 45}
	if len(got) != len(want) {
		t.Fatalf("IterGE(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IterGE(12) = %v, want %v", got, want)
		}
	}
	// Iterator past the end.
	it = tr.IterGE(1000)
	if _, ok := it.Next(); ok {
		t.Fatal("IterGE past max returned an item")
	}
}

func TestIterAllMatchesItems(t *testing.T) {
	tr := intTree()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tr.Insert(rng.Intn(200))
	}
	items := tr.Items()
	it := tr.IterAll()
	for i := 0; ; i++ {
		v, ok := it.Next()
		if !ok {
			if i != len(items) {
				t.Fatalf("iterator ended at %d, want %d", i, len(items))
			}
			break
		}
		if v != items[i] {
			t.Fatalf("item %d: iter=%d items=%d", i, v, items[i])
		}
	}
}

func TestClear(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	tr.Clear()
	if tr.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tr.Len())
	}
	if _, ok := tr.Get(3); ok {
		t.Fatal("Get after Clear")
	}
}

// TestAgainstReferenceModel drives a random op sequence against both the
// tree and a map+sort reference, checking full equivalence and red-black
// invariants along the way.
func TestAgainstReferenceModel(t *testing.T) {
	tr := intTree()
	ref := map[int]bool{}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 20000; step++ {
		k := rng.Intn(500)
		if rng.Intn(2) == 0 {
			ins := tr.Insert(k)
			if ins == ref[k] {
				t.Fatalf("step %d: Insert(%d) fresh=%v, ref has=%v", step, k, ins, ref[k])
			}
			ref[k] = true
		} else {
			del := tr.Delete(k)
			if del != ref[k] {
				t.Fatalf("step %d: Delete(%d)=%v, ref has=%v", step, k, del, ref[k])
			}
			delete(ref, k)
		}
		if step%1000 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("step %d: Len=%d ref=%d", step, tr.Len(), len(ref))
			}
		}
	}
	want := make([]int, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Ints(want)
	got := tr.Items()
	if len(got) != len(want) {
		t.Fatalf("final sizes: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d want %d", i, got[i], want[i])
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedProperty(t *testing.T) {
	// Property: Items() is always sorted and duplicate-free for any input.
	f := func(keys []int16) bool {
		tr := intTree()
		for _, k := range keys {
			tr.Insert(int(k))
		}
		items := tr.Items()
		for i := 1; i < len(items); i++ {
			if items[i-1] >= items[i] {
				return false
			}
		}
		return tr.checkInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeleteAllProperty(t *testing.T) {
	// Property: inserting then deleting every key leaves an empty, valid tree.
	f := func(keys []uint8) bool {
		tr := intTree()
		for _, k := range keys {
			tr.Insert(int(k))
		}
		for _, k := range keys {
			tr.Delete(int(k))
		}
		return tr.Len() == 0 && tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := intTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(i)
	}
}

func BenchmarkInsertDeleteChurn(b *testing.B) {
	tr := intTree()
	for i := 0; i < 32000; i++ {
		tr.Insert(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Delete(i % 32000)
		tr.Insert(i % 32000)
	}
}
