// Package lsm implements the LSM-tree / Stepped-Merge storage layer that
// holds Backlog's From, To, and Combined tables (paper Sections 5.1–5.3).
//
// Each table is a set of immutable read-store (RS) runs, horizontally
// partitioned by physical block number. At every consistency point the
// engine flushes its in-memory write stores into one new Level-0 run per
// (table, partition); compaction later merges all runs of a partition into
// a single large run (the Stepped-Merge Level-N analog). Every run carries
// a Bloom filter over its block numbers so queries open only runs that may
// contain the queried block.
//
// A single manifest file is the commit point: run files are written and
// synced first, then the manifest is atomically replaced (write temp, sync,
// rename), mirroring the write-anywhere "root written last" discipline the
// paper's recovery story relies on (Section 5.4). A crash between run
// writes and the manifest commit leaves orphan files that Open garbage
// collects.
//
// The layer is policy-free: it stores opaque fixed-size records ordered by
// bytes.Compare whose first 8 bytes are the big-endian physical block
// number. The join, inheritance, masking, and purge logic live in
// internal/core.
package lsm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/storage"
)

const (
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"

	// manifestVersion is the current on-disk manifest format. Version 2
	// added per-run consistency-point windows ([min_cp, max_cp]) and
	// override-record counts; version-1 manifests load with conservative
	// windows (see loadManifest).
	manifestVersion = 2
)

// TableSpec declares one table of a DB.
type TableSpec struct {
	// Name identifies the table ("from", "to", "combined").
	Name string
	// RecordSize is the fixed encoded record size in bytes.
	RecordSize int
	// BloomMaxBytes caps the Bloom filter size of this table's runs
	// (DefaultFilterBytes if zero).
	BloomMaxBytes int
	// Span reports the consistency-point window [lo, hi] a record covers.
	// Run builders fold it into the run's [MinCP, MaxCP] metadata, which
	// drop-based expiry (Edit.DropRunsBelow) and CP-window query pruning
	// rely on. When nil, runs of this table carry no CP window and are
	// never dropped or pruned by CP.
	Span func(rec []byte) (lo, hi uint64)
	// IsOverride reports whether a record is an inheritance-override
	// record that must outlive ordinary expiry. Runs containing at least
	// one override record are never dropped by DropRunsBelow. Optional;
	// only consulted when Span is set.
	IsOverride func(rec []byte) bool
}

// Options configures Open.
type Options struct {
	// Tables lists the tables of the database.
	Tables []TableSpec
	// Partitions is the number of block-range partitions (>= 1).
	Partitions int
	// PartitionSpan is the number of physical blocks per partition;
	// blocks >= Partitions*PartitionSpan route to the last partition.
	// Required when Partitions > 1 unless HashPartitioning is set.
	PartitionSpan uint64
	// HashPartitioning routes blocks to partitions by hash instead of by
	// contiguous range — the alternative scheme the paper plans to
	// explore for better parallelism (Section 5.3). Hash partitioning
	// spreads load evenly regardless of allocation locality, at the cost
	// of less selective per-run block ranges.
	HashPartitioning bool
	// Cache is the shared page cache used by run readers (may be nil).
	Cache *btree.Cache
	// DisableBloom makes MayContainBlock ignore Bloom filters and rely on
	// key ranges only (used by the ablation benchmarks).
	DisableBloom bool
	// RunFormat selects the leaf encoding for newly built runs
	// (btree.FormatRaw if zero). Existing runs of either format open
	// transparently regardless of this setting, and every builder — the
	// checkpoint flush and both compaction modes go through NewRunBuilder —
	// writes the configured format, so switching it migrates a database
	// run by run as compaction rewrites them. FormatDelta requires every
	// table's RecordSize to be a multiple of 8.
	RunFormat btree.Format
	// DecodeObserver, when non-nil, receives the wall time spent expanding
	// each compressed leaf page on a decoded-cache miss (the engine wires
	// it to the backlog_page_decode_ns histogram).
	DecodeObserver func(time.Duration)
}

// DB is a multi-table LSM store with a single atomic manifest.
//
// DB is not internally synchronized except for run-ID allocation (idMu)
// and view refcounting (viewMu): callers serialize structural operations
// (Commit, deletion-vector mutation) themselves, but may create
// RunBuilders from multiple goroutines concurrently — the engine's
// parallel checkpoint flush relies on this — and may acquire and release
// Views concurrently with each other and with structural readers.
type DB struct {
	vfs   storage.VFS
	opts  Options
	cache *btree.Cache

	tables map[string]*Table
	m      manifest

	// curCP mirrors m.CP for lock-free readers: Run.SeekGE stamps each
	// run's last-access CP from it without taking any lock, while Commit
	// replaces db.m concurrently. Written at Open and at every Commit.
	curCP atomic.Uint64

	// idMu guards nextID, the monotonic run/DV file-ID allocator.
	// Allocation is deliberately outside the manifest struct: builders
	// (checkpoint shard flushes, optimistic compactions) allocate with no
	// structural lock held, concurrently with a Commit replacing db.m —
	// the allocator must never move backwards, or a live run's file name
	// would be reused. Commit persists a snapshot of the allocator taken
	// after all of its own allocations, so the on-disk NextID always
	// covers every ID handed out, including in-flight builders whose
	// edits never commit (their files become orphans).
	idMu   sync.Mutex
	nextID uint64

	// viewMu guards the current version pointer and version/run
	// refcounts: AcquireView and Release may run concurrently with each
	// other and with the version transition a Commit performs.
	viewMu sync.Mutex
	// cur is the current version — the refcounted snapshot of all
	// tables' run sets and deletion vectors that AcquireView pins in
	// O(1). Commit installs a successor and drops the current ref of the
	// old version; superseded run files are reclaimed when the last
	// version referencing them is destroyed. verStale records that a
	// deletion-vector mutation outside a Commit made cur's snapshot lag
	// live state; the next AcquireView rebuilds it. Mutators write it
	// under the caller's structural exclusive lock, AcquireView reads and
	// clears it under viewMu plus at least the shared structural lock.
	cur      *version
	verStale bool

	// views counts live (unreleased) View pins, and deferred tracks run
	// files already dropped from the manifest but still pinned by some
	// version — files whose deletion is deferred behind a view. Both are
	// guarded by viewMu and exported (ActiveViews, DeferredFiles) for the
	// engine's observability gauges: a deferred count that grows without
	// bound is the signature of a leaked view pin.
	views    int
	deferred map[string]struct{}
}

// ActiveViews returns the number of currently pinned (acquired, not yet
// released) views.
func (db *DB) ActiveViews() int {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	return db.views
}

// DeferredFiles returns the number of run files dropped from the manifest
// whose deletion is deferred because a pinned view still references them.
func (db *DB) DeferredFiles() int {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	return len(db.deferred)
}

// deferRun marks a dropped-but-still-pinned run file. Caller holds viewMu.
func (db *DB) deferRun(name string) {
	if db.deferred == nil {
		db.deferred = make(map[string]struct{})
	}
	db.deferred[name] = struct{}{}
}

// undeferAll clears deferred-tracking for runs whose last pin just went
// (they are about to be removed). Caller holds viewMu. Deleting a run
// that was never deferred (doomed without ever outliving its drop) is a
// no-op.
func (db *DB) undeferAll(doomed []*Run) {
	for _, r := range doomed {
		delete(db.deferred, r.name)
	}
}

// vfsFor returns the DB's VFS re-tagged to attribute I/O to src. With an
// unattributed VFS (plain MemFS/DirFS) it returns the VFS unchanged, so
// every internal call site tags unconditionally.
func (db *DB) vfsFor(src storage.Source) storage.VFS {
	return storage.TagVFS(db.vfs, src)
}

// allocID hands out the next file ID.
func (db *DB) allocID() uint64 {
	db.idMu.Lock()
	id := db.nextID
	db.nextID++
	db.idMu.Unlock()
	return id
}

// nextIDSnapshot returns the first unallocated ID, for manifest
// serialization.
func (db *DB) nextIDSnapshot() uint64 {
	db.idMu.Lock()
	defer db.idMu.Unlock()
	return db.nextID
}

// Table is one logical table of a DB.
type Table struct {
	db   *DB
	spec TableSpec
	// runs[p] lists the live runs of partition p, oldest first. Commit
	// replaces these slices wholesale (never appends in place), so a View
	// can share them without copying.
	runs [][]*Run
	// dv is the deletion vector: records hidden from all reads until the
	// next compaction rewrites them away (paper Section 5.1, borrowed
	// from C-Store). The map is copy-on-write: once a View shares it
	// (dvShared), the next mutation copies it first, so view readers never
	// observe a mutation. dvGen counts content mutations — Views compare
	// generations to detect change without comparing maps.
	dv       map[string]struct{}
	dvShared bool
	dvGen    uint64
	dvDirty  bool
}

// manifest is the JSON-serialized commit point.
type manifest struct {
	Version int                      `json:"version"`
	CP      uint64                   `json:"cp"`
	NextID  uint64                   `json:"next_id"`
	Tables  map[string]tableManifest `json:"tables"`
}

type tableManifest struct {
	Partitions [][]runManifest `json:"partitions"`
	DVFile     string          `json:"dv_file,omitempty"`
	DVCount    int             `json:"dv_count,omitempty"`
}

type runManifest struct {
	Name     string
	Level    int
	Records  uint64
	MinBlock uint64
	MaxBlock uint64
	CP       uint64 // CP at which the run was created
	// MinCP and MaxCP bound the consistency points covered by the run's
	// records (as reported by the table's Span callback). A run whose
	// MaxCP lies below the reclaim horizon — and which contains no
	// override records — can be dropped whole without rewriting data.
	MinCP, MaxCP uint64
	// Overrides counts inheritance-override records in the run; runs with
	// Overrides > 0 are never dropped by DropRunsBelow.
	Overrides uint64
	// CPUnknown marks runs without trustworthy window metadata: runs
	// loaded from a version-1 manifest and runs of tables without a Span
	// callback. Such runs are never dropped or pruned by CP.
	CPUnknown bool
}

// runManifestJSON is the wire form of runManifest. MinCP and MaxCP are
// omitted when equal to CP (the common case for level-0 flushes, where
// every record carries the flushed consistency point), keeping manifests
// of pre-window workloads byte-identical modulo the version field.
type runManifestJSON struct {
	Name      string  `json:"name"`
	Level     int     `json:"level"`
	Records   uint64  `json:"records"`
	MinBlock  uint64  `json:"min_block"`
	MaxBlock  uint64  `json:"max_block"`
	CP        uint64  `json:"cp"`
	MinCP     *uint64 `json:"min_cp,omitempty"`
	MaxCP     *uint64 `json:"max_cp,omitempty"`
	Overrides uint64  `json:"overrides,omitempty"`
	CPUnknown bool    `json:"cp_unknown,omitempty"`
}

func (rm runManifest) MarshalJSON() ([]byte, error) {
	w := runManifestJSON{
		Name: rm.Name, Level: rm.Level, Records: rm.Records,
		MinBlock: rm.MinBlock, MaxBlock: rm.MaxBlock, CP: rm.CP,
		CPUnknown: rm.CPUnknown,
	}
	if !rm.CPUnknown {
		if rm.MinCP != rm.CP {
			v := rm.MinCP
			w.MinCP = &v
		}
		if rm.MaxCP != rm.CP {
			v := rm.MaxCP
			w.MaxCP = &v
		}
		w.Overrides = rm.Overrides
	}
	return json.Marshal(&w)
}

func (rm *runManifest) UnmarshalJSON(data []byte) error {
	var w runManifestJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*rm = runManifest{
		Name: w.Name, Level: w.Level, Records: w.Records,
		MinBlock: w.MinBlock, MaxBlock: w.MaxBlock, CP: w.CP,
		MinCP: w.CP, MaxCP: w.CP, Overrides: w.Overrides, CPUnknown: w.CPUnknown,
	}
	if w.MinCP != nil {
		rm.MinCP = *w.MinCP
	}
	if w.MaxCP != nil {
		rm.MaxCP = *w.MaxCP
	}
	return nil
}

// Open opens or creates a DB in vfs.
func Open(vfs storage.VFS, opts Options) (*DB, error) {
	if len(opts.Tables) == 0 {
		return nil, errors.New("lsm: no tables configured")
	}
	if opts.Partitions < 1 {
		opts.Partitions = 1
	}
	if opts.Partitions > 1 && opts.PartitionSpan == 0 && !opts.HashPartitioning {
		return nil, errors.New("lsm: PartitionSpan required with multiple range partitions")
	}
	if opts.RunFormat == 0 {
		opts.RunFormat = btree.FormatRaw
	}
	if opts.RunFormat != btree.FormatRaw && opts.RunFormat != btree.FormatDelta {
		return nil, fmt.Errorf("lsm: unknown run format %d", opts.RunFormat)
	}
	db := &DB{vfs: vfs, opts: opts, cache: opts.Cache, tables: make(map[string]*Table)}
	for _, spec := range opts.Tables {
		if spec.RecordSize <= 8 {
			return nil, fmt.Errorf("lsm: table %q record size %d too small", spec.Name, spec.RecordSize)
		}
		if opts.RunFormat == btree.FormatDelta && spec.RecordSize%8 != 0 {
			return nil, fmt.Errorf("lsm: table %q record size %d incompatible with delta run format",
				spec.Name, spec.RecordSize)
		}
		if _, dup := db.tables[spec.Name]; dup {
			return nil, fmt.Errorf("lsm: duplicate table %q", spec.Name)
		}
		t := &Table{
			db:   db,
			spec: spec,
			runs: make([][]*Run, opts.Partitions),
			dv:   make(map[string]struct{}),
		}
		db.tables[spec.Name] = t
	}
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	db.nextID = db.m.NextID
	db.curCP.Store(db.m.CP)
	if err := db.collectOrphans(); err != nil {
		return nil, err
	}
	db.cur = db.newVersion()
	return db, nil
}

// Table returns the named table, or nil if not configured.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// CP returns the last committed consistency point number.
func (db *DB) CP() uint64 { return db.m.CP }

// Partitions returns the number of partitions.
func (db *DB) Partitions() int { return db.opts.Partitions }

// PartitionOf returns the partition index responsible for a block.
func (db *DB) PartitionOf(block uint64) int {
	if db.opts.Partitions <= 1 {
		return 0
	}
	if db.opts.HashPartitioning {
		return int(Mix64(block) % uint64(db.opts.Partitions))
	}
	p := int(block / db.opts.PartitionSpan)
	if p >= db.opts.Partitions {
		p = db.opts.Partitions - 1
	}
	return p
}

// Mix64 is the SplitMix64 finalizer. It drives hash partitioning here and
// write-store sharding in internal/core — both derive their index from the
// same hash (mod P partitions, mod N shards), so a shard maps onto whole
// partitions whenever N divides P.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PartitionRange returns the block range [lo, hi] covered by partition p
// (hi is inclusive; the last partition extends to MaxUint64). With hash
// partitioning every partition spans the whole block space.
func (db *DB) PartitionRange(p int) (lo, hi uint64) {
	if db.opts.Partitions <= 1 || db.opts.HashPartitioning {
		return 0, ^uint64(0)
	}
	lo = uint64(p) * db.opts.PartitionSpan
	if p == db.opts.Partitions-1 {
		return lo, ^uint64(0)
	}
	return lo, (uint64(p)+1)*db.opts.PartitionSpan - 1
}

// SizeBytes returns the total on-disk size of all live runs and deletion
// vectors — the measure used in the paper's space-overhead figures.
func (db *DB) SizeBytes() int64 {
	var n int64
	for _, t := range db.tables {
		for _, part := range t.runs {
			for _, r := range part {
				n += r.sizeBytes
			}
		}
		n += int64(len(t.dv) * t.spec.RecordSize)
	}
	return n
}

// RunCount returns the total number of live runs across all tables.
func (db *DB) RunCount() int {
	var n int
	for _, t := range db.tables {
		for _, part := range t.runs {
			n += len(part)
		}
	}
	return n
}

// PartitionRunCounts returns, for every partition, the total number of
// live runs across all tables — the signal the background maintenance
// scheduler watches to pick the partition most in need of compaction.
func (db *DB) PartitionRunCounts() []int {
	counts := make([]int, db.opts.Partitions)
	for _, t := range db.tables {
		for p, part := range t.runs {
			counts[p] += len(part)
		}
	}
	return counts
}

// PartitionLevelCounts returns, for every partition, the number of live
// runs at each level summed across all tables (index [partition][level]).
// Each row is sized to the deepest level present in its partition. The
// caller must hold the structural lock (shared suffices).
func (db *DB) PartitionLevelCounts() [][]int {
	counts := make([][]int, db.opts.Partitions)
	for _, t := range db.tables {
		for p, part := range t.runs {
			for _, r := range part {
				for len(counts[p]) <= r.level {
					counts[p] = append(counts[p], 0)
				}
				counts[p][r.level]++
			}
		}
	}
	return counts
}

// RunInfo describes one live run for observability (backlogctl stats).
type RunInfo struct {
	Table     string
	Partition int
	Name      string
	Level     int
	Records   uint64
	SizeBytes int64
	// Format is the run's on-disk leaf encoding (btree.FormatRaw or
	// btree.FormatDelta), read from the run's own header.
	Format btree.Format
	// LogicalBytes is Records x RecordSize — the size the records occupy
	// once decoded; SizeBytes/LogicalBytes is the physical footprint
	// including index pages and Bloom filter.
	LogicalBytes int64
	MinBlock     uint64
	MaxBlock     uint64
	CP           uint64
	// MinCP and MaxCP bound the consistency points covered by the run's
	// records; meaningful only when CPWindowKnown.
	MinCP, MaxCP  uint64
	Overrides     uint64
	CPWindowKnown bool
	// HeatBytes is the cumulative bytes read from the run's file on behalf
	// of queries (cache misses only — page-cache hits cost no device I/O),
	// and LastAccessCP the committed CP current at the run's most recent
	// query seek. Both are zero when I/O attribution is disabled; size-aware
	// leveling and cold-run placement read them to rank runs by heat.
	HeatBytes    int64
	LastAccessCP uint64
}

// RunInfos lists every live run ordered by (table, partition, age). The
// caller must hold the structural lock (shared suffices).
func (db *DB) RunInfos() []RunInfo {
	var infos []RunInfo
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		for p, part := range t.runs {
			for _, r := range part {
				infos = append(infos, RunInfo{
					Table: name, Partition: p, Name: r.name, Level: r.level,
					Records: r.records, SizeBytes: r.sizeBytes,
					Format:       r.format,
					LogicalBytes: int64(r.records) * int64(t.spec.RecordSize),
					MinBlock:     r.minBlock, MaxBlock: r.maxBlock, CP: r.cp,
					MinCP: r.minCP, MaxCP: r.maxCP, Overrides: r.overrides,
					CPWindowKnown: !r.cpUnknown,
					HeatBytes:     r.heatBytes.Load(),
					LastAccessCP:  r.lastCP.Load(),
				})
			}
		}
	}
	return infos
}

func (db *DB) loadManifest() error {
	f, err := db.vfsFor(storage.SrcRecovery).Open(manifestName)
	if errors.Is(err, storage.ErrNotExist) {
		db.m = manifest{Version: manifestVersion, NextID: 1, Tables: map[string]tableManifest{}}
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("lsm: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return fmt.Errorf("lsm: decoding manifest: %w", err)
	}
	if m.Version > manifestVersion {
		return fmt.Errorf("lsm: manifest version %d newer than supported %d", m.Version, manifestVersion)
	}
	if m.Version < 2 {
		// Version 1 recorded no CP windows. [0, CP] is a safe bound (every
		// record was written at or before the run's creation CP), but the
		// override count is unknowable without reading the data, so legacy
		// runs stay marked CPUnknown and are never dropped or pruned by CP
		// until a compaction rewrites them with full metadata.
		for name, tm := range m.Tables {
			for p, runs := range tm.Partitions {
				for i, rm := range runs {
					rm.MinCP, rm.MaxCP, rm.Overrides, rm.CPUnknown = 0, rm.CP, 0, true
					m.Tables[name].Partitions[p][i] = rm
				}
			}
		}
		m.Version = manifestVersion
	}
	db.m = m
	for name, tm := range m.Tables {
		t := db.tables[name]
		if t == nil {
			return fmt.Errorf("lsm: manifest references unknown table %q", name)
		}
		if len(tm.Partitions) != db.opts.Partitions {
			return fmt.Errorf("lsm: table %q has %d partitions on disk, configured %d",
				name, len(tm.Partitions), db.opts.Partitions)
		}
		for p, runs := range tm.Partitions {
			for _, rm := range runs {
				r, err := db.openRun(t, rm, storage.SrcRecovery)
				if err != nil {
					return err
				}
				t.runs[p] = append(t.runs[p], r)
			}
		}
		if tm.DVFile != "" {
			if err := t.loadDV(tm.DVFile); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectOrphans removes files not referenced by the manifest — leftovers
// of a crash between run writes and the manifest commit.
func (db *DB) collectOrphans() error {
	live := map[string]bool{manifestName: true}
	for name, tm := range db.m.Tables {
		_ = name
		for _, runs := range tm.Partitions {
			for _, rm := range runs {
				live[rm.Name] = true
			}
		}
		if tm.DVFile != "" {
			live[tm.DVFile] = true
		}
	}
	names, err := db.vfs.List()
	if err != nil {
		return err
	}
	rvfs := db.vfsFor(storage.SrcRecovery)
	for _, name := range names {
		if live[name] {
			continue
		}
		if !strings.HasSuffix(name, ".run") && !strings.HasPrefix(name, "dv.") &&
			name != manifestTmpName {
			continue // not ours
		}
		if err := rvfs.Remove(name); err != nil && !errors.Is(err, storage.ErrNotExist) {
			return err
		}
	}
	return nil
}

// blockOf extracts the big-endian block number prefix of a record.
func blockOf(rec []byte) uint64 { return binary.BigEndian.Uint64(rec[:8]) }
