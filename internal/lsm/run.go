package lsm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/backlogfs/backlog/internal/bloom"
	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/storage"
)

// Run is a handle to one immutable read-store file.
type Run struct {
	name      string
	level     int
	records   uint64
	minBlock  uint64
	maxBlock  uint64
	cp        uint64
	sizeBytes int64
	format    btree.Format

	// minCP and maxCP bound the consistency-point window covered by the
	// run's records; overrides counts inheritance-override records.
	// cpUnknown marks legacy runs (version-1 manifests, tables without a
	// Span callback) whose window metadata cannot be trusted.
	minCP     uint64
	maxCP     uint64
	overrides uint64
	cpUnknown bool

	table *Table

	// refs counts the versions whose run lists include this run (the
	// current version plus any superseded versions still pinned by
	// views), guarded by db.viewMu. When the last such version is
	// destroyed the run's file is reclaimed.
	refs int

	// qreader serves query seeks and Bloom loads, creader compaction
	// scans: shallow copies of one btree.Reader differing only in the
	// purpose tag of their file handle, so every cache-miss page read is
	// attributed to the subsystem that caused it. They share one cache
	// identity — pages either fills are hits for both. With attribution
	// disabled both wrap the same untagged file.
	mu      sync.Mutex
	qreader *btree.Reader
	creader *btree.Reader
	filter  *bloom.Filter
	noBF    bool // run carries no bloom filter

	// heatBytes accumulates device bytes read on behalf of queries (fed by
	// the query handle's read hook; cache hits add nothing) and lastCP the
	// committed CP current at the most recent query seek — the per-run
	// access heat that size-aware leveling and cold-run placement consume.
	heatBytes atomic.Int64
	lastCP    atomic.Uint64

	// doomedBy records which subsystem's commit dropped the run, so the
	// deferred file removal (possibly performed much later, by a view
	// release) is attributed to the operation that doomed it. Written
	// before the dropping commit's version swap, read under viewMu.
	doomedBy storage.Source
}

// Name returns the run's file name.
func (r *Run) Name() string { return r.name }

// Level returns the run's maintenance level: 0 for per-CP flushes and
// >= 1 for compacted runs (a stepped merge of level-L runs produces a
// level-L+1 run; a full partition merge produces level 1).
func (r *Run) Level() int { return r.level }

// Records returns the number of records in the run.
func (r *Run) Records() uint64 { return r.records }

// CreatedAtCP returns the consistency point at which the run was written.
func (r *Run) CreatedAtCP() uint64 { return r.cp }

// MinBlock and MaxBlock bound the block numbers present in the run.
func (r *Run) MinBlock() uint64 { return r.minBlock }

// MaxBlock returns the largest block number present in the run.
func (r *Run) MaxBlock() uint64 { return r.maxBlock }

// MinCP and MaxCP bound the consistency points covered by the run's
// records; meaningful only when CPWindowKnown reports true.
func (r *Run) MinCP() uint64 { return r.minCP }

// MaxCP returns the upper bound of the run's consistency-point window.
func (r *Run) MaxCP() uint64 { return r.maxCP }

// Overrides returns the number of inheritance-override records in the run.
func (r *Run) Overrides() uint64 { return r.overrides }

// CPWindowKnown reports whether the run carries trustworthy CP-window
// metadata (false for legacy runs and tables without a Span callback).
func (r *Run) CPWindowKnown() bool { return !r.cpUnknown }

// Format returns the run's on-disk leaf encoding, read from its header.
func (r *Run) Format() btree.Format { return r.format }

// SizeBytes returns the run's physical on-disk size.
func (r *Run) SizeBytes() int64 { return r.sizeBytes }

// DroppableBelow reports whether the run can be dropped whole once no
// consistency point below cp is reachable: its window must be known, it
// must contain no override records, and every record's span must end
// before cp. Queries use the same predicate to skip such runs when
// masking against the live snapshot graph.
func (r *Run) DroppableBelow(cp uint64) bool {
	return !r.cpUnknown && r.overrides == 0 && r.maxCP < cp
}

// HeatBytes returns the cumulative device bytes read from the run on
// behalf of queries (zero when I/O attribution is disabled).
func (r *Run) HeatBytes() int64 { return r.heatBytes.Load() }

// LastAccessCP returns the committed consistency point current at the
// run's most recent query seek (zero if never queried).
func (r *Run) LastAccessCP() uint64 { return r.lastCP.Load() }

// openRun opens a run file and its per-purpose readers. The header read
// performed here is attributed to src: recovery when loading the
// manifest, the committing operation when installing a fresh run.
func (db *DB) openRun(t *Table, rm runManifest, src storage.Source) (*Run, error) {
	f, err := db.vfsFor(src).Open(rm.Name)
	if err != nil {
		return nil, fmt.Errorf("lsm: opening run: %w", err)
	}
	rd, err := btree.Open(f, db.cache)
	if err != nil {
		return nil, fmt.Errorf("lsm: run %s: %w", rm.Name, err)
	}
	if rd.RecordSize() != t.spec.RecordSize {
		return nil, fmt.Errorf("lsm: run %s record size %d, table %q wants %d",
			rm.Name, rd.RecordSize(), t.spec.Name, t.spec.RecordSize)
	}
	if db.opts.DecodeObserver != nil {
		rd.SetDecodeObserver(db.opts.DecodeObserver)
	}
	r := &Run{
		name:      rm.Name,
		level:     rm.Level,
		records:   rm.Records,
		minBlock:  rm.MinBlock,
		maxBlock:  rm.MaxBlock,
		cp:        rm.CP,
		minCP:     rm.MinCP,
		maxCP:     rm.MaxCP,
		overrides: rm.Overrides,
		cpUnknown: rm.CPUnknown,
		sizeBytes: rd.SizeBytes(),
		format:    rd.Format(),
		table:     t,
		// refs stays 0 until a version installation picks the run up; a
		// Commit that fails before installing removes the file itself.
	}
	qf := storage.WithReadHook(storage.TagFile(f, storage.SrcQuery),
		func(n int) { r.heatBytes.Add(int64(n)) })
	r.qreader = rd.WithFile(qf)
	r.creader = rd.WithFile(storage.TagFile(f, storage.SrcCompaction))
	return r, nil
}

// MayContainBlock consults the run's key range and Bloom filter. A false
// result is definitive.
func (r *Run) MayContainBlock(block uint64) bool {
	if block < r.minBlock || block > r.maxBlock {
		return false
	}
	if r.table.db.opts.DisableBloom {
		return true
	}
	f, err := r.bloomFilter()
	if err != nil || f == nil {
		// No filter (or unreadable): must assume presence.
		return true
	}
	return f.MayContain(block)
}

func (r *Run) bloomFilter() (*bloom.Filter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filter != nil || r.noBF {
		return r.filter, nil
	}
	data, err := r.qreader.BloomBytes()
	if err != nil {
		return nil, err
	}
	if data == nil {
		r.noBF = true
		return nil, nil
	}
	f, err := bloom.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	r.filter = f
	return f, nil
}

// SeekGE returns an iterator over the run positioned at the first record
// >= key. Seeks count as query accesses: the run's last-access CP is
// stamped and cache-miss reads feed its heat counter.
func (r *Run) SeekGE(key []byte) (*btree.Iterator, error) {
	r.lastCP.Store(r.table.db.curCP.Load())
	return r.qreader.SeekGE(key)
}

// First returns an iterator over the whole run, reading through the
// compaction-tagged handle: full scans are merge work, not query heat.
func (r *Run) First() (*btree.Iterator, error) {
	return r.creader.First()
}

// RunBuilder accumulates sorted records into a new run file. Builders are
// created by DB.NewRunBuilder and produce a RunRef to be installed by a
// later Commit.
type RunBuilder struct {
	db        *DB
	table     *Table
	partition int
	level     int
	cp        uint64
	src       storage.Source

	name   string
	file   storage.File
	writer *btree.Writer
	filter *bloom.Filter

	minBlock, maxBlock uint64
	prevBlock          uint64
	any                bool

	// CP-window metadata folded from the table's Span/IsOverride
	// callbacks; without a Span callback the run is marked CPUnknown.
	minCP, maxCP uint64
	overrides    uint64
	anyCP        bool
}

// NewRunBuilder starts a new run for (table, partition). Level 0 marks a
// per-CP flush; levels >= 1 compacted runs (compaction stamps its outputs
// one level above its inputs, or 1 for a full-partition merge). The run
// file is created immediately but becomes visible only when its RunRef is
// committed. All I/O the builder issues — file creation, page writes, the
// final sync, and removal on abort — is attributed to src (checkpoint for
// per-CP flushes, compaction for merges).
func (db *DB) NewRunBuilder(table string, partition, level int, cp uint64, src storage.Source) (*RunBuilder, error) {
	t := db.tables[table]
	if t == nil {
		return nil, fmt.Errorf("lsm: unknown table %q", table)
	}
	if partition < 0 || partition >= db.opts.Partitions {
		return nil, fmt.Errorf("lsm: partition %d out of range", partition)
	}
	name := fmt.Sprintf("%s.p%03d.%010d.run", table, partition, db.allocID())
	f, err := db.vfsFor(src).Create(name)
	if err != nil {
		return nil, err
	}
	// Every run creation funnels through here — checkpoint shard flushes
	// and both compaction modes — so the configured format covers them all.
	w, err := btree.NewWriterFormat(f, t.spec.RecordSize, db.opts.RunFormat)
	if err != nil {
		return nil, err
	}
	maxBF := t.spec.BloomMaxBytes
	if maxBF == 0 {
		maxBF = bloom.DefaultFilterBytes
	}
	return &RunBuilder{
		db:        db,
		table:     t,
		partition: partition,
		level:     level,
		cp:        cp,
		src:       src,
		name:      name,
		file:      f,
		writer:    w,
		filter:    bloom.New(maxBF, bloom.DefaultHashes),
	}, nil
}

// Add appends a record (strictly ascending order required).
func (b *RunBuilder) Add(rec []byte) error {
	if err := b.writer.Append(rec); err != nil {
		return err
	}
	blk := blockOf(rec)
	if blk != b.prevBlock || !b.any {
		// The filter indexes block numbers; add each distinct block once.
		b.filter.Add(blk)
	}
	if !b.any {
		b.minBlock = blk
		b.any = true
	}
	b.prevBlock = blk
	b.maxBlock = blk
	if span := b.table.spec.Span; span != nil {
		lo, hi := span(rec)
		if !b.anyCP {
			b.minCP, b.maxCP, b.anyCP = lo, hi, true
		} else {
			if lo < b.minCP {
				b.minCP = lo
			}
			if hi > b.maxCP {
				b.maxCP = hi
			}
		}
		if ov := b.table.spec.IsOverride; ov != nil && ov(rec) {
			b.overrides++
		}
	}
	return nil
}

// Count returns the number of records added so far.
func (b *RunBuilder) Count() uint64 { return b.writer.Count() }

// RunRef identifies a finished, not-yet-committed run.
type RunRef struct {
	table     string
	partition int
	rm        runManifest
	sizeBytes int64
	src       storage.Source
}

// SizeBytes returns the finished run's physical on-disk size; compaction
// sums it into the engine's write-amplification accounting.
func (ref RunRef) SizeBytes() int64 { return ref.sizeBytes }

// Records returns the number of records in the finished run.
func (ref RunRef) Records() uint64 { return ref.rm.Records }

// Finish completes the run file (bloom + header + sync) and returns its
// reference. Empty builders return a zero RunRef with ok=false and remove
// their file. The builder's write handle is closed in every path; a later
// Commit reopens the file by name.
func (b *RunBuilder) Finish() (ref RunRef, ok bool, err error) {
	if b.writer.Count() == 0 {
		b.file.Close()
		if err := b.db.vfsFor(b.src).Remove(b.name); err != nil {
			return RunRef{}, false, err
		}
		return RunRef{}, false, nil
	}
	// Shrink the filter to the paper's target false-positive rate when the
	// run holds few records ("If an RS contains a smaller number of
	// records, we appropriately shrink its Bloom filter", Section 5.1).
	b.filter.ShrinkToFit(0.024)
	if err := b.writer.Finish(b.filter.Marshal()); err != nil {
		b.file.Close()
		return RunRef{}, false, err
	}
	if err := b.file.Close(); err != nil {
		return RunRef{}, false, err
	}
	rm := runManifest{
		Name:     b.name,
		Level:    b.level,
		Records:  b.writer.Count(),
		MinBlock: b.minBlock,
		MaxBlock: b.maxBlock,
		CP:       b.cp,
	}
	if b.table.spec.Span != nil && b.anyCP {
		rm.MinCP, rm.MaxCP, rm.Overrides = b.minCP, b.maxCP, b.overrides
	} else {
		rm.MinCP, rm.MaxCP, rm.CPUnknown = 0, b.cp, true
	}
	return RunRef{
		table:     b.table.spec.Name,
		partition: b.partition,
		rm:        rm,
		sizeBytes: b.writer.SizeBytes(),
		src:       b.src,
	}, true, nil
}

// Abort removes a builder's file without committing it.
func (b *RunBuilder) Abort() {
	b.file.Close()
	_ = b.db.vfsFor(b.src).Remove(b.name)
}

// DiscardRun removes the file behind a finished run that was never handed
// to an Edit (once AddRun is called, a failed Commit removes the file
// itself). The parallel checkpoint flush uses it to clean up runs from
// shards that completed before another shard's flush failed; uncleaned
// files would otherwise linger as orphans until the next Open.
func (db *DB) DiscardRun(ref RunRef) {
	if ref.rm.Name == "" {
		return
	}
	_ = db.vfsFor(ref.src).Remove(ref.rm.Name)
}
