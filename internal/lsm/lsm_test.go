package lsm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/storage"
)

const testRecSize = 16 // block u64 | payload u64

func rec16(block, payload uint64) []byte {
	r := make([]byte, testRecSize)
	binary.BigEndian.PutUint64(r, block)
	binary.BigEndian.PutUint64(r[8:], payload)
	return r
}

func openTestDB(t *testing.T, fs storage.VFS, partitions int) *DB {
	t.Helper()
	opts := Options{
		Tables:        []TableSpec{{Name: "from", RecordSize: testRecSize}, {Name: "to", RecordSize: testRecSize}},
		Partitions:    partitions,
		PartitionSpan: 1000,
		Cache:         btree.NewCache(4096),
	}
	db, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// flushRecords writes one Level-0 run per partition for the given table
// and commits at the given CP.
func flushRecords(t *testing.T, db *DB, table string, cp uint64, recs [][]byte) {
	t.Helper()
	sorted := append([][]byte(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		return string(sorted[i]) < string(sorted[j])
	})
	builders := map[int]*RunBuilder{}
	for _, r := range sorted {
		p := db.PartitionOf(binary.BigEndian.Uint64(r[:8]))
		b, ok := builders[p]
		if !ok {
			var err error
			b, err = db.NewRunBuilder(table, p, 0, cp, storage.SrcCheckpoint)
			if err != nil {
				t.Fatal(err)
			}
			builders[p] = b
		}
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	edit := db.NewEdit().SetCP(cp)
	for _, b := range builders {
		ref, ok, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			edit.AddRun(ref)
		}
	}
	if err := edit.Commit(); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T, tbl *Table, block uint64) [][]byte {
	t.Helper()
	var out [][]byte
	if err := tbl.CollectBlock(block, func(rec []byte) bool {
		out = append(out, append([]byte(nil), rec...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFlushAndCollect(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(5, 100), rec16(5, 101), rec16(9, 1)})
	flushRecords(t, db, "from", 2, [][]byte{rec16(5, 102), rec16(7, 50)})

	got := collect(t, db.Table("from"), 5)
	if len(got) != 3 {
		t.Fatalf("block 5: got %d records, want 3", len(got))
	}
	for i, want := range []uint64{100, 101, 102} {
		if binary.BigEndian.Uint64(got[i][8:]) != want {
			t.Fatalf("record %d payload = %d, want %d", i, binary.BigEndian.Uint64(got[i][8:]), want)
		}
	}
	if got := collect(t, db.Table("from"), 6); len(got) != 0 {
		t.Fatalf("block 6: got %d records, want 0", len(got))
	}
	if db.CP() != 2 {
		t.Fatalf("CP = %d, want 2", db.CP())
	}
}

func TestDuplicateAcrossRunsSuppressed(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(5, 100)})
	flushRecords(t, db, "from", 2, [][]byte{rec16(5, 100)})
	got := collect(t, db.Table("from"), 5)
	if len(got) != 1 {
		t.Fatalf("duplicate record emitted %d times, want 1", len(got))
	}
}

func TestReopenPersists(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 10), rec16(2, 20)})
	flushRecords(t, db, "to", 1, [][]byte{rec16(1, 11)})

	db2 := openTestDB(t, fs, 1)
	if db2.CP() != 1 {
		t.Fatalf("reopened CP = %d", db2.CP())
	}
	if got := collect(t, db2.Table("from"), 2); len(got) != 1 {
		t.Fatalf("reopened from-block-2: %d records", len(got))
	}
	if got := collect(t, db2.Table("to"), 1); len(got) != 1 {
		t.Fatalf("reopened to-block-1: %d records", len(got))
	}
}

func TestCrashBeforeCommitRecoversOldState(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 10)})

	// Write a run but crash before the manifest commit.
	b, err := db.NewRunBuilder("from", 0, 0, 2, storage.SrcCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(rec16(2, 20)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := openTestDB(t, fs, 1)
	if db2.CP() != 1 {
		t.Fatalf("CP after crash = %d, want 1", db2.CP())
	}
	if got := collect(t, db2.Table("from"), 2); len(got) != 0 {
		t.Fatalf("uncommitted record visible after crash")
	}
	// The orphan run file must have been collected.
	names, _ := fs.List()
	for _, n := range names {
		for _, r := range db2.Table("from").Runs(0) {
			if n == r.Name() {
				goto live
			}
		}
		if n == "MANIFEST" {
			continue
		}
		t.Fatalf("orphan file %q survived recovery", n)
	live:
	}
}

func TestCrashAfterCommitKeepsNewState(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 10)})
	flushRecords(t, db, "from", 2, [][]byte{rec16(2, 20)})
	fs.Crash()
	db2 := openTestDB(t, fs, 1)
	if db2.CP() != 2 {
		t.Fatalf("CP after crash = %d, want 2", db2.CP())
	}
	if got := collect(t, db2.Table("from"), 2); len(got) != 1 {
		t.Fatalf("committed record lost by crash")
	}
}

func TestDeletionVector(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 10), rec16(1, 11), rec16(2, 20)})

	tbl := db.Table("from")
	tbl.DeleteRecord(rec16(1, 10))
	if got := collect(t, tbl, 1); len(got) != 1 || binary.BigEndian.Uint64(got[0][8:]) != 11 {
		t.Fatalf("DV filter failed: %v", got)
	}
	if !tbl.DVDirty() {
		t.Fatal("DV not marked dirty")
	}

	// Persist and reopen.
	if err := db.NewEdit().FlushDV("from").Commit(); err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, fs, 1)
	tbl2 := db2.Table("from")
	if tbl2.DVLen() != 1 {
		t.Fatalf("reopened DV has %d entries", tbl2.DVLen())
	}
	if got := collect(t, tbl2, 1); len(got) != 1 {
		t.Fatalf("DV filter lost on reopen: %v", got)
	}

	// MergedIter also respects the DV.
	it, err := tbl2.MergedIter(0)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("MergedIter saw %d records, want 2", n)
	}

	// Clearing and flushing drops the DV file.
	tbl2.ClearDV()
	if err := db2.NewEdit().FlushDV("from").Commit(); err != nil {
		t.Fatal(err)
	}
	db3 := openTestDB(t, fs, 1)
	if db3.Table("from").DVLen() != 0 {
		t.Fatal("cleared DV came back")
	}
	if got := collect(t, db3.Table("from"), 1); len(got) != 2 {
		t.Fatalf("records after DV clear: %d, want 2", len(got))
	}
}

func TestCompactionReplacesRuns(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	for cp := uint64(1); cp <= 5; cp++ {
		flushRecords(t, db, "from", cp, [][]byte{rec16(cp, cp*10)})
	}
	tbl := db.Table("from")
	if len(tbl.Runs(0)) != 5 {
		t.Fatalf("run count = %d, want 5", len(tbl.Runs(0)))
	}

	// Merge all runs into one Level-1 run.
	it, err := tbl.MergedIter(0)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := db.NewRunBuilder("from", 0, 1, db.CP(), storage.SrcCompaction)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if err := nb.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	ref, ok, err := nb.Finish()
	if err != nil || !ok {
		t.Fatalf("Finish: ok=%v err=%v", ok, err)
	}
	edit := db.NewEdit().AddRun(ref)
	for _, r := range tbl.Runs(0) {
		edit.DropRun("from", r.Name())
	}
	if err := edit.Commit(); err != nil {
		t.Fatal(err)
	}

	if len(tbl.Runs(0)) != 1 || tbl.Runs(0)[0].Level() != 1 {
		t.Fatalf("after compaction: %d runs, level %d", len(tbl.Runs(0)), tbl.Runs(0)[0].Level())
	}
	for blk := uint64(1); blk <= 5; blk++ {
		if got := collect(t, tbl, blk); len(got) != 1 {
			t.Fatalf("block %d lost by compaction", blk)
		}
	}
	// The old run files are gone from disk.
	names, _ := fs.List()
	runFiles := 0
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".run" {
			runFiles++
		}
	}
	if runFiles != 1 {
		t.Fatalf("%d run files on disk after compaction, want 1", runFiles)
	}
}

func TestPartitioning(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 4) // span 1000
	if p := db.PartitionOf(0); p != 0 {
		t.Fatalf("PartitionOf(0) = %d", p)
	}
	if p := db.PartitionOf(999); p != 0 {
		t.Fatalf("PartitionOf(999) = %d", p)
	}
	if p := db.PartitionOf(1000); p != 1 {
		t.Fatalf("PartitionOf(1000) = %d", p)
	}
	if p := db.PartitionOf(1 << 40); p != 3 {
		t.Fatalf("PartitionOf(huge) = %d, want last partition", p)
	}
	lo, hi := db.PartitionRange(1)
	if lo != 1000 || hi != 1999 {
		t.Fatalf("PartitionRange(1) = [%d, %d]", lo, hi)
	}
	lo, hi = db.PartitionRange(3)
	if lo != 3000 || hi != ^uint64(0) {
		t.Fatalf("PartitionRange(3) = [%d, %d]", lo, hi)
	}

	recs := [][]byte{rec16(5, 1), rec16(1500, 2), rec16(2500, 3), rec16(9999, 4)}
	flushRecords(t, db, "from", 1, recs)
	tbl := db.Table("from")
	for p := 0; p < 4; p++ {
		if len(tbl.Runs(p)) != 1 {
			t.Fatalf("partition %d has %d runs, want 1", p, len(tbl.Runs(p)))
		}
	}
	for _, r := range recs {
		blk := binary.BigEndian.Uint64(r[:8])
		if got := collect(t, tbl, blk); len(got) != 1 {
			t.Fatalf("block %d: %d records", blk, len(got))
		}
	}
}

func TestBloomPrunesRuns(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	// Two runs with disjoint but interleaved block sets.
	flushRecords(t, db, "from", 1, [][]byte{rec16(10, 1), rec16(30, 1)})
	flushRecords(t, db, "from", 2, [][]byte{rec16(20, 1), rec16(40, 1)})

	tbl := db.Table("from")
	runs := tbl.Runs(0)
	if len(runs) != 2 {
		t.Fatalf("%d runs", len(runs))
	}
	// Block 20 is inside run 0's [min,max] range but should be rejected by
	// its bloom filter with high probability.
	if runs[0].MayContainBlock(20) {
		t.Log("bloom false positive for block 20 (possible but unlikely)")
	}
	if !runs[0].MayContainBlock(10) || !runs[1].MayContainBlock(20) {
		t.Fatal("bloom false negative")
	}
	// Out-of-range blocks are always rejected.
	if runs[0].MayContainBlock(5) || runs[0].MayContainBlock(50) {
		t.Fatal("range check failed")
	}
}

func TestEmptyBuilderProducesNoRun(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	b, err := db.NewRunBuilder("from", 0, 0, 1, storage.SrcCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("empty builder produced a run")
	}
	names, _ := fs.List()
	if len(names) != 0 {
		t.Fatalf("empty builder left files: %v", names)
	}
}

func TestAbortRemovesFile(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	b, err := db.NewRunBuilder("from", 0, 0, 1, storage.SrcCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(rec16(1, 1)); err != nil {
		t.Fatal(err)
	}
	b.Abort()
	names, _ := fs.List()
	if len(names) != 0 {
		t.Fatalf("abort left files: %v", names)
	}
}

func TestOpenValidation(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := Open(fs, Options{}); err == nil {
		t.Fatal("Open with no tables succeeded")
	}
	if _, err := Open(fs, Options{
		Tables:     []TableSpec{{Name: "t", RecordSize: 16}},
		Partitions: 2,
	}); err == nil {
		t.Fatal("Open with partitions but no span succeeded")
	}
	if _, err := Open(fs, Options{
		Tables: []TableSpec{{Name: "t", RecordSize: 4}},
	}); err == nil {
		t.Fatal("Open with tiny record size succeeded")
	}
	if _, err := Open(fs, Options{
		Tables: []TableSpec{{Name: "t", RecordSize: 16}, {Name: "t", RecordSize: 16}},
	}); err == nil {
		t.Fatal("Open with duplicate tables succeeded")
	}
}

func TestReopenWithDifferentPartitionsFails(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 2)
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 1)})
	_, err := Open(fs, Options{
		Tables:        []TableSpec{{Name: "from", RecordSize: testRecSize}, {Name: "to", RecordSize: testRecSize}},
		Partitions:    3,
		PartitionSpan: 1000,
	})
	if err == nil {
		t.Fatal("partition count mismatch accepted")
	}
}

func TestMergeIterRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		// Build several sorted slices with overlaps and duplicates.
		all := map[string]bool{}
		var iters []RecIter
		for s := 0; s < 1+rng.Intn(5); s++ {
			var recs [][]byte
			for i := 0; i < rng.Intn(50); i++ {
				r := rec16(uint64(rng.Intn(20)), uint64(rng.Intn(10)))
				recs = append(recs, r)
			}
			sort.Slice(recs, func(i, j int) bool { return string(recs[i]) < string(recs[j]) })
			// Dedupe within a slice (sources are individually duplicate-free).
			var ded [][]byte
			for i, r := range recs {
				if i > 0 && string(r) == string(recs[i-1]) {
					continue
				}
				ded = append(ded, r)
				all[string(r)] = true
			}
			iters = append(iters, NewSliceIter(ded))
		}
		m, err := NewMergeIter(iters...)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for {
			rec, ok, err := m.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, string(rec))
		}
		want := make([]string, 0, len(all))
		for r := range all {
			want = append(want, r)
		}
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d records, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d mismatch", trial, i)
			}
		}
	}
}

func TestSizeBytesTracksRuns(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	if db.SizeBytes() != 0 {
		t.Fatalf("empty DB SizeBytes = %d", db.SizeBytes())
	}
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 1)})
	if db.SizeBytes() == 0 {
		t.Fatal("SizeBytes = 0 after flush")
	}
	if db.RunCount() != 1 {
		t.Fatalf("RunCount = %d", db.RunCount())
	}
	if db.Table("from").TotalRecords() != 1 {
		t.Fatalf("TotalRecords = %d", db.Table("from").TotalRecords())
	}
}

func TestManyCPsRunAccumulation(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	const cps = 50
	for cp := uint64(1); cp <= cps; cp++ {
		flushRecords(t, db, "from", cp, [][]byte{rec16(cp%7, cp)})
	}
	if got := len(db.Table("from").Runs(0)); got != cps {
		t.Fatalf("accumulated %d runs, want %d", got, cps)
	}
	// All records for block 3 are found across the runs.
	var want int
	for cp := uint64(1); cp <= cps; cp++ {
		if cp%7 == 3 {
			want++
		}
	}
	if got := collect(t, db.Table("from"), 3); len(got) != want {
		t.Fatalf("block 3: %d records, want %d", len(got), want)
	}
}

func BenchmarkFlush32kRecords(b *testing.B) {
	recs := make([][]byte, 32000)
	for i := range recs {
		recs[i] = rec16(uint64(i), uint64(i))
	}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		fs := storage.NewMemFS()
		db, err := Open(fs, Options{
			Tables: []TableSpec{{Name: "from", RecordSize: testRecSize}},
		})
		if err != nil {
			b.Fatal(err)
		}
		rb, err := db.NewRunBuilder("from", 0, 0, 1, storage.SrcCheckpoint)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := rb.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		ref, _, err := rb.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if err := db.NewEdit().SetCP(1).AddRun(ref).Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectBlockAcrossRuns(b *testing.B) {
	fs := storage.NewMemFS()
	db, err := Open(fs, Options{
		Tables: []TableSpec{{Name: "from", RecordSize: testRecSize}},
		Cache:  btree.NewCache(1 << 13),
	})
	if err != nil {
		b.Fatal(err)
	}
	// 20 runs of 1000 records each.
	for cp := uint64(1); cp <= 20; cp++ {
		rb, err := db.NewRunBuilder("from", 0, 0, cp, storage.SrcCheckpoint)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if err := rb.Add(rec16(uint64(i)*20+cp, cp)); err != nil {
				b.Fatal(err)
			}
		}
		ref, _, err := rb.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if err := db.NewEdit().SetCP(cp).AddRun(ref).Commit(); err != nil {
			b.Fatal(err)
		}
	}
	tbl := db.Table("from")
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := uint64(rng.Intn(20000))
		if err := tbl.CollectBlock(blk, func([]byte) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
