package lsm

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"testing"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/storage"
)

// spannedSpec is a test table whose records carry their CP in the payload
// field; payload 0 marks an override record.
func spannedSpec(name string) TableSpec {
	return TableSpec{
		Name:       name,
		RecordSize: testRecSize,
		Span: func(rec []byte) (uint64, uint64) {
			v := binary.BigEndian.Uint64(rec[8:])
			return v, v
		},
		IsOverride: func(rec []byte) bool {
			return binary.BigEndian.Uint64(rec[8:]) == 0
		},
	}
}

func openSpannedDB(t *testing.T, fs storage.VFS) *DB {
	t.Helper()
	db, err := Open(fs, Options{
		Tables:     []TableSpec{spannedSpec("combined")},
		Partitions: 1,
		Cache:      btree.NewCache(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func onlyRun(t *testing.T, db *DB, table string) *Run {
	t.Helper()
	runs := db.Table(table).runs[0]
	if len(runs) != 1 {
		t.Fatalf("%s: %d runs, want 1", table, len(runs))
	}
	return runs[0]
}

// TestRunCPWindowRoundTrip checks that the window metadata a builder folds
// from the Span callback survives the manifest and a reopen.
func TestRunCPWindowRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	db := openSpannedDB(t, fs)
	flushRecords(t, db, "combined", 9, [][]byte{rec16(1, 3), rec16(2, 7), rec16(3, 5)})

	check := func(db *DB, where string) {
		r := onlyRun(t, db, "combined")
		if !r.CPWindowKnown() {
			t.Fatalf("%s: window unknown", where)
		}
		if r.MinCP() != 3 || r.MaxCP() != 7 {
			t.Fatalf("%s: window [%d, %d], want [3, 7]", where, r.MinCP(), r.MaxCP())
		}
		if r.Overrides() != 0 {
			t.Fatalf("%s: overrides = %d, want 0", where, r.Overrides())
		}
		if !r.DroppableBelow(8) || r.DroppableBelow(7) {
			t.Fatalf("%s: DroppableBelow(8)=%v DroppableBelow(7)=%v, want true/false",
				where, r.DroppableBelow(8), r.DroppableBelow(7))
		}
	}
	check(db, "fresh")

	db2, err := Open(fs, Options{
		Tables:     []TableSpec{spannedSpec("combined")},
		Partitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	check(db2, "reopened")
}

// TestOverridesPoisonDroppability: a run containing even one override
// record must never report itself droppable — dropping it would resurrect
// inheritance the file system explicitly terminated.
func TestOverridesPoisonDroppability(t *testing.T) {
	fs := storage.NewMemFS()
	db := openSpannedDB(t, fs)
	flushRecords(t, db, "combined", 9, [][]byte{rec16(1, 0), rec16(2, 4)})
	r := onlyRun(t, db, "combined")
	if r.Overrides() != 1 {
		t.Fatalf("overrides = %d, want 1", r.Overrides())
	}
	if r.DroppableBelow(^uint64(0)) {
		t.Fatal("run with an override reports droppable")
	}
}

// TestManifestV1Compat rewrites the manifest to version 1 (stripping the
// window fields) and reopens: legacy runs must load with the safe [0, CP]
// bound, report their window unknown, and never be droppable — their
// override count is unknowable.
func TestManifestV1Compat(t *testing.T) {
	fs := storage.NewMemFS()
	db := openSpannedDB(t, fs)
	flushRecords(t, db, "combined", 5, [][]byte{rec16(1, 2), rec16(2, 3)})

	// Downgrade the manifest on disk to version 1.
	f, err := fs.Open(manifestName)
	if err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	f.Close()
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = 1
	for _, tv := range m["tables"].(map[string]any) {
		for _, part := range tv.(map[string]any)["partitions"].([]any) {
			for _, rv := range part.([]any) {
				rm := rv.(map[string]any)
				delete(rm, "min_cp")
				delete(rm, "max_cp")
				delete(rm, "overrides")
				delete(rm, "cp_unknown")
			}
		}
	}
	down, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := fs.Create(manifestName + ".down")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nf.WriteAt(down, 0); err != nil {
		t.Fatal(err)
	}
	if err := nf.Sync(); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	if err := fs.Rename(manifestName+".down", manifestName); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(fs, Options{
		Tables:     []TableSpec{spannedSpec("combined")},
		Partitions: 1,
	})
	if err != nil {
		t.Fatalf("reopening v1 manifest: %v", err)
	}
	r := onlyRun(t, db2, "combined")
	if r.CPWindowKnown() {
		t.Fatal("legacy run claims a known CP window")
	}
	if r.MinCP() != 0 || r.MaxCP() != 5 {
		t.Fatalf("legacy window [%d, %d], want safe bound [0, 5]", r.MinCP(), r.MaxCP())
	}
	if r.DroppableBelow(^uint64(0)) {
		t.Fatal("legacy run reports droppable; its override count is unknowable")
	}
	// Records are still readable.
	if got := collect(t, db2.Table("combined"), 1); len(got) != 1 {
		t.Fatalf("block 1: %d records after v1 reopen, want 1", len(got))
	}

	// A fresh commit rewrites the manifest at the current version, so the
	// upgrade is one-way and idempotent.
	flushRecords(t, db2, "combined", 6, [][]byte{rec16(3, 6)})
	db3, err := Open(fs, Options{
		Tables:     []TableSpec{spannedSpec("combined")},
		Partitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db3.Table("combined").runs[0]); got != 2 {
		t.Fatalf("%d runs after upgrade round trip, want 2", got)
	}
}

// TestManifestFutureVersionRejected: a manifest from a newer build must
// refuse to load rather than silently misinterpret it.
func TestManifestFutureVersionRejected(t *testing.T) {
	fs := storage.NewMemFS()
	db := openSpannedDB(t, fs)
	flushRecords(t, db, "combined", 5, [][]byte{rec16(1, 2)})
	f, err := fs.Open(manifestName)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	f.Close()
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = manifestVersion + 1
	up, _ := json.Marshal(m)
	nf, _ := fs.Create(manifestName + ".up")
	nf.WriteAt(up, 0)
	nf.Sync()
	nf.Close()
	if err := fs.Rename(manifestName+".up", manifestName); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, Options{
		Tables:     []TableSpec{spannedSpec("combined")},
		Partitions: 1,
	}); err == nil {
		t.Fatal("future-version manifest loaded without error")
	}
}

// TestDropRunsBelow covers the manifest-only drop path: only runs whose
// window clears the horizon go, no record is read, deletion-vector
// entries covered by no surviving run are collected in the same commit,
// and a pinned view defers the file deletion.
func TestDropRunsBelow(t *testing.T) {
	fs := storage.NewMemFS()
	db := openSpannedDB(t, fs)
	flushRecords(t, db, "combined", 3, [][]byte{rec16(1, 2), rec16(2, 3)})   // window [2, 3]
	flushRecords(t, db, "combined", 6, [][]byte{rec16(10, 5), rec16(11, 6)}) // window [5, 6]
	tbl := db.Table("combined")

	// DV entries: one whose block lives only in the droppable run, one in
	// the surviving run.
	tbl.DeleteRecord(rec16(1, 2))
	tbl.DeleteRecord(rec16(10, 5))
	edit := db.NewEdit()
	edit.FlushDV("combined")
	if err := edit.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pin a view across the drop: the dropped run's file must survive
	// until the view is released.
	v := db.AcquireView()
	doomedName := tbl.runs[0][0].Name()

	exists := func(name string) bool {
		names, err := fs.List()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}

	before := fs.Stats()
	edit = db.NewEdit()
	runs, recs := edit.DropRunsBelow("combined", 5)
	if runs != 1 || recs != 2 {
		t.Fatalf("DropRunsBelow(5) = (%d runs, %d records), want (1, 2)", runs, recs)
	}
	if err := edit.Commit(); err != nil {
		t.Fatal(err)
	}
	delta := fs.Stats().Sub(before)
	if delta.BytesRead != 0 {
		t.Fatalf("drop read %d bytes; expiry must not read run data", delta.BytesRead)
	}
	if edit.CollectedDVEntries() != 1 {
		t.Fatalf("CollectedDVEntries = %d, want 1 (the dropped run's entry)", edit.CollectedDVEntries())
	}
	if !exists(doomedName) {
		t.Fatal("run file removed while a view still pins it")
	}

	// The pinned view still reads the dropped run; fresh state does not.
	var pinned int
	if err := v.CollectBlock("combined", 2, func([]byte) bool { pinned++; return true }); err != nil {
		t.Fatal(err)
	}
	if pinned != 1 {
		t.Fatalf("pinned view sees %d records for block 2, want 1", pinned)
	}
	if got := collect(t, tbl, 2); len(got) != 0 {
		t.Fatalf("live table still returns %d records for dropped block 2", len(got))
	}
	// The kept DV entry still masks the surviving run's record.
	if got := collect(t, tbl, 10); len(got) != 0 {
		t.Fatalf("deletion-vector entry for surviving run lost: %d records", len(got))
	}
	if got := collect(t, tbl, 11); len(got) != 1 {
		t.Fatalf("surviving run unreadable: %d records for block 11", len(got))
	}

	v.Release()
	if exists(doomedName) {
		t.Fatal("dropped run file survived the last view release")
	}

	// Horizon below every window: nothing drops.
	edit = db.NewEdit()
	if runs, _ := edit.DropRunsBelow("combined", 2); runs != 0 {
		t.Fatalf("DropRunsBelow(2) dropped %d runs, want 0", runs)
	}
}
