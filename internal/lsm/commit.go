package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/backlogfs/backlog/internal/storage"
)

// Edit describes an atomic manifest transition: new runs to install, old
// runs to drop, the CP number to record, and deletion-vector changes. All
// of it commits in a single manifest replacement.
type Edit struct {
	db        *DB
	cp        uint64
	setCP     bool
	add       []RunRef
	drop      map[string][]string // table -> run names to drop
	replaceDV map[string]bool     // tables whose (possibly empty) DV should be persisted
	dvAsOf    map[string]dvSnap   // tables whose DV is persisted from a snapshot instead
	// gcDV marks tables whose deletion vector should be garbage-collected
	// at commit: entries whose block cannot belong to any surviving run
	// are removed and the pruned vector persisted in the same manifest
	// replacement (DropRunsBelow sets this). dvCollected counts entries
	// removed by the last Commit.
	gcDV        map[string]bool
	dvCollected int

	// src is the subsystem committing the edit (checkpoint, compaction,
	// expiry); it attributes the I/O of installing added runs and of
	// removing dropped ones. Manifest and deletion-vector persistence is
	// always attributed to the manifest source regardless of src.
	src storage.Source
}

// dvSnap is a deletion-vector snapshot captured before lock-free work
// whose result this edit commits: the map contents as of the capture and
// the generation counter that detects mutations since.
type dvSnap struct {
	dv  map[string]struct{}
	gen uint64
}

// NewEdit starts an empty edit.
func (db *DB) NewEdit() *Edit {
	return &Edit{db: db, drop: map[string][]string{}, replaceDV: map[string]bool{},
		dvAsOf: map[string]dvSnap{}, gcDV: map[string]bool{}}
}

// SetSource records the subsystem on whose behalf the edit commits; run
// installs and dropped-run removals are attributed to it.
func (e *Edit) SetSource(src storage.Source) *Edit {
	e.src = src
	return e
}

// SetCP records the consistency point number this edit commits.
func (e *Edit) SetCP(cp uint64) *Edit {
	e.cp, e.setCP = cp, true
	return e
}

// AddRun installs a finished run.
func (e *Edit) AddRun(ref RunRef) *Edit {
	e.add = append(e.add, ref)
	return e
}

// DropRun removes a run from a table (its file is deleted after commit).
func (e *Edit) DropRun(table, runName string) *Edit {
	e.drop[table] = append(e.drop[table], runName)
	return e
}

// DropRunsBelow marks for dropping every run of table whose CP window lies
// entirely below cp — the drop-based expiry path: no record is read or
// rewritten, the runs simply vanish from the manifest the Commit installs,
// and their files are reclaimed once the last pinning view releases them.
// Runs with unknown windows or override records are skipped. Deletion-
// vector entries that can only refer to dropped runs are garbage-collected
// in the same commit (see Commit). Returns the number of runs and records
// marked. The caller must hold the structural lock exclusively.
func (e *Edit) DropRunsBelow(table string, cp uint64) (runs int, records uint64) {
	t := e.db.tables[table]
	if t == nil {
		return 0, 0
	}
	for _, part := range t.runs {
		for _, r := range part {
			if r.DroppableBelow(cp) {
				e.DropRun(table, r.name)
				runs++
				records += r.records
			}
		}
	}
	if runs > 0 {
		e.gcDV[table] = true
	}
	return runs, records
}

// CollectedDVEntries returns the number of deletion-vector entries the
// last Commit garbage-collected on behalf of DropRunsBelow.
func (e *Edit) CollectedDVEntries() int { return e.dvCollected }

// FlushDV persists the current in-memory deletion vector of the table
// (which may be empty, dropping a previously persisted vector).
func (e *Edit) FlushDV(table string) *Edit {
	e.replaceDV[table] = true
	delete(e.dvAsOf, table)
	return e
}

// FlushDVAsOf persists dv — a snapshot of the table's deletion vector
// captured earlier (share the map via DVShare, record DVGen alongside) —
// instead of the live map. The engine's checkpoint uses this: the
// snapshot is taken when the write stores freeze, the flush then runs
// with no structural lock held, and mutations that land during the flush
// must not ride along — entries a relocation adds pair with write-store
// records outside the committing consistency point, and entries a
// concurrent compaction removes were durably superseded by its own
// commit. If the generation moved after the capture, Commit persists the
// snapshot intersected with the live map (captured entries still in
// force) and marks the table dirty, so the next checkpoint persists the
// newer state together with its records; with an unchanged generation it
// persists the snapshot as-is and clears the dirty flag.
func (e *Edit) FlushDVAsOf(table string, dv map[string]struct{}, gen uint64) *Edit {
	e.dvAsOf[table] = dvSnap{dv: dv, gen: gen}
	delete(e.replaceDV, table)
	return e
}

// Commit applies the edit: writes dirty deletion vectors, writes and syncs
// the new manifest, atomically renames it into place, updates in-memory
// state, and finally reclaims dropped runs. A non-nil error always means
// the edit did not commit: the on-disk state is unchanged and the files
// behind added runs have been removed (AddRun transfers ownership, so
// callers never clean up after a failed Commit).
//
// Reclamation of dropped runs is deferred: a dropped run stops appearing
// in the version the commit installs, and its file is deleted when the
// last version referencing it is destroyed — immediately, if no View pins
// the previous version, else when the last pinning view is released — so
// readers iterating a pinned view never lose the files under them. Either
// way deletion is best-effort and never reported — leftovers are orphans
// collected by the next Open.
func (e *Edit) Commit() error {
	db := e.db
	// fail cleans up after a pre-commit-point error.
	fail := func(err error) error {
		for _, ref := range e.add {
			_ = db.vfsFor(ref.src).Remove(ref.rm.Name)
		}
		return err
	}

	// Build the next manifest from in-memory state plus this edit.
	next := manifest{Version: manifestVersion, CP: db.m.CP, Tables: map[string]tableManifest{}}
	if e.setCP {
		if e.cp < db.m.CP {
			// Rolling the manifest CP backwards would un-skip already
			// durable write-ahead-log records in the replay filter,
			// double-applying them after a crash. The engine validates
			// against this too; refusing here keeps a buggy caller from
			// corrupting recovery.
			return fail(fmt.Errorf("lsm: edit rolls CP backwards (%d -> %d)", db.m.CP, e.cp))
		}
		next.CP = e.cp
	}

	dropSet := map[string]map[string]bool{}
	for table, names := range e.drop {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		dropSet[table] = m
	}

	// Start from current runs minus drops. Dropped runs need no explicit
	// bookkeeping: they simply stop appearing in the next version, and
	// version refcounting reclaims their files once the last version
	// referencing them is destroyed.
	newRuns := map[string][][]*Run{}
	var droppedRuns []*Run
	for name, t := range db.tables {
		parts := make([][]*Run, db.opts.Partitions)
		for p, runs := range t.runs {
			for _, r := range runs {
				if dropSet[name][r.name] {
					// Stamp the dropper before the version swap: the file
					// removal may happen much later (a view release), and
					// must be attributed to the operation that doomed it.
					r.doomedBy = e.src
					droppedRuns = append(droppedRuns, r)
					continue
				}
				parts[p] = append(parts[p], r)
			}
		}
		newRuns[name] = parts
	}

	// Install added runs (opening readers now; files are already synced).
	for _, ref := range e.add {
		t := db.tables[ref.table]
		if t == nil {
			return fail(fmt.Errorf("lsm: commit references unknown table %q", ref.table))
		}
		r, err := db.openRun(t, ref.rm, ref.src)
		if err != nil {
			return fail(err)
		}
		newRuns[ref.table][ref.partition] = append(newRuns[ref.table][ref.partition], r)
	}

	// Persist requested deletion vectors — the live map for FlushDV, the
	// captured snapshot for FlushDVAsOf.
	newDVFiles := map[string]string{}
	newDVCounts := map[string]int{}
	dvPruned := map[string]map[string]struct{}{}
	e.dvCollected = 0
	var dvToDelete []string
	for name, t := range db.tables {
		cur := db.m.Tables[name].DVFile
		dv := t.dv
		if e.gcDV[name] {
			// Runs were dropped below the reclaim horizon: deletion-vector
			// entries whose block no surviving run's range covers can only
			// have referred to dropped runs, so they are dead weight —
			// collect them in the same commit. Entries whose block a
			// surviving run may still hold are kept (conservative: the
			// block-range check never reads run data).
			pruned := make(map[string]struct{}, len(t.dv))
			for rec := range t.dv {
				blk := blockOf([]byte(rec))
				p := db.PartitionOf(blk)
				for _, r := range newRuns[name][p] {
					if blk >= r.minBlock && blk <= r.maxBlock {
						pruned[rec] = struct{}{}
						break
					}
				}
			}
			e.dvCollected += len(t.dv) - len(pruned)
			dvPruned[name] = pruned
			dv = pruned
		} else if snap, ok := e.dvAsOf[name]; ok {
			dv = snap.dv
			if t.dvGen != snap.gen {
				// The vector mutated after the capture. Entries removed
				// since (a compaction committed after physically purging
				// their records) must not be resurrected by the stale
				// snapshot; entries added since pair with write-store
				// records outside this consistency point and must wait
				// for the next one. Persist snapshot ∩ live: exactly the
				// captured entries that are still in force.
				inter := make(map[string]struct{}, len(snap.dv))
				for rec := range snap.dv {
					if _, live := t.dv[rec]; live {
						inter[rec] = struct{}{}
					}
				}
				dv = inter
			}
		} else if !e.replaceDV[name] {
			newDVFiles[name] = cur
			newDVCounts[name] = db.m.Tables[name].DVCount
			continue
		}
		if len(dv) == 0 {
			newDVFiles[name] = ""
		} else {
			fname := fmt.Sprintf("dv.%s.%010d", name, db.allocID())
			if err := t.writeDV(fname, dv); err != nil {
				return fail(err)
			}
			newDVFiles[name] = fname
		}
		newDVCounts[name] = len(dv)
		if cur != "" && cur != newDVFiles[name] {
			dvToDelete = append(dvToDelete, cur)
		}
	}

	// Serialize.
	for name := range db.tables {
		tm := tableManifest{
			Partitions: make([][]runManifest, db.opts.Partitions),
			DVFile:     newDVFiles[name],
			DVCount:    newDVCounts[name],
		}
		if tm.DVFile == "" {
			tm.DVCount = 0
		}
		for p, runs := range newRuns[name] {
			tm.Partitions[p] = make([]runManifest, 0, len(runs))
			for _, r := range runs {
				tm.Partitions[p] = append(tm.Partitions[p], runManifest{
					Name: r.name, Level: r.level, Records: r.records,
					MinBlock: r.minBlock, MaxBlock: r.maxBlock, CP: r.cp,
					MinCP: r.minCP, MaxCP: r.maxCP, Overrides: r.overrides,
					CPUnknown: r.cpUnknown,
				})
			}
		}
		next.Tables[name] = tm
	}

	// The persisted NextID is snapshotted after all of this commit's own
	// allocations, so it covers every ID handed out so far — including
	// concurrent builders whose edits may never commit (their files are
	// orphans for the next Open). The allocator itself never reads it
	// back, so a Commit can never roll IDs backwards under a concurrent
	// allocation.
	next.NextID = db.nextIDSnapshot()
	if err := writeManifest(db.vfsFor(storage.SrcManifest), next); err != nil {
		return fail(err)
	}

	// Point of no return: swap in-memory state and install the next
	// version. The version transition happens under viewMu so it is
	// atomic with respect to concurrent AcquireView/Release calls.
	db.m = next
	db.curCP.Store(next.CP)
	db.viewMu.Lock()
	for name, t := range db.tables {
		t.runs = newRuns[name]
		if pruned, ok := dvPruned[name]; ok {
			// The garbage-collected vector was persisted; install it as the
			// live map. Old versions keep the map they snapshotted. The
			// generation bump (content changed) makes in-flight optimistic
			// compactions fail validation and retry against current state.
			if len(pruned) != len(t.dv) {
				t.dvGen++
			}
			t.dv = pruned
			t.dvShared = false
			t.dvDirty = false
			continue
		}
		if snap, ok := e.dvAsOf[name]; ok {
			// The snapshot (intersected with the live map, see above),
			// not the live map itself, was persisted. If the vector
			// mutated after the capture the durable state may now lag
			// the live one — mark the table dirty so the next
			// checkpoint persists the newer state together with its
			// write-store records, even if an interleaved compaction's
			// own FlushDV had cleared the flag.
			t.dvDirty = t.dvGen != snap.gen
			continue
		}
		if !e.replaceDV[name] {
			// Not persisted by this edit: a dirty vector stays dirty (a
			// relocation may have mutated it while this edit's builders
			// ran lock-free) so the next checkpoint flushes it.
			continue
		}
		if newDVFiles[name] == "" {
			// The vector was empty (nothing was written); shed the map.
			// Content is unchanged, so versions sharing the old (empty)
			// map and the generation counter are unaffected.
			t.dv = make(map[string]struct{})
			t.dvShared = false
		}
		t.dvDirty = false
	}
	old := db.cur
	db.cur = db.newVersion()
	// The fresh version captured all live state, including any pending
	// deletion-vector mutations.
	db.verStale = false
	doomed := old.unref()
	db.undeferAll(doomed)
	// Dropped runs that still carry references are pinned by an older
	// version some view holds: their files outlive the manifest drop, so
	// track them as deferred until the last pin goes.
	for _, r := range droppedRuns {
		if r.refs > 0 {
			db.deferRun(r.name)
		}
	}
	db.viewMu.Unlock()
	// Reclaim outside viewMu: file removal must not stall concurrent view
	// pins. doomed holds runs no version references anymore (none, if a
	// view still pins the old version — the releasing view reclaims them
	// then). Failures are not reported: the commit already happened, and
	// a file that could not be removed is no longer referenced by the
	// manifest, so the next Open collects it as an orphan. Swallowing
	// these errors is what makes the invariant "Commit returned an error
	// ⟺ the edit did not commit" hold, which the engine's retry and
	// deletion-vector-restore paths rely on.
	for _, r := range doomed {
		_ = db.vfsFor(r.doomedBy).Remove(r.name)
	}
	// Replaced deletion-vector files are read only at Open (versions
	// snapshot the in-memory maps, not the files), so they are deleted
	// eagerly, attributed like the writes that superseded them.
	for _, n := range dvToDelete {
		_ = db.vfsFor(storage.SrcManifest).Remove(n)
	}
	return nil
}

func writeManifest(vfs storage.VFS, m manifest) error {
	data, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	// Remove a stale temp file from a previous failed commit, if any.
	if err := vfs.Remove(manifestTmpName); err != nil && !errors.Is(err, storage.ErrNotExist) {
		return err
	}
	f, err := vfs.Create(manifestTmpName)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return vfs.Rename(manifestTmpName, manifestName)
}

// --- Deletion vectors ---

// mutableDV returns the deletion-vector map a mutator may write to,
// copying it first if a View shares the current one. Callers hold the
// structural lock exclusively (serializing all mutators against
// AcquireView); the copy is what keeps a pinned view's reads stable.
func (t *Table) mutableDV() map[string]struct{} {
	if t.dvShared {
		cp := make(map[string]struct{}, len(t.dv))
		for rec := range t.dv {
			cp[rec] = struct{}{}
		}
		t.dv = cp
		t.dvShared = false
	}
	return t.dv
}

// DeleteRecord hides a record from all subsequent reads until the next
// compaction physically drops it. The change is durable after the next
// Commit with FlushDV.
func (t *Table) DeleteRecord(rec []byte) {
	if len(rec) != t.spec.RecordSize {
		return
	}
	t.mutableDV()[string(rec)] = struct{}{}
	t.dvGen++
	t.db.verStale = true
	t.dvDirty = true
}

// Deleted reports whether a record is hidden by the deletion vector.
func (t *Table) Deleted(rec []byte) bool {
	if len(t.dv) == 0 {
		return false
	}
	_, ok := t.dv[string(rec)]
	return ok
}

// DVLen returns the number of records in the deletion vector.
func (t *Table) DVLen() int { return len(t.dv) }

// DVDirty reports whether the vector has unpersisted changes.
func (t *Table) DVDirty() bool { return t.dvDirty }

// DVShare returns the current deletion-vector map for use as a
// FlushDVAsOf snapshot, marking it copy-on-write so the next mutation
// copies instead of updating in place (exactly how views pin it). Callers
// hold the structural lock exclusively.
func (t *Table) DVShare() map[string]struct{} {
	t.dvShared = true
	return t.dv
}

// DVGen returns the deletion vector's mutation-generation counter; pair it
// with DVShare to detect mutations after the capture.
func (t *Table) DVGen() uint64 { return t.dvGen }

// ClearDV empties the in-memory deletion vector; persist with FlushDV.
func (t *Table) ClearDV() {
	if len(t.dv) == 0 {
		return
	}
	t.dv = make(map[string]struct{})
	t.dvShared = false
	t.dvGen++
	t.db.verStale = true
	t.dvDirty = true
}

// ClearDVRange removes deletion-vector entries whose block number lies in
// [lo, hi].
func (t *Table) ClearDVRange(lo, hi uint64) {
	var doomed []string
	for rec := range t.dv {
		blk := blockOf([]byte(rec))
		if blk >= lo && blk <= hi {
			doomed = append(doomed, rec)
		}
	}
	if len(doomed) == 0 {
		return
	}
	dv := t.mutableDV()
	for _, rec := range doomed {
		delete(dv, rec)
	}
	t.dvGen++
	t.db.verStale = true
	t.dvDirty = true
}

// ClearDVPartition removes deletion-vector entries routed to partition p
// (under either range or hash partitioning) and returns the removed
// records. Compaction of one partition calls this after physically
// dropping the partition's deleted records, leaving other partitions'
// entries in place; if the commit then fails, the caller restores the
// returned records with RestoreDV so in-memory reads keep hiding them.
func (t *Table) ClearDVPartition(p int) []string {
	return t.ClearDVPartitionKeep(p, nil)
}

// ClearDVPartitionKeep is ClearDVPartition for compactions that merge only
// a subset of a partition's runs: entries whose block keep reports true
// are left in place because they may hide records in runs the compaction
// did not rewrite. A nil keep clears every entry of the partition.
func (t *Table) ClearDVPartitionKeep(p int, keep func(block uint64) bool) []string {
	var cleared []string
	for rec := range t.dv {
		blk := blockOf([]byte(rec))
		if t.db.PartitionOf(blk) != p {
			continue
		}
		if keep != nil && keep(blk) {
			continue
		}
		cleared = append(cleared, rec)
	}
	if len(cleared) == 0 {
		return nil
	}
	dv := t.mutableDV()
	for _, rec := range cleared {
		delete(dv, rec)
	}
	t.dvGen++
	t.db.verStale = true
	t.dvDirty = true
	return cleared
}

// RestoreDV re-inserts deletion-vector entries removed by a Clear that was
// part of a commit that subsequently failed.
func (t *Table) RestoreDV(recs []string) {
	if len(recs) == 0 {
		return
	}
	dv := t.mutableDV()
	for _, rec := range recs {
		dv[rec] = struct{}{}
	}
	t.dvGen++
	t.db.verStale = true
	t.dvDirty = true
}

func (t *Table) writeDV(name string, dv map[string]struct{}) error {
	recs := make([]string, 0, len(dv))
	for r := range dv {
		recs = append(recs, r)
	}
	sort.Strings(recs)
	f, err := t.db.vfsFor(storage.SrcManifest).Create(name)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(recs)*t.spec.RecordSize)
	for _, r := range recs {
		buf = append(buf, r...)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (t *Table) loadDV(name string) error {
	f, err := t.db.vfsFor(storage.SrcRecovery).Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return err
	}
	rs := t.spec.RecordSize
	if int(size)%rs != 0 {
		return fmt.Errorf("lsm: deletion vector %s has partial record", name)
	}
	for off := 0; off < int(size); off += rs {
		t.dv[string(buf[off:off+rs])] = struct{}{}
	}
	t.dvDirty = false
	return nil
}
