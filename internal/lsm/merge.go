package lsm

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"

	"github.com/backlogfs/backlog/internal/btree"
)

// RecIter is the record-stream abstraction shared by run iterators,
// in-memory slices, and merge iterators. Returned slices are valid only
// until the next call.
type RecIter interface {
	Next() (rec []byte, ok bool, err error)
}

// sliceIter iterates an in-memory sorted record list.
type sliceIter struct {
	recs [][]byte
	i    int
}

// NewSliceIter returns a RecIter over records (which must be sorted).
func NewSliceIter(recs [][]byte) RecIter { return &sliceIter{recs: recs} }

func (s *sliceIter) Next() ([]byte, bool, error) {
	if s.i >= len(s.recs) {
		return nil, false, nil
	}
	r := s.recs[s.i]
	s.i++
	return r, true, nil
}

type runIter struct {
	it *btree.Iterator
}

func (r *runIter) Next() ([]byte, bool, error) { return r.it.Next() }

// mergeIter is a k-way merge with duplicate suppression: identical records
// appearing in multiple inputs are emitted once.
type mergeIter struct {
	h    mergeHeap
	cur  []byte // scratch copy of the record being emitted
	last []byte
	any  bool
}

type mergeSrc struct {
	it  RecIter
	cur []byte
}

type mergeHeap []*mergeSrc

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return bytes.Compare(h[i].cur, h[j].cur) < 0 }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeSrc)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewMergeIter merges multiple sorted record streams into one sorted,
// duplicate-free stream.
func NewMergeIter(iters ...RecIter) (RecIter, error) {
	m := &mergeIter{}
	for _, it := range iters {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.h = append(m.h, &mergeSrc{it: it, cur: append([]byte(nil), rec...)})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeIter) Next() ([]byte, bool, error) {
	for len(m.h) > 0 {
		src := m.h[0]
		// Copy the record before advancing the source: advancing reuses
		// src.cur's backing array.
		m.cur = append(m.cur[:0], src.cur...)
		next, ok, err := src.it.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			src.cur = append(src.cur[:0], next...)
			heap.Fix(&m.h, 0)
		} else {
			heap.Pop(&m.h)
		}
		if m.any && bytes.Equal(m.cur, m.last) {
			continue // duplicate across runs
		}
		m.last = append(m.last[:0], m.cur...)
		m.any = true
		return m.last, true, nil
	}
	return nil, false, nil
}

// dvFilterIter hides records present in a deletion vector. The map is a
// snapshot (a table's live vector or a view's pinned copy); it is read
// only, so the iterator is safe without locks.
type dvFilterIter struct {
	dv map[string]struct{}
	in RecIter
}

func (f *dvFilterIter) Next() ([]byte, bool, error) {
	for {
		rec, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if _, dead := f.dv[string(rec)]; !dead {
			return rec, true, nil
		}
	}
}

// blockKey returns the smallest possible record for a block: the 8-byte
// big-endian block number followed by zeros.
func blockKey(block uint64, recSize int) []byte {
	k := make([]byte, recSize)
	binary.BigEndian.PutUint64(k, block)
	return k
}

// collectBlock merges the given runs around one block and invokes visit
// for every surviving record, in ascending order, with deletion-vector
// filtering applied. Bloom filters prune runs that cannot contain the
// block. It reads only the run list and dv snapshot it is handed, so both
// Table.CollectBlock (live state, caller holds the structural lock) and
// View.CollectBlock (pinned snapshot, no lock) are built on it.
func collectBlock(runs []*Run, recSize int, dv map[string]struct{}, block uint64, visit func(rec []byte) bool) error {
	var iters []RecIter
	key := blockKey(block, recSize)
	for _, r := range runs {
		if !r.MayContainBlock(block) {
			continue
		}
		it, err := r.SeekGE(key)
		if err != nil {
			return err
		}
		iters = append(iters, &runIter{it: it})
	}
	if len(iters) == 0 {
		return nil
	}
	merged, err := NewMergeIter(iters...)
	if err != nil {
		return err
	}
	for {
		rec, ok, err := merged.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if blockOf(rec) != block {
			return nil // past the block: done (records are block-ordered)
		}
		if _, dead := dv[string(rec)]; dead {
			continue
		}
		if !visit(rec) {
			return nil
		}
	}
}

// mergedIter builds the sorted, duplicate-free, deletion-vector-filtered
// stream over a run list.
func mergedIter(runs []*Run, dv map[string]struct{}) (RecIter, error) {
	var iters []RecIter
	for _, r := range runs {
		it, err := r.First()
		if err != nil {
			return nil, err
		}
		iters = append(iters, &runIter{it: it})
	}
	merged, err := NewMergeIter(iters...)
	if err != nil {
		return nil, err
	}
	return &dvFilterIter{dv: dv, in: merged}, nil
}

func errPartitionRange(p int) error { return fmt.Errorf("lsm: partition %d out of range", p) }

// CollectBlock invokes visit for every record of the given block across all
// live runs of the table. Callers hold the structural lock; lock-free
// readers use View.CollectBlock instead.
func (t *Table) CollectBlock(block uint64, visit func(rec []byte) bool) error {
	p := t.db.PartitionOf(block)
	return collectBlock(t.runs[p], t.spec.RecordSize, t.dv, block, visit)
}

// MergedIter returns a sorted, duplicate-free, deletion-vector-filtered
// stream over all live runs of one partition. Callers hold the structural
// lock for the lifetime of the iterator; compaction, which must not, uses
// View.MergedIter.
func (t *Table) MergedIter(partition int) (RecIter, error) {
	if partition < 0 || partition >= len(t.runs) {
		return nil, errPartitionRange(partition)
	}
	return mergedIter(t.runs[partition], t.dv)
}

// Runs returns the live runs of a partition, oldest first. The slice is
// owned by the table; do not modify.
func (t *Table) Runs(partition int) []*Run { return t.runs[partition] }

// RecordSize returns the table's fixed record size.
func (t *Table) RecordSize() int { return t.spec.RecordSize }

// Name returns the table name.
func (t *Table) Name() string { return t.spec.Name }

// TotalRecords returns the number of records across all live runs
// (counting duplicates across runs once per run, before DV filtering).
func (t *Table) TotalRecords() uint64 {
	var n uint64
	for _, part := range t.runs {
		for _, r := range part {
			n += r.records
		}
	}
	return n
}
