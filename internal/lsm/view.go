package lsm

// version is a refcounted snapshot of every table's run sets and deletion
// vectors — the LevelDB/RocksDB-style version set. The DB always holds
// one reference to the current version; every View holds one more.
// Refcounting is per version, so pinning and releasing a view is O(1)
// regardless of how many runs exist; the O(runs) reference accounting on
// the runs themselves happens once per Commit, when a version is
// installed or destroyed.
type version struct {
	cp     uint64
	tables map[string]*tableView
	// refs counts holders (the DB's current pointer plus views), guarded
	// by db.viewMu.
	refs int
}

// tableView is one table's snapshot: the run lists shared (not copied —
// Commit replaces them wholesale, never mutates in place) and the
// copy-on-write deletion vector as of the version's installation.
type tableView struct {
	t     *Table
	runs  [][]*Run
	dv    map[string]struct{}
	dvGen uint64
}

// newVersion snapshots the live state into a fresh version with one
// reference (the caller's), bumping every run's version refcount. The
// caller holds db.viewMu (or has exclusive access during Open) and must
// serialize against structural mutation.
func (db *DB) newVersion() *version {
	ver := &version{cp: db.m.CP, tables: make(map[string]*tableView, len(db.tables)), refs: 1}
	for name, t := range db.tables {
		for _, part := range t.runs {
			for _, r := range part {
				r.refs++
			}
		}
		// The version shares the map beyond this call: the next DV
		// mutation must copy instead of updating in place.
		t.dvShared = true
		ver.tables[name] = &tableView{t: t, runs: t.runs, dv: t.dv, dvGen: t.dvGen}
	}
	return ver
}

// unref drops one reference to the version; at zero the version is
// destroyed and every run only it referenced becomes reclaimable. The
// caller holds db.viewMu; the returned runs' files must be removed after
// the lock is dropped (file I/O stays out of the critical section) —
// returning runs rather than names lets the removal be attributed to the
// operation that doomed each run.
func (ver *version) unref() (doomed []*Run) {
	ver.refs--
	if ver.refs > 0 {
		return nil
	}
	for _, tv := range ver.tables {
		for _, part := range tv.runs {
			for _, r := range part {
				r.refs--
				if r.refs == 0 {
					doomed = append(doomed, r)
				}
			}
		}
	}
	return doomed
}

// View is a pinned version: an immutable snapshot of every table's run
// sets and deletion vectors that lets readers and compaction run against
// a consistent run list with no structural lock held. A Commit that
// supersedes a pinned run defers deleting the run file until the last
// view referencing it is released, so iterators stay valid across
// concurrent manifest transitions.
//
// Locking contract: AcquireView must be serialized against Commit and
// against deletion-vector mutations (the engine's structural lock, held
// shared, provides this); Release may be called from any goroutine at any
// time. A view's read methods are safe for concurrent use and touch no
// mutable DB state.
type View struct {
	db  *DB
	ver *version

	// released is guarded by db.viewMu; Release is idempotent.
	released bool
}

// AcquireView pins the current version in O(1). The caller must hold the
// structural lock (shared suffices) and must call Release exactly once
// when done; until then every run in the view stays readable even if a
// Commit supersedes it.
//
// A deletion-vector mutation outside a Commit (block relocation) marks
// the current version stale; the next acquire rebuilds it from live state
// first, so new pins always observe the mutation while already-pinned
// views keep their snapshot.
func (db *DB) AcquireView() *View {
	db.viewMu.Lock()
	var doomed []*Run
	if db.verStale {
		next := db.newVersion()
		doomed = db.cur.unref()
		db.undeferAll(doomed)
		db.cur = next
		db.verStale = false
	}
	db.cur.refs++
	db.views++
	v := &View{db: db, ver: db.cur}
	db.viewMu.Unlock()
	for _, r := range doomed {
		_ = db.vfsFor(r.doomedBy).Remove(r.name)
	}
	return v
}

// Release drops the view's reference. Run files superseded while the view
// was held are deleted when their last referencing version goes. Release
// is idempotent and nil-safe.
func (v *View) Release() {
	if v == nil {
		return
	}
	v.db.viewMu.Lock()
	var doomed []*Run
	if !v.released {
		v.released = true
		v.db.views--
		doomed = v.ver.unref()
		v.db.undeferAll(doomed)
	}
	v.db.viewMu.Unlock()
	for _, r := range doomed {
		_ = v.db.vfsFor(r.doomedBy).Remove(r.name)
	}
}

// CP returns the committed consistency point the view was acquired at.
func (v *View) CP() uint64 { return v.ver.cp }

// Runs returns the pinned runs of (table, partition), oldest first. The
// slice is owned by the view; do not modify.
func (v *View) Runs(table string, partition int) []*Run {
	return v.ver.tables[table].runs[partition]
}

// RunCount returns the total number of runs pinned by the view.
func (v *View) RunCount() int {
	var n int
	for _, tv := range v.ver.tables {
		for _, part := range tv.runs {
			n += len(part)
		}
	}
	return n
}

// CollectBlock is Table.CollectBlock against the view's pinned runs and
// deletion vector; it holds no lock and is safe concurrently with commits.
func (v *View) CollectBlock(table string, block uint64, visit func(rec []byte) bool) error {
	tv := v.ver.tables[table]
	p := v.db.PartitionOf(block)
	return collectBlock(tv.runs[p], tv.t.spec.RecordSize, tv.dv, block, visit)
}

// CollectBlockPruned is CollectBlock with CP-window pruning: runs whose
// window lies entirely below horizon (and which carry no override
// records) are skipped without being opened — their records cannot
// survive masking against a snapshot graph whose oldest reachable CP is
// horizon. A zero horizon disables pruning.
func (v *View) CollectBlockPruned(table string, block, horizon uint64, visit func(rec []byte) bool) error {
	tv := v.ver.tables[table]
	p := v.db.PartitionOf(block)
	runs := tv.runs[p]
	if horizon > 0 {
		kept := make([]*Run, 0, len(runs))
		for _, r := range runs {
			if !r.DroppableBelow(horizon) {
				kept = append(kept, r)
			}
		}
		runs = kept
	}
	return collectBlock(runs, tv.t.spec.RecordSize, tv.dv, block, visit)
}

// MergedIterOf is MergedIter restricted to an explicit subset of the
// view's pinned runs of one table — tiered compaction merges only the
// runs that are not sealed below the reclaim horizon, leaving sealed
// runs eligible for drop-based expiry.
func (v *View) MergedIterOf(table string, runs []*Run) (RecIter, error) {
	tv := v.ver.tables[table]
	return mergedIter(runs, tv.dv)
}

// MergedIter returns a sorted, duplicate-free, deletion-vector-filtered
// stream over the view's pinned runs of one partition — the input to
// incremental compaction, which merges against a pinned view with no
// structural lock held.
func (v *View) MergedIter(table string, partition int) (RecIter, error) {
	tv := v.ver.tables[table]
	if partition < 0 || partition >= len(tv.runs) {
		return nil, errPartitionRange(partition)
	}
	return mergedIter(tv.runs[partition], tv.dv)
}

// Unchanged reports whether the live run set of (table, partition) and the
// table's deletion vector are still identical to this view's snapshot —
// the validation an optimistic compaction performs before installing its
// result. The caller must hold the structural lock exclusively, so the
// comparison cannot race with a concurrent Commit.
func (v *View) Unchanged(table string, partition int) bool {
	tv := v.ver.tables[table]
	live := tv.t.runs[partition]
	snap := tv.runs[partition]
	if len(live) != len(snap) {
		return false
	}
	for i := range live {
		if live[i] != snap[i] {
			return false
		}
	}
	// Deletion vectors are copy-on-write with a generation counter: equal
	// generations mean no mutation since the snapshot.
	return tv.dvGen == tv.t.dvGen
}

// UnchangedRuns reports whether every run in inputs is still live in
// (table, partition) and the table's deletion vector is unmodified since
// the snapshot — the validation a job-scoped compaction performs before
// installing its result. Unlike Unchanged it tolerates runs added or
// dropped outside the input set: a checkpoint flush appending a level-0
// run does not invalidate a leveled merge of older runs. The caller must
// hold the structural lock exclusively.
func (v *View) UnchangedRuns(table string, partition int, inputs []*Run) bool {
	tv := v.ver.tables[table]
	if tv.dvGen != tv.t.dvGen {
		return false
	}
	live := tv.t.runs[partition]
	for _, in := range inputs {
		found := false
		for _, r := range live {
			if r == in {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
