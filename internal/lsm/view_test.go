package lsm

import (
	"encoding/binary"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// viewCollect reads one block through a view.
func viewCollect(t *testing.T, v *View, table string, block uint64) [][]byte {
	t.Helper()
	var out [][]byte
	if err := v.CollectBlock(table, block, func(rec []byte) bool {
		out = append(out, append([]byte(nil), rec...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func listFiles(t *testing.T, fs storage.VFS) map[string]bool {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

// compactInto merges all "from" runs of partition 0 into one level-1 run
// and commits an edit that drops the old runs — the lsm-level skeleton of
// what core compaction does.
func compactInto(t *testing.T, db *DB) {
	t.Helper()
	tbl := db.Table("from")
	it, err := tbl.MergedIter(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.NewRunBuilder("from", 0, 1, db.CP(), storage.SrcCompaction)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if err := b.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	edit := db.NewEdit()
	if ref, ok, err := b.Finish(); err != nil {
		t.Fatal(err)
	} else if ok {
		edit.AddRun(ref)
	}
	for _, r := range tbl.Runs(0) {
		edit.DropRun("from", r.Name())
	}
	if err := edit.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestViewKeepsSupersededRunsReadable is the deferred-reclamation
// contract: a run file superseded by a commit stays on disk, and the
// pinned view keeps reading the pre-commit state, until the last view
// referencing the run is released.
func TestViewKeepsSupersededRunsReadable(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(5, 100), rec16(9, 1)})
	flushRecords(t, db, "from", 2, [][]byte{rec16(5, 101)})

	v := db.AcquireView()
	oldRuns := v.Runs("from", 0)
	if len(oldRuns) != 2 {
		t.Fatalf("view pinned %d runs, want 2", len(oldRuns))
	}
	v2 := db.AcquireView() // second holder of the same runs

	compactInto(t, db)

	// Live state: one compacted run.
	if got := db.Table("from").Runs(0); len(got) != 1 {
		t.Fatalf("live runs after compaction = %d, want 1", len(got))
	}
	// Superseded files are still present: the views pin them.
	files := listFiles(t, fs)
	for _, r := range oldRuns {
		if !files[r.Name()] {
			t.Fatalf("superseded run %s deleted while views hold it", r.Name())
		}
	}
	// The view still reads the old state, records intact.
	got := viewCollect(t, v, "from", 5)
	if len(got) != 2 {
		t.Fatalf("view block 5: %d records, want 2", len(got))
	}
	for i, want := range []uint64{100, 101} {
		if binary.BigEndian.Uint64(got[i][8:]) != want {
			t.Fatalf("view record %d payload = %d, want %d", i, binary.BigEndian.Uint64(got[i][8:]), want)
		}
	}
	// A fresh view sees the compacted state.
	v3 := db.AcquireView()
	if got := v3.Runs("from", 0); len(got) != 1 {
		t.Fatalf("fresh view runs = %d, want 1", len(got))
	}
	v3.Release()

	// First release: files must survive, v2 still pins them.
	v.Release()
	files = listFiles(t, fs)
	for _, r := range oldRuns {
		if !files[r.Name()] {
			t.Fatalf("run %s deleted while second view still holds it", r.Name())
		}
	}
	// Last release reclaims the superseded files.
	v2.Release()
	files = listFiles(t, fs)
	for _, r := range oldRuns {
		if files[r.Name()] {
			t.Fatalf("run %s not reclaimed after last release", r.Name())
		}
	}
	// Release is idempotent.
	v2.Release()
}

// TestViewSnapshotsDeletionVector: DV mutations after the pin must not
// leak into the view (copy-on-write), and the view reports the change via
// Unchanged.
func TestViewSnapshotsDeletionVector(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(5, 100), rec16(5, 101)})

	v := db.AcquireView()
	if !v.Unchanged("from", 0) {
		t.Fatal("fresh view reports change")
	}

	tbl := db.Table("from")
	tbl.DeleteRecord(rec16(5, 100))

	// Live reads hide the record; the pinned view still sees it.
	if got := collect(t, tbl, 5); len(got) != 1 {
		t.Fatalf("live block 5: %d records, want 1", len(got))
	}
	if got := viewCollect(t, v, "from", 5); len(got) != 2 {
		t.Fatalf("view block 5: %d records, want 2", len(got))
	}
	if v.Unchanged("from", 0) {
		t.Fatal("view does not report the DV mutation")
	}
	// A view acquired after the mutation must observe it, even though no
	// Commit installed a new version (the stale current version is
	// rebuilt on acquire).
	v2 := db.AcquireView()
	if got := viewCollect(t, v2, "from", 5); len(got) != 1 {
		t.Fatalf("fresh view block 5: %d records, want 1", len(got))
	}
	if !v2.Unchanged("from", 0) {
		t.Fatal("fresh view reports change")
	}
	v2.Release()
	v.Release()
}

// TestViewUnchangedDetectsRunChanges: installing a new run in the
// partition invalidates the view's snapshot of it, but not of other
// partitions.
func TestViewUnchangedDetectsRunChanges(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 4)
	flushRecords(t, db, "from", 1, [][]byte{rec16(5, 100), rec16(2500, 7)})

	v := db.AcquireView()
	defer v.Release()
	for p := 0; p < 4; p++ {
		if !v.Unchanged("from", p) {
			t.Fatalf("fresh view reports change in partition %d", p)
		}
	}
	// Partition 0 covers blocks [0, 1000); 2500 lands in partition 2.
	flushRecords(t, db, "from", 2, [][]byte{rec16(10, 1)})
	if v.Unchanged("from", 0) {
		t.Fatal("new run in partition 0 not detected")
	}
	if !v.Unchanged("from", 2) || !v.Unchanged("from", 3) {
		t.Fatal("untouched partitions report change")
	}
}

// TestViewRefcountsAcrossPartialDrop: a commit that drops only some runs
// reclaims exactly those when the view goes, and RunCount/CP behave.
func TestViewRefcountsAcrossPartialDrop(t *testing.T) {
	fs := storage.NewMemFS()
	db := openTestDB(t, fs, 1)
	flushRecords(t, db, "from", 1, [][]byte{rec16(1, 10)})
	flushRecords(t, db, "from", 2, [][]byte{rec16(2, 20)})

	v := db.AcquireView()
	if v.CP() != 2 {
		t.Fatalf("view CP = %d, want 2", v.CP())
	}
	if v.RunCount() != 2 {
		t.Fatalf("view RunCount = %d, want 2", v.RunCount())
	}
	keep := db.Table("from").Runs(0)[0]
	drop := db.Table("from").Runs(0)[1]
	if err := db.NewEdit().DropRun("from", drop.Name()).Commit(); err != nil {
		t.Fatal(err)
	}
	if !listFiles(t, fs)[drop.Name()] {
		t.Fatal("dropped run reclaimed under a live view")
	}
	v.Release()
	files := listFiles(t, fs)
	if files[drop.Name()] {
		t.Fatal("dropped run not reclaimed after release")
	}
	if !files[keep.Name()] {
		t.Fatal("live run reclaimed")
	}
}
