package storage

import (
	"io"
	"testing"
)

func TestSinkMetersWithoutRetaining(t *testing.T) {
	fs := NewMemFS()
	s := fs.CreateSink("data")
	payload := make([]byte, 3*PageSize)
	for i := range payload {
		payload[i] = 0xEE
	}
	before := fs.Stats()
	if _, err := s.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	d := fs.Stats().Sub(before)
	if d.PageWrites != 3 || d.BytesWritten != int64(len(payload)) {
		t.Fatalf("sink write metered %+v", d)
	}
	size, err := s.Size()
	if err != nil || size != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	// Reads return zeros (nothing retained) but are metered.
	buf := make([]byte, 8)
	if _, err := s.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("sink retained data")
		}
	}
	if _, err := s.ReadAt(buf, size+100); err != io.EOF {
		t.Fatalf("read past EOF: %v", err)
	}
	// Short read at the tail.
	n, err := s.ReadAt(buf, size-3)
	if n != 3 || err != io.EOF {
		t.Fatalf("tail read n=%d err=%v", n, err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Sinks don't appear in List and don't interact with Crash.
	names, _ := fs.List()
	if len(names) != 0 {
		t.Fatalf("sink listed: %v", names)
	}
	fs.Crash()
	if sz, _ := s.Size(); sz != size {
		t.Fatal("crash affected sink size")
	}
}

func TestSinkDiskTimeCharged(t *testing.T) {
	fs := NewMemFS()
	fs.SetDiskModel(DiskModel{SeekNanos: 0, WriteSeekNanos: 0, BytesPerSecond: 1 << 20})
	s := fs.CreateSink("data")
	before := fs.Stats().DiskNanos
	if _, err := s.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	elapsed := fs.Stats().DiskNanos - before
	if elapsed < 900_000_000 || elapsed > 1_100_000_000 {
		t.Fatalf("1 MB at 1 MB/s took %d ns, want ≈1s", elapsed)
	}
}

func TestSinkNegativeOffset(t *testing.T) {
	fs := NewMemFS()
	s := fs.CreateSink("data")
	if _, err := s.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}
