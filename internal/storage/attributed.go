package storage

import "time"

// Source identifies the subsystem on whose behalf an I/O was issued. The
// attribution wrapper (Attributed) stamps every VFS and File operation
// with one, so byte-level accounting can answer "which subsystem wrote
// those bytes?" — the per-update I/O economics the paper's evaluation is
// built around, broken out by purpose.
type Source uint8

const (
	// SrcUnknown tags I/O issued through an attributed VFS that was never
	// re-tagged. Hot paths must never leave I/O here; the attribution race
	// test asserts zero unknown bytes.
	SrcUnknown Source = iota
	// SrcWAL is write-ahead-log appends, group-commit flushes, segment
	// rotation, and retirement.
	SrcWAL
	// SrcCheckpoint is checkpoint flush I/O: Level-0 run builds and stale
	// WAL retirement.
	SrcCheckpoint
	// SrcCompaction is merge I/O: reading input runs and writing merged
	// output runs.
	SrcCompaction
	// SrcQuery is read I/O serving queries: run page reads, Bloom filter
	// loads, and relocation's record collection.
	SrcQuery
	// SrcExpiry is drop-based expiry. Expiry reads and rewrites no data —
	// it only drops whole runs — so this source carries file removals and
	// (ideally) zero bytes.
	SrcExpiry
	// SrcRecovery is startup I/O: manifest and deletion-vector loads, run
	// header opens, WAL segment scans, and orphan collection.
	SrcRecovery
	// SrcManifest is commit-point I/O: manifest temp writes, renames, and
	// deletion-vector persistence, regardless of which operation triggered
	// the commit.
	SrcManifest

	// NumSources is the number of defined sources, for sizing per-source
	// counter arrays.
	NumSources = int(SrcManifest) + 1
)

var sourceNames = [NumSources]string{
	"unknown", "wal", "checkpoint", "compaction", "query", "expiry",
	"recovery", "manifest",
}

func (s Source) String() string {
	if int(s) < NumSources {
		return sourceNames[s]
	}
	return "invalid"
}

// IORecorder receives one callback per attributed I/O. Implementations
// must be safe for concurrent use (internal/obs.IOStats is the production
// one). The dur arguments are zero unless WantsLatency reports true —
// skipping the two clock reads per I/O is what keeps attribution within
// its overhead budget when no latency sink is attached.
type IORecorder interface {
	RecordRead(src Source, bytes int, dur time.Duration)
	RecordWrite(src Source, bytes int, dur time.Duration)
	RecordSync(src Source, dur time.Duration)
	RecordCreate(src Source)
	RecordRemove(src Source)
	// WantsLatency reports whether the recorder consumes I/O durations.
	// Consulted once at wrap time, not per I/O.
	WantsLatency() bool
}

// AttributedFS owns the attribution state for one wrapped VFS: the
// recorder and the latency gate. It is not itself a VFS; Tagged derives
// source-stamped VFS handles from it.
type AttributedFS struct {
	inner VFS
	rec   IORecorder
	lat   bool
}

// Attributed wraps a VFS for purpose-tagged I/O accounting. Every
// operation on a VFS derived via Tagged (and on files it opens) is
// reported to rec under that handle's Source. The wrapper changes no
// bytes, names, or error behavior — byte-identical output is part of its
// contract — and forwards the metering Stats of the underlying VFS
// untouched, so attributed per-source byte sums can be checked against
// the device totals.
func Attributed(inner VFS, rec IORecorder) *AttributedFS {
	return &AttributedFS{inner: inner, rec: rec, lat: rec.WantsLatency()}
}

// Base returns the wrapped VFS.
func (a *AttributedFS) Base() VFS { return a.inner }

// Tagged returns a VFS handle whose every operation is attributed to src.
// Handles are cheap; derive one per call site.
func (a *AttributedFS) Tagged(src Source) VFS {
	return &taggedVFS{a: a, src: src}
}

// TagVFS re-tags an attributed VFS handle to a new source. A VFS that did
// not come from Attributed is returned unchanged, so call sites can tag
// unconditionally whether or not attribution is enabled.
func TagVFS(vfs VFS, src Source) VFS {
	if t, ok := vfs.(*taggedVFS); ok {
		return t.a.Tagged(src)
	}
	return vfs
}

// TagFile re-tags a file obtained from an attributed VFS to a new source
// (the per-purpose run readers use this: one file handle per source over
// the same underlying file). Files from unattributed VFSs pass through
// unchanged.
func TagFile(f File, src Source) File {
	if t, ok := f.(*taggedFile); ok {
		return &taggedFile{f: t.f, a: t.a, src: src, onRead: t.onRead}
	}
	return f
}

// WithReadHook returns a file that additionally invokes fn(n) after every
// ReadAt of n bytes — the per-run heat accounting hook. Files from
// unattributed VFSs pass through unchanged (no attribution, no heat).
func WithReadHook(f File, fn func(n int)) File {
	if t, ok := f.(*taggedFile); ok {
		return &taggedFile{f: t.f, a: t.a, src: t.src, onRead: fn}
	}
	return f
}

// taggedVFS is a source-stamped handle over an AttributedFS.
type taggedVFS struct {
	a   *AttributedFS
	src Source
}

func (t *taggedVFS) Create(name string) (File, error) {
	f, err := t.a.inner.Create(name)
	if err != nil {
		return nil, err
	}
	t.a.rec.RecordCreate(t.src)
	return &taggedFile{f: f, a: t.a, src: t.src}, nil
}

func (t *taggedVFS) Open(name string) (File, error) {
	f, err := t.a.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &taggedFile{f: f, a: t.a, src: t.src}, nil
}

func (t *taggedVFS) Remove(name string) error {
	if err := t.a.inner.Remove(name); err != nil {
		return err
	}
	t.a.rec.RecordRemove(t.src)
	return nil
}

func (t *taggedVFS) Rename(oldName, newName string) error {
	return t.a.inner.Rename(oldName, newName)
}

func (t *taggedVFS) List() ([]string, error) { return t.a.inner.List() }

func (t *taggedVFS) Stats() Stats { return t.a.inner.Stats() }

// SyncDir forwards to the underlying VFS when it needs directory syncs
// (DirFS) and is a no-op otherwise. Directory syncs are not recorded:
// the metered MemFS does not count them either, and attribution sums are
// checked against its totals.
func (t *taggedVFS) SyncDir() error {
	if ds, ok := t.a.inner.(DirSyncer); ok {
		return ds.SyncDir()
	}
	return nil
}

// taggedFile attributes every file operation to its source.
type taggedFile struct {
	f      File
	a      *AttributedFS
	src    Source
	onRead func(n int)
}

func (t *taggedFile) ReadAt(p []byte, off int64) (int, error) {
	var start time.Time
	if t.a.lat {
		start = time.Now()
	}
	n, err := t.f.ReadAt(p, off)
	var d time.Duration
	if t.a.lat {
		d = time.Since(start)
	}
	t.a.rec.RecordRead(t.src, n, d)
	if t.onRead != nil && n > 0 {
		t.onRead(n)
	}
	return n, err
}

func (t *taggedFile) WriteAt(p []byte, off int64) (int, error) {
	var start time.Time
	if t.a.lat {
		start = time.Now()
	}
	n, err := t.f.WriteAt(p, off)
	var d time.Duration
	if t.a.lat {
		d = time.Since(start)
	}
	// Bytes are recorded even on error: a torn write that applied a prefix
	// moved n bytes to the device, and the metered MemFS counts them too.
	t.a.rec.RecordWrite(t.src, n, d)
	return n, err
}

func (t *taggedFile) Size() (int64, error) { return t.f.Size() }

func (t *taggedFile) Sync() error {
	var start time.Time
	if t.a.lat {
		start = time.Now()
	}
	if err := t.f.Sync(); err != nil {
		return err
	}
	var d time.Duration
	if t.a.lat {
		d = time.Since(start)
	}
	t.a.rec.RecordSync(t.src, d)
	return nil
}

func (t *taggedFile) Close() error { return t.f.Close() }
