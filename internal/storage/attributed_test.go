package storage

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// testRecorder counts attributed I/O per source, mirroring the shape of
// the production recorder (obs.IOStats) without the obs dependency.
type testRecorder struct {
	wantLat    bool
	sawLatency bool

	readBytes  [NumSources]uint64
	readOps    [NumSources]uint64
	writeBytes [NumSources]uint64
	writeOps   [NumSources]uint64
	syncs      [NumSources]uint64
	creates    [NumSources]uint64
	removes    [NumSources]uint64
}

func (r *testRecorder) RecordRead(src Source, n int, d time.Duration) {
	r.readOps[src]++
	r.readBytes[src] += uint64(n)
	if d > 0 {
		r.sawLatency = true
	}
}

func (r *testRecorder) RecordWrite(src Source, n int, d time.Duration) {
	r.writeOps[src]++
	r.writeBytes[src] += uint64(n)
	if d > 0 {
		r.sawLatency = true
	}
}

func (r *testRecorder) RecordSync(src Source, d time.Duration) {
	r.syncs[src]++
	if d > 0 {
		r.sawLatency = true
	}
}

func (r *testRecorder) RecordCreate(src Source) { r.creates[src]++ }
func (r *testRecorder) RecordRemove(src Source) { r.removes[src]++ }
func (r *testRecorder) WantsLatency() bool      { return r.wantLat }

func sum(a [NumSources]uint64) (t uint64) {
	for _, v := range a {
		t += v
	}
	return
}

// TestAttributedRecordingMatchesMetering drives mixed I/O under several
// sources and checks both sides of the accounting contract: per-source
// counters land under the issuing source, and their sums equal the
// underlying MemFS metering exactly (same n recorded, no double counting).
func TestAttributedRecordingMatchesMetering(t *testing.T) {
	mem := NewMemFS()
	rec := &testRecorder{}
	afs := Attributed(mem, rec)

	wal := afs.Tagged(SrcWAL)
	cp := afs.Tagged(SrcCheckpoint)
	q := afs.Tagged(SrcQuery)

	wf, err := wal.Create("wal-000001")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	if _, err := wf.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.WriteAt(payload, 1000); err != nil {
		t.Fatal(err)
	}
	if err := wf.Sync(); err != nil {
		t.Fatal(err)
	}

	cf, err := cp.Create("run-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.WriteAt(payload[:512], 0); err != nil {
		t.Fatal(err)
	}
	if err := cf.Sync(); err != nil {
		t.Fatal(err)
	}

	qf, err := q.Open("run-000001")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := qf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[:512]) {
		t.Fatal("attributed read returned different bytes")
	}
	if err := cp.Remove("wal-000001"); err != nil {
		t.Fatal(err)
	}

	if got := rec.writeBytes[SrcWAL]; got != 2000 {
		t.Errorf("wal write bytes = %d, want 2000", got)
	}
	if got := rec.writeBytes[SrcCheckpoint]; got != 512 {
		t.Errorf("checkpoint write bytes = %d, want 512", got)
	}
	if got := rec.readBytes[SrcQuery]; got != 512 {
		t.Errorf("query read bytes = %d, want 512", got)
	}
	if got := rec.removes[SrcCheckpoint]; got != 1 {
		t.Errorf("checkpoint removes = %d, want 1", got)
	}

	st := mem.Stats()
	if got, want := sum(rec.readBytes), uint64(st.BytesRead); got != want {
		t.Errorf("attributed read bytes = %d, metered = %d", got, want)
	}
	if got, want := sum(rec.writeBytes), uint64(st.BytesWritten); got != want {
		t.Errorf("attributed write bytes = %d, metered = %d", got, want)
	}
	if got, want := sum(rec.syncs), uint64(st.Syncs); got != want {
		t.Errorf("attributed syncs = %d, metered = %d", got, want)
	}
	if got, want := sum(rec.creates), uint64(st.FilesCreated); got != want {
		t.Errorf("attributed creates = %d, metered = %d", got, want)
	}
	if got, want := sum(rec.removes), uint64(st.FilesRemoved); got != want {
		t.Errorf("attributed removes = %d, metered = %d", got, want)
	}
	if rec.sawLatency {
		t.Error("recorder without WantsLatency saw a nonzero duration")
	}
}

// TestAttributedTornWriteRecordsPrefix injects a torn write and checks the
// recorder counts the applied prefix — the same bytes the metered MemFS
// counts — so attribution sums stay exact across failures.
func TestAttributedTornWriteRecordsPrefix(t *testing.T) {
	mem := NewMemFS()
	rec := &testRecorder{}
	wal := Attributed(mem, rec).Tagged(SrcWAL)

	f, err := wal.Create("wal-000001")
	if err != nil {
		t.Fatal(err)
	}
	mem.SetFailurePlan(FailurePlan{FailAfterPageWrites: 1, TornWrite: true})
	n, err := f.WriteAt(make([]byte, 3*PageSize), 0)
	if err == nil {
		t.Fatal("expected injected write error")
	}
	if n <= 0 || n >= 3*PageSize {
		t.Fatalf("torn write applied %d bytes, expected a strict prefix", n)
	}
	if got := rec.writeBytes[SrcWAL]; got != uint64(n) {
		t.Errorf("recorded %d write bytes, torn write applied %d", got, n)
	}
	if got, want := sum(rec.writeBytes), uint64(mem.Stats().BytesWritten); got != want {
		t.Errorf("attributed write bytes = %d, metered = %d", got, want)
	}
}

// TestTagPassThrough checks the unconditional-tagging contract: on inputs
// that did not come from Attributed, TagVFS/TagFile/WithReadHook return
// their argument unchanged, so call sites never branch on whether
// attribution is enabled.
func TestTagPassThrough(t *testing.T) {
	mem := NewMemFS()
	if got := TagVFS(mem, SrcWAL); got != VFS(mem) {
		t.Error("TagVFS changed an unattributed VFS")
	}
	f, err := mem.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := TagFile(f, SrcQuery); got != f {
		t.Error("TagFile changed an unattributed file")
	}
	if got := WithReadHook(f, func(int) {}); got != f {
		t.Error("WithReadHook changed an unattributed file")
	}
}

// TestTagRetagging checks re-tagging on attributed handles: TagVFS derives
// a handle under the new source, TagFile re-tags an open file, and
// WithReadHook preserves the file's source while adding the hook.
func TestTagRetagging(t *testing.T) {
	mem := NewMemFS()
	rec := &testRecorder{}
	afs := Attributed(mem, rec)

	unk := afs.Tagged(SrcUnknown)
	wal := TagVFS(unk, SrcWAL)
	f, err := wal.Create("wal-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abcd"), 0); err != nil {
		t.Fatal(err)
	}

	var hooked int
	qf := WithReadHook(TagFile(f, SrcQuery), func(n int) { hooked += n })
	buf := make([]byte, 4)
	if _, err := qf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// The original handle must keep its source: re-tagging derives, it
	// does not mutate.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	if rec.creates[SrcWAL] != 1 || rec.writeBytes[SrcWAL] != 4 {
		t.Errorf("wal: creates=%d writeBytes=%d, want 1/4", rec.creates[SrcWAL], rec.writeBytes[SrcWAL])
	}
	if rec.readBytes[SrcQuery] != 4 {
		t.Errorf("query read bytes = %d, want 4", rec.readBytes[SrcQuery])
	}
	if rec.readBytes[SrcWAL] != 4 {
		t.Errorf("wal read bytes = %d, want 4 (original handle re-tagged?)", rec.readBytes[SrcWAL])
	}
	if hooked != 4 {
		t.Errorf("read hook saw %d bytes, want 4", hooked)
	}
	if n := sum(rec.readBytes) + sum(rec.writeBytes); rec.readBytes[SrcUnknown] != 0 && n != 0 {
		t.Errorf("unknown source leaked %d read bytes", rec.readBytes[SrcUnknown])
	}
}

// TestAttributedLatencyGate checks that the latency flag is snapshotted at
// wrap time from WantsLatency and durations flow once it is set.
func TestAttributedLatencyGate(t *testing.T) {
	mem := NewMemFS()
	rec := &testRecorder{wantLat: true}
	wal := Attributed(mem, rec).Tagged(SrcWAL)
	f, err := wal.Create("wal-000001")
	if err != nil {
		t.Fatal(err)
	}
	// MemFS models disk time but completes instantly on the wall clock;
	// issue enough I/O that at least one nonzero monotonic-clock delta is
	// all but certain.
	buf := make([]byte, PageSize)
	for i := 0; i < 1000; i++ {
		if _, err := f.WriteAt(buf, int64(i)*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if !rec.sawLatency {
		t.Error("recorder wanting latency never saw a nonzero duration")
	}
}

// BenchmarkIOAttribution measures the attribution wrapper's per-I/O cost
// over the raw metered MemFS — the storage-level bound on the engine
// overhead budget (the iostat experiment measures the end-to-end figure).
func BenchmarkIOAttribution(b *testing.B) {
	for _, attributed := range []bool{false, true} {
		name := "raw"
		if attributed {
			name = "attributed"
		}
		b.Run(fmt.Sprintf("writeAt/%s", name), func(b *testing.B) {
			var vfs VFS = NewMemFS()
			if attributed {
				vfs = Attributed(vfs, &testRecorder{}).Tagged(SrcWAL)
			}
			f, err := vfs.Create("bench")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 256)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.WriteAt(buf, int64(i%64)*256); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("readAt/%s", name), func(b *testing.B) {
			var vfs VFS = NewMemFS()
			if attributed {
				vfs = Attributed(vfs, &testRecorder{}).Tagged(SrcQuery)
			}
			f, err := vfs.Create("bench")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.WriteAt(make([]byte, 64*256), 0); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 256)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.ReadAt(buf, int64(i%64)*256); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
