// Package storage provides the page-level storage substrate that the rest of
// the Backlog reproduction is built on.
//
// The package exposes a small virtual file system (VFS) abstraction with two
// implementations:
//
//   - MemFS: a deterministic in-memory file system that meters every I/O at
//     4 KB page granularity and models disk time (seek + transfer at a
//     configurable sequential throughput). It also supports failure
//     injection (write errors after N pages, torn writes) and crash
//     simulation (discarding all non-durable state), which the recovery
//     tests use.
//   - DirFS: a thin wrapper over a real directory using the os package.
//
// All Backlog on-disk structures (read-store runs, manifests, deletion
// vectors) are written through this interface, so the benchmark harness can
// report exactly how many 4 KB page writes each block operation costs — the
// unit used throughout the paper's evaluation (Figures 5 and 7).
package storage

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// PageSize is the file system page size assumed throughout the system.
// The paper's evaluation uses 4 KB blocks (Section 6.1).
const PageSize = 4096

// ErrNotExist is returned when a named file does not exist.
var ErrNotExist = errors.New("storage: file does not exist")

// ErrExist is returned when creating a file that already exists.
var ErrExist = errors.New("storage: file already exists")

// ErrInjected is the base error for injected failures; use errors.Is to
// detect it in failure-injection tests.
var ErrInjected = errors.New("storage: injected failure")

// File is a random-access file handle.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
	// Sync makes the current contents durable. On MemFS, contents written
	// but not synced are lost by Crash.
	Sync() error
	// Close releases the handle. Closing does not imply Sync.
	Close() error
}

// DirSyncer is optionally implemented by a VFS whose directory entries
// need an explicit fsync to become durable (DirFS). Callers that
// acknowledge durability without a subsequent Rename commit — the
// write-ahead log, whose segment entries must survive a crash as soon as
// records in them are acknowledged — invoke it after creating a file.
// MemFS entries are durable once the file is synced, so it does not
// implement the interface.
type DirSyncer interface {
	SyncDir() error
}

// VFS is the minimal file system interface the storage layer requires.
type VFS interface {
	// Create creates a new empty file. It fails with ErrExist if the name
	// is already in use.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, error)
	// Remove deletes a file. Removing a non-existent file returns
	// ErrNotExist.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	// Rename is the commit primitive used for manifests.
	Rename(oldName, newName string) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// Stats returns the I/O accounting for this VFS. Implementations that
	// do not meter I/O return a zero-valued snapshot.
	Stats() Stats
}

// Stats is a snapshot of I/O accounting counters.
//
// PageWrites and PageReads count 4 KB page-granularity transfers: an I/O of
// n bytes starting at offset off touches the pages spanning
// [off, off+n), and each touched page counts once per call. This matches the
// paper's "I/O Writes (4 KB blocks)" metric.
type Stats struct {
	PageReads    int64 // 4 KB pages read
	PageWrites   int64 // 4 KB pages written
	BytesRead    int64
	BytesWritten int64
	Syncs        int64
	FilesCreated int64
	FilesRemoved int64
	// DiskNanos is modeled disk time in nanoseconds, computed by the
	// DiskModel of a MemFS. Zero for unmetered implementations.
	DiskNanos int64
}

// Sub returns the counter-wise difference s - prev. Use it to meter a
// region of execution:
//
//	before := fs.Stats()
//	... work ...
//	delta := fs.Stats().Sub(before)
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		PageReads:    s.PageReads - prev.PageReads,
		PageWrites:   s.PageWrites - prev.PageWrites,
		BytesRead:    s.BytesRead - prev.BytesRead,
		BytesWritten: s.BytesWritten - prev.BytesWritten,
		Syncs:        s.Syncs - prev.Syncs,
		FilesCreated: s.FilesCreated - prev.FilesCreated,
		FilesRemoved: s.FilesRemoved - prev.FilesRemoved,
		DiskNanos:    s.DiskNanos - prev.DiskNanos,
	}
}

// Add returns the counter-wise sum s + other.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		PageReads:    s.PageReads + other.PageReads,
		PageWrites:   s.PageWrites + other.PageWrites,
		BytesRead:    s.BytesRead + other.BytesRead,
		BytesWritten: s.BytesWritten + other.BytesWritten,
		Syncs:        s.Syncs + other.Syncs,
		FilesCreated: s.FilesCreated + other.FilesCreated,
		FilesRemoved: s.FilesRemoved + other.FilesRemoved,
		DiskNanos:    s.DiskNanos + other.DiskNanos,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d bytesR=%d bytesW=%d syncs=%d",
		s.PageReads, s.PageWrites, s.BytesRead, s.BytesWritten, s.Syncs)
}

// pagesSpanned returns how many PageSize pages the byte range
// [off, off+n) touches.
func pagesSpanned(off int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	first := off / PageSize
	last := (off + int64(n) - 1) / PageSize
	return last - first + 1
}

// DiskModel converts page-level I/O into modeled disk time. The defaults
// approximate the evaluation platform in the paper: a 15K RPM SAS drive with
// 60 MB/s of write throughput and a ~4 ms positioning penalty for
// non-sequential reads. Writes carry a much smaller penalty: a
// write-anywhere file system batches all of a consistency point's writes
// into near-sequential stripes, so switching output files costs a short
// stripe switch, not a full seek.
type DiskModel struct {
	// SeekNanos is charged for every read that is not sequential with the
	// previous I/O on the same device.
	SeekNanos int64
	// WriteSeekNanos is charged for every non-sequential write.
	WriteSeekNanos int64
	// BytesPerSecond is the sequential transfer rate.
	BytesPerSecond int64
}

// DefaultDiskModel matches the Fujitsu MAX3073RC used in the paper's fsim
// experiments (Section 6.1).
func DefaultDiskModel() DiskModel {
	return DiskModel{SeekNanos: 4_000_000, WriteSeekNanos: 200_000, BytesPerSecond: 60 << 20}
}

// cost returns the modeled time for an I/O of n bytes, given whether it was
// sequential with the previous I/O.
func (m DiskModel) cost(n int, sequential, write bool) int64 {
	var t int64
	if !sequential {
		if write {
			t += m.WriteSeekNanos
		} else {
			t += m.SeekNanos
		}
	}
	if m.BytesPerSecond > 0 {
		t += int64(n) * 1_000_000_000 / m.BytesPerSecond
	}
	return t
}

// FailurePlan configures failure injection on a MemFS.
type FailurePlan struct {
	// FailAfterPageWrites, when > 0, causes every page write after the
	// first N to fail with ErrInjected. The page counter is global across
	// files.
	FailAfterPageWrites int64
	// TornWrite, when true, makes the failing write apply a prefix of its
	// payload before reporting the error (modeling a torn sector write).
	TornWrite bool
	// TornWriteDurable additionally makes the torn write's applied prefix
	// — and only it — durable immediately, modeling sectors that reached
	// the platter before power failed. Earlier unsynced writes to the
	// file stay volatile. Without this, the torn prefix is discarded by
	// Crash unless the file is synced afterwards — which an appender that
	// just saw the write fail never does. The WAL torn-tail recovery
	// tests use this to plant a genuinely durable half-written record.
	TornWriteDurable bool
}

// MemFS is an in-memory VFS with I/O metering, a disk-time model, failure
// injection, and crash simulation. The zero value is not usable; call
// NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	stats Stats
	model DiskModel
	plan  FailurePlan

	// lastFile/lastEnd track the device head position for the sequential
	// access model.
	lastFile *memFile
	lastEnd  int64
}

// NewMemFS returns an empty in-memory file system using DefaultDiskModel.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), model: DefaultDiskModel()}
}

// SetDiskModel replaces the disk-time model.
func (fs *MemFS) SetDiskModel(m DiskModel) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.model = m
}

// SetFailurePlan installs a failure-injection plan. A zero plan disables
// injection.
func (fs *MemFS) SetFailurePlan(p FailurePlan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.plan = p
}

type memFile struct {
	fs      *MemFS
	name    string
	data    []byte
	durable []byte // contents as of the last Sync; nil if never synced
	synced  bool   // whether the file has ever been synced (exists after crash)
	removed bool
}

// Create implements VFS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("create %q: %w", name, ErrExist)
	}
	f := &memFile{fs: fs, name: name}
	fs.files[name] = f
	fs.stats.FilesCreated++
	return f, nil
}

// Open implements VFS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("open %q: %w", name, ErrNotExist)
	}
	return f, nil
}

// Remove implements VFS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("remove %q: %w", name, ErrNotExist)
	}
	f.removed = true
	delete(fs.files, name)
	fs.stats.FilesRemoved++
	return nil
}

// Rename implements VFS. The rename itself is treated as durable if the
// source file has been synced, mirroring the write-anywhere commit pattern
// (write new root, sync, then atomically switch).
func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("rename %q: %w", oldName, ErrNotExist)
	}
	delete(fs.files, oldName)
	f.name = newName
	fs.files[newName] = f
	return nil
}

// List implements VFS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements VFS.
func (fs *MemFS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// TotalBytes returns the sum of all file sizes, the measure used for the
// space-overhead figures (Figures 6 and 8).
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, f := range fs.files {
		n += int64(len(f.data))
	}
	return n
}

// Crash simulates a power failure: every file reverts to its last-synced
// contents, and files that were never synced disappear. Open handles remain
// usable but see the reverted state.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for name, f := range fs.files {
		if !f.synced {
			delete(fs.files, name)
			f.removed = true
			continue
		}
		f.data = append([]byte(nil), f.durable...)
	}
	fs.lastFile = nil
	fs.lastEnd = 0
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("read %q: negative offset", f.name)
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	f.fs.stats.PageReads += pagesSpanned(off, n)
	f.fs.stats.BytesRead += int64(n)
	f.fs.accountSeek(f, off, n, false)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("write %q: negative offset", f.name)
	}
	if f.removed {
		return 0, fmt.Errorf("write %q: file removed", f.name)
	}
	// Failure injection operates at page granularity.
	writeLen := len(p)
	var injected error
	if f.fs.plan.FailAfterPageWrites > 0 {
		pages := pagesSpanned(off, len(p))
		budget := f.fs.plan.FailAfterPageWrites - f.fs.stats.PageWrites
		if budget < pages {
			if budget < 0 {
				budget = 0
			}
			injected = fmt.Errorf("write %q after %d pages: %w",
				f.name, f.fs.stats.PageWrites, ErrInjected)
			if !f.fs.plan.TornWrite || budget == 0 {
				return 0, injected
			}
			// Apply only the pages that fit in the budget.
			firstPage := off / PageSize
			endByte := (firstPage + budget) * PageSize
			writeLen = int(endByte - off)
			if writeLen > len(p) {
				writeLen = len(p)
			}
			if writeLen <= 0 {
				return 0, injected
			}
		}
	}
	end := off + int64(writeLen)
	if end > int64(len(f.data)) {
		if end > int64(cap(f.data)) {
			// Amortized growth: doubling keeps long append streams
			// linear instead of quadratic.
			newCap := int64(cap(f.data)) * 2
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.data)
			f.data = grown
		} else {
			f.data = f.data[:end]
		}
	}
	n := copy(f.data[off:end], p[:writeLen])
	f.fs.stats.PageWrites += pagesSpanned(off, n)
	f.fs.stats.BytesWritten += int64(n)
	f.fs.accountSeek(f, off, n, true)
	if injected != nil {
		if f.fs.plan.TornWriteDurable && n > 0 {
			// Only the sectors this write actually touched reach the
			// platter; the gap between the old durable length and the
			// write offset (never-synced, never-written-now) reads as
			// zeros after a crash.
			if int64(len(f.durable)) < end {
				f.durable = append(f.durable, make([]byte, end-int64(len(f.durable)))...)
			}
			copy(f.durable[off:end], f.data[off:end])
			f.synced = true
		}
		return n, injected
	}
	return n, nil
}

// accountSeek updates the modeled disk time. Must hold fs.mu.
func (fs *MemFS) accountSeek(f *memFile, off int64, n int, write bool) {
	sequential := fs.lastFile == f && fs.lastEnd == off
	fs.stats.DiskNanos += fs.model.cost(n, sequential, write)
	fs.lastFile = f
	fs.lastEnd = off + int64(n)
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.data)), nil
}

// CreateSink returns a metering-only file: writes are accounted (pages,
// bytes, modeled disk time) but the data is discarded and reads return
// zeros. Simulation substrates use sinks for streams that are written for
// cost accounting and never read back (file data areas, modeled metadata
// trees whose authoritative copy is in memory). Sinks do not appear in
// List and do not participate in Crash.
func (fs *MemFS) CreateSink(name string) File {
	return &sinkFile{fs: fs, name: name}
}

// sinkFile meters I/O without retaining data.
type sinkFile struct {
	fs   *MemFS
	name string
	size int64
}

func (f *sinkFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= f.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	for i := 0; i < n; i++ {
		p[i] = 0
	}
	f.fs.stats.PageReads += pagesSpanned(off, n)
	f.fs.stats.BytesRead += int64(n)
	f.fs.accountSeekSink(off, n, false)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *sinkFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("write %q: negative offset", f.name)
	}
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.fs.stats.PageWrites += pagesSpanned(off, len(p))
	f.fs.stats.BytesWritten += int64(len(p))
	f.fs.accountSeekSink(off, len(p), true)
	return len(p), nil
}

// accountSeekSink models disk time for a sink. Sinks share the device head
// with regular files; for simplicity each sink I/O is treated as
// sequential-if-contiguous within the sink only.
func (fs *MemFS) accountSeekSink(off int64, n int, write bool) {
	sequential := fs.lastFile == nil && fs.lastEnd == off
	fs.stats.DiskNanos += fs.model.cost(n, sequential, write)
	fs.lastFile = nil
	fs.lastEnd = off + int64(n)
}

func (f *sinkFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.size, nil
}

func (f *sinkFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.stats.Syncs++
	return nil
}

func (f *sinkFile) Close() error { return nil }

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.removed {
		return fmt.Errorf("sync %q: file removed", f.name)
	}
	f.durable = append(f.durable[:0], f.data...)
	f.synced = true
	f.fs.stats.Syncs++
	return nil
}

func (f *memFile) Close() error { return nil }
