package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DirFS is a VFS backed by a directory on the real file system. It meters
// I/O the same way MemFS does but does not model disk time (the real disk
// provides it). DirFS is what cmd/backlogctl uses for persistent databases.
type DirFS struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// NewDirFS returns a VFS rooted at dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %q: %w", dir, err)
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (d *DirFS) Dir() string { return d.dir }

func (d *DirFS) path(name string) string { return filepath.Join(d.dir, name) }

// Create implements VFS.
func (d *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("create %q: %w", name, ErrExist)
		}
		return nil, err
	}
	d.mu.Lock()
	d.stats.FilesCreated++
	d.mu.Unlock()
	return &dirFile{fs: d, f: f}, nil
}

// Open implements VFS.
func (d *DirFS) Open(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("open %q: %w", name, ErrNotExist)
		}
		return nil, err
	}
	return &dirFile{fs: d, f: f}, nil
}

// Remove implements VFS.
func (d *DirFS) Remove(name string) error {
	if err := os.Remove(d.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("remove %q: %w", name, ErrNotExist)
		}
		return err
	}
	d.mu.Lock()
	d.stats.FilesRemoved++
	d.mu.Unlock()
	return nil
}

// Rename implements VFS.
func (d *DirFS) Rename(oldName, newName string) error {
	if err := os.Rename(d.path(oldName), d.path(newName)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("rename %q: %w", oldName, ErrNotExist)
		}
		return err
	}
	return nil
}

// List implements VFS.
func (d *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements VFS.
func (d *DirFS) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

type dirFile struct {
	fs *DirFS
	f  *os.File
}

func (f *dirFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	f.fs.mu.Lock()
	f.fs.stats.PageReads += pagesSpanned(off, n)
	f.fs.stats.BytesRead += int64(n)
	f.fs.mu.Unlock()
	return n, err
}

func (f *dirFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.f.WriteAt(p, off)
	f.fs.mu.Lock()
	f.fs.stats.PageWrites += pagesSpanned(off, n)
	f.fs.stats.BytesWritten += int64(n)
	f.fs.mu.Unlock()
	return n, err
}

func (f *dirFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (f *dirFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.stats.Syncs++
	f.fs.mu.Unlock()
	return f.f.Sync()
}

func (f *dirFile) Close() error { return f.f.Close() }
