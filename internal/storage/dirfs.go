package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// DirFS is a VFS backed by a directory on the real file system. It meters
// I/O the same way MemFS does but does not model disk time (the real disk
// provides it). DirFS is what cmd/backlogctl uses for persistent databases.
type DirFS struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// NewDirFS returns a VFS rooted at dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %q: %w", dir, err)
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (d *DirFS) Dir() string { return d.dir }

func (d *DirFS) path(name string) string { return filepath.Join(d.dir, name) }

// SyncDir fsyncs the directory itself, making the current set of file
// entries durable. Without it a power failure can lose the directory
// entry of a fully-fsynced file. Rename calls it at the manifest commit
// point (one fsync covers every run file created since the last commit);
// the WAL calls it once per new segment, whose entry must be durable
// before appends into it are acknowledged. Filesystems that reject fsync
// on a directory fd (many FUSE/network mounts: EINVAL, ENOTSUP, ENOTTY)
// are excused — hard-failing every commit there would be worse than
// their genuinely weaker entry durability — but real I/O errors
// propagate, since swallowing an EIO would acknowledge durability the
// disk just refused to provide.
func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		if errors.Is(err, errors.ErrUnsupported) || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return err
	}
	return nil
}

// Create implements VFS.
func (d *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("create %q: %w", name, ErrExist)
		}
		return nil, err
	}
	d.mu.Lock()
	d.stats.FilesCreated++
	d.mu.Unlock()
	return &dirFile{fs: d, f: f}, nil
}

// Open implements VFS.
func (d *DirFS) Open(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("open %q: %w", name, ErrNotExist)
		}
		return nil, err
	}
	return &dirFile{fs: d, f: f}, nil
}

// Remove implements VFS.
func (d *DirFS) Remove(name string) error {
	if err := os.Remove(d.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("remove %q: %w", name, ErrNotExist)
		}
		return err
	}
	// No directory fsync: a removal entry lost to a crash merely
	// resurrects a file that recovery already tolerates (lsm collects
	// orphan runs; WAL replay skips checkpoint-covered records).
	d.mu.Lock()
	d.stats.FilesRemoved++
	d.mu.Unlock()
	return nil
}

// Rename implements VFS.
func (d *DirFS) Rename(oldName, newName string) error {
	if err := os.Rename(d.path(oldName), d.path(newName)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("rename %q: %w", oldName, ErrNotExist)
		}
		return err
	}
	return d.SyncDir()
}

// List implements VFS.
func (d *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements VFS.
func (d *DirFS) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

type dirFile struct {
	fs *DirFS
	f  *os.File
}

func (f *dirFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	f.fs.mu.Lock()
	f.fs.stats.PageReads += pagesSpanned(off, n)
	f.fs.stats.BytesRead += int64(n)
	f.fs.mu.Unlock()
	return n, err
}

func (f *dirFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.f.WriteAt(p, off)
	f.fs.mu.Lock()
	f.fs.stats.PageWrites += pagesSpanned(off, n)
	f.fs.stats.BytesWritten += int64(n)
	f.fs.mu.Unlock()
	return n, err
}

func (f *dirFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (f *dirFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.stats.Syncs++
	f.fs.mu.Unlock()
	return f.f.Sync()
}

func (f *dirFile) Close() error { return f.f.Close() }
