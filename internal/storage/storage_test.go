package storage

import (
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestPagesSpanned(t *testing.T) {
	cases := []struct {
		off  int64
		n    int
		want int64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{1, PageSize, 2},
		{PageSize - 1, 2, 2},
		{PageSize, PageSize, 1},
		{100, -5, 0},
		{3 * PageSize, 4 * PageSize, 4},
	}
	for _, c := range cases {
		if got := pagesSpanned(c.off, c.n); got != c.want {
			t.Errorf("pagesSpanned(%d, %d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}

func TestPagesSpannedProperty(t *testing.T) {
	// Property: splitting a write in two never spans fewer pages than the
	// single write, and at most one more page.
	f := func(off uint32, n1, n2 uint16) bool {
		o := int64(off)
		whole := pagesSpanned(o, int(n1)+int(n2))
		split := pagesSpanned(o, int(n1)) + pagesSpanned(o+int64(n1), int(n2))
		return split >= whole && split <= whole+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemFSCreateOpenRemove(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := fs.Create("a"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate Create: got %v, want ErrExist", err)
	}
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing: got %v, want ErrNotExist", err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	g, err := fs.Open("a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q, want %q", buf, "hello")
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := fs.Remove("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double Remove: got %v, want ErrNotExist", err)
	}
}

func TestMemFSReadPastEOF(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read: n=%d err=%v, want 3, io.EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past EOF: err=%v, want io.EOF", err)
	}
}

func TestMemFSSparseWrite(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	if _, err := f.WriteAt([]byte("x"), 10000); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if size != 10001 {
		t.Fatalf("size = %d, want 10001", size)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatalf("hole not zero: %v", buf[0])
	}
}

func TestMemFSRename(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("tmp")
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("tmp"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name still present: %v", err)
	}
	g, err := fs.Open("final")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q after rename", buf)
	}
	names, _ := fs.List()
	if len(names) != 1 || names[0] != "final" {
		t.Fatalf("List = %v", names)
	}
}

func TestMemFSStatsMeterPages(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	before := fs.Stats()
	payload := make([]byte, 3*PageSize)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	d := fs.Stats().Sub(before)
	if d.PageWrites != 3 {
		t.Fatalf("PageWrites = %d, want 3", d.PageWrites)
	}
	if d.BytesWritten != int64(3*PageSize) {
		t.Fatalf("BytesWritten = %d", d.BytesWritten)
	}
	// Unaligned write spanning a page boundary counts both pages.
	before = fs.Stats()
	if _, err := f.WriteAt(make([]byte, 2), PageSize-1); err != nil {
		t.Fatal(err)
	}
	if d := fs.Stats().Sub(before); d.PageWrites != 2 {
		t.Fatalf("boundary PageWrites = %d, want 2", d.PageWrites)
	}
}

func TestMemFSDiskModelSequential(t *testing.T) {
	fs := NewMemFS()
	fs.SetDiskModel(DiskModel{SeekNanos: 1000, WriteSeekNanos: 1000, BytesPerSecond: 1 << 30})
	f, _ := fs.Create("a")
	page := make([]byte, PageSize)
	if _, err := f.WriteAt(page, 0); err != nil {
		t.Fatal(err)
	}
	t0 := fs.Stats().DiskNanos
	// Sequential continuation: no seek charged.
	if _, err := f.WriteAt(page, PageSize); err != nil {
		t.Fatal(err)
	}
	seq := fs.Stats().DiskNanos - t0
	t1 := fs.Stats().DiskNanos
	// Random jump: seek charged.
	if _, err := f.WriteAt(page, 100*PageSize); err != nil {
		t.Fatal(err)
	}
	rnd := fs.Stats().DiskNanos - t1
	if rnd <= seq {
		t.Fatalf("random I/O (%d ns) not slower than sequential (%d ns)", rnd, seq)
	}
	if rnd-seq != 1000 {
		t.Fatalf("seek penalty = %d, want 1000", rnd-seq)
	}
}

func TestMemFSCrashDiscardsUnsynced(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("durable")
	if _, err := f.WriteAt([]byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Create("ephemeral")
	if _, err := g.WriteAt([]byte("gone"), 0); err != nil {
		t.Fatal(err)
	}

	fs.Crash()

	if _, err := fs.Open("ephemeral"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("unsynced file survived crash: %v", err)
	}
	h, err := fs.Open("durable")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "v1" {
		t.Fatalf("after crash read %q, want %q", buf, "v1")
	}
}

func TestMemFSFailureInjection(t *testing.T) {
	fs := NewMemFS()
	fs.SetFailurePlan(FailurePlan{FailAfterPageWrites: 2})
	f, _ := fs.Create("a")
	page := make([]byte, PageSize)
	if _, err := f.WriteAt(page, 0); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.WriteAt(page, PageSize); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if _, err := f.WriteAt(page, 2*PageSize); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3: got %v, want ErrInjected", err)
	}
}

func TestMemFSTornWrite(t *testing.T) {
	fs := NewMemFS()
	fs.SetFailurePlan(FailurePlan{FailAfterPageWrites: 1, TornWrite: true})
	f, _ := fs.Create("a")
	payload := make([]byte, 2*PageSize)
	for i := range payload {
		payload[i] = 0xAB
	}
	n, err := f.WriteAt(payload, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != PageSize {
		t.Fatalf("torn write applied %d bytes, want %d", n, PageSize)
	}
	size, _ := f.Size()
	if size != PageSize {
		t.Fatalf("size after torn write = %d, want %d", size, PageSize)
	}
}

func TestDirFSRoundTrip(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.Create("run.0001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("run.0001"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate Create: %v", err)
	}
	g, err := d.Open("run.0001")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatalf("read %q", buf)
	}
	size, err := g.Size()
	if err != nil || size != 7 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("run.0001", "run.final"); err != nil {
		t.Fatal(err)
	}
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "run.final" {
		t.Fatalf("List = %v", names)
	}
	if err := d.Remove("run.final"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("run.final"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
	st := d.Stats()
	if st.PageWrites == 0 || st.PageReads == 0 || st.Syncs != 1 {
		t.Fatalf("stats not metered: %+v", st)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{PageReads: 5, PageWrites: 7, BytesRead: 100, Syncs: 1}
	b := Stats{PageReads: 2, PageWrites: 3, BytesRead: 40}
	sum := a.Add(b)
	if sum.PageReads != 7 || sum.PageWrites != 10 || sum.BytesRead != 140 {
		t.Fatalf("Add = %+v", sum)
	}
	if diff := sum.Sub(b); diff != a {
		t.Fatalf("Sub = %+v, want %+v", diff, a)
	}
}
