package core

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/errgroup"
	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/memtree"
	"github.com/backlogfs/backlog/internal/storage"
)

// Options configures an Engine.
type Options struct {
	// VFS is where the back-reference database lives. Required.
	VFS storage.VFS
	// Catalog supplies snapshot topology for masking, inheritance
	// expansion, and purging. Required.
	Catalog Catalog
	// CacheBytes sizes the shared page cache (default 32 MB, the paper's
	// micro-benchmark configuration). Negative disables caching.
	CacheBytes int64
	// Partitions is the number of block-range partitions (default 1).
	Partitions int
	// PartitionSpan is the number of blocks per partition (required when
	// Partitions > 1 unless HashPartitioning is set).
	PartitionSpan uint64
	// HashPartitioning routes blocks to partitions by hash instead of by
	// contiguous range (Section 5.3's alternative scheme).
	HashPartitioning bool
	// WriteShards is the number of hash-partitioned write-store shards
	// (default runtime.GOMAXPROCS(0)). Each shard has its own mutex and
	// From/To/Combined trees, so concurrent AddRef/RemoveRef calls on
	// different shards never contend, and Checkpoint flushes all shards in
	// parallel. 1 reproduces the paper's single write store.
	WriteShards int
	// BloomMaxBytes caps From/To run filters (default 32 KB).
	BloomMaxBytes int
	// CombinedBloomMaxBytes caps Combined run filters (default 1 MB).
	CombinedBloomMaxBytes int
	// DisablePruning turns off same-CP proactive pruning (ablation).
	DisablePruning bool
	// DisableBloom makes queries consult every run regardless of its
	// Bloom filter (ablation).
	DisableBloom bool
}

// Stats counts engine activity. All counters are cumulative.
type Stats struct {
	RefsAdded      uint64 // AddRef calls
	RefsRemoved    uint64 // RemoveRef calls
	PrunedAdds     uint64 // To entries cancelled by a same-CP AddRef
	PrunedRemoves  uint64 // From entries cancelled by a same-CP RemoveRef
	Checkpoints    uint64
	Compactions    uint64
	RecordsFlushed uint64 // records written to Level-0 runs
	RecordsPurged  uint64 // records dropped by compaction
	Queries        uint64
	Relocations    uint64
}

// counters is the internal atomic mirror of Stats; shard-parallel AddRef
// and RemoveRef bump these without taking any engine-wide lock.
type counters struct {
	refsAdded      atomic.Uint64
	refsRemoved    atomic.Uint64
	prunedAdds     atomic.Uint64
	prunedRemoves  atomic.Uint64
	checkpoints    atomic.Uint64
	compactions    atomic.Uint64
	recordsFlushed atomic.Uint64
	recordsPurged  atomic.Uint64
	queries        atomic.Uint64
	relocations    atomic.Uint64
}

// writeShard is one hash partition of the write store: a mutex plus the
// per-table in-memory trees. A reference with physical block b lives in
// shard mix64(b) % N, so proactive pruning (which pairs an AddRef with a
// same-CP RemoveRef of the same Ref) always finds both entries under one
// shard lock.
type writeShard struct {
	mu       sync.Mutex
	from     *memtree.Tree[FromRec]
	to       *memtree.Tree[ToRec]
	combined *memtree.Tree[CombinedRec] // used only by relocation
}

// Engine is the Backlog back-reference database.
//
// Concurrency: mu is the structural lock. AddRef, RemoveRef, Query, and
// QueryRange acquire it shared and then lock the single shard owning the
// block, so updates and queries on different shards run in parallel.
// Checkpoint, Compact, and RelocateBlock acquire it exclusively: they
// mutate LSM structure (run lists, deletion vectors) that shared holders
// read without further locking.
type Engine struct {
	mu      sync.RWMutex
	opts    Options
	vfs     storage.VFS
	catalog Catalog
	db      *lsm.DB
	cache   *btree.Cache

	shards []*writeShard

	stats counters
}

// Open opens or creates a Backlog database.
func Open(opts Options) (*Engine, error) {
	if opts.VFS == nil {
		return nil, errors.New("core: Options.VFS is required")
	}
	if opts.Catalog == nil {
		return nil, errors.New("core: Options.Catalog is required")
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 32 << 20
	}
	var cache *btree.Cache
	if cacheBytes > 0 {
		cache = btree.NewCacheBytes(cacheBytes)
	}
	bfFromTo := opts.BloomMaxBytes
	if bfFromTo == 0 {
		bfFromTo = 32 << 10
	}
	bfCombined := opts.CombinedBloomMaxBytes
	if bfCombined == 0 {
		bfCombined = 1 << 20
	}
	db, err := lsm.Open(opts.VFS, lsm.Options{
		Tables: []lsm.TableSpec{
			{Name: TableFrom, RecordSize: FromRecSize, BloomMaxBytes: bfFromTo},
			{Name: TableTo, RecordSize: ToRecSize, BloomMaxBytes: bfFromTo},
			{Name: TableCombined, RecordSize: CombinedSize, BloomMaxBytes: bfCombined},
		},
		Partitions:       opts.Partitions,
		PartitionSpan:    opts.PartitionSpan,
		HashPartitioning: opts.HashPartitioning,
		Cache:            cache,
		DisableBloom:     opts.DisableBloom,
	})
	if err != nil {
		return nil, err
	}
	nShards := opts.WriteShards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	shards := make([]*writeShard, nShards)
	for i := range shards {
		shards[i] = &writeShard{
			from:     memtree.New(lessFrom),
			to:       memtree.New(lessTo),
			combined: memtree.New(lessCombined),
		}
	}
	return &Engine{
		opts:    opts,
		vfs:     opts.VFS,
		catalog: opts.Catalog,
		db:      db,
		cache:   cache,
		shards:  shards,
	}, nil
}

// shardOf returns the write-store shard owning a block. The hash
// decorrelates the shard index from block-allocation locality so
// sequential writers spread across shards.
func (e *Engine) shardOf(block uint64) *writeShard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	return e.shards[lsm.Mix64(block)%uint64(len(e.shards))]
}

// WriteShards returns the number of write-store shards.
func (e *Engine) WriteShards() int { return len(e.shards) }

// CP returns the last durable consistency point number.
func (e *Engine) CP() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.CP()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		RefsAdded:      e.stats.refsAdded.Load(),
		RefsRemoved:    e.stats.refsRemoved.Load(),
		PrunedAdds:     e.stats.prunedAdds.Load(),
		PrunedRemoves:  e.stats.prunedRemoves.Load(),
		Checkpoints:    e.stats.checkpoints.Load(),
		Compactions:    e.stats.compactions.Load(),
		RecordsFlushed: e.stats.recordsFlushed.Load(),
		RecordsPurged:  e.stats.recordsPurged.Load(),
		Queries:        e.stats.queries.Load(),
		Relocations:    e.stats.relocations.Load(),
	}
}

// SizeBytes returns the on-disk size of the back-reference database.
func (e *Engine) SizeBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.SizeBytes()
}

// RunCount returns the number of live read-store runs.
func (e *Engine) RunCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.RunCount()
}

// WSLen returns the number of buffered write-store entries (From + To +
// Combined) across all shards.
func (e *Engine) WSLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var n int
	for _, s := range e.shards {
		s.mu.Lock()
		n += s.from.Len() + s.to.Len() + s.combined.Len()
		s.mu.Unlock()
	}
	return n
}

// ClearCaches drops the shared page cache; the query experiments do this
// before every run (Section 6.4).
func (e *Engine) ClearCaches() {
	if e.cache != nil {
		e.cache.Clear()
	}
}

// AddRef records that ref became live at CP cp. If the same reference was
// removed earlier within the same CP interval, the two cancel: the To entry
// is deleted from the write store and the original interval simply
// continues (proactive pruning, Section 5.1).
func (e *Engine) AddRef(ref Ref, cp uint64) {
	if ref.Length == 0 {
		ref.Length = 1
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.stats.refsAdded.Add(1)
	s := e.shardOf(ref.Block)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !e.opts.DisablePruning {
		if s.to.Delete(ToRec{Ref: ref, To: cp}) {
			e.stats.prunedAdds.Add(1)
			return
		}
	}
	s.from.Insert(FromRec{Ref: ref, From: cp})
}

// RemoveRef records that ref ceased to be live at CP cp. If the reference
// was added within the same CP interval, both entries are pruned and
// nothing reaches disk.
func (e *Engine) RemoveRef(ref Ref, cp uint64) {
	if ref.Length == 0 {
		ref.Length = 1
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.stats.refsRemoved.Add(1)
	s := e.shardOf(ref.Block)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !e.opts.DisablePruning {
		if s.from.Delete(FromRec{Ref: ref, From: cp}) {
			e.stats.prunedRemoves.Add(1)
			return
		}
	}
	s.to.Insert(ToRec{Ref: ref, To: cp})
}

// Checkpoint flushes the write stores to new Level-0 runs and commits them
// together with the CP number. All shards flush in parallel — each sorts
// and writes its own runs — and the manifest edit installing every run is
// applied once, atomically, after all shard flushes succeed. After
// Checkpoint returns, all references up to cp are durable and the write
// stores are empty. On error the write stores are left intact, so the
// caller can retry or replay.
func (e *Engine) Checkpoint(cp uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	type flushResult struct {
		refs  []lsm.RunRef
		count uint64
	}
	results := make([]flushResult, len(e.shards))
	var g errgroup.Group
	for i, s := range e.shards {
		i, s := i, s
		g.Go(func() error {
			res := &results[i]
			n, err := flushWS(e.db, &res.refs, TableFrom, cp, s.from, func(r FromRec) (uint64, []byte) {
				return r.Block, EncodeFrom(r)
			})
			if err != nil {
				return err
			}
			res.count += n
			n, err = flushWS(e.db, &res.refs, TableTo, cp, s.to, func(r ToRec) (uint64, []byte) {
				return r.Block, EncodeTo(r)
			})
			if err != nil {
				return err
			}
			res.count += n
			n, err = flushWS(e.db, &res.refs, TableCombined, cp, s.combined, func(r CombinedRec) (uint64, []byte) {
				return r.Block, EncodeCombined(r)
			})
			if err != nil {
				return err
			}
			res.count += n
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		// Shards that finished runs before another shard failed leave
		// complete but uncommitted files behind; drop them now instead of
		// waiting for orphan collection at the next Open.
		for _, res := range results {
			for _, ref := range res.refs {
				e.db.DiscardRun(ref)
			}
		}
		return err
	}

	edit := e.db.NewEdit().SetCP(cp)
	var flushed uint64
	for _, res := range results {
		for _, ref := range res.refs {
			edit.AddRun(ref)
		}
		flushed += res.count
	}
	// AddRun transferred ownership of the run files: a Commit that fails
	// before its commit point removes them itself.
	if err := edit.Commit(); err != nil {
		return err
	}
	for _, s := range e.shards {
		s.from.Clear()
		s.to.Clear()
		s.combined.Clear()
	}
	e.stats.checkpoints.Add(1)
	e.stats.recordsFlushed.Add(flushed)
	return nil
}

// flushWS writes one shard's write store for one table into per-partition
// Level-0 runs, appending each finished run's ref to *refs as soon as it
// completes (so a caller cleaning up after a failure sees every run built
// so far). The tree iterates in ascending record order, so each
// partition's builder receives a sorted stream; builders stay open per
// partition, which keeps one run per (shard, partition) even when hash
// partitioning interleaves partition visits.
func flushWS[T any](db *lsm.DB, refs *[]lsm.RunRef, table string, cp uint64,
	ws *memtree.Tree[T], enc func(T) (uint64, []byte)) (uint64, error) {
	if ws.Len() == 0 {
		return 0, nil
	}
	var (
		builders = map[int]*lsm.RunBuilder{}
		count    uint64
		retErr   error
	)
	abortAll := func() {
		for _, b := range builders {
			b.Abort()
		}
	}
	ws.Ascend(func(item T) bool {
		block, rec := enc(item)
		p := db.PartitionOf(block)
		b := builders[p]
		if b == nil {
			nb, err := db.NewRunBuilder(table, p, 0, cp)
			if err != nil {
				retErr = err
				return false
			}
			builders[p] = nb
			b = nb
		}
		if err := b.Add(rec); err != nil {
			retErr = err
			return false
		}
		count++
		return true
	})
	if retErr != nil {
		abortAll()
		return 0, retErr
	}
	parts := make([]int, 0, len(builders))
	for p := range builders {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for i, p := range parts {
		ref, ok, err := builders[p].Finish()
		if err != nil {
			// Abort the failing builder too: its partial file would
			// otherwise linger as an orphan until the next Open.
			builders[p].Abort()
			for _, q := range parts[i+1:] {
				builders[q].Abort()
			}
			return 0, err
		}
		if ok {
			*refs = append(*refs, ref)
		}
	}
	return count, nil
}

// RelocateBlock transplants every back reference of oldBlock onto
// newBlock: run records for oldBlock enter the deletion vectors (paper
// Section 5.1) and equivalent records keyed by newBlock are inserted into
// the write stores, becoming durable at the next Checkpoint. Block
// relocation utilities (defragmentation, volume shrinking) call this after
// moving the physical data and rewriting the file-system pointers.
func (e *Engine) RelocateBlock(oldBlock, newBlock uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if oldBlock == newBlock {
		return nil
	}
	e.stats.relocations.Add(1)

	// The exclusive lock excludes every shared holder, so both shards'
	// trees are safe to touch without their shard mutexes.
	src := e.shardOf(oldBlock)
	dst := e.shardOf(newBlock)

	// Run records: hide via deletion vectors, reinsert re-keyed.
	fromTbl := e.db.Table(TableFrom)
	var err error
	collect := func(tbl *lsm.Table, each func(rec []byte)) error {
		var recs [][]byte
		if err := tbl.CollectBlock(oldBlock, func(rec []byte) bool {
			recs = append(recs, append([]byte(nil), rec...))
			return true
		}); err != nil {
			return err
		}
		for _, rec := range recs {
			tbl.DeleteRecord(rec)
			each(rec)
		}
		return nil
	}
	err = collect(fromTbl, func(rec []byte) {
		r := DecodeFrom(rec)
		r.Block = newBlock
		dst.from.Insert(r)
	})
	if err != nil {
		return err
	}
	err = collect(e.db.Table(TableTo), func(rec []byte) {
		r := DecodeTo(rec)
		r.Block = newBlock
		dst.to.Insert(r)
	})
	if err != nil {
		return err
	}
	err = collect(e.db.Table(TableCombined), func(rec []byte) {
		r := DecodeCombined(rec)
		r.Block = newBlock
		dst.combined.Insert(r)
	})
	if err != nil {
		return err
	}

	// Write-store records: re-key from the old block's shard into the new
	// block's shard.
	rekeyFrom := collectWSFrom(src.from, oldBlock)
	for _, r := range rekeyFrom {
		src.from.Delete(r)
		r.Block = newBlock
		dst.from.Insert(r)
	}
	rekeyTo := collectWSTo(src.to, oldBlock)
	for _, r := range rekeyTo {
		src.to.Delete(r)
		r.Block = newBlock
		dst.to.Insert(r)
	}
	var rekeyC []CombinedRec
	src.combined.Scan(CombinedRec{Ref: Ref{Block: oldBlock}}, func(r CombinedRec) bool {
		if r.Block != oldBlock {
			return false
		}
		rekeyC = append(rekeyC, r)
		return true
	})
	for _, r := range rekeyC {
		src.combined.Delete(r)
		r.Block = newBlock
		dst.combined.Insert(r)
	}
	return nil
}

func collectWSFrom(ws *memtree.Tree[FromRec], block uint64) []FromRec {
	var out []FromRec
	ws.Scan(FromRec{Ref: Ref{Block: block}}, func(r FromRec) bool {
		if r.Block != block {
			return false
		}
		out = append(out, r)
		return true
	})
	return out
}

func collectWSTo(ws *memtree.Tree[ToRec], block uint64) []ToRec {
	var out []ToRec
	ws.Scan(ToRec{Ref: Ref{Block: block}}, func(r ToRec) bool {
		if r.Block != block {
			return false
		}
		out = append(out, r)
		return true
	})
	return out
}

// Catalog returns the engine's snapshot catalog.
func (e *Engine) Catalog() Catalog { return e.catalog }

// DB exposes the underlying LSM store for tests and tooling.
func (e *Engine) DB() *lsm.DB { return e.db }
