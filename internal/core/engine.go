package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/errgroup"
	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/memtree"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// Options configures an Engine.
type Options struct {
	// VFS is where the back-reference database lives. Required.
	VFS storage.VFS
	// Catalog supplies snapshot topology for masking, inheritance
	// expansion, and purging. Required.
	Catalog Catalog
	// CacheBytes sizes the shared page cache (default 32 MB, the paper's
	// micro-benchmark configuration). Negative disables caching.
	CacheBytes int64
	// Partitions is the number of block-range partitions (default 1).
	Partitions int
	// PartitionSpan is the number of blocks per partition (required when
	// Partitions > 1 unless HashPartitioning is set).
	PartitionSpan uint64
	// HashPartitioning routes blocks to partitions by hash instead of by
	// contiguous range (Section 5.3's alternative scheme).
	HashPartitioning bool
	// WriteShards is the number of hash-partitioned write-store shards
	// (default runtime.GOMAXPROCS(0)). Each shard has its own mutex and
	// From/To/Combined trees, so concurrent AddRef/RemoveRef calls on
	// different shards never contend, and Checkpoint flushes all shards in
	// parallel. 1 reproduces the paper's single write store.
	WriteShards int
	// BloomMaxBytes caps From/To run filters (default 32 KB).
	BloomMaxBytes int
	// CombinedBloomMaxBytes caps Combined run filters (default 1 MB).
	CombinedBloomMaxBytes int
	// DisablePruning turns off same-CP proactive pruning (ablation).
	DisablePruning bool
	// DisableBloom makes queries consult every run regardless of its
	// Bloom filter (ablation).
	DisableBloom bool
	// Compression selects the on-disk run format. The default,
	// CompressionDelta, writes format-v2 runs whose leaf pages are
	// per-column delta + zigzag + varint encoded (the paper's Section 8
	// observation that back-reference tables are "highly compressible,
	// especially if we compress them by columns"); CompressionNone writes
	// raw fixed-stride v1 runs. Runs of either format open and query
	// transparently, and every new run — checkpoint flush or compaction —
	// is written in the configured format, so flipping the knob migrates a
	// database gradually with no explicit step.
	Compression Compression
	// Durability selects when reference updates become crash-durable
	// (default wal.CheckpointOnly, the paper's behavior: buffered updates
	// are lost on crash). wal.Buffered appends every update to a
	// write-ahead log without fsync; wal.Sync group-commits with an fsync
	// per batch, so an acknowledged update survives any crash. Open
	// replays the log tail into the write stores, and Checkpoint retires
	// it.
	Durability wal.Durability
	// WALSegmentBytes rotates write-ahead-log segments
	// (wal.DefaultSegmentBytes if zero). Only used when Durability is not
	// CheckpointOnly.
	WALSegmentBytes int64
	// AutoCompact starts the background maintenance scheduler: after
	// every checkpoint it compacts the partition with the most runs until
	// no partition exceeds CompactThreshold, pacing itself between
	// partitions. Compaction merges run against a pinned view outside the
	// structural lock, so updates and queries keep flowing while it
	// works. Requires a Catalog that is safe for concurrent use
	// (MemCatalog is).
	AutoCompact bool
	// CompactThreshold is the per-partition run count (summed across the
	// From, To, and Combined tables) above which the maintainer compacts
	// the partition (DefaultCompactThreshold if zero; values below 2 are
	// clamped to 2, the run count of a fully compacted partition). It
	// also bounds how stale queries can get between maintenance passes —
	// the run count is what query cost scales with (Section 6.4). Only
	// PolicyFull (the default CompactionPolicy) uses it.
	CompactThreshold int
	// CompactionPolicy plans the maintainer's merges. Nil selects
	// PolicyFull — whole-partition worst-first merging, the paper's
	// Section 5.2 maintenance. PolicyLeveled trades a few extra runs per
	// partition for stepped merging that bounds write amplification to
	// one rewrite per level; see the policy types for the full contract.
	CompactionPolicy CompactionPolicy
	// Fanout is PolicyLeveled's stepped-merge fanout: the per-table run
	// count at one level of a partition that triggers merging the level
	// up (DefaultFanout if zero; values below 2 are clamped).
	Fanout int
	// CompactPacing is the delay the maintainer inserts between
	// consecutive merges of one pass so background maintenance does not
	// monopolize I/O bandwidth. Zero keeps the default 2ms; negative
	// disables pacing. Close interrupts an in-flight pause.
	CompactPacing time.Duration

	// Metrics, when non-nil, registers the engine's metrics with the
	// registry: CounterFunc mirrors of every Stats counter, gauges over
	// live structures (write-store sizes per shard, view pins, deferred
	// run files, frozen generations), and latency histograms on the hot
	// and background paths (AddRef/RemoveRef/Query/QueryRange, WAL
	// append/flush/batch-size, checkpoint freeze/flush/install,
	// compaction, expiry). Nil disables metrics entirely; the
	// instrumented paths then cost one pointer check and take no
	// timestamps, so experiment results stay byte-identical.
	Metrics *obs.Registry
	// Tracer receives start/end events for every instrumented operation.
	// Both hooks run inline on the operation's goroutine; see obs.Tracer.
	Tracer obs.Tracer
	// SlowOpThreshold enables the built-in slow-op log: operations whose
	// duration meets the threshold are retained in a bounded ring buffer
	// (see Engine.SlowOps). Zero disables it.
	SlowOpThreshold time.Duration
	// SlowOpLogSize is the slow-op ring capacity
	// (obs.DefaultSlowLogSize if zero).
	SlowOpLogSize int
	// MetricsSampleEvery is the hot-op latency sampling period: one
	// AddRef/RemoveRef/Query in every MetricsSampleEvery (rounded up to a
	// power of two; default 32) is timed into its histogram. 1 times every
	// op. Ignored when a tracer is attached — trace events always carry
	// real durations. Counters and background-op histograms are always
	// exact.
	MetricsSampleEvery int
	// DisableIOAttribution turns off purpose-tagged I/O accounting. By
	// default every VFS operation is attributed to the subsystem that
	// issued it (wal, checkpoint, compaction, query, expiry, recovery,
	// manifest) at the cost of a few atomic adds per I/O; see
	// Engine.IOReport and the backlog_io_* metric families. Disabling it
	// also zeroes per-run heat tracking and the write-amplification
	// monitor's device-byte feed.
	DisableIOAttribution bool
	// WriteAmpWindow is the rolling window of the online write-
	// amplification monitor (obs.DefaultWriteAmpWindow if zero). The
	// monitor samples lazily on IOReport/metric scrapes; its resolution
	// is bounded by that cadence.
	WriteAmpWindow time.Duration

	// Retention selects the snapshot-retention policy. RetainAll (the
	// default) changes nothing: records referring only to deleted
	// snapshots are reclaimed by compaction alone. RetainLive enables
	// drop-based expiry end to end — the background maintainer (started
	// even without AutoCompact) runs an Expire pass after every
	// checkpoint, background compaction switches to CP-tiered merging
	// that seals finished Combined windows instead of re-merging them,
	// and queries skip Combined runs entirely below the reclaim horizon.
	Retention RetentionPolicy
}

// RetentionPolicy selects how aggressively the engine reclaims records of
// deleted snapshots; see Options.Retention.
type RetentionPolicy int

const (
	// RetainAll keeps every record until a compaction purges it — the
	// paper's baseline behavior.
	RetainAll RetentionPolicy = iota
	// RetainLive expires records wholesale: runs whose CP window falls
	// entirely below the oldest reachable snapshot are dropped without
	// being read.
	RetainLive
)

// Stats counts engine activity. All counters are cumulative.
type Stats struct {
	RefsAdded      uint64 // AddRef calls
	RefsRemoved    uint64 // RemoveRef calls
	PrunedAdds     uint64 // To entries cancelled by a same-CP AddRef
	PrunedRemoves  uint64 // From entries cancelled by a same-CP RemoveRef
	Checkpoints    uint64
	Compactions    uint64
	RecordsFlushed uint64 // records written to Level-0 runs
	RecordsPurged  uint64 // records dropped by compaction
	Queries        uint64
	Relocations    uint64
	// CompactWriteBytes is the physical bytes written by installed
	// compactions (full and leveled) — the numerator of measured write
	// amplification. Checkpoint flushes are not included.
	CompactWriteBytes uint64
	Expiries          uint64 // Expire passes that dropped at least one run
	RunsExpired       uint64 // runs dropped whole by expiry (never read)
	RecordsExpired    uint64 // records inside runs dropped by expiry
	WALAppends        uint64 // records appended to the write-ahead log
	WALBatches        uint64 // WAL group-commit flushes (one WriteAt+Sync each)
	WALReplayed       uint64 // records replayed from the WAL at Open

	// Checkpoint stall accounting. A checkpoint holds the structural lock
	// exclusively only while freezing the write stores (SwapNanos) and
	// while validating + installing the finished runs (InstallNanos);
	// updates and queries stall for at most those two windows. The
	// run-building I/O between them (FlushNanos) holds no structural lock.
	//
	// Deprecated: these raw cumulative sums remain populated for
	// compatibility, but the per-phase latency histograms
	// (backlog_checkpoint_freeze_ns / _flush_ns / _install_ns, via
	// Options.Metrics) carry the same information with full
	// distributions; prefer them.
	CheckpointSwapNanos    uint64
	CheckpointFlushNanos   uint64
	CheckpointInstallNanos uint64
}

// counters is the internal atomic mirror of Stats; shard-parallel AddRef
// and RemoveRef bump these without taking any engine-wide lock.
type counters struct {
	refsAdded         atomic.Uint64
	refsRemoved       atomic.Uint64
	prunedAdds        atomic.Uint64
	prunedRemoves     atomic.Uint64
	checkpoints       atomic.Uint64
	compactions       atomic.Uint64
	compactConflicts  atomic.Uint64
	autoCompactions   atomic.Uint64
	maintErrors       atomic.Uint64
	recordsFlushed    atomic.Uint64
	recordsPurged     atomic.Uint64
	compactWriteBytes atomic.Uint64
	queries           atomic.Uint64
	relocations       atomic.Uint64
	expiries          atomic.Uint64
	runsExpired       atomic.Uint64
	recordsExpired    atomic.Uint64
	cpSwapNanos       atomic.Uint64
	cpFlushNanos      atomic.Uint64
	cpInstallNanos    atomic.Uint64
}

// writeShard is one hash partition of the write store: a lock plus the
// per-table in-memory trees. A reference with physical block b lives in
// shard mix64(b) % N, so proactive pruning (which pairs an AddRef with a
// same-CP RemoveRef of the same Ref) always finds both entries under one
// shard lock. Queries only read the trees and take the lock shared, so
// concurrent queries on one shard never serialize against each other —
// only against updates to the same shard.
type writeShard struct {
	mu       sync.RWMutex
	from     *memtree.Tree[FromRec]
	to       *memtree.Tree[ToRec]
	combined *memtree.Tree[CombinedRec] // used only by relocation

	// The frozen trees hold the records a running checkpoint is flushing:
	// Checkpoint swaps the active trees here under the exclusive
	// structural lock, builds runs from them with no lock held, and clears
	// them (or merges them back, on error) when it re-acquires the lock.
	// Non-nil only while that flush is in flight. Flush goroutines read
	// them without any lock — they are immutable for the duration: updates
	// go to the fresh active trees, and the only writers (install, restore,
	// relocation's frozenDel bookkeeping) hold the structural lock
	// exclusively, which queries' shared acquisition in pinBlock excludes.
	frozenFrom     *memtree.Tree[FromRec]
	frozenTo       *memtree.Tree[ToRec]
	frozenCombined *memtree.Tree[CombinedRec]
}

// Engine is the Backlog back-reference database.
//
// Concurrency: mu is the structural lock. AddRef and RemoveRef acquire it
// shared and then lock the single shard owning the block, so updates on
// different shards run in parallel. Query and QueryRange acquire it
// shared only long enough to pin an immutable LSM view and snapshot the
// owning shard's write store (active and frozen); all run I/O happens
// against the pinned view with no lock held. RelocateBlock acquires it
// exclusively. Checkpoint acquires it exclusively only twice and briefly:
// to freeze the write stores, and to validate and atomically install the
// flushed runs — the run-building I/O in between holds no structural
// lock, so updates tagged for the next consistency point, queries, and
// relocations all proceed during the flush. Compaction likewise merges
// against a pinned view outside the lock and acquires it exclusively only
// to validate and install, so queries and updates never stall behind a
// running compaction or a flushing checkpoint.
type Engine struct {
	mu      sync.RWMutex
	opts    Options
	vfs     storage.VFS
	catalog Catalog
	db      *lsm.DB
	cache   *btree.Cache

	// cpMu is the checkpoint single-flight guard, always acquired before
	// mu: Checkpoint holds it end to end (including the lock-free flush),
	// and Close and pessimistic (full-lock) compactions take it too, so
	// neither can interleave with the window in which the write stores are
	// frozen but the runs are not yet installed. Optimistic compactions do
	// not need it — they validate their view before installing.
	cpMu sync.Mutex

	shards []*writeShard

	// flushingCP is the consistency point currently being flushed (0 when
	// no checkpoint is in flight), guarded by mu. RelocateBlock uses it to
	// tag its WAL record: records it re-keys out of the frozen trees land
	// in the active trees and only become durable at the NEXT checkpoint,
	// so replay must not consider the relocation covered by this one.
	flushingCP uint64

	// frozenDel records write-store records that RelocateBlock logically
	// deleted out of the frozen trees (per table, keyed by encoded record
	// bytes): the trees themselves are immutable while the flush reads
	// them, so the deletion is applied as a filter — queries skip these
	// records when reading the frozen trees, the error path skips them
	// when merging frozen trees back into the active ones, and a
	// successful install converts them into deletion-vector entries hiding
	// the freshly installed run records. They stay out of the table DV
	// until then so a concurrent compaction cannot clear them before the
	// records they hide exist in any run. Guarded by mu (written under the
	// exclusive lock, read under the shared lock); nil when empty.
	frozenDel map[string]map[string]struct{}

	// wal is the write-ahead log (nil in CheckpointOnly mode). Updaters
	// append under the shared structural lock; Checkpoint truncates under
	// the exclusive lock, which is what lets wal.Truncate assume no
	// append is in flight.
	wal *wal.Log
	// walReplayed counts records replayed at Open.
	walReplayed uint64
	// staleWAL notes that CheckpointOnly-mode Open found and replayed
	// leftover segments from a Buffered/Sync incarnation; the next
	// Checkpoint deletes them.
	staleWAL bool

	// walErrMu guards walErr, the sticky durability error: a WAL append
	// failed, so updates acknowledged since then are NOT crash-durable
	// despite the configured mode. A successful Checkpoint clears it
	// (the updates become durable in the read store).
	walErrMu sync.Mutex
	walErr   error

	// maint is the background maintenance scheduler (nil unless
	// Options.AutoCompact). Checkpoint kicks it; Close stops it before
	// taking the structural lock, so an in-flight background compaction
	// can finish its short install section.
	maint *maintainer

	stats counters

	// ios is the purpose-tagged I/O accountant every VFS operation reports
	// to (nil when Options.DisableIOAttribution); wamp is the rolling
	// write-amplification monitor fed from it at IOReport/scrape time.
	ios  *obs.IOStats
	wamp *obs.WriteAmp

	// obs is the observability state (nil when Options.Metrics, Tracer,
	// and SlowOpThreshold are all unset). Instrumented paths gate every
	// timestamp on this pointer, so disabled observability costs one
	// branch per operation.
	obs *engineObs
}

// Open opens or creates a Backlog database.
func Open(opts Options) (*Engine, error) {
	if opts.VFS == nil {
		return nil, errors.New("core: Options.VFS is required")
	}
	if opts.Catalog == nil {
		return nil, errors.New("core: Options.Catalog is required")
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 32 << 20
	}
	var cache *btree.Cache
	if cacheBytes > 0 {
		cache = btree.NewCacheBytes(cacheBytes)
	}
	bfFromTo := opts.BloomMaxBytes
	if bfFromTo == 0 {
		bfFromTo = 32 << 10
	}
	bfCombined := opts.CombinedBloomMaxBytes
	if bfCombined == 0 {
		bfCombined = 1 << 20
	}
	if opts.Compression != CompressionDelta && opts.Compression != CompressionNone {
		return nil, fmt.Errorf("core: unknown Compression %d", opts.Compression)
	}
	// Observability state is built before the LSM layer so run readers can
	// report decode latency into the page-decode histogram from the start.
	eobs := newEngineObs(opts)
	// I/O attribution wraps the VFS before anything opens a file, so even
	// recovery I/O is accounted. Register must precede Attributed: the
	// wrapper snapshots WantsLatency (set by Register) at wrap time.
	vfs := opts.VFS
	var ios *obs.IOStats
	if !opts.DisableIOAttribution {
		ios = obs.NewIOStats()
		ios.Register(opts.Metrics)
		vfs = storage.Attributed(opts.VFS, ios).Tagged(storage.SrcUnknown)
	}
	if eobs != nil {
		eobs.ios = ios
	}
	lopts := lsm.Options{
		Tables: []lsm.TableSpec{
			{Name: TableFrom, RecordSize: FromRecSize, BloomMaxBytes: bfFromTo, Span: spanFrom},
			{Name: TableTo, RecordSize: ToRecSize, BloomMaxBytes: bfFromTo, Span: spanTo},
			{Name: TableCombined, RecordSize: CombinedSize, BloomMaxBytes: bfCombined,
				Span: spanCombined, IsOverride: isOverrideCombined},
		},
		Partitions:       opts.Partitions,
		PartitionSpan:    opts.PartitionSpan,
		HashPartitioning: opts.HashPartitioning,
		Cache:            cache,
		DisableBloom:     opts.DisableBloom,
		RunFormat:        opts.Compression.runFormat(),
	}
	if eobs != nil {
		lopts.DecodeObserver = eobs.pageDecode.ObserveDuration
	}
	db, err := lsm.Open(vfs, lopts)
	if err != nil {
		return nil, err
	}
	nShards := opts.WriteShards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	shards := make([]*writeShard, nShards)
	for i := range shards {
		shards[i] = &writeShard{
			from:     memtree.New(lessFrom),
			to:       memtree.New(lessTo),
			combined: memtree.New(lessCombined),
		}
	}
	e := &Engine{
		opts:    opts,
		vfs:     vfs,
		catalog: opts.Catalog,
		db:      db,
		cache:   cache,
		shards:  shards,
		ios:     ios,
		wamp:    obs.NewWriteAmp(opts.WriteAmpWindow),
	}
	e.obs = eobs
	if err := e.openWAL(); err != nil {
		return nil, err
	}
	e.registerMetrics(opts.Metrics)
	if opts.AutoCompact || opts.Retention == RetainLive {
		// RetainLive starts the maintainer even without AutoCompact: the
		// expiry pass after each checkpoint is what reclaims dropped
		// snapshots' runs.
		e.maint = newMaintainer(e)
		// A reopened database may already carry more runs than the
		// threshold allows; let the maintainer look immediately.
		e.maint.kickNow()
	}
	return e, nil
}

// expiryEnabled reports whether drop-based expiry (and with it tiered
// background compaction and CP-window query pruning) is active.
func (e *Engine) expiryEnabled() bool { return e.opts.Retention == RetainLive }

// openWAL recovers the write-ahead log tail into the write stores and, in
// Buffered/Sync modes, opens the log for appending. In CheckpointOnly
// mode leftover segments (from a previous Buffered/Sync incarnation) are
// still replayed — silently dropping them would lose acknowledged updates
// on a mere configuration change — and retired at the next Checkpoint.
func (e *Engine) openWAL() error {
	var rec wal.Recovered
	if e.opts.Durability == wal.CheckpointOnly {
		r, err := wal.Recover(e.vfs)
		if err != nil {
			return err
		}
		rec = r
		e.staleWAL = r.Found
	} else {
		wopts := wal.Options{
			Durability:   e.opts.Durability,
			SegmentBytes: e.opts.WALSegmentBytes,
		}
		if e.obs != nil {
			wopts.AppendHist = e.obs.walAppend
			wopts.FlushHist = e.obs.walFlush
			wopts.BatchHist = e.obs.walBatch
		}
		log, r, err := wal.Open(e.vfs, wopts)
		if err != nil {
			return err
		}
		e.wal = log
		rec = r
	}
	// Replay only records the read store does not already cover. Two
	// filters compose. First, position: every record logged before a cut
	// mark was applied to the write stores before that cut's checkpoint
	// froze them, so once the manifest CP has reached the cut's CP, some
	// checkpoint has committed those records into runs — drop everything
	// before the last such cut. This covers records tagged PAST the
	// committing CP (updates that raced a flush and were then re-frozen
	// by a retry), which the CP-tag filter alone would double-apply.
	// Second, CP tags: a crash between a manifest commit and the log
	// retirement it triggers leaves records that are already durable in
	// the read store; their CP tags do not exceed the manifest's, so the
	// tag filter skips them (double-applying an AddRef would flush a
	// duplicate From record).
	committed := e.db.CP()
	records := rec.Records
	for _, c := range rec.Cuts {
		if c.CP <= committed && c.Index <= len(rec.Records) {
			records = rec.Records[c.Index:]
		}
	}
	base := committed
	if rec.MarkCP > base {
		base = rec.MarkCP
	}
	for _, r := range records {
		if r.CP <= base {
			continue
		}
		switch r.Op {
		case wal.OpAddRef:
			e.applyAdd(Ref{Block: r.Block, Inode: r.Inode, Offset: r.Offset, Line: r.Line, Length: r.Length}, r.CP)
		case wal.OpRemoveRef:
			e.applyRemove(Ref{Block: r.Block, Inode: r.Inode, Offset: r.Offset, Line: r.Line, Length: r.Length}, r.CP)
		case wal.OpRelocate:
			if err := e.relocate(r.Block, r.NewBlock); err != nil {
				if e.wal != nil {
					// Release the log this Open will never hand out; a
					// caller retrying Open must not accumulate open
					// segments.
					e.wal.Close()
				}
				return err
			}
		}
		e.walReplayed++
	}
	return nil
}

// shardOf returns the write-store shard owning a block. The hash
// decorrelates the shard index from block-allocation locality so
// sequential writers spread across shards.
func (e *Engine) shardOf(block uint64) *writeShard {
	return e.shards[e.shardIndex(block)]
}

// shardIndex returns the index of the shard owning a block; trace events
// carry it so slow ops can be attributed to a contended shard.
func (e *Engine) shardIndex(block uint64) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(lsm.Mix64(block) % uint64(len(e.shards)))
}

// WriteShards returns the number of write-store shards.
func (e *Engine) WriteShards() int { return len(e.shards) }

// CP returns the last durable consistency point number.
func (e *Engine) CP() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.CP()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		RefsAdded:      e.stats.refsAdded.Load(),
		RefsRemoved:    e.stats.refsRemoved.Load(),
		PrunedAdds:     e.stats.prunedAdds.Load(),
		PrunedRemoves:  e.stats.prunedRemoves.Load(),
		Checkpoints:    e.stats.checkpoints.Load(),
		Compactions:    e.stats.compactions.Load(),
		RecordsFlushed: e.stats.recordsFlushed.Load(),
		RecordsPurged:  e.stats.recordsPurged.Load(),
		Queries:        e.stats.queries.Load(),
		Relocations:    e.stats.relocations.Load(),

		CompactWriteBytes: e.stats.compactWriteBytes.Load(),
		Expiries:          e.stats.expiries.Load(),
		RunsExpired:       e.stats.runsExpired.Load(),
		RecordsExpired:    e.stats.recordsExpired.Load(),
		WALReplayed:       e.walReplayed,

		CheckpointSwapNanos:    e.stats.cpSwapNanos.Load(),
		CheckpointFlushNanos:   e.stats.cpFlushNanos.Load(),
		CheckpointInstallNanos: e.stats.cpInstallNanos.Load(),
	}
	if e.wal != nil {
		ws := e.wal.Stats()
		st.WALAppends = ws.Appends
		st.WALBatches = ws.Batches
	}
	return st
}

// Durability returns the engine's configured durability mode.
func (e *Engine) Durability() wal.Durability { return e.opts.Durability }

// Close releases the engine. In Buffered mode it syncs the write-ahead
// log first, so a clean shutdown preserves every buffered reference for
// replay at the next Open; in Sync mode everything is already durable. In
// CheckpointOnly mode buffered references are discarded, exactly like
// file-system state past the last consistency point. Close returns the
// sticky WAL durability error, if any.
func (e *Engine) Close() error {
	// Stop the background maintainer before taking any lock: a background
	// compaction in flight needs cpMu (pessimistic mode) and the
	// structural lock to install or discard its result, and Close waits
	// for it to finish.
	if e.maint != nil {
		e.maint.close()
	}
	// Serialize against an in-flight checkpoint: closing the log or
	// releasing the engine mid-flush would strand the frozen stores.
	e.cpMu.Lock()
	defer e.cpMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	// e.wal stays set after Close (wal.Log rejects further appends
	// itself): nilling it here would race the unsynchronized reads in
	// Stats, which is documented as safe to call concurrently.
	var err error
	if e.wal != nil {
		err = e.wal.Close()
	}
	if werr := e.WALErr(); err == nil && werr != nil {
		err = werr
	}
	return err
}

// SizeBytes returns the on-disk size of the back-reference database.
func (e *Engine) SizeBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.SizeBytes()
}

// RunCount returns the number of live read-store runs.
func (e *Engine) RunCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.RunCount()
}

// WSLen returns the number of buffered write-store entries (From + To +
// Combined) across all shards, counting both the active trees and any
// frozen trees a running checkpoint is flushing (those records are not
// yet durable, so they are still "buffered").
func (e *Engine) WSLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var n int
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.from.Len() + s.to.Len() + s.combined.Len()
		s.mu.RUnlock()
		if s.frozenFrom != nil {
			n += s.frozenFrom.Len() + s.frozenTo.Len() + s.frozenCombined.Len()
		}
	}
	return n
}

// ClearCaches drops the shared page cache; the query experiments do this
// before every run (Section 6.4).
func (e *Engine) ClearCaches() {
	if e.cache != nil {
		e.cache.Clear()
	}
}

// AddRef records that ref became live at CP cp. If the same reference was
// removed earlier within the same CP interval, the two cancel: the To entry
// is deleted from the write store and the original interval simply
// continues (proactive pruning, Section 5.1). In Buffered/Sync durability
// modes the update is logged before it is applied; in Sync mode AddRef
// returns only after the log record is group-committed to disk.
//
// The cp tag must be greater than the last committed checkpoint number:
// crash recovery treats logged records with cp <= the manifest's CP as
// already flushed and skips them. Consistency-point callers (fsim-style:
// ops tagged N, then Checkpoint(N), then ops tagged N+1) satisfy this
// naturally; callers racing AddRef against Checkpoint must not reuse a CP
// number that may already have committed, or those updates — while
// correctly applied in memory — are not protected by the log.
func (e *Engine) AddRef(ref Ref, cp uint64) {
	if ref.Length == 0 {
		ref.Length = 1
	}
	if o := e.obs; o != nil && o.sampleHot(ref.Block) {
		shard := e.shardIndex(ref.Block)
		start := o.opStart(obs.OpAddRef, shard, ref.Block, cp)
		e.addRef(ref, cp)
		o.opEnd(obs.OpAddRef, shard, ref.Block, cp, start, o.addRef, nil)
		return
	}
	e.addRef(ref, cp)
}

func (e *Engine) addRef(ref Ref, cp uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal != nil {
		if err := e.wal.Append(wal.Record{
			Op: wal.OpAddRef, CP: cp,
			Block: ref.Block, Inode: ref.Inode, Offset: ref.Offset, Line: ref.Line, Length: ref.Length,
		}); err != nil {
			e.noteWALErr(err)
		}
	}
	e.applyAdd(ref, cp)
}

// applyAdd inserts an AddRef into the write store. Callers hold the
// structural lock shared (or have exclusive access during Open replay);
// the owning shard's mutex provides the fine-grained exclusion.
func (e *Engine) applyAdd(ref Ref, cp uint64) {
	e.stats.refsAdded.Add(1)
	s := e.shardOf(ref.Block)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Proactive pruning only consults the active tree: a matching
	// RemoveRef that sits in a frozen tree (a checkpoint flush is reading
	// it, lock-free) cannot be deleted in place, so the From record is
	// inserted instead and the pair cancels at query/compaction time
	// (joinGroup treats from == to as an empty interval).
	if !e.opts.DisablePruning {
		if s.to.Delete(ToRec{Ref: ref, To: cp}) {
			e.stats.prunedAdds.Add(1)
			return
		}
	}
	s.from.Insert(FromRec{Ref: ref, From: cp})
}

// RemoveRef records that ref ceased to be live at CP cp. If the reference
// was added within the same CP interval, both entries are pruned and
// nothing reaches disk. Logged like AddRef in Buffered/Sync modes.
func (e *Engine) RemoveRef(ref Ref, cp uint64) {
	if ref.Length == 0 {
		ref.Length = 1
	}
	if o := e.obs; o != nil && o.sampleHot(ref.Block) {
		shard := e.shardIndex(ref.Block)
		start := o.opStart(obs.OpRemoveRef, shard, ref.Block, cp)
		e.removeRef(ref, cp)
		o.opEnd(obs.OpRemoveRef, shard, ref.Block, cp, start, o.removeRef, nil)
		return
	}
	e.removeRef(ref, cp)
}

func (e *Engine) removeRef(ref Ref, cp uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal != nil {
		if err := e.wal.Append(wal.Record{
			Op: wal.OpRemoveRef, CP: cp,
			Block: ref.Block, Inode: ref.Inode, Offset: ref.Offset, Line: ref.Line, Length: ref.Length,
		}); err != nil {
			e.noteWALErr(err)
		}
	}
	e.applyRemove(ref, cp)
}

// applyRemove is RemoveRef's write-store mutation; see applyAdd for the
// locking contract.
func (e *Engine) applyRemove(ref Ref, cp uint64) {
	e.stats.refsRemoved.Add(1)
	s := e.shardOf(ref.Block)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Like applyAdd, pruning cannot reach into a frozen tree: a RemoveRef
	// whose matching AddRef is mid-flush inserts a To record instead, and
	// the join cancels the pair.
	if !e.opts.DisablePruning {
		if s.from.Delete(FromRec{Ref: ref, From: cp}) {
			e.stats.prunedRemoves.Add(1)
			return
		}
	}
	s.to.Insert(ToRec{Ref: ref, To: cp})
}

// noteWALErr records a durability failure: the write-ahead log could not
// persist a record, so updates since the failure are only as durable as
// CheckpointOnly mode until the next successful Checkpoint (which clears
// the error — everything buffered is then durable in the read store).
func (e *Engine) noteWALErr(err error) {
	e.walErrMu.Lock()
	if e.walErr == nil {
		e.walErr = err
	}
	e.walErrMu.Unlock()
}

// WALErr reports the sticky durability error, if any: non-nil means a log
// append failed and acknowledged updates may not survive a crash until
// the next successful Checkpoint.
func (e *Engine) WALErr() error {
	e.walErrMu.Lock()
	defer e.walErrMu.Unlock()
	return e.walErr
}

// takeWALErr atomically takes and clears the sticky durability error. The
// checkpoint freeze does this: everything the taken error covered is in
// the frozen trees and becomes durable if the checkpoint commits, while
// append failures during the flush concern the next consistency point and
// accumulate afresh.
func (e *Engine) takeWALErr() error {
	e.walErrMu.Lock()
	defer e.walErrMu.Unlock()
	err := e.walErr
	e.walErr = nil
	return err
}

// ErrStaleCP is returned (wrapped) by Checkpoint when the given CP number
// does not exceed the last committed one. Committing it would roll the
// manifest CP backwards and un-skip already-durable write-ahead-log
// records in the crash-replay filter, double-applying them.
var ErrStaleCP = errors.New("core: checkpoint CP not newer than committed CP")

// Checkpoint flushes the write stores to new Level-0 runs and commits them
// together with the CP number. The structural lock is held exclusively
// only twice, briefly: to freeze every shard's trees (swapping in fresh
// active trees), and to validate and atomically install the finished runs
// (one manifest edit covering every shard). All run-building I/O happens
// between the two with no structural lock held, each shard sorting and
// writing its own runs in parallel, so updates tagged cp+1, queries, and
// relocations proceed while the flush runs. cp must be greater than the
// last committed checkpoint number. Concurrent Checkpoint calls
// serialize. After Checkpoint returns, all references up to cp are
// durable and the frozen stores are empty. On error the frozen records
// are merged back into the write stores, so the caller can retry or
// replay.
func (e *Engine) Checkpoint(cp uint64) error {
	if o := e.obs; o != nil {
		start := o.opStart(obs.OpCheckpoint, -1, 0, cp)
		err := e.checkpoint(cp)
		o.opEnd(obs.OpCheckpoint, -1, 0, cp, start, nil, err)
		return err
	}
	return e.checkpoint(cp)
}

func (e *Engine) checkpoint(cp uint64) error {
	e.cpMu.Lock()
	defer e.cpMu.Unlock()

	// Phase 1 — freeze: swap every shard's trees, snapshot the
	// deletion-vector state this CP must persist, and cut the WAL so
	// appends racing the flush land in segments that survive retirement.
	start := time.Now()
	e.mu.Lock()
	if committed := e.db.CP(); cp <= committed {
		e.mu.Unlock()
		return fmt.Errorf("%w: Checkpoint(%d), committed CP is %d", ErrStaleCP, cp, committed)
	}
	for _, s := range e.shards {
		s.frozenFrom, s.from = s.from, memtree.New(lessFrom)
		s.frozenTo, s.to = s.to, memtree.New(lessTo)
		s.frozenCombined, s.combined = s.combined, memtree.New(lessCombined)
	}
	e.flushingCP = cp
	// Relocations hide the old block's run records through in-memory
	// deletion vectors; this commit must persist vectors dirtied before
	// the freeze (their re-keyed write-store records just froze with
	// them). Without that, a crash after the checkpoint resurrects the
	// relocated-away records next to their transplanted copies — and WAL
	// replay cannot re-hide them, because it rightly skips relocate
	// records the committed checkpoint already covers. The vectors are
	// captured as copy-on-write snapshots: entries added by a relocation
	// DURING the flush pair with records in the new active trees and must
	// ride the next checkpoint instead.
	type dvCapture struct {
		dv  map[string]struct{}
		gen uint64
	}
	dvSnaps := map[string]dvCapture{}
	for _, table := range []string{TableFrom, TableTo, TableCombined} {
		if t := e.db.Table(table); t.DVDirty() {
			dvSnaps[table] = dvCapture{dv: t.DVShare(), gen: t.DVGen()}
		}
	}
	prevWALErr := e.takeWALErr()
	cut := -1
	if e.wal != nil {
		if c, err := e.wal.Cut(cp); err != nil {
			// The log cannot accept the freeze boundary; appends during
			// the flush will fail and note their own errors. The old
			// segments stay tracked for a later retirement.
			e.noteWALErr(err)
		} else {
			cut = c
		}
	}
	e.mu.Unlock()
	d := time.Since(start)
	e.stats.cpSwapNanos.Add(uint64(d))
	if e.obs != nil {
		e.obs.cpFreeze.ObserveDuration(d)
	}

	// On any failure: merge the frozen records back into the active trees
	// and restore the durability error taken at the freeze, so "on error,
	// retry or replay" still holds.
	restore := func(results []cpFlushResult, err error) error {
		e.mu.Lock()
		for _, res := range results {
			for _, ref := range res.refs {
				e.db.DiscardRun(ref)
			}
		}
		e.restoreFrozenLocked()
		e.mu.Unlock()
		if prevWALErr != nil {
			e.noteWALErr(prevWALErr)
		}
		return err
	}

	// Phase 2 — flush: build runs from the frozen trees with no
	// structural lock held. The frozen trees are immutable for the
	// duration, and run builders allocate file IDs through lsm's own
	// lock, so this runs concurrently with updates, queries, relocations,
	// and optimistic compaction installs.
	start = time.Now()
	results := make([]cpFlushResult, len(e.shards))
	var g errgroup.Group
	for i, s := range e.shards {
		i, s := i, s
		g.Go(func() error {
			res := &results[i]
			n, err := flushWS(e.db, &res.refs, TableFrom, cp, s.frozenFrom, func(r FromRec) (uint64, []byte) {
				return r.Block, EncodeFrom(r)
			})
			if err != nil {
				return err
			}
			res.count += n
			n, err = flushWS(e.db, &res.refs, TableTo, cp, s.frozenTo, func(r ToRec) (uint64, []byte) {
				return r.Block, EncodeTo(r)
			})
			if err != nil {
				return err
			}
			res.count += n
			n, err = flushWS(e.db, &res.refs, TableCombined, cp, s.frozenCombined, func(r CombinedRec) (uint64, []byte) {
				return r.Block, EncodeCombined(r)
			})
			if err != nil {
				return err
			}
			res.count += n
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		// Shards that finished runs before another shard failed leave
		// complete but uncommitted files behind; drop them now instead of
		// waiting for orphan collection at the next Open.
		return restore(results, err)
	}
	d = time.Since(start)
	e.stats.cpFlushNanos.Add(uint64(d))
	if e.obs != nil {
		e.obs.cpFlush.ObserveDuration(d)
	}

	// Phase 3 — install: re-acquire the lock, commit every run plus the
	// captured deletion-vector snapshots and the CP atomically, and clear
	// the frozen stores.
	start = time.Now()
	e.mu.Lock()
	edit := e.db.NewEdit().SetSource(storage.SrcCheckpoint).SetCP(cp)
	var flushed uint64
	for _, res := range results {
		for _, ref := range res.refs {
			edit.AddRun(ref)
		}
		flushed += res.count
	}
	for table, snap := range dvSnaps {
		edit.FlushDVAsOf(table, snap.dv, snap.gen)
	}
	// AddRun transferred ownership of the run files: a Commit that fails
	// before its commit point removes them itself.
	if err := edit.Commit(); err != nil {
		e.restoreFrozenLocked()
		e.mu.Unlock()
		if prevWALErr != nil {
			e.noteWALErr(prevWALErr)
		}
		return err
	}
	for _, s := range e.shards {
		s.frozenFrom, s.frozenTo, s.frozenCombined = nil, nil, nil
	}
	// Records a relocation deleted out of the frozen trees now exist in
	// the installed runs; hide them through the table deletion vectors.
	// The entries are persisted by the NEXT checkpoint (the vectors are
	// dirty now), together with the re-keyed records waiting in the
	// active trees — and should we crash before then, the relocation's
	// WAL record is tagged past this CP and replays the whole
	// transplantation against these very runs. Compaction cannot destroy
	// them in the window: it defers whenever a deletion vector is dirty
	// (see compactAttempt).
	for table, dels := range e.frozenDel {
		t := e.db.Table(table)
		for rec := range dels {
			t.DeleteRecord([]byte(rec))
		}
	}
	e.frozenDel = nil
	e.flushingCP = 0
	e.mu.Unlock()
	d = time.Since(start)
	e.stats.cpInstallNanos.Add(uint64(d))
	if e.obs != nil {
		e.obs.cpInstall.ObserveDuration(d)
	}
	e.stats.checkpoints.Add(1)
	e.stats.recordsFlushed.Add(flushed)

	// Everything the log guarded up to the cut is now durable in the read
	// store: retire those segments. Appends that landed during the flush
	// sit past the cut and keep their log protection. A failure HERE must
	// not be returned: the checkpoint itself committed, so the documented
	// "on error, retry or replay" contract no longer applies; unremoved
	// segments replay as no-ops (recovery drops everything before the
	// last cut whose CP the manifest covers, and CP-tag filtering skips
	// the rest) and the failure is recorded as the sticky durability
	// error instead.
	if e.wal != nil {
		if cut >= 0 {
			if err := e.wal.Retire(cut); err != nil {
				e.noteWALErr(err)
			}
		}
	} else if e.staleWAL {
		// Removing stale segments is part of this checkpoint's work.
		if err := wal.RemoveAll(storage.TagVFS(e.vfs, storage.SrcCheckpoint)); err == nil {
			e.staleWAL = false
		}
		// On failure staleWAL stays set; the next checkpoint retries.
	}

	// The checkpoint added Level-0 runs; wake the background maintainer
	// to check per-partition run counts (non-blocking: the kick channel
	// holds one pending wakeup).
	if e.maint != nil {
		e.maint.kickNow()
	}
	return nil
}

// cpFlushResult collects one shard's flush output.
type cpFlushResult struct {
	refs  []lsm.RunRef
	count uint64
}

// restoreFrozenLocked merges every shard's frozen trees back into its
// active trees after a failed flush or install, skipping records a
// concurrent relocation deleted (their re-keyed copies already live in
// the active trees). Callers hold the structural lock exclusively.
func (e *Engine) restoreFrozenLocked() {
	delFrom := e.frozenDel[TableFrom]
	delTo := e.frozenDel[TableTo]
	delComb := e.frozenDel[TableCombined]
	for _, s := range e.shards {
		if s.frozenFrom == nil {
			continue
		}
		s.frozenFrom.Ascend(func(r FromRec) bool {
			if len(delFrom) > 0 {
				if _, dead := delFrom[string(EncodeFrom(r))]; dead {
					return true
				}
			}
			s.from.Insert(r)
			return true
		})
		s.frozenTo.Ascend(func(r ToRec) bool {
			if len(delTo) > 0 {
				if _, dead := delTo[string(EncodeTo(r))]; dead {
					return true
				}
			}
			s.to.Insert(r)
			return true
		})
		s.frozenCombined.Ascend(func(r CombinedRec) bool {
			if len(delComb) > 0 {
				if _, dead := delComb[string(EncodeCombined(r))]; dead {
					return true
				}
			}
			s.combined.Insert(r)
			return true
		})
		s.frozenFrom, s.frozenTo, s.frozenCombined = nil, nil, nil
	}
	e.frozenDel = nil
	e.flushingCP = 0
}

// flushWS writes one (frozen) write-store tree for one table into
// per-partition Level-0 runs. Run refs are appended to *refs only in the
// Finish loop at the end — while records stream in, partial runs live in
// the builders and are cleaned up via Abort on error — so after a
// successful return *refs holds every finished run, and after an error it
// holds only runs finished by earlier flushWS calls on the same slice
// (which the caller must discard). The tree iterates in ascending record
// order, so each partition's builder receives a sorted stream; builders
// stay open per partition, which keeps one run per (shard, partition)
// even when hash partitioning interleaves partition visits. Called with
// no structural lock held: the tree is frozen (immutable) and run
// builders synchronize file-ID allocation internally.
func flushWS[T any](db *lsm.DB, refs *[]lsm.RunRef, table string, cp uint64,
	ws *memtree.Tree[T], enc func(T) (uint64, []byte)) (uint64, error) {
	if ws.Len() == 0 {
		return 0, nil
	}
	var (
		builders = map[int]*lsm.RunBuilder{}
		count    uint64
		retErr   error
	)
	abortAll := func() {
		for _, b := range builders {
			b.Abort()
		}
	}
	ws.Ascend(func(item T) bool {
		block, rec := enc(item)
		p := db.PartitionOf(block)
		b := builders[p]
		if b == nil {
			nb, err := db.NewRunBuilder(table, p, 0, cp, storage.SrcCheckpoint)
			if err != nil {
				retErr = err
				return false
			}
			builders[p] = nb
			b = nb
		}
		if err := b.Add(rec); err != nil {
			retErr = err
			return false
		}
		count++
		return true
	})
	if retErr != nil {
		abortAll()
		return 0, retErr
	}
	parts := make([]int, 0, len(builders))
	for p := range builders {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for i, p := range parts {
		ref, ok, err := builders[p].Finish()
		if err != nil {
			// Abort the failing builder too: its partial file would
			// otherwise linger as an orphan until the next Open.
			builders[p].Abort()
			for _, q := range parts[i+1:] {
				builders[q].Abort()
			}
			return 0, err
		}
		if ok {
			*refs = append(*refs, ref)
		}
	}
	return count, nil
}

// RelocateBlock transplants every back reference of oldBlock onto
// newBlock: run records for oldBlock enter the deletion vectors (paper
// Section 5.1) and equivalent records keyed by newBlock are inserted into
// the write stores, becoming durable at the next Checkpoint. Block
// relocation utilities (defragmentation, volume shrinking) call this after
// moving the physical data and rewriting the file-system pointers.
func (e *Engine) RelocateBlock(oldBlock, newBlock uint64) error {
	if o := e.obs; o != nil {
		start := o.opStart(obs.OpRelocate, e.shardIndex(oldBlock), oldBlock, 0)
		err := e.relocateBlock(oldBlock, newBlock)
		o.opEnd(obs.OpRelocate, e.shardIndex(oldBlock), oldBlock, 0, start, o.relocate, err)
		return err
	}
	return e.relocateBlock(oldBlock, newBlock)
}

func (e *Engine) relocateBlock(oldBlock, newBlock uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if oldBlock == newBlock {
		return nil
	}
	if e.wal != nil {
		// Tagged with the next CP number: the transplanted records become
		// durable at the checkpoint that flushes them, so replay skips
		// the record once that checkpoint has committed. While a
		// checkpoint flush is in flight the transplanted records land in
		// the NEW active trees and flush only after the in-flight CP, so
		// the tag must clear that CP too.
		tag := e.db.CP() + 1
		if e.flushingCP != 0 {
			tag = e.flushingCP + 1
		}
		if err := e.wal.Append(wal.Record{
			Op: wal.OpRelocate, CP: tag, Block: oldBlock, NewBlock: newBlock,
		}); err != nil {
			e.noteWALErr(err)
		}
	}
	return e.relocate(oldBlock, newBlock)
}

// relocate is RelocateBlock's mutation, shared with WAL replay. Callers
// hold the structural lock exclusively (or have exclusive access during
// Open), which excludes every shared holder, so both shards' active trees
// are safe to touch without their shard mutexes. Frozen trees (a
// checkpoint flush in flight) are never mutated — the flush reads them
// lock-free — so records found there are logically deleted through
// frozenDel and re-keyed into the active trees; see frozenDel for how
// queries, the checkpoint error path, and the install handle them.
func (e *Engine) relocate(oldBlock, newBlock uint64) error {
	e.stats.relocations.Add(1)

	src := e.shardOf(oldBlock)
	dst := e.shardOf(newBlock)

	// Run records: hide via deletion vectors, reinsert re-keyed.
	fromTbl := e.db.Table(TableFrom)
	var err error
	collect := func(tbl *lsm.Table, each func(rec []byte)) error {
		var recs [][]byte
		if err := tbl.CollectBlock(oldBlock, func(rec []byte) bool {
			recs = append(recs, append([]byte(nil), rec...))
			return true
		}); err != nil {
			return err
		}
		for _, rec := range recs {
			tbl.DeleteRecord(rec)
			each(rec)
		}
		return nil
	}
	err = collect(fromTbl, func(rec []byte) {
		r := DecodeFrom(rec)
		r.Block = newBlock
		dst.from.Insert(r)
	})
	if err != nil {
		return err
	}
	err = collect(e.db.Table(TableTo), func(rec []byte) {
		r := DecodeTo(rec)
		r.Block = newBlock
		dst.to.Insert(r)
	})
	if err != nil {
		return err
	}
	err = collect(e.db.Table(TableCombined), func(rec []byte) {
		r := DecodeCombined(rec)
		r.Block = newBlock
		dst.combined.Insert(r)
	})
	if err != nil {
		return err
	}

	// Write-store records: re-key from the old block's shard into the new
	// block's shard.
	rekeyFrom := collectWSFrom(src.from, oldBlock)
	for _, r := range rekeyFrom {
		src.from.Delete(r)
		r.Block = newBlock
		dst.from.Insert(r)
	}
	rekeyTo := collectWSTo(src.to, oldBlock)
	for _, r := range rekeyTo {
		src.to.Delete(r)
		r.Block = newBlock
		dst.to.Insert(r)
	}
	var rekeyC []CombinedRec
	src.combined.Scan(CombinedRec{Ref: Ref{Block: oldBlock}}, func(r CombinedRec) bool {
		if r.Block != oldBlock {
			return false
		}
		rekeyC = append(rekeyC, r)
		return true
	})
	for _, r := range rekeyC {
		src.combined.Delete(r)
		r.Block = newBlock
		dst.combined.Insert(r)
	}

	// Frozen records (mid-flush): logically delete via frozenDel and
	// re-key into the active trees of the destination shard.
	if src.frozenFrom != nil {
		for _, r := range collectWSFrom(src.frozenFrom, oldBlock) {
			e.frozenDelAdd(TableFrom, EncodeFrom(r))
			r.Block = newBlock
			dst.from.Insert(r)
		}
		for _, r := range collectWSTo(src.frozenTo, oldBlock) {
			e.frozenDelAdd(TableTo, EncodeTo(r))
			r.Block = newBlock
			dst.to.Insert(r)
		}
		var frozenC []CombinedRec
		src.frozenCombined.Scan(CombinedRec{Ref: Ref{Block: oldBlock}}, func(r CombinedRec) bool {
			if r.Block != oldBlock {
				return false
			}
			frozenC = append(frozenC, r)
			return true
		})
		for _, r := range frozenC {
			e.frozenDelAdd(TableCombined, EncodeCombined(r))
			r.Block = newBlock
			dst.combined.Insert(r)
		}
	}
	return nil
}

// frozenDelAdd records the logical deletion of a frozen-tree record.
// Callers hold the structural lock exclusively.
func (e *Engine) frozenDelAdd(table string, rec []byte) {
	if e.frozenDel == nil {
		e.frozenDel = map[string]map[string]struct{}{}
	}
	m := e.frozenDel[table]
	if m == nil {
		m = map[string]struct{}{}
		e.frozenDel[table] = m
	}
	m[string(rec)] = struct{}{}
}

func collectWSFrom(ws *memtree.Tree[FromRec], block uint64) []FromRec {
	var out []FromRec
	ws.Scan(FromRec{Ref: Ref{Block: block}}, func(r FromRec) bool {
		if r.Block != block {
			return false
		}
		out = append(out, r)
		return true
	})
	return out
}

func collectWSTo(ws *memtree.Tree[ToRec], block uint64) []ToRec {
	var out []ToRec
	ws.Scan(ToRec{Ref: Ref{Block: block}}, func(r ToRec) bool {
		if r.Block != block {
			return false
		}
		out = append(out, r)
		return true
	})
	return out
}

// RunInfos returns metadata for every live run, including each run's
// consistency-point window — what backlogctl's per-partition stats print.
func (e *Engine) RunInfos() []lsm.RunInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.RunInfos()
}

// Catalog returns the engine's snapshot catalog.
func (e *Engine) Catalog() Catalog { return e.catalog }

// DB exposes the underlying LSM store for tests and tooling.
func (e *Engine) DB() *lsm.DB { return e.db }

// VFS returns the engine's filesystem — the attributed wrapper when I/O
// attribution is on — so callers layering their own persistence next to
// the engine (the catalog) can tag their I/O into the same accounting.
func (e *Engine) VFS() storage.VFS { return e.vfs }
