package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/memtree"
	"github.com/backlogfs/backlog/internal/storage"
)

// Options configures an Engine.
type Options struct {
	// VFS is where the back-reference database lives. Required.
	VFS storage.VFS
	// Catalog supplies snapshot topology for masking, inheritance
	// expansion, and purging. Required.
	Catalog Catalog
	// CacheBytes sizes the shared page cache (default 32 MB, the paper's
	// micro-benchmark configuration). Negative disables caching.
	CacheBytes int64
	// Partitions is the number of block-range partitions (default 1).
	Partitions int
	// PartitionSpan is the number of blocks per partition (required when
	// Partitions > 1 unless HashPartitioning is set).
	PartitionSpan uint64
	// HashPartitioning routes blocks to partitions by hash instead of by
	// contiguous range (Section 5.3's alternative scheme).
	HashPartitioning bool
	// BloomMaxBytes caps From/To run filters (default 32 KB).
	BloomMaxBytes int
	// CombinedBloomMaxBytes caps Combined run filters (default 1 MB).
	CombinedBloomMaxBytes int
	// DisablePruning turns off same-CP proactive pruning (ablation).
	DisablePruning bool
	// DisableBloom makes queries consult every run regardless of its
	// Bloom filter (ablation).
	DisableBloom bool
}

// Stats counts engine activity. All counters are cumulative.
type Stats struct {
	RefsAdded      uint64 // AddRef calls
	RefsRemoved    uint64 // RemoveRef calls
	PrunedAdds     uint64 // To entries cancelled by a same-CP AddRef
	PrunedRemoves  uint64 // From entries cancelled by a same-CP RemoveRef
	Checkpoints    uint64
	Compactions    uint64
	RecordsFlushed uint64 // records written to Level-0 runs
	RecordsPurged  uint64 // records dropped by compaction
	Queries        uint64
	Relocations    uint64
}

// Engine is the Backlog back-reference database.
type Engine struct {
	mu      sync.Mutex
	opts    Options
	vfs     storage.VFS
	catalog Catalog
	db      *lsm.DB
	cache   *btree.Cache

	wsFrom     *memtree.Tree[FromRec]
	wsTo       *memtree.Tree[ToRec]
	wsCombined *memtree.Tree[CombinedRec] // used only by relocation

	stats Stats
}

// Open opens or creates a Backlog database.
func Open(opts Options) (*Engine, error) {
	if opts.VFS == nil {
		return nil, errors.New("core: Options.VFS is required")
	}
	if opts.Catalog == nil {
		return nil, errors.New("core: Options.Catalog is required")
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 32 << 20
	}
	var cache *btree.Cache
	if cacheBytes > 0 {
		cache = btree.NewCacheBytes(cacheBytes)
	}
	bfFromTo := opts.BloomMaxBytes
	if bfFromTo == 0 {
		bfFromTo = 32 << 10
	}
	bfCombined := opts.CombinedBloomMaxBytes
	if bfCombined == 0 {
		bfCombined = 1 << 20
	}
	db, err := lsm.Open(opts.VFS, lsm.Options{
		Tables: []lsm.TableSpec{
			{Name: TableFrom, RecordSize: FromRecSize, BloomMaxBytes: bfFromTo},
			{Name: TableTo, RecordSize: ToRecSize, BloomMaxBytes: bfFromTo},
			{Name: TableCombined, RecordSize: CombinedSize, BloomMaxBytes: bfCombined},
		},
		Partitions:       opts.Partitions,
		PartitionSpan:    opts.PartitionSpan,
		HashPartitioning: opts.HashPartitioning,
		Cache:            cache,
		DisableBloom:     opts.DisableBloom,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{
		opts:       opts,
		vfs:        opts.VFS,
		catalog:    opts.Catalog,
		db:         db,
		cache:      cache,
		wsFrom:     memtree.New(lessFrom),
		wsTo:       memtree.New(lessTo),
		wsCombined: memtree.New(lessCombined),
	}, nil
}

// CP returns the last durable consistency point number.
func (e *Engine) CP() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db.CP()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// SizeBytes returns the on-disk size of the back-reference database.
func (e *Engine) SizeBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db.SizeBytes()
}

// RunCount returns the number of live read-store runs.
func (e *Engine) RunCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db.RunCount()
}

// WSLen returns the number of buffered write-store entries (From + To +
// Combined).
func (e *Engine) WSLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wsFrom.Len() + e.wsTo.Len() + e.wsCombined.Len()
}

// ClearCaches drops the shared page cache; the query experiments do this
// before every run (Section 6.4).
func (e *Engine) ClearCaches() {
	if e.cache != nil {
		e.cache.Clear()
	}
}

// AddRef records that ref became live at CP cp. If the same reference was
// removed earlier within the same CP interval, the two cancel: the To entry
// is deleted from the write store and the original interval simply
// continues (proactive pruning, Section 5.1).
func (e *Engine) AddRef(ref Ref, cp uint64) {
	if ref.Length == 0 {
		ref.Length = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.RefsAdded++
	if !e.opts.DisablePruning {
		if e.wsTo.Delete(ToRec{Ref: ref, To: cp}) {
			e.stats.PrunedAdds++
			return
		}
	}
	e.wsFrom.Insert(FromRec{Ref: ref, From: cp})
}

// RemoveRef records that ref ceased to be live at CP cp. If the reference
// was added within the same CP interval, both entries are pruned and
// nothing reaches disk.
func (e *Engine) RemoveRef(ref Ref, cp uint64) {
	if ref.Length == 0 {
		ref.Length = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.RefsRemoved++
	if !e.opts.DisablePruning {
		if e.wsFrom.Delete(FromRec{Ref: ref, From: cp}) {
			e.stats.PrunedRemoves++
			return
		}
	}
	e.wsTo.Insert(ToRec{Ref: ref, To: cp})
}

// Checkpoint flushes the write stores to new Level-0 runs and commits them
// together with the CP number. After Checkpoint returns, all references up
// to cp are durable. The write stores are empty afterwards.
func (e *Engine) Checkpoint(cp uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	edit := e.db.NewEdit().SetCP(cp)

	flushed, err := flushWS(e.db, edit, TableFrom, cp, e.wsFrom, func(r FromRec) (uint64, []byte) {
		return r.Block, EncodeFrom(r)
	})
	if err != nil {
		return err
	}
	n2, err := flushWS(e.db, edit, TableTo, cp, e.wsTo, func(r ToRec) (uint64, []byte) {
		return r.Block, EncodeTo(r)
	})
	if err != nil {
		return err
	}
	n3, err := flushWS(e.db, edit, TableCombined, cp, e.wsCombined, func(r CombinedRec) (uint64, []byte) {
		return r.Block, EncodeCombined(r)
	})
	if err != nil {
		return err
	}
	if err := edit.Commit(); err != nil {
		return err
	}
	e.wsFrom.Clear()
	e.wsTo.Clear()
	e.wsCombined.Clear()
	e.stats.Checkpoints++
	e.stats.RecordsFlushed += flushed + n2 + n3
	return nil
}

// flushWS writes one table's write store into per-partition Level-0 runs,
// appending AddRun entries to edit. The tree iterates in ascending record
// order, and partition boundaries are ascending in block, so each
// partition's builder receives a sorted stream.
func flushWS[T any](db *lsm.DB, edit *lsm.Edit, table string, cp uint64,
	ws *memtree.Tree[T], enc func(T) (uint64, []byte)) (uint64, error) {
	if ws.Len() == 0 {
		return 0, nil
	}
	var (
		builder *lsm.RunBuilder
		curPart = -1
		count   uint64
		retErr  error
	)
	finish := func() bool {
		if builder == nil {
			return true
		}
		ref, ok, err := builder.Finish()
		if err != nil {
			retErr = err
			return false
		}
		if ok {
			edit.AddRun(ref)
		}
		builder = nil
		return true
	}
	ws.Ascend(func(item T) bool {
		block, rec := enc(item)
		p := db.PartitionOf(block)
		if p != curPart {
			if !finish() {
				return false
			}
			b, err := db.NewRunBuilder(table, p, 0, cp)
			if err != nil {
				retErr = err
				return false
			}
			builder, curPart = b, p
		}
		if err := builder.Add(rec); err != nil {
			retErr = err
			return false
		}
		count++
		return true
	})
	if retErr != nil {
		if builder != nil {
			builder.Abort()
		}
		return 0, retErr
	}
	if !finish() {
		return 0, retErr
	}
	return count, nil
}

// RelocateBlock transplants every back reference of oldBlock onto
// newBlock: run records for oldBlock enter the deletion vectors (paper
// Section 5.1) and equivalent records keyed by newBlock are inserted into
// the write stores, becoming durable at the next Checkpoint. Block
// relocation utilities (defragmentation, volume shrinking) call this after
// moving the physical data and rewriting the file-system pointers.
func (e *Engine) RelocateBlock(oldBlock, newBlock uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if oldBlock == newBlock {
		return nil
	}
	e.stats.Relocations++

	// Run records: hide via deletion vectors, reinsert re-keyed.
	fromTbl := e.db.Table(TableFrom)
	var err error
	collect := func(tbl *lsm.Table, each func(rec []byte)) error {
		var recs [][]byte
		if err := tbl.CollectBlock(oldBlock, func(rec []byte) bool {
			recs = append(recs, append([]byte(nil), rec...))
			return true
		}); err != nil {
			return err
		}
		for _, rec := range recs {
			tbl.DeleteRecord(rec)
			each(rec)
		}
		return nil
	}
	err = collect(fromTbl, func(rec []byte) {
		r := DecodeFrom(rec)
		r.Block = newBlock
		e.wsFrom.Insert(r)
	})
	if err != nil {
		return err
	}
	err = collect(e.db.Table(TableTo), func(rec []byte) {
		r := DecodeTo(rec)
		r.Block = newBlock
		e.wsTo.Insert(r)
	})
	if err != nil {
		return err
	}
	err = collect(e.db.Table(TableCombined), func(rec []byte) {
		r := DecodeCombined(rec)
		r.Block = newBlock
		e.wsCombined.Insert(r)
	})
	if err != nil {
		return err
	}

	// Write-store records: re-key in place.
	rekeyFrom := collectWSFrom(e.wsFrom, oldBlock)
	for _, r := range rekeyFrom {
		e.wsFrom.Delete(r)
		r.Block = newBlock
		e.wsFrom.Insert(r)
	}
	rekeyTo := collectWSTo(e.wsTo, oldBlock)
	for _, r := range rekeyTo {
		e.wsTo.Delete(r)
		r.Block = newBlock
		e.wsTo.Insert(r)
	}
	var rekeyC []CombinedRec
	e.wsCombined.Scan(CombinedRec{Ref: Ref{Block: oldBlock}}, func(r CombinedRec) bool {
		if r.Block != oldBlock {
			return false
		}
		rekeyC = append(rekeyC, r)
		return true
	})
	for _, r := range rekeyC {
		e.wsCombined.Delete(r)
		r.Block = newBlock
		e.wsCombined.Insert(r)
	}
	return nil
}

func collectWSFrom(ws *memtree.Tree[FromRec], block uint64) []FromRec {
	var out []FromRec
	ws.Scan(FromRec{Ref: Ref{Block: block}}, func(r FromRec) bool {
		if r.Block != block {
			return false
		}
		out = append(out, r)
		return true
	})
	return out
}

func collectWSTo(ws *memtree.Tree[ToRec], block uint64) []ToRec {
	var out []ToRec
	ws.Scan(ToRec{Ref: Ref{Block: block}}, func(r ToRec) bool {
		if r.Block != block {
			return false
		}
		out = append(out, r)
		return true
	})
	return out
}

// Catalog returns the engine's snapshot catalog.
func (e *Engine) Catalog() Catalog { return e.catalog }

// DB exposes the underlying LSM store for tests and tooling.
func (e *Engine) DB() *lsm.DB { return e.db }

var _ = fmt.Sprintf
