package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := FromRec{Ref: Ref{Block: 100, Inode: 2, Offset: 0, Line: 0, Length: 1}, From: 4}
	if got := DecodeFrom(EncodeFrom(f)); got != f {
		t.Fatalf("From round trip: %+v", got)
	}
	to := ToRec{Ref: Ref{Block: 101, Inode: 2, Offset: 1, Line: 0, Length: 1}, To: 7}
	if got := DecodeTo(EncodeTo(to)); got != to {
		t.Fatalf("To round trip: %+v", got)
	}
	c := CombinedRec{Ref: Ref{Block: 103, Inode: 4, Offset: 0, Line: 3, Length: 2}, From: 10, To: 12}
	if got := DecodeCombined(EncodeCombined(c)); got != c {
		t.Fatalf("Combined round trip: %+v", got)
	}
}

func TestRecordSizes(t *testing.T) {
	if len(EncodeFrom(FromRec{})) != FromRecSize {
		t.Fatal("From record size")
	}
	if len(EncodeTo(ToRec{})) != ToRecSize {
		t.Fatal("To record size")
	}
	if len(EncodeCombined(CombinedRec{})) != CombinedSize {
		t.Fatal("Combined record size")
	}
}

// TestEncodingOrderMatchesComparator is the property that makes the on-disk
// format work: bytes.Compare on encodings must equal the in-memory field
// comparators.
func TestEncodingOrderMatchesComparator(t *testing.T) {
	norm := func(v uint64) uint64 { return v % 7 } // force collisions
	f := func(a, b FromRec) bool {
		a.Block, b.Block = norm(a.Block), norm(b.Block)
		a.Inode, b.Inode = norm(a.Inode), norm(b.Inode)
		a.Offset, b.Offset = norm(a.Offset), norm(b.Offset)
		a.Line, b.Line = norm(a.Line), norm(b.Line)
		a.Length, b.Length = norm(a.Length), norm(b.Length)
		a.From, b.From = norm(a.From), norm(b.From)
		byteLess := bytes.Compare(EncodeFrom(a), EncodeFrom(b)) < 0
		return byteLess == lessFrom(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b CombinedRec) bool {
		a.Block, b.Block = norm(a.Block), norm(b.Block)
		a.From, b.From = norm(a.From), norm(b.From)
		a.To, b.To = norm(a.To), norm(b.To)
		byteLess := bytes.Compare(EncodeCombined(a), EncodeCombined(b)) < 0
		return byteLess == lessCombined(a, b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinGroupPaperExample(t *testing.T) {
	// Section 4.2.1: block 103 of inode 4 allocated at 10, truncated at
	// 12, reallocated at 16, removed at 20; later allocated to inode 5 at
	// 30 (separate group).
	ivs := joinGroup([]uint64{10, 16}, []uint64{12, 20})
	want := []interval{{from: 10, to: 12}, {from: 16, to: 20}}
	if len(ivs) != len(want) {
		t.Fatalf("join = %+v", ivs)
	}
	ivs = dedupeIntervals(ivs)
	for i := range want {
		if ivs[i].from != want[i].from || ivs[i].to != want[i].to {
			t.Fatalf("join[%d] = %+v, want %+v", i, ivs[i], want[i])
		}
	}

	// The third From (inode 5) has no To: joins implicit infinity.
	ivs = joinGroup([]uint64{30}, nil)
	if len(ivs) != 1 || ivs[0].from != 30 || ivs[0].to != Infinity {
		t.Fatalf("open join = %+v", ivs)
	}

	// An unmatched To joins the implicit from = 0 (clone override,
	// Section 4.2.2).
	ivs = joinGroup(nil, []uint64{43})
	if len(ivs) != 1 || ivs[0].from != 0 || ivs[0].to != 43 {
		t.Fatalf("override join = %+v", ivs)
	}
}

func TestJoinGroupMixedOverride(t *testing.T) {
	// Inherited reference COWed at 5, re-added at 8, removed at 12,
	// re-added at 20 (still live).
	ivs := dedupeIntervals(joinGroup([]uint64{8, 20}, []uint64{5, 12}))
	want := []interval{{0, 5, false}, {8, 12, false}, {20, Infinity, false}}
	if len(ivs) != len(want) {
		t.Fatalf("join = %+v", ivs)
	}
	for i := range want {
		if ivs[i].from != want[i].from || ivs[i].to != want[i].to {
			t.Fatalf("join[%d] = %+v, want %+v", i, ivs[i], want[i])
		}
	}
}

// TestJoinGroupProperty: for random disjoint alloc/free event sequences,
// joining the shuffled tables reconstructs the original intervals.
func TestJoinGroupProperty(t *testing.T) {
	f := func(seed []byte) bool {
		// Build a plausible event history: alternating add/remove with
		// increasing CPs; maybe trailing open interval.
		cp := uint64(1)
		var froms, tos []uint64
		var want []interval
		for i := 0; i+1 < len(seed); i += 2 {
			f := cp + uint64(seed[i]%5)
			tv := f + 1 + uint64(seed[i+1]%5)
			froms = append(froms, f)
			tos = append(tos, tv)
			want = append(want, interval{from: f, to: tv})
			cp = tv + 1
		}
		if len(seed)%2 == 1 {
			froms = append(froms, cp)
			want = append(want, interval{from: cp, to: Infinity})
		}
		got := dedupeIntervals(joinGroup(froms, tos))
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].from != want[i].from || got[i].to != want[i].to {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
