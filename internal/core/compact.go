package core

import (
	"sort"

	"github.com/backlogfs/backlog/internal/lsm"
)

// Compact runs database maintenance on every partition (Section 5.2): it
// merges all read-store runs, precomputes the Combined table by joining
// From and To, purges records that refer only to deleted snapshots, and
// physically drops deletion-vector entries. Afterwards each partition holds
// at most one Combined run (complete records) and one From run (incomplete
// records), and the To table is empty.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for p := 0; p < e.db.Partitions(); p++ {
		if err := e.compactPartition(p); err != nil {
			return err
		}
	}
	e.stats.compactions.Add(1)
	return nil
}

// CompactPartition compacts a single partition; partitions can be
// maintained selectively and independently (Section 5.3).
func (e *Engine) CompactPartition(p int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.compactPartition(p); err != nil {
		return err
	}
	e.stats.compactions.Add(1)
	return nil
}

// groupRecs is one identity group pulled from the three merged streams.
type groupRecs struct {
	id        Ref // identity fields only (CP fields zero)
	froms     []uint64
	tos       []uint64
	combineds []interval
}

func (e *Engine) compactPartition(p int) error {
	fromTbl := e.db.Table(TableFrom)
	toTbl := e.db.Table(TableTo)
	combTbl := e.db.Table(TableCombined)

	if len(fromTbl.Runs(p)) == 0 && len(toTbl.Runs(p)) == 0 && len(combTbl.Runs(p)) <= 1 {
		// Nothing to merge; at most the single compacted Combined run.
		return nil
	}

	fromIt, err := fromTbl.MergedIter(p)
	if err != nil {
		return err
	}
	toIt, err := toTbl.MergedIter(p)
	if err != nil {
		return err
	}
	combIt, err := combTbl.MergedIter(p)
	if err != nil {
		return err
	}

	fs := &recStream{it: fromIt}
	ts := &recStream{it: toIt}
	cs := &recStream{it: combIt}
	if err := fs.advance(); err != nil {
		return err
	}
	if err := ts.advance(); err != nil {
		return err
	}
	if err := cs.advance(); err != nil {
		return err
	}

	newFrom, err := e.db.NewRunBuilder(TableFrom, p, 1, e.db.CP())
	if err != nil {
		return err
	}
	newComb, err := e.db.NewRunBuilder(TableCombined, p, 1, e.db.CP())
	if err != nil {
		return err
	}
	abort := func(err error) error {
		newFrom.Abort()
		newComb.Abort()
		return err
	}

	for {
		g, ok, err := nextGroup(fs, ts, cs)
		if err != nil {
			return abort(err)
		}
		if !ok {
			break
		}
		if err := e.emitGroup(g, newFrom, newComb); err != nil {
			return abort(err)
		}
	}

	edit := e.db.NewEdit()
	var added []lsm.RunRef
	if ref, ok, err := newFrom.Finish(); err != nil {
		newFrom.Abort()
		newComb.Abort()
		return err
	} else if ok {
		edit.AddRun(ref)
		added = append(added, ref)
	}
	if ref, ok, err := newComb.Finish(); err != nil {
		newComb.Abort()
		// The From run finished but its edit will never commit.
		for _, r := range added {
			e.db.DiscardRun(r)
		}
		return err
	} else if ok {
		edit.AddRun(ref)
	}
	for _, r := range fromTbl.Runs(p) {
		edit.DropRun(TableFrom, r.Name())
	}
	for _, r := range toTbl.Runs(p) {
		edit.DropRun(TableTo, r.Name())
	}
	for _, r := range combTbl.Runs(p) {
		edit.DropRun(TableCombined, r.Name())
	}
	clearedFrom := fromTbl.ClearDVPartition(p)
	clearedTo := toTbl.ClearDVPartition(p)
	clearedComb := combTbl.ClearDVPartition(p)
	edit.FlushDV(TableFrom).FlushDV(TableTo).FlushDV(TableCombined)
	if err := edit.Commit(); err != nil {
		// The commit did not land (a failed Commit removes its added run
		// files itself): the old runs are still live, so the deletion
		// vectors that hide their dead records must come back.
		fromTbl.RestoreDV(clearedFrom)
		toTbl.RestoreDV(clearedTo)
		combTbl.RestoreDV(clearedComb)
		return err
	}
	return nil
}

// emitGroup joins one identity group, applies the purge policy, and writes
// the surviving records.
func (e *Engine) emitGroup(g groupRecs, newFrom, newComb *lsm.RunBuilder) error {
	cat := e.catalog
	line := g.id.Line

	joined := joinGroup(g.froms, g.tos)

	// Complete intervals from the join plus pre-existing Combined records.
	var complete []interval
	var incomplete []uint64 // from values of still-live references
	for _, iv := range joined {
		if iv.to == Infinity {
			incomplete = append(incomplete, iv.from)
		} else {
			complete = append(complete, iv)
		}
	}
	complete = dedupeIntervals(append(complete, g.combineds...))

	for _, iv := range complete {
		if !e.keepInterval(line, iv.from, iv.to) {
			e.stats.recordsPurged.Add(1)
			continue
		}
		rec := EncodeCombined(CombinedRec{
			Ref:  Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			From: iv.from, To: iv.to,
		})
		if err := newComb.Add(rec); err != nil {
			return err
		}
	}
	sort.Slice(incomplete, func(i, j int) bool { return incomplete[i] < incomplete[j] })
	for _, f := range incomplete {
		if !e.keepInterval(line, f, Infinity) {
			e.stats.recordsPurged.Add(1)
			continue
		}
		rec := EncodeFrom(FromRec{
			Ref:  Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			From: f,
		})
		if err := newFrom.Add(rec); err != nil {
			return err
		}
	}
	_ = cat
	return nil
}

// keepInterval decides whether a record with validity [from, to) on line
// must survive compaction. It survives when any retained snapshot falls in
// the interval, when the line's live file system still holds the reference,
// when a clone base (including zombie snapshots) inside the interval pins
// it for inheritance, or when it is an override record (from == 0) of a
// line that is still needed — purging an override would resurrect
// inheritance the file system explicitly terminated.
func (e *Engine) keepInterval(line, from, to uint64) bool {
	cat := e.catalog
	if len(cat.SnapshotsIn(line, from, to)) > 0 {
		return true
	}
	if to == Infinity && cat.IsLive(line) {
		return true
	}
	if cat.PinnedIn(line, from, to) {
		return true
	}
	if from == 0 {
		// Override record: keep while the line can still inherit.
		if cat.IsLive(line) || len(cat.SnapshotsIn(line, 0, Infinity)) > 0 ||
			cat.PinnedIn(line, 0, Infinity) {
			return true
		}
	}
	return false
}

// recStream is a peekable decoded record stream used by the group merge.
type recStream struct {
	it  lsm.RecIter
	cur []byte
	ok  bool
}

func (s *recStream) advance() error {
	rec, ok, err := s.it.Next()
	if err != nil {
		return err
	}
	if !ok {
		s.ok = false
		s.cur = nil
		return nil
	}
	s.cur = append(s.cur[:0], rec...)
	s.ok = true
	return nil
}

// curIdentity decodes the identity prefix of the stream head.
func (s *recStream) curIdentity() Ref {
	return getRef(s.cur)
}

// nextGroup pulls the smallest-identity group across the three streams.
func nextGroup(fs, ts, cs *recStream) (groupRecs, bool, error) {
	var minID Ref
	found := false
	consider := func(s *recStream) {
		if !s.ok {
			return
		}
		id := s.curIdentity()
		if !found || compareRef(id, minID) < 0 {
			minID = id
			found = true
		}
	}
	consider(fs)
	consider(ts)
	consider(cs)
	if !found {
		return groupRecs{}, false, nil
	}

	g := groupRecs{id: minID}
	for fs.ok && compareRef(fs.curIdentity(), minID) == 0 {
		g.froms = append(g.froms, DecodeFrom(fs.cur).From)
		if err := fs.advance(); err != nil {
			return groupRecs{}, false, err
		}
	}
	for ts.ok && compareRef(ts.curIdentity(), minID) == 0 {
		g.tos = append(g.tos, DecodeTo(ts.cur).To)
		if err := ts.advance(); err != nil {
			return groupRecs{}, false, err
		}
	}
	for cs.ok && compareRef(cs.curIdentity(), minID) == 0 {
		c := DecodeCombined(cs.cur)
		g.combineds = append(g.combineds, interval{from: c.From, to: c.To})
		if err := cs.advance(); err != nil {
			return groupRecs{}, false, err
		}
	}
	return g, true, nil
}
