package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
)

// compactRetries is how many optimistic lock-free merge attempts
// compactPartition makes before falling back to holding the structural
// lock exclusively for the whole merge — the pessimistic mode cannot
// conflict, so every compaction eventually makes progress even under a
// constant stream of checkpoints and relocations.
const compactRetries = 4

// Compact runs database maintenance on every partition (Section 5.2): it
// merges all read-store runs, precomputes the Combined table by joining
// From and To, purges records that refer only to deleted snapshots, and
// physically drops deletion-vector entries. Afterwards each partition holds
// at most one Combined run (complete records) and one From run (incomplete
// records), and the To table is empty.
//
// Partitions are maintained independently: a failure in one partition does
// not stop the pass, and the joined error reports every partition that
// failed. Stats.Compactions counts partitions actually compacted.
//
// While any deletion vector carries unpersisted entries (a block
// relocation since the last checkpoint), compaction is deferred — the
// records those entries hide must not be physically destroyed before the
// re-keyed replacements buffered in the write stores are durable. Call
// Checkpoint first (the background maintainer runs after checkpoints, so
// it sees the persisted state naturally).
//
// Under Options.Retention == RetainLive, Compact runs in tiered mode
// (CompactTiered): merging a sealed run across the reclaim horizon would
// destroy the disjoint CP windows that let Expire reclaim it for free.
func (e *Engine) Compact() error {
	return e.compactAll(e.expiryEnabled())
}

// CompactTiered is Compact in CP-tiered mode: Combined runs that are
// sealed — level >= 1, trustworthy CP window, no override records — are
// left untouched instead of being re-merged, so their windows stay
// disjoint and a later Expire can drop them whole once the reclaim
// horizon passes their MaxCP. Everything else (From, To, unsealed
// Combined runs, the override run) merges exactly as in Compact; the
// merged Combined output is split so override records land in their own
// run, keeping the regular output sealed. The background maintainer uses
// this mode when Options.Retention is RetainLive.
func (e *Engine) CompactTiered() error {
	return e.compactAll(true)
}

func (e *Engine) compactAll(tiered bool) error {
	var errs []error
	for p := 0; p < e.db.Partitions(); p++ {
		compacted, err := e.compactPartitionMode(p, tiered)
		if err != nil {
			errs = append(errs, fmt.Errorf("core: compacting partition %d: %w", p, err))
			continue
		}
		if compacted {
			e.stats.compactions.Add(1)
		}
	}
	return errors.Join(errs...)
}

// CompactPartition compacts a single partition; partitions can be
// maintained selectively and independently (Section 5.3).
func (e *Engine) CompactPartition(p int) error {
	compacted, err := e.compactPartitionMode(p, false)
	if err != nil {
		return err
	}
	if compacted {
		e.stats.compactions.Add(1)
	}
	return nil
}

// dvDirty reports whether any table carries unpersisted deletion-vector
// entries. Callers hold the structural lock (shared suffices).
func (e *Engine) dvDirty() bool {
	for _, table := range []string{TableFrom, TableTo, TableCombined} {
		if e.db.Table(table).DVDirty() {
			return true
		}
	}
	return false
}

// groupRecs is one identity group pulled from the three merged streams.
type groupRecs struct {
	id        Ref // identity fields only (CP fields zero)
	froms     []uint64
	tos       []uint64
	combineds []interval
}

// compactPartition merges all runs of partition p into at most one From
// and one Combined run. The k-way merge and run building happen against a
// pinned view with no structural lock held, so updates and queries proceed
// during the bulk of the work; the lock is taken exclusively only to
// validate that the partition's run set is unchanged and atomically
// install the manifest edit. A conflicting checkpoint, relocation, or
// concurrent compaction makes the attempt retry against a fresh view,
// and after compactRetries conflicts the merge falls back to running
// entirely under the exclusive lock.
func (e *Engine) compactPartitionMode(p int, tiered bool) (bool, error) {
	if o := e.obs; o != nil {
		// Trace events reuse the Shard field for the partition — the
		// closest analogue of "which slice of the keyspace" for a
		// compaction.
		start := o.opStart(obs.OpCompact, p, 0, 0)
		compacted, err := e.compactPartitionLoop(p, tiered)
		o.opEnd(obs.OpCompact, p, 0, 0, start, o.compact, err)
		return compacted, err
	}
	return e.compactPartitionLoop(p, tiered)
}

func (e *Engine) compactPartitionLoop(p int, tiered bool) (bool, error) {
	for attempt := 0; ; attempt++ {
		compacted, installed, err := e.compactAttempt(p, attempt >= compactRetries, tiered)
		if err != nil || installed {
			return compacted, err
		}
		e.stats.compactConflicts.Add(1)
	}
}

// sealedBelow selects the sealed Combined runs of a tiered merge: already
// compacted (level >= 1), trustworthy CP window, and free of override
// records. Tiered compaction never re-merges them — re-merging would union
// their windows with newer records and push the result's MaxCP past the
// horizon forever, so nothing would ever expire.
func sealedBelow(runs []*lsm.Run) []*lsm.Run {
	var sealed []*lsm.Run
	for _, r := range runs {
		if r.Level() >= 1 && r.CPWindowKnown() && r.Overrides() == 0 {
			sealed = append(sealed, r)
		}
	}
	return sealed
}

// compactAttempt performs one merge-and-install attempt. With
// exclusive=false the structural lock is held only to pin the view and,
// later, to validate + install; installed=false then signals a conflict
// the caller should retry. With exclusive=true the checkpoint
// single-flight guard is taken first — so the merge cannot interleave
// with the window in which a checkpoint's write stores are frozen but its
// runs are uninstalled — and the structural lock is then held throughout,
// so validation is unnecessary and the attempt always installs.
func (e *Engine) compactAttempt(p int, exclusive, tiered bool) (compacted, installed bool, err error) {
	if exclusive {
		e.cpMu.Lock()
		defer e.cpMu.Unlock()
		e.mu.Lock()
	} else {
		e.mu.RLock()
	}
	locked := exclusive
	// A dirty deletion vector defers compaction of the whole table set: the
	// unpersisted entries hide records whose re-keyed replacements (block
	// relocation) still sit in the volatile write stores. Physically purging
	// the hidden records and durably clearing their entries now would make
	// the destruction durable while the replacements are not — a crash then
	// loses the references outright, and the relocation's WAL record cannot
	// re-transplant records that no longer exist in any run. The next
	// checkpoint persists vector and replacements together, after which
	// compaction proceeds (the maintainer is kicked after every checkpoint).
	if e.dvDirty() {
		if exclusive {
			e.mu.Unlock()
		} else {
			e.mu.RUnlock()
		}
		return false, true, nil
	}
	v := e.db.AcquireView()
	if !exclusive {
		e.mu.RUnlock()
	}
	defer func() {
		if locked {
			e.mu.Unlock()
		}
		v.Release()
	}()

	vFrom := v.Runs(TableFrom, p)
	vTo := v.Runs(TableTo, p)
	vComb := v.Runs(TableCombined, p)
	// Tiered mode leaves sealed Combined runs out of the merge (see
	// sealedBelow); only the remainder — Level-0 runs and the override
	// run — is read and rewritten.
	mergeComb := vComb
	var sealed []*lsm.Run
	if tiered {
		sealed = sealedBelow(vComb)
		if len(sealed) > 0 {
			mergeComb = make([]*lsm.Run, 0, len(vComb)-len(sealed))
			for _, r := range vComb {
				if r.Level() >= 1 && r.CPWindowKnown() && r.Overrides() == 0 {
					continue
				}
				mergeComb = append(mergeComb, r)
			}
		}
	}
	if len(vFrom) == 0 && len(vTo) == 0 && len(mergeComb) <= 1 {
		// Nothing to merge; at most the single compacted Combined run (in
		// tiered mode, possibly plus sealed runs awaiting expiry).
		return false, true, nil
	}

	fromIt, err := v.MergedIter(TableFrom, p)
	if err != nil {
		return false, true, err
	}
	toIt, err := v.MergedIter(TableTo, p)
	if err != nil {
		return false, true, err
	}
	combIt, err := v.MergedIterOf(TableCombined, mergeComb)
	if err != nil {
		return false, true, err
	}

	fs := &recStream{it: fromIt}
	ts := &recStream{it: toIt}
	cs := &recStream{it: combIt}
	if err := fs.advance(); err != nil {
		return false, true, err
	}
	if err := ts.advance(); err != nil {
		return false, true, err
	}
	if err := cs.advance(); err != nil {
		return false, true, err
	}

	newFrom, err := e.db.NewRunBuilder(TableFrom, p, 1, v.CP(), storage.SrcCompaction)
	if err != nil {
		return false, true, err
	}
	newComb, err := e.db.NewRunBuilder(TableCombined, p, 1, v.CP(), storage.SrcCompaction)
	if err != nil {
		newFrom.Abort()
		return false, true, err
	}
	// Tiered mode writes surviving override records to a run of their own:
	// overrides must outlive their line's snapshots, so mixing them into
	// the regular output would poison its droppability. The override run
	// (Overrides > 0) is re-merged on every tiered pass, which is also what
	// purges overrides once their line is fully gone.
	var newOver *lsm.RunBuilder
	if tiered {
		newOver, err = e.db.NewRunBuilder(TableCombined, p, 1, v.CP(), storage.SrcCompaction)
		if err != nil {
			newFrom.Abort()
			newComb.Abort()
			return false, true, err
		}
	}
	abort := func(err error) (bool, bool, error) {
		newFrom.Abort()
		newComb.Abort()
		if newOver != nil {
			newOver.Abort()
		}
		return false, true, err
	}

	// Purged records are counted locally and added to the stats only once
	// the attempt installs, so conflict retries do not double-count.
	var purged uint64
	for {
		g, ok, err := nextGroup(fs, ts, cs)
		if err != nil {
			return abort(err)
		}
		if !ok {
			break
		}
		if err := e.emitGroup(g, newFrom, newComb, newOver, &purged); err != nil {
			return abort(err)
		}
	}

	// Finish the run files (bloom + header + sync) before taking the
	// lock: file I/O stays out of the critical section.
	var added []lsm.RunRef
	if ref, ok, err := newFrom.Finish(); err != nil {
		newFrom.Abort()
		newComb.Abort()
		if newOver != nil {
			newOver.Abort()
		}
		return false, true, err
	} else if ok {
		added = append(added, ref)
	}
	if ref, ok, err := newComb.Finish(); err != nil {
		newComb.Abort()
		if newOver != nil {
			newOver.Abort()
		}
		for _, r := range added {
			e.db.DiscardRun(r)
		}
		return false, true, err
	} else if ok {
		added = append(added, ref)
	}
	if newOver != nil {
		if ref, ok, err := newOver.Finish(); err != nil {
			newOver.Abort()
			for _, r := range added {
				e.db.DiscardRun(r)
			}
			return false, true, err
		} else if ok {
			added = append(added, ref)
		}
	}

	if !exclusive {
		e.mu.Lock()
		locked = true
		if !(v.Unchanged(TableFrom, p) && v.Unchanged(TableTo, p) && v.Unchanged(TableCombined, p)) {
			// The partition's run set or a deletion vector moved under the
			// merge: the built runs describe a stale state. Discard them
			// and retry against a fresh view.
			for _, r := range added {
				e.db.DiscardRun(r)
			}
			return false, false, nil
		}
	}

	// Install. The view's run lists equal the live ones (validated above,
	// or the lock was held throughout), so dropping the view's runs drops
	// exactly the partition's live runs.
	edit := e.db.NewEdit().SetSource(storage.SrcCompaction)
	for _, ref := range added {
		edit.AddRun(ref)
	}
	fromTbl := e.db.Table(TableFrom)
	toTbl := e.db.Table(TableTo)
	combTbl := e.db.Table(TableCombined)
	for _, r := range vFrom {
		edit.DropRun(TableFrom, r.Name())
	}
	for _, r := range vTo {
		edit.DropRun(TableTo, r.Name())
	}
	for _, r := range mergeComb {
		edit.DropRun(TableCombined, r.Name())
	}
	clearedFrom := fromTbl.ClearDVPartition(p)
	clearedTo := toTbl.ClearDVPartition(p)
	// Sealed runs were not rewritten, so deletion-vector entries whose
	// records may live in them must survive the clear; entries outside
	// every sealed run's block range paired only with rewritten runs.
	var keepDV func(block uint64) bool
	if len(sealed) > 0 {
		keepDV = func(block uint64) bool {
			for _, r := range sealed {
				if block >= r.MinBlock() && block <= r.MaxBlock() {
					return true
				}
			}
			return false
		}
	}
	clearedComb := combTbl.ClearDVPartitionKeep(p, keepDV)
	edit.FlushDV(TableFrom).FlushDV(TableTo).FlushDV(TableCombined)
	if err := edit.Commit(); err != nil {
		// The commit did not land (a failed Commit removes its added run
		// files itself): the old runs are still live, so the deletion
		// vectors that hide their dead records must come back.
		fromTbl.RestoreDV(clearedFrom)
		toTbl.RestoreDV(clearedTo)
		combTbl.RestoreDV(clearedComb)
		return false, true, err
	}
	e.stats.recordsPurged.Add(purged)
	e.stats.compactWriteBytes.Add(addedBytes(added))
	return true, true, nil
}

// addedBytes sums the physical size of freshly installed compaction
// outputs — the numerator of measured write amplification.
func addedBytes(added []lsm.RunRef) uint64 {
	var n int64
	for _, r := range added {
		n += r.SizeBytes()
	}
	return uint64(n)
}

// viewHasRuns reports whether every run in inputs is present in the
// view's pinned list for (table, partition) — the read-safety check a
// job executor performs after re-pinning: membership keeps the run file
// alive for the duration of the view.
func viewHasRuns(v *lsm.View, table string, p int, inputs []*lsm.Run) bool {
	live := v.Runs(table, p)
	for _, in := range inputs {
		found := false
		for _, r := range live {
			if r == in {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// compactJob executes one leveled merge planned by a CompactionPolicy.
// It returns installed=false when the job is stale (an input run was
// consumed by a checkpoint, expiry, or another merge since planning) or
// deferred (dirty deletion vector); the scheduler then re-plans instead
// of retrying the same job.
func (e *Engine) compactJob(job CompactionJob) (bool, error) {
	if o := e.obs; o != nil {
		start := o.opStart(obs.OpCompact, job.Partition, 0, 0)
		installed, err := e.compactJobAttempt(job)
		o.opEnd(obs.OpCompact, job.Partition, 0, 0, start, o.compact, err)
		return installed, err
	}
	return e.compactJobAttempt(job)
}

func (e *Engine) compactJobAttempt(job CompactionJob) (installed bool, err error) {
	p := job.Partition
	e.mu.RLock()
	// Dirty deletion vectors defer job merges for the same reason they
	// defer full ones (see compactAttempt): purging records hidden by
	// unpersisted entries would make their destruction durable before the
	// re-keyed replacements are.
	if e.dvDirty() {
		e.mu.RUnlock()
		return false, nil
	}
	v := e.db.AcquireView()
	e.mu.RUnlock()
	locked := false
	defer func() {
		if locked {
			e.mu.Unlock()
		}
		v.Release()
	}()

	// The job was planned against an earlier, already-released view; its
	// run pointers are only safe to read while live in this fresh one.
	if !viewHasRuns(v, TableFrom, p, job.From) ||
		!viewHasRuns(v, TableTo, p, job.To) ||
		!viewHasRuns(v, TableCombined, p, job.Combined) {
		return false, nil
	}

	fromIt, err := v.MergedIterOf(TableFrom, job.From)
	if err != nil {
		return false, err
	}
	toIt, err := v.MergedIterOf(TableTo, job.To)
	if err != nil {
		return false, err
	}
	combIt, err := v.MergedIterOf(TableCombined, job.Combined)
	if err != nil {
		return false, err
	}
	fs := &recStream{it: fromIt}
	ts := &recStream{it: toIt}
	cs := &recStream{it: combIt}
	for _, s := range []*recStream{fs, ts, cs} {
		if err := s.advance(); err != nil {
			return false, err
		}
	}

	newFrom, err := e.db.NewRunBuilder(TableFrom, p, job.OutputLevel, v.CP(), storage.SrcCompaction)
	if err != nil {
		return false, err
	}
	newTo, err := e.db.NewRunBuilder(TableTo, p, job.OutputLevel, v.CP(), storage.SrcCompaction)
	if err != nil {
		newFrom.Abort()
		return false, err
	}
	newComb, err := e.db.NewRunBuilder(TableCombined, p, job.OutputLevel, v.CP(), storage.SrcCompaction)
	if err != nil {
		newFrom.Abort()
		newTo.Abort()
		return false, err
	}
	// As in tiered full compaction, surviving override records go to a
	// run of their own so the regular Combined output stays sealed. A
	// leveled merge never synthesizes overrides, so the builder finishes
	// empty (and writes no run) unless an input carried them.
	var newOver *lsm.RunBuilder
	if e.expiryEnabled() {
		newOver, err = e.db.NewRunBuilder(TableCombined, p, job.OutputLevel, v.CP(), storage.SrcCompaction)
		if err != nil {
			newFrom.Abort()
			newTo.Abort()
			newComb.Abort()
			return false, err
		}
	}
	builders := func() []*lsm.RunBuilder {
		bs := []*lsm.RunBuilder{newFrom, newTo, newComb}
		if newOver != nil {
			bs = append(bs, newOver)
		}
		return bs
	}()
	abort := func(err error) (bool, error) {
		for _, b := range builders {
			b.Abort()
		}
		return false, err
	}

	var purged uint64
	for {
		g, ok, err := nextGroup(fs, ts, cs)
		if err != nil {
			return abort(err)
		}
		if !ok {
			break
		}
		if err := e.emitLeveledGroup(g, newFrom, newTo, newComb, newOver, &purged); err != nil {
			return abort(err)
		}
	}

	// Finish the run files before taking the lock, as in compactAttempt.
	var added []lsm.RunRef
	for i, b := range builders {
		ref, ok, err := b.Finish()
		if err != nil {
			for _, later := range builders[i+1:] {
				later.Abort()
			}
			for _, r := range added {
				e.db.DiscardRun(r)
			}
			return false, err
		}
		if ok {
			added = append(added, ref)
		}
	}

	e.mu.Lock()
	locked = true
	if !(v.UnchangedRuns(TableFrom, p, job.From) &&
		v.UnchangedRuns(TableTo, p, job.To) &&
		v.UnchangedRuns(TableCombined, p, job.Combined)) {
		// An input run or a deletion vector moved under the merge; the
		// built runs describe a stale state. Unlike a full compaction,
		// runs added outside the input set (a checkpoint's level-0 flush)
		// do not invalidate the job.
		for _, r := range added {
			e.db.DiscardRun(r)
		}
		e.stats.compactConflicts.Add(1)
		return false, nil
	}

	edit := e.db.NewEdit().SetSource(storage.SrcCompaction)
	for _, ref := range added {
		edit.AddRun(ref)
	}
	for _, r := range job.From {
		edit.DropRun(TableFrom, r.Name())
	}
	for _, r := range job.To {
		edit.DropRun(TableTo, r.Name())
	}
	for _, r := range job.Combined {
		edit.DropRun(TableCombined, r.Name())
	}
	// Deletion-vector entries whose records lived in the input runs were
	// consumed by the merge (the outputs are DV-filtered); entries that
	// may target a run outside the job must survive. dvGen was validated
	// above, so every entry targets a run the view knows about.
	fromTbl := e.db.Table(TableFrom)
	toTbl := e.db.Table(TableTo)
	combTbl := e.db.Table(TableCombined)
	keepOutside := func(table string, inputs []*lsm.Run) func(uint64) bool {
		var others []*lsm.Run
		for _, r := range v.Runs(table, p) {
			in := false
			for _, i := range inputs {
				if r == i {
					in = true
					break
				}
			}
			if !in {
				others = append(others, r)
			}
		}
		if len(others) == 0 {
			return nil
		}
		return func(block uint64) bool {
			for _, r := range others {
				if block >= r.MinBlock() && block <= r.MaxBlock() {
					return true
				}
			}
			return false
		}
	}
	clearedFrom := fromTbl.ClearDVPartitionKeep(p, keepOutside(TableFrom, job.From))
	clearedTo := toTbl.ClearDVPartitionKeep(p, keepOutside(TableTo, job.To))
	clearedComb := combTbl.ClearDVPartitionKeep(p, keepOutside(TableCombined, job.Combined))
	edit.FlushDV(TableFrom).FlushDV(TableTo).FlushDV(TableCombined)
	if err := edit.Commit(); err != nil {
		fromTbl.RestoreDV(clearedFrom)
		toTbl.RestoreDV(clearedTo)
		combTbl.RestoreDV(clearedComb)
		return false, err
	}
	e.stats.recordsPurged.Add(purged)
	e.stats.compactWriteBytes.Add(addedBytes(added))
	return true, nil
}

// emitLeveledGroup writes one identity group of a leveled merge. Unlike
// emitGroup it sees only the records held by the job's input runs, so it
// joins a From with a To only when both ends are present — exactly the
// pairs the global join would form, because a level merge always inputs
// every run of its level and levels partition flush history into
// contiguous, monotonically ordered segments — and carries unmatched
// records verbatim to the output level. Synthesizing the inherited-
// ownership interval the full join derives for an unmatched To, or
// purging an unmatched From, would corrupt the eventual join with the
// counterpart record still climbing the levels in another run.
func (e *Engine) emitLeveledGroup(g groupRecs, newFrom, newTo, newComb, newOver *lsm.RunBuilder, purged *uint64) error {
	line := g.id.Line
	froms, tos := g.froms, g.tos
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })

	// Greedy pairing with joinGroup's rule — each To, ascending, takes
	// the earliest unused From <= it. Since Tos are processed in order,
	// the earliest unused From is always froms[fi].
	var complete []interval
	var loneTos []uint64
	fi := 0
	for _, t := range tos {
		if fi < len(froms) && froms[fi] <= t {
			f := froms[fi]
			fi++
			if f == t {
				// An add and remove at one CP cancel, as in joinGroup.
				continue
			}
			complete = append(complete, interval{from: f, to: t})
		} else {
			loneTos = append(loneTos, t)
		}
	}
	loneFroms := froms[fi:]

	// Completed pairs and pre-joined Combined records are globally
	// correct, so the full purge policy applies to them.
	complete = dedupeIntervals(append(complete, g.combineds...))
	for _, iv := range complete {
		if !e.keepInterval(line, iv.from, iv.to) {
			*purged++
			continue
		}
		rec := EncodeCombined(CombinedRec{
			Ref:  Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			From: iv.from, To: iv.to,
		})
		dst := newComb
		if newOver != nil && iv.from == 0 {
			dst = newOver
		}
		if err := dst.Add(rec); err != nil {
			return err
		}
	}
	for _, f := range loneFroms {
		rec := EncodeFrom(FromRec{
			Ref:  Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			From: f,
		})
		if err := newFrom.Add(rec); err != nil {
			return err
		}
	}
	for _, t := range loneTos {
		rec := EncodeTo(ToRec{
			Ref: Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			To:  t,
		})
		if err := newTo.Add(rec); err != nil {
			return err
		}
	}
	return nil
}

// emitGroup joins one identity group, applies the purge policy, and writes
// the surviving records. Purged records are tallied into *purged. When
// newOver is non-nil (tiered mode), override records (from == 0) go to it
// instead of newComb, so the regular Combined output stays free of
// overrides and therefore sealed.
func (e *Engine) emitGroup(g groupRecs, newFrom, newComb, newOver *lsm.RunBuilder, purged *uint64) error {
	cat := e.catalog
	line := g.id.Line

	joined := joinGroup(g.froms, g.tos)

	// Complete intervals from the join plus pre-existing Combined records.
	var complete []interval
	var incomplete []uint64 // from values of still-live references
	for _, iv := range joined {
		if iv.to == Infinity {
			incomplete = append(incomplete, iv.from)
		} else {
			complete = append(complete, iv)
		}
	}
	complete = dedupeIntervals(append(complete, g.combineds...))

	for _, iv := range complete {
		if !e.keepInterval(line, iv.from, iv.to) {
			*purged++
			continue
		}
		rec := EncodeCombined(CombinedRec{
			Ref:  Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			From: iv.from, To: iv.to,
		})
		dst := newComb
		if newOver != nil && iv.from == 0 {
			dst = newOver
		}
		if err := dst.Add(rec); err != nil {
			return err
		}
	}
	sort.Slice(incomplete, func(i, j int) bool { return incomplete[i] < incomplete[j] })
	for _, f := range incomplete {
		if !e.keepInterval(line, f, Infinity) {
			*purged++
			continue
		}
		rec := EncodeFrom(FromRec{
			Ref:  Ref{Block: g.id.Block, Inode: g.id.Inode, Offset: g.id.Offset, Line: line, Length: g.id.Length},
			From: f,
		})
		if err := newFrom.Add(rec); err != nil {
			return err
		}
	}
	_ = cat
	return nil
}

// keepInterval decides whether a record with validity [from, to) on line
// must survive compaction. It survives when any retained snapshot falls in
// the interval, when the line's live file system still holds the reference,
// when a clone base (including zombie snapshots) inside the interval pins
// it for inheritance, or when it is an override record (from == 0) of a
// line that is still needed — purging an override would resurrect
// inheritance the file system explicitly terminated.
func (e *Engine) keepInterval(line, from, to uint64) bool {
	cat := e.catalog
	if len(cat.SnapshotsIn(line, from, to)) > 0 {
		return true
	}
	if to == Infinity && cat.IsLive(line) {
		return true
	}
	if cat.PinnedIn(line, from, to) {
		return true
	}
	if from == 0 {
		// Override record: keep while the line can still inherit.
		if cat.IsLive(line) || len(cat.SnapshotsIn(line, 0, Infinity)) > 0 ||
			cat.PinnedIn(line, 0, Infinity) {
			return true
		}
	}
	return false
}

// recStream is a peekable decoded record stream used by the group merge.
type recStream struct {
	it  lsm.RecIter
	cur []byte
	ok  bool
}

func (s *recStream) advance() error {
	rec, ok, err := s.it.Next()
	if err != nil {
		return err
	}
	if !ok {
		s.ok = false
		s.cur = nil
		return nil
	}
	s.cur = append(s.cur[:0], rec...)
	s.ok = true
	return nil
}

// curIdentity decodes the identity prefix of the stream head.
func (s *recStream) curIdentity() Ref {
	return getRef(s.cur)
}

// nextGroup pulls the smallest-identity group across the three streams.
func nextGroup(fs, ts, cs *recStream) (groupRecs, bool, error) {
	var minID Ref
	found := false
	consider := func(s *recStream) {
		if !s.ok {
			return
		}
		id := s.curIdentity()
		if !found || compareRef(id, minID) < 0 {
			minID = id
			found = true
		}
	}
	consider(fs)
	consider(ts)
	consider(cs)
	if !found {
		return groupRecs{}, false, nil
	}

	g := groupRecs{id: minID}
	for fs.ok && compareRef(fs.curIdentity(), minID) == 0 {
		g.froms = append(g.froms, DecodeFrom(fs.cur).From)
		if err := fs.advance(); err != nil {
			return groupRecs{}, false, err
		}
	}
	for ts.ok && compareRef(ts.curIdentity(), minID) == 0 {
		g.tos = append(g.tos, DecodeTo(ts.cur).To)
		if err := ts.advance(); err != nil {
			return groupRecs{}, false, err
		}
	}
	for cs.ok && compareRef(cs.curIdentity(), minID) == 0 {
		c := DecodeCombined(cs.cur)
		g.combineds = append(g.combineds, interval{from: c.From, to: c.To})
		if err := cs.advance(); err != nil {
			return groupRecs{}, false, err
		}
	}
	return g, true, nil
}
