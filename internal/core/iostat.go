package core

import (
	"time"

	"github.com/backlogfs/backlog/internal/obs"
)

// IOReport is a structured snapshot of the engine's purpose-tagged I/O
// accounting: per-source device bytes/ops, cumulative totals, and the
// online write-amplification monitor's cumulative and windowed readings.
type IOReport struct {
	// Attribution reports whether I/O attribution is enabled; when false
	// every other field is zero.
	Attribution bool `json:"attribution"`
	// Sources lists every source's counters (storage.Source order:
	// unknown, wal, checkpoint, compaction, query, expiry, recovery,
	// manifest). Per-source bytes sum to the totals below exactly — the
	// wrapper records the same n the device-level metering counts.
	Sources []obs.SourceIO `json:"sources,omitempty"`
	// TotalReadBytes and TotalWriteBytes sum the per-source byte counters.
	TotalReadBytes  uint64 `json:"total_read_bytes"`
	TotalWriteBytes uint64 `json:"total_write_bytes"`

	// UserBytes is the logical payload handed to the engine since Open:
	// one From record per AddRef plus one To record per RemoveRef — the
	// denominator of write amplification.
	UserBytes uint64 `json:"user_bytes"`
	// WriteAmp is cumulative device-bytes-written / UserBytes since Open
	// (0 while UserBytes is 0). It includes recovery and startup writes,
	// so long-running processes should prefer the windowed reading.
	WriteAmp float64 `json:"write_amp"`

	// WindowSeconds is the actual span the windowed figures cover — at
	// most the configured WriteAmpWindow, less while the monitor warms up
	// (the monitor samples lazily at IOReport/scrape time, so resolution
	// is bounded by that cadence).
	WindowSeconds float64 `json:"window_seconds"`
	// WindowUserBytes and WindowWriteBytes are the user and device bytes
	// accumulated over the window; WindowWriteAmp is their ratio (0 while
	// WindowUserBytes is 0).
	WindowUserBytes  uint64  `json:"window_user_bytes"`
	WindowWriteBytes uint64  `json:"window_write_bytes"`
	WindowWriteAmp   float64 `json:"window_write_amp"`
}

// userBytes returns the logical payload the engine has accepted since
// Open, in record-encoded bytes. Computed from the existing hot-path
// counters, so the write-amplification monitor costs the update path
// nothing.
func (e *Engine) userBytes() uint64 {
	return e.stats.refsAdded.Load()*uint64(FromRecSize) +
		e.stats.refsRemoved.Load()*uint64(ToRecSize)
}

// IOReport samples the I/O accountant and the write-amplification
// monitor. It takes no locks (atomic counter reads only) and is safe to
// call concurrently with all engine operations. With attribution disabled
// it returns a zero report with Attribution=false.
func (e *Engine) IOReport() IOReport {
	if e.ios == nil {
		return IOReport{}
	}
	rep := IOReport{
		Attribution: true,
		Sources:     e.ios.Snapshot(),
		UserBytes:   e.userBytes(),
	}
	rep.TotalReadBytes, rep.TotalWriteBytes = e.ios.Totals()
	if rep.UserBytes > 0 {
		rep.WriteAmp = float64(rep.TotalWriteBytes) / float64(rep.UserBytes)
	}
	winUser, winDev, span := e.wamp.Observe(time.Now(), rep.UserBytes, rep.TotalWriteBytes)
	rep.WindowSeconds = span.Seconds()
	rep.WindowUserBytes, rep.WindowWriteBytes = winUser, winDev
	if winUser > 0 {
		rep.WindowWriteAmp = float64(winDev) / float64(winUser)
	}
	return rep
}

// IOStats returns the engine's I/O accountant (nil when attribution is
// disabled); test helpers and the debug endpoint read it directly.
func (e *Engine) IOStats() *obs.IOStats { return e.ios }
