// Package core implements Backlog, the log-structured back-reference
// engine that is the paper's primary contribution (Sections 4 and 5).
//
// The engine tracks, for every physical block, the set of logical owners —
// (inode, offset, snapshot line, extent length) tuples — together with the
// range of consistency-point (CP) versions during which each owner
// referenced the block. Reference additions insert into the From table and
// reference removals insert into the To table; both are write-only. The
// queryable history (the Combined view) is the outer join of the two,
// computed lazily at query time over whatever runs exist and materialized
// in bulk during compaction.
//
// Writable clones are handled by structural inheritance: records of a
// cloned snapshot are implicitly present in the clone line unless overridden
// by a record with from == 0 (Section 4.2.2). Query results are masked
// against the set of snapshots that still exist (Section 4.2.1).
package core

import (
	"encoding/binary"
	"math"
)

// Infinity is the "to" value of a live (incomplete) back reference.
const Infinity = math.MaxUint64

// Record sizes, in bytes. Every field is a 64-bit big-endian integer so
// that bytes.Compare on the encoding equals field-lexicographic order.
// The paper's btrfs port uses the same fields (it adds a length field to
// support extents, Section 6.1); fsim-style block-level callers pass
// Length == 1.
const (
	identityLen   = 40              // block, inode, offset, line, length
	FromRecSize   = identityLen + 8 // + from
	ToRecSize     = identityLen + 8 // + to
	CombinedSize  = identityLen + 16
	TableFrom     = "from"
	TableTo       = "to"
	TableCombined = "combined"
)

// Ref identifies one logical reference to a physical extent: the extent's
// first block, the owning inode, the byte offset (in blocks) within the
// inode, the snapshot line of the owning file system image, and the extent
// length in blocks.
type Ref struct {
	Block  uint64
	Inode  uint64
	Offset uint64
	Line   uint64
	Length uint64
}

// FromRec is a row of the From table: ref became live at CP From.
type FromRec struct {
	Ref
	From uint64
}

// ToRec is a row of the To table: ref ceased to be live at CP To
// (exclusive).
type ToRec struct {
	Ref
	To uint64
}

// CombinedRec is a row of the Combined view: ref was live during
// [From, To). To == Infinity means still live; From == 0 on a clone line
// marks an inheritance override (Section 4.2.2).
type CombinedRec struct {
	Ref
	From uint64
	To   uint64
}

// compareRef orders by (block, inode, offset, line, length).
func compareRef(a, b Ref) int {
	switch {
	case a.Block != b.Block:
		return cmpU64(a.Block, b.Block)
	case a.Inode != b.Inode:
		return cmpU64(a.Inode, b.Inode)
	case a.Offset != b.Offset:
		return cmpU64(a.Offset, b.Offset)
	case a.Line != b.Line:
		return cmpU64(a.Line, b.Line)
	default:
		return cmpU64(a.Length, b.Length)
	}
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// lessFrom orders FromRecs by (identity, from).
func lessFrom(a, b FromRec) bool {
	if c := compareRef(a.Ref, b.Ref); c != 0 {
		return c < 0
	}
	return a.From < b.From
}

// lessTo orders ToRecs by (identity, to).
func lessTo(a, b ToRec) bool {
	if c := compareRef(a.Ref, b.Ref); c != 0 {
		return c < 0
	}
	return a.To < b.To
}

// lessCombined orders CombinedRecs by (identity, from, to).
func lessCombined(a, b CombinedRec) bool {
	if c := compareRef(a.Ref, b.Ref); c != 0 {
		return c < 0
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

func putRef(dst []byte, r Ref) {
	be := binary.BigEndian
	be.PutUint64(dst[0:], r.Block)
	be.PutUint64(dst[8:], r.Inode)
	be.PutUint64(dst[16:], r.Offset)
	be.PutUint64(dst[24:], r.Line)
	be.PutUint64(dst[32:], r.Length)
}

func getRef(src []byte) Ref {
	be := binary.BigEndian
	return Ref{
		Block:  be.Uint64(src[0:]),
		Inode:  be.Uint64(src[8:]),
		Offset: be.Uint64(src[16:]),
		Line:   be.Uint64(src[24:]),
		Length: be.Uint64(src[32:]),
	}
}

// EncodeFrom encodes a FromRec into a fresh 48-byte slice.
func EncodeFrom(r FromRec) []byte {
	buf := make([]byte, FromRecSize)
	putRef(buf, r.Ref)
	binary.BigEndian.PutUint64(buf[identityLen:], r.From)
	return buf
}

// DecodeFrom decodes a 48-byte From record.
func DecodeFrom(b []byte) FromRec {
	return FromRec{Ref: getRef(b), From: binary.BigEndian.Uint64(b[identityLen:])}
}

// EncodeTo encodes a ToRec into a fresh 48-byte slice.
func EncodeTo(r ToRec) []byte {
	buf := make([]byte, ToRecSize)
	putRef(buf, r.Ref)
	binary.BigEndian.PutUint64(buf[identityLen:], r.To)
	return buf
}

// DecodeTo decodes a 48-byte To record.
func DecodeTo(b []byte) ToRec {
	return ToRec{Ref: getRef(b), To: binary.BigEndian.Uint64(b[identityLen:])}
}

// EncodeCombined encodes a CombinedRec into a fresh 56-byte slice.
func EncodeCombined(r CombinedRec) []byte {
	buf := make([]byte, CombinedSize)
	putRef(buf, r.Ref)
	binary.BigEndian.PutUint64(buf[identityLen:], r.From)
	binary.BigEndian.PutUint64(buf[identityLen+8:], r.To)
	return buf
}

// DecodeCombined decodes a 56-byte Combined record.
func DecodeCombined(b []byte) CombinedRec {
	return CombinedRec{
		Ref:  getRef(b),
		From: binary.BigEndian.Uint64(b[identityLen:]),
		To:   binary.BigEndian.Uint64(b[identityLen+8:]),
	}
}

// spanFrom, spanTo, and spanCombined are the lsm.TableSpec.Span callbacks:
// they report the consistency-point window a record covers, which run
// builders fold into per-run [MinCP, MaxCP] metadata. A From record's
// reference is born at From (its death, if any, lives in another table, so
// From runs are never expiry candidates); a To record covers its death
// point; a Combined record covers its whole validity interval. Override
// records (from == 0) span only their end point — their synthetic zero
// start is not a real consistency point, and counting it would pin every
// run containing one at MinCP 0 forever.
func spanFrom(rec []byte) (uint64, uint64) {
	f := binary.BigEndian.Uint64(rec[identityLen:])
	return f, f
}

func spanTo(rec []byte) (uint64, uint64) {
	t := binary.BigEndian.Uint64(rec[identityLen:])
	return t, t
}

func spanCombined(rec []byte) (uint64, uint64) {
	f := binary.BigEndian.Uint64(rec[identityLen:])
	t := binary.BigEndian.Uint64(rec[identityLen+8:])
	if f == 0 {
		return t, t
	}
	return f, t
}

// isOverrideCombined reports whether a Combined record is an inheritance
// override (from == 0, Section 4.2.2). Runs containing overrides are
// never dropped by expiry: an override must outlive every snapshot-bound
// record of its line, or purging it would resurrect inheritance the file
// system explicitly terminated.
func isOverrideCombined(rec []byte) bool {
	return binary.BigEndian.Uint64(rec[identityLen:]) == 0
}
