// Mixed-format tests live in package core_test so they can drive the
// exported engine API against the internal/naive oracle (which itself
// imports core). They pin the v1 -> v2 migration story: a database full
// of raw runs opens under the delta default, answers queries identically,
// and compaction rewrites it into compressed runs with no migration step.
package core_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// formatCounts tallies live runs by leaf format.
func formatCounts(eng *core.Engine) map[btree.Format]int {
	counts := map[btree.Format]int{}
	for _, ri := range eng.RunInfos() {
		counts[ri.Format]++
	}
	return counts
}

// queryFingerprint renders every block's full owner list into one
// deterministic string, so before/after states can be compared
// byte-for-byte rather than merely "same length".
func queryFingerprint(t *testing.T, eng *core.Engine, blocks int) string {
	t.Helper()
	var sb strings.Builder
	for b := uint64(0); b < uint64(blocks); b++ {
		owners, err := eng.Query(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		lines := make([]string, 0, len(owners))
		for _, o := range owners {
			lines = append(lines, fmt.Sprintf("%d/%+v", b, o))
		}
		sort.Strings(lines)
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestV1DatabaseCompactsIntoV2 builds a database with compression off
// (raw v1 runs), verifies it against the naive oracle, reopens it under
// the delta default — no migration step — and compacts it into v2 runs,
// asserting the query results stay byte-identical throughout.
func TestV1DatabaseCompactsIntoV2(t *testing.T) {
	const (
		workers = 3
		opsEach = 400
		blocks  = 160
		maxCP   = 6
	)
	fs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	streams := genOps(workers, opsEach, blocks, maxCP)

	eng, err := core.Open(core.Options{
		VFS:         fs,
		Catalog:     cat,
		Compression: core.CompressionNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	for cp := uint64(1); cp <= maxCP; cp++ {
		for _, stream := range streams {
			for _, o := range stream {
				if o.cp != cp {
					continue
				}
				if o.remove {
					eng.RemoveRef(o.ref, o.cp)
				} else {
					eng.AddRef(o.ref, o.cp)
				}
			}
		}
		if err := eng.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	if n := formatCounts(eng)[btree.FormatDelta]; n != 0 {
		t.Fatalf("CompressionNone engine wrote %d delta runs", n)
	}
	verifyLiveAgainstNaive(t, eng, streams, blocks)
	before := queryFingerprint(t, eng, blocks)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the default (delta) compression: the v1 runs must open
	// and answer queries with no migration step.
	eng, err = core.Open(core.Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if n := formatCounts(eng)[btree.FormatRaw]; n == 0 {
		t.Fatal("reopened database has no raw runs to migrate")
	}
	if got := queryFingerprint(t, eng, blocks); got != before {
		t.Fatal("reopening under delta default changed query results")
	}

	// Compaction rewrites every partition; the output runs must be v2.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	counts := formatCounts(eng)
	if counts[btree.FormatRaw] != 0 {
		t.Fatalf("raw runs survived compaction: %v", counts)
	}
	if counts[btree.FormatDelta] == 0 {
		t.Fatalf("compaction produced no delta runs: %v", counts)
	}
	verifyLiveAgainstNaive(t, eng, streams, blocks)
	if got := queryFingerprint(t, eng, blocks); got != before {
		t.Fatal("compacting into v2 changed query results")
	}
}

// TestCorruptCompressedRunSurfacesErrCorrupt flips one byte inside a
// compressed run's first leaf page and asserts queries fail with
// btree.ErrCorrupt — never silently-wrong records.
func TestCorruptCompressedRunSurfacesErrCorrupt(t *testing.T) {
	const blocks = 200
	fs := storage.NewMemFS()
	eng, err := core.Open(core.Options{
		VFS:     fs,
		Catalog: core.NewMemCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for b := uint64(0); b < blocks; b++ {
		eng.AddRef(core.Ref{Block: b, Inode: 7, Offset: b, Length: 1}, 3)
	}
	if err := eng.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	if n := formatCounts(eng)[btree.FormatDelta]; n == 0 {
		t.Fatal("no delta runs written")
	}

	// Flip a payload byte in page 1 (the first leaf) of every run file.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, name := range names {
		if !strings.HasSuffix(name, ".run") {
			continue
		}
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		off := int64(storage.PageSize) + 100
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0x40
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		f.Close()
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no run files found")
	}
	eng.ClearCaches()

	sawCorrupt := false
	for b := uint64(0); b < blocks; b++ {
		owners, err := eng.Query(b)
		if err != nil {
			if !errors.Is(err, btree.ErrCorrupt) {
				t.Fatalf("block %d: error %v, want btree.ErrCorrupt", b, err)
			}
			sawCorrupt = true
			continue
		}
		// A block the torn page doesn't cover may still answer; what it
		// answers must be the truth.
		for _, o := range owners {
			if o.Inode != 7 || o.Offset != b {
				t.Fatalf("block %d: silently-wrong owner %+v", b, o)
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("no query surfaced ErrCorrupt after corrupting every run")
	}
}
