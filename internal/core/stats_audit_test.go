package core

import (
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/obs"
)

// These tests audit the exactly-once semantics of every Stats counter and
// pin the registry mirrors to the same atomics: a counter that double
// increments (or misses an increment) on some path shows up here as a
// drifted total.

func TestStatsExactlyOnceUpdatePath(t *testing.T) {
	env := newTestEnv(t, Options{})
	defer env.eng.Close()
	e := env.eng

	for i := uint64(0); i < 10; i++ {
		e.AddRef(ref(i, 1, i, 1), 1)
	}
	// A RemoveRef at the same CP proactively prunes the matching AddRef:
	// RefsRemoved counts the call, PrunedRemoves counts the cancellation.
	e.RemoveRef(ref(0, 1, 0, 1), 1)
	// A RemoveRef at a later CP is a plain interval close, no pruning.
	if err := e.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	e.RemoveRef(ref(1, 1, 1, 1), 2)

	st := e.Stats()
	if st.RefsAdded != 10 {
		t.Errorf("RefsAdded = %d, want 10", st.RefsAdded)
	}
	if st.RefsRemoved != 2 {
		t.Errorf("RefsRemoved = %d, want 2", st.RefsRemoved)
	}
	if st.PrunedRemoves != 1 {
		t.Errorf("PrunedRemoves = %d, want 1", st.PrunedRemoves)
	}
	if st.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", st.Checkpoints)
	}
}

func TestStatsExactlyOnceQueryPath(t *testing.T) {
	env := newTestEnv(t, Options{})
	defer env.eng.Close()
	e := env.eng
	e.AddRef(ref(1, 1, 0, 1), 1)
	if err := e.Checkpoint(1); err != nil {
		t.Fatal(err)
	}

	if _, err := e.Query(1); err != nil {
		t.Fatal(err)
	}
	// QueryRange counts one query per block visited, not one per call.
	err := e.QueryRange(0, 8, func(uint64, []Owner) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Queries != 9 {
		t.Errorf("Queries = %d, want 9 (1 Query + 8 QueryRange blocks)", st.Queries)
	}
}

func TestStatsExactlyOnceMaintenance(t *testing.T) {
	env := newTestEnv(t, Options{})
	defer env.eng.Close()
	e := env.eng

	// Two checkpoints build two runs per touched partition; one Compact
	// pass then counts each compacted partition exactly once, however
	// many runs it merged.
	for cp := uint64(1); cp <= 2; cp++ {
		for i := uint64(0); i < 8; i++ {
			e.AddRef(ref(i, 1, i, 1), cp)
		}
		if err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1 (one partition compacted once)", st.Compactions)
	}
	if st.Checkpoints != 2 {
		t.Errorf("Checkpoints = %d, want 2", st.Checkpoints)
	}
	// An immediate second Compact finds nothing to merge below the
	// 2-run floor and must not inflate the counter.
	before := st.Compactions
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Compactions != before {
		t.Errorf("idle Compact moved Compactions %d -> %d", before, st.Compactions)
	}
}

// TestRegistryMirrorsStats pins every registry counter mirror to its
// Stats source: after a workload touching updates, queries, checkpoints,
// and compaction, the snapshot and Stats must agree exactly (they read
// the same atomics).
func TestRegistryMirrorsStats(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestEnv(t, Options{Metrics: reg, MetricsSampleEvery: 1})
	defer env.eng.Close()
	e := env.eng

	for cp := uint64(1); cp <= 3; cp++ {
		for i := uint64(0); i < 16; i++ {
			e.AddRef(ref(i, 1, i, cp), cp)
		}
		e.RemoveRef(ref(1, 1, 1, cp), cp)
		if err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query(3); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	s := reg.Snapshot()
	mirrors := map[string]uint64{
		"backlog_refs_added_total":      st.RefsAdded,
		"backlog_refs_removed_total":    st.RefsRemoved,
		"backlog_pruned_adds_total":     st.PrunedAdds,
		"backlog_pruned_removes_total":  st.PrunedRemoves,
		"backlog_checkpoints_total":     st.Checkpoints,
		"backlog_compactions_total":     st.Compactions,
		"backlog_records_flushed_total": st.RecordsFlushed,
		"backlog_records_purged_total":  st.RecordsPurged,
		"backlog_queries_total":         st.Queries,
		"backlog_relocations_total":     st.Relocations,
		"backlog_expiries_total":        st.Expiries,
		"backlog_wal_replayed_total":    st.WALReplayed,
	}
	for name, want := range mirrors {
		got, ok := s.Counter(name)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	// Sanity: the workload actually moved the interesting counters.
	if st.RefsAdded != 48 || st.Checkpoints != 3 || st.RecordsFlushed == 0 {
		t.Errorf("workload under-exercised: %+v", st)
	}
}

// TestCheckpointPhaseHistogramsMatchStats verifies the deprecated
// Stats.Checkpoint*Nanos counters and their histogram successors observe
// the same phases the same number of times.
func TestCheckpointPhaseHistogramsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestEnv(t, Options{Metrics: reg})
	defer env.eng.Close()
	e := env.eng
	for cp := uint64(1); cp <= 2; cp++ {
		e.AddRef(ref(cp, 1, 0, 1), cp)
		if err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	s := reg.Snapshot()
	for name, nanos := range map[string]uint64{
		"backlog_checkpoint_freeze_ns":  st.CheckpointSwapNanos,
		"backlog_checkpoint_flush_ns":   st.CheckpointFlushNanos,
		"backlog_checkpoint_install_ns": st.CheckpointInstallNanos,
	} {
		h, ok := s.Histogram(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if h.Count != 2 {
			t.Errorf("%s count = %d, want 2", name, h.Count)
		}
		if h.Sum != nanos {
			t.Errorf("%s sum = %d, Stats counter says %d", name, h.Sum, nanos)
		}
	}
}

// TestSlowOpCounterMatchesLog verifies backlog_slow_ops_total counts
// exactly the retained-eligible events.
func TestSlowOpCounterMatchesLog(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestEnv(t, Options{Metrics: reg, SlowOpThreshold: time.Nanosecond, SlowOpLogSize: 4})
	defer env.eng.Close()
	e := env.eng
	for i := uint64(0); i < 10; i++ {
		e.AddRef(ref(i, 1, i, 1), 1)
	}
	s := reg.Snapshot()
	total, ok := s.Counter("backlog_slow_ops_total")
	if !ok {
		t.Fatal("backlog_slow_ops_total not registered")
	}
	if total != 10 {
		t.Errorf("backlog_slow_ops_total = %d, want 10 (1ns threshold retains every op)", total)
	}
	if got := len(e.SlowOps()); got != 4 {
		t.Errorf("SlowOps returned %d events, want ring capacity 4", got)
	}
}
