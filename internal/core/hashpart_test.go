package core

import (
	"math/rand"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// TestHashPartitioningEquivalence runs the same workload under range and
// hash partitioning and requires identical query results, including across
// compaction and relocation.
func TestHashPartitioningEquivalence(t *testing.T) {
	type env struct {
		eng *Engine
		cat *MemCatalog
	}
	build := func(hash bool) env {
		fs := storage.NewMemFS()
		cat := NewMemCatalog()
		opts := Options{VFS: fs, Catalog: cat, Partitions: 4}
		if hash {
			opts.HashPartitioning = true
		} else {
			opts.PartitionSpan = 250
		}
		eng, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		return env{eng: eng, cat: cat}
	}
	a, b := build(false), build(true)

	rng := rand.New(rand.NewSource(31))
	live := map[Ref]bool{}
	for cp := uint64(1); cp <= 20; cp++ {
		for i := 0; i < 25; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				r := ref(uint64(rng.Intn(1000)), uint64(1+rng.Intn(5)), uint64(rng.Intn(4)), 0)
				if live[r] {
					continue
				}
				a.eng.AddRef(r, cp)
				b.eng.AddRef(r, cp)
				live[r] = true
			} else {
				for r := range live {
					a.eng.RemoveRef(r, cp)
					b.eng.RemoveRef(r, cp)
					delete(live, r)
					break
				}
			}
		}
		if cp%5 == 0 {
			if err := a.cat.CreateSnapshot(0, cp); err != nil {
				t.Fatal(err)
			}
			if err := b.cat.CreateSnapshot(0, cp); err != nil {
				t.Fatal(err)
			}
		}
		mustCheckpoint(t, a.eng, cp)
		mustCheckpoint(t, b.eng, cp)
	}
	compare := func(label string) {
		t.Helper()
		for blk := uint64(0); blk < 1000; blk++ {
			ra := mustQuery(t, a.eng, blk)
			rb := mustQuery(t, b.eng, blk)
			if !ownersEqual(ra, rb) {
				t.Fatalf("%s: block %d differs:\nrange=%+v\nhash=%+v", label, blk, ra, rb)
			}
		}
	}
	compare("pre-compaction")

	mustCompact(t, a.eng)
	mustCompact(t, b.eng)
	compare("post-compaction")

	// Relocation exercises the deletion vectors under both schemes.
	var moved uint64
	for r := range live {
		moved = r.Block
		break
	}
	if err := a.eng.RelocateBlock(moved, 5000); err != nil {
		t.Fatal(err)
	}
	if err := b.eng.RelocateBlock(moved, 5000); err != nil {
		t.Fatal(err)
	}
	mustCheckpoint(t, a.eng, 21)
	mustCheckpoint(t, b.eng, 21)
	mustCompact(t, a.eng)
	mustCompact(t, b.eng)
	ra := mustQuery(t, a.eng, 5000)
	rb := mustQuery(t, b.eng, 5000)
	if !ownersEqual(ra, rb) || len(ra) == 0 {
		t.Fatalf("relocated block differs: range=%+v hash=%+v", ra, rb)
	}
	compare("post-relocation")
}

// TestHashPartitioningSpreadsLoad checks the scheme's motivation: block
// ranges that are contiguous (and so would all land in one range
// partition) spread across all hash partitions.
func TestHashPartitioningSpreadsLoad(t *testing.T) {
	fs := storage.NewMemFS()
	eng, err := Open(Options{
		VFS: fs, Catalog: NewMemCatalog(),
		Partitions: 4, HashPartitioning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2000 contiguous blocks — a freshly written file region.
	for i := uint64(0); i < 2000; i++ {
		eng.AddRef(ref(i, 1, i, 0), 1)
	}
	mustCheckpoint(t, eng, 1)
	counts := make([]uint64, 4)
	for p := 0; p < 4; p++ {
		for _, r := range eng.DB().Table(TableFrom).Runs(p) {
			counts[p] += r.Records()
		}
	}
	var total uint64
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d got no records", p)
		}
		if c < 300 || c > 700 {
			t.Fatalf("partition %d unbalanced: %d of 2000", p, c)
		}
		total += c
	}
	if total != 2000 {
		t.Fatalf("total records %d, want 2000", total)
	}
}

// TestHashPartitioningValidation ensures hash mode doesn't require a span.
func TestHashPartitioningValidation(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := Open(Options{VFS: fs, Catalog: NewMemCatalog(), Partitions: 3}); err == nil {
		t.Fatal("range partitions without span accepted")
	}
	if _, err := Open(Options{VFS: fs, Catalog: NewMemCatalog(), Partitions: 3, HashPartitioning: true}); err != nil {
		t.Fatalf("hash partitions rejected: %v", err)
	}
}
