package core

import "testing"

// Unit tests for the compaction-policy layer: the triggers, the exact
// run sets jobs name, the horizon rule, and job ordering — all against
// views pinned from real engines, with the trigger knobs passed
// explicitly through PlanContext.

// planOn pins a view and runs pol.Plan under a caller-built context,
// mirroring Engine.planJobs with the knobs explicit.
func planOn(e *Engine, pol CompactionPolicy, ctx PlanContext) []CompactionJob {
	e.mu.RLock()
	v := e.db.AcquireView()
	e.mu.RUnlock()
	defer v.Release()
	return pol.Plan(v, ctx)
}

func baseCtx(e *Engine) PlanContext {
	return PlanContext{
		Partitions: e.db.Partitions(),
		Threshold:  DefaultCompactThreshold,
		Fanout:     DefaultFanout,
	}
}

func TestPolicyNames(t *testing.T) {
	if got := (PolicyFull{}).Name(); got != "full" {
		t.Errorf("PolicyFull.Name() = %q", got)
	}
	if got := (PolicyLeveled{}).Name(); got != "leveled" {
		t.Errorf("PolicyLeveled.Name() = %q", got)
	}
}

// TestPolicyFullThresholdGate: no job at exactly Threshold runs, one
// Full job for the partition one run past it.
func TestPolicyFullThresholdGate(t *testing.T) {
	env := newTestEnv(t, Options{})
	defer env.eng.Close()
	for cp := uint64(1); cp <= DefaultCompactThreshold; cp++ {
		env.eng.AddRef(ref(cp, 2, 0, 0), cp)
		mustCheckpoint(t, env.eng, cp)
	}
	ctx := baseCtx(env.eng)
	if jobs := planOn(env.eng, PolicyFull{}, ctx); len(jobs) != 0 {
		t.Fatalf("at threshold: planned %d jobs, want 0", len(jobs))
	}
	env.eng.AddRef(ref(99, 2, 0, 0), DefaultCompactThreshold+1)
	mustCheckpoint(t, env.eng, DefaultCompactThreshold+1)
	jobs := planOn(env.eng, PolicyFull{}, ctx)
	if len(jobs) != 1 {
		t.Fatalf("past threshold: planned %d jobs, want 1", len(jobs))
	}
	if !jobs[0].Full || jobs[0].Partition != 0 {
		t.Fatalf("job = %+v, want a Full job for partition 0", jobs[0])
	}
}

// TestPolicyFullWorstFirst: with several partitions over threshold, the
// plan names the partition with the most runs.
func TestPolicyFullWorstFirst(t *testing.T) {
	env := newTestEnv(t, Options{Partitions: 4, HashPartitioning: true})
	defer env.eng.Close()
	for cp := uint64(1); cp <= 12; cp++ {
		env.eng.AddRef(ref(cp, 2, 0, 0), cp)
		mustCheckpoint(t, env.eng, cp)
	}
	counts := map[int]int{}
	for _, ri := range env.eng.RunInfos() {
		counts[ri.Partition]++
	}
	worst, max := 0, 0
	for p := 0; p < 4; p++ {
		if counts[p] > max {
			worst, max = p, counts[p]
		}
	}
	ctx := baseCtx(env.eng)
	ctx.Threshold = 1
	jobs := planOn(env.eng, PolicyFull{}, ctx)
	if len(jobs) != 1 || jobs[0].Partition != worst {
		t.Fatalf("jobs = %+v, want one Full job for worst partition %d (counts %v)", jobs, worst, counts)
	}
}

// TestPolicyLeveledFanoutTrigger: a level is merged only once one of its
// tables reaches Fanout runs, and the job then names every run of the
// level, targeting the next level.
func TestPolicyLeveledFanoutTrigger(t *testing.T) {
	env := newTestEnv(t, Options{})
	defer env.eng.Close()
	for cp := uint64(1); cp <= DefaultFanout-1; cp++ {
		env.eng.AddRef(ref(cp, 2, 0, 0), cp)
		mustCheckpoint(t, env.eng, cp)
	}
	ctx := baseCtx(env.eng)
	if jobs := planOn(env.eng, PolicyLeveled{}, ctx); len(jobs) != 0 {
		t.Fatalf("below fanout: planned %d jobs, want 0", len(jobs))
	}
	env.eng.AddRef(ref(99, 2, 0, 0), DefaultFanout)
	mustCheckpoint(t, env.eng, DefaultFanout)
	jobs := planOn(env.eng, PolicyLeveled{}, ctx)
	if len(jobs) != 1 {
		t.Fatalf("at fanout: planned %d jobs, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Full || job.Partition != 0 || job.OutputLevel != 1 {
		t.Fatalf("job = %+v, want a non-Full partition-0 job targeting level 1", job)
	}
	if len(job.From) != DefaultFanout || len(job.To) != 0 || len(job.Combined) != 0 {
		t.Fatalf("job inputs = %d From, %d To, %d Combined, want %d/0/0",
			len(job.From), len(job.To), len(job.Combined), DefaultFanout)
	}
	ctx.Fanout = DefaultFanout + 4
	if jobs := planOn(env.eng, PolicyLeveled{}, ctx); len(jobs) != 0 {
		t.Fatalf("higher fanout still planned %d jobs", len(jobs))
	}
}

// TestPolicyLeveledTakesWholeLevel: one table reaching Fanout pulls the
// sibling tables' runs at that level into the same job — a level merge
// must see every run of the level so record pairing stays local.
func TestPolicyLeveledTakesWholeLevel(t *testing.T) {
	env := newTestEnv(t, Options{})
	defer env.eng.Close()
	for cp := uint64(1); cp <= DefaultFanout; cp++ {
		env.eng.AddRef(ref(cp, 2, 0, 0), cp)
		if cp > 1 {
			env.eng.RemoveRef(ref(cp-1, 2, 0, 0), cp)
		}
		mustCheckpoint(t, env.eng, cp)
	}
	jobs := planOn(env.eng, PolicyLeveled{}, baseCtx(env.eng))
	if len(jobs) != 1 {
		t.Fatalf("planned %d jobs, want 1", len(jobs))
	}
	job := jobs[0]
	if len(job.From) != DefaultFanout || len(job.To) != DefaultFanout-1 {
		t.Fatalf("job inputs = %d From, %d To, want %d From and %d To",
			len(job.From), len(job.To), DefaultFanout, DefaultFanout-1)
	}
}

// TestPolicyLeveledSteadyState: merged levels do not re-trigger. Two
// level-0 runs merge into one level-1 run; re-planning then finds
// nothing until level 1 itself accumulates Fanout runs, at which point
// the merge targets level 2.
func TestPolicyLeveledSteadyState(t *testing.T) {
	env := newTestEnv(t, Options{
		CompactionPolicy: PolicyLeveled{},
		Fanout:           2,
		CompactPacing:    -1,
	})
	defer env.eng.Close()
	ingest := func(cp uint64) {
		env.eng.AddRef(ref(cp, 2, 0, 0), cp)
		mustCheckpoint(t, env.eng, cp)
		if err := env.eng.MaintainNow(); err != nil {
			t.Fatal(err)
		}
	}
	ingest(1)
	ingest(2)
	ctx := baseCtx(env.eng)
	ctx.Fanout = 2
	if jobs := planOn(env.eng, PolicyLeveled{}, ctx); len(jobs) != 0 {
		t.Fatalf("drained engine still plans %d jobs", len(jobs))
	}
	maxLevel := 0
	for _, ri := range env.eng.RunInfos() {
		if ri.Level > maxLevel {
			maxLevel = ri.Level
		}
	}
	if maxLevel != 1 || env.eng.RunCount() != 1 {
		t.Fatalf("after one stepped merge: %d runs, max level %d, want 1 run at level 1",
			env.eng.RunCount(), maxLevel)
	}
	ingest(3)
	ingest(4)
	maxLevel = 0
	for _, ri := range env.eng.RunInfos() {
		if ri.Level > maxLevel {
			maxLevel = ri.Level
		}
	}
	if maxLevel != 2 || env.eng.RunCount() != 1 {
		t.Fatalf("after cascading merges: %d runs, max level %d, want 1 run at level 2",
			env.eng.RunCount(), maxLevel)
	}
}

// TestPolicyLeveledJobOrdering: jobs come out sorted by output level,
// then partition, so the drain loop shrinks lower levels first.
func TestPolicyLeveledJobOrdering(t *testing.T) {
	env := newTestEnv(t, Options{Partitions: 2, HashPartitioning: true})
	defer env.eng.Close()
	for cp := uint64(1); cp <= DefaultFanout; cp++ {
		for b := uint64(0); b < 8; b++ {
			env.eng.AddRef(ref(b, 2+cp, b, 0), cp)
		}
		mustCheckpoint(t, env.eng, cp)
	}
	jobs := planOn(env.eng, PolicyLeveled{}, baseCtx(env.eng))
	if len(jobs) != 2 {
		t.Fatalf("planned %d jobs, want one per partition", len(jobs))
	}
	if jobs[0].Partition != 0 || jobs[1].Partition != 1 {
		t.Fatalf("job partitions = %d, %d, want ascending 0, 1", jobs[0].Partition, jobs[1].Partition)
	}
	for _, job := range jobs {
		if job.OutputLevel != 1 {
			t.Fatalf("job = %+v, want OutputLevel 1", job)
		}
	}
}

// sealedPair builds two sealed level-1 Combined runs in partition 0 with
// CP windows [1,2] and [3,4] (the expire_test sealedEnv shape): each
// epoch adds a reference, checkpoints, removes it, checkpoints, and runs
// a tiered compaction that pairs the two records into a sealed run.
func sealedPair(t *testing.T) *testEnv {
	t.Helper()
	env := newTestEnv(t, Options{})
	epoch := func(cp, block uint64) {
		// A snapshot at cp retains the [cp, cp+1) interval; without it the
		// tiered merge would purge the pair instead of sealing it.
		if err := env.cat.CreateSnapshot(0, cp); err != nil {
			t.Fatal(err)
		}
		env.eng.AddRef(ref(block, block, 0, 0), cp)
		mustCheckpoint(t, env.eng, cp)
		env.eng.RemoveRef(ref(block, block, 0, 0), cp+1)
		mustCheckpoint(t, env.eng, cp+1)
		if err := env.eng.CompactTiered(); err != nil {
			t.Fatal(err)
		}
	}
	epoch(1, 1)
	epoch(3, 3)
	sealed := 0
	for _, ri := range env.eng.RunInfos() {
		if ri.Table == TableCombined && ri.Level >= 1 && ri.CPWindowKnown && ri.Overrides == 0 {
			sealed++
		}
	}
	if sealed != 2 {
		t.Fatalf("built %d sealed runs, want 2: %+v", sealed, env.eng.RunInfos())
	}
	return env
}

// TestPolicyLeveledHorizonExclusion: runs the retention horizon has
// passed are never chosen as merge inputs — expiry will drop them whole,
// and merging them would rewrite records only to discard them later.
func TestPolicyLeveledHorizonExclusion(t *testing.T) {
	env := sealedPair(t)
	defer env.eng.Close()
	ctx := PlanContext{Partitions: env.eng.db.Partitions(), Fanout: 2, Tiered: true}

	// Horizon below both windows: both runs are merge candidates.
	ctx.Horizon = 1
	jobs := planOn(env.eng, PolicyLeveled{}, ctx)
	if len(jobs) != 1 || len(jobs[0].Combined) != 2 {
		t.Fatalf("horizon 1: jobs = %+v, want one job over both sealed runs", jobs)
	}
	for _, r := range jobs[0].Combined {
		if r.DroppableBelow(ctx.Horizon) {
			t.Fatal("planned a merge input the horizon has already passed")
		}
	}

	// Horizon past the first window: that run leaves the plan, and the
	// survivor alone cannot reach the fanout trigger.
	ctx.Horizon = 3
	if jobs := planOn(env.eng, PolicyLeveled{}, ctx); len(jobs) != 0 {
		t.Fatalf("horizon 3: jobs = %+v, want none (one run is expiry's)", jobs)
	}

	// Horizon past both: nothing left to plan.
	ctx.Horizon = 5
	if jobs := planOn(env.eng, PolicyLeveled{}, ctx); len(jobs) != 0 {
		t.Fatalf("horizon 5: jobs = %+v, want none", jobs)
	}
}

// TestPolicyFullTieredExcludesSealed: under tiered maintenance the full
// policy's run counting skips sealed runs, so a partition that is
// nothing but expiry-awaiting history never re-triggers.
func TestPolicyFullTieredExcludesSealed(t *testing.T) {
	env := sealedPair(t)
	defer env.eng.Close()
	ctx := PlanContext{Partitions: env.eng.db.Partitions(), Threshold: 1, Tiered: true}
	if jobs := planOn(env.eng, PolicyFull{}, ctx); len(jobs) != 0 {
		t.Fatalf("tiered: jobs = %+v, want none (all runs sealed)", jobs)
	}
	ctx.Tiered = false
	if jobs := planOn(env.eng, PolicyFull{}, ctx); len(jobs) != 1 {
		t.Fatalf("untiered: planned %d jobs, want 1", len(jobs))
	}
}
