// Leveled-maintenance concurrency tests: a -race hammer that runs
// stepped-merge compaction and drop-based expiry against the full
// concurrent workload, verified against the naive oracle, plus a
// recording-policy test that the planner never names a merge input the
// retention horizon has already passed. Package core_test for the same
// reason as maintain_test.go: the naive oracle imports core.
package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/storage"
)

// waitLeveledDrained polls until the active policy plans no further jobs.
// Under PolicyLeveled this — not MaxRuns — is the idle signal: a drained
// partition legitimately keeps one run per level.
func waitLeveledDrained(t *testing.T, eng *core.Engine) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ms := eng.MaintenanceStats()
		if ms.PendingJobs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leveled maintainer did not drain: %+v", ms)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeveledHammerAgainstNaiveOracle is the stepped-merge counterpart of
// TestMaintenanceHammerAgainstNaiveOracle, with retention in the mix:
// AddRef/RemoveRef/Query/Checkpoint race background leveled compaction
// while a snapshot goroutine creates and deletes snapshots, so expiry
// sweeps run concurrently too and the reclaim horizon keeps moving under
// the planner. Run under -race; afterwards every block's live reference
// set must match the naive oracle (expiry only ever drops completed
// history, never live references).
func TestLeveledHammerAgainstNaiveOracle(t *testing.T) {
	const (
		workers = 6
		opsEach = 1000
		blocks  = 384
		maxCP   = 12
		snapWin = 4
	)
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          cat,
		Partitions:       8,
		HashPartitioning: true,
		WriteShards:      workers,
		AutoCompact:      true,
		Retention:        core.RetainLive,
		CompactionPolicy: core.PolicyLeveled{},
		Fanout:           3,
		CompactPacing:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	streams := genOps(workers, opsEach, blocks, maxCP)

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var aux sync.WaitGroup

	// Checkpointer: every checkpoint kicks a maintenance pass (expiry,
	// then leveled merges). A sliding snapshot window retains recent
	// history and keeps deleting the oldest snapshot, so the reclaim
	// horizon advances while merges are being planned and installed.
	var cpMu sync.Mutex
	lastCP := uint64(maxCP + 1)
	aux.Add(1)
	go func() {
		defer aux.Done()
		for cp := uint64(maxCP + 2); ; cp++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := cat.CreateSnapshot(0, cp); err != nil {
				errc <- fmt.Errorf("snapshot %d: %w", cp, err)
				return
			}
			if err := eng.Checkpoint(cp); err != nil {
				errc <- fmt.Errorf("checkpoint %d: %w", cp, err)
				return
			}
			if cp >= uint64(maxCP+2+snapWin) {
				if err := cat.DeleteSnapshot(0, cp-snapWin); err != nil {
					errc <- fmt.Errorf("delete snapshot %d: %w", cp-snapWin, err)
					return
				}
			}
			cpMu.Lock()
			lastCP = cp
			cpMu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// Query hammer, racing ingest, expiry, and compaction installs.
	aux.Add(1)
	go func() {
		defer aux.Done()
		var b uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Query(b % blocks); err != nil {
				errc <- fmt.Errorf("concurrent query: %w", err)
				return
			}
			b++
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []oracleOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					eng.RemoveRef(o.ref, o.cp)
				} else {
					eng.AddRef(o.ref, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	cpMu.Lock()
	final := lastCP + 1
	cpMu.Unlock()
	if err := eng.Checkpoint(final); err != nil {
		t.Fatal(err)
	}
	waitLeveledDrained(t, eng)

	ms := eng.MaintenanceStats()
	if !ms.Enabled {
		t.Fatal("maintainer not enabled")
	}
	if ms.Policy != "leveled" || ms.Fanout != 3 {
		t.Fatalf("policy/fanout = %s/%d, want leveled/3", ms.Policy, ms.Fanout)
	}
	if ms.AutoCompactions == 0 {
		t.Fatalf("background maintainer never merged: %+v", ms)
	}
	verifyLiveAgainstNaive(t, eng, streams, blocks)
}

// recordingPolicy wraps a CompactionPolicy and audits every plan: it
// counts violations (a planned Combined input the horizon has already
// passed) and remembers whether any plan ever ran while the pinned view
// actually contained such a droppable run — so a clean result means the
// exclusion was exercised, not vacuous.
type recordingPolicy struct {
	inner core.CompactionPolicy

	mu           sync.Mutex
	plans        int
	sawDroppable bool
	violations   int
}

func (p *recordingPolicy) Name() string { return p.inner.Name() }

func (p *recordingPolicy) Plan(v *lsm.View, ctx core.PlanContext) []core.CompactionJob {
	jobs := p.inner.Plan(v, ctx)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plans++
	if ctx.Tiered && ctx.Horizon > 0 {
		for part := 0; part < ctx.Partitions; part++ {
			for _, r := range v.Runs(core.TableCombined, part) {
				if r.DroppableBelow(ctx.Horizon) {
					p.sawDroppable = true
				}
			}
		}
		for _, job := range jobs {
			for _, r := range job.Combined {
				if r.DroppableBelow(ctx.Horizon) {
					p.violations++
				}
			}
		}
	}
	return jobs
}

// TestLeveledRetainLiveNeverPlansExpiredRuns: under RetainLive, stepped
// merging must leave runs below the reclaim horizon to expiry — merging
// one would rewrite records expiry could reclaim for free (and the merge
// output's wider CP window would then pin the survivors). The recording
// policy audits every plan the engine makes, including one taken after
// the horizon moved but before any expiry sweep ran, when droppable runs
// are provably still in the view.
func TestLeveledRetainLiveNeverPlansExpiredRuns(t *testing.T) {
	rec := &recordingPolicy{inner: core.PolicyLeveled{}}
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          cat,
		Retention:        core.RetainLive,
		CompactionPolicy: rec,
		Fanout:           2,
		CompactPacing:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Two epochs of add/checkpoint/remove/checkpoint with snapshots
	// retaining the windows; the maintenance pass merges the level-0 runs
	// and seals the completed pairs into a Combined run.
	cp := uint64(0)
	epoch := func(block uint64) {
		cp++
		if err := cat.CreateSnapshot(0, cp); err != nil {
			t.Fatal(err)
		}
		eng.AddRef(fref(block, block, 0, 0), cp)
		fCheckpoint(t, eng, cp)
		cp++
		eng.RemoveRef(fref(block, block, 0, 0), cp)
		fCheckpoint(t, eng, cp)
		if err := eng.MaintainNow(); err != nil {
			t.Fatal(err)
		}
	}
	epoch(1)
	epoch(3)

	sealed := 0
	for _, ri := range eng.RunInfos() {
		if ri.Table == core.TableCombined && ri.Level >= 1 && ri.CPWindowKnown && ri.Overrides == 0 {
			sealed++
		}
	}
	if sealed == 0 {
		t.Fatalf("no sealed run after two epochs: %+v", eng.RunInfos())
	}

	// Move the horizon past everything sealed so far: one fresh snapshot
	// above the sealed windows, all older ones deleted. No checkpoint has
	// run since, so no expiry sweep has either — the droppable run is
	// still live in the manifest.
	cp++
	if err := cat.CreateSnapshot(0, cp); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 3} {
		if err := cat.DeleteSnapshot(0, id); err != nil {
			t.Fatal(err)
		}
	}
	// MaintenanceStats plans (without expiring) to report PendingJobs:
	// this plan must see the droppable run and must not touch it.
	if n := eng.MaintenanceStats().PendingJobs; n != 0 {
		t.Fatalf("planned %d jobs over expiry-ready runs, want 0", n)
	}
	rec.mu.Lock()
	saw, plans := rec.sawDroppable, rec.plans
	rec.mu.Unlock()
	if plans == 0 {
		t.Fatal("recording policy never planned")
	}
	if !saw {
		t.Fatal("no plan ever saw a droppable run; the exclusion was not exercised")
	}

	// The next maintenance pass reclaims the run by manifest edit.
	if err := eng.MaintainNow(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.RunsExpired == 0 {
		t.Fatalf("expiry reclaimed nothing: %+v", st)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.violations != 0 {
		t.Fatalf("%d planned merge inputs were below the reclaim horizon", rec.violations)
	}
}
