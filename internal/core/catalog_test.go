package core

import (
	"encoding/json"
	"testing"
)

func TestCatalogSnapshots(t *testing.T) {
	c := NewMemCatalog()
	if !c.IsLive(0) {
		t.Fatal("line 0 not live")
	}
	if err := c.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSnapshot(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSnapshot(1, 5); err == nil {
		t.Fatal("snapshot on unknown line accepted")
	}
	if got := c.SnapshotsIn(0, 0, Infinity); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("SnapshotsIn = %v", got)
	}
	if got := c.SnapshotsIn(0, 6, 9); len(got) != 0 {
		t.Fatalf("SnapshotsIn(6,9) = %v", got)
	}
	if got := c.SnapshotsIn(0, 9, 10); len(got) != 1 {
		t.Fatalf("SnapshotsIn(9,10) = %v", got)
	}
	if err := c.DeleteSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSnapshot(0, 5); err == nil {
		t.Fatal("double delete accepted")
	}
	if got := c.Snapshots(0); len(got) != 1 || got[0] != 9 {
		t.Fatalf("Snapshots = %v", got)
	}
}

func TestCatalogClones(t *testing.T) {
	c := NewMemCatalog()
	if err := c.CreateClone(1, 0, 5); err == nil {
		t.Fatal("clone of non-snapshot accepted")
	}
	if err := c.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(1, 0, 5); err == nil {
		t.Fatal("duplicate line accepted")
	}
	if !c.IsLive(1) {
		t.Fatal("clone not live")
	}
	clones := c.Clones(0)
	if len(clones) != 1 || clones[0] != (Clone{Line: 1, Base: 5}) {
		t.Fatalf("Clones = %+v", clones)
	}
	if !c.PinnedIn(0, 5, 6) {
		t.Fatal("clone base not pinned")
	}
	if c.PinnedIn(0, 6, 10) {
		t.Fatal("non-base version pinned")
	}
}

func TestCatalogZombies(t *testing.T) {
	c := NewMemCatalog()
	if err := c.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Deleting the cloned snapshot makes it a zombie: it disappears from
	// SnapshotsIn but stays pinned.
	if err := c.DeleteSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.SnapshotsIn(0, 0, Infinity); len(got) != 0 {
		t.Fatalf("zombie still listed: %v", got)
	}
	if !c.PinnedIn(0, 5, 6) {
		t.Fatal("zombie base not pinned")
	}
	if len(c.Clones(0)) != 1 {
		t.Fatal("clone of zombie not returned")
	}
	// Reaping with the clone still alive releases nothing.
	if n := c.ReapZombies(); n != 0 {
		t.Fatalf("ReapZombies released %d with live clone", n)
	}
	// Delete the clone line; the zombie can now be reaped.
	if err := c.DeleteLine(1); err != nil {
		t.Fatal(err)
	}
	if n := c.ReapZombies(); n != 1 {
		t.Fatalf("ReapZombies released %d, want 1", n)
	}
	if c.PinnedIn(0, 5, 6) {
		t.Fatal("reaped zombie still pinned")
	}
	if len(c.Clones(0)) != 0 {
		t.Fatal("dead clone still returned")
	}
}

func TestCatalogTransitiveClones(t *testing.T) {
	// line0 --snap5--> line1 --snap9--> line2; line1 deleted entirely.
	// line0's version 5 must stay pinned because line2 transitively
	// inherits through line1.
	c := NewMemCatalog()
	if err := c.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSnapshot(1, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(2, 1, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSnapshot(1, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteLine(1); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	// line1 is dead (no live FS, no snapshots) but line2 needs it.
	if !c.PinnedIn(0, 5, 6) {
		t.Fatal("transitively needed base not pinned")
	}
	if !c.PinnedIn(1, 9, 10) {
		t.Fatal("line1's cloned version not pinned")
	}
	if n := c.ReapZombies(); n != 0 {
		t.Fatalf("reaped %d while line2 alive", n)
	}
	// Kill line2: everything collapses.
	if err := c.DeleteLine(2); err != nil {
		t.Fatal(err)
	}
	c.ReapZombies()
	c.ReapZombies() // second pass collapses the now-unneeded line1 chain
	if c.PinnedIn(0, 5, 6) {
		t.Fatal("base still pinned after all descendants died")
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	c := NewMemCatalog()
	if err := c.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSnapshot(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewMemCatalog()
	if err := json.Unmarshal(data, c2); err != nil {
		t.Fatal(err)
	}
	if !c2.IsLive(1) || !c2.IsLive(0) {
		t.Fatal("liveness lost")
	}
	if got := c2.Snapshots(0); len(got) != 1 || got[0] != 9 {
		t.Fatalf("snapshots lost: %v", got)
	}
	if !c2.PinnedIn(0, 5, 6) {
		t.Fatal("zombie pin lost")
	}
	if cl := c2.Clones(0); len(cl) != 1 || cl[0].Line != 1 {
		t.Fatalf("clones lost: %+v", cl)
	}
}

func TestCatalogLines(t *testing.T) {
	c := NewMemCatalog()
	if err := c.CreateSnapshot(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateClone(7, 0, 3); err != nil {
		t.Fatal(err)
	}
	lines := c.Lines()
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 7 {
		t.Fatalf("Lines = %v", lines)
	}
}

// TestOldestReachable pins the reclaim-horizon contract: the minimum over
// every line's snapshot AND zombie versions, ok=false when nothing is
// retained, and invalidation on every mutation that can move it.
func TestOldestReachable(t *testing.T) {
	c := NewMemCatalog()
	if _, ok := c.OldestReachable(); ok {
		t.Fatal("empty catalog reports a reachable version")
	}

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	at := func(want uint64) {
		t.Helper()
		got, ok := c.OldestReachable()
		if !ok || got != want {
			t.Fatalf("OldestReachable = (%d, %v), want (%d, true)", got, ok, want)
		}
	}

	must(c.CreateSnapshot(0, 7))
	at(7)
	must(c.CreateSnapshot(0, 4))
	at(4)
	// A snapshot on a cloned line counts too.
	must(c.CreateClone(1, 0, 7))
	must(c.CreateSnapshot(1, 9))
	at(4)

	// Deleting the oldest snapshot advances the horizon...
	must(c.DeleteSnapshot(0, 4))
	at(7)
	// ...but deleting a clone base only zombifies it: version 7 stays
	// reachable until the clone disappears.
	must(c.DeleteSnapshot(0, 7))
	at(7)

	// Dropping the clone and reaping the zombie finally releases 7.
	must(c.DeleteLine(1))
	must(c.DeleteSnapshot(1, 9))
	if c.ReapZombies() != 1 {
		t.Fatal("zombie version 7 not reaped")
	}
	if _, ok := c.OldestReachable(); ok {
		t.Fatal("horizon still pinned after the last retained version died")
	}
}
