package core

import (
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
)

// Drop-based snapshot expiry. When every snapshot that could reference a
// Combined run's records has been deleted, the run as a whole is garbage:
// masking (Section 4.2.1) would filter every record in it. Compaction
// eventually discovers that record by record, reading and rewriting the
// survivors; expiry instead drops whole runs by manifest edit — no record
// is ever read — once the run's consistency-point window [MinCP, MaxCP]
// falls entirely below the oldest CP still reachable from the catalog's
// snapshot/clone graph. Runs become eligible through CP-tiered background
// compaction, which seals finished windows instead of re-merging them
// (see compact.go).

// ExpireStats reports what one Expire pass did.
type ExpireStats struct {
	// Horizon is the reclaim horizon used: the oldest CP still reachable
	// from the catalog (Infinity when no snapshot or zombie exists — then
	// only the live head pins records, and every sealed run is garbage).
	Horizon uint64
	// RunsDropped is the number of runs removed from the manifest.
	RunsDropped int
	// RecordsDropped is the number of records inside those runs; none of
	// them was read.
	RecordsDropped uint64
	// DVEntriesDropped counts deletion-vector entries garbage-collected in
	// the same manifest commit because the only runs that could contain
	// their records were dropped.
	DVEntriesDropped int
	// Deferred is set when the pass ran at an unsafe moment — a checkpoint
	// flush in flight or a dirty deletion vector whose entries are not yet
	// crash-durable — and did nothing. The caller (normally the background
	// maintainer) simply retries after the next checkpoint.
	Deferred bool
}

// ReclaimHorizon returns the expiry horizon: the oldest consistency point
// still reachable from the catalog's snapshot/clone graph, or Infinity
// when nothing is retained (then only live-head records matter, and every
// completed interval is reclaimable). A Combined run whose window lies
// strictly below the horizon cannot contribute to any query result — every
// record in it describes an interval that ended before the oldest
// snapshot any query may be masked against.
func (e *Engine) ReclaimHorizon() uint64 {
	if v, ok := e.catalog.OldestReachable(); ok {
		return v
	}
	return Infinity
}

// Expire atomically drops every Combined run whose consistency-point
// window falls entirely below the reclaim horizon. The drop is one
// manifest edit: no run is read or rewritten, deletion-vector entries
// pointing only into dropped runs are garbage-collected in the same
// commit, and the run files themselves are deleted only after the last
// pinned view referencing them is released — concurrent queries and
// compactions keep iterating their snapshots unharmed.
//
// Expire defers (returning Deferred with no error) while a checkpoint
// flush is in flight or the Combined table's deletion vector is dirty: a
// dirty vector's entries are paired with not-yet-durable write-store
// records (see RelocateBlock), and persisting a pruned copy early would
// let a crash resurrect relocated-away records. The background maintainer
// retries after every checkpoint, which is exactly when the vector comes
// clean.
func (e *Engine) Expire() (ExpireStats, error) {
	if o := e.obs; o != nil {
		start := o.opStart(obs.OpExpire, -1, 0, 0)
		st, err := e.expire()
		o.opEnd(obs.OpExpire, -1, 0, 0, start, o.expire, err)
		return st, err
	}
	return e.expire()
}

func (e *Engine) expire() (ExpireStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.flushingCP != 0 || e.db.Table(TableCombined).DVDirty() {
		return ExpireStats{Deferred: true}, nil
	}
	st := ExpireStats{Horizon: e.ReclaimHorizon()}
	edit := e.db.NewEdit().SetSource(storage.SrcExpiry)
	runs, recs := edit.DropRunsBelow(TableCombined, st.Horizon)
	if runs == 0 {
		// Nothing to drop; skip the manifest write entirely.
		return st, nil
	}
	if err := edit.Commit(); err != nil {
		return st, err
	}
	st.RunsDropped = runs
	st.RecordsDropped = recs
	st.DVEntriesDropped = edit.CollectedDVEntries()
	e.stats.expiries.Add(1)
	e.stats.runsExpired.Add(uint64(runs))
	e.stats.recordsExpired.Add(recs)
	return st, nil
}
