// Maintenance-concurrency tests live in package core_test so they can
// drive the exported engine API against the internal/naive oracle (which
// itself imports core, so an in-package test would be an import cycle).
package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/naive"
	"github.com/backlogfs/backlog/internal/storage"
)

type oracleOp struct {
	ref    core.Ref
	cp     uint64
	remove bool
}

// genOps builds deterministic per-worker operation streams with disjoint
// identities (inode = worker+1), so the final reference set is independent
// of interleaving and a single-threaded replay can serve as the oracle.
func genOps(workers, opsEach, blocks int, maxCP uint64) [][]oracleOp {
	streams := make([][]oracleOp, workers)
	for w := range streams {
		rng := rand.New(rand.NewSource(int64(4000 + w)))
		var live []core.Ref
		for i := 0; i < opsEach; i++ {
			cp := uint64(1) + uint64(i)*maxCP/uint64(opsEach)
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				r := live[k]
				live = append(live[:k], live[k+1:]...)
				streams[w] = append(streams[w], oracleOp{ref: r, cp: cp, remove: true})
			} else {
				r := core.Ref{
					Block:  uint64(rng.Intn(blocks)),
					Inode:  uint64(w + 1),
					Offset: uint64(i),
					Length: 1,
				}
				live = append(live, r)
				streams[w] = append(streams[w], oracleOp{ref: r, cp: cp})
			}
		}
	}
	return streams
}

// verifyLiveAgainstNaive replays every op into a fresh Section 4.1 naive
// tracker and compares the live reference set of every block against the
// engine.
func verifyLiveAgainstNaive(t *testing.T, eng *core.Engine, streams [][]oracleOp, blocks int) {
	t.Helper()
	oracle, err := naive.New(storage.NewMemFS(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, stream := range streams {
		for _, o := range stream {
			if o.remove {
				oracle.RemoveRef(o.ref, o.cp)
			} else {
				oracle.AddRef(o.ref, o.cp)
			}
		}
	}
	for b := uint64(0); b < uint64(blocks); b++ {
		recs, err := oracle.QueryBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		want := map[core.Ref]bool{}
		for _, r := range recs {
			if r.To == core.Infinity {
				want[r.Ref] = true
			}
		}
		owners, err := eng.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		got := map[core.Ref]bool{}
		for _, o := range owners {
			if o.Live {
				got[core.Ref{Block: b, Inode: o.Inode, Offset: o.Offset, Line: o.Line, Length: o.Length}] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d live owners, oracle says %d\n got: %v\nwant: %v",
				b, len(got), len(want), got, want)
		}
		for r := range want {
			if !got[r] {
				t.Fatalf("block %d: oracle reference %+v missing", b, r)
			}
		}
	}
}

// waitMaintained polls until no partition exceeds the maintenance
// threshold (or fails the test after a deadline).
func waitMaintained(t *testing.T, eng *core.Engine) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ms := eng.MaintenanceStats()
		if ms.MaxRuns <= ms.CompactThreshold {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("maintainer did not drain: %+v", ms)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMaintenanceHammerAgainstNaiveOracle runs AddRef/RemoveRef/Query/
// Checkpoint from many goroutines while the background maintainer
// compacts concurrently, then verifies every block's live reference set
// against the naive oracle. Run it under -race: it is the regression net
// for the view-based lock-free read path and optimistic compaction
// install.
func TestMaintenanceHammerAgainstNaiveOracle(t *testing.T) {
	const (
		workers = 6
		opsEach = 1200
		blocks  = 384
		maxCP   = 12
	)
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          core.NewMemCatalog(),
		Partitions:       8,
		HashPartitioning: true,
		WriteShards:      workers,
		AutoCompact:      true,
		CompactThreshold: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	streams := genOps(workers, opsEach, blocks, maxCP)

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var aux sync.WaitGroup

	// Checkpointer: every checkpoint also kicks the maintainer, so
	// background compactions race the whole workload.
	var cpMu sync.Mutex
	lastCP := uint64(maxCP + 1)
	aux.Add(1)
	go func() {
		defer aux.Done()
		for cp := uint64(maxCP + 2); ; cp++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Checkpoint(cp); err != nil {
				errc <- fmt.Errorf("checkpoint %d: %w", cp, err)
				return
			}
			cpMu.Lock()
			lastCP = cp
			cpMu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// Query hammer: results race with ingest by design; this drives the
	// pinned-view read path concurrently with compaction installs.
	aux.Add(1)
	go func() {
		defer aux.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Query(uint64(rng.Intn(blocks))); err != nil {
				errc <- fmt.Errorf("concurrent query: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []oracleOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					eng.RemoveRef(o.ref, o.cp)
				} else {
					eng.AddRef(o.ref, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	cpMu.Lock()
	final := lastCP + 1
	cpMu.Unlock()
	if err := eng.Checkpoint(final); err != nil {
		t.Fatal(err)
	}
	waitMaintained(t, eng)

	ms := eng.MaintenanceStats()
	if !ms.Enabled {
		t.Fatal("maintainer not enabled")
	}
	if ms.AutoCompactions == 0 {
		t.Fatalf("background maintainer never compacted: %+v", ms)
	}
	verifyLiveAgainstNaive(t, eng, streams, blocks)
}

// TestAutoCompactKeepsRunCountBounded checks the scheduler end to end on
// a single-threaded workload: runs pile up past the threshold, the
// maintainer drains them back under it, and query results survive.
func TestAutoCompactKeepsRunCountBounded(t *testing.T) {
	const (
		cps    = 30
		perCP  = 200
		blocks = 128
	)
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          core.NewMemCatalog(),
		Partitions:       4,
		HashPartitioning: true,
		AutoCompact:      true,
		CompactThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var streams [][]oracleOp
	var ops []oracleOp
	rng := rand.New(rand.NewSource(5))
	for cp := uint64(1); cp <= cps; cp++ {
		for i := 0; i < perCP; i++ {
			ref := core.Ref{
				Block:  uint64(rng.Intn(blocks)),
				Inode:  1,
				Offset: uint64(cp)<<20 | uint64(i),
				Length: 1,
			}
			eng.AddRef(ref, cp)
			ops = append(ops, oracleOp{ref: ref, cp: cp})
		}
		if err := eng.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	streams = append(streams, ops)
	waitMaintained(t, eng)

	ms := eng.MaintenanceStats()
	if ms.AutoCompactions == 0 {
		t.Fatalf("maintainer idle despite %d checkpoints: %+v", cps, ms)
	}
	if ms.MaxRuns > ms.CompactThreshold {
		t.Fatalf("MaxRuns = %d above threshold %d", ms.MaxRuns, ms.CompactThreshold)
	}
	verifyLiveAgainstNaive(t, eng, streams, blocks)
}

// TestCompactThresholdClampedAboveSteadyState: a fully compacted
// partition holds up to two runs (From + Combined), so a configured
// threshold of 1 must clamp to 2 — otherwise the maintainer would
// re-merge an already-minimal partition forever.
func TestCompactThresholdClampedAboveSteadyState(t *testing.T) {
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          core.NewMemCatalog(),
		AutoCompact:      true,
		CompactThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.MaintenanceStats().CompactThreshold; got != 2 {
		t.Fatalf("effective threshold = %d, want 2", got)
	}
	// Live and completed references together force both a From and a
	// Combined run out of compaction; the maintainer must still converge.
	cat := eng.Catalog().(*core.MemCatalog)
	if err := cat.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	for cp := uint64(1); cp <= 6; cp++ {
		for i := 0; i < 64; i++ {
			eng.AddRef(core.Ref{Block: uint64(i), Inode: cp, Offset: uint64(i), Length: 1}, cp)
		}
		if cp > 1 {
			for i := 0; i < 64; i++ {
				eng.RemoveRef(core.Ref{Block: uint64(i), Inode: cp - 1, Offset: uint64(i), Length: 1}, cp)
			}
		}
		if err := eng.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	waitMaintained(t, eng)
}

// TestCompactContinuesPastPartitionErrors: a failing partition must not
// stop the pass, the error must be reported, and Stats.Compactions must
// count partitions actually compacted — not passes, and not failed
// attempts.
func TestCompactContinuesPastPartitionErrors(t *testing.T) {
	fs := storage.NewMemFS()
	eng, err := core.Open(core.Options{
		VFS:              fs,
		Catalog:          core.NewMemCatalog(),
		Partitions:       4,
		HashPartitioning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Retain a snapshot so the completed intervals below survive the
	// purge, then add every reference at CP 1 and remove it at CP 2: the
	// compacted state is a single Combined run per partition (From and To
	// empty), which a repeated pass recognizes as nothing-to-merge.
	cat := eng.Catalog().(*core.MemCatalog)
	if err := cat.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		eng.AddRef(core.Ref{Block: uint64(i), Inode: 1, Offset: uint64(i), Length: 1}, 1)
	}
	if err := eng.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		eng.RemoveRef(core.Ref{Block: uint64(i), Inode: 1, Offset: uint64(i), Length: 1}, 2)
	}
	if err := eng.Checkpoint(2); err != nil {
		t.Fatal(err)
	}

	// Every partition now holds runs. Fail all writes shortly into the
	// pass: the first partition's merge dies, later partitions must still
	// be attempted (and die too — the plan is global), and the error must
	// mention more than one partition.
	fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: 1})
	err = eng.Compact()
	if err == nil {
		t.Fatal("Compact succeeded under write-failure injection")
	}
	var failed int
	for p := 0; p < 4; p++ {
		if strings.Contains(err.Error(), fmt.Sprintf("partition %d", p)) {
			failed++
		}
	}
	if failed < 2 {
		t.Fatalf("joined error covers %d partitions, want >= 2: %v", failed, err)
	}
	if got := eng.Stats().Compactions; got != 0 {
		t.Fatalf("Compactions = %d after failed pass, want 0", got)
	}

	// Clear the plan: the pass completes and counts one compaction per
	// partition with mergeable runs.
	fs.SetFailurePlan(storage.FailurePlan{})
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Compactions; got != 4 {
		t.Fatalf("Compactions = %d, want 4 (one per partition)", got)
	}
	// A second pass has nothing to merge and counts nothing.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Compactions; got != 4 {
		t.Fatalf("Compactions = %d after no-op pass, want 4", got)
	}
}
