package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// ingestOp is one pre-generated write operation of a worker's stream.
type ingestOp struct {
	r      Ref
	cp     uint64
	remove bool
}

// genStreams builds deterministic per-worker operation streams. Identities
// are disjoint across workers (inode = worker+1, offset = op index), so
// the final record set — and therefore every query result — is independent
// of how the streams interleave, which is what lets a single-threaded
// replay serve as the oracle.
func genStreams(workers, opsEach, blocks int, maxCP uint64) [][]ingestOp {
	streams := make([][]ingestOp, workers)
	for w := range streams {
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		var live []Ref
		for i := 0; i < opsEach; i++ {
			cp := uint64(1) + uint64(i)*maxCP/uint64(opsEach)
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				r := live[k]
				live = append(live[:k], live[k+1:]...)
				streams[w] = append(streams[w], ingestOp{r: r, cp: cp, remove: true})
			} else {
				r := Ref{
					Block:  uint64(rng.Intn(blocks)),
					Inode:  uint64(w + 1),
					Offset: uint64(i),
					Length: 1,
				}
				live = append(live, r)
				streams[w] = append(streams[w], ingestOp{r: r, cp: cp})
			}
		}
	}
	return streams
}

// TestConcurrentIngestMatchesOracle hammers AddRef/RemoveRef from several
// goroutines while checkpoints, compactions, and queries run concurrently,
// then verifies every block's query result against a single-shard engine
// that replayed the same operations single-threaded. Run it under -race.
func TestConcurrentIngestMatchesOracle(t *testing.T) {
	const (
		workers = 8
		opsEach = 1500
		blocks  = 512
		maxCP   = 16
	)
	env := newTestEnv(t, Options{WriteShards: workers})
	oracle := newTestEnv(t, Options{WriteShards: 1})

	// Retain every CP version of line 0 in both catalogs so completed
	// intervals survive masking (and concurrent compaction's purge).
	for v := uint64(1); v <= maxCP+1; v++ {
		for _, cat := range []*MemCatalog{env.cat, oracle.cat} {
			if err := cat.CreateSnapshot(0, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	streams := genStreams(workers, opsEach, blocks, maxCP)

	stop := make(chan struct{})
	errc := make(chan error, 4)

	// Concurrent checkpointer: flushes all shards in parallel at an
	// increasing CP, with an occasional full compaction mixed in.
	var lastCP uint64
	cpDone := make(chan struct{})
	go func() {
		defer close(cpDone)
		for cp := uint64(maxCP + 2); ; cp++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := env.eng.Checkpoint(cp); err != nil {
				errc <- fmt.Errorf("checkpoint %d: %w", cp, err)
				return
			}
			lastCP = cp
			if cp%8 == 0 {
				if err := env.eng.Compact(); err != nil {
					errc <- fmt.Errorf("compact at %d: %w", cp, err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Concurrent query hammer: results are not asserted mid-flight (they
	// race with ingest by design); this exists to drive the shared read
	// path under -race.
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := env.eng.Query(uint64(rng.Intn(blocks))); err != nil {
				errc <- fmt.Errorf("concurrent query: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []ingestOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					env.eng.RemoveRef(o.r, o.cp)
				} else {
					env.eng.AddRef(o.r, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	close(stop)
	<-cpDone
	<-queryDone
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Drain everything still buffered, then replay single-threaded.
	final := lastCP + 1
	if final < maxCP+2 {
		final = maxCP + 2
	}
	mustCheckpoint(t, env.eng, final)
	for _, stream := range streams {
		for _, o := range stream {
			if o.remove {
				oracle.eng.RemoveRef(o.r, o.cp)
			} else {
				oracle.eng.AddRef(o.r, o.cp)
			}
		}
	}
	mustCheckpoint(t, oracle.eng, final)

	if got := env.eng.WSLen(); got != 0 {
		t.Fatalf("WSLen = %d after final checkpoint", got)
	}
	var totalOps uint64
	for _, stream := range streams {
		for _, o := range stream {
			if !o.remove {
				totalOps++
			}
		}
	}
	if st := env.eng.Stats(); st.RefsAdded != totalOps {
		t.Fatalf("RefsAdded = %d, want %d", st.RefsAdded, totalOps)
	}

	for b := uint64(0); b < blocks; b++ {
		got := mustQuery(t, env.eng, b)
		want := mustQuery(t, oracle.eng, b)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("block %d: sharded engine disagrees with oracle\ngot  %+v\nwant %+v", b, got, want)
		}
	}
}

// TestConcurrentMixedWorkloadRaces drives every public mutating entry
// point at once — ingest, checkpoints, compaction, relocation, point and
// range queries — purely for race and deadlock coverage. Relocations use a
// block range the ingest workers never touch, so every call must succeed.
func TestConcurrentMixedWorkloadRaces(t *testing.T) {
	const (
		workers     = 4
		opsEach     = 800
		blocks      = 256
		relocBase   = uint64(1 << 20)
		relocatable = 64
	)
	env := newTestEnv(t, Options{WriteShards: 0}) // 0 = GOMAXPROCS default
	// Keep line 0 alive with a snapshot so concurrent compaction retains
	// (rather than purges) the records relocation shuffles around.
	if err := env.cat.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < relocatable; i++ {
		env.eng.AddRef(Ref{Block: relocBase + i, Inode: 7777, Offset: i, Length: 1}, 1)
	}
	mustCheckpoint(t, env.eng, 1)

	streams := genStreams(workers, opsEach, blocks, 8)
	stop := make(chan struct{})
	errc := make(chan error, 8)
	var aux sync.WaitGroup

	aux.Add(1)
	go func() { // checkpoints + compaction
		defer aux.Done()
		for cp := uint64(10); ; cp++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := env.eng.Checkpoint(cp); err != nil {
				errc <- err
				return
			}
			if cp%6 == 0 {
				if err := env.eng.Compact(); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	aux.Add(1)
	go func() { // relocations in a private block range
		defer aux.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			old := relocBase + i%relocatable
			if err := env.eng.RelocateBlock(old, old+relocatable); err != nil {
				errc <- err
				return
			}
			if err := env.eng.RelocateBlock(old+relocatable, old); err != nil {
				errc <- err
				return
			}
		}
	}()
	aux.Add(1)
	go func() { // point + range queries
		defer aux.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := env.eng.Query(uint64(rng.Intn(blocks))); err != nil {
				errc <- err
				return
			}
			err := env.eng.QueryRange(uint64(rng.Intn(blocks)), 4, func(uint64, []Owner) bool { return true })
			if err != nil {
				errc <- err
				return
			}
			_ = env.eng.WSLen()
			_ = env.eng.Stats()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []ingestOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					env.eng.RemoveRef(o.r, o.cp)
				} else {
					env.eng.AddRef(o.r, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// The engine must still be fully functional afterwards.
	mustCheckpoint(t, env.eng, 1<<30)
	if got := env.eng.WSLen(); got != 0 {
		t.Fatalf("WSLen = %d after final checkpoint", got)
	}
}
