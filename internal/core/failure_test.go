package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// TestCheckpointFailureLeavesOldStateRecoverable injects a write failure
// partway into a checkpoint flush, then crashes: reopening must recover
// the previous CP exactly, and replaying the lost operations must converge
// to the intended state.
func TestCheckpointFailureLeavesOldStateRecoverable(t *testing.T) {
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddRef(ref(1, 1, 0, 0), 1)
	mustCheckpoint(t, eng, 1)

	// CP 2's ops, with a failure bomb armed a few pages ahead.
	journal := []Ref{ref(2, 2, 0, 0), ref(3, 3, 0, 0), ref(4, 4, 0, 0)}
	for _, r := range journal {
		eng.AddRef(r, 2)
	}
	st := fs.Stats()
	fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: st.PageWrites + 2, TornWrite: true})
	if err := eng.Checkpoint(2); err == nil {
		t.Fatal("checkpoint succeeded despite injected failure")
	} else if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("unexpected error: %v", err)
	}
	fs.SetFailurePlan(storage.FailurePlan{})
	fs.Crash()

	// Recover: the database must be exactly at CP 1.
	eng2, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if eng2.CP() != 1 {
		t.Fatalf("recovered CP = %d, want 1", eng2.CP())
	}
	if got := mustQuery(t, eng2, 1); len(got) != 1 {
		t.Fatalf("pre-crash data lost: %+v", got)
	}
	for _, r := range journal {
		if got := mustQuery(t, eng2, r.Block); len(got) != 0 {
			t.Fatalf("partial checkpoint visible for block %d: %+v", r.Block, got)
		}
	}
	// Journal replay (the file system re-drives its log).
	for _, r := range journal {
		eng2.AddRef(r, 2)
	}
	mustCheckpoint(t, eng2, 2)
	for _, r := range journal {
		if got := mustQuery(t, eng2, r.Block); len(got) != 1 {
			t.Fatalf("replayed block %d missing: %+v", r.Block, got)
		}
	}
}

// TestCompactionFailureIsAtomic injects failures at many points inside a
// compaction; whichever point it dies at, reopening must see either the
// fully-old or the fully-new state, never a mixture.
func TestCompactionFailureIsAtomic(t *testing.T) {
	build := func() (*storage.MemFS, *MemCatalog) {
		fs := storage.NewMemFS()
		cat := NewMemCatalog()
		eng, err := Open(Options{VFS: fs, Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		for cp := uint64(1); cp <= 6; cp++ {
			eng.AddRef(ref(cp*10, cp, 0, 0), cp)
			if cp > 2 {
				eng.RemoveRef(ref((cp-2)*10, cp-2, 0, 0), cp)
			}
			mustCheckpoint(t, eng, cp)
			if err := cat.CreateSnapshot(0, cp); err != nil {
				t.Fatal(err)
			}
		}
		return fs, cat
	}

	// Reference answers from an untouched copy.
	refFS, refCat := build()
	refEng, err := Open(Options{VFS: refFS, Catalog: refCat})
	if err != nil {
		t.Fatal(err)
	}
	wantOwners := map[uint64]int{}
	for b := uint64(10); b <= 60; b += 10 {
		wantOwners[b] = len(mustQuery(t, refEng, b))
	}

	for bomb := int64(1); bomb <= 40; bomb += 3 {
		fs, cat := build()
		eng, err := Open(Options{VFS: fs, Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		st := fs.Stats()
		fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: st.PageWrites + bomb})
		errCompact := eng.Compact()
		fs.SetFailurePlan(storage.FailurePlan{})
		fs.Crash()

		eng2, err := Open(Options{VFS: fs, Catalog: cat})
		if err != nil {
			t.Fatalf("bomb %d: reopen: %v", bomb, err)
		}
		for b, want := range wantOwners {
			got := mustQuery(t, eng2, b)
			if len(got) != want {
				t.Fatalf("bomb %d (compact err %v): block %d has %d owners, want %d",
					bomb, errCompact, b, len(got), want)
			}
		}
	}
}

// TestRandomCrashPoints hammers a mixed workload with crash points after
// every few committed CPs, verifying recovered state always equals the
// last committed CP's state.
func TestRandomCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	type state map[uint64]int // block -> owner count at last checkpoint
	committed := state{}
	live := map[Ref]bool{}

	for cp := uint64(1); cp <= 30; cp++ {
		for i := 0; i < 10; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				r := ref(uint64(rng.Intn(40)), uint64(1+rng.Intn(4)), uint64(rng.Intn(3)), 0)
				if !live[r] {
					eng.AddRef(r, cp)
					live[r] = true
				}
			} else {
				for r := range live {
					eng.RemoveRef(r, cp)
					delete(live, r)
					break
				}
			}
		}
		mustCheckpoint(t, eng, cp)
		committed = state{}
		for r := range live {
			committed[r.Block]++
		}

		if cp%7 == 0 {
			// Buffer some doomed ops, then crash.
			doomed := ref(999, 9, 9, 0)
			eng.AddRef(doomed, cp+1)
			fs.Crash()
			eng, err = Open(Options{VFS: fs, Catalog: cat})
			if err != nil {
				t.Fatal(err)
			}
			if eng.CP() != cp {
				t.Fatalf("recovered CP %d, want %d", eng.CP(), cp)
			}
			for b, want := range committed {
				got := 0
				for _, o := range mustQuery(t, eng, b) {
					if o.Live {
						got++
					}
				}
				if got != want {
					t.Fatalf("cp %d: block %d live owners %d, want %d", cp, b, got, want)
				}
			}
			if got := mustQuery(t, eng, 999); len(got) != 0 {
				t.Fatal("uncommitted op survived crash")
			}
		}
	}
}
