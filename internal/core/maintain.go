package core

import (
	"errors"
	"time"
)

// DefaultCompactThreshold is the per-partition run count (summed across
// the From, To, and Combined tables) above which the background
// maintainer compacts a partition when Options.CompactThreshold is zero.
const DefaultCompactThreshold = 8

// maintainPace is the delay between consecutive background compactions of
// one maintenance pass when Options.CompactPacing is zero. It keeps the
// maintainer from monopolizing I/O bandwidth and run-builder CPU when
// many jobs are pending at once — the "background, partition by
// partition" pacing of Section 5.3 — while still letting a pass finish
// promptly.
const maintainPace = 2 * time.Millisecond

// MaintenanceStats reports the background maintenance scheduler's
// activity and the current state of the signals it watches.
type MaintenanceStats struct {
	// Enabled reports whether the engine runs a background maintainer.
	Enabled bool
	// Policy names the active compaction policy ("full" or "leveled").
	Policy string
	// CompactThreshold is the effective per-partition run-count threshold
	// (PolicyFull's trigger).
	CompactThreshold int
	// Fanout is the effective stepped-merge fanout (PolicyLeveled's
	// trigger).
	Fanout int
	// AutoCompactions counts merges installed by maintenance passes
	// (background or MaintainNow).
	AutoCompactions uint64
	// Conflicts counts optimistic compaction attempts (background or
	// foreground) that found their inputs changed under the merge and
	// were retried or re-planned against a fresh view.
	Conflicts uint64
	// Errors counts background compaction passes abandoned on error.
	Errors uint64
	// MaxRuns is the current worst per-partition run count.
	MaxRuns int
	// PendingJobs is the number of jobs the active policy would plan
	// right now — zero means maintenance is caught up. Under PolicyLeveled
	// this, not MaxRuns, is the idle signal: a drained partition keeps one
	// run per level, which can legitimately exceed the full-policy
	// threshold.
	PendingJobs int
}

// maintainer is the background maintenance scheduler: a single goroutine
// that, whenever kicked (after every checkpoint), executes the jobs the
// configured CompactionPolicy plans until the plan drains. Because
// compaction merges against a pinned view outside the structural lock,
// the maintainer's work does not stall updates or queries — it replaces
// the stop-the-world full-pass maintenance the paper's prototype
// performed between benchmark phases.
type maintainer struct {
	e    *Engine
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newMaintainer(e *Engine) *maintainer {
	m := &maintainer{
		e:    e,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go m.loop()
	return m
}

// kickNow schedules a maintenance pass without blocking; a pass already
// pending absorbs the kick.
func (m *maintainer) kickNow() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// close stops the scheduler and waits for an in-flight pass to finish.
// Callers must not hold the structural lock: a running compaction needs
// it briefly to install or discard its result. A pass pacing between
// jobs wakes immediately instead of sleeping out its delay.
func (m *maintainer) close() {
	close(m.stop)
	<-m.done
}

func (m *maintainer) loop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		}
		m.e.maintainPass(m.stop, m.e.opts.AutoCompact)
	}
}

// MaintainNow runs one synchronous maintenance pass on the caller's
// goroutine: an expiry sweep under RetainLive, then the compactions the
// configured policy plans, re-planning until the plan drains, then a
// final expiry sweep. It is the deterministic counterpart of the
// background maintainer for tests and experiments, and runs regardless
// of Options.AutoCompact.
func (e *Engine) MaintainNow() error {
	return e.maintainPass(nil, true)
}

// maintainPass is one maintenance pass. Under RetainLive it starts with
// an expiry sweep — the cheapest reclamation available, a pure manifest
// edit — and, when it compacted anything, ends with another, since the
// merges may have sealed windows the horizon has already passed. A nil
// stop channel never aborts the pass (the synchronous caller).
func (e *Engine) maintainPass(stop <-chan struct{}, compact bool) error {
	var errs []error
	tiered := e.expiryEnabled()
	if tiered {
		if _, err := e.Expire(); err != nil {
			e.stats.maintErrors.Add(1)
			errs = append(errs, err)
		}
	}
	if compact {
		aborted, err := e.drainCompactions(stop)
		if err != nil {
			// Abandon the pass; the next checkpoint kicks a retry.
			return errors.Join(append(errs, err)...)
		}
		if tiered && !aborted {
			if _, err := e.Expire(); err != nil {
				e.stats.maintErrors.Add(1)
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// drainCompactions executes policy-planned jobs until the plan is empty
// or a full round of jobs makes no progress (every job stale or deferred
// — a dirty deletion vector, or inputs consumed by concurrent work; the
// next kick re-plans from fresh state). Every installed merge strictly
// shrinks the total run count, so the loop terminates.
func (e *Engine) drainCompactions(stop <-chan struct{}) (aborted bool, err error) {
	pol := e.policy()
	tiered := e.expiryEnabled()
	pace := e.compactPace()
	for {
		jobs := e.planJobs(pol)
		if len(jobs) == 0 {
			return false, nil
		}
		progress := false
		for _, job := range jobs {
			select {
			case <-stop:
				return true, nil
			default:
			}
			var installed bool
			var err error
			if job.Full {
				installed, err = e.compactPartitionMode(job.Partition, tiered)
			} else {
				installed, err = e.compactJob(job)
			}
			if err != nil {
				e.stats.maintErrors.Add(1)
				return false, err
			}
			if !installed {
				continue
			}
			progress = true
			e.stats.autoCompactions.Add(1)
			e.stats.compactions.Add(1)
			if pace > 0 {
				// A nil stop channel (MaintainNow) never fires; the
				// timer alone paces the pass.
				select {
				case <-stop:
					return true, nil
				case <-time.After(pace):
				}
			}
		}
		if !progress {
			return false, nil
		}
	}
}

// planJobs pins a view and asks the policy for work. A dirty deletion
// vector defers all planning — compaction is deferred anyway (see
// compactAttempt), and the next checkpoint both persists the vector and
// kicks the maintainer. The returned jobs hold run pointers from a view
// released before execution; executors re-validate them against a fresh
// view before reading.
func (e *Engine) planJobs(pol CompactionPolicy) []CompactionJob {
	ctx := PlanContext{
		Partitions: e.db.Partitions(),
		Threshold:  e.compactThreshold(),
		Fanout:     e.fanout(),
		Tiered:     e.expiryEnabled(),
	}
	if ctx.Tiered {
		// ReclaimHorizon reads the catalog, which synchronizes itself;
		// taking it before the structural lock keeps lock order flat.
		ctx.Horizon = e.ReclaimHorizon()
	}
	e.mu.RLock()
	if e.dvDirty() {
		e.mu.RUnlock()
		return nil
	}
	v := e.db.AcquireView()
	e.mu.RUnlock()
	defer v.Release()
	return pol.Plan(v, ctx)
}

// policy returns the configured compaction policy, defaulting to
// PolicyFull — the paper's whole-partition maintenance.
func (e *Engine) policy() CompactionPolicy {
	if e.opts.CompactionPolicy != nil {
		return e.opts.CompactionPolicy
	}
	return PolicyFull{}
}

// fanout returns the effective stepped-merge fanout. Below 2 a merge
// could not shrink a level; such values are clamped.
func (e *Engine) fanout() int {
	f := e.opts.Fanout
	if f <= 0 {
		f = DefaultFanout
	}
	if f < 2 {
		f = 2
	}
	return f
}

// compactPace returns the effective inter-job pacing delay: zero
// Options.CompactPacing keeps the historical 2ms, negative disables
// pacing entirely.
func (e *Engine) compactPace() time.Duration {
	p := e.opts.CompactPacing
	if p == 0 {
		return maintainPace
	}
	if p < 0 {
		return 0
	}
	return p
}

// compactThreshold returns the effective maintenance threshold. A fully
// compacted partition steady-states at two runs (one From run of
// incomplete records plus one Combined run), so thresholds below 2 would
// make the maintainer re-merge an already-minimal partition forever;
// they are clamped to 2.
func (e *Engine) compactThreshold() int {
	th := e.opts.CompactThreshold
	if th <= 0 {
		th = DefaultCompactThreshold
	}
	if th < 2 {
		th = 2
	}
	return th
}

// worstPartition returns the partition with the most live runs (summed
// across tables) and its count.
func (e *Engine) worstPartition() (int, int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	counts := e.db.PartitionRunCounts()
	worst, max := 0, 0
	for p, n := range counts {
		if n > max {
			worst, max = p, n
		}
	}
	return worst, max
}

// worstCompactable returns the partition with the most compactable runs —
// runs a tiered merge would actually read — and that count. Sealed
// Combined runs are excluded: tiered compaction never re-merges them, so
// counting them against the threshold would keep the maintainer spinning
// on a partition it cannot shrink (a tiered partition steady-states at
// one From run plus one override run plus any number of sealed runs
// awaiting expiry).
func (e *Engine) worstCompactable() (int, int) {
	counts := map[int]int{}
	for _, ri := range e.RunInfos() {
		if ri.Table == TableCombined && ri.Level >= 1 && ri.CPWindowKnown && ri.Overrides == 0 {
			continue
		}
		counts[ri.Partition]++
	}
	worst, max := 0, 0
	for p := 0; p < e.db.Partitions(); p++ {
		if n := counts[p]; n > max {
			worst, max = p, n
		}
	}
	return worst, max
}

// MaintenanceStats returns a snapshot of the background maintainer's
// counters plus the two signals policies watch: the worst per-partition
// run count (sealed runs excluded under RetainLive) and the number of
// jobs the active policy would plan right now. Safe to call
// concurrently; meaningful (Enabled=false, zero counters) without
// AutoCompact too.
func (e *Engine) MaintenanceStats() MaintenanceStats {
	var max int
	if e.expiryEnabled() {
		_, max = e.worstCompactable()
	} else {
		_, max = e.worstPartition()
	}
	pol := e.policy()
	return MaintenanceStats{
		Enabled:          e.maint != nil,
		Policy:           pol.Name(),
		CompactThreshold: e.compactThreshold(),
		Fanout:           e.fanout(),
		AutoCompactions:  e.stats.autoCompactions.Load(),
		Conflicts:        e.stats.compactConflicts.Load(),
		Errors:           e.stats.maintErrors.Load(),
		MaxRuns:          max,
		PendingJobs:      len(e.planJobs(pol)),
	}
}
