package core

import (
	"time"
)

// DefaultCompactThreshold is the per-partition run count (summed across
// the From, To, and Combined tables) above which the background
// maintainer compacts a partition when Options.CompactThreshold is zero.
const DefaultCompactThreshold = 8

// maintainPace is the delay between consecutive background compactions of
// one drain pass. It keeps the maintainer from monopolizing I/O bandwidth
// and run-builder CPU when many partitions are over threshold at once —
// the "background, partition by partition" pacing of Section 5.3 —
// while still letting a drain finish promptly.
const maintainPace = 2 * time.Millisecond

// MaintenanceStats reports the background maintenance scheduler's
// activity and the current state of the signal it watches.
type MaintenanceStats struct {
	// Enabled reports whether the engine runs a background maintainer.
	Enabled bool
	// CompactThreshold is the effective per-partition run-count threshold.
	CompactThreshold int
	// AutoCompactions counts partitions compacted by the background
	// maintainer.
	AutoCompactions uint64
	// Conflicts counts optimistic compaction attempts (background or
	// foreground) that found the partition changed under their merge and
	// retried against a fresh view.
	Conflicts uint64
	// Errors counts background compaction passes abandoned on error.
	Errors uint64
	// MaxRuns is the current worst per-partition run count.
	MaxRuns int
}

// maintainer is the background maintenance scheduler: a single goroutine
// that, whenever kicked (after every checkpoint), repeatedly compacts the
// partition with the most runs until no partition exceeds the threshold.
// Because compaction merges against a pinned view outside the structural
// lock, the maintainer's work does not stall updates or queries — it
// replaces the stop-the-world full-pass maintenance the paper's prototype
// performed between benchmark phases.
type maintainer struct {
	e    *Engine
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newMaintainer(e *Engine) *maintainer {
	m := &maintainer{
		e:    e,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go m.loop()
	return m
}

// kickNow schedules a maintenance pass without blocking; a pass already
// pending absorbs the kick.
func (m *maintainer) kickNow() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// close stops the scheduler and waits for an in-flight pass to finish.
// Callers must not hold the structural lock: a running compaction needs
// it briefly to install or discard its result.
func (m *maintainer) close() {
	close(m.stop)
	<-m.done
}

func (m *maintainer) loop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		}
		m.drain()
	}
}

// drain runs one maintenance pass. Under RetainLive it starts with an
// expiry sweep — the cheapest reclamation available, a pure manifest edit
// — then compacts worst-first until every partition is at or below the
// threshold, pacing between partitions and aborting promptly on stop.
// Tiered mode counts only compactable (non-sealed) runs against the
// threshold and finishes with a second expiry sweep, since the compactions
// may have sealed windows the horizon has already passed.
func (m *maintainer) drain() {
	e := m.e
	tiered := e.expiryEnabled()
	if tiered {
		if _, err := e.Expire(); err != nil {
			e.stats.maintErrors.Add(1)
		}
	}
	if !e.opts.AutoCompact {
		return
	}
	threshold := e.compactThreshold()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		var p, runs int
		if tiered {
			p, runs = e.worstCompactable()
		} else {
			p, runs = e.worstPartition()
		}
		if runs <= threshold {
			break
		}
		compacted, err := e.compactPartitionMode(p, tiered)
		if err != nil {
			// Abandon the pass; the next checkpoint kicks a retry.
			e.stats.maintErrors.Add(1)
			return
		}
		if !compacted {
			// Over threshold but nothing mergeable (cannot normally
			// happen; guards against spinning).
			return
		}
		e.stats.autoCompactions.Add(1)
		e.stats.compactions.Add(1)
		select {
		case <-m.stop:
			return
		case <-time.After(maintainPace):
		}
	}
	if tiered {
		if _, err := e.Expire(); err != nil {
			e.stats.maintErrors.Add(1)
		}
	}
}

// compactThreshold returns the effective maintenance threshold. A fully
// compacted partition steady-states at two runs (one From run of
// incomplete records plus one Combined run), so thresholds below 2 would
// make the maintainer re-merge an already-minimal partition forever;
// they are clamped to 2.
func (e *Engine) compactThreshold() int {
	th := e.opts.CompactThreshold
	if th <= 0 {
		th = DefaultCompactThreshold
	}
	if th < 2 {
		th = 2
	}
	return th
}

// worstPartition returns the partition with the most live runs (summed
// across tables) and its count.
func (e *Engine) worstPartition() (int, int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	counts := e.db.PartitionRunCounts()
	worst, max := 0, 0
	for p, n := range counts {
		if n > max {
			worst, max = p, n
		}
	}
	return worst, max
}

// worstCompactable returns the partition with the most compactable runs —
// runs a tiered merge would actually read — and that count. Sealed
// Combined runs are excluded: tiered compaction never re-merges them, so
// counting them against the threshold would keep the maintainer spinning
// on a partition it cannot shrink (a tiered partition steady-states at
// one From run plus one override run plus any number of sealed runs
// awaiting expiry).
func (e *Engine) worstCompactable() (int, int) {
	counts := map[int]int{}
	for _, ri := range e.RunInfos() {
		if ri.Table == TableCombined && ri.Level >= 1 && ri.CPWindowKnown && ri.Overrides == 0 {
			continue
		}
		counts[ri.Partition]++
	}
	worst, max := 0, 0
	for p := 0; p < e.db.Partitions(); p++ {
		if n := counts[p]; n > max {
			worst, max = p, n
		}
	}
	return worst, max
}

// MaintenanceStats returns a snapshot of the background maintainer's
// counters and the current worst per-partition run count — the signal the
// maintainer actually watches, so under RetainLive sealed runs awaiting
// expiry are excluded. Safe to call concurrently; meaningful
// (Enabled=false, zero counters) without AutoCompact too.
func (e *Engine) MaintenanceStats() MaintenanceStats {
	var max int
	if e.expiryEnabled() {
		_, max = e.worstCompactable()
	} else {
		_, max = e.worstPartition()
	}
	return MaintenanceStats{
		Enabled:          e.maint != nil,
		CompactThreshold: e.compactThreshold(),
		AutoCompactions:  e.stats.autoCompactions.Load(),
		Conflicts:        e.stats.compactConflicts.Load(),
		Errors:           e.stats.maintErrors.Load(),
		MaxRuns:          max,
	}
}
