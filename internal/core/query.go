package core

import (
	"sort"

	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/obs"
)

// Owner is one query result: a logical owner of the queried block, with the
// CP-version interval during which the reference was live and the masked
// set of versions that still exist (Section 4.2.1).
type Owner struct {
	// Inode, Offset, Line, Length identify the reference.
	Inode  uint64
	Offset uint64
	Line   uint64
	Length uint64
	// From and To delimit the raw validity interval [From, To).
	From uint64
	To   uint64
	// Versions lists the retained snapshot versions of Line within
	// [From, To) — the snapshots whose metadata must be updated if the
	// block moves.
	Versions []uint64
	// Live reports whether the line's writable file system currently
	// references the block (To == Infinity on a live line).
	Live bool
	// Inherited marks owners synthesized by structural inheritance from a
	// cloned snapshot rather than stored explicitly.
	Inherited bool
}

// identity is the grouping key of the join: everything but the CP fields.
type identity struct {
	Inode  uint64
	Offset uint64
	Line   uint64
	Length uint64
}

func identOf(r Ref) identity {
	return identity{Inode: r.Inode, Offset: r.Offset, Line: r.Line, Length: r.Length}
}

// interval is a joined validity range.
type interval struct {
	from, to  uint64
	inherited bool
}

// Query returns every owner of the given physical block: explicit records
// (From ⋈ To across runs and write stores, plus precomputed Combined
// records) expanded through clone inheritance and masked against existing
// snapshots. Owners with no surviving version and no live reference are
// omitted.
//
// Queries hold the structural lock shared only long enough to pin an LSM
// view and snapshot the owning shard's write-store records — both the
// active trees and any frozen trees a running checkpoint is flushing; all
// run I/O — the expensive part — happens against the pinned view with no
// lock held. A query therefore never blocks on a running compaction or on
// a checkpoint's run-building I/O: both do their heavy work against
// pinned snapshots outside the structural lock and acquire it exclusively
// only for their brief freeze and validate-and-install critical sections,
// which are in-memory pointer swaps plus one manifest write.
func (e *Engine) Query(block uint64) ([]Owner, error) {
	if o := e.obs; o != nil && o.sampleHot(block) {
		start := o.opStart(obs.OpQuery, e.shardIndex(block), block, 0)
		owners, err := e.query(block)
		o.opEnd(obs.OpQuery, e.shardIndex(block), block, 0, start, o.query, err)
		return owners, err
	}
	return e.query(block)
}

func (e *Engine) query(block uint64) ([]Owner, error) {
	e.stats.queries.Add(1)
	v, ws := e.pinBlock(block)
	defer v.Release()
	return e.queryPinned(v, ws, block)
}

// wsRecords is one block's write-store snapshot, captured under the same
// structural-lock acquisition as the LSM view so the union of the two is a
// consistent cut: a concurrent checkpoint can never move records out of
// the write store without the view gaining the run they were flushed to.
type wsRecords struct {
	froms     []FromRec
	tos       []ToRec
	combineds []CombinedRec
}

// pinBlock captures the consistent snapshot a query runs against: the
// pinned LSM view plus the block's records from the owning shard's active
// trees and — when a checkpoint flush is in flight — its frozen trees.
// The union is a consistent cut in every checkpoint phase: before the
// freeze the records are active, during the flush they are frozen (and
// not yet in any run the view sees), and after the install the view has
// the runs and the frozen slots are gone. Frozen records a concurrent
// relocation logically deleted (frozenDel) are filtered out here, the
// same way the relocation's DeleteRecord hides run records.
func (e *Engine) pinBlock(block uint64) (*lsm.View, wsRecords) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v := e.db.AcquireView()
	s := e.shardOf(block)
	s.mu.RLock()
	var ws wsRecords
	ws.froms = collectWSFrom(s.from, block)
	ws.tos = collectWSTo(s.to, block)
	s.combined.Scan(CombinedRec{Ref: Ref{Block: block}}, func(r CombinedRec) bool {
		if r.Block != block {
			return false
		}
		ws.combineds = append(ws.combineds, r)
		return true
	})
	s.mu.RUnlock()
	if s.frozenFrom != nil {
		delFrom := e.frozenDel[TableFrom]
		for _, r := range collectWSFrom(s.frozenFrom, block) {
			if len(delFrom) > 0 {
				if _, dead := delFrom[string(EncodeFrom(r))]; dead {
					continue
				}
			}
			ws.froms = append(ws.froms, r)
		}
		delTo := e.frozenDel[TableTo]
		for _, r := range collectWSTo(s.frozenTo, block) {
			if len(delTo) > 0 {
				if _, dead := delTo[string(EncodeTo(r))]; dead {
					continue
				}
			}
			ws.tos = append(ws.tos, r)
		}
		delComb := e.frozenDel[TableCombined]
		s.frozenCombined.Scan(CombinedRec{Ref: Ref{Block: block}}, func(r CombinedRec) bool {
			if r.Block != block {
				return false
			}
			if len(delComb) > 0 {
				if _, dead := delComb[string(EncodeCombined(r))]; dead {
					return true
				}
			}
			ws.combineds = append(ws.combineds, r)
			return true
		})
	}
	return v, ws
}

// queryPinned runs the join, inheritance expansion, and masking against a
// pinned snapshot. No engine lock is held.
func (e *Engine) queryPinned(v *lsm.View, ws wsRecords, block uint64) ([]Owner, error) {
	groups, err := e.combinedForBlock(v, ws, block)
	if err != nil {
		return nil, err
	}
	expandInheritance(groups, e.catalog)
	return maskOwners(groups, e.catalog), nil
}

// combinedForBlock reconstructs the Combined view of one block:
// identity -> sorted intervals.
func (e *Engine) combinedForBlock(v *lsm.View, ws wsRecords, block uint64) (map[identity][]interval, error) {
	// Run records, read from the pinned view. The write-store records
	// captured at pin time participate immediately, per the paper's
	// guarantee that all entries of the current CP are in memory.
	froms := ws.froms
	tos := ws.tos
	combineds := ws.combineds
	if err := v.CollectBlock(TableFrom, block, func(rec []byte) bool {
		froms = append(froms, DecodeFrom(rec))
		return true
	}); err != nil {
		return nil, err
	}
	if err := v.CollectBlock(TableTo, block, func(rec []byte) bool {
		tos = append(tos, DecodeTo(rec))
		return true
	}); err != nil {
		return nil, err
	}
	// Under RetainLive, Combined runs sealed entirely below the reclaim
	// horizon are skipped without being opened: every record in them
	// describes an interval that ended before the oldest retained
	// snapshot, so masking would discard it anyway. With RetainAll the
	// horizon is 0 and pruning is disabled — identical behavior (and
	// identical I/O) to the baseline.
	var horizon uint64
	if e.expiryEnabled() {
		horizon = e.ReclaimHorizon()
	}
	if err := v.CollectBlockPruned(TableCombined, block, horizon, func(rec []byte) bool {
		combineds = append(combineds, DecodeCombined(rec))
		return true
	}); err != nil {
		return nil, err
	}

	// Group by identity.
	fromsBy := map[identity][]uint64{}
	for _, f := range froms {
		fromsBy[identOf(f.Ref)] = append(fromsBy[identOf(f.Ref)], f.From)
	}
	tosBy := map[identity][]uint64{}
	for _, t := range tos {
		tosBy[identOf(t.Ref)] = append(tosBy[identOf(t.Ref)], t.To)
	}

	groups := map[identity][]interval{}
	for id, fs := range fromsBy {
		ivs := joinGroup(fs, tosBy[id])
		groups[id] = append(groups[id], ivs...)
		delete(tosBy, id)
	}
	for id, ts := range tosBy { // To entries with no From at all
		ivs := joinGroup(nil, ts)
		groups[id] = append(groups[id], ivs...)
	}
	for _, c := range combineds {
		id := identOf(c.Ref)
		groups[id] = append(groups[id], interval{from: c.From, to: c.To})
	}
	for id := range groups {
		ivs := dedupeIntervals(groups[id])
		groups[id] = ivs
	}
	return groups, nil
}

// joinGroup implements the outer join of one identity group
// (Section 4.2.1): each To entry joins the earliest unconsumed From entry
// with From.from <= To.to; Froms without a To join the implicit to =
// Infinity; Tos without a From join the implicit from = 0 (an inheritance
// override, Section 4.2.2). Pairs with from == to describe references that
// were added and removed within one CP interval; they are normally pruned
// before reaching disk, but when they do appear (pruning disabled, or an
// unlucky interleaving) they cancel to nothing here rather than fabricating
// a spurious override.
func joinGroup(froms, tos []uint64) []interval {
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	used := make([]bool, len(froms))
	var out []interval
	for _, t := range tos {
		matched := false
		for i, f := range froms {
			if used[i] {
				continue
			}
			if f > t {
				break // froms are sorted; no candidate remains
			}
			used[i] = true
			matched = true
			if f < t {
				out = append(out, interval{from: f, to: t})
			}
			// f == t: the pair cancels (empty interval).
			break
		}
		if !matched {
			out = append(out, interval{from: 0, to: t})
		}
	}
	for i, f := range froms {
		if !used[i] {
			out = append(out, interval{from: f, to: Infinity})
		}
	}
	return out
}

func dedupeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].from != ivs[j].from {
			return ivs[i].from < ivs[j].from
		}
		return ivs[i].to < ivs[j].to
	})
	out := ivs[:0]
	for i, iv := range ivs {
		if i > 0 && iv.from == out[len(out)-1].from && iv.to == out[len(out)-1].to {
			continue
		}
		out = append(out, iv)
	}
	return out
}

// expandInheritance adds implicit records for clone lines (Section 4.2.2):
// for every interval of snapshot line l covering a clone base (l', v), if
// the clone has no override (a record with from == 0 on line l'), an
// implicit record (l', 0, Infinity) is added. The process repeats until it
// inserts nothing new (clones of clones).
func expandInheritance(groups map[identity][]interval, cat Catalog) {
	for {
		added := false
		// Snapshot the keys: we mutate the map during iteration.
		ids := make([]identity, 0, len(groups))
		for id := range groups {
			ids = append(ids, id)
		}
		for _, id := range ids {
			for _, iv := range groups[id] {
				for _, cl := range cat.Clones(id.Line) {
					if cl.Base < iv.from || cl.Base >= iv.to {
						continue
					}
					cid := identity{Inode: id.Inode, Offset: id.Offset, Line: cl.Line, Length: id.Length}
					if hasOverride(groups[cid]) {
						continue
					}
					groups[cid] = append(groups[cid], interval{from: 0, to: Infinity, inherited: true})
					added = true
				}
			}
		}
		if !added {
			return
		}
	}
}

// hasOverride reports whether the identity already has a record starting at
// version 0 — either an explicit override or an implicit one added earlier.
func hasOverride(ivs []interval) bool {
	for _, iv := range ivs {
		if iv.from == 0 {
			return true
		}
	}
	return false
}

// maskOwners converts joined groups into query results, masking each
// interval against the versions that still exist and dropping owners with
// nothing left.
func maskOwners(groups map[identity][]interval, cat Catalog) []Owner {
	var out []Owner
	for id, ivs := range groups {
		for _, iv := range ivs {
			versions := cat.SnapshotsIn(id.Line, iv.from, iv.to)
			live := iv.to == Infinity && cat.IsLive(id.Line)
			if len(versions) == 0 && !live {
				continue
			}
			out = append(out, Owner{
				Inode:     id.Inode,
				Offset:    id.Offset,
				Line:      id.Line,
				Length:    id.Length,
				From:      iv.from,
				To:        iv.to,
				Versions:  versions,
				Live:      live,
				Inherited: iv.inherited,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Line != b.Line:
			return a.Line < b.Line
		case a.Inode != b.Inode:
			return a.Inode < b.Inode
		case a.Offset != b.Offset:
			return a.Offset < b.Offset
		case a.From != b.From:
			return a.From < b.From
		default:
			return a.To < b.To
		}
	})
	return out
}

// QueryRange runs Query for each allocated block in [block, block+n) and
// invokes visit with each block's owners. Blocks with no owners are passed
// with an empty slice. This is the "run" access pattern of the query
// benchmarks (Section 6.4): consecutive sorted queries share pages via the
// cache.
func (e *Engine) QueryRange(block uint64, n int, visit func(block uint64, owners []Owner) bool) error {
	if o := e.obs; o != nil {
		// One event and one observation for the whole range — the
		// per-block cost is what backlog_query_ns measures; this histogram
		// captures the range-scan latency callers actually see.
		start := o.opStart(obs.OpQueryRange, -1, block, 0)
		err := e.queryRange(block, n, visit)
		o.opEnd(obs.OpQueryRange, -1, block, 0, start, o.queryRange, err)
		return err
	}
	return e.queryRange(block, n, visit)
}

func (e *Engine) queryRange(block uint64, n int, visit func(block uint64, owners []Owner) bool) error {
	for i := 0; i < n; i++ {
		b := block + uint64(i)
		e.stats.queries.Add(1)
		v, ws := e.pinBlock(b)
		owners, err := e.queryPinned(v, ws, b)
		v.Release()
		if err != nil {
			return err
		}
		if !visit(b, owners) {
			return nil
		}
	}
	return nil
}
