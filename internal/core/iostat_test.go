package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// sumSourceIO folds a report's per-source counters and returns the
// totals plus the counters that landed under "unknown".
func sumSourceIO(rep IOReport) (reads, writes, syncs, creates, removes uint64, unknown obs.SourceIO) {
	for _, s := range rep.Sources {
		reads += s.ReadBytes
		writes += s.WriteBytes
		syncs += s.Syncs
		creates += s.Creates
		removes += s.Removes
		if s.Source == storage.SrcUnknown.String() {
			unknown = s
		}
	}
	return
}

// TestIOAttributionRaceExactSums hammers the engine with concurrent
// ingest, checkpoints, compactions, expiry, and queries (run under -race),
// then closes it and checks the attribution contract against the metered
// MemFS: every device byte is attributed to a source — per-source sums
// equal the device totals exactly, and nothing leaks into "unknown".
func TestIOAttributionRaceExactSums(t *testing.T) {
	const (
		workers = 4
		opsEach = 2000
		blocks  = 256
		maxCP   = 8
	)
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	// Buffered durability journals every update, so the WAL source carries
	// traffic too (the default checkpoint-only mode opens no writing log).
	eng, err := Open(Options{
		VFS: fs, Catalog: cat, WriteShards: workers, Retention: RetainLive,
		Durability: wal.Buffered,
	})
	if err != nil {
		t.Fatal(err)
	}

	streams := genStreams(workers, opsEach, blocks, maxCP)
	stop := make(chan struct{})
	errc := make(chan error, 2)

	var lastCP uint64
	cpDone := make(chan struct{})
	go func() {
		defer close(cpDone)
		for cp := uint64(maxCP + 2); ; cp++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Checkpoint(cp); err != nil {
				errc <- fmt.Errorf("checkpoint %d: %w", cp, err)
				return
			}
			lastCP = cp
			if cp%4 == 0 {
				if err := eng.Compact(); err != nil {
					errc <- fmt.Errorf("compact at %d: %w", cp, err)
					return
				}
			}
			if cp%3 == 0 {
				// Expiry may defer under a concurrent checkpoint; the point
				// here is driving its removal path, not its yield.
				if _, err := eng.Expire(); err != nil {
					errc <- fmt.Errorf("expire at %d: %w", cp, err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Query(uint64(rng.Intn(blocks))); err != nil {
				errc <- fmt.Errorf("query: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []ingestOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					eng.RemoveRef(o.r, o.cp)
				} else {
					eng.AddRef(o.r, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	close(stop)
	<-cpDone
	<-queryDone
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// A deterministic tail so every subsystem has certainly run at least
	// once regardless of how far the background loop got: drain the write
	// stores, merge, and expire.
	final := lastCP + 1
	if final < maxCP+2 {
		final = maxCP + 2
	}
	if err := eng.Checkpoint(final); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Expire(); err != nil {
		t.Fatal(err)
	}

	// Quiesce before comparing: Close stops the maintainer and flushes, and
	// everything it writes is itself attributed.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rep := eng.IOReport()
	if !rep.Attribution {
		t.Fatal("attribution disabled on a default-configured engine")
	}
	st := fs.Stats()
	reads, writes, syncs, creates, removes, unknown := sumSourceIO(rep)
	if reads != uint64(st.BytesRead) || writes != uint64(st.BytesWritten) {
		t.Errorf("attributed bytes = %d read / %d written, device = %d / %d",
			reads, writes, st.BytesRead, st.BytesWritten)
	}
	if reads != rep.TotalReadBytes || writes != rep.TotalWriteBytes {
		t.Errorf("report totals %d/%d disagree with per-source sums %d/%d",
			rep.TotalReadBytes, rep.TotalWriteBytes, reads, writes)
	}
	if syncs != uint64(st.Syncs) || creates != uint64(st.FilesCreated) || removes != uint64(st.FilesRemoved) {
		t.Errorf("attributed syncs/creates/removes = %d/%d/%d, device = %d/%d/%d",
			syncs, creates, removes, st.Syncs, st.FilesCreated, st.FilesRemoved)
	}
	if unknown.ReadBytes != 0 || unknown.WriteBytes != 0 || unknown.Syncs != 0 ||
		unknown.Creates != 0 || unknown.Removes != 0 {
		t.Errorf("unattributed i/o leaked from a hot path: %+v", unknown)
	}
	for _, src := range []storage.Source{storage.SrcWAL, storage.SrcCheckpoint, storage.SrcCompaction} {
		if rep.Sources[src].WriteBytes == 0 {
			t.Errorf("no write bytes attributed to %s under a write-heavy workload", src)
		}
	}
	if rep.Sources[storage.SrcManifest].WriteBytes == 0 {
		t.Error("no manifest bytes attributed despite committed checkpoints")
	}

	// Reopen the same directory with a fresh accountant: startup I/O
	// (manifest, deletion vectors, run headers, WAL scan) lands under
	// recovery, and the exact-sum contract holds for the delta too.
	pre := fs.Stats()
	eng2, err := Open(Options{VFS: fs, Catalog: cat, WriteShards: workers})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Query(1); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	rep2 := eng2.IOReport()
	delta := fs.Stats().Sub(pre)
	reads2, writes2, _, _, _, unknown2 := sumSourceIO(rep2)
	if reads2 != uint64(delta.BytesRead) || writes2 != uint64(delta.BytesWritten) {
		t.Errorf("reopen attributed %d/%d bytes, device delta %d/%d",
			reads2, writes2, delta.BytesRead, delta.BytesWritten)
	}
	if rep2.Sources[storage.SrcRecovery].ReadBytes == 0 {
		t.Error("no read bytes attributed to recovery on reopen of a populated store")
	}
	if unknown2.ReadBytes != 0 || unknown2.WriteBytes != 0 {
		t.Errorf("unattributed i/o leaked during recovery: %+v", unknown2)
	}
}

// TestRunHeatTracking checks per-run access heat: cold queries that read
// run pages from the device bump the run's HeatBytes and stamp
// LastAccessCP, while untouched runs stay cold.
func TestRunHeatTracking(t *testing.T) {
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat, WriteShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i++ {
		eng.AddRef(Ref{Block: i, Inode: 1, Offset: i, Length: 1}, 1)
	}
	if err := eng.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// A cold reopen: the page cache is empty, so the first query must read
	// from the device through the query-tagged, heat-hooked handles.
	eng, err = Open(Options{VFS: fs, Catalog: cat, WriteShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, ri := range eng.RunInfos() {
		if ri.HeatBytes != 0 || ri.LastAccessCP != 0 {
			t.Fatalf("run %s/%d warm before any query: heat=%d lastCP=%d",
				ri.Table, ri.Partition, ri.HeatBytes, ri.LastAccessCP)
		}
	}
	if _, err := eng.Query(100); err != nil {
		t.Fatal(err)
	}
	var warm int
	for _, ri := range eng.RunInfos() {
		if ri.HeatBytes > 0 {
			warm++
			if ri.LastAccessCP != eng.CP() {
				t.Errorf("run %s/%d heat=%d but lastCP=%d, want %d",
					ri.Table, ri.Partition, ri.HeatBytes, ri.LastAccessCP, eng.CP())
			}
		}
	}
	if warm == 0 {
		t.Error("cold query read no run pages: heat tracking recorded nothing")
	}
	if r, _ := eng.IOStats().SourceBytes(storage.SrcQuery); r == 0 {
		t.Error("cold query attributed no read bytes to the query source")
	}
}

// TestIOReportWriteAmp checks the report's derived figures: UserBytes is
// the record-encoded ingest volume, cumulative WriteAmp is device-out over
// user-in, and the disabled configuration reports a zero struct.
func TestIOReportWriteAmp(t *testing.T) {
	env := newTestEnv(t, Options{WriteShards: 1})
	const adds, removes = 300, 50
	for i := uint64(0); i < adds; i++ {
		env.eng.AddRef(Ref{Block: i, Inode: 1, Offset: i, Length: 1}, 1)
	}
	for i := uint64(0); i < removes; i++ {
		env.eng.RemoveRef(Ref{Block: i, Inode: 1, Offset: i, Length: 1}, 1)
	}
	mustCheckpoint(t, env.eng, 2)

	rep := env.eng.IOReport()
	want := uint64(adds)*uint64(FromRecSize) + uint64(removes)*uint64(ToRecSize)
	if rep.UserBytes != want {
		t.Errorf("UserBytes = %d, want %d", rep.UserBytes, want)
	}
	if rep.TotalWriteBytes == 0 {
		t.Fatal("no device writes after a checkpoint")
	}
	wantAmp := float64(rep.TotalWriteBytes) / float64(rep.UserBytes)
	if rep.WriteAmp != wantAmp {
		t.Errorf("WriteAmp = %v, want %v", rep.WriteAmp, wantAmp)
	}
	if rep.WriteAmp <= 0 {
		t.Errorf("WriteAmp = %v, expected > 0", rep.WriteAmp)
	}

	disabled := storage.NewMemFS()
	deng, err := Open(Options{
		VFS: disabled, Catalog: NewMemCatalog(), WriteShards: 1,
		DisableIOAttribution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer deng.Close()
	if rep := deng.IOReport(); rep.Attribution || rep.TotalWriteBytes != 0 || len(rep.Sources) != 0 {
		t.Errorf("disabled engine returned a non-zero report: %+v", rep)
	}
	if deng.IOStats() != nil {
		t.Error("disabled engine still carries an accountant")
	}
}

// captureTracer retains end events for the slow-op byte assertions.
type captureTracer struct {
	mu     sync.Mutex
	events []obs.OpEvent
}

func (c *captureTracer) OpStart(obs.OpEvent) {}
func (c *captureTracer) OpEnd(ev obs.OpEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// TestOpEventIOBytes checks that traced operations carry their source's
// device byte deltas: a checkpoint's end event reports the run-build
// writes that happened during it.
func TestOpEventIOBytes(t *testing.T) {
	tr := &captureTracer{}
	env := newTestEnv(t, Options{WriteShards: 1, Tracer: tr})
	for i := uint64(0); i < 200; i++ {
		env.eng.AddRef(Ref{Block: i, Inode: 1, Offset: i, Length: 1}, 1)
	}
	mustCheckpoint(t, env.eng, 2)

	tr.mu.Lock()
	defer tr.mu.Unlock()
	var cpEv *obs.OpEvent
	for i := range tr.events {
		if tr.events[i].Kind == obs.OpCheckpoint {
			cpEv = &tr.events[i]
		}
	}
	if cpEv == nil {
		t.Fatal("no checkpoint end event traced")
	}
	if cpEv.WriteBytes == 0 {
		t.Error("checkpoint end event carries no write bytes")
	}
	r, w := env.eng.IOStats().SourceBytes(storage.SrcCheckpoint)
	if cpEv.WriteBytes > w || cpEv.ReadBytes > r {
		t.Errorf("event deltas %d/%d exceed the source's cumulative %d/%d",
			cpEv.ReadBytes, cpEv.WriteBytes, r, w)
	}
}
