// Drop-based expiry tests: the no-read reclaim contract, the safety
// deferrals, crash windows around the manifest commit, the expiry-vs-
// compaction I/O gap, and a -race hammer that runs Expire against the
// full concurrent workload with a moving reclaim horizon. They live in
// package core_test to share the gated-VFS harness and the naive-oracle
// helpers with freeze_test.go and maintain_test.go.
package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/storage"
)

// sealedEnv builds a database with two sealed Combined runs in partition
// 0 and one live reference:
//
//	run A, window [1, 2]: block 1's interval [1, 2), retained by snapshot v1
//	run B, window [3, 4]: block 3's interval [3, 4), retained by snapshot v3
//	From run:             block 2, live since CP 1
//
// Deleting snapshot v1 moves the reclaim horizon to 3, making exactly
// run A droppable.
func sealedEnv(t *testing.T, vfs storage.VFS) (*core.Engine, *core.MemCatalog) {
	t.Helper()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	epoch := func(snap, block, inode uint64) {
		if err := cat.CreateSnapshot(0, snap); err != nil {
			t.Fatal(err)
		}
		eng.AddRef(fref(block, inode, 0, 0), snap)
		if block == 1 {
			eng.AddRef(fref(2, 2, 0, 0), snap) // the long-lived reference
		}
		fCheckpoint(t, eng, snap)
		eng.RemoveRef(fref(block, inode, 0, 0), snap+1)
		fCheckpoint(t, eng, snap+1)
		if err := eng.CompactTiered(); err != nil {
			t.Fatal(err)
		}
	}
	epoch(1, 1, 1)
	epoch(3, 3, 3)
	if got := len(sealedRuns(eng)); got != 2 {
		t.Fatalf("sealedEnv built %d sealed runs, want 2: %+v", got, eng.RunInfos())
	}
	return eng, cat
}

// sealedRuns returns the Combined runs eligible for expiry, oldest window
// first (RunInfos orders runs by age within a partition).
func sealedRuns(eng *core.Engine) []lsm.RunInfo {
	var out []lsm.RunInfo
	for _, ri := range eng.RunInfos() {
		if ri.Table == core.TableCombined && ri.Level >= 1 && ri.CPWindowKnown && ri.Overrides == 0 {
			out = append(out, ri)
		}
	}
	return out
}

// TestExpireDropsRunsWithoutReadingData is the headline contract: once
// the only snapshot covering a sealed run's window is deleted, Expire
// removes the run in a single manifest edit — zero bytes of run data
// read — while every record still reachable keeps answering queries.
func TestExpireDropsRunsWithoutReadingData(t *testing.T) {
	fs := storage.NewMemFS()
	eng, cat := sealedEnv(t, fs)
	if err := cat.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}

	before := fs.Stats()
	est, err := eng.Expire()
	if err != nil {
		t.Fatal(err)
	}
	delta := fs.Stats().Sub(before)
	if est.Deferred {
		t.Fatal("expiry deferred on an idle engine")
	}
	if est.Horizon != 3 {
		t.Fatalf("Horizon = %d, want 3 (the surviving snapshot)", est.Horizon)
	}
	if est.RunsDropped != 1 || est.RecordsDropped != 1 {
		t.Fatalf("dropped (%d runs, %d records), want (1, 1)", est.RunsDropped, est.RecordsDropped)
	}
	if delta.BytesRead != 0 {
		t.Fatalf("expiry read %d bytes of run data; the drop must be a pure manifest edit", delta.BytesRead)
	}
	if delta.FilesRemoved == 0 {
		t.Fatal("no view pinned the dropped run, so its file must be deleted in the same pass")
	}

	// Reachability after the drop: the expired interval is gone, the
	// retained interval and the live reference are untouched.
	if owners := fQuery(t, eng, 1); len(owners) != 0 {
		t.Fatalf("expired block 1 still answers: %+v", owners)
	}
	if owners := fQuery(t, eng, 3); len(owners) != 1 || owners[0].Live {
		t.Fatalf("retained block 3 wrong after expiry: %+v", owners)
	}
	if owners := fQuery(t, eng, 2); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("live block 2 wrong after expiry: %+v", owners)
	}
	st := eng.Stats()
	if st.Expiries != 1 || st.RunsExpired != 1 || st.RecordsExpired != 1 {
		t.Fatalf("expiry counters wrong: %+v", st)
	}

	// A second pass finds nothing and must not rewrite the manifest.
	before = fs.Stats()
	est, err = eng.Expire()
	if err != nil {
		t.Fatal(err)
	}
	if est.RunsDropped != 0 {
		t.Fatalf("second pass dropped %d runs", est.RunsDropped)
	}
	if w := fs.Stats().Sub(before).BytesWritten; w != 0 {
		t.Fatalf("no-op expiry wrote %d bytes", w)
	}
	if got := eng.Stats().Expiries; got != 1 {
		t.Fatalf("Expiries = %d after a no-op pass, want 1", got)
	}

	// The drop is durable: a reopen sees one sealed run and the same
	// query results.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := core.Open(core.Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if got := len(sealedRuns(eng2)); got != 1 {
		t.Fatalf("%d sealed runs after reopen, want 1", got)
	}
	if owners := fQuery(t, eng2, 1); len(owners) != 0 {
		t.Fatalf("expired block 1 resurrected by reopen: %+v", owners)
	}
	if owners := fQuery(t, eng2, 3); len(owners) != 1 {
		t.Fatalf("retained block 3 lost by reopen: %+v", owners)
	}
}

// TestExpireDefersUntilSafe covers both deferral conditions: a checkpoint
// holding frozen stores mid-flush, and a dirty deletion vector whose
// re-keyed partner records are not yet durable. In both states Expire
// must do nothing (without error); once the state clears, the same call
// drops the run.
func TestExpireDefersUntilSafe(t *testing.T) {
	fs := storage.NewMemFS()
	g := newGatedVFS(fs)
	eng, cat := sealedEnv(t, g)
	defer eng.Close()
	if err := cat.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}

	// Mid-flush: freeze a checkpoint on its first run file, then expire.
	eng.AddRef(fref(9, 9, 0, 0), 5)
	entered, release := g.arm()
	done := make(chan error, 1)
	go func() { done <- eng.Checkpoint(5) }()
	<-entered
	est, err := eng.Expire()
	if err != nil {
		t.Fatal(err)
	}
	if !est.Deferred || est.RunsDropped != 0 {
		t.Fatalf("expiry mid-flush = %+v, want a deferral", est)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Dirty deletion vector: relocating block 3 masks its sealed-run
	// records while the re-keyed copies are still volatile.
	if err := eng.RelocateBlock(3, 700); err != nil {
		t.Fatal(err)
	}
	est, err = eng.Expire()
	if err != nil {
		t.Fatal(err)
	}
	if !est.Deferred || est.RunsDropped != 0 {
		t.Fatalf("expiry on a dirty deletion vector = %+v, want a deferral", est)
	}
	if got := eng.Stats().Expiries; got != 0 {
		t.Fatalf("deferred passes counted as expiries: %d", got)
	}

	// The checkpoint persists vector and replacements together; now the
	// pass goes through.
	fCheckpoint(t, eng, 6)
	est, err = eng.Expire()
	if err != nil {
		t.Fatal(err)
	}
	if est.Deferred || est.RunsDropped != 1 {
		t.Fatalf("expiry after the covering checkpoint = %+v, want 1 run dropped", est)
	}
	if owners := fQuery(t, eng, 700); len(owners) != 1 {
		t.Fatalf("relocated block lost across expiry: %+v", owners)
	}
	if owners := fQuery(t, eng, 3); len(owners) != 0 {
		t.Fatalf("relocated-away block resurrected: %+v", owners)
	}
}

// removeRunVFS fails Remove for run files while armed, simulating a crash
// that lands after the expiry's manifest commit but before the deferred
// file deletion.
type removeRunVFS struct {
	storage.VFS
	block atomic.Bool
}

func (v *removeRunVFS) Remove(name string) error {
	if v.block.Load() && strings.HasSuffix(name, ".run") {
		return fmt.Errorf("injected remove failure for %s", name)
	}
	return v.VFS.Remove(name)
}

// TestExpireCrashAfterCommitCollectsOrphan: if the crash beats the run-
// file deletion, the committed manifest is the truth — reopening must
// collect the orphaned file, and the expired records must not resurrect.
func TestExpireCrashAfterCommitCollectsOrphan(t *testing.T) {
	fs := storage.NewMemFS()
	rv := &removeRunVFS{VFS: fs}
	eng, cat := sealedEnv(t, rv)
	if err := cat.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	doomed := sealedRuns(eng)[0].Name

	rv.block.Store(true)
	est, err := eng.Expire()
	rv.block.Store(false)
	if err != nil {
		t.Fatal(err)
	}
	if est.RunsDropped != 1 {
		t.Fatalf("RunsDropped = %d, want 1", est.RunsDropped)
	}
	exists := func(name string) bool {
		names, err := fs.List()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}
	if !exists(doomed) {
		t.Fatal("test harness broken: the injected failure did not keep the run file")
	}

	fs.Crash()
	eng2, err := core.Open(core.Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if exists(doomed) {
		t.Fatal("orphaned run file leaked across reopen")
	}
	if owners := fQuery(t, eng2, 1); len(owners) != 0 {
		t.Fatalf("expired records resurrected after crash: %+v", owners)
	}
	if owners := fQuery(t, eng2, 3); len(owners) != 1 {
		t.Fatalf("retained block 3 lost: %+v", owners)
	}
	// Nothing else leaked: every run file on disk is in the manifest.
	live := map[string]bool{}
	for _, ri := range eng2.RunInfos() {
		live[ri.Name] = true
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".run") && !live[n] {
			t.Fatalf("leaked run file %s", n)
		}
	}
}

// TestExpireCrashBeforeCommitKeepsState: a failure before the manifest
// lands must leave the pre-expiry state intact — both sealed runs load
// after the crash, and a retry completes the drop.
func TestExpireCrashBeforeCommitKeepsState(t *testing.T) {
	fs := storage.NewMemFS()
	eng, cat := sealedEnv(t, fs)
	if err := cat.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}

	fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: fs.Stats().PageWrites})
	if _, err := eng.Expire(); err == nil {
		t.Fatal("expiry survived the injected manifest-write failure")
	}
	fs.SetFailurePlan(storage.FailurePlan{})
	if got := eng.Stats().Expiries; got != 0 {
		t.Fatalf("failed pass counted as an expiry: %d", got)
	}

	fs.Crash()
	eng2, err := core.Open(core.Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if got := len(sealedRuns(eng2)); got != 2 {
		t.Fatalf("%d sealed runs after failed expiry + crash, want 2 (unchanged)", got)
	}
	if owners := fQuery(t, eng2, 3); len(owners) != 1 {
		t.Fatalf("retained block 3 lost: %+v", owners)
	}
	est, err := eng2.Expire()
	if err != nil {
		t.Fatal(err)
	}
	if est.RunsDropped != 1 {
		t.Fatalf("retry dropped %d runs, want 1", est.RunsDropped)
	}
}

// buildExpirable writes epochs of references that each live for exactly
// one checkpoint, retained by a per-epoch snapshot, and seals each epoch
// into its own Combined run via tiered compaction. Deleting the first
// epochs' snapshots then makes their runs reclaimable two ways: Expire
// (drop) or Compact (merge-and-purge).
func buildExpirable(t *testing.T, vfs storage.VFS, epochs, perEpoch, blocks int) (*core.Engine, *core.MemCatalog) {
	t.Helper()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	cp := uint64(1)
	for e := 0; e < epochs; e++ {
		if err := cat.CreateSnapshot(0, cp); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perEpoch; i++ {
			eng.AddRef(core.Ref{Block: uint64(i % blocks), Inode: uint64(e + 1), Offset: uint64(i), Length: 1}, cp)
		}
		fCheckpoint(t, eng, cp)
		for i := 0; i < perEpoch; i++ {
			eng.RemoveRef(core.Ref{Block: uint64(i % blocks), Inode: uint64(e + 1), Offset: uint64(i), Length: 1}, cp+1)
		}
		fCheckpoint(t, eng, cp+1)
		if err := eng.CompactTiered(); err != nil {
			t.Fatal(err)
		}
		cp += 2
	}
	return eng, cat
}

// TestExpireVsCompactReclaimIO pins the economics: reclaiming the same
// deleted snapshots must cost expiry at least 10x less I/O than the
// compaction path, which reads and rewrites every surviving record. Both
// engines must agree on what remains.
func TestExpireVsCompactReclaimIO(t *testing.T) {
	const (
		epochs   = 8
		perEpoch = 256
		blocks   = 64
	)
	fsE := storage.NewMemFS()
	engE, catE := buildExpirable(t, fsE, epochs, perEpoch, blocks)
	defer engE.Close()
	fsC := storage.NewMemFS()
	engC, catC := buildExpirable(t, fsC, epochs, perEpoch, blocks)
	defer engC.Close()

	// Delete every snapshot but the last epoch's on both.
	for e := 0; e < epochs-1; e++ {
		if err := catE.DeleteSnapshot(0, uint64(2*e+1)); err != nil {
			t.Fatal(err)
		}
		if err := catC.DeleteSnapshot(0, uint64(2*e+1)); err != nil {
			t.Fatal(err)
		}
	}

	beforeE := fsE.Stats()
	est, err := engE.Expire()
	if err != nil {
		t.Fatal(err)
	}
	dE := fsE.Stats().Sub(beforeE)
	ioE := dE.BytesRead + dE.BytesWritten
	if est.RunsDropped != epochs-1 || est.RecordsDropped != uint64((epochs-1)*perEpoch) {
		t.Fatalf("expiry dropped (%d runs, %d records), want (%d, %d)",
			est.RunsDropped, est.RecordsDropped, epochs-1, (epochs-1)*perEpoch)
	}

	beforeC := fsC.Stats()
	if err := engC.Compact(); err != nil {
		t.Fatal(err)
	}
	dC := fsC.Stats().Sub(beforeC)
	ioC := dC.BytesRead + dC.BytesWritten

	if ioE == 0 {
		t.Fatal("expiry reported zero I/O; the manifest commit must be visible to the meter")
	}
	if ioC < 10*ioE {
		t.Fatalf("compaction reclaim I/O = %d bytes, expiry = %d bytes; want >= 10x gap", ioC, ioE)
	}
	if dE.BytesRead != 0 {
		t.Fatalf("expiry read %d bytes", dE.BytesRead)
	}

	// Both paths converge to the same reachable state.
	for b := uint64(0); b < blocks; b++ {
		oe := fQuery(t, engE, b)
		oc := fQuery(t, engC, b)
		if len(oe) != len(oc) {
			t.Fatalf("block %d: expiry sees %d owners, compaction %d", b, len(oe), len(oc))
		}
		for i := range oe {
			if fmt.Sprintf("%+v", oe[i]) != fmt.Sprintf("%+v", oc[i]) {
				t.Fatalf("block %d owner %d: expiry %+v, compaction %+v", b, i, oe[i], oc[i])
			}
		}
		if len(oe) != perEpoch/blocks {
			t.Fatalf("block %d: %d owners after reclaim, want %d (last epoch only)", b, len(oe), perEpoch/blocks)
		}
	}
}

// TestRetainLiveStartsMaintainer: the retention policy alone must start
// the background maintainer — expiry sweeps need no AutoCompact opt-in.
func TestRetainLiveStartsMaintainer(t *testing.T) {
	eng, err := core.Open(core.Options{
		VFS:       storage.NewMemFS(),
		Catalog:   core.NewMemCatalog(),
		Retention: core.RetainLive,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.MaintenanceStats().Enabled {
		t.Fatal("RetainLive without AutoCompact left the maintainer off")
	}
}

// TestExpireHammerAgainstNaiveOracle runs the full concurrent workload —
// AddRef/RemoveRef/Query/Checkpoint plus background tiered compaction —
// while a snapshot churner keeps only a sliding window of recent
// snapshots (so the reclaim horizon climbs continuously) and a dedicated
// goroutine hammers Expire. Run under -race. Afterwards the live
// reference set must match the naive oracle, and a final full expiry
// (every snapshot deleted, horizon = Infinity) must reclaim every sealed
// run without touching live data.
func TestExpireHammerAgainstNaiveOracle(t *testing.T) {
	const (
		workers = 4
		opsEach = 800
		blocks  = 256
		maxCP   = 10
	)
	fs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{
		VFS:              fs,
		Catalog:          cat,
		Partitions:       4,
		HashPartitioning: true,
		WriteShards:      workers,
		AutoCompact:      true,
		CompactThreshold: 4,
		Retention:        core.RetainLive,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	streams := genOps(workers, opsEach, blocks, maxCP)
	stop := make(chan struct{})
	errc := make(chan error, 8)
	var aux sync.WaitGroup

	// Checkpointer + snapshot churner: every committed CP becomes a
	// snapshot, and snapshots more than three CPs behind are deleted, so
	// the reclaim horizon advances under the running expiry.
	var cpMu sync.Mutex
	lastCP := uint64(maxCP + 1)
	aux.Add(1)
	go func() {
		defer aux.Done()
		var snaps []uint64
		for cp := uint64(maxCP + 2); ; cp++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Checkpoint(cp); err != nil {
				errc <- fmt.Errorf("checkpoint %d: %w", cp, err)
				return
			}
			cpMu.Lock()
			lastCP = cp
			cpMu.Unlock()
			if err := cat.CreateSnapshot(0, cp); err != nil {
				errc <- err
				return
			}
			snaps = append(snaps, cp)
			for len(snaps) > 3 {
				if err := cat.DeleteSnapshot(0, snaps[0]); err != nil {
					errc <- err
					return
				}
				snaps = snaps[1:]
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Expiry hammer: races checkpoints (deferral path), compaction
	// installs, and pinned-view queries.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Expire(); err != nil {
				errc <- fmt.Errorf("concurrent expire: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Query hammer across the whole block range.
	aux.Add(1)
	go func() {
		defer aux.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Query(uint64(rng.Intn(blocks))); err != nil {
				errc <- fmt.Errorf("concurrent query: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []oracleOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					eng.RemoveRef(o.ref, o.cp)
				} else {
					eng.AddRef(o.ref, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	cpMu.Lock()
	final := lastCP + 1
	cpMu.Unlock()
	fCheckpoint(t, eng, final)
	waitMaintained(t, eng)
	verifyLiveAgainstNaive(t, eng, streams, blocks)

	// Tear down every snapshot: the horizon goes to Infinity, so one
	// tiered pass plus one expiry must leave no sealed run behind — and
	// the live set must still be intact.
	for _, v := range cat.Snapshots(0) {
		if err := cat.DeleteSnapshot(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.CompactTiered(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Expire(); err != nil {
		t.Fatal(err)
	}
	if left := sealedRuns(eng); len(left) != 0 {
		t.Fatalf("%d sealed runs survive an Infinity horizon: %+v", len(left), left)
	}
	verifyLiveAgainstNaive(t, eng, streams, blocks)
}
