package core

import (
	"testing"
)

func TestCompressionEstimate(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	// A realistic pattern: many files with sequential blocks, so sorted
	// records have tiny per-column deltas.
	cp := uint64(1)
	for f := uint64(0); f < 50; f++ {
		for b := uint64(0); b < 40; b++ {
			e.AddRef(Ref{Block: f*1000 + b, Inode: 100 + f, Offset: b, Line: 0, Length: 1}, cp)
		}
	}
	mustCheckpoint(t, e, cp)
	if err := env.cat.CreateSnapshot(0, cp); err != nil {
		t.Fatal(err)
	}
	// Remove half so the Combined table gets populated at compaction.
	cp = 2
	for f := uint64(0); f < 25; f++ {
		for b := uint64(0); b < 40; b++ {
			e.RemoveRef(Ref{Block: f*1000 + b, Inode: 100 + f, Offset: b, Line: 0, Length: 1}, cp)
		}
	}
	mustCheckpoint(t, e, cp)
	mustCompact(t, e)

	for _, table := range []string{TableFrom, TableCombined} {
		est, err := e.EstimateCompression(table)
		if err != nil {
			t.Fatal(err)
		}
		if est.Records == 0 {
			t.Fatalf("%s: no records", table)
		}
		if est.RawBytes != int64(est.Records)*int64(len(EncodeFrom(FromRec{}))) &&
			table == TableFrom {
			t.Fatalf("%s raw bytes mismatch: %d for %d records", table, est.RawBytes, est.Records)
		}
		// The paper's expectation: highly compressible by columns.
		if est.Ratio < 3 {
			t.Fatalf("%s: compression ratio %.2f, expected >= 3 (paper §8: highly compressible)", table, est.Ratio)
		}
		var sum int64
		for _, c := range est.PerColumnBytes {
			sum += c
		}
		if sum != est.CompressedBytes {
			t.Fatalf("%s: per-column sum %d != total %d", table, sum, est.CompressedBytes)
		}
	}

	if _, err := e.EstimateCompression("nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestVarintZigzag(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 1}, {1, 1}, {-1, 1}, {63, 1}, {64, 2}, {-64, 1}, {-65, 2},
		{1 << 20, 4}, {-(1 << 20), 3}, // zigzag(-2^20) = 2^21-1: 3 bytes

	}
	for _, c := range cases {
		if got := varintLen(zigzag(c.v)); got != c.want {
			t.Errorf("varintLen(zigzag(%d)) = %d, want %d", c.v, got, c.want)
		}
	}
}
