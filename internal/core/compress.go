package core

import (
	"fmt"

	"github.com/backlogfs/backlog/internal/btree"
)

// This file holds the compression knob and the measurement side of the
// paper's compression direction (Section 8): "Our tables of back reference
// records appear to be highly compressible, especially if we compress
// them by columns." Runs are actually stored column-delta encoded when
// Options.Compression is CompressionDelta (the default; see
// btree.FormatDelta), and EstimateCompression projects the effect for
// databases still holding raw v1 runs — using the same btree codec the
// writer uses, so the estimate and the actual encoded size cannot drift.

// Compression selects the on-disk run format; see Options.Compression.
type Compression int

const (
	// CompressionDelta (the default) writes format-v2 runs: leaf pages
	// encoded per column as delta + zigzag + LEB128 varints, restarting at
	// every 4 KB page boundary.
	CompressionDelta Compression = iota
	// CompressionNone writes raw fixed-stride format-v1 runs — the paper's
	// original layout, and the pinned setting of the deterministic
	// paper-figure experiments.
	CompressionNone
)

// runFormat maps the knob onto the btree leaf format.
func (c Compression) runFormat() btree.Format {
	if c == CompressionNone {
		return btree.FormatRaw
	}
	return btree.FormatDelta
}

// String returns "delta" or "none".
func (c Compression) String() string {
	switch c {
	case CompressionDelta:
		return "delta"
	case CompressionNone:
		return "none"
	default:
		return fmt.Sprintf("compression(%d)", int(c))
	}
}

// CompressionEstimate reports the projected effect of column compression
// on one table.
type CompressionEstimate struct {
	Table           string
	Records         uint64
	RawBytes        int64
	CompressedBytes int64
	// Ratio is RawBytes / CompressedBytes (>1 means compressible).
	Ratio float64
	// PerColumnBytes breaks the compressed size down by column index
	// (block, inode, offset, line, length, cp fields...).
	PerColumnBytes []int64
}

// EstimateCompression streams all runs of the named table (TableFrom,
// TableTo, or TableCombined) and computes the leaf-payload size their
// records would occupy under the v2 column-delta encoding, page restarts
// included. Runs are already sorted, so consecutive records share long key
// prefixes and the per-column deltas are small — exactly the property the
// paper expects to exploit.
//
// The structural lock is held shared only long enough to pin a view (the
// query-path pattern); the scan itself — the expensive part — streams the
// pinned run set with no lock held, so writers and checkpoints never stall
// behind an estimate.
func (e *Engine) EstimateCompression(table string) (CompressionEstimate, error) {
	e.mu.RLock()
	if e.db.Table(table) == nil {
		e.mu.RUnlock()
		return CompressionEstimate{}, fmt.Errorf("core: unknown table %q", table)
	}
	rs := e.db.Table(table).RecordSize()
	v := e.db.AcquireView()
	e.mu.RUnlock()
	defer v.Release()

	sim, err := btree.NewDeltaEstimator(rs)
	if err != nil {
		return CompressionEstimate{}, err
	}
	for p := 0; p < e.db.Partitions(); p++ {
		it, err := v.MergedIter(table, p)
		if err != nil {
			return CompressionEstimate{}, err
		}
		// Each partition's runs are encoded independently.
		sim.Restart()
		for {
			rec, ok, err := it.Next()
			if err != nil {
				return CompressionEstimate{}, err
			}
			if !ok {
				break
			}
			sim.Add(rec)
		}
	}
	est := CompressionEstimate{
		Table:           table,
		Records:         sim.Records(),
		RawBytes:        int64(sim.Records()) * int64(rs),
		CompressedBytes: int64(sim.EncodedBytes()),
		PerColumnBytes:  make([]int64, rs/8),
	}
	for c, b := range sim.PerColumnBytes() {
		est.PerColumnBytes[c] = int64(b)
	}
	if est.CompressedBytes > 0 {
		est.Ratio = float64(est.RawBytes) / float64(est.CompressedBytes)
	}
	return est, nil
}

// zigzag and varintLen delegate to the shared btree codec, kept as local
// names for the estimator's unit tests.
func zigzag(v int64) uint64 { return btree.Zigzag(v) }

// varintLen returns the LEB128 length of v.
func varintLen(v uint64) int { return btree.VarintLen(v) }
