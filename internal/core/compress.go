package core

import (
	"encoding/binary"
	"fmt"
)

// This file implements the measurement side of the paper's future-work
// direction on compression (Section 8): "Our tables of back reference
// records appear to be highly compressible, especially if we compress
// them by columns." EstimateCompression quantifies that claim for a live
// database without changing the on-disk format: it streams every run of a
// table and computes the size the records would occupy under per-column
// delta + varint encoding (the standard column-store technique the paper
// cites via Abadi et al.).

// CompressionEstimate reports the projected effect of column compression
// on one table.
type CompressionEstimate struct {
	Table           string
	Records         uint64
	RawBytes        int64
	CompressedBytes int64
	// Ratio is RawBytes / CompressedBytes (>1 means compressible).
	Ratio float64
	// PerColumnBytes breaks the compressed size down by column index
	// (block, inode, offset, line, length, cp fields...).
	PerColumnBytes []int64
}

// EstimateCompression streams all runs of the named table (TableFrom,
// TableTo, or TableCombined) and estimates column-delta compressibility.
// Runs are already sorted, so consecutive records share long key prefixes
// and the per-column deltas are small — exactly the property the paper
// expects to exploit.
func (e *Engine) EstimateCompression(table string) (CompressionEstimate, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	tbl := e.db.Table(table)
	if tbl == nil {
		return CompressionEstimate{}, fmt.Errorf("core: unknown table %q", table)
	}
	cols := tbl.RecordSize() / 8
	est := CompressionEstimate{Table: table, PerColumnBytes: make([]int64, cols)}
	prev := make([]uint64, cols)
	for p := 0; p < e.db.Partitions(); p++ {
		it, err := tbl.MergedIter(p)
		if err != nil {
			return CompressionEstimate{}, err
		}
		for i := range prev {
			prev[i] = 0
		}
		for {
			rec, ok, err := it.Next()
			if err != nil {
				return CompressionEstimate{}, err
			}
			if !ok {
				break
			}
			est.Records++
			est.RawBytes += int64(len(rec))
			for c := 0; c < cols; c++ {
				v := binary.BigEndian.Uint64(rec[c*8 : c*8+8])
				n := int64(varintLen(zigzag(int64(v - prev[c]))))
				est.CompressedBytes += n
				est.PerColumnBytes[c] += n
				prev[c] = v
			}
		}
	}
	if est.CompressedBytes > 0 {
		est.Ratio = float64(est.RawBytes) / float64(est.CompressedBytes)
	}
	return est, nil
}

// zigzag maps signed deltas to unsigned so small negative deltas stay
// small.
func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// varintLen returns the LEB128 length of v.
func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
