package core

import (
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
)

// engineObs bundles the engine's observability state: the typed metric
// handles on the hot and background paths, the registered tracer chain
// (application tracer + built-in slow-op log), and the slow-op log itself.
// A nil *engineObs means observability is fully disabled: every
// instrumented path checks one pointer and takes no timestamp, so the
// disabled cost is a branch — paper-figure experiments stay byte-identical.
//
// The histograms are nil when no Registry is configured (a tracer can run
// without metrics); obs histogram handles are nil-safe, so the record
// calls need no second gate.
type engineObs struct {
	tracer obs.Tracer
	slow   *obs.SlowLog

	// ios, when attribution is on, lets traced ops carry per-source I/O
	// byte deltas (OpEvent.ReadBytes/WriteBytes): opStart snapshots the
	// op's source counters and opEnd subtracts. Nil with attribution
	// disabled — ops then report zero bytes.
	ios *obs.IOStats

	// sampleMask gates the hot-op latency timestamps (AddRef, RemoveRef,
	// Query): one op in every mask+1 per sample slot is timed, keeping
	// the enabled overhead of two clock reads per op off the common case.
	// Zero records every op — the configuration when a tracer is attached
	// (trace events need real durations) or when
	// Options.MetricsSampleEvery is 1. Counters are unaffected: they
	// mirror the Stats atomics and stay exact.
	sampleMask uint64
	samples    [sampleSlots]sampleCounter

	// Hot-path latencies (ns).
	addRef     *obs.Histogram
	removeRef  *obs.Histogram
	query      *obs.Histogram
	queryRange *obs.Histogram
	relocate   *obs.Histogram

	// Checkpoint phase timings (ns) — the structured successors of the
	// raw Stats.Checkpoint*Nanos counters.
	cpFreeze  *obs.Histogram
	cpFlush   *obs.Histogram
	cpInstall *obs.Histogram

	// Background maintenance durations (ns).
	compact *obs.Histogram
	expire  *obs.Histogram

	// pageDecode times the expansion of one compressed (format-v2) leaf
	// page on a decoded-cache miss; handed to the LSM layer at Open.
	pageDecode *obs.Histogram

	// WAL metrics, handed to wal.Open via wal.Options.
	walAppend *obs.Histogram
	walFlush  *obs.Histogram
	walBatch  *obs.Histogram
}

// sampleSlots is the number of padded per-shard sample counters; shards
// map onto slots by index mask, so distinct shards rarely contend on the
// same counter cache line.
const sampleSlots = 16

// defaultSampleEvery is the hot-op latency sampling period when
// Options.MetricsSampleEvery is unset.
const defaultSampleEvery = 32

// sampleCounter is a cache-line-padded atomic counter: adjacent shards'
// sampling decisions must not false-share, or the sampling would cost
// what it exists to avoid.
type sampleCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// newEngineObs builds the observability state, or returns nil when every
// surface is disabled. Histograms register against opts.Metrics (nil
// registry ⇒ nil handles, which record as no-ops — the tracer still sees
// events).
func newEngineObs(opts Options) *engineObs {
	if opts.Metrics == nil && opts.Tracer == nil && opts.SlowOpThreshold <= 0 {
		return nil
	}
	o := &engineObs{}
	if opts.SlowOpThreshold > 0 {
		o.slow = obs.NewSlowLog(opts.SlowOpThreshold, opts.SlowOpLogSize)
	}
	o.tracer = obs.MultiTracer(opts.Tracer, slowTracer(o.slow))
	if o.tracer == nil {
		every := opts.MetricsSampleEvery
		if every <= 0 {
			every = defaultSampleEvery
		}
		o.sampleMask = pow2Mask(every)
		// Seed every slot at the mask so the first op it sees is sampled
		// — short-lived processes get latency data immediately instead of
		// after sampleMask ops per slot.
		for i := range o.samples {
			o.samples[i].n.Store(o.sampleMask)
		}
	}
	r := opts.Metrics
	lat := obs.LatencyBuckets()
	o.addRef = r.Histogram("backlog_addref_ns", "AddRef latency", "ns", lat)
	o.removeRef = r.Histogram("backlog_removeref_ns", "RemoveRef latency", "ns", lat)
	o.query = r.Histogram("backlog_query_ns", "Query latency (one block)", "ns", lat)
	o.queryRange = r.Histogram("backlog_queryrange_ns", "QueryRange latency (whole range)", "ns", lat)
	o.relocate = r.Histogram("backlog_relocate_ns", "RelocateBlock latency", "ns", lat)
	o.cpFreeze = r.Histogram("backlog_checkpoint_freeze_ns",
		"Checkpoint freeze phase (exclusive structural lock held)", "ns", lat)
	o.cpFlush = r.Histogram("backlog_checkpoint_flush_ns",
		"Checkpoint run-building flush phase (no structural lock held)", "ns", lat)
	o.cpInstall = r.Histogram("backlog_checkpoint_install_ns",
		"Checkpoint validate-and-install phase (exclusive structural lock held)", "ns", lat)
	o.compact = r.Histogram("backlog_compaction_ns", "Duration of one partition compaction", "ns", lat)
	o.expire = r.Histogram("backlog_expire_ns", "Duration of one expiry pass", "ns", lat)
	o.pageDecode = r.Histogram("backlog_page_decode_ns",
		"Decode latency of one compressed leaf page (decoded-cache misses only)", "ns", lat)
	o.walAppend = r.Histogram("backlog_wal_append_ns",
		"WAL append latency per record: enqueue to written (Buffered) or fsynced (Sync)", "ns", lat)
	o.walFlush = r.Histogram("backlog_wal_flush_ns",
		"WAL group-commit flush duration: one WriteAt plus, in Sync mode, one fsync", "ns", lat)
	o.walBatch = r.Histogram("backlog_wal_batch_records",
		"Records per WAL group-commit flush", "ops", obs.CountBuckets(16))
	return o
}

// slowTracer adapts a possibly-nil *SlowLog to the Tracer interface
// without handing MultiTracer a non-nil interface holding a nil pointer.
func slowTracer(s *obs.SlowLog) obs.Tracer {
	if s == nil {
		return nil
	}
	return s
}

// pow2Mask returns the smallest power-of-two-minus-one mask covering n,
// so the sampling test is a single AND instead of a modulo.
func pow2Mask(n int) uint64 {
	m := uint64(1)
	for m < uint64(n) {
		m <<= 1
	}
	return m - 1
}

// sampleHot is the hot-path gate: AddRef, RemoveRef, and Query call it
// before doing any observability work at all, so an unsampled op pays one
// atomic add and a branch — no shard lookup, no timestamps, no event
// construction. Background and rare ops (checkpoint phases, compaction,
// expiry, relocation, range queries) skip the gate and are always timed:
// their rate is low and their tail is the interesting part. A tracer
// disables sampling — trace events always carry real durations.
func (o *engineObs) sampleHot(block uint64) bool {
	if o.tracer != nil {
		return true
	}
	return o.samples[block%sampleSlots].n.Add(1)&o.sampleMask == 0
}

// opToken carries an operation's begin state from opStart to opEnd: the
// timestamp plus a snapshot of the op's source I/O counters, so the end
// event can report how many device bytes the op's subsystem moved while
// it ran.
type opToken struct {
	start    time.Time
	ioR, ioW uint64
}

// opSource maps an op kind to the I/O source its work is attributed to.
// AddRef/RemoveRef move bytes only through the WAL (write-store inserts
// are memory); queries and relocations read through the query-tagged run
// handles.
func opSource(kind obs.OpKind) storage.Source {
	switch kind {
	case obs.OpAddRef, obs.OpRemoveRef:
		return storage.SrcWAL
	case obs.OpQuery, obs.OpQueryRange, obs.OpRelocate:
		return storage.SrcQuery
	case obs.OpCheckpoint:
		return storage.SrcCheckpoint
	case obs.OpCompact:
		return storage.SrcCompaction
	case obs.OpExpire:
		return storage.SrcExpiry
	}
	return storage.SrcUnknown
}

// opStart stamps an operation's begin time (plus its source's I/O counter
// snapshot) and emits the start trace event. Hot-path callers gate on
// sampleHot first, so the work here only happens when some observability
// surface wants it.
func (o *engineObs) opStart(kind obs.OpKind, shard int, block, cp uint64) opToken {
	tok := opToken{start: time.Now()}
	if o.ios != nil {
		tok.ioR, tok.ioW = o.ios.SourceBytes(opSource(kind))
	}
	if o.tracer != nil {
		o.tracer.OpStart(obs.OpEvent{Kind: kind, Shard: shard, Block: block, CP: cp, Start: tok.start})
	}
	return tok
}

// opEnd records the operation's latency and emits the end trace event,
// carrying the source's I/O byte deltas since opStart. The deltas are
// global per source, not per goroutine: concurrent same-source ops each
// see the sum of what ran during their window — imprecise under overlap,
// but enough to tell an I/O-bound slow op from a compute-bound one.
func (o *engineObs) opEnd(kind obs.OpKind, shard int, block, cp uint64, tok opToken, h *obs.Histogram, err error) {
	d := time.Since(tok.start)
	h.ObserveDuration(d)
	if o.tracer != nil {
		ev := obs.OpEvent{Kind: kind, Shard: shard, Block: block, CP: cp, Start: tok.start, Dur: d, Err: err}
		if o.ios != nil {
			r, w := o.ios.SourceBytes(opSource(kind))
			ev.ReadBytes, ev.WriteBytes = r-tok.ioR, w-tok.ioW
		}
		o.tracer.OpEnd(ev)
	}
}

// registerMetrics wires the engine's state into the registry: CounterFunc
// mirrors of the legacy Stats atomics (so hot paths are never charged
// twice for the same event and Stats stays the single source of truth)
// and gauges computed from live structures at scrape time. Called once at
// Open, after the WAL and shards exist.
func (e *Engine) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("backlog_refs_added_total", "AddRef calls", e.stats.refsAdded.Load)
	r.CounterFunc("backlog_refs_removed_total", "RemoveRef calls", e.stats.refsRemoved.Load)
	r.CounterFunc("backlog_pruned_adds_total", "To entries cancelled by a same-CP AddRef", e.stats.prunedAdds.Load)
	r.CounterFunc("backlog_pruned_removes_total", "From entries cancelled by a same-CP RemoveRef", e.stats.prunedRemoves.Load)
	r.CounterFunc("backlog_checkpoints_total", "Committed checkpoints", e.stats.checkpoints.Load)
	r.CounterFunc("backlog_compactions_total", "Partitions compacted", e.stats.compactions.Load)
	r.CounterFunc("backlog_compact_conflicts_total", "Optimistic compaction attempts retried on conflict", e.stats.compactConflicts.Load)
	r.CounterFunc("backlog_auto_compactions_total", "Partitions compacted by the background maintainer", e.stats.autoCompactions.Load)
	r.CounterFunc("backlog_maintenance_errors_total", "Background maintenance passes abandoned on error", e.stats.maintErrors.Load)
	r.CounterFunc("backlog_records_flushed_total", "Records written to Level-0 runs", e.stats.recordsFlushed.Load)
	r.CounterFunc("backlog_records_purged_total", "Records dropped by compaction", e.stats.recordsPurged.Load)
	r.CounterFunc("backlog_compaction_write_bytes_total", "Physical bytes written by installed compactions",
		e.stats.compactWriteBytes.Load)
	r.CounterFunc("backlog_queries_total", "Blocks queried", e.stats.queries.Load)
	r.CounterFunc("backlog_relocations_total", "RelocateBlock calls", e.stats.relocations.Load)
	r.CounterFunc("backlog_expiries_total", "Expire passes that dropped at least one run", e.stats.expiries.Load)
	r.CounterFunc("backlog_runs_expired_total", "Runs dropped whole by expiry", e.stats.runsExpired.Load)
	r.CounterFunc("backlog_records_expired_total", "Records inside runs dropped by expiry", e.stats.recordsExpired.Load)
	r.CounterFunc("backlog_wal_replayed_total", "WAL records replayed at Open", func() uint64 { return e.walReplayed })
	if e.wal != nil {
		r.CounterFunc("backlog_wal_appends_total", "Records appended to the write-ahead log",
			func() uint64 { return e.wal.Stats().Appends })
		r.CounterFunc("backlog_wal_batches_total", "WAL group-commit flushes",
			func() uint64 { return e.wal.Stats().Batches })
		r.GaugeFunc("backlog_wal_segments", "Live write-ahead-log segment files",
			func() float64 { return float64(e.wal.SegmentCount()) })
	}
	if e.obs != nil && e.obs.slow != nil {
		r.CounterFunc("backlog_slow_ops_total", "Ops that exceeded the slow-op threshold",
			e.obs.slow.Total)
	}

	// Gauges over live structures. Scrapes run with no engine lock held
	// (Metrics/debug endpoint), so the short shared acquisitions here
	// cannot deadlock; they only delay a scrape behind an exclusive
	// critical section, which is bounded (freeze/install are pointer
	// swaps).
	r.GaugeFunc("backlog_view_pins", "LSM views currently pinned by queries and compactions",
		func() float64 { return float64(e.db.ActiveViews()) })
	r.GaugeFunc("backlog_deferred_run_files", "Superseded run files awaiting deletion behind pinned views",
		func() float64 { return float64(e.db.DeferredFiles()) })
	r.GaugeFunc("backlog_runs_live", "Live read-store runs", func() float64 {
		return float64(e.RunCount())
	})
	// Per-level run counts (summed across partitions and tables) expose
	// the shape PolicyLeveled maintains; the last bucket lumps every
	// deeper level so the series stays bounded.
	const levelGauges = 8
	levelCount := func(level int) float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		var n int
		for _, part := range e.db.PartitionLevelCounts() {
			for l, c := range part {
				if l == level || (level == levelGauges-1 && l > level) {
					n += c
				}
			}
		}
		return float64(n)
	}
	for level := 0; level < levelGauges; level++ {
		level := level
		help := "Live runs at this maintenance level"
		if level == levelGauges-1 {
			help = "Live runs at this maintenance level or deeper"
		}
		r.GaugeFunc(gaugeName("backlog_runs_level", "level", level), help,
			func() float64 { return levelCount(level) })
	}
	r.GaugeFunc("backlog_db_bytes", "On-disk size of the database", func() float64 {
		return float64(e.SizeBytes())
	})
	// Per-table compression accounting: logical bytes (records x record
	// size), physical on-disk bytes, and their ratio, computed from the
	// live run set at scrape time.
	for _, table := range []string{TableFrom, TableTo, TableCombined} {
		table := table
		sums := func() (logical, physical int64) {
			e.mu.RLock()
			defer e.mu.RUnlock()
			for _, ri := range e.db.RunInfos() {
				if ri.Table != table {
					continue
				}
				logical += ri.LogicalBytes
				physical += ri.SizeBytes
			}
			return logical, physical
		}
		r.GaugeFunc(tableGaugeName("backlog_run_logical_bytes", table),
			"Decoded size of the table's live run records",
			func() float64 { l, _ := sums(); return float64(l) })
		r.GaugeFunc(tableGaugeName("backlog_run_physical_bytes", table),
			"On-disk size of the table's live runs (pages + Bloom filters)",
			func() float64 { _, p := sums(); return float64(p) })
		r.GaugeFunc(tableGaugeName("backlog_run_compression_ratio", table),
			"Logical / physical size of the table's live runs",
			func() float64 {
				l, p := sums()
				if p == 0 {
					return 0
				}
				return float64(l) / float64(p)
			})
	}
	// Per-table run heat: device bytes read on behalf of queries from the
	// table's live runs, summed at scrape time. Zero when I/O attribution
	// is disabled.
	for _, table := range []string{TableFrom, TableTo, TableCombined} {
		table := table
		r.GaugeFunc(tableGaugeName("backlog_run_heat_bytes", table),
			"Query-read device bytes accumulated by the table's live runs",
			func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				var n int64
				for _, ri := range e.db.RunInfos() {
					if ri.Table == table {
						n += ri.HeatBytes
					}
				}
				return float64(n)
			})
	}
	if e.ios != nil {
		// The write-amplification gauges sample the monitor at scrape time
		// (IOReport shares the same monitor), so their window resolution is
		// the scrape interval.
		r.GaugeFunc("backlog_write_amp",
			"Rolling write amplification: device bytes written / user bytes in, over the monitor window",
			func() float64 { return e.IOReport().WindowWriteAmp })
		r.GaugeFunc("backlog_write_amp_cumulative",
			"Cumulative write amplification since Open",
			func() float64 { return e.IOReport().WriteAmp })
	}
	if e.cache != nil {
		// The shared cache holds verified payloads and decoded v2 leaves;
		// a hit means a query skipped both the page read and the decode.
		r.CounterFunc("backlog_decoded_cache_hits_total", "Page-cache hits (decoded pages served without I/O or decode)",
			func() uint64 { h, _ := e.cache.Stats(); return uint64(h) })
		r.CounterFunc("backlog_decoded_cache_misses_total", "Page-cache misses (page read, verified, and decoded)",
			func() uint64 { _, m := e.cache.Stats(); return uint64(m) })
		r.GaugeFunc("backlog_decoded_cache_bytes", "Bytes resident in the shared page cache",
			func() float64 { return float64(e.cache.SizeBytes()) })
	}
	r.GaugeFunc("backlog_frozen_shards", "Write-store shards with a frozen generation (checkpoint flush in flight)",
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			var n int
			for _, s := range e.shards {
				if s.frozenFrom != nil {
					n++
				}
			}
			return float64(n)
		})
	for i, s := range e.shards {
		s := s
		r.GaugeFunc(gaugeName("backlog_ws_records", "shard", i),
			"Buffered write-store records in the shard's active trees",
			func() float64 {
				s.mu.RLock()
				n := s.from.Len() + s.to.Len() + s.combined.Len()
				s.mu.RUnlock()
				return float64(n)
			})
		r.GaugeFunc(gaugeName("backlog_ws_frozen_records", "shard", i),
			"Write-store records frozen mid-flush in the shard",
			func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				if s.frozenFrom == nil {
					return 0
				}
				return float64(s.frozenFrom.Len() + s.frozenTo.Len() + s.frozenCombined.Len())
			})
	}
}

// gaugeName renders a labeled metric name ("backlog_ws_records" +
// {shard="3"}) in the form obs.WritePrometheus understands.
func gaugeName(base, label string, v int) string {
	return base + "{" + label + "=\"" + itoa(v) + "\"}"
}

// tableGaugeName renders a table-labeled metric name.
func tableGaugeName(base, table string) string {
	return base + "{table=\"" + table + "\"}"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Metrics returns a snapshot of the engine's metrics registry (empty when
// observability is disabled).
func (e *Engine) Metrics() obs.Snapshot { return e.opts.Metrics.Snapshot() }

// SlowOps returns the retained slow-op events, oldest first (nil when no
// slow-op log is configured; see Options.SlowOpThreshold).
func (e *Engine) SlowOps() []obs.OpEvent {
	if e.obs == nil || e.obs.slow == nil {
		return nil
	}
	return e.obs.slow.Snapshot()
}

// SlowLog returns the built-in slow-op log, or nil when disabled.
func (e *Engine) SlowLog() *obs.SlowLog {
	if e.obs == nil {
		return nil
	}
	return e.obs.slow
}
