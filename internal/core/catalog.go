package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Clone records that a new snapshot line was created from version Base of
// some parent line.
type Clone struct {
	Line uint64 // the clone's line ID
	Base uint64 // the parent-line version (global CP number) it was cloned from
}

// Catalog is the engine's view of snapshot topology: which snapshot
// versions of each line still exist, which lines are live, and how lines
// were cloned from one another. fsim implements it from its in-memory
// metadata; standalone databases use MemCatalog.
type Catalog interface {
	// SnapshotsIn returns the retained (non-deleted) snapshot versions v
	// of line with from <= v < to, in ascending order.
	SnapshotsIn(line, from, to uint64) []uint64
	// IsLive reports whether the line's writable file system still exists.
	IsLive(line uint64) bool
	// Clones returns the clones created from this line that are still
	// needed (live, or carrying snapshots, or transitively cloned into
	// needed lines). Query expansion follows these edges.
	Clones(line uint64) []Clone
	// PinnedIn reports whether any version v of line with from <= v < to
	// must be preserved for inheritance even though it may have been
	// deleted: clone-base versions of needed clones, including zombie
	// snapshots (Section 4.2.2).
	PinnedIn(line, from, to uint64) bool
	// OldestReachable returns the smallest consistency point any retained
	// snapshot or zombie (deleted-but-cloned) version of any line still
	// pins, and ok=false when no such version exists. It is the reclaim
	// horizon of drop-based expiry: a complete back-reference interval
	// ending before it can never again be exposed by masking, because
	// clone bases are always members of their parent's snapshot-or-zombie
	// set, so the minimum over those sets bounds every PinnedIn answer
	// too. Live lines need no term here — their references are incomplete
	// (to == Infinity) or protected as override records.
	OldestReachable() (uint64, bool)
}

// MemCatalog is a Catalog implementation that also provides the management
// operations a file system performs: taking and deleting snapshots,
// creating writable clones, and deleting lines. It maintains the paper's
// zombie list: deleting a snapshot that has clones keeps its version pinned
// until no descendants remain. MemCatalog is safe for concurrent use.
type MemCatalog struct {
	mu    sync.RWMutex
	lines map[uint64]*lineInfo

	// reach caches OldestReachable (recomputing it scans every line's
	// snapshot and zombie sets); any mutation invalidates it.
	reachValid bool
	reachOK    bool
	reach      uint64
}

type lineInfo struct {
	ID        uint64
	Live      bool
	Parent    uint64
	Base      uint64
	HasParent bool
	Snapshots map[uint64]bool // retained snapshot versions
	Zombies   map[uint64]bool // deleted-but-cloned versions
	Clones    map[uint64]uint64
}

// NewMemCatalog returns a catalog with a single live line 0 (the volume's
// original line).
func NewMemCatalog() *MemCatalog {
	c := &MemCatalog{lines: make(map[uint64]*lineInfo)}
	c.lines[0] = newLineInfo(0)
	return c
}

func newLineInfo(id uint64) *lineInfo {
	return &lineInfo{
		ID:        id,
		Live:      true,
		Snapshots: make(map[uint64]bool),
		Zombies:   make(map[uint64]bool),
		Clones:    make(map[uint64]uint64),
	}
}

// CreateSnapshot retains version v of line (typically the CP at which the
// snapshot was taken).
func (c *MemCatalog) CreateSnapshot(line, v uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.lines[line]
	if !ok {
		return fmt.Errorf("core: snapshot on unknown line %d", line)
	}
	li.Snapshots[v] = true
	c.reachValid = false
	return nil
}

// DeleteSnapshot removes version v of line. If the snapshot has clones, its
// version moves to the zombie list so that clone inheritance keeps working
// until the clones disappear.
func (c *MemCatalog) DeleteSnapshot(line, v uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.lines[line]
	if !ok || !li.Snapshots[v] {
		return fmt.Errorf("core: delete of unknown snapshot (%d, %d)", line, v)
	}
	delete(li.Snapshots, v)
	c.reachValid = false
	for _, base := range li.Clones {
		if base == v {
			li.Zombies[v] = true
			break
		}
	}
	return nil
}

// CreateClone starts writable line newLine as a copy of version base of
// parent. Base must be a retained or zombie snapshot of parent.
func (c *MemCatalog) CreateClone(newLine, parent, base uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	pl, ok := c.lines[parent]
	if !ok {
		return fmt.Errorf("core: clone of unknown line %d", parent)
	}
	if !pl.Snapshots[base] && !pl.Zombies[base] {
		return fmt.Errorf("core: clone of non-snapshot version (%d, %d)", parent, base)
	}
	if _, exists := c.lines[newLine]; exists {
		return fmt.Errorf("core: line %d already exists", newLine)
	}
	li := newLineInfo(newLine)
	li.Parent, li.Base, li.HasParent = parent, base, true
	c.lines[newLine] = li
	pl.Clones[newLine] = base
	c.reachValid = false
	return nil
}

// DeleteLine marks the line's live file system as destroyed. Its retained
// snapshots (if any) stay queryable until deleted individually.
func (c *MemCatalog) DeleteLine(line uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.lines[line]
	if !ok {
		return fmt.Errorf("core: delete of unknown line %d", line)
	}
	li.Live = false
	c.reachValid = false
	return nil
}

// ReapZombies drops clone registrations whose clone lines are no longer
// needed, and zombie versions with no remaining clones — the paper's
// periodic zombie examination. It returns the number of zombie versions
// released.
func (c *MemCatalog) ReapZombies() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reachValid = false
	released := 0
	for _, li := range c.lines {
		for cloneLine, base := range li.Clones {
			cl, ok := c.lines[cloneLine]
			if ok && c.neededLocked(cl, make(map[uint64]bool)) {
				continue
			}
			delete(li.Clones, cloneLine)
			if ok && !cl.Live && len(cl.Snapshots) == 0 && len(cl.Clones) == 0 {
				delete(c.lines, cloneLine)
			}
			// If no other clone pins this base version and it is a zombie,
			// release it.
			stillPinned := false
			for _, b := range li.Clones {
				if b == base {
					stillPinned = true
					break
				}
			}
			if !stillPinned && li.Zombies[base] {
				delete(li.Zombies, base)
				released++
			}
		}
	}
	return released
}

// neededLocked reports whether a line still matters: it is live, has
// retained snapshots, or has clones that are themselves needed.
func (c *MemCatalog) neededLocked(li *lineInfo, visiting map[uint64]bool) bool {
	if li.Live || len(li.Snapshots) > 0 {
		return true
	}
	if visiting[li.ID] {
		return false
	}
	visiting[li.ID] = true
	for cloneLine := range li.Clones {
		if cl, ok := c.lines[cloneLine]; ok && c.neededLocked(cl, visiting) {
			return true
		}
	}
	return false
}

// SnapshotsIn implements Catalog.
func (c *MemCatalog) SnapshotsIn(line, from, to uint64) []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	li, ok := c.lines[line]
	if !ok {
		return nil
	}
	var out []uint64
	for v := range li.Snapshots {
		if from <= v && v < to {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsLive implements Catalog.
func (c *MemCatalog) IsLive(line uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	li, ok := c.lines[line]
	return ok && li.Live
}

// Clones implements Catalog.
func (c *MemCatalog) Clones(line uint64) []Clone {
	c.mu.RLock()
	defer c.mu.RUnlock()
	li, ok := c.lines[line]
	if !ok {
		return nil
	}
	var out []Clone
	for cloneLine, base := range li.Clones {
		cl, ok := c.lines[cloneLine]
		if !ok || !c.neededLocked(cl, make(map[uint64]bool)) {
			continue
		}
		out = append(out, Clone{Line: cloneLine, Base: base})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// PinnedIn implements Catalog.
func (c *MemCatalog) PinnedIn(line, from, to uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	li, ok := c.lines[line]
	if !ok {
		return false
	}
	for cloneLine, base := range li.Clones {
		if base < from || base >= to {
			continue
		}
		if cl, ok := c.lines[cloneLine]; ok && c.neededLocked(cl, make(map[uint64]bool)) {
			return true
		}
	}
	return false
}

// OldestReachable implements Catalog: the minimum over every line's
// retained snapshot and zombie versions, cached until the next mutation.
func (c *MemCatalog) OldestReachable() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.reachValid {
		c.reachOK = false
		c.reach = 0
		for _, li := range c.lines {
			for v := range li.Snapshots {
				if !c.reachOK || v < c.reach {
					c.reach, c.reachOK = v, true
				}
			}
			for v := range li.Zombies {
				if !c.reachOK || v < c.reach {
					c.reach, c.reachOK = v, true
				}
			}
		}
		c.reachValid = true
	}
	return c.reach, c.reachOK
}

// Lines returns all known line IDs in ascending order.
func (c *MemCatalog) Lines() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, 0, len(c.lines))
	for id := range c.lines {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshots returns the retained snapshot versions of a line, ascending.
func (c *MemCatalog) Snapshots(line uint64) []uint64 {
	return c.SnapshotsIn(line, 0, Infinity)
}

// catalogJSON is the serialized form of MemCatalog.
type catalogJSON struct {
	Lines []lineJSON `json:"lines"`
}

type lineJSON struct {
	ID        uint64      `json:"id"`
	Live      bool        `json:"live"`
	Parent    uint64      `json:"parent,omitempty"`
	Base      uint64      `json:"base,omitempty"`
	HasParent bool        `json:"has_parent,omitempty"`
	Snapshots []uint64    `json:"snapshots,omitempty"`
	Zombies   []uint64    `json:"zombies,omitempty"`
	Clones    [][2]uint64 `json:"clones,omitempty"` // [line, base]
}

// MarshalJSON serializes the catalog deterministically.
func (c *MemCatalog) MarshalJSON() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var cj catalogJSON
	for _, id := range c.linesSortedLocked() {
		li := c.lines[id]
		lj := lineJSON{
			ID: li.ID, Live: li.Live,
			Parent: li.Parent, Base: li.Base, HasParent: li.HasParent,
			Snapshots: sortedKeys(li.Snapshots),
			Zombies:   sortedKeys(li.Zombies),
		}
		for _, cl := range sortedKeys64(li.Clones) {
			lj.Clones = append(lj.Clones, [2]uint64{cl, li.Clones[cl]})
		}
		cj.Lines = append(cj.Lines, lj)
	}
	return json.Marshal(cj)
}

// UnmarshalJSON restores a catalog serialized by MarshalJSON.
func (c *MemCatalog) UnmarshalJSON(data []byte) error {
	var cj catalogJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = make(map[uint64]*lineInfo, len(cj.Lines))
	for _, lj := range cj.Lines {
		li := newLineInfo(lj.ID)
		li.Live = lj.Live
		li.Parent, li.Base, li.HasParent = lj.Parent, lj.Base, lj.HasParent
		for _, v := range lj.Snapshots {
			li.Snapshots[v] = true
		}
		for _, v := range lj.Zombies {
			li.Zombies[v] = true
		}
		for _, cl := range lj.Clones {
			li.Clones[cl[0]] = cl[1]
		}
		c.lines[lj.ID] = li
	}
	if len(c.lines) == 0 {
		c.lines[0] = newLineInfo(0)
	}
	c.reachValid = false
	return nil
}

func (c *MemCatalog) linesSortedLocked() []uint64 {
	out := make([]uint64, 0, len(c.lines))
	for id := range c.lines {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys64(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
