package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// oracle is a reference implementation of back-reference semantics built
// directly from the event history, independent of tables, runs, pruning,
// and compaction. It shares only the catalog with the engine. Events are
// keyed by the full Ref (including the block): the same (inode, offset,
// line) may reference different blocks over time, and each block's history
// is independent.
type oracle struct {
	events map[Ref][]oracleEvent
}

type oracleEvent struct {
	cp  uint64
	add bool
}

func newOracle() *oracle {
	return &oracle{events: map[Ref][]oracleEvent{}}
}

func (o *oracle) addRef(r Ref, cp uint64) {
	o.events[r] = append(o.events[r], oracleEvent{cp: cp, add: true})
}

func (o *oracle) removeRef(r Ref, cp uint64) {
	o.events[r] = append(o.events[r], oracleEvent{cp: cp, add: false})
}

// intervals derives the validity intervals of one reference from its event
// history, applying the same-CP cancellation semantics.
func (o *oracle) intervals(id Ref) []interval {
	var out []interval
	open := false
	var openFrom uint64
	for _, ev := range o.events[id] {
		if ev.add {
			if open {
				continue // double add: idempotent
			}
			// Re-add at the CP where the previous interval closed:
			// the interval continues (reallocation pruning semantics).
			if n := len(out); n > 0 && out[n-1].to == ev.cp {
				openFrom = out[n-1].from
				out = out[:n-1]
				open = true
				continue
			}
			open, openFrom = true, ev.cp
		} else {
			if !open {
				// Remove of an inherited reference: override [0, cp).
				out = append(out, interval{from: 0, to: ev.cp})
				continue
			}
			if openFrom == ev.cp {
				// Added and removed in the same CP: vanishes.
				open = false
				continue
			}
			out = append(out, interval{from: openFrom, to: ev.cp})
			open = false
		}
	}
	if open {
		out = append(out, interval{from: openFrom, to: Infinity})
	}
	return out
}

// owners computes the expected query result for a block using the same
// expansion/masking semantics as the engine but from first principles.
func (o *oracle) owners(block uint64, cat Catalog) []Owner {
	groups := map[identity][]interval{}
	for r := range o.events {
		if r.Block != block {
			continue
		}
		ivs := o.intervals(r)
		if len(ivs) > 0 {
			groups[identOf(r)] = append(groups[identOf(r)], ivs...)
		}
	}
	for id := range groups {
		groups[id] = dedupeIntervals(groups[id])
	}
	expandInheritance(groups, cat)
	return maskOwners(groups, cat)
}

func ownersEqual(a, b []Owner) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Inode != y.Inode || x.Offset != y.Offset || x.Line != y.Line ||
			x.Length != y.Length || x.From != y.From || x.To != y.To || x.Live != y.Live {
			return false
		}
		if len(x.Versions) != len(y.Versions) {
			return false
		}
		for j := range x.Versions {
			if x.Versions[j] != y.Versions[j] {
				return false
			}
		}
	}
	return true
}

// TestEngineMatchesOracle drives a random workload — reference churn,
// snapshots, snapshot deletions, clones, periodic checkpoints and
// compactions — and verifies that every allocated block's query result
// matches the oracle at several points in time.
func TestEngineMatchesOracle(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOracleWorkload(t, seed, 60, 40)
		})
	}
}

func runOracleWorkload(t *testing.T, seed int64, cps int, blocks uint64) {
	rng := rand.New(rand.NewSource(seed))
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat, Partitions: 2, PartitionSpan: blocks / 2})
	if err != nil {
		t.Fatal(err)
	}
	orc := newOracle()

	// live[ref identity] tracks which refs are currently open so the
	// workload stays well-formed (no double add / remove of absent).
	live := map[identity]Ref{}
	lines := []uint64{0}
	deadLines := map[uint64]bool{}
	type snap struct{ line, v uint64 }
	var snaps []snap
	nextLine := uint64(1)

	verify := func(label string) {
		t.Helper()
		for b := uint64(0); b < blocks; b++ {
			got, err := eng.Query(b)
			if err != nil {
				t.Fatalf("%s: query %d: %v", label, b, err)
			}
			want := orc.owners(b, cat)
			if !ownersEqual(got, want) {
				t.Fatalf("%s: block %d:\n got=%+v\nwant=%+v", label, b, got, want)
			}
		}
	}

	for cp := uint64(1); cp <= uint64(cps); cp++ {
		// Random ops within this CP.
		nops := 5 + rng.Intn(20)
		for i := 0; i < nops; i++ {
			switch {
			case rng.Intn(3) != 0 || len(live) == 0: // add
				line := lines[rng.Intn(len(lines))]
				if deadLines[line] {
					continue
				}
				r := Ref{
					Block:  uint64(rng.Intn(int(blocks))),
					Inode:  uint64(1 + rng.Intn(6)),
					Offset: uint64(rng.Intn(4)),
					Line:   line,
					Length: 1,
				}
				id := identOf(r)
				if _, open := live[id]; open {
					continue
				}
				// The same (inode, offset, line) may reference only one
				// block at a time in a real FS, but for back-reference
				// semantics identity includes the block, so this is fine.
				eng.AddRef(r, cp)
				orc.addRef(r, cp)
				live[id] = r
			default: // remove a random live ref
				for id, r := range live {
					eng.RemoveRef(r, cp)
					orc.removeRef(r, cp)
					delete(live, id)
					break
				}
			}
		}

		// Snapshot this CP sometimes.
		if rng.Intn(3) == 0 {
			line := lines[rng.Intn(len(lines))]
			if !deadLines[line] {
				if err := cat.CreateSnapshot(line, cp); err != nil {
					t.Fatal(err)
				}
				snaps = append(snaps, snap{line, cp})
			}
		}
		// Clone an existing snapshot sometimes.
		if len(snaps) > 0 && rng.Intn(8) == 0 {
			s := snaps[rng.Intn(len(snaps))]
			if err := cat.CreateClone(nextLine, s.line, s.v); err == nil {
				lines = append(lines, nextLine)
				nextLine++
			}
		}
		// Delete a snapshot sometimes, then rebuild the tracking list from
		// the catalog (deletion may have turned it into a zombie).
		if len(snaps) > 0 && rng.Intn(6) == 0 {
			s := snaps[rng.Intn(len(snaps))]
			_ = cat.DeleteSnapshot(s.line, s.v)
			var kept []snap
			for _, sn := range snaps {
				if len(cat.SnapshotsIn(sn.line, sn.v, sn.v+1)) > 0 {
					kept = append(kept, sn)
				}
			}
			snaps = kept
		}

		if err := eng.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}

		// Mid-workload verifications and compactions.
		if cp == uint64(cps)/3 {
			verify("one-third")
		}
		if cp == uint64(cps)/2 {
			if err := eng.Compact(); err != nil {
				t.Fatal(err)
			}
			verify("post-compaction")
		}
	}

	verify("final")
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	verify("final-compacted")

	// Reopen from disk and verify again (durability).
	eng2, err := Open(Options{VFS: fs, Catalog: cat, Partitions: 2, PartitionSpan: blocks / 2})
	if err != nil {
		t.Fatal(err)
	}
	for b := uint64(0); b < blocks; b++ {
		got, err := eng2.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := orc.owners(b, cat)
		if !ownersEqual(got, want) {
			t.Fatalf("reopen: block %d:\n got=%+v\nwant=%+v", b, got, want)
		}
	}
}

// TestEngineMatchesOracleNoPruning repeats a smaller oracle workload with
// pruning disabled: results must be semantically identical after masking.
//
// One sequence is deliberately excluded: remove→add→remove of the same
// reference within a single CP. Without pruning, the two identical To
// records collapse in the set-semantics write store, and the add/remove
// pairing becomes genuinely ambiguous — which is exactly why the paper
// prunes same-CP pairs in the write store (Section 5.1). DisablePruning is
// an ablation knob, not a supported operating mode.
func TestEngineMatchesOracleNoPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := newOracle()
	live := map[identity]Ref{}
	addedAt := map[Ref]uint64{}
	const blocks = 20
	for cp := uint64(1); cp <= 30; cp++ {
		for i := 0; i < 10; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				r := ref(uint64(rng.Intn(blocks)), uint64(1+rng.Intn(3)), uint64(rng.Intn(3)), 0)
				id := identOf(r)
				if _, ok := live[id]; ok {
					continue
				}
				eng.AddRef(r, cp)
				orc.addRef(r, cp)
				live[id] = r
				addedAt[r] = cp
			} else {
				for id, r := range live {
					if addedAt[r] == cp {
						continue // see comment above
					}
					eng.RemoveRef(r, cp)
					orc.removeRef(r, cp)
					delete(live, id)
					break
				}
			}
		}
		if rng.Intn(2) == 0 {
			if err := cat.CreateSnapshot(0, cp); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	// Without pruning, adjacent intervals like [3,4)+[4,inf) are reported
	// split while the oracle coalesces them. Compare semantic coverage:
	// per (inode,offset,line): set of visible versions + liveness.
	type key struct{ ino, off, line uint64 }
	coverage := func(owners []Owner) map[key]map[uint64]bool {
		m := map[key]map[uint64]bool{}
		for _, o := range owners {
			k := key{o.Inode, o.Offset, o.Line}
			if m[k] == nil {
				m[k] = map[uint64]bool{}
			}
			for _, v := range o.Versions {
				m[k][v] = true
			}
			if o.Live {
				m[k][Infinity] = true
			}
		}
		return m
	}
	for b := uint64(0); b < blocks; b++ {
		got, err := eng.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := orc.owners(b, cat)
		gc, wc := coverage(got), coverage(want)
		if len(gc) != len(wc) {
			t.Fatalf("block %d: owner sets differ:\n got=%+v\nwant=%+v", b, got, want)
		}
		for k, vs := range wc {
			if len(gc[k]) != len(vs) {
				t.Fatalf("block %d %v: coverage %v vs %v", b, k, gc[k], vs)
			}
			for v := range vs {
				if !gc[k][v] {
					t.Fatalf("block %d %v: missing version %d", b, k, v)
				}
			}
		}
	}
}
