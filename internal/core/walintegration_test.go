package core

import (
	"strings"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

func walFiles(t *testing.T, vfs storage.VFS) []string {
	t.Helper()
	names, err := vfs.List()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			out = append(out, n)
		}
	}
	return out
}

// TestCheckpointOnlyTouchesNoWAL pins the paper-fidelity guarantee: the
// default durability mode creates no log files and performs no log I/O,
// so figure experiments are byte-identical to the pre-WAL engine.
func TestCheckpointOnlyTouchesNoWAL(t *testing.T) {
	vfs := storage.NewMemFS()
	eng, err := Open(Options{VFS: vfs, Catalog: NewMemCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	for cp := uint64(1); cp <= 3; cp++ {
		for i := uint64(0); i < 50; i++ {
			eng.AddRef(ref(cp*1000+i, i, 0, 0), cp)
		}
		mustCheckpoint(t, eng, cp)
	}
	if err := eng.RelocateBlock(1000, 9999); err != nil {
		t.Fatal(err)
	}
	if files := walFiles(t, vfs); len(files) != 0 {
		t.Fatalf("CheckpointOnly mode created log files: %v", files)
	}
	st := eng.Stats()
	if st.WALAppends != 0 || st.WALBatches != 0 || st.WALReplayed != 0 {
		t.Fatalf("CheckpointOnly mode logged: %+v", st)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointOnlyReplaysAndRetiresStaleWAL reopens a Sync-mode
// database in CheckpointOnly mode: the leftover log tail must still be
// replayed (silently dropping acknowledged references on a configuration
// change would be data loss) and the segments retired at the next
// checkpoint.
func TestCheckpointOnlyReplaysAndRetiresStaleWAL(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: vfs, Catalog: cat, Durability: wal.Sync})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddRef(ref(1, 1, 0, 0), 1)
	mustCheckpoint(t, eng, 1)
	eng.AddRef(ref(2, 2, 0, 0), 2) // durable only in the log
	vfs.Crash()

	eng2, err := Open(Options{VFS: vfs, Catalog: cat}) // CheckpointOnly
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Stats().WALReplayed; got != 1 {
		t.Fatalf("replayed %d records, want 1", got)
	}
	if owners := mustQuery(t, eng2, 2); len(owners) != 1 {
		t.Fatalf("logged ref lost on mode downgrade: %+v", owners)
	}
	if files := walFiles(t, vfs); len(files) == 0 {
		t.Fatal("stale segments removed before the checkpoint that covers them")
	}
	mustCheckpoint(t, eng2, 2)
	if files := walFiles(t, vfs); len(files) != 0 {
		t.Fatalf("stale segments not retired at checkpoint: %v", files)
	}
	if owners := mustQuery(t, eng2, 2); len(owners) != 1 {
		t.Fatalf("ref lost after checkpoint: %+v", owners)
	}
}

// TestRelocationDurableAtCheckpoint pins the deletion-vector half of a
// relocation: Checkpoint must persist the DVs hiding the old block's run
// records, or a crash resurrects them next to the transplanted copies.
// (WAL replay cannot re-hide them: it rightly skips relocate records a
// committed checkpoint covers.) Checked in every durability mode — the
// hole predates the WAL.
func TestRelocationDurableAtCheckpoint(t *testing.T) {
	for _, mode := range []wal.Durability{wal.CheckpointOnly, wal.Buffered, wal.Sync} {
		t.Run(mode.String(), func(t *testing.T) {
			vfs := storage.NewMemFS()
			cat := NewMemCatalog()
			open := func() *Engine {
				eng, err := Open(Options{VFS: vfs, Catalog: cat, Durability: mode})
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			eng := open()
			eng.AddRef(ref(10, 1, 0, 0), 1)
			mustCheckpoint(t, eng, 1)
			if err := eng.RelocateBlock(10, 500); err != nil {
				t.Fatal(err)
			}
			mustCheckpoint(t, eng, 2)
			vfs.Crash()

			eng2 := open()
			if owners := mustQuery(t, eng2, 10); len(owners) != 0 {
				t.Fatalf("relocated-away reference resurrected by crash: %+v", owners)
			}
			owners := mustQuery(t, eng2, 500)
			if len(owners) != 1 || !owners[0].Live {
				t.Fatalf("transplanted reference = %+v", owners)
			}
		})
	}
}

// TestSyncCrashRecoveryCore is the acceptance scenario at the engine
// level: crash after AddRef, before Checkpoint, in Sync mode — reopening
// loses nothing.
func TestSyncCrashRecoveryCore(t *testing.T) {
	vfs := storage.NewMemFS()
	cat := NewMemCatalog()
	open := func() *Engine {
		eng, err := Open(Options{VFS: vfs, Catalog: cat, Durability: wal.Sync})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := open()
	eng.AddRef(ref(10, 1, 0, 0), 1)
	mustCheckpoint(t, eng, 1)
	eng.AddRef(ref(11, 1, 1, 0), 2)
	eng.RemoveRef(ref(10, 1, 0, 0), 2)
	if err := eng.RelocateBlock(11, 500); err != nil {
		t.Fatal(err)
	}
	vfs.Crash()

	eng2 := open()
	if owners := mustQuery(t, eng2, 11); len(owners) != 0 {
		t.Fatalf("relocated-away block still owned: %+v", owners)
	}
	owners := mustQuery(t, eng2, 500)
	if len(owners) != 1 || !owners[0].Live {
		t.Fatalf("relocated ref = %+v", owners)
	}
	var live int
	for _, o := range mustQuery(t, eng2, 10) {
		if o.Live {
			live++
		}
	}
	if live != 0 {
		t.Fatal("replayed RemoveRef lost")
	}
	// Crash AGAIN without a checkpoint: replay must be repeatable.
	vfs.Crash()
	eng3 := open()
	if owners := mustQuery(t, eng3, 500); len(owners) != 1 {
		t.Fatalf("second recovery lost the ref: %+v", owners)
	}
	mustCheckpoint(t, eng3, 2)
	if owners := mustQuery(t, eng3, 500); len(owners) != 1 {
		t.Fatalf("checkpoint after recovery lost the ref: %+v", owners)
	}
}
