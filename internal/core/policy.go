package core

import (
	"sort"

	"github.com/backlogfs/backlog/internal/lsm"
)

// DefaultFanout is the stepped-merge fanout PolicyLeveled uses when
// Options.Fanout is zero: once a table accumulates this many runs at one
// level of a partition, the level merges into a single run one level up.
const DefaultFanout = 4

// CompactionJob is one unit of maintenance work a CompactionPolicy asks
// the scheduler to perform.
//
// Two shapes exist. A Full job (Full == true, run lists empty) is a
// whole-partition merge-to-one executed by the classic compaction path —
// the paper's Section 5.2 maintenance. A leveled job names its input runs
// explicitly per table and the level its outputs are stamped with; the
// scheduler merges exactly those runs and installs the outputs, leaving
// every other run of the partition untouched.
type CompactionJob struct {
	Partition int
	// Full marks a whole-partition worst-first merge; OutputLevel and the
	// input lists are ignored.
	Full bool
	// OutputLevel is the level stamped on the merge outputs (one above
	// the inputs for a stepped merge).
	OutputLevel int
	// From, To, and Combined are the input runs per table. The pointers
	// identify runs in the view the plan was made against; the executor
	// re-validates them against a fresh view before reading.
	From, To, Combined []*lsm.Run
}

// PlanContext carries the engine configuration a policy plans against.
type PlanContext struct {
	// Partitions is the number of block-range partitions.
	Partitions int
	// Threshold is the effective per-partition run-count threshold
	// (PolicyFull's trigger).
	Threshold int
	// Fanout is the effective stepped-merge fanout (PolicyLeveled's
	// trigger), already defaulted and clamped to >= 2.
	Fanout int
	// Tiered reports drop-based expiry (Options.Retention == RetainLive):
	// sealed Combined windows must stay individually droppable, so
	// policies must not plan merges that would re-open them.
	Tiered bool
	// Horizon is the reclaim horizon when Tiered (0 otherwise): no
	// consistency point below it is reachable from the snapshot catalog.
	// Combined runs droppable below the horizon are about to be reclaimed
	// whole by expiry and must never be merge inputs.
	Horizon uint64
}

// CompactionPolicy plans maintenance work from a pinned LSM view. Plan
// must be a pure function of the view and context — it is called with no
// structural lock held and its jobs are validated (and dropped if stale)
// by the executor, so a policy never needs to worry about races with
// checkpoints or queries. Returned jobs are executed in order; the
// scheduler re-plans after draining a batch, so a policy may emit only
// the most urgent work per call.
type CompactionPolicy interface {
	// Name identifies the policy in MaintenanceStats and tooling.
	Name() string
	Plan(v *lsm.View, ctx PlanContext) []CompactionJob
}

// PolicyFull is the compatibility default: merge the worst partition —
// the one with the most runs — down to at most one Combined and one From
// run, repeating (via re-planning) until no partition exceeds the
// threshold. This is the paper's Section 5.2 maintenance driven
// worst-first, exactly the behavior the background maintainer has always
// had, so paper-figure experiments pinned to it stay byte-identical.
type PolicyFull struct{}

// Name implements CompactionPolicy.
func (PolicyFull) Name() string { return "full" }

// Plan emits at most one whole-partition job: the partition with the most
// compactable runs, when over threshold. Under tiered retention sealed
// Combined runs are excluded from the count — a full merge leaves them in
// place for expiry, so counting them would keep the scheduler spinning on
// a partition it cannot shrink.
func (PolicyFull) Plan(v *lsm.View, ctx PlanContext) []CompactionJob {
	worst, max := 0, 0
	for p := 0; p < ctx.Partitions; p++ {
		n := 0
		for _, table := range []string{TableFrom, TableTo, TableCombined} {
			for _, r := range v.Runs(table, p) {
				if ctx.Tiered && table == TableCombined &&
					r.Level() >= 1 && r.CPWindowKnown() && r.Overrides() == 0 {
					continue
				}
				n++
			}
		}
		if n > max {
			worst, max = p, n
		}
	}
	if max <= ctx.Threshold {
		return nil
	}
	return []CompactionJob{{Partition: worst, Full: true}}
}

// PolicyLeveled is stepped-merge maintenance (LogBase-style): when a
// table accumulates Fanout runs at level L of a partition, all level-L
// runs of the partition merge into one level-L+1 run per table. Each
// record is rewritten once per level instead of once per maintenance
// pass, so sustained ingest pays O(log_Fanout(runs)) write amplification
// instead of PolicyFull's O(runs) — at the cost of queries reading a few
// more runs between merges.
//
// Unlike a full merge, a leveled merge sees only a slice of each
// identity's records, so it joins From/To pairs only when both ends are
// inside the slice and carries unmatched records verbatim to the output
// level (never synthesizing the inherited-ownership records the full
// join derives for unmatched Tos, and never purging a From whose To may
// live elsewhere). Records therefore meet and join as they climb levels
// together.
//
// Under tiered retention, Combined runs already droppable below the
// reclaim horizon are never chosen as inputs: expiry is about to reclaim
// them for free, and merging one would fold its sealed window into a
// younger output that could then never be dropped.
type PolicyLeveled struct{}

// Name implements CompactionPolicy.
func (PolicyLeveled) Name() string { return "leveled" }

// Plan emits one job per (partition, level) whose run count triggers the
// fanout, shallowest level first so freshly promoted runs can cascade
// upward within one maintenance pass.
func (PolicyLeveled) Plan(v *lsm.View, ctx PlanContext) []CompactionJob {
	fanout := ctx.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	var jobs []CompactionJob
	for p := 0; p < ctx.Partitions; p++ {
		jobs = append(jobs, planPartitionLevels(v, ctx, p, fanout)...)
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].OutputLevel != jobs[j].OutputLevel {
			return jobs[i].OutputLevel < jobs[j].OutputLevel
		}
		return jobs[i].Partition < jobs[j].Partition
	})
	return jobs
}

// planPartitionLevels groups one partition's runs by level and emits a
// job for every level where some table reached the fanout.
func planPartitionLevels(v *lsm.View, ctx PlanContext, p, fanout int) []CompactionJob {
	type levelRuns struct {
		from, to, combined []*lsm.Run
	}
	byLevel := map[int]*levelRuns{}
	at := func(level int) *levelRuns {
		lr := byLevel[level]
		if lr == nil {
			lr = &levelRuns{}
			byLevel[level] = lr
		}
		return lr
	}
	for _, r := range v.Runs(TableFrom, p) {
		lr := at(r.Level())
		lr.from = append(lr.from, r)
	}
	for _, r := range v.Runs(TableTo, p) {
		lr := at(r.Level())
		lr.to = append(lr.to, r)
	}
	for _, r := range v.Runs(TableCombined, p) {
		if ctx.Tiered && ctx.Horizon > 0 && r.DroppableBelow(ctx.Horizon) {
			// Expiry will drop this run whole; merging it would destroy
			// the disjoint window that makes that possible.
			continue
		}
		lr := at(r.Level())
		lr.combined = append(lr.combined, r)
	}

	var jobs []CompactionJob
	for level, lr := range byLevel {
		if len(lr.from) < fanout && len(lr.to) < fanout && len(lr.combined) < fanout {
			continue
		}
		total := len(lr.from) + len(lr.to) + len(lr.combined)
		if total <= maxJobOutputs(ctx, lr.from, lr.to, lr.combined) {
			// The merge cannot shrink the run count — re-merging would
			// just climb levels forever; leave the level until more runs
			// arrive.
			continue
		}
		jobs = append(jobs, CompactionJob{
			Partition:   p,
			OutputLevel: level + 1,
			From:        lr.from,
			To:          lr.to,
			Combined:    lr.combined,
		})
	}
	return jobs
}

// maxJobOutputs bounds how many runs a leveled merge of the given inputs
// can produce: at most one From, one To, and one Combined output, plus a
// separate override run under tiered retention when an input actually
// carries override records (the merge never synthesizes them).
func maxJobOutputs(ctx PlanContext, from, to, combined []*lsm.Run) int {
	n := 0
	if len(from) > 0 {
		n++
	}
	if len(to) > 0 {
		n++
	}
	if len(combined) > 0 || (len(from) > 0 && len(to) > 0) {
		n++
	}
	if ctx.Tiered {
		for _, r := range combined {
			if r.Overrides() > 0 {
				n++
				break
			}
		}
	}
	return n
}
