// Frozen-write-store checkpoint tests. These live in an external test
// package so they can verify against the internal/naive oracle, which
// itself imports internal/core.
package core_test

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/naive"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// gatedVFS blocks run-file creation until released, holding a checkpoint
// in its lock-free flush phase so tests can deterministically exercise
// the engine while the write stores are frozen. The first blocked Create
// also signals entered, which tells the test the freeze has completed and
// the flush has begun.
type gatedVFS struct {
	storage.VFS
	mu       sync.Mutex
	gated    bool
	entered  chan struct{}
	release  chan struct{}
	signaled bool
}

func newGatedVFS(inner storage.VFS) *gatedVFS {
	return &gatedVFS{VFS: inner}
}

// arm gates subsequent run-file creations. Returns (entered, release):
// receive from entered to know a flush reached its first run file; close
// release to let gated creations proceed.
func (g *gatedVFS) arm() (<-chan struct{}, chan<- struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gated = true
	g.signaled = false
	g.entered = make(chan struct{})
	g.release = make(chan struct{})
	return g.entered, g.release
}

func (g *gatedVFS) Create(name string) (storage.File, error) {
	g.mu.Lock()
	if !g.gated || !strings.HasSuffix(name, ".run") {
		g.mu.Unlock()
		return g.VFS.Create(name)
	}
	if !g.signaled {
		g.signaled = true
		close(g.entered)
	}
	release := g.release
	g.mu.Unlock()
	<-release
	return g.VFS.Create(name)
}

type freezeEnv struct {
	fs  *storage.MemFS
	cat *core.MemCatalog
	eng *core.Engine
}

func newFreezeEnv(t *testing.T, opts core.Options) *freezeEnv {
	t.Helper()
	fs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	if opts.VFS == nil {
		opts.VFS = fs
	}
	opts.Catalog = cat
	eng, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return &freezeEnv{fs: fs, cat: cat, eng: eng}
}

func newGatedEnv(t *testing.T, opts core.Options) (*freezeEnv, *gatedVFS) {
	t.Helper()
	fs := storage.NewMemFS()
	g := newGatedVFS(fs)
	opts.VFS = g
	env := newFreezeEnv(t, opts)
	env.fs = fs
	return env, g
}

func fref(block, inode, offset, line uint64) core.Ref {
	return core.Ref{Block: block, Inode: inode, Offset: offset, Line: line, Length: 1}
}

func fQuery(t *testing.T, e *core.Engine, block uint64) []core.Owner {
	t.Helper()
	owners, err := e.Query(block)
	if err != nil {
		t.Fatal(err)
	}
	return owners
}

func fCheckpoint(t *testing.T, e *core.Engine, cp uint64) {
	t.Helper()
	if err := e.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointStaleCPRejected covers the replay-filter guard: a CP that
// does not exceed the committed one must be rejected without touching the
// write stores or the manifest.
func TestCheckpointStaleCPRejected(t *testing.T) {
	env := newFreezeEnv(t, core.Options{})
	if err := env.eng.Checkpoint(0); !errors.Is(err, core.ErrStaleCP) {
		t.Fatalf("Checkpoint(0) on a fresh database: %v, want ErrStaleCP", err)
	}
	env.eng.AddRef(fref(1, 2, 0, 0), 3)
	fCheckpoint(t, env.eng, 3)
	for _, stale := range []uint64{0, 2, 3} {
		env.eng.AddRef(fref(10+stale, 2, stale, 0), 4)
		if err := env.eng.Checkpoint(stale); !errors.Is(err, core.ErrStaleCP) {
			t.Fatalf("Checkpoint(%d) after committing 3: %v, want ErrStaleCP", stale, err)
		}
	}
	if got := env.eng.CP(); got != 3 {
		t.Fatalf("CP rolled to %d by rejected checkpoints", got)
	}
	// The rejected checkpoints froze nothing: the buffered records are
	// still queryable and flush with the next valid CP.
	if got := env.eng.WSLen(); got != 3 {
		t.Fatalf("WSLen = %d after rejected checkpoints, want 3", got)
	}
	fCheckpoint(t, env.eng, 4)
	if got := env.eng.WSLen(); got != 0 {
		t.Fatalf("WSLen = %d after valid checkpoint", got)
	}
	for _, stale := range []uint64{0, 2, 3} {
		if owners := fQuery(t, env.eng, 10+stale); len(owners) != 1 || !owners[0].Live {
			t.Fatalf("record buffered across a rejected checkpoint lost: %+v", owners)
		}
	}
	if st := env.eng.Stats(); st.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", st.Checkpoints)
	}
}

// TestUpdatesAndQueriesDuringCheckpointFlush holds a checkpoint in its
// lock-free flush phase and verifies the tentpole contract: updates for
// the next CP proceed into fresh trees, queries read active ∪ frozen, a
// RemoveRef whose matching AddRef froze cancels through the join instead
// of pruning in place, and a second Checkpoint serializes behind the
// in-flight one.
func TestUpdatesAndQueriesDuringCheckpointFlush(t *testing.T) {
	env, g := newGatedEnv(t, core.Options{WriteShards: 4})
	eng := env.eng
	for b := uint64(1); b <= 8; b++ {
		eng.AddRef(fref(b, 2, b, 0), 1)
	}
	entered, release := g.arm()
	cp1 := make(chan error, 1)
	go func() { cp1 <- eng.Checkpoint(1) }()
	<-entered // freeze done, flush blocked on its first run file

	// Frozen records answer queries mid-flush.
	if owners := fQuery(t, eng, 3); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("frozen record invisible during flush: %+v", owners)
	}
	// Updates tagged cp 2 flow into the fresh active trees.
	eng.AddRef(fref(100, 9, 0, 0), 2)
	if owners := fQuery(t, eng, 100); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("active record invisible during flush: %+v", owners)
	}
	// Removing a frozen reference cannot prune in place: it must insert a
	// To record, and the pair cancels in the join.
	eng.RemoveRef(fref(4, 2, 4, 0), 1)
	if owners := fQuery(t, eng, 4); len(owners) != 0 {
		t.Fatalf("frozen AddRef + active RemoveRef did not cancel: %+v", owners)
	}
	if st := eng.Stats(); st.PrunedRemoves != 0 {
		t.Fatalf("PrunedRemoves = %d; pruning reached into a frozen tree", st.PrunedRemoves)
	}
	// A second checkpoint must wait for the in-flight one.
	cp2 := make(chan error, 1)
	go func() { cp2 <- eng.Checkpoint(2) }()
	select {
	case err := <-cp2:
		t.Fatalf("second checkpoint finished during the first one's flush: %v", err)
	default:
	}

	close(release)
	if err := <-cp1; err != nil {
		t.Fatal(err)
	}
	if err := <-cp2; err != nil {
		t.Fatal(err)
	}
	if got := eng.CP(); got != 2 {
		t.Fatalf("CP = %d after both checkpoints", got)
	}
	if got := eng.WSLen(); got != 0 {
		t.Fatalf("WSLen = %d after both checkpoints", got)
	}
	// Post-install state: flushed records in runs, cancellation held.
	if owners := fQuery(t, eng, 3); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("record lost after frozen flush: %+v", owners)
	}
	if owners := fQuery(t, eng, 4); len(owners) != 0 {
		t.Fatalf("cancelled pair resurrected after flush: %+v", owners)
	}
	if owners := fQuery(t, eng, 100); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("during-flush record lost: %+v", owners)
	}
	st := eng.Stats()
	if st.CheckpointFlushNanos == 0 || st.CheckpointSwapNanos == 0 || st.CheckpointInstallNanos == 0 {
		t.Fatalf("checkpoint stall counters not populated: %+v", st)
	}
}

// TestRelocateDuringCheckpointFlush relocates a block whose records are
// mid-flush in the frozen trees: the old block must go dark immediately,
// the new block must answer queries, and the state must survive the
// install, the next checkpoint, compaction, and a crash-reopen.
func TestRelocateDuringCheckpointFlush(t *testing.T) {
	env, g := newGatedEnv(t, core.Options{WriteShards: 4})
	eng := env.eng
	const oldBlock, newBlock = 5, 909
	eng.AddRef(fref(oldBlock, 3, 0, 0), 1)
	eng.AddRef(fref(oldBlock, 3, 1, 0), 1)
	eng.AddRef(fref(7, 4, 0, 0), 1) // bystander

	entered, release := g.arm()
	done := make(chan error, 1)
	go func() { done <- eng.Checkpoint(1) }()
	<-entered

	if err := eng.RelocateBlock(oldBlock, newBlock); err != nil {
		t.Fatal(err)
	}
	if owners := fQuery(t, eng, oldBlock); len(owners) != 0 {
		t.Fatalf("old block still answers during flush: %+v", owners)
	}
	if owners := fQuery(t, eng, newBlock); len(owners) != 2 {
		t.Fatalf("new block has %d owners during flush, want 2: %+v", len(owners), owners)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Post-install: the frozen records landed in runs but are hidden by
	// the deletion vector the relocation primed.
	if owners := fQuery(t, eng, oldBlock); len(owners) != 0 {
		t.Fatalf("old block resurrected after install: %+v", owners)
	}
	if owners := fQuery(t, eng, newBlock); len(owners) != 2 {
		t.Fatalf("new block lost records after install: %+v", owners)
	}
	if owners := fQuery(t, eng, 7); len(owners) != 1 {
		t.Fatalf("bystander block wrong after install: %+v", owners)
	}
	// The next checkpoint persists the deletion vector together with the
	// re-keyed records; after a crash the state must hold.
	fCheckpoint(t, eng, 2)
	env.fs.Crash()
	eng2, err := core.Open(core.Options{VFS: env.fs, Catalog: env.cat, WriteShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if owners := fQuery(t, eng2, oldBlock); len(owners) != 0 {
		t.Fatalf("old block resurrected after crash: %+v", owners)
	}
	if owners := fQuery(t, eng2, newBlock); len(owners) != 2 {
		t.Fatalf("new block lost records after crash: %+v", owners)
	}
	if err := eng2.Compact(); err != nil {
		t.Fatal(err)
	}
	if owners := fQuery(t, eng2, oldBlock); len(owners) != 0 {
		t.Fatalf("old block resurrected after compaction: %+v", owners)
	}
	if owners := fQuery(t, eng2, newBlock); len(owners) != 2 {
		t.Fatalf("new block lost records after compaction: %+v", owners)
	}
}

// TestCheckpointFlushFailureRecovers injects a write failure into the
// lock-free flush and verifies the documented contract: on error every
// frozen record is merged back into the write stores (recoverable), and a
// retry succeeds.
func TestCheckpointFlushFailureRecovers(t *testing.T) {
	env := newFreezeEnv(t, core.Options{WriteShards: 4})
	eng := env.eng
	const n = 64
	for i := uint64(0); i < n; i++ {
		eng.AddRef(fref(i, 2, i, 0), 1)
	}
	env.fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: env.fs.Stats().PageWrites + 1})
	if err := eng.Checkpoint(1); err == nil {
		t.Fatal("checkpoint succeeded under an injected flush failure")
	}
	env.fs.SetFailurePlan(storage.FailurePlan{})
	if got := eng.WSLen(); got != n {
		t.Fatalf("WSLen = %d after failed flush, want %d (frozen records restored)", got, n)
	}
	if got := eng.CP(); got != 0 {
		t.Fatalf("CP = %d after failed flush", got)
	}
	for i := uint64(0); i < n; i++ {
		if owners := fQuery(t, eng, i); len(owners) != 1 || !owners[0].Live {
			t.Fatalf("block %d lost by failed flush: %+v", i, owners)
		}
	}
	// Retry succeeds and flushes everything.
	fCheckpoint(t, eng, 1)
	if got := eng.WSLen(); got != 0 {
		t.Fatalf("WSLen = %d after retry", got)
	}
	for i := uint64(0); i < n; i++ {
		if owners := fQuery(t, eng, i); len(owners) != 1 || !owners[0].Live {
			t.Fatalf("block %d lost by retry: %+v", i, owners)
		}
	}
	if st := eng.Stats(); st.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1 (failed attempt must not count)", st.Checkpoints)
	}
}

// TestRelocateThenFlushFailure relocates out of the frozen trees and then
// fails the flush: the restore must NOT resurrect the relocated-away
// records (their re-keyed copies live in the active trees).
func TestRelocateThenFlushFailure(t *testing.T) {
	env, g := newGatedEnv(t, core.Options{WriteShards: 4})
	eng := env.eng
	const oldBlock, newBlock = 11, 480
	eng.AddRef(fref(oldBlock, 3, 0, 0), 1)
	eng.AddRef(fref(12, 5, 0, 0), 1)

	entered, release := g.arm()
	done := make(chan error, 1)
	go func() { done <- eng.Checkpoint(1) }()
	<-entered
	if err := eng.RelocateBlock(oldBlock, newBlock); err != nil {
		t.Fatal(err)
	}
	// Fail the flush: the gated Creates proceed, and after one page the
	// writes behind them (or the manifest commit) fail.
	env.fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: env.fs.Stats().PageWrites + 1})
	close(release)
	if err := <-done; err == nil {
		t.Fatal("checkpoint succeeded under an injected flush failure")
	}
	env.fs.SetFailurePlan(storage.FailurePlan{})

	if owners := fQuery(t, eng, oldBlock); len(owners) != 0 {
		t.Fatalf("relocated-away record resurrected by restore: %+v", owners)
	}
	if owners := fQuery(t, eng, newBlock); len(owners) != 1 {
		t.Fatalf("relocated record lost by restore: %+v", owners)
	}
	if owners := fQuery(t, eng, 12); len(owners) != 1 {
		t.Fatalf("bystander lost by restore: %+v", owners)
	}
	fCheckpoint(t, eng, 1)
	if owners := fQuery(t, eng, oldBlock); len(owners) != 0 {
		t.Fatalf("relocated-away record resurrected by retry: %+v", owners)
	}
	if owners := fQuery(t, eng, newBlock); len(owners) != 1 {
		t.Fatalf("relocated record lost by retry: %+v", owners)
	}
}

// TestWALCutKeepsFlushConcurrentAppends is the WAL half of the tentpole:
// in Sync mode, an update acknowledged while a checkpoint flush runs must
// survive a crash even though the checkpoint that was in flight commits
// and retires the log behind it.
func TestWALCutKeepsFlushConcurrentAppends(t *testing.T) {
	fs := storage.NewMemFS()
	g := newGatedVFS(fs)
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: g, Catalog: cat, Durability: wal.Sync, WriteShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddRef(fref(1, 2, 0, 0), 1)

	entered, release := g.arm()
	done := make(chan error, 1)
	go func() { done <- eng.Checkpoint(1) }()
	<-entered
	// Acknowledged mid-flush, tagged for the next CP.
	eng.AddRef(fref(50, 7, 0, 0), 2)
	if err := eng.WALErr(); err != nil {
		t.Fatalf("append during flush noted a durability error: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	eng2, err := core.Open(core.Options{VFS: fs, Catalog: cat, Durability: wal.Sync, WriteShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Stats().WALReplayed; got != 1 {
		t.Fatalf("replayed %d records, want 1 (the mid-flush append)", got)
	}
	if owners := fQuery(t, eng2, 50); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("mid-flush acknowledged update lost across crash: %+v", owners)
	}
	if owners := fQuery(t, eng2, 1); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("checkpointed record lost across crash: %+v", owners)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringCheckpointFlush: Close must serialize behind an
// in-flight flush instead of closing the engine under it.
func TestCloseDuringCheckpointFlush(t *testing.T) {
	env, g := newGatedEnv(t, core.Options{WriteShards: 2})
	eng := env.eng
	eng.AddRef(fref(1, 2, 0, 0), 1)
	entered, release := g.arm()
	cpDone := make(chan error, 1)
	go func() { cpDone <- eng.Checkpoint(1) }()
	<-entered
	closeDone := make(chan error, 1)
	go func() { closeDone <- eng.Close() }()
	select {
	case err := <-closeDone:
		t.Fatalf("Close finished during the flush: %v", err)
	default:
	}
	close(release)
	if err := <-cpDone; err != nil {
		t.Fatal(err)
	}
	if err := <-closeDone; err != nil {
		t.Fatal(err)
	}
}

// hammerOp is one pre-generated write operation of a worker's stream;
// identities are disjoint across workers so a sequential replay is a
// valid oracle regardless of interleaving.
type hammerOp struct {
	r      core.Ref
	cp     uint64
	remove bool
}

func genHammerStreams(workers, opsEach, blocks int, maxCP uint64) [][]hammerOp {
	streams := make([][]hammerOp, workers)
	for w := range streams {
		rng := rand.New(rand.NewSource(int64(4000 + w)))
		var live []core.Ref
		for i := 0; i < opsEach; i++ {
			cp := uint64(1) + uint64(i)*maxCP/uint64(opsEach)
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				r := live[k]
				live = append(live[:k], live[k+1:]...)
				streams[w] = append(streams[w], hammerOp{r: r, cp: cp, remove: true})
			} else {
				r := core.Ref{
					Block:  uint64(rng.Intn(blocks)),
					Inode:  uint64(w + 1),
					Offset: uint64(i),
					Length: 1,
				}
				live = append(live, r)
				streams[w] = append(streams[w], hammerOp{r: r, cp: cp})
			}
		}
	}
	return streams
}

// TestConcurrentCheckpointHammerMatchesOracle is the -race hammer for the
// frozen-store path: AddRef/RemoveRef/Query/RelocateBlock run concurrently
// with tight back-to-back checkpoints (no artificial pacing, so flushes
// overlap ingest constantly) and periodically injected flush failures that
// must leave every frozen record recoverable. Live references are verified
// against the naive oracle (Section 4.1), relocations against their known
// final placement.
func TestConcurrentCheckpointHammerMatchesOracle(t *testing.T) {
	const (
		workers     = 6
		opsEach     = 1200
		blocks      = 384
		maxCP       = uint64(12)
		relocBase   = uint64(1 << 20)
		relocSpan   = uint64(1 << 10)
		relocatable = uint64(48)
	)
	env := newFreezeEnv(t, core.Options{WriteShards: 0})
	eng := env.eng

	// A private, pre-checkpointed range the relocation goroutine owns.
	for i := uint64(0); i < relocatable; i++ {
		eng.AddRef(core.Ref{Block: relocBase + i, Inode: 4242, Offset: i, Length: 1}, 1)
	}
	fCheckpoint(t, eng, 1)

	streams := genHammerStreams(workers, opsEach, blocks, maxCP)
	stop := make(chan struct{})
	errc := make(chan error, 8)

	var cpMu sync.Mutex
	lastCP := maxCP + 1
	cpDone := make(chan struct{})
	go func() { // checkpoints, back to back, with injected failures
		defer close(cpDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cpMu.Lock()
			next := lastCP + 1
			if i%7 == 6 {
				// Inject a failure somewhere inside the flush; the
				// checkpoint must fail cleanly and the immediate retry
				// must see every frozen record again.
				env.fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: env.fs.Stats().PageWrites + 2})
				err := eng.Checkpoint(next)
				env.fs.SetFailurePlan(storage.FailurePlan{})
				if err == nil {
					// The flush can legitimately win the race when the
					// write stores were empty (no page writes needed).
					lastCP = next
					cpMu.Unlock()
					continue
				}
			}
			if err := eng.Checkpoint(next); err != nil {
				errc <- err
				cpMu.Unlock()
				return
			}
			lastCP = next
			cpMu.Unlock()
		}
	}()

	queryDone := make(chan struct{})
	go func() { // query hammer across ingest and relocation ranges
		defer close(queryDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Query(uint64(i % blocks)); err != nil {
				errc <- err
				return
			}
			if _, err := eng.Query(relocBase + uint64(i)%relocatable); err != nil {
				errc <- err
				return
			}
		}
	}()

	relocDone := make(chan struct{})
	go func() { // one deterministic pass over the private range
		defer close(relocDone)
		for i := uint64(0); i < relocatable; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.RelocateBlock(relocBase+i, relocBase+relocSpan+i); err != nil {
				errc <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []hammerOp) {
			defer wg.Done()
			for _, o := range stream {
				if o.remove {
					eng.RemoveRef(o.r, o.cp)
				} else {
					eng.AddRef(o.r, o.cp)
				}
			}
		}(streams[w])
	}
	wg.Wait()
	<-relocDone
	close(stop)
	<-cpDone
	<-queryDone
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Drain and verify against the naive oracle.
	fCheckpoint(t, eng, lastCP+1)
	if got := eng.WSLen(); got != 0 {
		t.Fatalf("WSLen = %d after final checkpoint", got)
	}
	oracle, err := naive.New(storage.NewMemFS(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, stream := range streams {
		for _, o := range stream {
			if o.remove {
				oracle.RemoveRef(o.r, o.cp)
			} else {
				oracle.AddRef(o.r, o.cp)
			}
		}
	}
	for b := uint64(0); b < blocks; b++ {
		recs, err := oracle.QueryBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		want := map[core.Ref]bool{}
		for _, r := range recs {
			if r.To == core.Infinity {
				want[r.Ref] = true
			}
		}
		got := map[core.Ref]bool{}
		for _, o := range fQuery(t, eng, b) {
			if o.Live {
				got[core.Ref{Block: b, Inode: o.Inode, Offset: o.Offset, Line: o.Line, Length: o.Length}] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d live owners, oracle says %d\n got: %v\nwant: %v", b, len(got), len(want), got, want)
		}
		for r := range want {
			if !got[r] {
				t.Fatalf("block %d: oracle reference %+v missing", b, r)
			}
		}
	}
	// Every relocation moved its block exactly once.
	for i := uint64(0); i < relocatable; i++ {
		if owners := fQuery(t, eng, relocBase+i); len(owners) != 0 {
			t.Fatalf("relocated-away block %d still answers: %+v", relocBase+i, owners)
		}
		owners := fQuery(t, eng, relocBase+relocSpan+i)
		if len(owners) != 1 || !owners[0].Live || owners[0].Offset != i {
			t.Fatalf("relocated block %d wrong: %+v", relocBase+relocSpan+i, owners)
		}
	}
}

// removeBlockVFS fails Remove for WAL segments while armed, simulating a
// crash that beats the post-commit log retirement (the segments survive
// with records the committed checkpoint already covers).
type removeBlockVFS struct {
	storage.VFS
	block atomic.Bool
}

func (v *removeBlockVFS) Remove(name string) error {
	if v.block.Load() && strings.HasPrefix(name, "wal-") {
		return errors.New("injected remove failure")
	}
	return v.VFS.Remove(name)
}

// TestRetriedCheckpointDoesNotDoubleApplyWAL covers the retry corner of
// the cut protocol: an update logged while Checkpoint(n) was flushing is
// tagged n+1 but — if that flush fails and the caller retries
// Checkpoint(n) — gets frozen and committed AT CP n by the retry. If the
// crash then beats the log retirement, replay must not re-apply it on
// top of the runs that already hold it (the CP-tag filter alone would:
// n+1 > n). Recovery drops everything before the last cut whose CP the
// manifest covers.
func TestRetriedCheckpointDoesNotDoubleApplyWAL(t *testing.T) {
	fs := storage.NewMemFS()
	rb := &removeBlockVFS{VFS: fs}
	g := newGatedVFS(rb)
	cat := core.NewMemCatalog()
	open := func() *core.Engine {
		eng, err := core.Open(core.Options{VFS: g, Catalog: cat, Durability: wal.Sync, WriteShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := open()
	eng.AddRef(fref(1, 2, 0, 0), 1)

	// Checkpoint(1) freezes, then fails mid-flush; b lands during the
	// flush, logged past the cut, tagged 2.
	entered, release := g.arm()
	done := make(chan error, 1)
	go func() { done <- eng.Checkpoint(1) }()
	<-entered
	bRef := fref(50, 7, 0, 0)
	eng.AddRef(bRef, 2)
	fs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: fs.Stats().PageWrites + 1})
	close(release)
	if err := <-done; err == nil {
		t.Fatal("checkpoint survived the injected flush failure")
	}
	fs.SetFailurePlan(storage.FailurePlan{})

	// The retry freezes b too (it was merged back... it was active all
	// along) and commits it at CP 1. The armed Remove failure keeps the
	// segment holding b's record on disk, as a crash beating the
	// retirement would.
	rb.block.Store(true)
	fCheckpoint(t, eng, 1)
	rb.block.Store(false)

	fs.Crash()
	eng2 := open()
	// b is durable in the runs; its surviving WAL record must NOT have
	// replayed into the write stores again.
	eng2.RemoveRef(bRef, 2)
	fCheckpoint(t, eng2, 2)
	if owners := fQuery(t, eng2, 50); len(owners) != 0 {
		t.Fatalf("phantom owner after remove — the WAL record double-applied: %+v", owners)
	}
	if owners := fQuery(t, eng2, 1); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("pre-freeze record lost: %+v", owners)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionDeferredWhileDVDirty: compaction must not physically
// purge records hidden by UNPERSISTED deletion-vector entries — their
// re-keyed replacements are still volatile in the write stores, so a
// crash after the purge would lose the references beyond what WAL replay
// can reconstruct. The partition compacts normally once a checkpoint has
// persisted vector and replacements together.
func TestCompactionDeferredWhileDVDirty(t *testing.T) {
	env := newFreezeEnv(t, core.Options{})
	eng := env.eng
	for i := uint64(0); i < 8; i++ {
		eng.AddRef(fref(100+i, 2, i, 0), 1)
	}
	fCheckpoint(t, eng, 1)
	eng.AddRef(fref(200, 3, 0, 0), 2)
	fCheckpoint(t, eng, 2) // two runs now exist to merge

	if err := eng.RelocateBlock(100, 900); err != nil {
		t.Fatal(err)
	}
	if !eng.DB().Table(core.TableFrom).DVDirty() {
		t.Fatal("relocation did not dirty the deletion vector")
	}
	runsBefore := eng.RunCount()
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := eng.RunCount(); got != runsBefore {
		t.Fatalf("compaction ran on a dirty deletion vector (%d -> %d runs)", runsBefore, got)
	}
	if st := eng.Stats(); st.Compactions != 0 {
		t.Fatalf("Compactions = %d, want 0 (deferred)", st.Compactions)
	}

	// After the checkpoint persists the vector and the re-keyed records,
	// compaction proceeds and the relocation holds.
	fCheckpoint(t, eng, 3)
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Compactions == 0 {
		t.Fatal("compaction still deferred after the checkpoint")
	}
	if owners := fQuery(t, eng, 100); len(owners) != 0 {
		t.Fatalf("relocated-away block answers after compaction: %+v", owners)
	}
	if owners := fQuery(t, eng, 900); len(owners) != 1 || !owners[0].Live {
		t.Fatalf("relocation target wrong after compaction: %+v", owners)
	}
}

// TestRelocateRunRecordsDuringFlushCrashWindows relocates a block whose
// records live in committed runs while an unrelated checkpoint flush is
// in flight. The deletion-vector entries this adds arise AFTER the
// freeze, so the in-flight install must NOT persist them (their re-keyed
// partners flush only with the next checkpoint): a crash right after the
// in-flight checkpoint loses the relocation atomically (old state), and
// a crash after the next checkpoint keeps it atomically (new state) —
// never the halfway state where the old records are hidden durably while
// the new ones were never flushed.
func TestRelocateRunRecordsDuringFlushCrashWindows(t *testing.T) {
	for _, crashEarly := range []bool{true, false} {
		env, g := newGatedEnv(t, core.Options{WriteShards: 2})
		eng := env.eng
		eng.AddRef(fref(30, 3, 0, 0), 1)
		fCheckpoint(t, eng, 1) // block 30's record is in a run
		eng.AddRef(fref(40, 4, 0, 0), 2)

		entered, release := g.arm()
		done := make(chan error, 1)
		go func() { done <- eng.Checkpoint(2) }()
		<-entered
		if err := eng.RelocateBlock(30, 700); err != nil {
			t.Fatal(err)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if !crashEarly {
			fCheckpoint(t, eng, 3) // persists the vector + re-keyed records
		}
		env.fs.Crash()
		eng2, err := core.Open(core.Options{VFS: env.fs, Catalog: env.cat, WriteShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		old := fQuery(t, eng2, 30)
		moved := fQuery(t, eng2, 700)
		if crashEarly {
			// The relocation was not yet durable: it must be lost whole.
			if len(old) != 1 || len(moved) != 0 {
				t.Fatalf("crash before the covering checkpoint left a half-relocation: old=%+v new=%+v", old, moved)
			}
		} else {
			if len(old) != 0 || len(moved) != 1 {
				t.Fatalf("crash after the covering checkpoint lost the relocation: old=%+v new=%+v", old, moved)
			}
		}
	}
}
