package core

import (
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// testEnv bundles an engine with its catalog and memfs for tests.
type testEnv struct {
	fs  *storage.MemFS
	cat *MemCatalog
	eng *Engine
}

func newTestEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	opts.VFS = fs
	opts.Catalog = cat
	eng, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{fs: fs, cat: cat, eng: eng}
}

func ref(block, inode, offset, line uint64) Ref {
	return Ref{Block: block, Inode: inode, Offset: offset, Line: line, Length: 1}
}

func mustQuery(t *testing.T, e *Engine, block uint64) []Owner {
	t.Helper()
	owners, err := e.Query(block)
	if err != nil {
		t.Fatal(err)
	}
	return owners
}

func mustCheckpoint(t *testing.T, e *Engine, cp uint64) {
	t.Helper()
	if err := e.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
}

func mustCompact(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveReferenceQuery(t *testing.T) {
	env := newTestEnv(t, Options{})
	env.eng.AddRef(ref(100, 2, 0, 0), 4)
	env.eng.AddRef(ref(101, 2, 1, 0), 4)
	mustCheckpoint(t, env.eng, 4)

	owners := mustQuery(t, env.eng, 100)
	if len(owners) != 1 {
		t.Fatalf("owners = %+v", owners)
	}
	o := owners[0]
	if o.Inode != 2 || o.Offset != 0 || o.Line != 0 || !o.Live || o.From != 4 || o.To != Infinity {
		t.Fatalf("owner = %+v", o)
	}
	if len(mustQuery(t, env.eng, 999)) != 0 {
		t.Fatal("phantom owner")
	}
}

func TestQueryFindsWSRecordsBeforeCheckpoint(t *testing.T) {
	env := newTestEnv(t, Options{})
	env.eng.AddRef(ref(100, 2, 0, 0), 4)
	// No checkpoint yet: the write store must serve the query.
	owners := mustQuery(t, env.eng, 100)
	if len(owners) != 1 || !owners[0].Live {
		t.Fatalf("WS query: %+v", owners)
	}
}

func TestPaperInode2Example(t *testing.T) {
	// Section 4.1: inode 2 created with two blocks at time 4, truncated to
	// one block at time 7.
	env := newTestEnv(t, Options{})
	env.eng.AddRef(ref(100, 2, 0, 0), 4)
	env.eng.AddRef(ref(101, 2, 1, 0), 4)
	mustCheckpoint(t, env.eng, 4)
	if err := env.cat.CreateSnapshot(0, 4); err != nil {
		t.Fatal(err)
	}
	env.eng.RemoveRef(ref(101, 2, 1, 0), 7)
	mustCheckpoint(t, env.eng, 7)

	// Block 100: live, interval [4, inf).
	o100 := mustQuery(t, env.eng, 100)
	if len(o100) != 1 || !o100[0].Live || o100[0].From != 4 {
		t.Fatalf("block 100: %+v", o100)
	}
	if len(o100[0].Versions) != 1 || o100[0].Versions[0] != 4 {
		t.Fatalf("block 100 versions: %+v", o100[0].Versions)
	}
	// Block 101: [4,7), only snapshot 4 references it.
	o101 := mustQuery(t, env.eng, 101)
	if len(o101) != 1 || o101[0].Live || o101[0].From != 4 || o101[0].To != 7 {
		t.Fatalf("block 101: %+v", o101)
	}
	if len(o101[0].Versions) != 1 || o101[0].Versions[0] != 4 {
		t.Fatalf("block 101 versions: %+v", o101[0].Versions)
	}
	// Delete the snapshot: block 101 has no owners left.
	if err := env.cat.DeleteSnapshot(0, 4); err != nil {
		t.Fatal(err)
	}
	if got := mustQuery(t, env.eng, 101); len(got) != 0 {
		t.Fatalf("block 101 after snapshot delete: %+v", got)
	}
}

func TestPaperBlock103Example(t *testing.T) {
	// Section 4.2.1: block 103, inode 4: [10,12), [16,20); inode 5: [30,∞).
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(103, 4, 0, 0), 10)
	mustCheckpoint(t, e, 10)
	if err := env.cat.CreateSnapshot(0, 10); err != nil {
		t.Fatal(err)
	}
	e.RemoveRef(ref(103, 4, 0, 0), 12)
	mustCheckpoint(t, e, 12)
	e.AddRef(ref(103, 4, 0, 0), 16)
	mustCheckpoint(t, e, 16)
	if err := env.cat.CreateSnapshot(0, 16); err != nil {
		t.Fatal(err)
	}
	e.RemoveRef(ref(103, 4, 0, 0), 20)
	mustCheckpoint(t, e, 20)
	e.AddRef(ref(103, 5, 2, 0), 30)
	mustCheckpoint(t, e, 30)

	owners := mustQuery(t, e, 103)
	if len(owners) != 3 {
		t.Fatalf("owners = %+v", owners)
	}
	// Sorted by line, inode, offset, from.
	if owners[0].Inode != 4 || owners[0].From != 10 || owners[0].To != 12 {
		t.Fatalf("owner[0] = %+v", owners[0])
	}
	if owners[1].Inode != 4 || owners[1].From != 16 || owners[1].To != 20 {
		t.Fatalf("owner[1] = %+v", owners[1])
	}
	if owners[2].Inode != 5 || owners[2].From != 30 || owners[2].To != Infinity || !owners[2].Live {
		t.Fatalf("owner[2] = %+v", owners[2])
	}
	// The same answers after compaction.
	mustCompact(t, e)
	owners2 := mustQuery(t, e, 103)
	if len(owners2) != 3 {
		t.Fatalf("owners after compaction = %+v", owners2)
	}
	for i := range owners {
		if owners[i].From != owners2[i].From || owners[i].To != owners2[i].To ||
			owners[i].Inode != owners2[i].Inode {
			t.Fatalf("compaction changed owner %d: %+v vs %+v", i, owners[i], owners2[i])
		}
	}
}

func TestProactivePruningSameCP(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	// Added and removed within one CP: nothing may reach disk.
	e.AddRef(ref(50, 9, 0, 0), 3)
	e.RemoveRef(ref(50, 9, 0, 0), 3)
	if e.WSLen() != 0 {
		t.Fatalf("WSLen = %d after cancelling pair", e.WSLen())
	}
	mustCheckpoint(t, e, 3)
	if got := mustQuery(t, e, 50); len(got) != 0 {
		t.Fatalf("cancelled ref visible: %+v", got)
	}
	st := e.Stats()
	if st.PrunedRemoves != 1 {
		t.Fatalf("PrunedRemoves = %d", st.PrunedRemoves)
	}
	if st.RecordsFlushed != 0 {
		t.Fatalf("RecordsFlushed = %d, want 0", st.RecordsFlushed)
	}
}

func TestProactivePruningReallocation(t *testing.T) {
	// A reference live since CP 3, removed and re-added in CP 4: one
	// continuous interval starting at 3 (Section 5.1).
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(60, 9, 0, 0), 3)
	mustCheckpoint(t, e, 3)
	if err := env.cat.CreateSnapshot(0, 3); err != nil {
		t.Fatal(err)
	}
	e.RemoveRef(ref(60, 9, 0, 0), 4)
	e.AddRef(ref(60, 9, 0, 0), 4)
	if st := e.Stats(); st.PrunedAdds != 1 {
		t.Fatalf("PrunedAdds = %d", st.PrunedAdds)
	}
	mustCheckpoint(t, e, 4)
	owners := mustQuery(t, e, 60)
	if len(owners) != 1 || owners[0].From != 3 || owners[0].To != Infinity || !owners[0].Live {
		t.Fatalf("owners = %+v", owners)
	}
}

func TestPruningDisabledProducesSameQueryResults(t *testing.T) {
	run := func(disable bool) []Owner {
		env := newTestEnv(t, Options{DisablePruning: disable})
		e := env.eng
		e.AddRef(ref(60, 9, 0, 0), 3)
		mustCheckpoint(t, e, 3)
		if err := env.cat.CreateSnapshot(0, 3); err != nil {
			t.Fatal(err)
		}
		e.RemoveRef(ref(60, 9, 0, 0), 4)
		e.AddRef(ref(60, 9, 0, 0), 4)
		e.AddRef(ref(61, 9, 1, 0), 4)
		e.RemoveRef(ref(61, 9, 1, 0), 4)
		mustCheckpoint(t, e, 4)
		return mustQuery(t, e, 60)
	}
	// With pruning the interval is a single [3,inf); without it the
	// interval may be split as [3,4) + [4,inf) — but the union of live
	// coverage and version masks must agree.
	coverage := func(owners []Owner) (versions map[uint64]bool, live bool) {
		versions = map[uint64]bool{}
		for _, o := range owners {
			for _, v := range o.Versions {
				versions[v] = true
			}
			if o.Live {
				live = true
			}
		}
		return versions, live
	}
	a, b := run(false), run(true)
	av, alive := coverage(a)
	bv, blive := coverage(b)
	if alive != blive {
		t.Fatalf("liveness disagrees: pruned=%v unpruned=%v", alive, blive)
	}
	if len(av) != len(bv) {
		t.Fatalf("version masks disagree: %v vs %v", av, bv)
	}
	for v := range av {
		if !bv[v] {
			t.Fatalf("version %d missing without pruning", v)
		}
	}
	if len(a) != 1 {
		t.Fatalf("pruned result not coalesced: %+v", a)
	}
}

func TestDeduplicationSharedBlock(t *testing.T) {
	// Many inodes referencing one block — the paper's motivating query
	// (Section 4.1: the block of zeros).
	env := newTestEnv(t, Options{})
	e := env.eng
	for ino := uint64(1); ino <= 10; ino++ {
		e.AddRef(ref(777, ino, ino*2, 0), 5)
	}
	mustCheckpoint(t, e, 5)
	owners := mustQuery(t, e, 777)
	if len(owners) != 10 {
		t.Fatalf("got %d owners, want 10", len(owners))
	}
	for i, o := range owners {
		if o.Inode != uint64(i+1) || !o.Live {
			t.Fatalf("owner[%d] = %+v", i, o)
		}
	}
}

func TestCloneStructuralInheritance(t *testing.T) {
	// Section 4.2.2: block 103 allocated at 30 on line 0, snapshot taken,
	// cloned to line 1, then COWed to block 107 at CP 43 in the clone.
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(103, 5, 2, 0), 30)
	mustCheckpoint(t, e, 30)
	if err := env.cat.CreateSnapshot(0, 40); err != nil {
		t.Fatal(err)
	}
	if err := env.cat.CreateClone(1, 0, 40); err != nil {
		t.Fatal(err)
	}

	// Before the COW, block 103 must show an inherited owner on line 1.
	owners := mustQuery(t, e, 103)
	if len(owners) != 2 {
		t.Fatalf("pre-COW owners = %+v", owners)
	}
	if owners[0].Line != 0 || owners[1].Line != 1 || !owners[1].Inherited || !owners[1].Live {
		t.Fatalf("pre-COW owners = %+v", owners)
	}

	// COW in the clone: To(103, line 1, 43), From(107, line 1, 43).
	e.RemoveRef(ref(103, 5, 2, 1), 43)
	e.AddRef(ref(107, 5, 2, 1), 43)
	mustCheckpoint(t, e, 43)

	owners = mustQuery(t, e, 103)
	// Line 0 still owns it (live + snapshot 40); line 1's override [0,43)
	// covers no retained version of line 1, so it is masked out.
	if len(owners) != 1 || owners[0].Line != 0 {
		t.Fatalf("post-COW owners of 103 = %+v", owners)
	}
	o107 := mustQuery(t, e, 107)
	if len(o107) != 1 || o107[0].Line != 1 || o107[0].From != 43 || !o107[0].Live {
		t.Fatalf("owners of 107 = %+v", o107)
	}

	// With a snapshot of the clone taken before the COW, the override
	// interval [0,43) gains a visible version.
	env2 := newTestEnv(t, Options{})
	e2 := env2.eng
	e2.AddRef(ref(103, 5, 2, 0), 30)
	mustCheckpoint(t, e2, 30)
	if err := env2.cat.CreateSnapshot(0, 40); err != nil {
		t.Fatal(err)
	}
	if err := env2.cat.CreateClone(1, 0, 40); err != nil {
		t.Fatal(err)
	}
	if err := env2.cat.CreateSnapshot(1, 41); err != nil {
		t.Fatal(err)
	}
	e2.RemoveRef(ref(103, 5, 2, 1), 43)
	e2.AddRef(ref(107, 5, 2, 1), 43)
	mustCheckpoint(t, e2, 43)
	owners = mustQuery(t, e2, 103)
	if len(owners) != 2 {
		t.Fatalf("owners with clone snapshot = %+v", owners)
	}
	if owners[1].Line != 1 || owners[1].From != 0 || owners[1].To != 43 ||
		len(owners[1].Versions) != 1 || owners[1].Versions[0] != 41 {
		t.Fatalf("clone override owner = %+v", owners[1])
	}
}

func TestClonesOfClones(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(200, 3, 0, 0), 10)
	mustCheckpoint(t, e, 10)
	if err := env.cat.CreateSnapshot(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := env.cat.CreateClone(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := env.cat.CreateSnapshot(1, 20); err != nil {
		t.Fatal(err)
	}
	if err := env.cat.CreateClone(2, 1, 20); err != nil {
		t.Fatal(err)
	}
	owners := mustQuery(t, e, 200)
	if len(owners) != 3 {
		t.Fatalf("owners = %+v", owners)
	}
	lines := []uint64{owners[0].Line, owners[1].Line, owners[2].Line}
	if lines[0] != 0 || lines[1] != 1 || lines[2] != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !owners[1].Inherited || !owners[2].Inherited {
		t.Fatal("clone owners not marked inherited")
	}
}

func TestCompactionPurgesDeletedSnapshots(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	// Block 10 lives only in snapshot 5 which we then delete.
	e.AddRef(ref(10, 1, 0, 0), 5)
	mustCheckpoint(t, e, 5)
	if err := env.cat.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	e.RemoveRef(ref(10, 1, 0, 0), 6)
	mustCheckpoint(t, e, 6)
	// Block 11 stays live throughout.
	e.AddRef(ref(11, 1, 1, 0), 7)
	mustCheckpoint(t, e, 7)

	if err := env.cat.DeleteSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	mustCompact(t, e)

	if got := mustQuery(t, e, 10); len(got) != 0 {
		t.Fatalf("purged block still owned: %+v", got)
	}
	if got := mustQuery(t, e, 11); len(got) != 1 || !got[0].Live {
		t.Fatalf("live block lost: %+v", got)
	}
	if e.Stats().RecordsPurged == 0 {
		t.Fatal("no records purged")
	}
	// After compaction the To table is empty and From/Combined have at
	// most one run each.
	if e.DB().Table(TableTo).TotalRecords() != 0 {
		t.Fatal("To table not empty after compaction")
	}
	if n := len(e.DB().Table(TableFrom).Runs(0)); n > 1 {
		t.Fatalf("%d From runs after compaction", n)
	}
}

func TestCompactionPreservesZombieInheritance(t *testing.T) {
	// A snapshot is cloned and then deleted (zombie). Compaction must keep
	// the parent records so the clone still inherits.
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(300, 8, 0, 0), 10)
	mustCheckpoint(t, e, 10)
	if err := env.cat.CreateSnapshot(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := env.cat.CreateClone(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	// The parent's live FS drops the block, and the snapshot is deleted:
	// only the clone still needs the record.
	e.RemoveRef(ref(300, 8, 0, 0), 12)
	mustCheckpoint(t, e, 12)
	if err := env.cat.DeleteSnapshot(0, 10); err != nil {
		t.Fatal(err)
	}
	mustCompact(t, e)

	owners := mustQuery(t, e, 300)
	if len(owners) != 1 || owners[0].Line != 1 || !owners[0].Inherited || !owners[0].Live {
		t.Fatalf("zombie-inherited owner = %+v", owners)
	}

	// Kill the clone; reap; compact: the record can finally go.
	if err := env.cat.DeleteLine(1); err != nil {
		t.Fatal(err)
	}
	env.cat.ReapZombies()
	mustCompact(t, e)
	if got := mustQuery(t, e, 300); len(got) != 0 {
		t.Fatalf("record survived zombie reaping: %+v", got)
	}
}

func TestCompactionShrinksDatabase(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	// Create churn: refs that live for 2 CPs then die, never snapshotted.
	cp := uint64(1)
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < 100; i++ {
			e.AddRef(ref(1000+i, i, 0, 0), cp)
		}
		mustCheckpoint(t, e, cp)
		cp++
		for i := uint64(0); i < 100; i++ {
			e.RemoveRef(ref(1000+i, i, 0, 0), cp)
		}
		mustCheckpoint(t, e, cp)
		cp++
	}
	before := e.SizeBytes()
	runsBefore := e.RunCount()
	mustCompact(t, e)
	after := e.SizeBytes()
	if after >= before {
		t.Fatalf("compaction grew DB: %d -> %d", before, after)
	}
	if e.RunCount() >= runsBefore {
		t.Fatalf("compaction did not reduce runs: %d -> %d", runsBefore, e.RunCount())
	}
	// Everything was dead; the whole database should be (nearly) empty.
	if got := e.DB().Table(TableCombined).TotalRecords(); got != 0 {
		t.Fatalf("%d combined records survived, want 0", got)
	}
}

func TestRelocateBlock(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(40, 6, 3, 0), 5)
	mustCheckpoint(t, e, 5)
	if err := env.cat.CreateSnapshot(0, 5); err != nil {
		t.Fatal(err)
	}
	e.RemoveRef(ref(40, 6, 3, 0), 8)
	mustCheckpoint(t, e, 8)
	// Also a live ref on the same block from another inode.
	e.AddRef(ref(40, 7, 0, 0), 9)
	mustCheckpoint(t, e, 9)

	if err := e.RelocateBlock(40, 4040); err != nil {
		t.Fatal(err)
	}

	if got := mustQuery(t, e, 40); len(got) != 0 {
		t.Fatalf("old block still owned: %+v", got)
	}
	owners := mustQuery(t, e, 4040)
	if len(owners) != 2 {
		t.Fatalf("new block owners = %+v", owners)
	}
	if owners[0].Inode != 6 || owners[0].From != 5 || owners[0].To != 8 {
		t.Fatalf("transplanted history = %+v", owners[0])
	}
	if owners[1].Inode != 7 || !owners[1].Live {
		t.Fatalf("transplanted live ref = %+v", owners[1])
	}

	// Relocation state survives checkpoint + reopen + compaction.
	mustCheckpoint(t, e, 10)
	mustCompact(t, e)
	owners = mustQuery(t, e, 4040)
	if len(owners) != 2 {
		t.Fatalf("owners after compaction = %+v", owners)
	}
	if got := mustQuery(t, e, 40); len(got) != 0 {
		t.Fatalf("old block resurrected: %+v", got)
	}
}

func TestRelocateBlockInWS(t *testing.T) {
	// Relocating a block whose records are still only in the write store.
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(41, 6, 0, 0), 5)
	if err := e.RelocateBlock(41, 4141); err != nil {
		t.Fatal(err)
	}
	mustCheckpoint(t, e, 5)
	if got := mustQuery(t, e, 41); len(got) != 0 {
		t.Fatalf("old WS block still owned: %+v", got)
	}
	if got := mustQuery(t, e, 4141); len(got) != 1 {
		t.Fatalf("new block owners = %+v", got)
	}
}

func TestCrashRecoveryReplaysJournal(t *testing.T) {
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddRef(ref(1, 1, 0, 0), 1)
	mustCheckpoint(t, eng, 1)
	// Ops of CP 2 buffered in the WS, then crash.
	eng.AddRef(ref(2, 1, 1, 0), 2)
	eng.RemoveRef(ref(1, 1, 0, 0), 2)
	fs.Crash()

	// Reopen: state is as of CP 1.
	eng2, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if eng2.CP() != 1 {
		t.Fatalf("recovered CP = %d", eng2.CP())
	}
	if got := mustQuery(t, eng2, 1); len(got) != 1 || !got[0].Live {
		t.Fatalf("block 1 after crash: %+v", got)
	}
	if got := mustQuery(t, eng2, 2); len(got) != 0 {
		t.Fatalf("block 2 after crash: %+v", got)
	}
	// The file system replays its journal: the same ops re-applied.
	eng2.AddRef(ref(2, 1, 1, 0), 2)
	eng2.RemoveRef(ref(1, 1, 0, 0), 2)
	mustCheckpoint(t, eng2, 2)
	if got := mustQuery(t, eng2, 2); len(got) != 1 {
		t.Fatalf("block 2 after replay: %+v", got)
	}
	if got := mustQuery(t, eng2, 1); len(got) != 0 {
		t.Fatalf("block 1 after replay: %+v", got)
	}
}

func TestPartitionedEngine(t *testing.T) {
	env := newTestEnv(t, Options{Partitions: 4, PartitionSpan: 100})
	e := env.eng
	blocks := []uint64{5, 150, 250, 950}
	for i, b := range blocks {
		e.AddRef(ref(b, uint64(i+1), 0, 0), 3)
	}
	mustCheckpoint(t, e, 3)
	for i, b := range blocks {
		got := mustQuery(t, e, b)
		if len(got) != 1 || got[0].Inode != uint64(i+1) {
			t.Fatalf("block %d: %+v", b, got)
		}
	}
	mustCompact(t, e)
	for i, b := range blocks {
		got := mustQuery(t, e, b)
		if len(got) != 1 || got[0].Inode != uint64(i+1) {
			t.Fatalf("block %d after compaction: %+v", b, got)
		}
	}
	// Each partition has at most one From run.
	for p := 0; p < 4; p++ {
		if n := len(e.DB().Table(TableFrom).Runs(p)); n > 1 {
			t.Fatalf("partition %d has %d From runs", p, n)
		}
	}
}

func TestSelectivePartitionCompaction(t *testing.T) {
	env := newTestEnv(t, Options{Partitions: 2, PartitionSpan: 100})
	e := env.eng
	for cp := uint64(1); cp <= 5; cp++ {
		e.AddRef(ref(10+cp, 1, cp, 0), cp)  // partition 0
		e.AddRef(ref(110+cp, 2, cp, 0), cp) // partition 1
		mustCheckpoint(t, e, cp)
	}
	if err := e.CompactPartition(0); err != nil {
		t.Fatal(err)
	}
	if n := len(e.DB().Table(TableFrom).Runs(0)); n != 1 {
		t.Fatalf("partition 0 has %d runs after compaction", n)
	}
	if n := len(e.DB().Table(TableFrom).Runs(1)); n != 5 {
		t.Fatalf("partition 1 has %d runs, want 5 (not compacted)", n)
	}
	for cp := uint64(1); cp <= 5; cp++ {
		if got := mustQuery(t, e, 110+cp); len(got) != 1 {
			t.Fatalf("uncompacted partition lost block %d", 110+cp)
		}
	}
}

func TestCheckpointIsDurableAcrossReopen(t *testing.T) {
	fs := storage.NewMemFS()
	cat := NewMemCatalog()
	eng, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddRef(ref(77, 3, 0, 0), 2)
	mustCheckpoint(t, eng, 2)

	eng2, err := Open(Options{VFS: fs, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustQuery(t, eng2, 77); len(got) != 1 {
		t.Fatalf("reopen lost data: %+v", got)
	}
}

func TestOpenValidatesOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without VFS succeeded")
	}
	if _, err := Open(Options{VFS: storage.NewMemFS()}); err == nil {
		t.Fatal("Open without Catalog succeeded")
	}
}

func TestStatsCounters(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	e.AddRef(ref(1, 1, 0, 0), 1)
	e.RemoveRef(ref(2, 1, 1, 0), 1)
	mustCheckpoint(t, e, 1)
	mustQuery(t, e, 1)
	st := e.Stats()
	if st.RefsAdded != 1 || st.RefsRemoved != 1 || st.Checkpoints != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RecordsFlushed != 2 {
		t.Fatalf("RecordsFlushed = %d", st.RecordsFlushed)
	}
}

func TestQueryRange(t *testing.T) {
	env := newTestEnv(t, Options{})
	e := env.eng
	for b := uint64(10); b < 20; b += 2 {
		e.AddRef(ref(b, b, 0, 0), 1)
	}
	mustCheckpoint(t, e, 1)
	var visited []uint64
	var owned int
	err := e.QueryRange(10, 10, func(b uint64, owners []Owner) bool {
		visited = append(visited, b)
		if len(owners) > 0 {
			owned++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 10 || owned != 5 {
		t.Fatalf("visited %d blocks, %d owned", len(visited), owned)
	}
}
