package btree

import (
	"encoding/binary"
	"fmt"
)

// Format identifies the leaf-page encoding of a run; the header page
// carries it in the version field, so readers open either format
// transparently.
type Format uint32

const (
	// FormatRaw stores fixed-stride records verbatim — the v1 format.
	FormatRaw Format = 1
	// FormatDelta is the v2 format: leaf records are encoded per column as
	// delta + zigzag + LEB128 varint, restarting at every page boundary so
	// each 4 KB page stays independently seekable and CRC-checked. Requires
	// the record size to be a multiple of 8: a record is treated as a row
	// of big-endian u64 columns, which preserves bytes.Compare order.
	// Internal index pages stay raw in both formats.
	FormatDelta Format = 2
)

func (f Format) String() string {
	switch f {
	case FormatRaw:
		return "raw"
	case FormatDelta:
		return "delta"
	default:
		return fmt.Sprintf("format(%d)", uint32(f))
	}
}

func (f Format) valid() bool { return f == FormatRaw || f == FormatDelta }

// Zigzag maps signed deltas onto unsigned integers so small negative
// deltas encode as small varints.
func Zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// VarintLen returns the LEB128-encoded length of v in bytes.
func VarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendDeltaRecord appends rec's per-column delta encoding relative to
// prev. prev holds the previous record's column values (all zero at a page
// restart).
func appendDeltaRecord(dst, rec []byte, prev []uint64) []byte {
	for c := range prev {
		v := binary.BigEndian.Uint64(rec[c*8:])
		dst = binary.AppendUvarint(dst, Zigzag(int64(v-prev[c])))
	}
	return dst
}

// decodeDeltaLeaf expands a delta-encoded leaf payload into fixed-stride
// records (count*recSize bytes). Any malformed input — a truncated varint
// stream or a count field that would decode the page's zero padding —
// yields an ErrCorrupt-wrapped error, never silently wrong records.
func decodeDeltaLeaf(payload []byte, count, recSize int) ([]byte, error) {
	// Every record encodes to at least one byte per column, so a count
	// beyond the payload length cannot be genuine.
	if count <= 0 || count > len(payload) {
		return nil, fmt.Errorf("%w: delta leaf record count %d", ErrCorrupt, count)
	}
	cols := recSize / 8
	out := make([]byte, count*recSize)
	prev := make([]uint64, cols)
	pos := 0
	for i := 0; i < count; i++ {
		zero := true
		for c := 0; c < cols; c++ {
			u, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: truncated delta record %d", ErrCorrupt, i)
			}
			pos += n
			if u != 0 {
				zero = false
			}
			prev[c] += uint64(unzigzag(u))
			binary.BigEndian.PutUint64(out[i*recSize+c*8:], prev[c])
		}
		if zero && i > 0 {
			// Records are strictly ascending, so no record after the first
			// of a page can be an exact repeat of its predecessor. An
			// inflated count field would otherwise decode the page's zero
			// padding into silent duplicates of the last record.
			return nil, fmt.Errorf("%w: repeated delta record %d", ErrCorrupt, i)
		}
	}
	return out, nil
}

// DeltaEstimator predicts the exact encoded leaf-payload bytes the
// FormatDelta writer would produce for a sorted record stream — including
// per-page restarts — without writing anything. Engine.EstimateCompression
// runs on it, so projected and actual sizes come from the same codec and
// cannot drift.
type DeltaEstimator struct {
	prev      []uint64
	colLens   []int
	pageBytes int
	records   uint64
	encoded   uint64
	perCol    []uint64
}

// NewDeltaEstimator returns an estimator for recordSize-byte records.
func NewDeltaEstimator(recordSize int) (*DeltaEstimator, error) {
	if recordSize <= 0 || recordSize > MaxRecordSize || recordSize%8 != 0 {
		return nil, fmt.Errorf("btree: delta format needs a record size that is a multiple of 8, got %d", recordSize)
	}
	cols := recordSize / 8
	return &DeltaEstimator{
		prev:    make([]uint64, cols),
		colLens: make([]int, cols),
		perCol:  make([]uint64, cols),
	}, nil
}

// Add folds one record into the estimate. Records must arrive in the order
// they would be appended to a Writer (ascending within each Restart
// segment).
func (e *DeltaEstimator) Add(rec []byte) {
	total := 0
	for c := range e.prev {
		v := binary.BigEndian.Uint64(rec[c*8:])
		n := VarintLen(Zigzag(int64(v - e.prev[c])))
		e.colLens[c] = n
		total += n
	}
	if e.pageBytes > 0 && e.pageBytes+total > pagePayload {
		// Page restart: the writer re-encodes against zero columns.
		e.pageBytes = 0
		total = 0
		for c := range e.prev {
			v := binary.BigEndian.Uint64(rec[c*8:])
			n := VarintLen(Zigzag(int64(v)))
			e.colLens[c] = n
			total += n
		}
	}
	for c := range e.prev {
		e.prev[c] = binary.BigEndian.Uint64(rec[c*8:])
		e.perCol[c] += uint64(e.colLens[c])
	}
	e.pageBytes += total
	e.encoded += uint64(total)
	e.records++
}

// Restart resets the delta state to a page boundary, as between runs or
// partitions whose record streams are encoded independently.
func (e *DeltaEstimator) Restart() {
	for c := range e.prev {
		e.prev[c] = 0
	}
	e.pageBytes = 0
}

// Records returns the number of records folded in.
func (e *DeltaEstimator) Records() uint64 { return e.records }

// EncodedBytes returns the total encoded leaf-payload size.
func (e *DeltaEstimator) EncodedBytes() uint64 { return e.encoded }

// PerColumnBytes returns the encoded size contributed by each u64 column.
// The returned slice is owned by the estimator.
func (e *DeltaEstimator) PerColumnBytes() []uint64 { return e.perCol }
