package btree

import (
	"container/list"
	"sync"

	"github.com/backlogfs/backlog/internal/storage"
)

// Cache is a shared LRU page cache keyed by (reader identity, page number).
// It stores verified page payloads past the CRC check — and, for
// delta-format runs, the DECODED fixed-stride records of a leaf page — so
// hot queries never re-verify or re-decode. Entries are charged by their
// byte size against a fixed budget: a decoded v2 leaf can be several times
// larger than its 4 KB on-disk page, so a cache holds correspondingly
// fewer of them.
//
// The paper's micro-benchmarks use a 32 MB cache in addition to the write
// stores and Bloom filters (Section 6.1); NewCacheBytes(32<<20) reproduces
// that configuration. Clear supports the query experiments, which drop all
// caches before each run (Section 6.4).
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // of *cacheEntry, front = most recent
	index  map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	reader uint64
	page   uint64
}

type cacheEntry struct {
	key   cacheKey
	data  []byte
	count int
}

// NewCache returns a cache budgeted at capacity raw 4 KB pages
// (capacity*storage.PageSize bytes). Capacity <= 0 yields a cache that
// stores nothing (but still counts misses).
func NewCache(capacity int) *Cache {
	return NewCacheBytes(int64(capacity) * storage.PageSize)
}

// NewCacheBytes returns a cache budgeted at the given total bytes.
func NewCacheBytes(bytes int64) *Cache {
	return &Cache{
		budget: bytes,
		lru:    list.New(),
		index:  make(map[cacheKey]*list.Element),
	}
}

func (c *Cache) get(reader, page uint64) ([]byte, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[cacheKey{reader, page}]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	e := el.Value.(*cacheEntry)
	return e.data, e.count, true
}

func (c *Cache) put(reader, page uint64, data []byte, count int) {
	if c.budget <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{reader, page}
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(e.data))
		e.data, e.count = data, count
	} else {
		el := c.lru.PushFront(&cacheEntry{key: key, data: data, count: count})
		c.index[key] = el
		c.used += int64(len(data))
	}
	// Evict from the cold end, but never the entry just touched: a single
	// oversized entry may transiently exceed the budget by itself.
	for c.used > c.budget && c.lru.Len() > 1 {
		last := c.lru.Back()
		e := last.Value.(*cacheEntry)
		c.lru.Remove(last)
		delete(c.index, e.key)
		c.used -= int64(len(e.data))
	}
}

// Clear drops all cached pages and resets hit/miss counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[cacheKey]*list.Element)
	c.used = 0
	c.hits, c.misses = 0, 0
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SizeBytes returns the bytes currently charged against the budget.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
