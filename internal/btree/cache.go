package btree

import (
	"container/list"
	"sync"

	"github.com/backlogfs/backlog/internal/storage"
)

// Cache is a shared LRU page cache keyed by (reader identity, page number).
// The paper's micro-benchmarks use a 32 MB cache in addition to the write
// stores and Bloom filters (Section 6.1); NewCache(32<<20/storage.PageSize)
// reproduces that configuration. Clear supports the query experiments,
// which drop all caches before each run (Section 6.4).
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // of *cacheEntry, front = most recent
	index    map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	reader uint64
	page   uint64
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

// NewCache returns a cache holding up to capacity pages. Capacity <= 0
// yields a cache that stores nothing (but still counts misses).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[cacheKey]*list.Element),
	}
}

// NewCacheBytes returns a cache sized to the given total bytes.
func NewCacheBytes(bytes int64) *Cache {
	return NewCache(int(bytes / storage.PageSize))
}

func (c *Cache) get(reader, page uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[cacheKey{reader, page}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).data, true
}

func (c *Cache) put(reader, page uint64, data []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{reader, page}
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.index[key] = el
	for c.lru.Len() > c.capacity {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.index, last.Value.(*cacheEntry).key)
	}
}

// Clear drops all cached pages and resets hit/miss counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[cacheKey]*list.Element)
	c.hits, c.misses = 0, 0
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
