// Package btree implements the on-disk read-store (RS) run format used by
// Backlog's LSM/Stepped-Merge store (paper Section 5.1).
//
// A run is an immutable, densely packed B-tree over fixed-size records,
// ordered by bytes.Compare on the full record encoding. Runs are built
// strictly bottom-up, exactly as the paper describes: records are packed
// into leaf pages in sorted order; while the leaf level is written, the
// first key of each leaf page is accumulated to form the I1 (internal
// level 1) pages, then I2, and so on until a level fits in a single page —
// the root. Building therefore requires no disk reads.
//
// File layout (all little-endian, 4 KB pages, each page ends with a CRC32):
//
//	page 0:            header (magic, geometry, min/max key, bloom location)
//	pages 1..L:        leaf pages
//	pages L+1..:       internal levels, bottom-up; root page last
//	trailing bytes:    serialized Bloom filter (outside the page grid)
//
// The header is written last so that a torn build never yields a readable
// but incomplete run.
//
// Two leaf encodings exist, identified by the header's version field (see
// Format): v1 stores fixed-stride records verbatim; v2 stores each leaf
// page as per-column delta + zigzag + LEB128 varints, restarting at every
// page boundary, with the page's variable record count in the page header.
// Readers open either format transparently; internal index pages are raw
// in both.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/backlogfs/backlog/internal/storage"
)

// MaxRecordSize bounds the fixed record size so two full keys fit in the
// header page.
const MaxRecordSize = 256

const (
	magic = "BKRUN1\x00\x00"

	pageCountLen = 2 // u16 record/entry count at page start
	pageCRCLen   = 4 // CRC32C at page end
	pagePayload  = storage.PageSize - pageCountLen - pageCRCLen

	headerFixedLen = 72 // bytes of fixed header fields before min/max keys
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a failed checksum or malformed structure.
var ErrCorrupt = errors.New("btree: corrupt run")

// header mirrors the on-disk header page.
type header struct {
	format      Format
	recordSize  int
	recordCount uint64
	leafStart   uint64
	leafPages   uint64
	levels      uint32
	rootPage    uint64
	bloomOff    uint64
	bloomLen    uint64
	minKey      []byte
	maxKey      []byte
}

// Writer builds a run. Records must be appended in strictly ascending
// order. The zero value is not usable; construct with NewWriter.
type Writer struct {
	f       storage.File
	recSize int
	format  Format

	leafBuf   []byte // current leaf page payload (encoded in w.format)
	leafCount int    // records in leafBuf
	perLeaf   int    // max records per raw leaf page (unused for delta)
	nextPage  uint64 // next page number to write (leaves start at 1)

	// Delta-format state: the previous record's column values (reset to
	// zero at each page boundary) and a scratch buffer for one encoded
	// record.
	prevCols []uint64
	encBuf   []byte

	i1      []indexEntry // separator keys for the leaf level
	prevKey []byte
	count   uint64
	minKey  []byte

	finished  bool
	sizeBytes int64
}

type indexEntry struct {
	key   []byte
	child uint64
}

// NewWriter returns a Writer that builds a raw (v1) run of recordSize-byte
// records into f.
func NewWriter(f storage.File, recordSize int) (*Writer, error) {
	return NewWriterFormat(f, recordSize, FormatRaw)
}

// NewWriterFormat returns a Writer that builds a run in the given leaf
// format. FormatDelta requires recordSize to be a multiple of 8.
func NewWriterFormat(f storage.File, recordSize int, format Format) (*Writer, error) {
	if recordSize <= 0 || recordSize > MaxRecordSize {
		return nil, fmt.Errorf("btree: invalid record size %d", recordSize)
	}
	w := &Writer{
		f:        f,
		recSize:  recordSize,
		format:   format,
		leafBuf:  make([]byte, 0, pagePayload),
		perLeaf:  pagePayload / recordSize,
		nextPage: 1,
	}
	switch format {
	case FormatRaw:
	case FormatDelta:
		if recordSize%8 != 0 {
			return nil, fmt.Errorf("btree: delta format needs a record size that is a multiple of 8, got %d", recordSize)
		}
		w.prevCols = make([]uint64, recordSize/8)
	default:
		return nil, fmt.Errorf("btree: unknown run format %d", format)
	}
	return w, nil
}

// Append adds a record. Records must be strictly ascending under
// bytes.Compare; duplicates are rejected.
func (w *Writer) Append(rec []byte) error {
	if w.finished {
		return errors.New("btree: Append after Finish")
	}
	if len(rec) != w.recSize {
		return fmt.Errorf("btree: record size %d, want %d", len(rec), w.recSize)
	}
	if w.prevKey != nil && bytes.Compare(rec, w.prevKey) <= 0 {
		return fmt.Errorf("btree: records out of order (%x after %x)", rec, w.prevKey)
	}
	if w.count == 0 {
		w.minKey = append([]byte(nil), rec...)
	}
	if w.format == FormatDelta {
		enc := appendDeltaRecord(w.encBuf[:0], rec, w.prevCols)
		if w.leafCount > 0 && len(w.leafBuf)+len(enc) > pagePayload {
			// Page full: flush and re-encode against the zeroed columns.
			if err := w.flushLeaf(); err != nil {
				return err
			}
			enc = appendDeltaRecord(w.encBuf[:0], rec, w.prevCols)
		}
		w.encBuf = enc
		if w.leafCount == 0 {
			// First record of a leaf page becomes its I1 separator key.
			w.i1 = append(w.i1, indexEntry{key: append([]byte(nil), rec...), child: w.nextPage})
		}
		w.leafBuf = append(w.leafBuf, enc...)
		for c := range w.prevCols {
			w.prevCols[c] = binary.BigEndian.Uint64(rec[c*8:])
		}
		w.leafCount++
		w.prevKey = append(w.prevKey[:0], rec...)
		w.count++
		return nil
	}
	if w.leafCount == 0 {
		// First record of a leaf page becomes its I1 separator key.
		w.i1 = append(w.i1, indexEntry{key: append([]byte(nil), rec...), child: w.nextPage})
	}
	w.leafBuf = append(w.leafBuf, rec...)
	w.leafCount++
	w.prevKey = append(w.prevKey[:0], rec...)
	w.count++
	if w.leafCount == w.perLeaf {
		return w.flushLeaf()
	}
	return nil
}

func (w *Writer) flushLeaf() error {
	if w.leafCount == 0 {
		return nil
	}
	if err := writePage(w.f, w.nextPage, uint16(w.leafCount), w.leafBuf); err != nil {
		return err
	}
	w.nextPage++
	w.leafBuf = w.leafBuf[:0]
	w.leafCount = 0
	// Delta encoding restarts at every page boundary so each page decodes
	// independently.
	for c := range w.prevCols {
		w.prevCols[c] = 0
	}
	return nil
}

// perIndexPage returns how many index entries fit in one internal page.
func (w *Writer) perIndexPage() int {
	return pagePayload / (w.recSize + 8)
}

// Finish flushes remaining data, writes the internal levels, the optional
// serialized Bloom filter, and the header. The file is synced. After Finish
// the Writer must not be used.
func (w *Writer) Finish(bloomBytes []byte) error {
	if w.finished {
		return errors.New("btree: double Finish")
	}
	w.finished = true
	if w.count == 0 {
		return errors.New("btree: empty run")
	}
	if err := w.flushLeaf(); err != nil {
		return err
	}
	maxKey := append([]byte(nil), w.prevKey...)
	leafPages := w.nextPage - 1

	// Build internal levels bottom-up; a level that fits in one page is
	// the root. A single-leaf run has no internal levels at all.
	perPage := w.perIndexPage()
	var levels uint32
	rootPage := uint64(1)
	if leafPages > 1 {
		entries := w.i1
		buf := make([]byte, 0, pagePayload)
		for {
			levels++
			needNext := len(entries) > perPage
			var nextEntries []indexEntry
			buf = buf[:0]
			n := 0
			for i, e := range entries {
				if n == 0 && needNext {
					nextEntries = append(nextEntries, indexEntry{key: e.key, child: w.nextPage})
				}
				buf = append(buf, e.key...)
				var child [8]byte
				binary.LittleEndian.PutUint64(child[:], e.child)
				buf = append(buf, child[:]...)
				n++
				if n == perPage || i == len(entries)-1 {
					if err := writePage(w.f, w.nextPage, uint16(n), buf); err != nil {
						return err
					}
					rootPage = w.nextPage
					w.nextPage++
					buf = buf[:0]
					n = 0
				}
			}
			if !needNext {
				break
			}
			entries = nextEntries
		}
	}

	bloomOff := w.nextPage * storage.PageSize
	if len(bloomBytes) > 0 {
		if _, err := w.f.WriteAt(bloomBytes, int64(bloomOff)); err != nil {
			return fmt.Errorf("btree: writing bloom: %w", err)
		}
	}

	h := header{
		format:      w.format,
		recordSize:  w.recSize,
		recordCount: w.count,
		leafStart:   1,
		leafPages:   leafPages,
		levels:      levels,
		rootPage:    rootPage,
		bloomOff:    bloomOff,
		bloomLen:    uint64(len(bloomBytes)),
		minKey:      w.minKey,
		maxKey:      maxKey,
	}
	if err := writeHeader(w.f, h); err != nil {
		return err
	}
	w.sizeBytes = int64(bloomOff) + int64(len(bloomBytes))
	return w.f.Sync()
}

// Count returns the number of records appended so far.
func (w *Writer) Count() uint64 { return w.count }

// SizeBytes returns the finished run's physical size (header, data and
// index pages, and Bloom filter). Valid only after Finish.
func (w *Writer) SizeBytes() int64 { return w.sizeBytes }

func writePage(f storage.File, pageNo uint64, count uint16, payload []byte) error {
	if len(payload) > pagePayload {
		return fmt.Errorf("btree: page payload %d exceeds %d", len(payload), pagePayload)
	}
	var page [storage.PageSize]byte
	binary.LittleEndian.PutUint16(page[:2], count)
	copy(page[pageCountLen:], payload)
	crc := crc32.Checksum(page[:storage.PageSize-pageCRCLen], castagnoli)
	binary.LittleEndian.PutUint32(page[storage.PageSize-pageCRCLen:], crc)
	_, err := f.WriteAt(page[:], int64(pageNo)*storage.PageSize)
	if err != nil {
		return fmt.Errorf("btree: writing page %d: %w", pageNo, err)
	}
	return nil
}

func writeHeader(f storage.File, h header) error {
	var page [storage.PageSize]byte
	copy(page[:8], magic)
	le := binary.LittleEndian
	le.PutUint32(page[8:], uint32(h.format))
	le.PutUint32(page[12:], uint32(h.recordSize))
	le.PutUint64(page[16:], h.recordCount)
	le.PutUint64(page[24:], h.leafStart)
	le.PutUint64(page[32:], h.leafPages)
	le.PutUint32(page[40:], h.levels)
	le.PutUint64(page[48:], h.rootPage)
	le.PutUint64(page[56:], h.bloomOff)
	le.PutUint64(page[64:], h.bloomLen)
	copy(page[headerFixedLen:], h.minKey)
	copy(page[headerFixedLen+h.recordSize:], h.maxKey)
	crc := crc32.Checksum(page[:storage.PageSize-pageCRCLen], castagnoli)
	le.PutUint32(page[storage.PageSize-pageCRCLen:], crc)
	if _, err := f.WriteAt(page[:], 0); err != nil {
		return fmt.Errorf("btree: writing header: %w", err)
	}
	return nil
}

func readHeader(f storage.File) (header, error) {
	var page [storage.PageSize]byte
	if _, err := f.ReadAt(page[:], 0); err != nil {
		return header{}, fmt.Errorf("btree: reading header: %w", err)
	}
	le := binary.LittleEndian
	crc := crc32.Checksum(page[:storage.PageSize-pageCRCLen], castagnoli)
	if le.Uint32(page[storage.PageSize-pageCRCLen:]) != crc {
		return header{}, fmt.Errorf("%w: header checksum", ErrCorrupt)
	}
	if string(page[:8]) != magic {
		return header{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	format := Format(le.Uint32(page[8:]))
	if !format.valid() {
		return header{}, fmt.Errorf("btree: unsupported version %d", uint32(format))
	}
	h := header{
		format:      format,
		recordSize:  int(le.Uint32(page[12:])),
		recordCount: le.Uint64(page[16:]),
		leafStart:   le.Uint64(page[24:]),
		leafPages:   le.Uint64(page[32:]),
		levels:      le.Uint32(page[40:]),
		rootPage:    le.Uint64(page[48:]),
		bloomOff:    le.Uint64(page[56:]),
		bloomLen:    le.Uint64(page[64:]),
	}
	if h.recordSize <= 0 || h.recordSize > MaxRecordSize {
		return header{}, fmt.Errorf("%w: record size %d", ErrCorrupt, h.recordSize)
	}
	if h.format == FormatDelta && h.recordSize%8 != 0 {
		return header{}, fmt.Errorf("%w: delta run with record size %d", ErrCorrupt, h.recordSize)
	}
	h.minKey = append([]byte(nil), page[headerFixedLen:headerFixedLen+h.recordSize]...)
	h.maxKey = append([]byte(nil), page[headerFixedLen+h.recordSize:headerFixedLen+2*h.recordSize]...)
	return h, nil
}
