package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/storage"
)

// rec48 builds a 48-byte six-column record shaped like the From table's:
// ascending block numbers with small, correlated trailing columns.
func rec48(i uint64) []byte {
	r := make([]byte, 48)
	be := binary.BigEndian
	be.PutUint64(r[0:], i/4)        // block: ~4 refs per block
	be.PutUint64(r[8:], 100+i%512)  // inode
	be.PutUint64(r[16:], (i%64)*8)  // offset
	be.PutUint64(r[24:], i%16)      // line
	be.PutUint64(r[32:], 1)         // length
	be.PutUint64(r[40:], 7000+i%32) // cp
	return r
}

func sortedRecords48(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = rec48(uint64(i))
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i], recs[j]) < 0 })
	// Drop the (rare) duplicates the modular columns could produce.
	out := recs[:1]
	for _, r := range recs[1:] {
		if !bytes.Equal(r, out[len(out)-1]) {
			out = append(out, r)
		}
	}
	return out
}

func buildRunFormat(t testing.TB, fs storage.VFS, name string, recSize int, format Format, recs [][]byte) storage.File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriterFormat(f, recSize, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(nil); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDeltaRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 100, 5000, 50000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			fs := storage.NewMemFS()
			recs := sortedRecords(n, 3)
			f := buildRunFormat(t, fs, "run", 8, FormatDelta, recs)
			r, err := Open(f, NewCache(64))
			if err != nil {
				t.Fatal(err)
			}
			if r.Format() != FormatDelta {
				t.Fatalf("Format = %v, want delta", r.Format())
			}
			if r.RecordCount() != uint64(n) {
				t.Fatalf("RecordCount = %d, want %d", r.RecordCount(), n)
			}
			if !bytes.Equal(r.MinKey(), recs[0]) || !bytes.Equal(r.MaxKey(), recs[n-1]) {
				t.Fatal("min/max key mismatch")
			}
			it, err := r.First()
			if err != nil {
				t.Fatal(err)
			}
			got := iterAll(t, it)
			if len(got) != n {
				t.Fatalf("iterated %d records, want %d", len(got), n)
			}
			for i := range recs {
				if !bytes.Equal(got[i], recs[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
		})
	}
}

func TestDeltaWideRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords48(20000)
	f := buildRunFormat(t, fs, "run", 48, FormatDelta, recs)
	r, err := Open(f, NewCache(256))
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.First()
	if err != nil {
		t.Fatal(err)
	}
	got := iterAll(t, it)
	if len(got) != len(recs) {
		t.Fatalf("iterated %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDeltaSeekGEExhaustive(t *testing.T) {
	fs := storage.NewMemFS()
	var keys []uint64
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	for len(keys) < 20000 {
		k := uint64(rng.Intn(100000))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	recs := make([][]byte, len(keys))
	for i, k := range keys {
		recs[i] = rec8(k)
	}
	f := buildRunFormat(t, fs, "run", 8, FormatDelta, recs)
	r, err := Open(f, NewCache(1024))
	if err != nil {
		t.Fatal(err)
	}
	for probe := uint64(0); probe < 100010; probe += 37 {
		it, err := r.SeekGE(rec8(probe))
		if err != nil {
			t.Fatal(err)
		}
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
		if idx == len(keys) {
			if ok {
				t.Fatalf("probe %d: got %d, want none", probe, binary.BigEndian.Uint64(rec))
			}
			continue
		}
		if !ok || binary.BigEndian.Uint64(rec) != keys[idx] {
			t.Fatalf("probe %d: got ok=%v rec=%v, want %d", probe, ok, rec, keys[idx])
		}
	}
}

func TestDeltaSmallerThanRaw(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords48(50000)
	fRaw := buildRunFormat(t, fs, "raw", 48, FormatRaw, recs)
	fDelta := buildRunFormat(t, fs, "delta", 48, FormatDelta, recs)
	rRaw, err := Open(fRaw, nil)
	if err != nil {
		t.Fatal(err)
	}
	rDelta, err := Open(fDelta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rDelta.SizeBytes()*3 > rRaw.SizeBytes() {
		t.Fatalf("delta run %d bytes, raw %d bytes: want >= 3x smaller",
			rDelta.SizeBytes(), rRaw.SizeBytes())
	}
}

func TestDeltaEstimatorMatchesWriter(t *testing.T) {
	// The estimator must predict the writer's leaf-payload bytes exactly,
	// including page restarts.
	fs := storage.NewMemFS()
	recs := sortedRecords48(30000)
	f := buildRunFormat(t, fs, "run", 48, FormatDelta, recs)
	r, err := Open(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewDeltaEstimator(48)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		est.Add(rec)
	}
	// Sum the actual encoded payload bytes across the leaf pages.
	var actual uint64
	for p := uint64(0); p < r.h.leafPages; p++ {
		payload, count, err := r.readPageRaw(r.h.leafStart + p)
		if err != nil {
			t.Fatal(err)
		}
		// Encoded length = bytes before the zero padding; recompute by
		// decoding and re-encoding.
		recsOut, err := decodeDeltaLeaf(payload, count, 48)
		if err != nil {
			t.Fatal(err)
		}
		prev := make([]uint64, 6)
		var enc []byte
		for i := 0; i < count; i++ {
			enc = appendDeltaRecord(enc, recsOut[i*48:(i+1)*48], prev)
			for c := range prev {
				prev[c] = binary.BigEndian.Uint64(recsOut[i*48+c*8:])
			}
		}
		actual += uint64(len(enc))
	}
	if est.EncodedBytes() != actual {
		t.Fatalf("estimator predicted %d encoded bytes, writer produced %d", est.EncodedBytes(), actual)
	}
	var perCol uint64
	for _, b := range est.PerColumnBytes() {
		perCol += b
	}
	if perCol != est.EncodedBytes() {
		t.Fatalf("per-column sum %d != encoded total %d", perCol, est.EncodedBytes())
	}
	if est.Records() != uint64(len(recs)) {
		t.Fatalf("Records = %d, want %d", est.Records(), len(recs))
	}
}

func TestDeltaCorruptionDetected(t *testing.T) {
	// A flipped byte inside a compressed leaf page must fail the CRC.
	fs := storage.NewMemFS()
	recs := sortedRecords48(50000)
	f := buildRunFormat(t, fs, "run", 48, FormatDelta, recs)
	var b [1]byte
	if _, err := f.ReadAt(b[:], 2*storage.PageSize+100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], 2*storage.PageSize+100); err != nil {
		t.Fatal(err)
	}
	r, err := Open(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.First()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			return
		}
		if !ok {
			t.Fatal("iterated over corrupt page without error")
		}
	}
}

func TestDeltaForgedCountDetected(t *testing.T) {
	// Inflate a leaf's record count and recompute the CRC, so the checksum
	// passes and only the decoder can notice: the page's zero padding would
	// decode into duplicates of the last record. The decoder must surface
	// ErrCorrupt, never silently wrong records.
	fs := storage.NewMemFS()
	recs := sortedRecords48(100) // single partial leaf page
	f := buildRunFormat(t, fs, "run", 48, FormatDelta, recs)

	page := make([]byte, storage.PageSize)
	if _, err := f.ReadAt(page, storage.PageSize); err != nil {
		t.Fatal(err)
	}
	count := binary.LittleEndian.Uint16(page[:2])
	binary.LittleEndian.PutUint16(page[:2], count+5)
	crc := crc32.Checksum(page[:storage.PageSize-pageCRCLen], castagnoli)
	binary.LittleEndian.PutUint32(page[storage.PageSize-pageCRCLen:], crc)
	if _, err := f.WriteAt(page, storage.PageSize); err != nil {
		t.Fatal(err)
	}

	r, err := Open(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.First(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged count: got %v, want ErrCorrupt", err)
	}
}

func TestDeltaDecodedPageCached(t *testing.T) {
	// A warm point query on a delta run must neither hit storage nor
	// re-decode: the cache holds the decoded page.
	fs := storage.NewMemFS()
	recs := sortedRecords48(50000)
	f := buildRunFormat(t, fs, "run", 48, FormatDelta, recs)
	cache := NewCache(10000)
	r, err := Open(f, cache)
	if err != nil {
		t.Fatal(err)
	}
	var decodes int
	r.SetDecodeObserver(func(time.Duration) { decodes++ })
	probe := recs[25000]
	if _, err := r.SeekGE(probe); err != nil {
		t.Fatal(err)
	}
	if decodes == 0 {
		t.Fatal("cold seek decoded no pages")
	}
	coldDecodes := decodes
	before := fs.Stats()
	if _, err := r.SeekGE(probe); err != nil {
		t.Fatal(err)
	}
	if d := fs.Stats().Sub(before); d.PageReads != 0 {
		t.Fatalf("warm seek read %d pages, want 0", d.PageReads)
	}
	if decodes != coldDecodes {
		t.Fatalf("warm seek re-decoded (%d -> %d decodes)", coldDecodes, decodes)
	}
	hits, _ := cache.Stats()
	if hits == 0 {
		t.Fatal("cache recorded no hits")
	}
}

func TestDeltaRejectsBadRecordSize(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("run")
	if _, err := NewWriterFormat(f, 12, FormatDelta); err == nil {
		t.Fatal("delta writer accepted record size 12")
	}
	if _, err := NewWriterFormat(f, 8, Format(9)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewDeltaEstimator(12); err == nil {
		t.Fatal("estimator accepted record size 12")
	}
}

func BenchmarkCompressedRun(b *testing.B) {
	recs := sortedRecords48(200000)
	for _, f := range []Format{FormatRaw, FormatDelta} {
		format := f
		b.Run("build/"+format.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fs := storage.NewMemFS()
				file, _ := fs.Create("run")
				w, err := NewWriterFormat(file, 48, format)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range recs {
					if err := w.Append(r); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Finish(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, f := range []Format{FormatRaw, FormatDelta} {
		format := f
		fs := storage.NewMemFS()
		file, _ := fs.Create("run")
		w, err := NewWriterFormat(file, 48, format)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Finish(nil); err != nil {
			b.Fatal(err)
		}
		r, err := Open(file, NewCacheBytes(64<<20))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("point/"+format.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it, err := r.SeekGE(rec48(uint64(rng.Intn(len(recs)))))
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := it.Next(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("range/"+format.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it, err := r.First()
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := it.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				if n != len(recs) {
					b.Fatalf("scanned %d records, want %d", n, len(recs))
				}
			}
		})
	}
}
