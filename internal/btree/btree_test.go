package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/backlogfs/backlog/internal/bloom"
	"github.com/backlogfs/backlog/internal/storage"
)

// rec8 builds an 8-byte big-endian record from a uint64, so numeric order
// equals bytes.Compare order.
func rec8(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func buildRun(t *testing.T, fs storage.VFS, name string, recSize int, recs [][]byte, bloomBytes []byte) storage.File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, recSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(bloomBytes); err != nil {
		t.Fatal(err)
	}
	return f
}

func sortedRecords(n int, gap uint64) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = rec8(uint64(i) * gap)
	}
	return recs
}

func iterAll(t *testing.T, it *Iterator) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, append([]byte(nil), rec...))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 100, 511, 512, 5000, 50000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			fs := storage.NewMemFS()
			recs := sortedRecords(n, 3)
			f := buildRun(t, fs, "run", 8, recs, nil)
			r, err := Open(f, nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.RecordCount() != uint64(n) {
				t.Fatalf("RecordCount = %d, want %d", r.RecordCount(), n)
			}
			if !bytes.Equal(r.MinKey(), recs[0]) || !bytes.Equal(r.MaxKey(), recs[n-1]) {
				t.Fatal("min/max key mismatch")
			}
			it, err := r.First()
			if err != nil {
				t.Fatal(err)
			}
			got := iterAll(t, it)
			if len(got) != n {
				t.Fatalf("iterated %d records, want %d", len(got), n)
			}
			for i := range recs {
				if !bytes.Equal(got[i], recs[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
		})
	}
}

func TestSeekGE(t *testing.T) {
	fs := storage.NewMemFS()
	// Records 0, 10, 20, ..., 49990.
	recs := sortedRecords(5000, 10)
	f := buildRun(t, fs, "run", 8, recs, nil)
	r, err := Open(f, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		seek uint64
		want uint64 // first record returned
		none bool
	}{
		{0, 0, false},
		{1, 10, false},
		{10, 10, false},
		{25, 30, false},
		{49990, 49990, false},
		{49991, 0, true},
		{1 << 62, 0, true},
	}
	for _, c := range cases {
		it, err := r.SeekGE(rec8(c.seek))
		if err != nil {
			t.Fatalf("SeekGE(%d): %v", c.seek, err)
		}
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c.none {
			if ok {
				t.Fatalf("SeekGE(%d) found %x, want none", c.seek, rec)
			}
			continue
		}
		if !ok {
			t.Fatalf("SeekGE(%d) found nothing, want %d", c.seek, c.want)
		}
		if got := binary.BigEndian.Uint64(rec); got != c.want {
			t.Fatalf("SeekGE(%d) = %d, want %d", c.seek, got, c.want)
		}
	}
}

func TestSeekGEExhaustive(t *testing.T) {
	// Verify SeekGE against a reference on a smaller run, for every
	// possible probe position.
	fs := storage.NewMemFS()
	var keys []uint64
	rng := rand.New(rand.NewSource(11))
	seen := map[uint64]bool{}
	for len(keys) < 2000 {
		k := uint64(rng.Intn(10000))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	recs := make([][]byte, len(keys))
	for i, k := range keys {
		recs[i] = rec8(k)
	}
	f := buildRun(t, fs, "run", 8, recs, nil)
	r, err := Open(f, NewCache(1024))
	if err != nil {
		t.Fatal(err)
	}
	for probe := uint64(0); probe < 10005; probe += 7 {
		it, err := r.SeekGE(rec8(probe))
		if err != nil {
			t.Fatal(err)
		}
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		// Reference: first key >= probe.
		idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
		if idx == len(keys) {
			if ok {
				t.Fatalf("probe %d: got %d, want none", probe, binary.BigEndian.Uint64(rec))
			}
			continue
		}
		if !ok || binary.BigEndian.Uint64(rec) != keys[idx] {
			t.Fatalf("probe %d: got ok=%v rec=%v, want %d", probe, ok, rec, keys[idx])
		}
	}
}

func TestWriterRejectsDisorder(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("run")
	w, err := NewWriter(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec8(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec8(5)); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := w.Append(rec8(4)); err == nil {
		t.Fatal("out-of-order accepted")
	}
}

func TestWriterRejectsEmptyAndBadSizes(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("run")
	if _, err := NewWriter(f, 0); err == nil {
		t.Fatal("record size 0 accepted")
	}
	if _, err := NewWriter(f, MaxRecordSize+1); err == nil {
		t.Fatal("oversized record accepted")
	}
	w, err := NewWriter(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(make([]byte, 7)); err == nil {
		t.Fatal("short record accepted")
	}
	if err := w.Finish(nil); err == nil {
		t.Fatal("empty run accepted")
	}
}

func TestBloomRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	fl := bloom.New(1024, 4)
	recs := sortedRecords(100, 1)
	for i := uint64(0); i < 100; i++ {
		fl.Add(i)
	}
	f := buildRun(t, fs, "run", 8, recs, fl.Marshal())
	r, err := Open(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.BloomBytes()
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := bloom.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if !fl2.MayContain(i) {
			t.Fatalf("bloom lost key %d", i)
		}
	}
	// A run with no bloom returns nil.
	f2 := buildRun(t, fs, "run2", 8, recs, nil)
	r2, err := Open(f2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := r2.BloomBytes(); err != nil || data != nil {
		t.Fatalf("no-bloom run returned %v, %v", data, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(5000, 1)
	f := buildRun(t, fs, "run", 8, recs, nil)

	// Flip one byte in a leaf page (page 2).
	var b [1]byte
	if _, err := f.ReadAt(b[:], 2*storage.PageSize+100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], 2*storage.PageSize+100); err != nil {
		t.Fatal(err)
	}

	r, err := Open(f, nil)
	if err != nil {
		t.Fatal(err) // header is intact
	}
	it, err := r.First()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			return
		}
		if !ok {
			t.Fatal("iterated over corrupt page without error")
		}
	}
}

func TestCorruptHeaderDetected(t *testing.T) {
	fs := storage.NewMemFS()
	f := buildRun(t, fs, "run", 8, sortedRecords(10, 1), nil)
	var b [1]byte
	if _, err := f.ReadAt(b[:], 20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], 20); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt header: %v", err)
	}
}

func TestWiderRecords(t *testing.T) {
	// 40-byte records, as used by the From/To tables in the btrfs port.
	fs := storage.NewMemFS()
	const rs = 40
	n := 3000
	recs := make([][]byte, n)
	for i := range recs {
		r := make([]byte, rs)
		binary.BigEndian.PutUint64(r, uint64(i))
		for j := 8; j < rs; j++ {
			r[j] = byte(i % 251)
		}
		recs[i] = r
	}
	f := buildRun(t, fs, "run", rs, recs, nil)
	r, err := Open(f, NewCache(64))
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.SeekGE(recs[1234])
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := it.Next()
	if err != nil || !ok || !bytes.Equal(rec, recs[1234]) {
		t.Fatalf("SeekGE exact: ok=%v err=%v", ok, err)
	}
}

func TestCacheReducesReads(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(50000, 1)
	f := buildRun(t, fs, "run", 8, recs, nil)
	cache := NewCache(10000)
	r, err := Open(f, cache)
	if err != nil {
		t.Fatal(err)
	}
	probe := rec8(25000)
	if _, err := r.SeekGE(probe); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats()
	if _, err := r.SeekGE(probe); err != nil {
		t.Fatal(err)
	}
	if d := fs.Stats().Sub(before); d.PageReads != 0 {
		t.Fatalf("second identical seek read %d pages, want 0", d.PageReads)
	}
	hits, _ := cache.Stats()
	if hits == 0 {
		t.Fatal("cache recorded no hits")
	}
	cache.Clear()
	before = fs.Stats()
	if _, err := r.SeekGE(probe); err != nil {
		t.Fatal(err)
	}
	if d := fs.Stats().Sub(before); d.PageReads == 0 {
		t.Fatal("seek after Clear performed no reads")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	p1 := make([]byte, storage.PageSize)
	c.put(1, 1, p1, 1)
	c.put(1, 2, p1, 1)
	c.put(1, 3, p1, 1) // exceeds the two-page budget, evicts (1,1)
	if _, _, ok := c.get(1, 1); ok {
		t.Fatal("evicted page still present")
	}
	if _, _, ok := c.get(1, 3); !ok {
		t.Fatal("recent page missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Zero-capacity cache stores nothing.
	z := NewCache(0)
	z.put(1, 1, p1, 1)
	if z.Len() != 0 {
		t.Fatal("zero-capacity cache stored a page")
	}
}

func TestCacheByteBudget(t *testing.T) {
	// Entries are charged by size: a budget of two raw pages holds only
	// one 8x-expanded decoded page alongside nothing else.
	c := NewCache(2)
	big := make([]byte, 2*storage.PageSize)
	small := make([]byte, 100)
	c.put(1, 1, small, 1)
	c.put(1, 2, big, 1) // 2*PageSize + 100 > budget: evicts (1,1)
	if _, _, ok := c.get(1, 1); ok {
		t.Fatal("small entry survived over-budget insert")
	}
	if _, _, ok := c.get(1, 2); !ok {
		t.Fatal("big entry missing")
	}
	if got := c.SizeBytes(); got != int64(len(big)) {
		t.Fatalf("SizeBytes = %d, want %d", got, len(big))
	}
	// An entry larger than the whole budget is kept alone rather than
	// thrashing: put never evicts the entry just inserted.
	huge := make([]byte, 3*storage.PageSize)
	c.put(1, 3, huge, 1)
	if _, _, ok := c.get(1, 3); !ok {
		t.Fatal("oversized entry not retained")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestBuildNeverReads(t *testing.T) {
	// The paper: "writing the I files requires no disk reads."
	fs := storage.NewMemFS()
	f, _ := fs.Create("run")
	w, err := NewWriter(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Stats()
	for i := 0; i < 100000; i++ {
		if err := w.Append(rec8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if d := fs.Stats().Sub(before); d.PageReads != 0 {
		t.Fatalf("building a run performed %d page reads, want 0", d.PageReads)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any strictly-ascending record set round-trips exactly and
	// SeekGE agrees with a linear scan.
	f := func(raw []uint32, probe uint32) bool {
		if len(raw) == 0 {
			return true
		}
		set := map[uint64]bool{}
		for _, v := range raw {
			set[uint64(v)] = true
		}
		var keys []uint64
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fs := storage.NewMemFS()
		file, _ := fs.Create("r")
		w, err := NewWriter(file, 8)
		if err != nil {
			return false
		}
		for _, k := range keys {
			if err := w.Append(rec8(k)); err != nil {
				return false
			}
		}
		if err := w.Finish(nil); err != nil {
			return false
		}
		r, err := Open(file, nil)
		if err != nil {
			return false
		}
		it, err := r.SeekGE(rec8(uint64(probe)))
		if err != nil {
			return false
		}
		rec, ok, err := it.Next()
		if err != nil {
			return false
		}
		idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= uint64(probe) })
		if idx == len(keys) {
			return !ok
		}
		return ok && binary.BigEndian.Uint64(rec) == keys[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRunBuild32k(b *testing.B) {
	// Cost of materializing one Level-0 run of a full CP (32,000 ops).
	recs := sortedRecords(32000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := storage.NewMemFS()
		f, _ := fs.Create("run")
		w, _ := NewWriter(f, 8)
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Finish(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeekGE(b *testing.B) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("run")
	w, _ := NewWriter(f, 8)
	for i := 0; i < 1_000_000; i++ {
		if err := w.Append(rec8(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Finish(nil); err != nil {
		b.Fatal(err)
	}
	r, err := Open(f, NewCache(1<<15))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SeekGE(rec8(uint64(rng.Intn(1_000_000)))); err != nil {
			b.Fatal(err)
		}
	}
}
