package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/storage"
)

// readerIDs issues unique cache identities for readers.
var readerIDs atomic.Uint64

// Reader provides point lookups and ordered iteration over a finished run.
type Reader struct {
	f     storage.File
	h     header
	cache *Cache
	id    uint64

	// decodeObs, when set, receives the wall time spent expanding each
	// delta-encoded leaf page (cache misses only).
	decodeObs func(time.Duration)
}

// Open validates the run header in f and returns a Reader. The cache may be
// nil, in which case every page access hits storage.
func Open(f storage.File, cache *Cache) (*Reader, error) {
	h, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	return &Reader{f: f, h: h, cache: cache, id: readerIDs.Add(1)}, nil
}

// SetDecodeObserver installs a callback receiving the decode latency of
// every delta leaf-page expansion (observability wiring; may be nil).
func (r *Reader) SetDecodeObserver(fn func(time.Duration)) { r.decodeObs = fn }

// WithFile returns a shallow copy of the Reader that issues its page reads
// through f but shares the original's header, cache identity, and decode
// observer. The caller must ensure f addresses the same bytes as the
// original file (e.g. a purpose-tagged handle over it): cached pages are
// keyed by the shared reader id, so the copies fill and hit one cache
// entry set between them.
func (r *Reader) WithFile(f storage.File) *Reader {
	c := *r
	c.f = f
	return &c
}

// Format returns the run's leaf encoding (FormatRaw or FormatDelta).
func (r *Reader) Format() Format { return r.h.format }

// RecordSize returns the fixed record size of the run.
func (r *Reader) RecordSize() int { return r.h.recordSize }

// RecordCount returns the number of records in the run.
func (r *Reader) RecordCount() uint64 { return r.h.recordCount }

// MinKey returns the smallest record in the run. The slice is owned by the
// reader and must not be modified.
func (r *Reader) MinKey() []byte { return r.h.minKey }

// MaxKey returns the largest record in the run.
func (r *Reader) MaxKey() []byte { return r.h.maxKey }

// Pages returns the total number of 4 KB pages occupied by the page grid
// (header + leaves + internal levels), excluding the trailing bloom bytes.
func (r *Reader) Pages() uint64 { return r.h.bloomOff / storage.PageSize }

// SizeBytes returns the full file size of the run, including the Bloom
// filter.
func (r *Reader) SizeBytes() int64 {
	return int64(r.h.bloomOff + r.h.bloomLen)
}

// BloomBytes reads the serialized Bloom filter, or nil if none was stored.
func (r *Reader) BloomBytes() ([]byte, error) {
	if r.h.bloomLen == 0 {
		return nil, nil
	}
	buf := make([]byte, r.h.bloomLen)
	if _, err := r.f.ReadAt(buf, int64(r.h.bloomOff)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("btree: reading bloom: %w", err)
	}
	return buf, nil
}

// readPage returns the verified raw payload of a page along with its entry
// count, caching the payload. The returned slice must not be modified.
func (r *Reader) readPage(pageNo uint64) (payload []byte, count int, err error) {
	if r.cache != nil {
		if data, count, ok := r.cache.get(r.id, pageNo); ok {
			return data, count, nil
		}
	}
	payload, count, err = r.readPageRaw(pageNo)
	if err != nil {
		return nil, 0, err
	}
	if r.cache != nil {
		r.cache.put(r.id, pageNo, payload, count)
	}
	return payload, count, nil
}

// readPageRaw reads a page from storage and verifies its CRC, bypassing
// the cache.
func (r *Reader) readPageRaw(pageNo uint64) (payload []byte, count int, err error) {
	page := make([]byte, storage.PageSize)
	if _, err := r.f.ReadAt(page, int64(pageNo)*storage.PageSize); err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("btree: reading page %d: %w", pageNo, err)
	}
	crc := crc32.Checksum(page[:storage.PageSize-pageCRCLen], castagnoli)
	if binary.LittleEndian.Uint32(page[storage.PageSize-pageCRCLen:]) != crc {
		return nil, 0, fmt.Errorf("%w: page %d checksum", ErrCorrupt, pageNo)
	}
	return page[pageCountLen : storage.PageSize-pageCRCLen],
		int(binary.LittleEndian.Uint16(page[:2])), nil
}

// readLeaf returns a leaf page's records in fixed-stride form. Raw runs
// serve the verified payload directly; delta runs expand the page once and
// cache the decoded records, so hot queries never re-decode.
func (r *Reader) readLeaf(pageNo uint64) (records []byte, count int, err error) {
	if r.h.format != FormatDelta {
		return r.readPage(pageNo)
	}
	if r.cache != nil {
		if data, count, ok := r.cache.get(r.id, pageNo); ok {
			return data, count, nil
		}
	}
	payload, count, err := r.readPageRaw(pageNo)
	if err != nil {
		return nil, 0, err
	}
	var start time.Time
	if r.decodeObs != nil {
		start = time.Now()
	}
	records, err = decodeDeltaLeaf(payload, count, r.h.recordSize)
	if err != nil {
		return nil, 0, fmt.Errorf("btree: page %d: %w", pageNo, err)
	}
	if r.decodeObs != nil {
		r.decodeObs(time.Since(start))
	}
	if r.cache != nil {
		r.cache.put(r.id, pageNo, records, count)
	}
	return records, count, nil
}

// findLeaf descends from the root to the leaf page that may contain the
// first record >= key.
func (r *Reader) findLeaf(key []byte) (uint64, error) {
	if r.h.levels == 0 {
		return r.h.leafStart, nil
	}
	pageNo := r.h.rootPage
	entrySize := r.h.recordSize + 8
	for level := int(r.h.levels); level > 0; level-- {
		payload, count, err := r.readPage(pageNo)
		if err != nil {
			return 0, err
		}
		// Find the last entry with key <= target; if the target sorts
		// before every separator, take the first child (SeekGE then
		// starts at the level's smallest records).
		lo, hi := 0, count // lo = number of entries with key <= target
		for lo < hi {
			mid := (lo + hi) / 2
			ek := payload[mid*entrySize : mid*entrySize+r.h.recordSize]
			if bytes.Compare(ek, key) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx := lo - 1
		if idx < 0 {
			idx = 0
		}
		pageNo = binary.LittleEndian.Uint64(
			payload[idx*entrySize+r.h.recordSize : idx*entrySize+r.h.recordSize+8])
	}
	return pageNo, nil
}

// Iterator yields records in ascending order.
type Iterator struct {
	r       *Reader
	pageNo  uint64
	payload []byte
	count   int
	idx     int
	done    bool
}

// First returns an iterator positioned at the first record.
func (r *Reader) First() (*Iterator, error) {
	it := &Iterator{r: r, pageNo: r.h.leafStart}
	if err := it.loadPage(); err != nil {
		return nil, err
	}
	return it, nil
}

// SeekGE returns an iterator positioned at the first record >= key.
func (r *Reader) SeekGE(key []byte) (*Iterator, error) {
	if len(key) != r.h.recordSize {
		return nil, fmt.Errorf("btree: seek key size %d, want %d", len(key), r.h.recordSize)
	}
	leaf, err := r.findLeaf(key)
	if err != nil {
		return nil, err
	}
	it := &Iterator{r: r, pageNo: leaf}
	if err := it.loadPage(); err != nil {
		return nil, err
	}
	// Binary search within the leaf for the first record >= key.
	lo, hi := 0, it.count
	rs := r.h.recordSize
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.payload[mid*rs:(mid+1)*rs], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.idx = lo
	if it.idx == it.count {
		// Key is past this leaf; advance to the next one.
		if err := it.advancePage(); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *Iterator) loadPage() error {
	if it.pageNo >= it.r.h.leafStart+it.r.h.leafPages {
		it.done = true
		return nil
	}
	payload, count, err := it.r.readLeaf(it.pageNo)
	if err != nil {
		return err
	}
	it.payload, it.count, it.idx = payload, count, 0
	return nil
}

func (it *Iterator) advancePage() error {
	it.pageNo++
	return it.loadPage()
}

// Next returns the next record, or ok=false at the end. The returned slice
// aliases an internal page buffer and is valid only until the next call.
func (it *Iterator) Next() (rec []byte, ok bool, err error) {
	if it.done {
		return nil, false, nil
	}
	if it.idx >= it.count {
		if err := it.advancePage(); err != nil {
			return nil, false, err
		}
		if it.done {
			return nil, false, nil
		}
	}
	rs := it.r.h.recordSize
	rec = it.payload[it.idx*rs : (it.idx+1)*rs]
	it.idx++
	return rec, true, nil
}
