// Package bloom implements the Bloom filters Backlog attaches to every
// read-store run (paper Section 5.1).
//
// Query processing consults the filter of each Level-0 run before opening
// it, so queries touch only runs that may contain the requested physical
// block. The paper's configuration — four hash functions, a 32 KB default
// filter for From/To runs sized for 32,000 operations per consistency point
// (≈2.4 % expected false-positive rate), shrink-by-halving for smaller runs,
// and growth up to 1 MB for the Combined read store — is reproduced here.
//
// Keys are physical block numbers (uint64): queries are always by block, so
// filters index only the block column of each record.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// DefaultHashes is the number of hash functions (k) used by the paper.
const DefaultHashes = 4

// DefaultFilterBytes is the default filter size for a From or To read-store
// run, chosen for 32,000 operations per CP (paper Section 5.1).
const DefaultFilterBytes = 32 << 10

// MaxCombinedFilterBytes caps the filter size of a Combined read store.
const MaxCombinedFilterBytes = 1 << 20

// Filter is a classic Bloom filter over uint64 keys. The zero value is not
// usable; construct with New or NewForCapacity.
type Filter struct {
	bits   []byte
	k      int
	nAdded uint64
}

// New creates a filter with the given size in bytes (rounded up to a
// power of two, minimum 64 bytes) and number of hash functions.
func New(sizeBytes, hashes int) *Filter {
	if sizeBytes < 64 {
		sizeBytes = 64
	}
	if sizeBytes&(sizeBytes-1) != 0 {
		sizeBytes = 1 << bits.Len(uint(sizeBytes))
	}
	if hashes <= 0 {
		hashes = DefaultHashes
	}
	return &Filter{bits: make([]byte, sizeBytes), k: hashes}
}

// NewForCapacity sizes a filter for n expected keys at roughly the paper's
// operating point (m/n ≈ 8 bits per key with k = 4), clamped to
// [64 B, maxBytes]. Passing maxBytes <= 0 uses DefaultFilterBytes.
func NewForCapacity(n int, maxBytes int) *Filter {
	if maxBytes <= 0 {
		maxBytes = DefaultFilterBytes
	}
	sizeBytes := n // 8 bits per expected key
	if sizeBytes > maxBytes {
		sizeBytes = maxBytes
	}
	return New(sizeBytes, DefaultHashes)
}

// nBits returns the filter size in bits (always a power of two).
func (f *Filter) nBits() uint64 { return uint64(len(f.bits)) * 8 }

// hash2 derives two independent 64-bit hashes of the key; the k probe
// positions use double hashing h1 + i*h2 (Kirsch–Mitzenmacher), which
// preserves the false-positive asymptotics of k independent hashes.
func hash2(key uint64) (uint64, uint64) {
	// SplitMix64 finalizer for h1.
	x := key + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	h1 := x ^ (x >> 31)
	// A second, differently-seeded mix for h2.
	y := key ^ 0xc2b2ae3d27d4eb4f
	y = (y ^ (y >> 33)) * 0xff51afd7ed558ccd
	y = (y ^ (y >> 33)) * 0xc4ceb9fe1a85ec53
	h2 := y ^ (y >> 33)
	// Double hashing degenerates if h2 is even (cycles through a coset);
	// force it odd.
	return h1, h2 | 1
}

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	h1, h2 := hash2(key)
	mask := f.nBits() - 1
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) & mask
		f.bits[bit>>3] |= 1 << (bit & 7)
	}
	f.nAdded++
}

// MayContain reports whether the key may have been added. False means
// definitely absent.
func (f *Filter) MayContain(key uint64) bool {
	h1, h2 := hash2(key)
	mask := f.nBits() - 1
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) & mask
		if f.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// Added returns the number of keys inserted.
func (f *Filter) Added() uint64 { return f.nAdded }

// SizeBytes returns the filter's bit-array size in bytes.
func (f *Filter) SizeBytes() int { return len(f.bits) }

// Halve folds the filter to half its size in linear time (Broder &
// Mitzenmacher): bit i of the result is the OR of bits i and i+m/2. The
// halved filter answers MayContain identically for all previously added keys
// (no false negatives) at a higher false-positive rate. Halving below 64
// bytes is a no-op. This implements the paper's "shrink its Bloom filter to
// save memory" for runs with few records.
func (f *Filter) Halve() {
	if len(f.bits) <= 64 {
		return
	}
	half := len(f.bits) / 2
	for i := 0; i < half; i++ {
		f.bits[i] |= f.bits[i+half]
	}
	f.bits = f.bits[:half:half]
}

// ShrinkToFit repeatedly halves the filter while doing so keeps the
// estimated false-positive rate under maxFPR. It returns the final size.
func (f *Filter) ShrinkToFit(maxFPR float64) int {
	for len(f.bits) > 64 {
		// Estimate the FPR the filter would have at half size.
		if estimateFPR(f.k, f.nAdded, f.nBits()/2) > maxFPR {
			break
		}
		f.Halve()
	}
	return len(f.bits)
}

// EstimatedFPR returns the expected false-positive probability given the
// number of keys added so far.
func (f *Filter) EstimatedFPR() float64 {
	return estimateFPR(f.k, f.nAdded, f.nBits())
}

func estimateFPR(k int, n, mBits uint64) float64 {
	if n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(mBits)), float64(k))
}

// Marshal serializes the filter. Layout:
//
//	magic "BLF1" | k uint32 | nAdded uint64 | nBytes uint64 | bits
func (f *Filter) Marshal() []byte {
	out := make([]byte, 4+4+8+8+len(f.bits))
	copy(out, "BLF1")
	binary.LittleEndian.PutUint32(out[4:], uint32(f.k))
	binary.LittleEndian.PutUint64(out[8:], f.nAdded)
	binary.LittleEndian.PutUint64(out[16:], uint64(len(f.bits)))
	copy(out[24:], f.bits)
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 24 || string(data[:4]) != "BLF1" {
		return nil, fmt.Errorf("bloom: bad filter header")
	}
	k := int(binary.LittleEndian.Uint32(data[4:]))
	nAdded := binary.LittleEndian.Uint64(data[8:])
	n := binary.LittleEndian.Uint64(data[16:])
	if uint64(len(data)-24) < n {
		return nil, fmt.Errorf("bloom: truncated filter: have %d bytes, want %d", len(data)-24, n)
	}
	if n < 64 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bloom: invalid filter size %d", n)
	}
	if k <= 0 || k > 32 {
		return nil, fmt.Errorf("bloom: invalid hash count %d", k)
	}
	f := &Filter{bits: append([]byte(nil), data[24:24+n]...), k: k, nAdded: nAdded}
	return f, nil
}
