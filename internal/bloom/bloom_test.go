package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(DefaultFilterBytes, DefaultHashes)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 32000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFalsePositiveRateNearExpectation(t *testing.T) {
	// The paper's operating point: 32 KB filter, 4 hashes, 32,000 keys →
	// expected FPR up to ~2.4%.
	f := New(DefaultFilterBytes, DefaultHashes)
	rng := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, 32000)
	for i := 0; i < 32000; i++ {
		k := rng.Uint64()
		present[k] = true
		f.Add(k)
	}
	trials, fp := 100000, 0
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if present[k] {
			continue
		}
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.035 {
		t.Fatalf("false positive rate %.4f exceeds 3.5%% bound (expected ≈2.4%%)", rate)
	}
	est := f.EstimatedFPR()
	if est < rate/3 || est > rate*3 {
		t.Errorf("EstimatedFPR %.4f far from observed %.4f", est, rate)
	}
}

func TestHalvePreservesMembership(t *testing.T) {
	f := New(4096, DefaultHashes)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for rounds := 0; rounds < 4; rounds++ {
		f.Halve()
		for _, k := range keys {
			if !f.MayContain(k) {
				t.Fatalf("false negative after %d halvings", rounds+1)
			}
		}
	}
}

func TestHalveFloor(t *testing.T) {
	f := New(64, DefaultHashes)
	f.Add(42)
	f.Halve() // should be a no-op at the 64-byte floor
	if f.SizeBytes() != 64 {
		t.Fatalf("halved below floor: %d bytes", f.SizeBytes())
	}
	if !f.MayContain(42) {
		t.Fatal("lost key at floor size")
	}
}

func TestShrinkToFit(t *testing.T) {
	f := New(DefaultFilterBytes, DefaultHashes)
	for i := uint64(0); i < 100; i++ {
		f.Add(i)
	}
	size := f.ShrinkToFit(0.024)
	if size >= DefaultFilterBytes {
		t.Fatalf("filter with 100 keys did not shrink (size %d)", size)
	}
	for i := uint64(0); i < 100; i++ {
		if !f.MayContain(i) {
			t.Fatalf("false negative after shrink for %d", i)
		}
	}
	if fpr := f.EstimatedFPR(); fpr > 0.024 {
		t.Fatalf("shrunk filter FPR %.4f exceeds requested bound", fpr)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(1024, 5)
	for i := uint64(0); i < 200; i++ {
		f.Add(i * 31)
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Added() != 200 || g.SizeBytes() != f.SizeBytes() {
		t.Fatalf("metadata mismatch: added=%d size=%d", g.Added(), g.SizeBytes())
	}
	for i := uint64(0); i < 200; i++ {
		if !g.MayContain(i * 31) {
			t.Fatalf("false negative after round trip for %d", i*31)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	f := New(256, 4)
	f.Add(7)
	data := f.Marshal()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:20],
		"short bits": func() []byte {
			d := append([]byte(nil), data...)
			return d[:len(d)-10]
		}(),
	}
	for name, d := range cases {
		if _, err := Unmarshal(d); err == nil {
			t.Errorf("%s: Unmarshal accepted corrupt input", name)
		}
	}
}

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	f := New(1000, 4)
	if f.SizeBytes() != 1024 {
		t.Fatalf("size = %d, want 1024", f.SizeBytes())
	}
	f = New(0, 0)
	if f.SizeBytes() != 64 || f.k != DefaultHashes {
		t.Fatalf("defaults: size=%d k=%d", f.SizeBytes(), f.k)
	}
}

func TestNewForCapacity(t *testing.T) {
	small := NewForCapacity(100, 0)
	if small.SizeBytes() > 256 {
		t.Fatalf("small filter too big: %d", small.SizeBytes())
	}
	big := NewForCapacity(10_000_000, MaxCombinedFilterBytes)
	if big.SizeBytes() != MaxCombinedFilterBytes {
		t.Fatalf("capped filter = %d, want %d", big.SizeBytes(), MaxCombinedFilterBytes)
	}
	def := NewForCapacity(32000, 0)
	if def.SizeBytes() != DefaultFilterBytes {
		t.Fatalf("default-capacity filter = %d, want %d", def.SizeBytes(), DefaultFilterBytes)
	}
}

func TestMembershipProperty(t *testing.T) {
	// Property: for any key set, every added key is reported present, both
	// before and after halving and a marshal round trip.
	f := func(keys []uint64) bool {
		fl := New(2048, 4)
		for _, k := range keys {
			fl.Add(k)
		}
		fl.Halve()
		data := fl.Marshal()
		fl2, err := Unmarshal(data)
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !fl.MayContain(k) || !fl2.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(DefaultFilterBytes, DefaultHashes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(DefaultFilterBytes, DefaultHashes)
	for i := uint64(0); i < 32000; i++ {
		f.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(uint64(i))
	}
}
