package wal

import (
	"errors"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

// TestCutRetireKeepsFlushConcurrentAppends is the checkpoint truncation
// contract: records appended after a Cut (updates racing a checkpoint
// flush) survive the Retire that deletes the segments the checkpoint
// covered.
func TestCutRetireKeepsFlushConcurrentAppends(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	for i := 0; i < 3; i++ {
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := l.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	// "During the flush": appends for the next consistency point.
	during := Record{Op: OpAddRef, Block: 77, Inode: 9, CP: 2, Length: 1}
	if err := l.Append(during); err != nil {
		t.Fatal(err)
	}
	// "Install committed": retire everything the cut superseded.
	if err := l.Retire(cut); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec(50)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2 (the post-cut appends): %+v", len(rec.Records), rec.Records)
	}
	if rec.Records[0] != during || rec.Records[1] != addRec(50) {
		t.Fatalf("wrong records survived: %+v", rec.Records)
	}
}

// TestCrashBetweenCutAndRetire verifies that a crash while the checkpoint
// flush is still running loses nothing: the cut mark does not discard the
// records before it (they are not yet durable in the read store), unlike
// a Truncate-written checkpoint mark.
func TestCrashBetweenCutAndRetire(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	pre := []Record{addRec(1), addRec(2)}
	for _, r := range pre {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Cut(1); err != nil {
		t.Fatal(err)
	}
	during := Record{Op: OpRemoveRef, Block: 5, Inode: 1, CP: 2, Length: 1}
	if err := l.Append(during); err != nil {
		t.Fatal(err)
	}
	vfs.Crash() // flush never commits, Retire never runs

	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record(nil), pre...), during)
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d: %+v", len(rec.Records), len(want), rec.Records)
	}
	for i := range want {
		if rec.Records[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, rec.Records[i], want[i])
		}
	}
	if rec.MarkCP != 0 {
		t.Fatalf("cut mark set MarkCP=%d; it must not promise durability", rec.MarkCP)
	}
}

// TestCutClearsFlushErrorAndPending mirrors the Truncate reset test: a
// flush failure blocks appends until the next checkpoint's Cut rotates to
// a fresh segment and resets the sticky state.
func TestCutClearsFlushErrorAndPending(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	if err := l.Append(addRec(1)); err != nil {
		t.Fatal(err)
	}
	vfs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: vfs.Stats().PageWrites})
	if err := l.Append(addRec(2)); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("append during failure plan: %v", err)
	}
	if err := l.Append(addRec(3)); err == nil {
		t.Fatal("sticky error did not gate appends")
	}
	vfs.SetFailurePlan(storage.FailurePlan{})
	cut, err := l.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec(4)); err != nil {
		t.Fatalf("append after Cut reset: %v", err)
	}
	if err := l.Retire(cut); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0] != addRec(4) {
		t.Fatalf("recovered %+v, want just the post-cut record", rec.Records)
	}
}

// TestRetireFailureKeepsSegmentsTracked arms a remove failure... MemFS
// Remove only fails for missing files, so instead verify the cut token
// contract directly: retiring with a stale token after a second Cut still
// removes exactly the right segments.
func TestSecondCutCoversUnretiredSegments(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Buffered)
	if err := l.Append(addRec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Cut(1); err != nil {
		t.Fatal(err) // checkpoint 1 fails: its Retire never happens
	}
	if err := l.Append(addRec(2)); err != nil {
		t.Fatal(err)
	}
	cut2, err := l.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec(3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Retire(cut2); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount = %d after covering retire, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0] != addRec(3) {
		t.Fatalf("recovered %+v, want just the post-second-cut record", rec.Records)
	}
}

// TestResurrectedTornSegmentToleratedBeforeCutMark: a segment torn by a
// flush failure and retired may be resurrected by a crash that beat its
// removal; recovery must tolerate the tear because the next segment opens
// with a cut mark, and must keep the torn segment's intact prefix.
func TestResurrectedTornSegmentToleratedBeforeCutMark(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	if err := l.Append(addRec(1)); err != nil {
		t.Fatal(err)
	}
	// Tear the active segment with a torn, durable write.
	vfs.SetFailurePlan(storage.FailurePlan{
		FailAfterPageWrites: vfs.Stats().PageWrites,
		TornWrite:           true,
		TornWriteDurable:    true,
	})
	if err := l.Append(addRec(2)); err == nil {
		t.Fatal("torn append reported success")
	}
	vfs.SetFailurePlan(storage.FailurePlan{})
	if _, err := l.Cut(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec(3)); err != nil {
		t.Fatal(err)
	}
	vfs.Crash() // Retire never ran: the torn segment survives mid-log

	rec, err := Recover(vfs)
	if err != nil {
		t.Fatalf("recovery rejected a torn segment before a cut mark: %v", err)
	}
	if len(rec.Records) != 2 || rec.Records[0] != addRec(1) || rec.Records[1] != addRec(3) {
		t.Fatalf("recovered %+v, want the pre-tear and post-cut records", rec.Records)
	}
}
