package wal

import (
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	recs := []Record{
		{Op: OpAddRef, Block: 1, Inode: 2, Offset: 3, Line: 4, Length: 5, CP: 6},
		{Op: OpRemoveRef, Block: 10, Inode: 20, Offset: 30, Line: 40, Length: 50, CP: 60},
		{Op: OpRelocate, Block: 100, NewBlock: 200, CP: 7},
		{Op: OpCheckpoint, CP: 42},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeFrame(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	frame := appendFrame(nil, Record{Op: OpAddRef, Block: 9, CP: 1})
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   frame[:4],
		"truncated body": frame[:len(frame)-1],
		"flipped bit": func() []byte {
			b := append([]byte(nil), frame...)
			b[frameHeaderSize+5] ^= 0x40
			return b
		}(),
		"zero length": make([]byte, frameHeaderSize),
		"absurd length": func() []byte {
			b := append([]byte(nil), frame...)
			b[0], b[1] = 0xff, 0xff
			return b
		}(),
		"unknown op": func() []byte {
			b := appendFrame(nil, Record{Op: OpCheckpoint, CP: 3})
			// Rewrite the op byte and refresh nothing: CRC now mismatches,
			// which is the detection we rely on.
			b[frameHeaderSize] = 99
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, err := decodeFrame(b); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestSegmentNames(t *testing.T) {
	for _, idx := range []uint64{0, 1, 7, 1 << 40} {
		name := segmentName(idx)
		got, ok := parseSegmentName(name)
		if !ok || got != idx {
			t.Fatalf("roundtrip %d -> %q -> %d (%v)", idx, name, got, ok)
		}
	}
	for _, bad := range []string{"MANIFEST", "from-1.run", "wal-.seg", "wal-xyz.seg", "wal-1.seg"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parsed %q", bad)
		}
	}
}
