package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/backlogfs/backlog/internal/storage"
)

// Segment files are named wal-<16-digit index>.seg and begin with a
// 16-byte header: an 8-byte magic, a 4-byte format version, and the low
// 4 bytes of the segment index (a consistency cross-check against the
// name). Records follow back to back. The names deliberately share no
// suffix or prefix with lsm's run ("*.run") and deletion-vector ("dv.*")
// files, so lsm orphan collection never touches them.
const (
	segPrefix     = "wal-"
	segSuffix     = ".seg"
	segHeaderSize = 16
	segMagic      = "BKLGWAL\x01"
	segVersion    = 1
)

func segmentName(index uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, index, segSuffix)
}

// parseSegmentName extracts the index of a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(digits) != 16 {
		return 0, false
	}
	idx, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

func encodeSegHeader(index uint64) []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	h[8] = segVersion
	h[12] = byte(index >> 24)
	h[13] = byte(index >> 16)
	h[14] = byte(index >> 8)
	h[15] = byte(index)
	return h
}

// listSegments returns the indices of all segment files in vfs, ascending.
func listSegments(vfs storage.VFS) ([]uint64, error) {
	names, err := vfs.List()
	if err != nil {
		return nil, err
	}
	var idx []uint64
	for _, name := range names {
		if i, ok := parseSegmentName(name); ok {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx, nil
}

// Recovered is the result of scanning the on-disk log.
type Recovered struct {
	// Records lists every durable record after the last checkpoint mark,
	// in append order.
	Records []Record
	// Cuts lists the cut marks interleaved with Records: Cuts[i].Index is
	// the number of records that precede the mark. Every record before a
	// cut was applied to the write stores before that cut's checkpoint
	// froze them, so once ANY checkpoint with that (or a later) CP has
	// committed, those records are durable in the read store regardless
	// of their own CP tags — the engine drops everything before the last
	// cut whose CP the manifest covers, closing the window in which a
	// record tagged past the committing CP (an update racing the flush)
	// would otherwise replay on top of the runs that already hold it.
	Cuts []CutMark
	// MarkCP is the CP of the last checkpoint mark seen (0 if none).
	MarkCP uint64
	// Found reports whether any segment files existed at all.
	Found bool
}

// CutMark locates one cut mark in a Recovered record stream.
type CutMark struct {
	// Index is the number of Records preceding the mark.
	Index int
	// CP is the consistency point the cutting checkpoint was freezing.
	CP uint64
}

// tear locates a torn tail found during recovery: segment index and the
// byte offset of the first unreadable frame.
type tear struct {
	found  bool
	index  uint64
	offset int64
}

// Recover scans the segments in vfs without opening a log for writing. A
// torn or truncated tail of the final segment ends the scan cleanly (the
// expected state after a crash mid-append); damage anywhere else is an
// error.
func Recover(vfs storage.VFS) (Recovered, error) {
	rec, _, _, err := recoverLog(storage.TagVFS(vfs, storage.SrcRecovery))
	return rec, err
}

// recoverLog is Recover plus the tear position (which Open uses to seal
// the torn segment before appending past it) and the scanned segment
// indices (so Open need not list the directory again).
func recoverLog(vfs storage.VFS) (Recovered, tear, []uint64, error) {
	segs, err := listSegments(vfs)
	if err != nil {
		return Recovered{}, tear{}, nil, err
	}
	rec := Recovered{Found: len(segs) > 0}
	var tr tear
	for i, idx := range segs {
		final := i == len(segs)-1
		torn, err := readSegment(vfs, idx, final, &rec, &tr)
		if err != nil {
			return rec, tr, segs, err
		}
		if torn && !final {
			// A torn tail in a non-final segment is normally corruption —
			// except when the next segment opens with a checkpoint or cut
			// mark: then the tear is a flush failure that preceded that
			// Truncate/Cut (which is the only way appends resume after a
			// failed flush), everything before the tear is intact, and
			// everything after it was never acknowledged. Records of such
			// a segment replay subject to the usual CP filter.
			ok, err := segmentStartsWithMark(vfs, segs[i+1])
			if err != nil {
				return rec, tr, segs, err
			}
			if !ok {
				return rec, tr, segs, fmt.Errorf("wal: segment %s corrupt (torn mid-log)", segmentName(idx))
			}
		}
	}
	return rec, tr, segs, nil
}

// segmentStartsWithMark reports whether a segment's first record is a
// checkpoint or cut mark — the two record types that head segments opened
// by Truncate and Cut respectively, and therefore the two that may
// legitimately follow a retired (possibly torn) predecessor.
func segmentStartsWithMark(vfs storage.VFS, index uint64) (bool, error) {
	f, err := vfs.Open(segmentName(index))
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, segHeaderSize+frameHeaderSize+checkpointPayload)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return false, err
	}
	r, _, derr := decodeFrame(buf[segHeaderSize:])
	return derr == nil && (r.Op == OpCheckpoint || r.Op == OpCut), nil
}

// readSegment parses one segment into rec. It reports torn=true when the
// segment ends in an unreadable frame; for a final segment it also
// records the tear position in tr (so Open can seal it), while for a
// non-final segment the caller decides whether the tear is tolerable.
func readSegment(vfs storage.VFS, index uint64, final bool, rec *Recovered, tr *tear) (torn bool, err error) {
	name := segmentName(index)
	f, err := vfs.Open(name)
	if err != nil {
		return false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return false, fmt.Errorf("wal: reading %s: %w", name, err)
	}
	if len(buf) < segHeaderSize || string(buf[:8]) != segMagic || buf[8] != segVersion {
		if final {
			// A header cut short by a crash during segment creation: the
			// segment holds nothing durable.
			*tr = tear{found: true, index: index, offset: 0}
			return true, nil
		}
		return false, fmt.Errorf("wal: segment %s has a bad header", name)
	}
	if got := uint64(buf[12])<<24 | uint64(buf[13])<<16 | uint64(buf[14])<<8 | uint64(buf[15]); got != index&0xffffffff {
		// An intact header whose embedded index disagrees with the file
		// name: a segment copied or restored under the wrong name. Never
		// a torn creation (those fail the checks above), so never sealed
		// over — replaying it in the wrong order could corrupt recovery.
		return false, fmt.Errorf("wal: segment %s header claims index %d (restored under the wrong name?)", name, got)
	}
	off := segHeaderSize
	for off < len(buf) {
		r, n, derr := decodeFrame(buf[off:])
		if derr != nil {
			if final {
				// Torn tail: everything before it is intact. Report the
				// tear so Open can seal it with a segment-end mark before
				// this segment stops being the final one.
				*tr = tear{found: true, index: index, offset: int64(off)}
			}
			return true, nil
		}
		switch r.Op {
		case OpSegmentEnd:
			// The tail past this mark was torn in a previous incarnation
			// and sealed; ignore it.
			return false, nil
		case OpCheckpoint:
			// Everything logged before a committed consistency point is
			// already durable in the read store; drop it.
			rec.Records = rec.Records[:0]
			rec.Cuts = rec.Cuts[:0]
			rec.MarkCP = r.CP
		case OpCut:
			// A checkpoint froze the write stores here; whether it went
			// on to commit is not knowable from the log alone (a
			// committed checkpoint normally retires everything before
			// the cut, but a crash can beat the retirement). Keep every
			// record and report the boundary: the engine compares the
			// cut's CP against the manifest to decide.
			rec.Cuts = append(rec.Cuts, CutMark{Index: len(rec.Records), CP: r.CP})
		default:
			rec.Records = append(rec.Records, r)
		}
		off += n
	}
	return false, nil
}

// sealTear stamps a durable segment-end mark over a torn tail, keeping
// the tear terminal once the segment is no longer the final one. A tear
// at offset 0 means the header itself never became durable; the whole
// segment is rewritten as an empty sealed one.
func sealTear(vfs storage.VFS, tr tear) error {
	name := segmentName(tr.index)
	f, err := vfs.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf []byte
	if tr.offset == 0 {
		buf = encodeSegHeader(tr.index)
	}
	buf = appendFrame(buf, Record{Op: OpSegmentEnd})
	if _, err := f.WriteAt(buf, tr.offset); err != nil {
		return fmt.Errorf("wal: sealing torn segment %s: %w", name, err)
	}
	// The seal must be durable in every mode: an unsynced seal could
	// vanish in a crash after later segments became durable, reviving the
	// "torn tail in a non-final segment" corruption error.
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing sealed segment %s: %w", name, err)
	}
	return nil
}

// RemoveAll deletes every segment file in vfs. The engine uses it to
// retire leftover segments when running in CheckpointOnly mode after a
// Buffered or Sync incarnation.
func RemoveAll(vfs storage.VFS) error {
	segs, err := listSegments(vfs)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if err := vfs.Remove(segmentName(idx)); err != nil && !errors.Is(err, storage.ErrNotExist) {
			return err
		}
	}
	return nil
}
