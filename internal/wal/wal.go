// Package wal implements Backlog's group-committed write-ahead log.
//
// The paper makes back-reference updates durable only at consistency
// points: everything buffered in the write stores since the last
// checkpoint is lost on a crash, exactly like file-system state past the
// last consistency point (Section 5.4 assumes the file system's own
// journal replays the lost operations). This package closes that gap for
// deployments without such a journal: reference updates are appended to a
// checksummed, length-prefixed log before they enter the write stores, and
// the engine replays the log tail on open.
//
// # Record format
//
// Each record is framed as a 4-byte big-endian payload length, a 4-byte
// CRC-32C of the payload, and the payload itself (an op byte — AddRef,
// RemoveRef, Relocate, or a Checkpoint mark — followed by the op's fields
// as big-endian uint64s). The log is a sequence of segments
// (wal-<index>.seg, rotated at Options.SegmentBytes) so that truncation
// after a checkpoint is file deletion, not in-place rewriting. Recovery
// tolerates a torn final record: a crash mid-append costs only the record
// that was never acknowledged.
//
// # Group commit
//
// Append is safe for concurrent use and group-commits: the first appender
// to find no flush in flight becomes the leader, takes the entire pending
// buffer, and writes it with one WriteAt (plus one Sync when the log is in
// Sync mode) while later appenders buffer behind it and wait on the flush
// notification. When the leader finishes it wakes the waiters; one of them
// becomes the next leader and flushes everything that accumulated in the
// meantime. Under W concurrent writers one fsync therefore covers O(W)
// appends, which is what makes per-operation durability affordable on the
// sharded write path (see BenchmarkWALAppend and the fsimbench "wal"
// experiment).
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
)

// Durability selects when reference updates become crash-durable.
type Durability int

const (
	// CheckpointOnly disables the log: updates are durable only at
	// consistency points, the paper's behavior. Buffered references are
	// discarded on crash or Close.
	CheckpointOnly Durability = iota
	// Buffered appends every update to the log without fsync. A clean
	// Close preserves everything; a crash may lose updates since the last
	// segment sync, but never corrupts the database.
	Buffered
	// Sync group-commits every append: Append returns only after the
	// record (batched with its concurrent peers) is fsynced. An
	// acknowledged update survives any crash.
	Sync
)

func (d Durability) String() string {
	switch d {
	case CheckpointOnly:
		return "checkpoint-only"
	case Buffered:
		return "buffered"
	case Sync:
		return "sync"
	default:
		return fmt.Sprintf("Durability(%d)", int(d))
	}
}

// ParseDurability parses a -durability flag value.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "checkpoint", "checkpoint-only", "checkpointonly":
		return CheckpointOnly, nil
	case "buffered":
		return Buffered, nil
	case "sync":
		return Sync, nil
	default:
		return 0, fmt.Errorf("wal: unknown durability %q (want checkpoint-only, buffered, or sync)", s)
	}
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// DefaultSegmentBytes is the default segment rotation threshold.
const DefaultSegmentBytes = 4 << 20

// Options configures Open.
type Options struct {
	// Durability must be Buffered or Sync; CheckpointOnly callers should
	// not open a log at all (use Recover/RemoveAll).
	Durability Durability
	// SegmentBytes rotates the active segment once it grows past this
	// size (DefaultSegmentBytes if zero).
	SegmentBytes int64

	// Optional observability hooks; nil histograms record nothing and add
	// no timing overhead. AppendHist sees each record's append latency in
	// nanoseconds — enqueue to written (Buffered) or fsynced (Sync),
	// including time spent waiting behind the group-commit leader.
	// FlushHist sees each physical flush's I/O duration (one WriteAt plus,
	// in Sync mode, one fsync). BatchHist sees the number of records each
	// flush covered — the group-commit batch-size distribution.
	AppendHist *obs.Histogram
	FlushHist  *obs.Histogram
	BatchHist  *obs.Histogram
}

// Stats counts log activity. All counters are cumulative.
type Stats struct {
	Appends   uint64 // records appended
	Batches   uint64 // physical flushes (group commits)
	Segments  uint64 // segments created, including the initial one
	Truncates uint64 // checkpoint truncations
	Bytes     int64  // record bytes appended
}

// Log is an append-only segmented log. All methods are safe for
// concurrent use.
type Log struct {
	vfs      storage.VFS
	syncEach bool
	segBytes int64

	mu   sync.Mutex
	cond *sync.Cond
	// seq numbers appended records; done is the highest seq whose flush
	// completed. Append waits until done covers its own seq.
	seq, done uint64
	pending   []byte
	flushing  bool
	closed    bool
	err       error // sticky flush error; cleared by Truncate

	seg      storage.File
	segIndex uint64
	segSize  int64
	names    []string // live segment names, oldest first, active last

	// pendingRecs counts the records in pending, so flushLocked can report
	// the batch size it covered. Guarded by mu like pending itself.
	pendingRecs int

	appendHist *obs.Histogram
	flushHist  *obs.Histogram
	batchHist  *obs.Histogram

	stats Stats
}

// Open recovers the existing log in vfs (see Recover) and opens a fresh
// active segment for appending. Appends never extend a recovered segment:
// its tail may be torn, and writing past a torn record would hide it from
// the next recovery. Recovered segments are retired by the first
// Truncate.
func Open(vfs storage.VFS, opts Options) (*Log, Recovered, error) {
	if opts.Durability == CheckpointOnly {
		return nil, Recovered{}, errors.New("wal: Open requires Buffered or Sync durability")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	// The recovery scan (and tear sealing) is startup I/O; appends from
	// here on are WAL I/O. Both taggings are no-ops on unattributed VFSs.
	rvfs := storage.TagVFS(vfs, storage.SrcRecovery)
	rec, tr, segs, err := recoverLog(rvfs)
	if err != nil {
		return nil, rec, err
	}
	if tr.found {
		// Seal the torn tail before this segment stops being the final
		// one: once newer segments exist, a raw tear would read as
		// corruption and fail every future recovery.
		if err := sealTear(rvfs, tr); err != nil {
			return nil, rec, err
		}
	}
	l := &Log{
		vfs:        storage.TagVFS(vfs, storage.SrcWAL),
		syncEach:   opts.Durability == Sync,
		segBytes:   opts.SegmentBytes,
		appendHist: opts.AppendHist,
		flushHist:  opts.FlushHist,
		batchHist:  opts.BatchHist,
	}
	l.cond = sync.NewCond(&l.mu)
	next := uint64(1)
	for _, idx := range segs {
		l.names = append(l.names, segmentName(idx))
		if idx >= next {
			next = idx + 1
		}
	}
	if err := l.startSegmentLocked(next); err != nil {
		return nil, rec, err
	}
	return l, rec, nil
}

// startSegmentLocked creates segment index and makes it active. Callers
// hold l.mu (or have exclusive access during Open).
func (l *Log) startSegmentLocked(index uint64) error {
	name := segmentName(index)
	f, err := l.vfs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// The index is burned even if a later step fails: a retry (the next
	// Truncate) must allocate a fresh name, since Create is exclusive and
	// the best-effort Remove below may itself fail.
	l.segIndex = index
	fail := func(err error) error {
		f.Close()
		if rerr := l.vfs.Remove(name); rerr != nil && !errors.Is(rerr, storage.ErrNotExist) {
			// Leave the partial file for Open's recovery scan (it reads
			// as a torn creation and is sealed or retired there).
			_ = rerr
		}
		return err
	}
	if _, err := f.WriteAt(encodeSegHeader(index), 0); err != nil {
		return fail(fmt.Errorf("wal: writing segment header: %w", err))
	}
	// The segment's directory entry must be durable before appends into
	// it are acknowledged; file-content fsyncs alone do not persist the
	// entry on a real file system.
	if ds, ok := l.vfs.(storage.DirSyncer); ok {
		if err := ds.SyncDir(); err != nil {
			return fail(fmt.Errorf("wal: syncing directory for new segment: %w", err))
		}
	}
	if l.seg != nil {
		l.seg.Close()
	}
	l.seg = f
	l.segSize = segHeaderSize
	l.names = append(l.names, name)
	l.stats.Segments++
	return nil
}

// Append encodes r and appends it to the log, group-committed with any
// concurrent appenders. In Sync mode it returns once the record is
// durable; in Buffered mode once the record is written to the segment
// file. A non-nil error means the record's durability is unknown; the log
// refuses further appends until Truncate resets it.
func (l *Log) Append(r Record) error {
	if l.appendHist == nil {
		return l.append(r)
	}
	start := time.Now()
	err := l.append(r)
	l.appendHist.ObserveDuration(time.Since(start))
	return err
}

func (l *Log) append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	prev := len(l.pending)
	l.pending = appendFrame(l.pending, r)
	l.pendingRecs++
	l.seq++
	seq := l.seq
	l.stats.Appends++
	l.stats.Bytes += int64(len(l.pending) - prev)
	// The closed recheck matters: a Close that raced in while we waited
	// has synced and released the segment, and becoming leader now would
	// write behind the final sync. The straggling record is reported
	// ErrClosed instead.
	for l.done < seq && l.err == nil && !l.closed {
		if l.flushing {
			l.cond.Wait()
		} else {
			l.flushLocked()
		}
	}
	// Success is judged by this record's own batch, not the log's latest
	// state: a later batch may have failed (setting l.err) after ours was
	// already durable, and reporting that failure here would tell the
	// caller a durably-flushed record might be lost.
	if l.done >= seq {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return ErrClosed
}

// flushLocked writes everything pending in one WriteAt (+ Sync in Sync
// mode), releasing l.mu for the duration of the I/O so that concurrent
// appenders can buffer the next batch behind it. Called with l.mu held
// and l.flushing false; returns with l.mu held and l.flushing false.
func (l *Log) flushLocked() {
	if l.segSize >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			l.cond.Broadcast()
			return
		}
	}
	buf := l.pending
	l.pending = nil
	recs := l.pendingRecs
	l.pendingRecs = 0
	target := l.seq
	seg := l.seg
	off := l.segSize
	l.segSize += int64(len(buf))
	l.flushing = true
	l.mu.Unlock()

	var start time.Time
	if l.flushHist != nil {
		start = time.Now()
	}
	_, err := seg.WriteAt(buf, off)
	if err == nil && l.syncEach {
		err = seg.Sync()
	}
	if l.flushHist != nil {
		l.flushHist.ObserveDuration(time.Since(start))
	}

	l.mu.Lock()
	l.flushing = false
	if err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
	} else {
		l.done = target
		l.stats.Batches++
		l.batchHist.Observe(uint64(recs))
	}
	l.cond.Broadcast()
}

// rotateLocked closes the active segment and starts the next one. In
// Buffered mode the outgoing segment is synced first, so rotation bounds
// how much a crash can lose to roughly one segment.
func (l *Log) rotateLocked() error {
	if !l.syncEach {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: syncing rotated segment: %w", err)
		}
	}
	return l.startSegmentLocked(l.segIndex + 1)
}

// Cut rotates to a fresh segment headed by a cut mark and returns a token
// for Retire: the engine calls it at the instant a checkpoint freezes the
// write stores, so that every record appended from then on — updates for
// the NEXT consistency point, racing the flush — lands past the cut and
// survives the retirement of the segments the checkpoint covers. Cut also
// drops any pending (never-acknowledged) buffer and clears the sticky
// flush error: records whose logging failed were still applied to the
// write stores, so they are frozen into the very flush this cut starts —
// their durability from here on is the checkpoint's business, which the
// engine tracks with its own sticky error across the flush.
//
// The caller must guarantee no Append is in flight — in the engine, Cut
// runs under the exclusive structural lock that excludes all updaters.
func (l *Log) Cut(cp uint64) (cut int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return 0, ErrClosed
	}
	l.err = nil
	l.pending = nil
	l.pendingRecs = 0
	l.done = l.seq
	if err := l.startSegmentLocked(l.segIndex + 1); err != nil {
		l.err = err
		return 0, err
	}
	frame := appendFrame(nil, Record{Op: OpCut, CP: cp})
	if _, err := l.seg.WriteAt(frame, l.segSize); err != nil {
		// A partial mark would put garbage under future appends; refuse
		// further appends until the next Cut rotates past it.
		l.err = fmt.Errorf("wal: writing cut mark: %w", err)
		return 0, l.err
	}
	l.segSize += int64(len(frame))
	if l.syncEach {
		// The mark is what lets recovery tolerate a torn, resurrected
		// predecessor segment; in Sync mode it must be durable before any
		// post-cut append is acknowledged.
		if err := l.seg.Sync(); err != nil {
			l.err = fmt.Errorf("wal: syncing cut mark: %w", err)
			return 0, l.err
		}
	}
	return len(l.names) - 1, nil
}

// Retire deletes the segments a Cut superseded, once the checkpoint that
// issued the Cut has committed: everything those segments guarded is now
// durable in the read store, while records appended during the flush live
// past the cut and are untouched. Safe to call concurrently with appends.
// On failure the not-yet-removed segments stay tracked, so a later Cut +
// Retire (or recovery's CP filter) still retires them.
func (l *Log) Retire(cut int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if cut < 0 || cut >= len(l.names) {
		return fmt.Errorf("wal: retire cut %d out of range (%d segments)", cut, len(l.names))
	}
	old := l.names[:cut]
	for i, name := range old {
		if err := l.vfs.Remove(name); err != nil && !errors.Is(err, storage.ErrNotExist) {
			l.names = append(append([]string(nil), old[i:]...), l.names[cut:]...)
			return err
		}
	}
	l.names = append([]string(nil), l.names[cut:]...)
	l.stats.Truncates++
	return nil
}

// Truncate retires the log after a committed checkpoint: a fresh segment
// opens with a checkpoint mark for cp, every older segment is deleted, and
// any sticky flush error is cleared (the data whose logging failed is now
// durable via the checkpoint itself). The caller must guarantee no Append
// is in flight — it assumes the exclusive structural lock that excludes
// all updaters. The engine's checkpoint path uses Cut + Retire instead,
// which tolerates appends racing the flush; Truncate remains for callers
// that quiesce appends across the whole checkpoint.
func (l *Log) Truncate(cp uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	// Anything still pending was never acknowledged, and the checkpoint
	// that triggered this truncation flushed the write stores it was
	// applied to; drop it along with any sticky error.
	l.err = nil
	l.pending = nil
	l.pendingRecs = 0
	l.done = l.seq

	// On any failure below, the old segment names are restored so the
	// next successful Truncate still retires them; otherwise they would
	// sit on disk untracked until the next Open's recovery scan.
	old := append([]string(nil), l.names...)
	l.names = nil
	restore := func(err error) error {
		l.names = append(old, l.names...)
		l.err = err
		return err
	}
	if err := l.startSegmentLocked(l.segIndex + 1); err != nil {
		return restore(err)
	}
	frame := appendFrame(nil, Record{Op: OpCheckpoint, CP: cp})
	if _, err := l.seg.WriteAt(frame, l.segSize); err != nil {
		return restore(fmt.Errorf("wal: writing checkpoint mark: %w", err))
	}
	l.segSize += int64(len(frame))
	if l.syncEach {
		// Make the mark durable before deleting the segments it
		// obsoletes; a crash in between leaves extra segments whose
		// records replay as no-ops (their CPs precede the manifest's).
		if err := l.seg.Sync(); err != nil {
			return restore(fmt.Errorf("wal: syncing checkpoint mark: %w", err))
		}
	}
	for i, name := range old {
		if err := l.vfs.Remove(name); err != nil && !errors.Is(err, storage.ErrNotExist) {
			old = old[i:] // keep the not-yet-removed tail tracked
			return restore(err)
		}
	}
	l.stats.Truncates++
	return nil
}

// Close drains pending appends, syncs the active segment (so a clean
// shutdown in Buffered mode loses nothing), and releases it. It returns
// the log's sticky error, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return l.err
	}
	if len(l.pending) > 0 && l.err == nil {
		l.flushLocked()
	}
	if l.err == nil && !l.syncEach {
		if err := l.seg.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync on close: %w", err)
		}
	}
	l.closed = true
	l.seg.Close()
	l.cond.Broadcast()
	return l.err
}

// Err returns the log's sticky flush error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// SegmentCount returns the number of live segment files (recovered +
// active).
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.names)
}
