package wal

import (
	"errors"
	"io"
	"sync"
	"testing"

	"github.com/backlogfs/backlog/internal/storage"
)

func addRec(i int) Record {
	return Record{Op: OpAddRef, Block: uint64(i), Inode: uint64(i * 2), Offset: uint64(i % 7), CP: uint64(i/10 + 1), Length: 1}
}

func mustOpen(t *testing.T, vfs storage.VFS, d Durability) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(vfs, Options{Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	vfs := storage.NewMemFS()
	l, rec := mustOpen(t, vfs, Sync)
	if rec.Found {
		t.Fatal("found segments in a fresh VFS")
	}
	want := []Record{
		addRec(1),
		{Op: OpRemoveRef, Block: 2, Inode: 4, CP: 1, Length: 1},
		{Op: OpRelocate, Block: 5, NewBlock: 9, CP: 2},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || len(got.Records) != len(want) {
		t.Fatalf("recovered %d records (found=%v), want %d", len(got.Records), got.Found, len(want))
	}
	for i := range want {
		if got.Records[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got.Records[i], want[i])
		}
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := Record{Op: OpAddRef, Block: uint64(w)<<32 | uint64(i), Inode: uint64(w), Offset: uint64(i), CP: 1, Length: 1}
				if err := l.Append(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Batches == 0 || st.Batches > st.Appends {
		t.Fatalf("batches = %d out of range (appends %d)", st.Batches, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, writers*perWriter)
	for _, r := range rec.Records {
		seen[r.Block] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("recovered %d distinct records, want %d", len(seen), writers*perWriter)
	}
}

func TestRotation(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _, err := Open(vfs, Options{Durability: Sync, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50 // 57-byte frames: several rotations at 256-byte segments
	for i := 0; i < n; i++ {
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("segments = %d, want rotation", l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if r.Block != uint64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func TestTruncateRetiresSegments(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _, err := Open(vfs, Options{Durability: Sync, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("segments after truncate = %d, want 1", got)
	}
	segs, err := listSegments(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segment files after truncate = %d, want 1", len(segs))
	}
	if err := l.Append(addRec(100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.MarkCP != 4 {
		t.Fatalf("MarkCP = %d, want 4", rec.MarkCP)
	}
	if len(rec.Records) != 1 || rec.Records[0].Block != 100 {
		t.Fatalf("post-mark records = %+v", rec.Records)
	}
}

func TestCrashDurabilityByMode(t *testing.T) {
	t.Run("sync survives crash", func(t *testing.T) {
		vfs := storage.NewMemFS()
		l, _ := mustOpen(t, vfs, Sync)
		for i := 0; i < 10; i++ {
			if err := l.Append(addRec(i)); err != nil {
				t.Fatal(err)
			}
		}
		vfs.Crash() // no Close
		rec, err := Recover(vfs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Records) != 10 {
			t.Fatalf("recovered %d records, want 10", len(rec.Records))
		}
	})
	t.Run("buffered loses crash, keeps close", func(t *testing.T) {
		vfs := storage.NewMemFS()
		l, _ := mustOpen(t, vfs, Buffered)
		for i := 0; i < 10; i++ {
			if err := l.Append(addRec(i)); err != nil {
				t.Fatal(err)
			}
		}
		vfs.Crash()
		rec, err := Recover(vfs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Records) != 0 {
			t.Fatalf("unsynced buffered records survived a crash: %d", len(rec.Records))
		}

		vfs2 := storage.NewMemFS()
		l2, _ := mustOpen(t, vfs2, Buffered)
		for i := 0; i < 10; i++ {
			if err := l2.Append(addRec(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l2.Close(); err != nil { // Close syncs
			t.Fatal(err)
		}
		vfs2.Crash()
		rec2, err := Recover(vfs2)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec2.Records) != 10 {
			t.Fatalf("cleanly closed buffered log lost records: %d of 10", len(rec2.Records))
		}
	})
}

func TestTornTailIsTolerated(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	const n = 5
	for i := 0; i < n; i++ {
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	name := segmentName(segs[0])
	f, err := vfs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	f.Close()

	// Rebuild the log with its final record cut mid-frame: the expected
	// on-disk state after a crash during the last group-commit write.
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize + 3} {
		tornVFS := storage.NewMemFS()
		tf, err := tornVFS.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tf.WriteAt(buf[:len(buf)-cut], 0); err != nil {
			t.Fatal(err)
		}
		if err := tf.Sync(); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(tornVFS)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec.Records) != n-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), n-1)
		}
	}
}

// TestTornTailSealedAtOpen is the regression test for a recovery
// livelock: a torn tail is tolerated while its segment is final, but
// Open appends into a NEW segment — so without sealing, the next
// recovery would find the tear in a non-final segment and reject the
// whole log as corrupt forever.
func TestTornTailSealedAtOpen(t *testing.T) {
	src := storage.NewMemFS()
	l, _ := mustOpen(t, src, Sync)
	const n = 4
	for i := 0; i <= n; i++ { // n survivors + one record to tear
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(src)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	name := segmentName(segs[0])
	f, err := src.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	whole := make([]byte, size)
	if _, err := f.ReadAt(whole, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	f.Close()

	// Plant the log with its final record cut mid-frame, as a crash
	// during the last group-commit write leaves it.
	vfs := storage.NewMemFS()
	tf, err := vfs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.WriteAt(whole[:len(whole)-20], 0); err != nil {
		t.Fatal(err)
	}
	if err := tf.Sync(); err != nil {
		t.Fatal(err)
	}

	// First reopen tolerates the tear and seals it.
	l2, rec := mustOpen(t, vfs, Sync)
	if len(rec.Records) != n {
		t.Fatalf("first recovery: %d records, want %d", len(rec.Records), n)
	}
	if err := l2.Append(addRec(50)); err != nil {
		t.Fatal(err)
	}
	vfs.Crash()

	// Second recovery: the torn segment is no longer final; only the seal
	// keeps it readable.
	l3, rec2 := mustOpen(t, vfs, Sync)
	if len(rec2.Records) != n+1 {
		t.Fatalf("second recovery: %d records, want %d", len(rec2.Records), n+1)
	}
	if rec2.Records[n].Block != 50 {
		t.Fatalf("second recovery order: %+v", rec2.Records)
	}
	// And a clean close (no new appends) must also stay recoverable.
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	rec3, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != n+1 {
		t.Fatalf("third recovery: %d records, want %d", len(rec3.Records), n+1)
	}
}

// buildSegment writes a synced segment file from raw parts.
func buildSegment(t *testing.T, vfs storage.VFS, index uint64, recs []Record, tornBytes []byte) {
	t.Helper()
	buf := encodeSegHeader(index)
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	buf = append(buf, tornBytes...)
	f, err := vfs.Create(segmentName(index))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestResurrectedTornSegmentToleratedBeforeMark covers a crash that beats
// the (un-fsynced) removal of a retired segment: the segment reappears,
// torn mid-log, in a non-final position — tolerable exactly because the
// following segment opens with a checkpoint mark that discards its
// records anyway. Without a mark, the same shape is real corruption.
func TestResurrectedTornSegmentToleratedBeforeMark(t *testing.T) {
	torn := appendFrame(nil, addRec(1))[:20] // half a frame

	vfs := storage.NewMemFS()
	buildSegment(t, vfs, 1, []Record{addRec(1), addRec(2)}, torn)
	buildSegment(t, vfs, 2, []Record{{Op: OpCheckpoint, CP: 5}, addRec(7)}, nil)
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatalf("resurrected retired segment rejected: %v", err)
	}
	if rec.MarkCP != 5 || len(rec.Records) != 1 || rec.Records[0].Block != 7 {
		t.Fatalf("recovered %+v", rec)
	}

	// Same tear, but the next segment does NOT open with a mark (a
	// rotation successor): that is genuine mid-log corruption.
	vfs2 := storage.NewMemFS()
	buildSegment(t, vfs2, 1, []Record{addRec(1)}, torn)
	buildSegment(t, vfs2, 2, []Record{addRec(7)}, nil)
	if _, err := Recover(vfs2); err == nil {
		t.Fatal("torn mid-log segment without a following mark recovered without error")
	}
}

func TestCorruptMiddleSegmentIsAnError(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _, err := Open(vfs, Options{Durability: Sync, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, have %d", len(segs))
	}
	f, err := vfs.Open(segmentName(segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, segHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Recover(vfs); err == nil {
		t.Fatal("corrupt non-final segment recovered without error")
	}
}

func TestAppendAfterFlushErrorAndTruncateReset(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	if err := l.Append(addRec(0)); err != nil {
		t.Fatal(err)
	}
	st := vfs.Stats()
	vfs.SetFailurePlan(storage.FailurePlan{FailAfterPageWrites: st.PageWrites})
	if err := l.Append(addRec(1)); err == nil {
		t.Fatal("append succeeded despite injected write failure")
	}
	vfs.SetFailurePlan(storage.FailurePlan{})
	if err := l.Append(addRec(2)); err == nil {
		t.Fatal("append succeeded on a failed log")
	}
	if l.Err() == nil {
		t.Fatal("no sticky error")
	}
	// A committed checkpoint makes the lost records durable elsewhere;
	// Truncate resets the log for the next interval.
	if err := l.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec(3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0].Block != 3 {
		t.Fatalf("records after reset = %+v", rec.Records)
	}
	if rec.MarkCP != 1 {
		t.Fatalf("MarkCP = %d, want 1", rec.MarkCP)
	}
}

func TestOpenReplaysAcrossReopen(t *testing.T) {
	vfs := storage.NewMemFS()
	l, _ := mustOpen(t, vfs, Sync)
	for i := 0; i < 3; i++ {
		if err := l.Append(addRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	vfs.Crash()

	// Reopen: recovery surfaces the three records, new appends land in a
	// fresh segment, and both generations survive until Truncate.
	l2, rec := mustOpen(t, vfs, Sync)
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Records))
	}
	if err := l2.Append(addRec(7)); err != nil {
		t.Fatal(err)
	}
	vfs.Crash()
	rec2, err := Recover(vfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 4 {
		t.Fatalf("recovered %d records after second crash, want 4", len(rec2.Records))
	}
}
