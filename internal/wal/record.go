package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op is a log record type.
type Op uint8

const (
	// OpAddRef logs that a reference became live at CP.
	OpAddRef Op = 1
	// OpRemoveRef logs that a reference ceased to be live at CP.
	OpRemoveRef Op = 2
	// OpRelocate logs a block relocation: every back reference of Block
	// was transplanted onto NewBlock. CP tags the consistency point the
	// relocation will be flushed under.
	OpRelocate Op = 3
	// OpCheckpoint marks a committed consistency point: every record
	// logged before the mark is durable in the read store. Truncate writes
	// one at the head of each fresh segment.
	OpCheckpoint Op = 4
	// OpSegmentEnd seals a segment: recovery stops reading the segment at
	// the mark, in any position. Open stamps one over a torn tail before
	// starting a fresh segment, so the tear stays terminal even after the
	// segment stops being the final one (where torn bytes would otherwise
	// read as corruption).
	OpSegmentEnd Op = 5
	// OpCut heads the segment a Cut opens when a checkpoint freezes the
	// write stores. Unlike OpCheckpoint it promises nothing about
	// durability — the checkpoint has not committed yet — so recovery
	// keeps every record logged before it and replays records strictly by
	// their CP tags. Its only structural role is the same one a
	// Truncate-written OpCheckpoint plays: marking its segment as one that
	// legitimately follows a retired (possibly torn) predecessor.
	OpCut Op = 6
)

func (op Op) String() string {
	switch op {
	case OpAddRef:
		return "addref"
	case OpRemoveRef:
		return "removeref"
	case OpRelocate:
		return "relocate"
	case OpCheckpoint:
		return "checkpoint"
	case OpSegmentEnd:
		return "segment-end"
	case OpCut:
		return "cut"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Record is one logical log entry. Which fields are meaningful depends on
// Op: AddRef/RemoveRef use Block/Inode/Offset/Line/Length and CP;
// Relocate uses Block (the old block), NewBlock, and CP; Checkpoint uses
// CP only. The wal package deliberately does not import internal/core
// (core imports wal), so the reference identity is spelled out as plain
// fields rather than a core.Ref.
type Record struct {
	Op Op
	// CP is the consistency-point tag. Replay skips records whose CP is
	// not newer than the last committed checkpoint.
	CP       uint64
	Block    uint64
	Inode    uint64
	Offset   uint64
	Line     uint64
	Length   uint64
	NewBlock uint64
}

// Frame layout: a 4-byte big-endian payload length, a 4-byte CRC-32C of
// the payload, then the payload itself (op byte followed by the op's
// big-endian uint64 fields). The length prefix delimits records; the
// checksum detects torn and corrupt tails.
const (
	frameHeaderSize = 8
	// maxPayload bounds the length field so that a garbage tail cannot
	// make the reader attempt an absurd allocation.
	maxPayload = 1 << 10

	addRefPayload     = 1 + 6*8 // op + ref identity + cp
	relocatePayload   = 1 + 3*8 // op + old + new + cp
	checkpointPayload = 1 + 8   // op + cp
	segmentEndPayload = 1       // op only
	cutPayload        = 1 + 8   // op + cp being frozen
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn reports an incomplete or checksum-failing record — the expected
// state of a log tail after a crash mid-append. Recovery treats it as
// end-of-log in the final segment and as corruption anywhere else.
var errTorn = errors.New("wal: torn or corrupt record")

// appendFrame appends the encoded frame for r to dst and returns the
// extended slice.
func appendFrame(dst []byte, r Record) []byte {
	var plen int
	switch r.Op {
	case OpAddRef, OpRemoveRef:
		plen = addRefPayload
	case OpRelocate:
		plen = relocatePayload
	case OpCheckpoint:
		plen = checkpointPayload
	case OpSegmentEnd:
		plen = segmentEndPayload
	case OpCut:
		plen = cutPayload
	default:
		panic(fmt.Sprintf("wal: encoding unknown op %d", r.Op))
	}
	be := binary.BigEndian
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize+plen)...)
	payload := dst[start+frameHeaderSize:]
	payload[0] = byte(r.Op)
	switch r.Op {
	case OpAddRef, OpRemoveRef:
		be.PutUint64(payload[1:], r.Block)
		be.PutUint64(payload[9:], r.Inode)
		be.PutUint64(payload[17:], r.Offset)
		be.PutUint64(payload[25:], r.Line)
		be.PutUint64(payload[33:], r.Length)
		be.PutUint64(payload[41:], r.CP)
	case OpRelocate:
		be.PutUint64(payload[1:], r.Block)
		be.PutUint64(payload[9:], r.NewBlock)
		be.PutUint64(payload[17:], r.CP)
	case OpCheckpoint, OpCut:
		be.PutUint64(payload[1:], r.CP)
	case OpSegmentEnd:
		// op byte only
	}
	be.PutUint32(dst[start:], uint32(plen))
	be.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// decodeFrame decodes the first frame in b, returning the record and the
// number of bytes consumed. It returns errTorn when b holds an incomplete
// frame, a checksum mismatch, or an implausible header — all
// indistinguishable states of a tail cut mid-write.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, errTorn
	}
	be := binary.BigEndian
	plen := int(be.Uint32(b))
	if plen == 0 || plen > maxPayload {
		return Record{}, 0, errTorn
	}
	if len(b) < frameHeaderSize+plen {
		return Record{}, 0, errTorn
	}
	payload := b[frameHeaderSize : frameHeaderSize+plen]
	if crc32.Checksum(payload, crcTable) != be.Uint32(b[4:]) {
		return Record{}, 0, errTorn
	}
	r := Record{Op: Op(payload[0])}
	switch {
	case (r.Op == OpAddRef || r.Op == OpRemoveRef) && plen == addRefPayload:
		r.Block = be.Uint64(payload[1:])
		r.Inode = be.Uint64(payload[9:])
		r.Offset = be.Uint64(payload[17:])
		r.Line = be.Uint64(payload[25:])
		r.Length = be.Uint64(payload[33:])
		r.CP = be.Uint64(payload[41:])
	case r.Op == OpRelocate && plen == relocatePayload:
		r.Block = be.Uint64(payload[1:])
		r.NewBlock = be.Uint64(payload[9:])
		r.CP = be.Uint64(payload[17:])
	case r.Op == OpCheckpoint && plen == checkpointPayload:
		r.CP = be.Uint64(payload[1:])
	case r.Op == OpSegmentEnd && plen == segmentEndPayload:
		// no fields
	case r.Op == OpCut && plen == cutPayload:
		r.CP = be.Uint64(payload[1:])
	default:
		return Record{}, 0, errTorn
	}
	return r, frameHeaderSize + plen, nil
}
