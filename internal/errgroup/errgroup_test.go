package errgroup

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestWaitCollectsFirstError(t *testing.T) {
	var g Group
	errBoom := errors.New("boom")
	var ran atomic.Int32
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() error {
			ran.Add(1)
			if i == 3 {
				return errBoom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, errBoom) {
		t.Fatalf("Wait = %v, want %v", err, errBoom)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d goroutines, want 8", ran.Load())
	}
}

func TestWaitNilOnSuccess(t *testing.T) {
	var g Group
	for i := 0; i < 4; i++ {
		g.Go(func() error { return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

func TestZeroGroupWait(t *testing.T) {
	var g Group
	if err := g.Wait(); err != nil {
		t.Fatalf("empty Wait = %v, want nil", err)
	}
}
