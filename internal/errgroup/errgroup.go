// Package errgroup provides a minimal dependency-free analog of
// golang.org/x/sync/errgroup: a group of goroutines whose first error is
// collected and returned by Wait. The engine's parallel checkpoint flush
// fans each write-store shard out through a Group.
package errgroup

import "sync"

// Group runs a set of goroutines and reports the first non-nil error
// returned by any of them. The zero value is ready to use.
type Group struct {
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// Go runs fn in a new goroutine. The first error returned by any fn is
// remembered and returned by Wait; later errors are discarded.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every goroutine started with Go has returned, then
// returns the first error, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
