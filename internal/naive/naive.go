// Package naive implements the strawman back-reference design of paper
// Section 4.1: a single on-disk Conceptual table, updated in place.
//
// Every block allocation inserts a record; every deallocation performs a
// read-modify-write to stamp the record's "to" field. The paper reports
// that with this approach "the file system slowed down to a crawl after
// only a few hundred consistency points" — the table outgrows the cache
// and every operation turns into a random page read (and a deferred random
// page write at the next checkpoint). The ablation benchmark regenerates
// that curve against Backlog.
//
// The table is an update-in-place paged file sorted by record key, with an
// in-memory page directory and an LRU page cache. The directory itself is
// kept in memory (rebuilding it on open is not needed for the ablation).
package naive

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

const (
	recSize    = core.CombinedSize // identity + from + to
	perPage    = storage.PageSize / recSize
	splitRatio = 2 // pages split in half when full
)

// Tracker is the naive baseline; it implements fsim.RefTracker.
type Tracker struct {
	vfs  storage.VFS
	file storage.File

	// directory[i] is the smallest key on page i's lower bound; pages are
	// in key order. Entries reference page slots in the file.
	directory []dirEntry
	nextPage  int64

	cache      map[int64]*pageBuf
	cacheCap   int
	cacheClock []int64 // FIFO eviction order (approximation of LRU)

	stats Stats
}

type dirEntry struct {
	minKey []byte
	page   int64
}

type pageBuf struct {
	page  int64
	n     int
	data  []byte // n * recSize bytes
	dirty bool
}

// Stats counts baseline activity.
type Stats struct {
	Inserts     uint64
	Updates     uint64
	PageSplits  uint64
	Checkpoints uint64
}

// New creates a naive tracker storing its table in vfs. cacheBytes bounds
// the page cache (the paper's fsim experiments used 32 MB).
func New(vfs storage.VFS, cacheBytes int64) (*Tracker, error) {
	f, err := vfs.Create("conceptual.tbl")
	if err != nil {
		return nil, err
	}
	cap := int(cacheBytes / storage.PageSize)
	if cap < 4 {
		cap = 4
	}
	return &Tracker{
		vfs:      vfs,
		file:     f,
		cache:    make(map[int64]*pageBuf),
		cacheCap: cap,
	}, nil
}

// Stats returns a snapshot of counters.
func (t *Tracker) Stats() Stats { return t.stats }

// key returns the sort key of a record (identity prefix; from/to excluded
// so that alloc and dealloc find the same slot region).
func key(ref core.Ref) []byte {
	rec := core.EncodeCombined(core.CombinedRec{Ref: ref})
	return rec[:40]
}

// AddRef inserts a Conceptual record with to = Infinity.
func (t *Tracker) AddRef(ref core.Ref, cp uint64) {
	rec := core.EncodeCombined(core.CombinedRec{Ref: ref, From: cp, To: core.Infinity})
	t.insert(rec)
	t.stats.Inserts++
}

// RemoveRef performs the read-modify-write: find the live record for ref
// and stamp its to field.
func (t *Tracker) RemoveRef(ref core.Ref, cp uint64) {
	t.stats.Updates++
	k := key(ref)
	pi := t.pageFor(k)
	if pi < 0 {
		return // nothing recorded (shouldn't happen in a valid workload)
	}
	pb, err := t.load(t.directory[pi].page)
	if err != nil {
		return
	}
	for i := 0; i < pb.n; i++ {
		rec := pb.data[i*recSize : (i+1)*recSize]
		if !bytes.Equal(rec[:40], k) {
			continue
		}
		c := core.DecodeCombined(rec)
		if c.To == core.Infinity {
			c.To = cp
			copy(rec, core.EncodeCombined(c))
			pb.dirty = true
			return
		}
	}
}

// insert places rec into its sorted position, splitting pages as needed.
func (t *Tracker) insert(rec []byte) {
	if len(t.directory) == 0 {
		pb := &pageBuf{page: t.allocPage(), dirty: true}
		pb.data = append(pb.data, rec...)
		pb.n = 1
		t.install(pb)
		t.directory = []dirEntry{{minKey: append([]byte(nil), rec[:40]...), page: pb.page}}
		return
	}
	pi := t.pageFor(rec[:40])
	if pi < 0 {
		pi = 0
	}
	pb, err := t.load(t.directory[pi].page)
	if err != nil {
		return
	}
	// Insert sorted.
	pos := sort.Search(pb.n, func(i int) bool {
		return bytes.Compare(pb.data[i*recSize:(i+1)*recSize], rec) >= 0
	})
	pb.data = append(pb.data, make([]byte, recSize)...)
	copy(pb.data[(pos+1)*recSize:], pb.data[pos*recSize:pb.n*recSize])
	copy(pb.data[pos*recSize:], rec)
	pb.n++
	pb.dirty = true
	if pb.n >= perPage {
		t.split(pi, pb)
	}
	if pos == 0 {
		t.directory[pi].minKey = append(t.directory[pi].minKey[:0], rec[:40]...)
	}
}

// split divides a full page in two.
func (t *Tracker) split(pi int, pb *pageBuf) {
	half := pb.n / splitRatio
	right := &pageBuf{page: t.allocPage(), dirty: true}
	right.data = append(right.data, pb.data[half*recSize:pb.n*recSize]...)
	right.n = pb.n - half
	pb.data = pb.data[:half*recSize]
	pb.n = half
	pb.dirty = true
	t.install(right)
	entry := dirEntry{
		minKey: append([]byte(nil), right.data[:40]...),
		page:   right.page,
	}
	t.directory = append(t.directory, dirEntry{})
	copy(t.directory[pi+2:], t.directory[pi+1:])
	t.directory[pi+1] = entry
	t.stats.PageSplits++
}

// pageFor returns the directory index owning key k (last entry with
// minKey <= k).
func (t *Tracker) pageFor(k []byte) int {
	lo, hi := 0, len(t.directory)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.directory[mid].minKey, k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func (t *Tracker) allocPage() int64 {
	p := t.nextPage
	t.nextPage++
	return p
}

// load returns the page buffer, reading from storage on a cache miss.
func (t *Tracker) load(page int64) (*pageBuf, error) {
	if pb, ok := t.cache[page]; ok {
		return pb, nil
	}
	buf := make([]byte, storage.PageSize)
	if _, err := t.file.ReadAt(buf, page*storage.PageSize); err != nil {
		return nil, fmt.Errorf("naive: reading page %d: %w", page, err)
	}
	n := int(buf[0]) | int(buf[1])<<8
	if n > perPage {
		return nil, fmt.Errorf("naive: corrupt page %d", page)
	}
	pb := &pageBuf{page: page, n: n, data: buf[2 : 2+n*recSize]}
	t.install(pb)
	return pb, nil
}

// install caches a page, evicting (and writing back) old pages as needed.
func (t *Tracker) install(pb *pageBuf) {
	t.cache[pb.page] = pb
	t.cacheClock = append(t.cacheClock, pb.page)
	for len(t.cache) > t.cacheCap {
		victim := t.cacheClock[0]
		t.cacheClock = t.cacheClock[1:]
		v, ok := t.cache[victim]
		if !ok {
			continue
		}
		if v.dirty {
			_ = t.writeBack(v)
		}
		delete(t.cache, victim)
	}
}

func (t *Tracker) writeBack(pb *pageBuf) error {
	buf := make([]byte, storage.PageSize)
	buf[0] = byte(pb.n)
	buf[1] = byte(pb.n >> 8)
	copy(buf[2:], pb.data[:pb.n*recSize])
	if _, err := t.file.WriteAt(buf, pb.page*storage.PageSize); err != nil {
		return err
	}
	pb.dirty = false
	return nil
}

// Checkpoint writes back every dirty page and syncs — the naive design has
// no write buffering beyond the page cache, so a CP flushes scattered
// random pages instead of one sequential run.
func (t *Tracker) Checkpoint(cp uint64) error {
	for _, pb := range t.cache {
		if pb.dirty {
			if err := t.writeBack(pb); err != nil {
				return err
			}
		}
	}
	t.stats.Checkpoints++
	return t.file.Sync()
}

// Records returns the total number of records in the table (walking the
// directory; test helper).
func (t *Tracker) Records() (uint64, error) {
	var n uint64
	for _, d := range t.directory {
		pb, err := t.load(d.page)
		if err != nil {
			return 0, err
		}
		n += uint64(pb.n)
	}
	return n, nil
}

// QueryBlock returns the records of one block, for sanity tests.
func (t *Tracker) QueryBlock(block uint64) ([]core.CombinedRec, error) {
	k := key(core.Ref{Block: block})
	pi := t.pageFor(k)
	if pi < 0 {
		pi = 0
	}
	var out []core.CombinedRec
	for ; pi < len(t.directory); pi++ {
		pb, err := t.load(t.directory[pi].page)
		if err != nil {
			return nil, err
		}
		done := false
		for i := 0; i < pb.n; i++ {
			c := core.DecodeCombined(pb.data[i*recSize : (i+1)*recSize])
			if c.Block < block {
				continue
			}
			if c.Block > block {
				done = true
				break
			}
			out = append(out, c)
		}
		if done {
			break
		}
	}
	return out, nil
}
