package naive

import (
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/storage"
)

func ref(block, inode uint64) core.Ref {
	return core.Ref{Block: block, Inode: inode, Offset: 0, Line: 0, Length: 1}
}

func TestInsertAndComplete(t *testing.T) {
	fs := storage.NewMemFS()
	tr, err := New(fs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tr.AddRef(ref(10, 1), 3)
	tr.AddRef(ref(20, 2), 3)
	if err := tr.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	tr.RemoveRef(ref(10, 1), 5)
	if err := tr.Checkpoint(5); err != nil {
		t.Fatal(err)
	}
	recs, err := tr.QueryBlock(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].From != 3 || recs[0].To != 5 {
		t.Fatalf("block 10: %+v", recs)
	}
	recs, err = tr.QueryBlock(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].To != core.Infinity {
		t.Fatalf("block 20: %+v", recs)
	}
}

func TestManyRecordsSplitPages(t *testing.T) {
	fs := storage.NewMemFS()
	tr, err := New(fs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := uint64(0); i < n; i++ {
		tr.AddRef(ref(i*7%1000, i), i%50+1)
	}
	if err := tr.Checkpoint(60); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().PageSplits == 0 {
		t.Fatal("no page splits after 2000 inserts")
	}
	total, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("Records = %d, want %d", total, n)
	}
}

func TestWorksAsFsimTracker(t *testing.T) {
	vfs := storage.NewMemFS()
	tr, err := New(vfs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var _ fsim.RefTracker = tr
	sim := fsim.New(fsim.Config{Tracker: tr, Seed: 1})
	ino, _ := sim.CreateFile(0)
	if err := sim.WriteFile(0, ino, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sim.DeleteFile(0, ino); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Inserts != 10 || tr.Stats().Updates != 10 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

// TestIOGrowsWithTableSize demonstrates the paper's observation: once the
// table exceeds the cache, per-operation I/O climbs (reads on every
// operation), unlike Backlog's flat cost.
func TestIOGrowsWithTableSize(t *testing.T) {
	vfs := storage.NewMemFS()
	tr, err := New(vfs, 64<<10) // deliberately tiny cache: 16 pages
	if err != nil {
		t.Fatal(err)
	}
	measure := func(startBlock uint64) float64 {
		before := vfs.Stats()
		const ops = 2000
		for i := uint64(0); i < ops; i++ {
			tr.AddRef(ref((startBlock+i*131)%1_000_000, i), 1)
		}
		if err := tr.Checkpoint(1); err != nil {
			t.Fatal(err)
		}
		d := vfs.Stats().Sub(before)
		return float64(d.PageReads+d.PageWrites) / ops
	}
	early := measure(0)
	for round := uint64(1); round < 20; round++ {
		measure(round * 1000)
	}
	late := measure(999)
	if late <= early*1.5 {
		t.Fatalf("naive I/O did not degrade: early=%.3f late=%.3f I/Os per op", early, late)
	}
}
