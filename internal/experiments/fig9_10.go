package experiments

import (
	"fmt"
	"math/rand"

	"github.com/backlogfs/backlog/internal/workload"
)

// Fig9Config parameterizes the query-performance experiments (Figures 9
// and 10). The paper uses a 1000-CP workload, 8,192 queries per
// measurement, run lengths 1..1000+, and maintenance staleness 0..800 CPs;
// defaults here are scaled.
type Fig9Config struct {
	CPs      int
	OpsPerCP int
	Queries  int
	// RunLengths are the sorted-run sizes to measure.
	RunLengths []int
	// StalenessCPs lists "CPs since last maintenance" variants; -1 means
	// never maintained.
	StalenessCPs []int
	DedupRate    float64
	Seed         int64
}

// DefaultFig9Config returns the scaled default.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		CPs:          120,
		OpsPerCP:     1500,
		Queries:      2048,
		RunLengths:   []int{1, 10, 100, 1000},
		StalenessCPs: []int{0, 30, 60, 90, -1},
		DedupRate:    0.10,
		Seed:         1,
	}
}

// QueryPoint is one Figure 9 measurement.
type QueryPoint struct {
	RunLength     int
	StalenessCPs  int // -1 = never maintained
	QueriesPerSec float64
	ReadsPerQuery float64
	OwnersPerQry  float64
}

// Fig9Result holds all measured points.
type Fig9Result struct {
	Points []QueryPoint
}

// buildQueryDB runs the synthetic workload for cfg.CPs checkpoints,
// compacting so the database is exactly staleness CPs past its last
// maintenance at the end (staleness < 0 = never compacted). It returns the
// environment and the sorted list of allocated blocks.
func buildQueryDB(cfg Fig9Config, staleness int) (*Env, []uint64, error) {
	env, err := NewEnv(EnvConfig{DedupRate: cfg.DedupRate, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	wcfg := workload.DefaultSyntheticConfig(cfg.OpsPerCP)
	wcfg.Seed = cfg.Seed
	gen := workload.NewSynthetic(env.FS, wcfg)
	compactAt := -1
	if staleness >= 0 {
		compactAt = cfg.CPs - staleness
	}
	for i := 1; i <= cfg.CPs; i++ {
		if _, _, err := gen.RunCP(); err != nil {
			return nil, nil, err
		}
		if i == compactAt {
			env.Cat.ReapZombies()
			if err := env.Eng.Compact(); err != nil {
				return nil, nil, err
			}
		}
	}
	blocks := allocatedBlocks(env)
	if len(blocks) == 0 {
		return nil, nil, fmt.Errorf("experiments: workload left no allocated blocks")
	}
	return env, blocks, nil
}

func allocatedBlocks(env *Env) []uint64 {
	return env.FS.AllocatedBlocks()
}

// measureQueries issues total queries in sorted runs of runLength over the
// allocated-block list, with all caches dropped first (the paper clears
// internal and file system caches before each set, Section 6.4).
func measureQueries(env *Env, blocks []uint64, runLength, total int, seed int64) (QueryPoint, error) {
	env.Eng.ClearCaches()
	rng := rand.New(rand.NewSource(seed))
	m := startMeasure(env.VFS)
	issued := 0
	var owners int
	for issued < total {
		start := rng.Intn(len(blocks))
		for i := 0; i < runLength && issued < total; i++ {
			b := blocks[(start+i)%len(blocks)]
			os, err := env.Eng.Query(b)
			if err != nil {
				return QueryPoint{}, err
			}
			owners += len(os)
			issued++
		}
	}
	cpuNs, diskNs, io := m.stop()
	secs := float64(cpuNs+diskNs) / 1e9
	qp := QueryPoint{
		RunLength:     runLength,
		ReadsPerQuery: float64(io.PageReads) / float64(issued),
		OwnersPerQry:  float64(owners) / float64(issued),
	}
	if secs > 0 {
		qp.QueriesPerSec = float64(issued) / secs
	}
	return qp, nil
}

// RunFig9 measures query throughput and I/O reads per query across run
// lengths and maintenance staleness.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, stale := range cfg.StalenessCPs {
		env, blocks, err := buildQueryDB(cfg, stale)
		if err != nil {
			return nil, err
		}
		for _, rl := range cfg.RunLengths {
			qp, err := measureQueries(env, blocks, rl, cfg.Queries, cfg.Seed+int64(rl))
			if err != nil {
				return nil, err
			}
			qp.StalenessCPs = stale
			res.Points = append(res.Points, qp)
		}
	}
	return res, nil
}

// Fig10Config parameterizes the query-performance-over-time experiment.
type Fig10Config struct {
	CPs          int // total workload length
	MeasureEvery int // measure + maintain on this cadence
	OpsPerCP     int
	Queries      int
	RunLengths   []int
	DedupRate    float64
	Seed         int64
}

// DefaultFig10Config returns the scaled default.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		CPs:          150,
		MeasureEvery: 30,
		OpsPerCP:     1200,
		Queries:      1024,
		RunLengths:   []int{64, 128, 256, 512},
		DedupRate:    0.10,
		Seed:         1,
	}
}

// Fig10Point is one (CP, run length) measurement before or after the
// maintenance run at that CP.
type Fig10Point struct {
	CP            uint64
	RunLength     int
	QueriesPerSec float64
	ReadsPerQuery float64
}

// Fig10Result holds the before/after series.
type Fig10Result struct {
	Before []Fig10Point // measured ~MeasureEvery CPs after last maintenance
	After  []Fig10Point // measured immediately after maintenance
}

// RunFig10 interleaves workload execution, measurement just before
// maintenance, maintenance, and measurement just after — the paper's
// Figure 10 protocol (8,192 queries every 100 CPs around maintenance
// scheduled every 100 CPs).
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	env, err := NewEnv(EnvConfig{DedupRate: cfg.DedupRate, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	wcfg := workload.DefaultSyntheticConfig(cfg.OpsPerCP)
	wcfg.Seed = cfg.Seed
	gen := workload.NewSynthetic(env.FS, wcfg)
	res := &Fig10Result{}
	for i := 1; i <= cfg.CPs; i++ {
		cp, _, err := gen.RunCP()
		if err != nil {
			return nil, err
		}
		if i%cfg.MeasureEvery != 0 {
			continue
		}
		blocks := allocatedBlocks(env)
		if len(blocks) == 0 {
			continue
		}
		for _, rl := range cfg.RunLengths {
			qp, err := measureQueries(env, blocks, rl, cfg.Queries, cfg.Seed+int64(rl))
			if err != nil {
				return nil, err
			}
			res.Before = append(res.Before, Fig10Point{
				CP: cp, RunLength: rl,
				QueriesPerSec: qp.QueriesPerSec, ReadsPerQuery: qp.ReadsPerQuery,
			})
		}
		env.Cat.ReapZombies()
		if err := env.Eng.Compact(); err != nil {
			return nil, err
		}
		for _, rl := range cfg.RunLengths {
			qp, err := measureQueries(env, blocks, rl, cfg.Queries, cfg.Seed+int64(rl))
			if err != nil {
				return nil, err
			}
			res.After = append(res.After, Fig10Point{
				CP: cp, RunLength: rl,
				QueriesPerSec: qp.QueriesPerSec, ReadsPerQuery: qp.ReadsPerQuery,
			})
		}
	}
	return res, nil
}
