package experiments

import (
	"github.com/backlogfs/backlog/internal/workload"
)

// Fig5Config parameterizes Figures 5 and 6 (synthetic workload overhead
// and database size). The paper runs 9,000 CPs of 32,000 ops; defaults
// here are scaled (see EXPERIMENTS.md).
type Fig5Config struct {
	CPs         int
	OpsPerCP    int
	DedupRate   float64
	Seed        int64
	SampleEvery int
	// MaintenanceEvery compacts every N CPs (0 = never) — used by Fig 6.
	MaintenanceEvery int
}

// DefaultFig5Config returns the scaled default.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{CPs: 200, OpsPerCP: 2000, DedupRate: 0.10, Seed: 1, SampleEvery: 5}
}

// CPSample is one Figure 5 data point.
type CPSample struct {
	CP            uint64
	Ops           uint64  // block operations in the sampled window
	WritesPerOp   float64 // 4 KB page writes per block operation
	TimePerOpUS   float64 // total (CPU + modeled disk) microseconds per op
	CPUPerOpUS    float64 // CPU-only microseconds per op
	SpacePct      float64 // DB size as % of physical data (Figure 6)
	DBBytes       int64
	PhysicalBytes int64
}

// Fig5Result is the series for Figures 5 and 6.
type Fig5Result struct {
	Samples []CPSample
	// TotalOps is the total block operations issued.
	TotalOps uint64
}

// RunFig5 runs the synthetic workload and samples maintenance overhead
// (Figure 5) and space overhead (Figure 6, when MaintenanceEvery is set).
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	env, err := NewEnv(EnvConfig{DedupRate: cfg.DedupRate, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	wcfg := workload.DefaultSyntheticConfig(cfg.OpsPerCP)
	wcfg.Seed = cfg.Seed
	gen := workload.NewSynthetic(env.FS, wcfg)

	res := &Fig5Result{}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	var winOps uint64
	win := startMeasure(env.VFS)
	for i := 1; i <= cfg.CPs; i++ {
		cp, ops, err := gen.RunCP()
		if err != nil {
			return nil, err
		}
		winOps += ops
		res.TotalOps += ops

		if cfg.MaintenanceEvery > 0 && i%cfg.MaintenanceEvery == 0 {
			env.Cat.ReapZombies()
			if err := env.Eng.Compact(); err != nil {
				return nil, err
			}
		}
		if i%cfg.SampleEvery == 0 {
			cpuNs, diskNs, io := win.stop()
			phys := int64(env.FS.PhysicalBlocks()) * 4096
			db := env.Eng.SizeBytes()
			var spacePct float64
			if phys > 0 {
				spacePct = 100 * float64(db) / float64(phys)
			}
			sample := CPSample{
				CP:            cp,
				Ops:           winOps,
				DBBytes:       db,
				PhysicalBytes: phys,
				SpacePct:      spacePct,
			}
			if winOps > 0 {
				sample.WritesPerOp = float64(io.PageWrites) / float64(winOps)
				sample.CPUPerOpUS = float64(cpuNs) / 1e3 / float64(winOps)
				sample.TimePerOpUS = float64(cpuNs+diskNs) / 1e3 / float64(winOps)
			}
			res.Samples = append(res.Samples, sample)
			winOps = 0
			win = startMeasure(env.VFS)
		}
	}
	return res, nil
}

// Fig6Result groups Figure 6 series by maintenance interval.
type Fig6Result struct {
	// Series maps maintenance interval (0 = none) to its space-overhead
	// samples.
	Series map[int][]CPSample
}

// RunFig6 runs the synthetic workload under several maintenance cadences
// (the paper uses none / every 200 / every 100 CPs).
func RunFig6(cfg Fig5Config, maintenanceEvery []int) (*Fig6Result, error) {
	out := &Fig6Result{Series: map[int][]CPSample{}}
	for _, m := range maintenanceEvery {
		c := cfg
		c.MaintenanceEvery = m
		r, err := RunFig5(c)
		if err != nil {
			return nil, err
		}
		out.Series[m] = r.Samples
	}
	return out, nil
}
