package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// InterferenceConfig parameterizes the compaction-interference experiment.
// It is not a paper figure: the paper's prototype ran maintenance
// stop-the-world between measurement phases, whereas this reproduction's
// compaction merges against pinned run-set views outside the structural
// lock. The experiment quantifies the payoff — query latency while a full
// compaction runs in the background, versus idle.
type InterferenceConfig struct {
	// CPs and OpsPerCP size the ingest that builds up runs to compact.
	CPs      int
	OpsPerCP int
	// Blocks is the physical block space queried.
	Blocks int
	// Partitions is the number of hash partitions (compaction works
	// partition by partition, so more partitions mean finer interference
	// granularity).
	Partitions int
	// Queries is the number of measured queries in the idle phases. The
	// concurrent phase runs as many queries as fit in the compaction's
	// duration.
	Queries int
	Seed    int64
}

// DefaultInterferenceConfig returns the small-scale default.
func DefaultInterferenceConfig() InterferenceConfig {
	return InterferenceConfig{
		CPs:        48,
		OpsPerCP:   4000,
		Blocks:     1 << 16,
		Partitions: 8,
		Queries:    4000,
		Seed:       1,
	}
}

// InterferencePhase is one measured query phase.
type InterferencePhase struct {
	Phase         string // "idle (uncompacted)", "during compaction", "idle (compacted)"
	Queries       int
	QueriesPerSec float64
	MeanUS        float64
	P99US         float64
	MaxUS         float64
}

// InterferenceResult is the experiment's output.
type InterferenceResult struct {
	Phases []InterferencePhase
	// CompactionMS is the wall-clock duration of the background Compact.
	CompactionMS float64
	// RunsBefore and RunsAfter count live runs around the compaction.
	RunsBefore, RunsAfter int
}

// RunInterference ingests cfg.CPs checkpoints of references, measures
// query latency on the accumulated runs, then measures it again while a
// full compaction runs concurrently, and once more after it finishes.
// With the view-based read path the concurrent phase stays within a small
// factor of idle — queries pin a run-set view and never wait for the
// merge, which takes the structural lock only to install its result.
func RunInterference(cfg InterferenceConfig) (InterferenceResult, error) {
	var res InterferenceResult
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          core.NewMemCatalog(),
		Partitions:       cfg.Partitions,
		HashPartitioning: cfg.Partitions > 1,
	})
	if err != nil {
		return res, err
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	for cp := 1; cp <= cfg.CPs; cp++ {
		for i := 0; i < cfg.OpsPerCP; i++ {
			eng.AddRef(core.Ref{
				Block:  uint64(rng.Intn(cfg.Blocks)),
				Inode:  uint64(2 + cp),
				Offset: uint64(i),
				Length: 1,
			}, uint64(cp))
		}
		if err := eng.Checkpoint(uint64(cp)); err != nil {
			return res, err
		}
	}
	res.RunsBefore = eng.RunCount()

	queryOnce := func() (time.Duration, error) {
		b := uint64(rng.Intn(cfg.Blocks))
		t0 := time.Now()
		_, err := eng.Query(b)
		return time.Since(t0), err
	}
	measure := func(name string, lats []time.Duration, elapsed time.Duration) {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		ph := InterferencePhase{Phase: name, Queries: len(lats)}
		if len(lats) > 0 {
			ph.QueriesPerSec = float64(len(lats)) / elapsed.Seconds()
			ph.MeanUS = float64(sum.Microseconds()) / float64(len(lats))
			ph.P99US = float64(lats[len(lats)*99/100].Microseconds())
			ph.MaxUS = float64(lats[len(lats)-1].Microseconds())
		}
		res.Phases = append(res.Phases, ph)
	}

	// Phase 1: idle, runs accumulated and unmaintained.
	lats := make([]time.Duration, 0, cfg.Queries)
	t0 := time.Now()
	for i := 0; i < cfg.Queries; i++ {
		d, err := queryOnce()
		if err != nil {
			return res, err
		}
		lats = append(lats, d)
	}
	measure("idle (uncompacted)", lats, time.Since(t0))

	// Phase 2: the same query stream while Compact merges every partition
	// in the background.
	compactErr := make(chan error, 1)
	compactStart := time.Now()
	go func() { compactErr <- eng.Compact() }()
	lats = lats[:0]
	t0 = time.Now()
	var cerr error
	for done := false; !done; {
		// Always measure at least one query per iteration so the phase is
		// non-empty even when the compaction finishes immediately.
		d, err := queryOnce()
		if err != nil {
			return res, err
		}
		lats = append(lats, d)
		select {
		case cerr = <-compactErr:
			done = true
		default:
		}
	}
	res.CompactionMS = float64(time.Since(compactStart).Microseconds()) / 1e3
	measure("during compaction", lats, time.Since(t0))
	if cerr != nil {
		return res, fmt.Errorf("background compaction: %w", cerr)
	}
	res.RunsAfter = eng.RunCount()

	// Phase 3: idle again, now on compacted runs.
	lats = lats[:0]
	t0 = time.Now()
	for i := 0; i < cfg.Queries; i++ {
		d, err := queryOnce()
		if err != nil {
			return res, err
		}
		lats = append(lats, d)
	}
	measure("idle (compacted)", lats, time.Since(t0))
	return res, nil
}
