package experiments

import (
	"fmt"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// ExpireConfig parameterizes the expiry-vs-compaction experiment. It is
// not a paper figure: the paper reclaims deleted snapshots' records only
// through maintenance, which reads and rewrites every surviving record.
// The experiment quantifies what CP-windowed runs buy — two identical
// databases reclaim the same deleted snapshots, one by drop-based Expire
// (a manifest edit) and one by a full Compact, and the meter compares
// their I/O.
type ExpireConfig struct {
	// Epochs is the number of snapshot epochs. Each epoch's references are
	// added at one CP, removed at the next, retained by a per-epoch
	// snapshot, and sealed into their own CP-windowed Combined run by
	// tiered compaction.
	Epochs int
	// OpsPerEpoch is the number of references per epoch.
	OpsPerEpoch int
	// Blocks is the physical block space.
	Blocks int
	// Retain is how many of the newest epochs keep their snapshots; the
	// older Epochs-Retain epochs are deleted and reclaimed.
	Retain int
}

// DefaultExpireConfig returns the small-scale default.
func DefaultExpireConfig() ExpireConfig {
	return ExpireConfig{Epochs: 12, OpsPerEpoch: 2000, Blocks: 1 << 14, Retain: 2}
}

// ExpirePoint is one reclaim path's measured cost.
type ExpirePoint struct {
	Path             string // "expire" or "compact"
	RunsReclaimed    int
	RecordsReclaimed uint64
	BytesRead        int64
	BytesWritten     int64
	Millis           float64
}

// ExpireResult is the experiment's output.
type ExpireResult struct {
	Points []ExpirePoint
	// IORatio is the compaction path's total I/O bytes divided by the
	// expiry path's.
	IORatio float64
}

// buildExpireDB ingests cfg.Epochs sealed epochs into a fresh metered
// database. The workload is deterministic, so the two databases the
// experiment builds are byte-for-byte peers.
func buildExpireDB(cfg ExpireConfig) (*core.Engine, *core.MemCatalog, *storage.MemFS, error) {
	fs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: fs, Catalog: cat, WriteShards: 1})
	if err != nil {
		return nil, nil, nil, err
	}
	cp := uint64(1)
	for e := 0; e < cfg.Epochs; e++ {
		if err := cat.CreateSnapshot(0, cp); err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < cfg.OpsPerEpoch; i++ {
			eng.AddRef(core.Ref{
				Block:  uint64(i % cfg.Blocks),
				Inode:  uint64(e + 2),
				Offset: uint64(i),
				Length: 1,
			}, cp)
		}
		if err := eng.Checkpoint(cp); err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < cfg.OpsPerEpoch; i++ {
			eng.RemoveRef(core.Ref{
				Block:  uint64(i % cfg.Blocks),
				Inode:  uint64(e + 2),
				Offset: uint64(i),
				Length: 1,
			}, cp+1)
		}
		if err := eng.Checkpoint(cp + 1); err != nil {
			return nil, nil, nil, err
		}
		if err := eng.CompactTiered(); err != nil {
			return nil, nil, nil, err
		}
		cp += 2
	}
	return eng, cat, fs, nil
}

// RunExpire builds two identical databases of sealed epochs, deletes the
// same old snapshots in both, and reclaims them via Expire on one and
// Compact on the other, metering each path's I/O.
func RunExpire(cfg ExpireConfig) (ExpireResult, error) {
	var res ExpireResult
	if cfg.Retain < 1 || cfg.Retain >= cfg.Epochs {
		return res, fmt.Errorf("expire: Retain %d out of range [1, %d)", cfg.Retain, cfg.Epochs)
	}

	engE, catE, fsE, err := buildExpireDB(cfg)
	if err != nil {
		return res, err
	}
	defer engE.Close()
	engC, catC, fsC, err := buildExpireDB(cfg)
	if err != nil {
		return res, err
	}
	defer engC.Close()

	for e := 0; e < cfg.Epochs-cfg.Retain; e++ {
		snap := uint64(2*e + 1)
		if err := catE.DeleteSnapshot(0, snap); err != nil {
			return res, err
		}
		if err := catC.DeleteSnapshot(0, snap); err != nil {
			return res, err
		}
	}

	// Path 1: drop-based expiry.
	before := fsE.Stats()
	t0 := time.Now()
	est, err := engE.Expire()
	if err != nil {
		return res, err
	}
	d := fsE.Stats().Sub(before)
	res.Points = append(res.Points, ExpirePoint{
		Path:             "expire",
		RunsReclaimed:    est.RunsDropped,
		RecordsReclaimed: est.RecordsDropped,
		BytesRead:        d.BytesRead,
		BytesWritten:     d.BytesWritten,
		Millis:           float64(time.Since(t0).Microseconds()) / 1e3,
	})
	ioE := d.BytesRead + d.BytesWritten

	// Path 2: full compaction, which merges every run and purges the
	// unreachable records one by one.
	runsBefore := engC.RunCount()
	before = fsC.Stats()
	t0 = time.Now()
	if err := engC.Compact(); err != nil {
		return res, err
	}
	d = fsC.Stats().Sub(before)
	res.Points = append(res.Points, ExpirePoint{
		Path:             "compact",
		RunsReclaimed:    runsBefore - engC.RunCount(),
		RecordsReclaimed: engC.Stats().RecordsPurged,
		BytesRead:        d.BytesRead,
		BytesWritten:     d.BytesWritten,
		Millis:           float64(time.Since(t0).Microseconds()) / 1e3,
	})
	ioC := d.BytesRead + d.BytesWritten

	if ioE > 0 {
		res.IORatio = float64(ioC) / float64(ioE)
	}
	return res, nil
}
