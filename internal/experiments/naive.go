package experiments

import (
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/naive"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/workload"
)

// NaiveConfig parameterizes the Section 4.1 ablation: the naive
// read-modify-write Conceptual table versus Backlog, as the file system
// ages. The paper reports the naive approach "slowed down to a crawl
// after only a few hundred consistency points".
type NaiveConfig struct {
	CPs         int
	OpsPerCP    int
	CacheBytes  int64 // page cache for the naive table
	SampleEvery int
	Seed        int64
}

// DefaultNaiveConfig returns the scaled default. The cache is sized so the
// naive table outgrows it partway through the run, which is what happens
// at production scale with any fixed cache.
func DefaultNaiveConfig() NaiveConfig {
	return NaiveConfig{CPs: 120, OpsPerCP: 2000, CacheBytes: 256 << 10, SampleEvery: 5, Seed: 1}
}

// NaiveSample is one data point of either system.
type NaiveSample struct {
	CP          uint64
	IOPerOp     float64 // page reads + writes per block operation
	TimePerOpUS float64
}

// NaiveResult holds both series.
type NaiveResult struct {
	Naive   []NaiveSample
	Backlog []NaiveSample
}

// RunNaiveAblation runs the same synthetic workload against both trackers.
func RunNaiveAblation(cfg NaiveConfig) (*NaiveResult, error) {
	res := &NaiveResult{}

	// Naive run.
	{
		vfs := storage.NewMemFS()
		tr, err := naive.New(vfs, cfg.CacheBytes)
		if err != nil {
			return nil, err
		}
		fs := fsim.New(fsim.Config{Tracker: tr, DedupRate: 0.10, Seed: cfg.Seed})
		wcfg := workload.DefaultSyntheticConfig(cfg.OpsPerCP)
		wcfg.Seed = cfg.Seed
		gen := workload.NewSynthetic(fs, wcfg)
		samples, err := runSampled(vfs, fs, gen, cfg)
		if err != nil {
			return nil, err
		}
		res.Naive = samples
	}

	// Backlog run.
	{
		env, err := NewEnv(EnvConfig{DedupRate: 0.10, Seed: cfg.Seed, CacheBytes: cfg.CacheBytes})
		if err != nil {
			return nil, err
		}
		wcfg := workload.DefaultSyntheticConfig(cfg.OpsPerCP)
		wcfg.Seed = cfg.Seed
		gen := workload.NewSynthetic(env.FS, wcfg)
		samples, err := runSampled(env.VFS, env.FS, gen, cfg)
		if err != nil {
			return nil, err
		}
		res.Backlog = samples
	}
	return res, nil
}

func runSampled(vfs *storage.MemFS, fs *fsim.FS, gen *workload.Synthetic, cfg NaiveConfig) ([]NaiveSample, error) {
	var out []NaiveSample
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	var winOps uint64
	m := startMeasure(vfs)
	for i := 1; i <= cfg.CPs; i++ {
		cp, ops, err := gen.RunCP()
		if err != nil {
			return nil, err
		}
		winOps += ops
		if i%cfg.SampleEvery != 0 {
			continue
		}
		cpuNs, diskNs, io := m.stop()
		s := NaiveSample{CP: cp}
		if winOps > 0 {
			s.IOPerOp = float64(io.PageReads+io.PageWrites) / float64(winOps)
			s.TimePerOpUS = float64(cpuNs+diskNs) / 1e3 / float64(winOps)
		}
		out = append(out, s)
		winOps = 0
		m = startMeasure(vfs)
	}
	return out, nil
}
