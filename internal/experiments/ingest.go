package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// IngestConfig parameterizes the parallel-ingest scaling experiment. It is
// not a paper figure: the paper's prototype serialized updates behind the
// file system's consistency-point machinery, whereas this reproduction
// shards the write store so ingest scales with cores (see the engine
// docs). The experiment sweeps shard counts and reports throughput.
type IngestConfig struct {
	// Ops is the number of AddRef calls per configuration.
	Ops int
	// Goroutines is the number of concurrent writers (default GOMAXPROCS).
	Goroutines int
	// OpsPerCP is the checkpoint cadence (default 50k ops).
	OpsPerCP int
	// Shards lists the write-shard counts to sweep (default 1, 2, 4, ...,
	// GOMAXPROCS).
	Shards []int
}

// DefaultIngestConfig returns the small-scale default.
func DefaultIngestConfig() IngestConfig {
	return IngestConfig{Ops: 400_000, OpsPerCP: 50_000}
}

// IngestPoint is one swept configuration's result.
type IngestPoint struct {
	Shards    int
	Ops       int
	Nanos     int64
	OpsPerSec float64
	// Speedup is throughput relative to the single-shard configuration
	// when the sweep includes shards=1, else to the first configuration.
	Speedup float64
}

// RunIngest drives cfg.Ops AddRef calls from cfg.Goroutines goroutines
// against an in-memory engine for each shard count, with periodic
// parallel-flush checkpoints, and reports ingest throughput.
func RunIngest(cfg IngestConfig) ([]IngestPoint, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultIngestConfig().Ops
	}
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = runtime.GOMAXPROCS(0)
	}
	if cfg.OpsPerCP <= 0 {
		cfg.OpsPerCP = DefaultIngestConfig().OpsPerCP
	}
	if len(cfg.Shards) == 0 {
		for s := 1; s < runtime.GOMAXPROCS(0); s *= 2 {
			cfg.Shards = append(cfg.Shards, s)
		}
		cfg.Shards = append(cfg.Shards, runtime.GOMAXPROCS(0))
	}

	var points []IngestPoint
	for _, shards := range cfg.Shards {
		ops, nanos, err := ingestOnce(shards, cfg.Ops, cfg.Goroutines, cfg.OpsPerCP)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}
		points = append(points, IngestPoint{
			Shards:    shards,
			Ops:       ops,
			Nanos:     nanos,
			OpsPerSec: float64(ops) / (float64(nanos) / 1e9),
		})
	}
	baseline := points[0]
	for _, p := range points {
		if p.Shards == 1 {
			baseline = p
			break
		}
	}
	for i := range points {
		points[i].Speedup = points[i].OpsPerSec / baseline.OpsPerSec
	}
	return points, nil
}

// ingestOnce runs one swept configuration and returns the number of ops
// actually executed (cfg.Ops rounded down to a multiple of goroutines)
// and the elapsed nanoseconds.
func ingestOnce(shards, ops, goroutines, opsPerCP int) (int, int64, error) {
	eng, err := core.Open(core.Options{
		VFS:         storage.NewMemFS(),
		Catalog:     core.NewMemCatalog(),
		WriteShards: shards,
	})
	if err != nil {
		return 0, 0, err
	}
	var (
		wg       sync.WaitGroup
		counter  atomic.Uint64
		cp       atomic.Uint64
		cpMu     sync.Mutex
		errOnce  sync.Once
		firstErr error
	)
	cp.Store(1)
	perWorker := ops / goroutines
	if perWorker == 0 {
		return 0, 0, fmt.Errorf("ops=%d is less than goroutines=%d", ops, goroutines)
	}
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < perWorker; i++ {
				eng.AddRef(core.Ref{
					Block:  base + uint64(i),
					Inode:  uint64(w + 1),
					Offset: uint64(i),
					Length: 1,
				}, cp.Load())
				// Whichever worker crosses a checkpoint boundary drains
				// every shard with a parallel flush. cpMu serializes CP
				// allocation with the Checkpoint call so CP numbers
				// commit in order.
				if n := counter.Add(1); n%uint64(opsPerCP) == 0 {
					cpMu.Lock()
					next := cp.Load() + 1
					err := eng.Checkpoint(next)
					if err == nil {
						cp.Store(next)
					}
					cpMu.Unlock()
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	cpMu.Lock()
	err = eng.Checkpoint(cp.Load() + 1)
	cpMu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	return perWorker * goroutines, time.Since(start).Nanoseconds(), nil
}
