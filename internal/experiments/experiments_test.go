package experiments

import (
	"testing"
)

// The experiment tests use deliberately tiny configurations: they assert
// that each harness runs, produces well-formed series, and reproduces the
// qualitative shape the paper reports. The full-scale runs live behind
// cmd/fsimbench and cmd/btrfsbench.

func tinyFig5() Fig5Config {
	return Fig5Config{CPs: 30, OpsPerCP: 400, DedupRate: 0.10, Seed: 1, SampleEvery: 3}
}

func TestFig5OverheadFlat(t *testing.T) {
	res, err := RunFig5(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for i, s := range res.Samples {
		if s.Ops == 0 || s.WritesPerOp <= 0 {
			t.Fatalf("sample %d malformed: %+v", i, s)
		}
	}
	// The paper's key result: I/O overhead per op stays flat (no growth
	// with age). Compare the first third to the last third.
	third := len(res.Samples) / 3
	var early, late float64
	for i := 0; i < third; i++ {
		early += res.Samples[i].WritesPerOp
		late += res.Samples[len(res.Samples)-1-i].WritesPerOp
	}
	if late > early*2 {
		t.Fatalf("write overhead grew with age: early=%.4f late=%.4f", early/float64(third), late/float64(third))
	}
}

func TestFig6MaintenanceShrinksSpace(t *testing.T) {
	cfg := tinyFig5()
	res, err := RunFig6(cfg, []int{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	noMaint := res.Series[0]
	maint := res.Series[10]
	if len(noMaint) == 0 || len(maint) == 0 {
		t.Fatal("missing series")
	}
	lastNo := noMaint[len(noMaint)-1].SpacePct
	lastM := maint[len(maint)-1].SpacePct
	if lastM >= lastNo {
		t.Fatalf("maintenance did not reduce space overhead: %.2f%% vs %.2f%%", lastM, lastNo)
	}
}

func TestFig7TraceRuns(t *testing.T) {
	cfg := Fig7Config{Hours: 12, OpsPerHour: 150, CPsPerHour: 2, DedupRate: 0.10, Seed: 42}
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 12 || res.TotalOps == 0 {
		t.Fatalf("samples=%d ops=%d", len(res.Samples), res.TotalOps)
	}
}

func TestFig8MaintenanceCadences(t *testing.T) {
	cfg := Fig7Config{Hours: 16, OpsPerHour: 150, CPsPerHour: 2, DedupRate: 0.10, Seed: 42}
	res, err := RunFig8(cfg, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series[0]) != 16 || len(res.Series[4]) != 16 {
		t.Fatal("missing hours")
	}
	if res.Series[4][15].SpacePct >= res.Series[0][15].SpacePct {
		t.Fatalf("8-hour maintenance did not reduce space: %.2f vs %.2f",
			res.Series[4][15].SpacePct, res.Series[0][15].SpacePct)
	}
}

func TestFig9QueryShape(t *testing.T) {
	cfg := Fig9Config{
		CPs: 24, OpsPerCP: 400, Queries: 256,
		RunLengths:   []int{1, 64},
		StalenessCPs: []int{0, -1},
		DedupRate:    0.10, Seed: 1,
	}
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	get := func(rl, stale int) QueryPoint {
		for _, p := range res.Points {
			if p.RunLength == rl && p.StalenessCPs == stale {
				return p
			}
		}
		t.Fatalf("missing point rl=%d stale=%d", rl, stale)
		return QueryPoint{}
	}
	// Shape 1: just-maintained DB needs fewer reads per query than the
	// never-maintained DB at the same run length.
	if get(1, 0).ReadsPerQuery >= get(1, -1).ReadsPerQuery {
		t.Fatalf("maintenance did not reduce reads/query: %.2f vs %.2f",
			get(1, 0).ReadsPerQuery, get(1, -1).ReadsPerQuery)
	}
	// Shape 2: longer sorted runs mean fewer reads per query (page
	// sharing between consecutive queries).
	if get(64, 0).ReadsPerQuery >= get(1, 0).ReadsPerQuery {
		t.Fatalf("long runs did not amortize reads: rl64=%.2f rl1=%.2f",
			get(64, 0).ReadsPerQuery, get(1, 0).ReadsPerQuery)
	}
	// Shape 3: throughput is higher right after maintenance.
	if get(64, 0).QueriesPerSec <= get(64, -1).QueriesPerSec {
		t.Fatalf("maintenance did not improve throughput: %.0f vs %.0f",
			get(64, 0).QueriesPerSec, get(64, -1).QueriesPerSec)
	}
}

func TestFig10BeforeAfter(t *testing.T) {
	cfg := Fig10Config{
		CPs: 30, MeasureEvery: 10, OpsPerCP: 300, Queries: 128,
		RunLengths: []int{32}, DedupRate: 0.10, Seed: 1,
	}
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Before) != 3 || len(res.After) != 3 {
		t.Fatalf("before=%d after=%d", len(res.Before), len(res.After))
	}
	// After-maintenance throughput should on aggregate beat
	// before-maintenance at the same CPs.
	var sumB, sumA float64
	for i := range res.Before {
		sumB += res.Before[i].QueriesPerSec
		sumA += res.After[i].QueriesPerSec
	}
	if sumA <= sumB {
		t.Fatalf("after-maintenance throughput (%.0f) not above before (%.0f)", sumA, sumB)
	}
}

func TestNaiveAblationShape(t *testing.T) {
	cfg := NaiveConfig{CPs: 40, OpsPerCP: 800, CacheBytes: 64 << 10, SampleEvery: 4, Seed: 1}
	res, err := RunNaiveAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Naive) == 0 || len(res.Backlog) == 0 {
		t.Fatal("missing series")
	}
	// Naive I/O per op must exceed Backlog's by the end of the run.
	nLast := res.Naive[len(res.Naive)-1]
	bLast := res.Backlog[len(res.Backlog)-1]
	if nLast.IOPerOp <= bLast.IOPerOp {
		t.Fatalf("naive (%.3f IO/op) not worse than backlog (%.3f IO/op)", nLast.IOPerOp, bLast.IOPerOp)
	}
	// And naive degrades with age while Backlog stays flat.
	nFirst := res.Naive[0]
	if nLast.IOPerOp <= nFirst.IOPerOp {
		t.Fatalf("naive did not degrade: first=%.3f last=%.3f", nFirst.IOPerOp, nLast.IOPerOp)
	}
}

func TestTable1SmallRun(t *testing.T) {
	cfg := Table1Config{MicroFiles: 512, DbenchOps: 1500, VarmailIters: 200, PostmarkTx: 1500, Seed: 1}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Base <= 0 || r.Original <= 0 || r.Backlog <= 0 {
			t.Fatalf("row %q has non-positive values: %+v", r.Name, r)
		}
	}
	// Qualitative check on a stable subset: the 64 KB create should show
	// small overhead (one backref per 16 blocks of data).
	var c64 Table1Row
	for _, r := range rows {
		if r.Name == "Creation of a 64 KB file (8192 ops. per CP)" {
			c64 = r
		}
	}
	if c64.OverheadPct > 60 {
		t.Fatalf("64 KB create overhead implausibly high: %.1f%%", c64.OverheadPct)
	}
}
