package experiments

import (
	"fmt"
	"time"

	"github.com/backlogfs/backlog/internal/btree"
	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// CompressConfig parameterizes the run-format experiment. It is not a
// paper figure: the paper only remarks (Section 8) that back-reference
// tables "appear to be highly compressible, especially if we compress
// them by columns". The experiment quantifies the format-v2 column-delta
// encoding against the paper's raw layout — two identical deterministic
// workloads, one per format, metered for on-disk size, checkpoint write
// bytes, and cold/warm point-query latency.
type CompressConfig struct {
	// CPs is the number of consistency points ingested.
	CPs int
	// OpsPerCP is the number of AddRef operations per consistency point.
	OpsPerCP int
	// Blocks is the physical block space.
	Blocks int
	// Queries is the number of point queries timed per cold/warm pass.
	Queries int
}

// DefaultCompressConfig returns the small-scale default.
func DefaultCompressConfig() CompressConfig {
	return CompressConfig{CPs: 10, OpsPerCP: 4000, Blocks: 1 << 14, Queries: 2000}
}

// CompressPoint is one format's measured costs.
type CompressPoint struct {
	Format string // "raw" or "delta"
	// TableBytes is the on-disk run size per table after compaction.
	TableBytes map[string]int64
	// RunBytes is the total on-disk size of all runs.
	RunBytes int64
	// CheckpointWriteBytes is the bytes written by the ingest phase's
	// checkpoints (the only disk writer under checkpoint-only durability).
	CheckpointWriteBytes int64
	// ColdQueryUS and WarmQueryUS are mean point-query latencies with the
	// page cache dropped and primed, respectively.
	ColdQueryUS float64
	WarmQueryUS float64
}

// CompressResult is the experiment's output.
type CompressResult struct {
	Points []CompressPoint
	// CombinedRatio is the raw format's Combined-table bytes divided by
	// the delta format's (the paper's "highly compressible" claim).
	CombinedRatio float64
	// TotalRatio is the same over all tables' runs.
	TotalRatio float64
	// WriteRatio compares checkpoint write bytes (raw / delta).
	WriteRatio float64
	// WarmSlowdown is delta's warm query latency over raw's — the price
	// of decoding, mostly hidden by the decoded-page cache.
	WarmSlowdown float64
}

// compressRef is the deterministic reference for global op number op:
// a dense re-referenced region with a sparse far tail, so runs carry
// realistic per-column deltas rather than a single arithmetic
// progression.
func compressRef(cfg CompressConfig, op int) core.Ref {
	blk := uint64(op % cfg.Blocks)
	if op%7 == 0 {
		blk = uint64(cfg.Blocks) + uint64(op%(cfg.Blocks*16))
	}
	return core.Ref{
		Block:  blk,
		Inode:  uint64(2 + op%512),
		Offset: uint64(op % 4096),
		Line:   0,
		Length: 1,
	}
}

// compressWorkload ingests the deterministic workload into a fresh
// engine of the given format and measures it. Each consistency point
// adds OpsPerCP references, removes half of the previous CP's, and
// retains a snapshot — so compaction precomputes a populated Combined
// table (the removed references' intervals) alongside the live From
// residue, like a file system that overwrites under periodic snapshots.
func compressWorkload(cfg CompressConfig, comp core.Compression) (CompressPoint, error) {
	format := "delta"
	if comp == core.CompressionNone {
		format = "raw"
	}
	pt := CompressPoint{Format: format, TableBytes: map[string]int64{}}
	fs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{
		VFS:         fs,
		Catalog:     cat,
		Compression: comp,
		WriteShards: 1,
	})
	if err != nil {
		return pt, err
	}
	defer eng.Close()

	ingestFrom := fs.Stats()
	for cp := 1; cp <= cfg.CPs; cp++ {
		if err := cat.CreateSnapshot(0, uint64(cp)); err != nil {
			return pt, err
		}
		for i := 0; i < cfg.OpsPerCP; i++ {
			eng.AddRef(compressRef(cfg, (cp-1)*cfg.OpsPerCP+i), uint64(cp))
		}
		if cp > 1 {
			for i := 0; i < cfg.OpsPerCP; i += 2 {
				eng.RemoveRef(compressRef(cfg, (cp-2)*cfg.OpsPerCP+i), uint64(cp))
			}
		}
		if err := eng.Checkpoint(uint64(cp)); err != nil {
			return pt, err
		}
	}
	pt.CheckpointWriteBytes = fs.Stats().Sub(ingestFrom).BytesWritten

	// Compact so each format is measured on its steady state: merged runs
	// with the Combined table precomputed.
	if err := eng.Compact(); err != nil {
		return pt, err
	}
	for _, ri := range eng.RunInfos() {
		pt.TableBytes[ri.Table] += ri.SizeBytes
		pt.RunBytes += ri.SizeBytes
	}

	queryBlocks := make([]uint64, cfg.Queries)
	for i := range queryBlocks {
		queryBlocks[i] = uint64((i * 97) % cfg.Blocks)
	}
	timeQueries := func() (float64, error) {
		t0 := time.Now()
		for _, b := range queryBlocks {
			if _, err := eng.Query(b); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Microseconds()) / float64(len(queryBlocks)), nil
	}
	// Cold: drop the page cache (and decoded pages with it).
	eng.ClearCaches()
	if pt.ColdQueryUS, err = timeQueries(); err != nil {
		return pt, err
	}
	// Warm: the same blocks again, served from the decoded-page cache.
	if pt.WarmQueryUS, err = timeQueries(); err != nil {
		return pt, err
	}
	return pt, nil
}

// RunCompress measures the raw and column-delta run formats on identical
// workloads.
func RunCompress(cfg CompressConfig) (CompressResult, error) {
	var res CompressResult
	raw, err := compressWorkload(cfg, core.CompressionNone)
	if err != nil {
		return res, fmt.Errorf("compress: %s: %w", btree.FormatRaw, err)
	}
	delta, err := compressWorkload(cfg, core.CompressionDelta)
	if err != nil {
		return res, fmt.Errorf("compress: %s: %w", btree.FormatDelta, err)
	}
	res.Points = []CompressPoint{raw, delta}
	if d := delta.TableBytes[core.TableCombined]; d > 0 {
		res.CombinedRatio = float64(raw.TableBytes[core.TableCombined]) / float64(d)
	}
	if delta.RunBytes > 0 {
		res.TotalRatio = float64(raw.RunBytes) / float64(delta.RunBytes)
	}
	if delta.CheckpointWriteBytes > 0 {
		res.WriteRatio = float64(raw.CheckpointWriteBytes) / float64(delta.CheckpointWriteBytes)
	}
	if raw.WarmQueryUS > 0 {
		res.WarmSlowdown = delta.WarmQueryUS / raw.WarmQueryUS
	}
	return res, nil
}
