// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment has a Config with paper-faithful
// defaults plus a scale knob, and returns structured series that
// cmd/fsimbench and cmd/btrfsbench print and that the root-level benchmarks
// assert on.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not the authors' testbed); the shapes — flat maintenance overhead,
// sawtooth space overhead, query-performance cliffs by run length and
// staleness, Backlog ≈ native btrfs — are the reproduction targets.
// EXPERIMENTS.md records paper-vs-measured values for each experiment.
package experiments

import (
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/storage"
)

// Env bundles a simulated file system wired to a Backlog engine over a
// metered in-memory disk.
type Env struct {
	VFS *storage.MemFS
	Cat *core.MemCatalog
	Eng *core.Engine
	FS  *fsim.FS
}

// EnvConfig configures NewEnv.
type EnvConfig struct {
	DedupRate  float64
	Seed       int64
	Partitions int
	Span       uint64
	CacheBytes int64
	// DisableBloom / DisablePruning feed the ablation benchmarks.
	DisableBloom   bool
	DisablePruning bool
}

// NewEnv builds the standard experimental environment: MemFS with the
// paper's disk model, a Backlog engine with a 32 MB cache, and an fsim
// instance with 10% deduplication unless overridden.
func NewEnv(cfg EnvConfig) (*Env, error) {
	vfs := storage.NewMemFS()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{
		VFS:            vfs,
		Catalog:        cat,
		Partitions:     cfg.Partitions,
		PartitionSpan:  cfg.Span,
		CacheBytes:     cfg.CacheBytes,
		DisableBloom:   cfg.DisableBloom,
		DisablePruning: cfg.DisablePruning,
		// The paper's figures assume one run per table per consistency
		// point; a GOMAXPROCS-dependent shard count would change run
		// counts (and thus the space and query series) with the machine.
		// RunIngest is the experiment that exercises sharding.
		WriteShards: 1,
		// Pinned off for the same reason WriteShards is pinned to 1: the
		// figures' space and I/O series assume the paper's raw v1 run
		// layout, and must stay byte-identical as the delta default
		// evolves. RunCompress is the experiment that measures compression.
		Compression: core.CompressionNone,
	})
	if err != nil {
		return nil, err
	}
	fs := fsim.New(fsim.Config{
		Tracker:   eng,
		Catalog:   cat,
		DedupRate: cfg.DedupRate,
		Seed:      cfg.Seed,
	})
	return &Env{VFS: vfs, Cat: cat, Eng: eng, FS: fs}, nil
}

// measured captures wall time plus modeled disk time over a region.
type measured struct {
	start     time.Time
	statsFrom storage.Stats
	vfs       *storage.MemFS
}

func startMeasure(vfs *storage.MemFS) measured {
	return measured{start: time.Now(), statsFrom: vfs.Stats(), vfs: vfs}
}

// stop returns (cpuNanos, diskNanos, ioStats delta).
func (m measured) stop() (int64, int64, storage.Stats) {
	d := m.vfs.Stats().Sub(m.statsFrom)
	return time.Since(m.start).Nanoseconds(), d.DiskNanos, d
}
