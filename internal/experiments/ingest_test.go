package experiments

import "testing"

func TestRunIngestSweep(t *testing.T) {
	pts, err := RunIngest(IngestConfig{Ops: 20_000, Goroutines: 4, OpsPerCP: 5_000, Shards: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Ops != 20_000 || p.OpsPerSec <= 0 || p.Speedup <= 0 {
			t.Fatalf("malformed point: %+v", p)
		}
	}
	if pts[0].Shards != 1 || pts[0].Speedup != 1 {
		t.Fatalf("baseline point malformed: %+v", pts[0])
	}
}
