package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
)

// IostatConfig parameterizes the I/O-attribution overhead experiment: the
// same mixed update/query workload run with attribution disabled, with
// attribution on (the default configuration — a few atomic adds per I/O,
// no clock reads), and with a metrics registry attached on top (latency
// histograms, two clock reads per I/O). It is not a paper figure — it
// holds the attribution layer to its budget: the default-on configuration
// must cost at most ~2%, because unlike the rest of the observability
// surface it is enabled by default.
type IostatConfig struct {
	// Ops is the number of AddRef calls per configuration per round.
	Ops int
	// OpsPerCP is the checkpoint cadence (default 50k ops).
	OpsPerCP int
	// QueryEvery issues one Query per this many updates (default 16), so
	// the read path's tagging and heat tracking carry load too.
	QueryEvery int
	// Goroutines is the number of concurrent workers (default GOMAXPROCS).
	Goroutines int
	// Rounds interleaves repeated measurements of every configuration
	// (default 11); overhead is the median over rounds of the paired
	// per-round delta against the same round's disabled run (see RunObs).
	Rounds int
}

// DefaultIostatConfig returns the small-scale default.
func DefaultIostatConfig() IostatConfig {
	return IostatConfig{Ops: 400_000, OpsPerCP: 50_000, QueryEvery: 16, Rounds: 11}
}

// IostatPoint is one configuration's result.
type IostatPoint struct {
	Name      string
	Ops       int
	Nanos     int64
	OpsPerSec float64
	// OverheadPct is throughput loss relative to the disabled
	// configuration (positive = slower): the median over rounds of the
	// paired per-round delta.
	OverheadPct float64
	// Report is the final round's attribution report (zero with
	// Attribution=false in the disabled configuration). Its per-source
	// byte sums equal its totals exactly — the audit below fails the
	// experiment otherwise.
	Report core.IOReport
}

// RunIostat measures the overhead of purpose-tagged I/O attribution on a
// mixed update/query workload against an in-memory engine, and audits the
// accounting: per-source bytes must sum to the totals, and the hot paths
// must not leak unattributed ("unknown") I/O.
func RunIostat(cfg IostatConfig) ([]IostatPoint, error) {
	def := DefaultIostatConfig()
	if cfg.Ops <= 0 {
		cfg.Ops = def.Ops
	}
	if cfg.OpsPerCP <= 0 {
		cfg.OpsPerCP = def.OpsPerCP
	}
	if cfg.QueryEvery <= 0 {
		cfg.QueryEvery = def.QueryEvery
	}
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = runtime.GOMAXPROCS(0)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = def.Rounds
	}

	type setup struct {
		name     string
		disabled bool
		metrics  bool
	}
	setups := []setup{
		{"disabled", true, false},
		{"attributed", false, false},
		{"attributed+metrics", false, true},
	}
	points := make([]IostatPoint, len(setups))
	roundNanos := make([][]int64, len(setups))
	for i, s := range setups {
		points[i] = IostatPoint{Name: s.name}
		roundNanos[i] = make([]int64, cfg.Rounds)
	}
	ocfg := ObsConfig{
		Ops: cfg.Ops, OpsPerCP: cfg.OpsPerCP,
		QueryEvery: cfg.QueryEvery, Goroutines: cfg.Goroutines,
	}
	for round := 0; round < cfg.Rounds; round++ {
		for i, s := range setups {
			runtime.GC()
			opts := core.Options{
				VFS:                  storage.NewMemFS(),
				Catalog:              core.NewMemCatalog(),
				WriteShards:          cfg.Goroutines,
				DisableIOAttribution: s.disabled,
			}
			if s.metrics {
				opts.Metrics = obs.NewRegistry()
			}
			ops, nanos, rep, err := iostatOnce(opts, ocfg)
			if err != nil {
				return nil, fmt.Errorf("%s round %d: %w", s.name, round, err)
			}
			if !s.disabled {
				if err := auditReport(rep); err != nil {
					return nil, fmt.Errorf("%s round %d: %w", s.name, round, err)
				}
			}
			roundNanos[i][round] = nanos
			if points[i].Nanos == 0 || nanos < points[i].Nanos {
				points[i].Ops = ops
				points[i].Nanos = nanos
			}
			points[i].Report = rep
		}
	}
	for i := range points {
		points[i].OpsPerSec = float64(points[i].Ops) / (float64(points[i].Nanos) / 1e9)
		deltas := make([]float64, cfg.Rounds)
		for r := 0; r < cfg.Rounds; r++ {
			deltas[r] = 100 * (float64(roundNanos[i][r])/float64(roundNanos[0][r]) - 1)
		}
		sort.Float64s(deltas)
		mid := cfg.Rounds / 2
		if cfg.Rounds%2 == 0 {
			points[i].OverheadPct = (deltas[mid-1] + deltas[mid]) / 2
		} else {
			points[i].OverheadPct = deltas[mid]
		}
	}
	return points, nil
}

// auditReport checks the attribution invariants on a finished run's
// report: per-source bytes sum to the totals (the wrapper records the
// same n the device sees, so this is exact), and the engine's hot paths
// leak no unattributed I/O.
func auditReport(rep core.IOReport) error {
	if !rep.Attribution {
		return fmt.Errorf("attribution unexpectedly disabled")
	}
	var sumR, sumW uint64
	for _, s := range rep.Sources {
		sumR += s.ReadBytes
		sumW += s.WriteBytes
		if s.Source == storage.SrcUnknown.String() && (s.ReadBytes > 0 || s.WriteBytes > 0) {
			return fmt.Errorf("unattributed i/o leaked: %d read / %d written bytes tagged %q",
				s.ReadBytes, s.WriteBytes, s.Source)
		}
	}
	if sumR != rep.TotalReadBytes || sumW != rep.TotalWriteBytes {
		return fmt.Errorf("per-source bytes do not sum to totals: %d/%d read, %d/%d written",
			sumR, rep.TotalReadBytes, sumW, rep.TotalWriteBytes)
	}
	return nil
}

// iostatOnce drives one configuration with the obs experiment's workload
// and returns the attribution report alongside the timing.
func iostatOnce(opts core.Options, cfg ObsConfig) (int, int64, core.IOReport, error) {
	eng, err := core.Open(opts)
	if err != nil {
		return 0, 0, core.IOReport{}, err
	}
	ops, nanos, err := obsDrive(eng, cfg)
	rep := eng.IOReport()
	if cerr := eng.Close(); err == nil {
		err = cerr
	}
	return ops, nanos, rep, err
}
