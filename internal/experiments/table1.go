package experiments

import (
	"fmt"
	"time"

	"github.com/backlogfs/backlog/internal/btrfssim"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/wal"
)

// Table1Config parameterizes the btrfs benchmarks (Table 1).
type Table1Config struct {
	// MicroFiles is the file count for the create/delete microbenchmarks.
	MicroFiles int
	// DbenchOps, VarmailIters, PostmarkTx size the application workloads.
	DbenchOps    int
	VarmailIters int
	PostmarkTx   int
	Seed         int64
	// WriteShards configures the Backlog engine's write-store sharding
	// (0 = engine default of GOMAXPROCS).
	WriteShards int
	// Durability configures the Backlog engine's write-ahead logging
	// (default wal.CheckpointOnly, the paper's configuration — Table 1
	// numbers are only comparable to the paper in that mode).
	Durability wal.Durability
	// AutoCompact enables the Backlog engine's background maintenance
	// scheduler (off by default: the paper's Table 1 runs accumulate
	// unmaintained).
	AutoCompact bool
	// Metrics, if non-nil, registers each Backlog-mode engine's metrics
	// — btrfsbench's -debug-addr serves them live during a run.
	Metrics *obs.Registry
}

// DefaultTable1Config returns the scaled default.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		MicroFiles:   8192,
		DbenchOps:    20000,
		VarmailIters: 3000,
		PostmarkTx:   20000,
		Seed:         1,
	}
}

// Table1Row is one benchmark across the three configurations. Values are
// ms/op for microbenchmarks and throughput (MB/s or ops/s) for the
// application benchmarks; Unit says which.
type Table1Row struct {
	Name     string
	Unit     string
	Base     float64
	Original float64
	Backlog  float64
	// OverheadPct is Backlog's overhead relative to Base, oriented so
	// that positive = Backlog worse, matching the paper's Overhead
	// column.
	OverheadPct float64
}

// RunTable1 executes every row of Table 1.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row
	type spec struct {
		name    string
		unit    string
		higher  bool // true when larger values are better (throughput)
		measure func(mode btrfssim.Mode) (float64, error)
	}
	newFS := func(mode btrfssim.Mode, opsPerTx int) (*btrfssim.FS, error) {
		return btrfssim.New(btrfssim.Config{Mode: mode, OpsPerTransaction: opsPerTx, WriteShards: cfg.WriteShards, Durability: cfg.Durability, AutoCompact: cfg.AutoCompact, Metrics: cfg.Metrics})
	}
	msPerOp := func(fs *btrfssim.FS, start time.Time, startDisk int64, ops int) float64 {
		elapsed := time.Since(start).Nanoseconds() + fs.VFS().Stats().DiskNanos - startDisk
		return float64(elapsed) / 1e6 / float64(ops)
	}

	micro := func(name string, opsPerTx, sizeBlocks int, del bool) spec {
		return spec{
			name: name, unit: "ms/op",
			measure: func(mode btrfssim.Mode) (float64, error) {
				fs, err := newFS(mode, opsPerTx)
				if err != nil {
					return 0, err
				}
				defer fs.Close()
				if !del {
					start := time.Now()
					d0 := fs.VFS().Stats().DiskNanos
					if _, err := btrfssim.RunCreateFiles(fs, cfg.MicroFiles, sizeBlocks); err != nil {
						return 0, err
					}
					return msPerOp(fs, start, d0, cfg.MicroFiles), nil
				}
				inos, err := btrfssim.RunCreateFiles(fs, cfg.MicroFiles, sizeBlocks)
				if err != nil {
					return 0, err
				}
				start := time.Now()
				d0 := fs.VFS().Stats().DiskNanos
				if err := btrfssim.RunDeleteFiles(fs, inos); err != nil {
					return 0, err
				}
				return msPerOp(fs, start, d0, cfg.MicroFiles), nil
			},
		}
	}

	specs := []spec{
		micro("Creation of a 4 KB file (2048 ops. per CP)", 2048, 1, false),
		micro("Creation of a 64 KB file (2048 ops. per CP)", 2048, 16, false),
		micro("Deletion of a 4 KB file (2048 ops. per CP)", 2048, 1, true),
		micro("Creation of a 4 KB file (8192 ops. per CP)", 8192, 1, false),
		micro("Creation of a 64 KB file (8192 ops. per CP)", 8192, 16, false),
		micro("Deletion of a 4 KB file (8192 ops. per CP)", 8192, 1, true),
		{
			name: "DBench CIFS workload, 4 users", unit: "MB/s", higher: true,
			measure: func(mode btrfssim.Mode) (float64, error) {
				fs, err := newFS(mode, 2048)
				if err != nil {
					return 0, err
				}
				defer fs.Close()
				start := time.Now()
				d0 := fs.VFS().Stats().DiskNanos
				bytes, err := btrfssim.RunDbench(fs, cfg.DbenchOps, cfg.Seed)
				if err != nil {
					return 0, err
				}
				elapsed := time.Since(start).Nanoseconds() + fs.VFS().Stats().DiskNanos - d0
				return float64(bytes) / (1 << 20) / (float64(elapsed) / 1e9), nil
			},
		},
		{
			name: "FileBench /var/mail, 16 threads", unit: "ops/s", higher: true,
			measure: func(mode btrfssim.Mode) (float64, error) {
				fs, err := newFS(mode, 2048)
				if err != nil {
					return 0, err
				}
				defer fs.Close()
				start := time.Now()
				d0 := fs.VFS().Stats().DiskNanos
				ops, err := btrfssim.RunVarmail(fs, 16, cfg.VarmailIters, cfg.Seed)
				if err != nil {
					return 0, err
				}
				elapsed := time.Since(start).Nanoseconds() + fs.VFS().Stats().DiskNanos - d0
				return float64(ops) / (float64(elapsed) / 1e9), nil
			},
		},
		{
			name: "PostMark", unit: "ops/s", higher: true,
			measure: func(mode btrfssim.Mode) (float64, error) {
				fs, err := newFS(mode, 2048)
				if err != nil {
					return 0, err
				}
				defer fs.Close()
				start := time.Now()
				d0 := fs.VFS().Stats().DiskNanos
				tx, err := btrfssim.RunPostmark(fs, cfg.MicroFiles/8, cfg.PostmarkTx, cfg.Seed)
				if err != nil {
					return 0, err
				}
				elapsed := time.Since(start).Nanoseconds() + fs.VFS().Stats().DiskNanos - d0
				return float64(tx) / (float64(elapsed) / 1e9), nil
			},
		},
	}

	for _, s := range specs {
		row := Table1Row{Name: s.name, Unit: s.unit}
		var err error
		if row.Base, err = s.measure(btrfssim.ModeBase); err != nil {
			return nil, fmt.Errorf("%s base: %w", s.name, err)
		}
		if row.Original, err = s.measure(btrfssim.ModeOriginal); err != nil {
			return nil, fmt.Errorf("%s original: %w", s.name, err)
		}
		if row.Backlog, err = s.measure(btrfssim.ModeBacklog); err != nil {
			return nil, fmt.Errorf("%s backlog: %w", s.name, err)
		}
		if row.Base > 0 {
			if s.higher {
				row.OverheadPct = 100 * (row.Base - row.Backlog) / row.Base
			} else {
				row.OverheadPct = 100 * (row.Backlog - row.Base) / row.Base
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
