package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// WALSweepConfig parameterizes the write-ahead-log group-commit
// experiment. It is not a paper figure: the paper's durability model is
// CheckpointOnly (the fsim figure experiments pin it), and this sweep
// quantifies what the optional Buffered/Sync modes cost and how group
// commit amortizes the Sync mode's fsyncs. For each durability mode and
// writer count, Ops AddRef calls are driven through an in-memory engine;
// the interesting column is the emergent batch size (appends per
// WriteAt+Sync), which grows with writer concurrency because a
// single-flight leader flushes everything that buffered behind it.
type WALSweepConfig struct {
	// Ops is the number of AddRef calls per configuration.
	Ops int
	// Writers lists the concurrent writer counts to sweep (default 1, 2,
	// 4, ..., GOMAXPROCS).
	Writers []int
	// Modes lists the durability modes to sweep (default Buffered, Sync).
	Modes []wal.Durability
}

// DefaultWALSweepConfig returns the small-scale default.
func DefaultWALSweepConfig() WALSweepConfig {
	return WALSweepConfig{Ops: 100_000}
}

// WALSweepPoint is one swept configuration's result.
type WALSweepPoint struct {
	Mode      wal.Durability
	Writers   int
	Ops       int
	OpsPerSec float64
	// Batches is the number of physical log flushes; AvgBatch is
	// Ops/Batches, the group-commit amortization factor.
	Batches  uint64
	AvgBatch float64
	// Syncs counts storage-level fsyncs observed during the run.
	Syncs int64
}

// RunWALSweep measures group-committed WAL append throughput across
// durability modes and writer counts.
func RunWALSweep(cfg WALSweepConfig) ([]WALSweepPoint, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultWALSweepConfig().Ops
	}
	if len(cfg.Writers) == 0 {
		for w := 1; w < runtime.GOMAXPROCS(0); w *= 2 {
			cfg.Writers = append(cfg.Writers, w)
		}
		cfg.Writers = append(cfg.Writers, runtime.GOMAXPROCS(0))
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []wal.Durability{wal.Buffered, wal.Sync}
	}
	var points []WALSweepPoint
	for _, mode := range cfg.Modes {
		for _, writers := range cfg.Writers {
			p, err := walSweepOnce(mode, writers, cfg.Ops)
			if err != nil {
				return nil, fmt.Errorf("mode=%s writers=%d: %w", mode, writers, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func walSweepOnce(mode wal.Durability, writers, ops int) (WALSweepPoint, error) {
	vfs := storage.NewMemFS()
	eng, err := core.Open(core.Options{VFS: vfs, Catalog: core.NewMemCatalog(), Durability: mode})
	if err != nil {
		return WALSweepPoint{}, err
	}
	perWorker := ops / writers
	if perWorker == 0 {
		return WALSweepPoint{}, fmt.Errorf("ops=%d is less than writers=%d", ops, writers)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < perWorker; i++ {
				eng.AddRef(core.Ref{Block: base + uint64(i), Inode: uint64(w + 1), Offset: uint64(i), Length: 1}, 1)
			}
		}(w)
	}
	wg.Wait()
	nanos := time.Since(start).Nanoseconds()
	if err := eng.WALErr(); err != nil {
		return WALSweepPoint{}, err
	}
	st := eng.Stats()
	total := perWorker * writers
	p := WALSweepPoint{
		Mode:      mode,
		Writers:   writers,
		Ops:       total,
		OpsPerSec: float64(total) / (float64(nanos) / 1e9),
		Batches:   st.WALBatches,
		Syncs:     vfs.Stats().Syncs,
	}
	if st.WALBatches > 0 {
		p.AvgBatch = float64(st.WALAppends) / float64(st.WALBatches)
	}
	if err := eng.Checkpoint(2); err != nil {
		return WALSweepPoint{}, err
	}
	if err := eng.Close(); err != nil {
		return WALSweepPoint{}, err
	}
	return p, nil
}
