package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// LevelsConfig parameterizes the leveled-maintenance experiment. It is not
// a paper figure: the paper's prototype maintains a partition by merging
// every run into one, which rewrites the accumulated database over and
// over under sustained ingest. The experiment quantifies what the
// stepped-merge alternative buys — PolicyLeveled merges Fanout runs of a
// level into one run of the next — and what it costs at read time, by
// running the identical ingest under PolicyFull and under PolicyLeveled
// at each fanout in the sweep.
type LevelsConfig struct {
	// CPs and OpsPerCP size the sustained ingest. Maintenance runs
	// synchronously after every checkpoint, as the paper's prototype did.
	CPs      int
	OpsPerCP int
	// Blocks is the physical block space referenced and queried.
	Blocks int
	// Partitions is the number of hash partitions.
	Partitions int
	// Queries is the number of point queries measured after ingest.
	Queries int
	// Fanouts are the stepped-merge fanouts swept for PolicyLeveled.
	Fanouts []int
	// Threshold is PolicyFull's per-partition run-count trigger
	// (0 = the engine default).
	Threshold int
	Seed      int64
}

// DefaultLevelsConfig returns the small-scale default.
func DefaultLevelsConfig() LevelsConfig {
	return LevelsConfig{
		CPs:        128,
		OpsPerCP:   1000,
		Blocks:     1 << 14,
		Partitions: 4,
		Queries:    2000,
		Fanouts:    []int{2, 4, 8},
		Seed:       1,
	}
}

// LevelsPoint is one policy configuration's measured outcome.
type LevelsPoint struct {
	Policy string // "full" or "leveled"
	Fanout int    // 0 for PolicyFull
	// CompactWriteBytes is the physical bytes written by installed
	// compactions over the whole ingest.
	CompactWriteBytes uint64
	// WriteAmp is (flush bytes + compaction bytes) / flush bytes, with
	// flush bytes approximated as records flushed times the From record
	// size (the workload is add-only, so every flushed record is a From).
	WriteAmp float64
	// BytesVsFull is PolicyFull's compaction bytes divided by this
	// point's — how many times fewer bytes this configuration wrote.
	BytesVsFull float64
	// Runs and MaxLevel describe the final run set.
	Runs     int
	MaxLevel int
	// MaintainMS is the total wall-clock time spent in maintenance.
	MaintainMS float64
	// QueryMeanUS and QueryP99US are point-query latencies on the final
	// run set; P99VsFull is the p99 ratio against the PolicyFull point.
	QueryMeanUS float64
	QueryP99US  float64
	P99VsFull   float64
}

// LevelsResult is the experiment's output: the PolicyFull baseline
// first, then one point per swept fanout.
type LevelsResult struct {
	Points []LevelsPoint
}

// RunLevels runs the identical sustained ingest under PolicyFull and
// under PolicyLeveled at each configured fanout, maintaining after every
// checkpoint, and reports compaction write bytes and query latency per
// configuration. PolicyFull's write cost grows quadratically in the
// ingest length (every merge rewrites the whole partition); stepped
// merging rewrites each record roughly once per level instead, at the
// price of a deeper run set for queries to visit.
func RunLevels(cfg LevelsConfig) (LevelsResult, error) {
	var res LevelsResult
	full, err := runLevelsPoint(cfg, nil, 0)
	if err != nil {
		return res, fmt.Errorf("full policy: %w", err)
	}
	res.Points = append(res.Points, full)
	for _, k := range cfg.Fanouts {
		pt, err := runLevelsPoint(cfg, core.PolicyLeveled{}, k)
		if err != nil {
			return res, fmt.Errorf("leveled fanout %d: %w", k, err)
		}
		res.Points = append(res.Points, pt)
	}
	for i := range res.Points {
		if res.Points[i].CompactWriteBytes > 0 {
			res.Points[i].BytesVsFull = float64(full.CompactWriteBytes) / float64(res.Points[i].CompactWriteBytes)
		}
		if full.QueryP99US > 0 {
			res.Points[i].P99VsFull = res.Points[i].QueryP99US / full.QueryP99US
		}
	}
	return res, nil
}

func runLevelsPoint(cfg LevelsConfig, pol core.CompactionPolicy, fanout int) (LevelsPoint, error) {
	var pt LevelsPoint
	eng, err := core.Open(core.Options{
		VFS:              storage.NewMemFS(),
		Catalog:          core.NewMemCatalog(),
		Partitions:       cfg.Partitions,
		HashPartitioning: cfg.Partitions > 1,
		CompactThreshold: cfg.Threshold,
		CompactionPolicy: pol,
		Fanout:           fanout,
		// Pin the raw v1 run format so write bytes measure records merged,
		// not compressibility — the delta format rewards full's large
		// sorted outputs more than leveled's small ones, which would
		// conflate two separate trade-offs. RunCompress measures formats.
		Compression: core.CompressionNone,
		// Maintenance runs synchronously on this goroutine; pacing would
		// only add idle wall time to MaintainMS.
		CompactPacing: -1,
	})
	if err != nil {
		return pt, err
	}
	defer eng.Close()

	pt.Policy = "full"
	if pol != nil {
		pt.Policy = pol.Name()
		pt.Fanout = fanout
	}

	var maintain time.Duration
	rng := rand.New(rand.NewSource(cfg.Seed))
	for cp := 1; cp <= cfg.CPs; cp++ {
		for i := 0; i < cfg.OpsPerCP; i++ {
			eng.AddRef(core.Ref{
				Block:  uint64(rng.Intn(cfg.Blocks)),
				Inode:  uint64(2 + cp),
				Offset: uint64(i),
				Length: 1,
			}, uint64(cp))
		}
		if err := eng.Checkpoint(uint64(cp)); err != nil {
			return pt, err
		}
		t0 := time.Now()
		if err := eng.MaintainNow(); err != nil {
			return pt, err
		}
		maintain += time.Since(t0)
	}
	pt.MaintainMS = float64(maintain.Microseconds()) / 1e3

	st := eng.Stats()
	pt.CompactWriteBytes = st.CompactWriteBytes
	if flushed := float64(st.RecordsFlushed) * float64(core.FromRecSize); flushed > 0 {
		pt.WriteAmp = (flushed + float64(st.CompactWriteBytes)) / flushed
	}
	pt.Runs = eng.RunCount()
	for _, ri := range eng.RunInfos() {
		if ri.Level > pt.MaxLevel {
			pt.MaxLevel = ri.Level
		}
	}

	lats := make([]time.Duration, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		b := uint64(rng.Intn(cfg.Blocks))
		t0 := time.Now()
		if _, err := eng.Query(b); err != nil {
			return pt, err
		}
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		pt.QueryMeanUS = float64(sum.Microseconds()) / float64(len(lats))
		pt.QueryP99US = float64(lats[len(lats)*99/100].Microseconds())
	}
	return pt, nil
}
