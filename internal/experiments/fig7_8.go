package experiments

import (
	"github.com/backlogfs/backlog/internal/workload"
)

// Fig7Config parameterizes Figures 7 and 8 (NFS trace overhead and space
// overhead). The paper replays the first 16 days (384 hours) of the
// EECS03 trace with a CP every 10 seconds; the synthesized trace keeps the
// published properties, and CPsPerHour scales the checkpoint cadence.
type Fig7Config struct {
	Hours      int
	OpsPerHour int
	CPsPerHour int
	DedupRate  float64
	Seed       int64
	// MaintenanceEveryHours compacts on this cadence (0 = never) —
	// the paper's Figure 8 uses 8 and 48 hours.
	MaintenanceEveryHours int
}

// DefaultFig7Config returns the scaled default.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Hours: 96, OpsPerHour: 600, CPsPerHour: 4, DedupRate: 0.10, Seed: 42}
}

// HourSample is one Figure 7/8 data point.
type HourSample struct {
	Hour          int
	BlockOps      uint64
	WritesPerOp   float64
	TimePerOpUS   float64
	CPUPerOpUS    float64
	SpacePct      float64
	DBBytes       int64
	PhysicalBytes int64
}

// Fig7Result is the per-hour series.
type Fig7Result struct {
	Samples  []HourSample
	TotalOps uint64
}

// RunFig7 synthesizes the trace and replays it, sampling per hour.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	env, err := NewEnv(EnvConfig{DedupRate: cfg.DedupRate, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	tcfg := workload.DefaultTraceConfig(cfg.OpsPerHour)
	tcfg.Hours = cfg.Hours
	tcfg.Seed = cfg.Seed
	// Keep the truncate-heavy span inside the configured horizon.
	if tcfg.SetattrSpan[0] >= cfg.Hours {
		tcfg.SetattrSpan = [2]int{cfg.Hours / 2, cfg.Hours/2 + cfg.Hours/8}
	} else if tcfg.SetattrSpan[1] > cfg.Hours {
		tcfg.SetattrSpan[1] = cfg.Hours
	}
	ops := workload.GenerateTrace(tcfg)
	byHour := make([][]workload.TraceOp, cfg.Hours)
	for _, op := range ops {
		byHour[op.Hour] = append(byHour[op.Hour], op)
	}
	player := workload.NewPlayer(env.FS, cfg.CPsPerHour, cfg.Seed)

	res := &Fig7Result{}
	for h := 0; h < cfg.Hours; h++ {
		m := startMeasure(env.VFS)
		hs, err := player.PlayHour(h, byHour[h])
		if err != nil {
			return nil, err
		}
		cpuNs, diskNs, io := m.stop()
		if cfg.MaintenanceEveryHours > 0 && (h+1)%cfg.MaintenanceEveryHours == 0 {
			env.Cat.ReapZombies()
			if err := env.Eng.Compact(); err != nil {
				return nil, err
			}
		}
		phys := int64(env.FS.PhysicalBlocks()) * 4096
		db := env.Eng.SizeBytes()
		sample := HourSample{
			Hour:          h,
			BlockOps:      hs.BlockOps,
			DBBytes:       db,
			PhysicalBytes: phys,
		}
		if phys > 0 {
			sample.SpacePct = 100 * float64(db) / float64(phys)
		}
		if hs.BlockOps > 0 {
			sample.WritesPerOp = float64(io.PageWrites) / float64(hs.BlockOps)
			sample.CPUPerOpUS = float64(cpuNs) / 1e3 / float64(hs.BlockOps)
			sample.TimePerOpUS = float64(cpuNs+diskNs) / 1e3 / float64(hs.BlockOps)
		}
		res.Samples = append(res.Samples, sample)
		res.TotalOps += hs.BlockOps
	}
	return res, nil
}

// Fig8Result groups Figure 8 series by maintenance cadence in hours.
type Fig8Result struct {
	Series map[int][]HourSample
}

// RunFig8 replays the trace under several maintenance cadences (the paper
// uses none / every 48 hours / every 8 hours).
func RunFig8(cfg Fig7Config, maintenanceHours []int) (*Fig8Result, error) {
	out := &Fig8Result{Series: map[int][]HourSample{}}
	for _, m := range maintenanceHours {
		c := cfg
		c.MaintenanceEveryHours = m
		r, err := RunFig7(c)
		if err != nil {
			return nil, err
		}
		out.Series[m] = r.Samples
	}
	return out, nil
}
