package experiments

import "testing"

// TestLevelsLeveledWritesLess runs the leveled-maintenance sweep at a
// reduced query count and asserts the experiment's headline: under
// sustained ingest with maintenance after every checkpoint, stepped
// merging at the default fanout writes at least half as many compaction
// bytes as the paper's merge-to-one policy, and actually builds a
// multi-level run set. Query latency is reported but not asserted — it
// is too noisy on shared CI machines.
func TestLevelsLeveledWritesLess(t *testing.T) {
	cfg := DefaultLevelsConfig()
	cfg.Queries = 200
	cfg.Fanouts = []int{4}
	res, err := RunLevels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	full, lev := res.Points[0], res.Points[1]
	if full.Policy != "full" || lev.Policy != "leveled" {
		t.Fatalf("unexpected point order: %q, %q", full.Policy, lev.Policy)
	}
	if full.CompactWriteBytes == 0 || lev.CompactWriteBytes == 0 {
		t.Fatalf("compaction bytes not recorded: full %d, leveled %d",
			full.CompactWriteBytes, lev.CompactWriteBytes)
	}
	if full.CompactWriteBytes < 2*lev.CompactWriteBytes {
		t.Fatalf("leveled fanout-4 wrote %d compaction bytes vs full's %d; want >= 2x fewer",
			lev.CompactWriteBytes, full.CompactWriteBytes)
	}
	if lev.MaxLevel < 2 {
		t.Errorf("stepped merges stopped at level %d, want >= 2", lev.MaxLevel)
	}
	if full.MaxLevel != 1 {
		t.Errorf("full policy reached level %d, want 1", full.MaxLevel)
	}
	if lev.BytesVsFull < 2 {
		t.Errorf("BytesVsFull = %.2f, want >= 2", lev.BytesVsFull)
	}
}
