package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
)

// ObsConfig parameterizes the observability-overhead experiment: the same
// mixed update/query workload run with instrumentation disabled, with the
// metrics registry enabled, and with a tracer attached on top. It is not
// a paper figure — it exists to hold the instrumentation to its budget:
// enabled metrics must cost at most a few percent, and disabled metrics
// must be unmeasurable (the figure experiments run with observability off
// and must stay byte-identical).
type ObsConfig struct {
	// Ops is the number of AddRef calls per configuration per round.
	Ops int
	// OpsPerCP is the checkpoint cadence (default 50k ops).
	OpsPerCP int
	// QueryEvery issues one Query per this many updates (default 16),
	// so both hot paths carry instrumentation load.
	QueryEvery int
	// Goroutines is the number of concurrent workers (default GOMAXPROCS).
	Goroutines int
	// Rounds interleaves repeated measurements of every configuration
	// (default 5). Throughput is reported from each configuration's best
	// round; overhead is the median of the per-round paired deltas
	// against the same round's disabled run, so drift (thermal, GC
	// pacing, a noisy neighbor) that hits one slice of the run cannot
	// masquerade as instrumentation cost.
	Rounds int
}

// DefaultObsConfig returns the small-scale default. Many short rounds
// beat few long ones here: each paired delta is noisier, but the median
// over 11 pairs is far sturdier against one-off CPU bursts than the
// median over 5.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{Ops: 400_000, OpsPerCP: 50_000, QueryEvery: 16, Rounds: 11}
}

// ObsPoint is one configuration's result.
type ObsPoint struct {
	Name      string
	Ops       int
	Nanos     int64
	OpsPerSec float64
	// OverheadPct is throughput loss relative to the disabled
	// configuration (positive = slower than disabled): the median over
	// rounds of the paired per-round delta.
	OverheadPct float64
	// TraceEvents is the number of hook invocations the counting tracer
	// saw (0 except in the tracer configuration).
	TraceEvents uint64
}

// countingTracer is the cheapest useful tracer: two atomic increments per
// operation. It bounds the hook dispatch cost itself, separate from
// whatever a real tracer does with the events.
type countingTracer struct {
	events atomic.Uint64
}

func (t *countingTracer) OpStart(obs.OpEvent) { t.events.Add(1) }
func (t *countingTracer) OpEnd(obs.OpEvent)   { t.events.Add(1) }

// RunObs measures the overhead of enabling observability on a mixed
// update/query workload against an in-memory engine.
func RunObs(cfg ObsConfig) ([]ObsPoint, error) {
	def := DefaultObsConfig()
	if cfg.Ops <= 0 {
		cfg.Ops = def.Ops
	}
	if cfg.OpsPerCP <= 0 {
		cfg.OpsPerCP = def.OpsPerCP
	}
	if cfg.QueryEvery <= 0 {
		cfg.QueryEvery = def.QueryEvery
	}
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = runtime.GOMAXPROCS(0)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = def.Rounds
	}

	type setup struct {
		name    string
		metrics bool
		tracer  bool
	}
	setups := []setup{
		{"disabled", false, false},
		{"metrics", true, false},
		{"metrics+tracer", true, true},
	}
	points := make([]ObsPoint, len(setups))
	roundNanos := make([][]int64, len(setups))
	for i, s := range setups {
		points[i] = ObsPoint{Name: s.name}
		roundNanos[i] = make([]int64, cfg.Rounds)
	}
	// Interleave rounds so drift (thermal, GC pacing) hits every
	// configuration equally; keep each configuration's fastest round for
	// the throughput column, and every round for the paired overhead
	// estimate below.
	for round := 0; round < cfg.Rounds; round++ {
		for i, s := range setups {
			// Start each measurement from a collected heap so one
			// configuration doesn't inherit the previous one's GC debt.
			runtime.GC()
			var reg *obs.Registry
			var tr *countingTracer
			opts := core.Options{
				VFS:         storage.NewMemFS(),
				Catalog:     core.NewMemCatalog(),
				WriteShards: cfg.Goroutines,
			}
			if s.metrics {
				reg = obs.NewRegistry()
				opts.Metrics = reg
			}
			if s.tracer {
				tr = &countingTracer{}
				opts.Tracer = tr
			}
			ops, nanos, err := obsOnce(opts, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s round %d: %w", s.name, round, err)
			}
			roundNanos[i][round] = nanos
			if points[i].Nanos == 0 || nanos < points[i].Nanos {
				points[i].Ops = ops
				points[i].Nanos = nanos
			}
			if tr != nil {
				points[i].TraceEvents = tr.events.Load()
			}
		}
	}
	for i := range points {
		points[i].OpsPerSec = float64(points[i].Ops) / (float64(points[i].Nanos) / 1e9)
	}
	// Overhead: pair each configuration's round with the disabled run of
	// the SAME round (they executed back to back), then take the median
	// delta. On a small shared machine the round-to-round jitter of the
	// baseline alone can exceed the budget being measured; pairing
	// cancels the drift and the median sheds the outlier rounds.
	for i := range points {
		deltas := make([]float64, cfg.Rounds)
		for r := 0; r < cfg.Rounds; r++ {
			deltas[r] = 100 * (float64(roundNanos[i][r])/float64(roundNanos[0][r]) - 1)
		}
		sort.Float64s(deltas)
		mid := cfg.Rounds / 2
		if cfg.Rounds%2 == 0 {
			points[i].OverheadPct = (deltas[mid-1] + deltas[mid]) / 2
		} else {
			points[i].OverheadPct = deltas[mid]
		}
	}
	return points, nil
}

// obsOnce drives one configuration: cfg.Goroutines workers issuing
// AddRef with a Query every cfg.QueryEvery updates and periodic
// checkpoints, mirroring the ingest experiment's structure.
func obsOnce(opts core.Options, cfg ObsConfig) (int, int64, error) {
	eng, err := core.Open(opts)
	if err != nil {
		return 0, 0, err
	}
	defer eng.Close()
	return obsDrive(eng, cfg)
}

// obsDrive runs the mixed workload against an already-open engine (shared
// with the iostat experiment, which needs the engine afterwards for its
// attribution report).
func obsDrive(eng *core.Engine, cfg ObsConfig) (int, int64, error) {
	var (
		wg       sync.WaitGroup
		counter  atomic.Uint64
		cp       atomic.Uint64
		cpMu     sync.Mutex
		errOnce  sync.Once
		firstErr error
	)
	cp.Store(1)
	perWorker := cfg.Ops / cfg.Goroutines
	if perWorker == 0 {
		return 0, 0, fmt.Errorf("ops=%d is less than goroutines=%d", cfg.Ops, cfg.Goroutines)
	}
	start := time.Now()
	for w := 0; w < cfg.Goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < perWorker; i++ {
				block := base + uint64(i)
				eng.AddRef(core.Ref{
					Block:  block,
					Inode:  uint64(w + 1),
					Offset: uint64(i),
					Length: 1,
				}, cp.Load())
				if i%cfg.QueryEvery == 0 {
					if _, err := eng.Query(block); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
				if n := counter.Add(1); n%uint64(cfg.OpsPerCP) == 0 {
					cpMu.Lock()
					next := cp.Load() + 1
					err := eng.Checkpoint(next)
					if err == nil {
						cp.Store(next)
					}
					cpMu.Unlock()
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return perWorker * cfg.Goroutines, time.Since(start).Nanoseconds(), nil
}
