package experiments

import "testing"

func TestRunInterferenceSmall(t *testing.T) {
	res, err := RunInterference(InterferenceConfig{
		CPs:        8,
		OpsPerCP:   500,
		Blocks:     1 << 12,
		Partitions: 4,
		Queries:    400,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(res.Phases))
	}
	for _, p := range res.Phases {
		if p.Queries <= 0 || p.QueriesPerSec <= 0 || p.MeanUS <= 0 {
			t.Fatalf("malformed phase: %+v", p)
		}
	}
	if res.RunsAfter >= res.RunsBefore {
		t.Fatalf("compaction did not reduce runs: %d -> %d", res.RunsBefore, res.RunsAfter)
	}
	if res.CompactionMS <= 0 {
		t.Fatalf("compaction duration = %v", res.CompactionMS)
	}
}
