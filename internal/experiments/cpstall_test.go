package experiments

import (
	"testing"
	"time"
)

// TestCPStallSmoke runs a miniature checkpoint-stall experiment: the
// measured checkpoint must actually overlap the update stream, and
// updates must keep completing while it flushes.
func TestCPStallSmoke(t *testing.T) {
	cfg := CPStallConfig{
		PrefillOps: 20_000,
		Blocks:     1 << 12,
		MeasureOps: 2_000,
		WriteDelay: 200 * time.Microsecond,
		Seed:       1,
	}
	res, err := RunCPStall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(res.Phases))
	}
	during := res.Phases[1]
	if during.Ops < 1 {
		t.Fatal("no updates completed during the checkpoint flush")
	}
	if res.RecordsFlushed < uint64(cfg.PrefillOps) {
		t.Fatalf("checkpoint flushed %d records, want >= %d", res.RecordsFlushed, cfg.PrefillOps)
	}
	if res.CheckpointMS <= 0 || res.FlushMS <= 0 {
		t.Fatalf("checkpoint timing not captured: %+v", res)
	}
	// The whole point: the exclusive-lock windows are a small fraction of
	// the checkpoint; the flush dominates and holds no lock. Generous
	// bound to stay robust on loaded CI machines.
	if res.SwapUS+res.InstallUS > res.FlushMS*1e3 {
		t.Fatalf("exclusive sections (%.0fµs swap + %.0fµs install) exceed the lock-free flush (%.1fms)",
			res.SwapUS, res.InstallUS, res.FlushMS)
	}
}
