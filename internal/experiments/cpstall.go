package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

// SlowVFS wraps a VFS and adds a fixed delay to every write of files
// whose names end in Suffix (default ".run"). The checkpoint-stall
// experiment and BenchmarkIngestDuringCheckpoint use it to stretch a
// checkpoint's run-building I/O into measurable wall-clock time on an
// otherwise instant in-memory file system — MemFS models disk time, but
// only as accounting, not as real latency.
type SlowVFS struct {
	storage.VFS
	Delay  time.Duration
	Suffix string
}

func (s *SlowVFS) suffix() string {
	if s.Suffix == "" {
		return ".run"
	}
	return s.Suffix
}

func (s *SlowVFS) Create(name string) (storage.File, error) {
	f, err := s.VFS.Create(name)
	if err != nil || !strings.HasSuffix(name, s.suffix()) {
		return f, err
	}
	return &slowFile{File: f, delay: s.Delay}, nil
}

func (s *SlowVFS) Open(name string) (storage.File, error) {
	f, err := s.VFS.Open(name)
	if err != nil || !strings.HasSuffix(name, s.suffix()) {
		return f, err
	}
	return &slowFile{File: f, delay: s.Delay}, nil
}

type slowFile struct {
	storage.File
	delay time.Duration
}

func (f *slowFile) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(f.delay)
	return f.File.WriteAt(p, off)
}

// CPStallConfig parameterizes the checkpoint-stall experiment. It is not
// a paper figure: the paper's prototype quiesced updates across the
// consistency-point flush, whereas this reproduction freezes the write
// stores and flushes them with no structural lock held. The experiment
// quantifies the payoff — update and query latency while a checkpoint
// flush runs, versus idle.
type CPStallConfig struct {
	// PrefillOps is the number of buffered references the measured
	// checkpoint flushes.
	PrefillOps int
	// Shards is the write-shard count (0 = GOMAXPROCS).
	Shards int
	// Blocks is the physical block space touched.
	Blocks int
	// MeasureOps bounds the updates measured per phase.
	MeasureOps int
	// WriteDelay is added to every run-file write to give the flush a
	// realistic wall-clock footprint.
	WriteDelay time.Duration
	Seed       int64
}

// DefaultCPStallConfig returns the small-scale default.
func DefaultCPStallConfig() CPStallConfig {
	return CPStallConfig{
		PrefillOps: 100_000,
		Blocks:     1 << 16,
		MeasureOps: 20_000,
		WriteDelay: 100 * time.Microsecond,
		Seed:       1,
	}
}

// CPStallPhase is one measured update phase.
type CPStallPhase struct {
	Phase         string
	Ops           int
	OpsPerSec     float64
	MeanUS        float64
	P99US         float64
	MaxUS         float64
	QueryMeanUS   float64 // interleaved point-query latency
	QueriesServed int
}

// CPStallResult is the experiment's output.
type CPStallResult struct {
	Phases []CPStallPhase
	// CheckpointMS is the wall-clock duration of the measured checkpoint.
	CheckpointMS float64
	// SwapUS and InstallUS are the checkpoint's two exclusive-lock
	// critical sections; FlushMS is its lock-free run-building time.
	SwapUS, InstallUS float64
	FlushMS           float64
	RecordsFlushed    uint64
}

// RunCPStall measures AddRef and Query latency idle, then again while a
// checkpoint flush of cfg.PrefillOps buffered references runs
// concurrently. With the frozen-write-store checkpoint the concurrent
// phase stays within a small factor of idle: updates only stall for the
// freeze and install critical sections, not for the run-building I/O.
func RunCPStall(cfg CPStallConfig) (CPStallResult, error) {
	var res CPStallResult
	slow := &SlowVFS{VFS: storage.NewMemFS(), Delay: cfg.WriteDelay}
	eng, err := core.Open(core.Options{
		VFS:         slow,
		Catalog:     core.NewMemCatalog(),
		WriteShards: cfg.Shards,
	})
	if err != nil {
		return res, err
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	var inode uint64
	update := func(cp uint64) time.Duration {
		inode++
		r := core.Ref{Block: uint64(rng.Intn(cfg.Blocks)), Inode: inode, Offset: inode & 7, Length: 1}
		t0 := time.Now()
		eng.AddRef(r, cp)
		return time.Since(t0)
	}

	// measure runs the update+query stream for one phase. With done nil it
	// samples cfg.MeasureOps updates; with done set it keeps measuring
	// until the background checkpoint finishes and returns the
	// checkpoint's error.
	measure := func(name string, cp uint64, done <-chan error) error {
		lats := make([]time.Duration, 0, cfg.MeasureOps)
		var qSum time.Duration
		var queries int
		t0 := time.Now()
		var cperr error
		running := done != nil
		for i := 0; ; i++ {
			lats = append(lats, update(cp))
			if i%64 == 63 {
				q0 := time.Now()
				if _, err := eng.Query(uint64(rng.Intn(cfg.Blocks))); err != nil {
					return err
				}
				qSum += time.Since(q0)
				queries++
			}
			if i%8 == 7 {
				// Keep the stream honest on small GOMAXPROCS: without an
				// explicit yield, a single-core scheduler lets this loop
				// starve the background flush goroutine between its I/O
				// waits, inflating the checkpoint duration by preemption
				// latency rather than by any lock the engine holds.
				runtime.Gosched()
			}
			if running {
				select {
				case cperr = <-done:
					running = false
				default:
				}
				if !running {
					break // checkpoint finished; phase over
				}
				continue
			}
			if len(lats) >= cfg.MeasureOps {
				break
			}
		}
		elapsed := time.Since(t0)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		ph := CPStallPhase{Phase: name, Ops: len(lats), QueriesServed: queries}
		if len(lats) > 0 {
			ph.OpsPerSec = float64(len(lats)) / elapsed.Seconds()
			ph.MeanUS = float64(sum.Microseconds()) / float64(len(lats))
			ph.P99US = float64(lats[len(lats)*99/100].Nanoseconds()) / 1e3
			ph.MaxUS = float64(lats[len(lats)-1].Nanoseconds()) / 1e3
		}
		if queries > 0 {
			ph.QueryMeanUS = float64(qSum.Microseconds()) / float64(queries)
		}
		res.Phases = append(res.Phases, ph)
		if cperr != nil {
			return fmt.Errorf("background checkpoint: %w", cperr)
		}
		return nil
	}

	// Warm up: an unmeasured checkpoint builds a read store, so the idle
	// baseline pays the same query costs (view pins, run reads) as the
	// phases around the measured flush.
	for i := 0; i < cfg.PrefillOps/4; i++ {
		update(1)
	}
	if err := eng.Checkpoint(1); err != nil {
		return res, err
	}

	// Phase 1: idle baseline.
	if err := measure("idle", 2, nil); err != nil {
		return res, err
	}

	// Prefill the write stores so the measured flush is substantial.
	for i := 0; i < cfg.PrefillOps; i++ {
		update(2)
	}

	// Phase 2: the same update+query stream while Checkpoint(2) freezes
	// the stores and flushes them in the background. The stream's records
	// are tagged 3 — they land in the fresh active trees and flush with
	// the NEXT checkpoint.
	before := eng.Stats()
	done := make(chan error, 1)
	cpStart := time.Now()
	go func() { done <- eng.Checkpoint(2) }()
	if err := measure("during checkpoint flush", 3, done); err != nil {
		return res, err
	}
	res.CheckpointMS = float64(time.Since(cpStart).Microseconds()) / 1e3

	st := eng.Stats()
	res.SwapUS = float64(st.CheckpointSwapNanos-before.CheckpointSwapNanos) / 1e3
	res.InstallUS = float64(st.CheckpointInstallNanos-before.CheckpointInstallNanos) / 1e3
	res.FlushMS = float64(st.CheckpointFlushNanos-before.CheckpointFlushNanos) / 1e6
	res.RecordsFlushed = st.RecordsFlushed - before.RecordsFlushed

	// Phase 3: idle again, on the drained stores.
	if err := measure("idle (after)", 3, nil); err != nil {
		return res, err
	}
	return res, nil
}
