package workload

import (
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/fsim"
	"github.com/backlogfs/backlog/internal/storage"
)

func newTrackedFS(t *testing.T, dedup float64) (*fsim.FS, *core.Engine) {
	t.Helper()
	cat := core.NewMemCatalog()
	eng, err := core.Open(core.Options{VFS: storage.NewMemFS(), Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	fs := fsim.New(fsim.Config{Tracker: eng, Catalog: cat, DedupRate: dedup, Seed: 5})
	return fs, eng
}

func TestSyntheticRunsAndVerifies(t *testing.T) {
	fs, eng := newTrackedFS(t, 0.10)
	cfg := DefaultSyntheticConfig(500)
	cfg.Snapshots = RotationConfig{HourlyEveryCPs: 3, HourlyKeep: 2, NightlyEveryHours: 2, NightlyKeep: 2}
	cfg.CloneLifetimeCP = 5
	cfg.ClonesPer100CP = 50 // force clone activity in a short run
	gen := NewSynthetic(fs, cfg)

	var totalOps uint64
	for i := 0; i < 30; i++ {
		cp, ops, err := gen.RunCP()
		if err != nil {
			t.Fatalf("cp %d: %v", i, err)
		}
		if cp == 0 {
			t.Fatal("zero CP")
		}
		if ops < uint64(cfg.OpsPerCP) {
			t.Fatalf("CP %d issued only %d ops, want >= %d", cp, ops, cfg.OpsPerCP)
		}
		totalOps += ops
	}
	if gen.LiveFileCount() == 0 {
		t.Fatal("no files survive the workload")
	}
	if fs.Stats().Clones == 0 {
		t.Fatal("no clones created at 50/100CP rate over 30 CPs")
	}
	if fs.Stats().Snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
	// Ground truth equivalence after the whole run.
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatalf("after compaction: %v", err)
	}
}

func TestRotationRetention(t *testing.T) {
	fs, _ := newTrackedFS(t, 0)
	ino, _ := fs.CreateFile(0)
	if err := fs.WriteFile(0, ino, 0, 1); err != nil {
		t.Fatal(err)
	}
	rot := NewRotation(RotationConfig{HourlyEveryCPs: 1, HourlyKeep: 4, NightlyEveryHours: 8, NightlyKeep: 4}, 0)
	for cp := uint64(1); cp <= 40; cp++ {
		if err := fs.WriteFile(0, ino, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := rot.Tick(fs, cp); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	retained := rot.Retained()
	// 4 hourly + up to 4 nightly, with possible overlap.
	if len(retained) < 4 || len(retained) > 8 {
		t.Fatalf("retained %d snapshots: %v", len(retained), retained)
	}
	// The catalog must agree exactly with the rotation's view.
	catSnaps := fs.Catalog().Snapshots(0)
	if len(catSnaps) != len(retained) {
		t.Fatalf("catalog %v vs rotation %v", catSnaps, retained)
	}
	for i := range catSnaps {
		if catSnaps[i] != retained[i] {
			t.Fatalf("catalog %v vs rotation %v", catSnaps, retained)
		}
	}
}

func TestTraceGeneratorProperties(t *testing.T) {
	cfg := DefaultTraceConfig(200)
	cfg.Hours = 300
	ops := GenerateTrace(cfg)
	if len(ops) == 0 {
		t.Fatal("empty trace")
	}
	var reads, writes, setattrs, normalSetattrs, spanSetattrs, spanOps, normalOps int
	for _, op := range ops {
		inSpan := op.Hour >= cfg.SetattrSpan[0] && op.Hour < cfg.SetattrSpan[1]
		if inSpan {
			spanOps++
		} else {
			normalOps++
		}
		switch op.Type {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		case OpSetattr:
			setattrs++
			if inSpan {
				spanSetattrs++
			} else {
				normalSetattrs++
			}
		}
	}
	// Write-rich: roughly one write per two reads outside the span.
	ratio := float64(reads) / float64(writes)
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("read/write ratio = %.2f, want ≈2", ratio)
	}
	// The setattr span is much denser in truncations.
	spanRate := float64(spanSetattrs) / float64(spanOps)
	normalRate := float64(normalSetattrs) / float64(normalOps)
	if spanRate < 4*normalRate {
		t.Fatalf("setattr span not pronounced: span=%.3f normal=%.3f", spanRate, normalRate)
	}
	// Determinism.
	ops2 := GenerateTrace(cfg)
	if len(ops) != len(ops2) {
		t.Fatal("trace not deterministic")
	}
	for i := range ops {
		if ops[i] != ops2[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestTraceLoadVariation(t *testing.T) {
	cfg := DefaultTraceConfig(500)
	cfg.Hours = 240
	ops := GenerateTrace(cfg)
	perHour := make([]int, cfg.Hours)
	for _, op := range ops {
		perHour[op.Hour]++
	}
	min, max := perHour[0], perHour[0]
	for _, n := range perHour {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max < 3*min {
		t.Fatalf("load variation too flat: min=%d max=%d", min, max)
	}
}

func TestPlayerExecutesTrace(t *testing.T) {
	fs, eng := newTrackedFS(t, 0.10)
	cfg := DefaultTraceConfig(120)
	cfg.Hours = 24
	ops := GenerateTrace(cfg)
	player := NewPlayer(fs, 4, 9)

	byHour := map[int][]TraceOp{}
	for _, op := range ops {
		byHour[op.Hour] = append(byHour[op.Hour], op)
	}
	var totalBlockOps uint64
	for h := 0; h < cfg.Hours; h++ {
		st, err := player.PlayHour(h, byHour[h])
		if err != nil {
			t.Fatalf("hour %d: %v", h, err)
		}
		if st.CPs != 4 {
			t.Fatalf("hour %d ran %d CPs, want 4", h, st.CPs)
		}
		totalBlockOps += st.BlockOps
	}
	if totalBlockOps == 0 {
		t.Fatal("trace produced no block operations")
	}
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatal(err)
	}
}

func TestSetattrSpanPrunes(t *testing.T) {
	// During the truncate-heavy span, most block ops cancel within a CP:
	// the engine's prune counters must be visibly engaged.
	fs, eng := newTrackedFS(t, 0)
	player := NewPlayer(fs, 2, 3)
	var ops []TraceOp
	// Seed some files first.
	for i := 0; i < 30; i++ {
		ops = append(ops, TraceOp{Hour: 0, Type: OpCreate, Blocks: 4})
	}
	for i := 0; i < 200; i++ {
		ops = append(ops, TraceOp{Hour: 0, Type: OpSetattr})
	}
	if _, err := player.PlayHour(0, ops); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.PrunedAdds+st.PrunedRemoves == 0 {
		t.Fatal("truncate-heavy traffic engaged no pruning")
	}
	if err := fs.VerifyBackrefs(eng); err != nil {
		t.Fatal(err)
	}
}
