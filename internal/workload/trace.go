package workload

import (
	"math"
	"math/rand"

	"github.com/backlogfs/backlog/internal/fsim"
)

// OpType enumerates NFS-trace operation kinds relevant to back-reference
// maintenance. Reads appear in the trace (they set the paper's 1 write :
// 2 reads mix) but generate no block operations.
type OpType uint8

// Trace operation kinds.
const (
	OpRead OpType = iota
	OpWrite
	OpCreate
	OpRemove
	OpSetattr // file truncation, the dominant op of the paper's "dip" span
)

// TraceOp is one synthesized NFS operation.
type TraceOp struct {
	// Hour is the trace hour the op belongs to (0-based).
	Hour int
	// Type is the operation kind.
	Type OpType
	// Blocks is the I/O size in blocks for writes/creates.
	Blocks int
}

// TraceConfig parameterizes the EECS03-like trace synthesizer
// (Section 6.2.2). The published properties it reproduces: a research
// home-directory workload spanning 16 days, write-rich (one write for every
// two reads), mostly small files, diurnal load variation with occasional
// near-idle spikes, and a multi-hour span dominated by setattr
// (truncation) traffic.
type TraceConfig struct {
	// Hours is the trace length (the paper uses the first 16 days = 384
	// hours).
	Hours int
	// BaseOpsPerHour is the mean operation count of a busy hour
	// (scaled down in benchmarks).
	BaseOpsPerHour int
	// SetattrSpan is the [start, end) hour range with truncate-heavy
	// traffic (the paper observes it between hours 200 and 250).
	SetattrSpan [2]int
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultTraceConfig mirrors the paper's 16-day trace, scaled by
// opsPerHour.
func DefaultTraceConfig(opsPerHour int) TraceConfig {
	return TraceConfig{
		Hours:          384,
		BaseOpsPerHour: opsPerHour,
		SetattrSpan:    [2]int{200, 250},
		Seed:           42,
	}
}

// GenerateTrace synthesizes the full operation list hour by hour.
func GenerateTrace(cfg TraceConfig) []TraceOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ops []TraceOp
	for h := 0; h < cfg.Hours; h++ {
		load := hourLoad(rng, h)
		n := int(load * float64(cfg.BaseOpsPerHour))
		if n < 4 {
			n = 4
		}
		truncateHeavy := h >= cfg.SetattrSpan[0] && h < cfg.SetattrSpan[1]
		for i := 0; i < n; i++ {
			ops = append(ops, sampleOp(rng, h, truncateHeavy))
		}
	}
	return ops
}

// hourLoad models diurnal variation with occasional near-idle spikes: the
// paper's overhead spikes align with periods of low load, where constant
// per-CP cost is amortized over few operations.
func hourLoad(rng *rand.Rand, hour int) float64 {
	day := float64(hour%24) / 24
	// Daytime peak around 15:00, nighttime trough.
	diurnal := 0.55 + 0.45*math.Sin(2*math.Pi*(day-0.375))
	noise := 0.75 + 0.5*rng.Float64()
	load := diurnal * noise
	if rng.Float64() < 0.04 {
		load *= 0.05 // near-idle hour
	}
	return load
}

func sampleOp(rng *rand.Rand, hour int, truncateHeavy bool) TraceOp {
	op := TraceOp{Hour: hour}
	x := rng.Float64()
	if truncateHeavy {
		// High load with a large proportion of setattr (truncations) whose
		// block operations mostly cancel within a CP.
		switch {
		case x < 0.40:
			op.Type = OpSetattr
		case x < 0.55:
			op.Type = OpWrite
			op.Blocks = 1 + rng.Intn(4)
		case x < 0.62:
			op.Type = OpCreate
			op.Blocks = fileBlocks(rng)
		case x < 0.67:
			op.Type = OpRemove
		default:
			op.Type = OpRead
		}
		return op
	}
	// Normal mix: 1 write per 2 reads, with create/remove churn.
	switch {
	case x < 0.60:
		op.Type = OpRead
	case x < 0.84:
		op.Type = OpWrite
		op.Blocks = 1 + rng.Intn(6)
	case x < 0.92:
		op.Type = OpCreate
		op.Blocks = fileBlocks(rng)
	case x < 0.97:
		op.Type = OpRemove
	default:
		op.Type = OpSetattr
	}
	return op
}

// fileBlocks draws a new-file size: 90% small (home-directory profile).
func fileBlocks(rng *rand.Rand) int {
	if rng.Float64() < 0.90 {
		return 1 + rng.Intn(8)
	}
	return 16 + rng.Intn(112)
}

// Player executes a synthesized trace against an fsim.FS, taking a
// checkpoint every CPsPerHour-th of an hour (the paper's configuration is
// one CP per 10 seconds = 360 CPs/hour; benchmarks scale this down) and
// running snapshot rotation on a true hourly schedule.
type Player struct {
	fs  *fsim.FS
	rng *rand.Rand

	// CPsPerHour is how many checkpoints represent one trace hour.
	CPsPerHour int

	rotation *Rotation
	files    []fileRef
	cpIndex  uint64
}

// NewPlayer builds a trace player. cpsPerHour must be >= 1.
func NewPlayer(fs *fsim.FS, cpsPerHour int, seed int64) *Player {
	if cpsPerHour < 1 {
		cpsPerHour = 1
	}
	rot := DefaultRotation()
	rot.HourlyEveryCPs = cpsPerHour // a snapshot per trace hour
	return &Player{
		fs:         fs,
		rng:        rand.New(rand.NewSource(seed)),
		CPsPerHour: cpsPerHour,
		rotation:   NewRotation(rot, 0),
	}
}

// HourStats summarizes the execution of one trace hour.
type HourStats struct {
	Hour     int
	BlockOps uint64 // block operations issued (adds + removes)
	TraceOps int    // trace operations replayed (including reads)
	CPs      int
}

// PlayHour executes all ops of one hour, spreading them across the hour's
// checkpoints. ops must all carry the same Hour.
func (p *Player) PlayHour(hour int, ops []TraceOp) (HourStats, error) {
	stats := HourStats{Hour: hour}
	startOps := p.fs.Stats().BlockOps
	perCP := (len(ops) + p.CPsPerHour - 1) / p.CPsPerHour
	if perCP < 1 {
		perCP = 1
	}
	i := 0
	for cp := 0; cp < p.CPsPerHour; cp++ {
		for j := 0; j < perCP && i < len(ops); j, i = j+1, i+1 {
			if err := p.apply(ops[i]); err != nil {
				return stats, err
			}
			stats.TraceOps++
		}
		p.cpIndex++
		if err := p.rotation.Tick(p.fs, p.cpIndex); err != nil {
			return stats, err
		}
		if _, err := p.fs.Checkpoint(); err != nil {
			return stats, err
		}
		stats.CPs++
	}
	if p.cpIndex%256 == 0 {
		p.fs.Reclaim()
	}
	stats.BlockOps = p.fs.Stats().BlockOps - startOps
	return stats, nil
}

func (p *Player) apply(op TraceOp) error {
	switch op.Type {
	case OpRead:
		return nil // reads produce no block operations
	case OpCreate:
		ino, err := p.fs.CreateFile(0)
		if err != nil {
			return err
		}
		if err := p.fs.WriteFile(0, ino, 0, op.Blocks); err != nil {
			return err
		}
		p.files = append(p.files, fileRef{ino: ino, size: op.Blocks})
	case OpWrite:
		if len(p.files) == 0 {
			return nil
		}
		f := &p.files[p.rng.Intn(len(p.files))]
		off := 0
		if f.size > 0 {
			off = p.rng.Intn(f.size)
		}
		if err := p.fs.WriteFile(0, f.ino, uint64(off), op.Blocks); err != nil {
			return err
		}
		if off+op.Blocks > f.size {
			f.size = off + op.Blocks
		}
	case OpRemove:
		if len(p.files) == 0 {
			return nil
		}
		i := p.rng.Intn(len(p.files))
		if err := p.fs.DeleteFile(0, p.files[i].ino); err != nil {
			return err
		}
		p.files = append(p.files[:i], p.files[i+1:]...)
	case OpSetattr:
		// Truncation: most truncated blocks were written recently, so
		// their add/remove pairs cancel within the CP (the paper's
		// overhead dip). Model: write a few blocks to a file, then
		// truncate them off within the same CP.
		if len(p.files) == 0 {
			return nil
		}
		f := &p.files[p.rng.Intn(len(p.files))]
		grow := 1 + p.rng.Intn(3)
		if err := p.fs.WriteFile(0, f.ino, uint64(f.size), grow); err != nil {
			return err
		}
		if err := p.fs.TruncateFile(0, f.ino, uint64(f.size)); err != nil {
			return err
		}
	}
	return nil
}
