// Package workload generates the two workloads of the paper's fsim
// evaluation (Section 6): a synthetic stochastic workload that issues
// writes as fast as possible, and a synthesized NFS trace with the
// published properties of the EECS03 data set (the original trace is not
// redistributable; see DESIGN.md for the substitution argument).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/backlogfs/backlog/internal/fsim"
)

// SyntheticConfig parameterizes the synthetic generator (Section 6.2.1).
// The defaults mirror the paper: ≥32,000 block writes between consistency
// points, file operation rates mirroring the EECS03 trace, 90% small
// files, and roughly 7 writable-clone creations per 100 CPs.
type SyntheticConfig struct {
	// OpsPerCP is the number of block operations to issue per CP
	// (the paper uses 32,000; benchmarks scale this down).
	OpsPerCP int
	// SmallFileFrac is the fraction of created files that are small
	// (default 0.90).
	SmallFileFrac float64
	// SmallFileBlocks and LargeFileBlocks bound the uniform size ranges
	// (in blocks) for small and large files.
	SmallFileBlocks [2]int
	LargeFileBlocks [2]int
	// CreateFrac / DeleteFrac / UpdateFrac weight the file operation mix
	// (update = overwrite of existing file blocks). They need not sum to
	// one; they are normalized.
	CreateFrac float64
	DeleteFrac float64
	UpdateFrac float64
	// ClonesPer100CP is the expected number of writable clone creations
	// per 100 checkpoints (paper: ≈7). Each clone receives a burst of
	// writes and is destroyed after CloneLifetimeCPs.
	ClonesPer100CP  float64
	CloneLifetimeCP int
	// Snapshots configures hourly/nightly-style snapshot rotation.
	Snapshots RotationConfig
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultSyntheticConfig returns the paper-mirroring configuration scaled
// by opsPerCP.
func DefaultSyntheticConfig(opsPerCP int) SyntheticConfig {
	return SyntheticConfig{
		OpsPerCP:        opsPerCP,
		SmallFileFrac:   0.90,
		SmallFileBlocks: [2]int{1, 16},
		LargeFileBlocks: [2]int{32, 512},
		CreateFrac:      0.35,
		DeleteFrac:      0.25,
		UpdateFrac:      0.40,
		ClonesPer100CP:  7,
		CloneLifetimeCP: 20,
		Snapshots:       DefaultRotation(),
		Seed:            1,
	}
}

// RotationConfig emulates the paper's "four hourly and four nightly
// snapshots" retention policy, expressed in CPs.
type RotationConfig struct {
	// HourlyEveryCPs takes an "hourly" snapshot every N checkpoints
	// (0 disables).
	HourlyEveryCPs int
	// HourlyKeep is the number of hourly snapshots retained.
	HourlyKeep int
	// NightlyEveryHours promotes every Nth hourly snapshot to "nightly".
	NightlyEveryHours int
	// NightlyKeep is the number of nightly snapshots retained.
	NightlyKeep int
}

// DefaultRotation keeps 4 hourly + 4 nightly snapshots with an "hour" of
// 10 CPs (scaled down from WAFL's hourly schedule).
func DefaultRotation() RotationConfig {
	return RotationConfig{HourlyEveryCPs: 10, HourlyKeep: 4, NightlyEveryHours: 8, NightlyKeep: 4}
}

// Rotation tracks retained snapshots for one line.
type Rotation struct {
	cfg     RotationConfig
	line    uint64
	hourly  []uint64 // retained hourly snapshot versions
	nightly []uint64
	hours   int // hourly snapshots taken so far
}

// NewRotation returns a rotation manager for a line.
func NewRotation(cfg RotationConfig, line uint64) *Rotation {
	return &Rotation{cfg: cfg, line: line}
}

// Retained returns all currently retained snapshot versions, ascending.
// A snapshot can be both hourly and nightly; it is listed once.
func (r *Rotation) Retained() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, v := range append(append([]uint64(nil), r.hourly...), r.nightly...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Tick runs the schedule for the checkpoint that is about to be taken
// (cpIndex counts from 1). It must be called after the CP's mutations and
// before fs.Checkpoint. Expired snapshots are deleted; a new snapshot is
// taken when due.
func (r *Rotation) Tick(fs *fsim.FS, cpIndex uint64) error {
	if r.cfg.HourlyEveryCPs == 0 || cpIndex%uint64(r.cfg.HourlyEveryCPs) != 0 {
		return nil
	}
	v, err := fs.TakeSnapshot(r.line)
	if err != nil {
		return fmt.Errorf("workload: rotation snapshot: %w", err)
	}
	r.hours++
	r.hourly = append(r.hourly, v)
	promote := r.cfg.NightlyEveryHours > 0 && r.hours%r.cfg.NightlyEveryHours == 0
	if promote {
		r.nightly = append(r.nightly, v)
	}
	if len(r.hourly) > r.cfg.HourlyKeep {
		old := r.hourly[0]
		r.hourly = r.hourly[1:]
		if !contains(r.nightly, old) {
			if err := fs.DeleteSnapshot(r.line, old); err != nil {
				return err
			}
		}
	}
	if len(r.nightly) > r.cfg.NightlyKeep {
		old := r.nightly[0]
		r.nightly = r.nightly[1:]
		if !contains(r.hourly, old) {
			if err := fs.DeleteSnapshot(r.line, old); err != nil {
				return err
			}
		}
	}
	return nil
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Synthetic drives an fsim.FS with the stochastic workload.
type Synthetic struct {
	cfg SyntheticConfig
	fs  *fsim.FS
	rng *rand.Rand

	rotation *Rotation
	files    []fileRef // files of line 0 eligible for update/delete
	clones   []cloneRef
	cpIndex  uint64
}

type fileRef struct {
	ino  uint64
	size int
}

type cloneRef struct {
	line     uint64
	expireCP uint64
}

// NewSynthetic builds a generator over fs.
func NewSynthetic(fs *fsim.FS, cfg SyntheticConfig) *Synthetic {
	return &Synthetic{
		cfg:      cfg,
		fs:       fs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		rotation: NewRotation(cfg.Snapshots, 0),
	}
}

func (s *Synthetic) fileSize() int {
	if s.rng.Float64() < s.cfg.SmallFileFrac {
		lo, hi := s.cfg.SmallFileBlocks[0], s.cfg.SmallFileBlocks[1]
		return lo + s.rng.Intn(hi-lo+1)
	}
	lo, hi := s.cfg.LargeFileBlocks[0], s.cfg.LargeFileBlocks[1]
	return lo + s.rng.Intn(hi-lo+1)
}

// RunCP issues approximately OpsPerCP block operations, runs the snapshot
// rotation and clone lifecycle, and takes a checkpoint. It returns the
// committed CP number and the number of block operations issued.
func (s *Synthetic) RunCP() (cp uint64, blockOps uint64, err error) {
	start := s.fs.Stats().BlockOps
	total := s.cfg.CreateFrac + s.cfg.DeleteFrac + s.cfg.UpdateFrac
	for int(s.fs.Stats().BlockOps-start) < s.cfg.OpsPerCP {
		x := s.rng.Float64() * total
		switch {
		case x < s.cfg.CreateFrac || len(s.files) == 0:
			size := s.fileSize()
			ino, err := s.fs.CreateFile(0)
			if err != nil {
				return 0, 0, err
			}
			if err := s.fs.WriteFile(0, ino, 0, size); err != nil {
				return 0, 0, err
			}
			s.files = append(s.files, fileRef{ino: ino, size: size})
		case x < s.cfg.CreateFrac+s.cfg.DeleteFrac:
			i := s.rng.Intn(len(s.files))
			f := s.files[i]
			if err := s.fs.DeleteFile(0, f.ino); err != nil {
				return 0, 0, err
			}
			s.files = append(s.files[:i], s.files[i+1:]...)
		default:
			f := s.files[s.rng.Intn(len(s.files))]
			if f.size == 0 {
				continue
			}
			off := s.rng.Intn(f.size)
			n := 1 + s.rng.Intn(4)
			if off+n > f.size {
				n = f.size - off
			}
			if err := s.fs.WriteFile(0, f.ino, uint64(off), n); err != nil {
				return 0, 0, err
			}
		}
	}

	// Clone lifecycle: create with probability ClonesPer100CP/100, write a
	// small burst into new clones, destroy expired ones.
	if s.rng.Float64() < s.cfg.ClonesPer100CP/100 {
		if err := s.spawnClone(); err != nil {
			return 0, 0, err
		}
	}
	var keep []cloneRef
	for _, c := range s.clones {
		if s.fs.CP() >= c.expireCP {
			if err := s.fs.DeleteLine(c.line); err != nil {
				return 0, 0, err
			}
			continue
		}
		keep = append(keep, c)
	}
	s.clones = keep

	s.cpIndex++
	if err := s.rotation.Tick(s.fs, s.cpIndex); err != nil {
		return 0, 0, err
	}
	ops := s.fs.Stats().BlockOps - start
	cp, err = s.fs.Checkpoint()
	if err != nil {
		return 0, 0, err
	}
	// Reclaim freed blocks occasionally, as the asynchronous reclaimer
	// would.
	if s.cpIndex%64 == 0 {
		s.fs.Reclaim()
	}
	return cp, ops, nil
}

// spawnClone clones the most recent retained snapshot of line 0 (taking
// one first if none exists) and dirties a few files in it.
func (s *Synthetic) spawnClone() error {
	retained := s.rotation.Retained()
	if len(retained) == 0 {
		return nil // no snapshot to clone yet
	}
	base := retained[len(retained)-1]
	line, err := s.fs.Clone(0, base)
	if err != nil {
		return err
	}
	// Dirty a handful of the clone's files (COW traffic).
	inos, err := s.fs.LiveFiles(line)
	if err != nil {
		return err
	}
	for i := 0; i < 3 && len(inos) > 0; i++ {
		ino := inos[s.rng.Intn(len(inos))]
		n, err := s.fs.FileLen(line, ino)
		if err != nil || n == 0 {
			continue
		}
		if err := s.fs.WriteFile(line, ino, uint64(s.rng.Intn(int(n))), 1); err != nil {
			return err
		}
	}
	s.clones = append(s.clones, cloneRef{
		line:     line,
		expireCP: s.fs.CP() + uint64(s.cfg.CloneLifetimeCP),
	})
	return nil
}

// LiveFileCount returns how many line-0 files the generator tracks.
func (s *Synthetic) LiveFileCount() int { return len(s.files) }

// ActiveClones returns the number of live clone lines.
func (s *Synthetic) ActiveClones() int { return len(s.clones) }
